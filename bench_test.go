// Benchmarks regenerating every experiment of DESIGN.md's index (E1-E9),
// plus end-to-end benches of the three pillars: analysis, simulation and
// admission control. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* executes the full experiment; custom metrics surface
// the headline quantity of the experiment so that `go test -bench` output
// doubles as a compact results table (see EXPERIMENTS.md).
package gmfnet_test

import (
	"fmt"
	"testing"

	"gmfnet"
	"gmfnet/internal/admission"
	"gmfnet/internal/core"
	"gmfnet/internal/ether"
	"gmfnet/internal/exp"
	"gmfnet/internal/network"
	"gmfnet/internal/sim"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
	"gmfnet/internal/workload"
)

// runExperiment executes one experiment per iteration and fails the bench
// on any experiment error (E5/E6 embed correctness checks).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_LinkParameters regenerates Fig. 3/4: per-frame C_ik, CSUM,
// NSUM, TSUM on link(0,4) at 10 Mbit/s.
func BenchmarkE1_LinkParameters(b *testing.B) {
	d, err := ether.DemandFor(trace.MPEGIBBPBBPBB("m", trace.MPEGOptions{}), 10*units.Mbps, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(d.TSUM().Milliseconds(), "TSUM_ms")
	b.ReportMetric(d.CSUM().Milliseconds(), "CSUM_ms")
	b.ReportMetric(float64(d.NSUM()), "NSUM_frames")
	runExperiment(b, "E1")
}

// BenchmarkE2_CIRC regenerates the 14.8 µs CIRC example of Section 3.3.
func BenchmarkE2_CIRC(b *testing.B) {
	topo := network.MustFigure1(network.Figure1Options{})
	circ, err := topo.CIRC("6")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(circ.Microseconds(), "CIRC_us")
	runExperiment(b, "E2")
}

// BenchmarkE3_EndToEnd regenerates the Figure 6 pipeline on the Figure 1
// network and reports the MPEG I+P frame's end-to-end bound.
func BenchmarkE3_EndToEnd(b *testing.B) {
	res := figure1Bounds(b)
	b.ReportMetric(res.Flow(0).Frames[0].Response.Milliseconds(), "IP_bound_ms")
	b.ReportMetric(float64(res.Iterations), "holistic_iters")
	runExperiment(b, "E3")
}

// BenchmarkE4_Holistic regenerates the convergence sweep of Section 3.5.
func BenchmarkE4_Holistic(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5_AnalysisVsSim regenerates the soundness validation: the
// experiment itself fails if any simulated response exceeds its bound.
func BenchmarkE5_AnalysisVsSim(b *testing.B) {
	res := figure1Bounds(b)
	nw := mustFigure1Scenario(b)
	s, err := sim.New(nw, sim.Config{Duration: 2 * units.Second})
	if err != nil {
		b.Fatal(err)
	}
	obs, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	worstRatio := 0.0
	for i := range obs.Flows {
		for k := range obs.Flows[i].PerFrame {
			o := float64(obs.Flows[i].PerFrame[k].MaxResponse)
			bd := float64(res.Flow(i).Frames[k].Response)
			if bd > 0 && o/bd > worstRatio {
				worstRatio = o / bd
			}
		}
	}
	b.ReportMetric(100*worstRatio, "worst_obs_over_bound_pct")
	runExperiment(b, "E5")
}

// BenchmarkE6_Admission regenerates the GMF-vs-sporadic admission contest.
func BenchmarkE6_Admission(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7_Scaling regenerates the multihop scaling sweep.
func BenchmarkE7_Scaling(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8_SwitchSizing regenerates the Conclusions' 48-port sizing
// table and reports the 16-CPU CIRC (paper: 11.1 µs).
func BenchmarkE8_SwitchSizing(b *testing.B) {
	p := network.DefaultSwitchParams()
	p.Processors = 16
	topo := network.NewTopology()
	if err := topo.AddSwitch("big", p); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		id := network.NodeID(fmt.Sprintf("h%02d", i))
		if err := topo.AddHost(id); err != nil {
			b.Fatal(err)
		}
		if err := topo.AddDuplexLink("big", id, units.Gbps, 0); err != nil {
			b.Fatal(err)
		}
	}
	circ, err := topo.CIRC("big")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(circ.Microseconds(), "CIRC16_us")
	runExperiment(b, "E8")
}

// BenchmarkE9_Ablation regenerates the ModePaper-vs-ModeSound comparison.
func BenchmarkE9_Ablation(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10_Distribution regenerates the response-time distribution
// study (simulated percentiles vs analytic bound).
func BenchmarkE10_Distribution(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11_Breakdown regenerates the breakdown-load and
// priority-policy study and reports the 10 Mbit/s breakdown scale.
func BenchmarkE11_Breakdown(b *testing.B) {
	nw := mustFigure1Scenario(b)
	sys := gmfnet.NewSystem(nw.Topo)
	for _, fs := range nw.Flows() {
		sys.MustAddFlow(fs)
	}
	bd, err := sys.FindBreakdown(gmfnet.BreakdownOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(bd.Scale, "breakdown_scale")
	runExperiment(b, "E11")
}

// BenchmarkE12_EDFGap regenerates the paper-vs-idealized-EDF admission
// comparison on a single link.
func BenchmarkE12_EDFGap(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13_Buffers regenerates the queue high-water-mark study.
func BenchmarkE13_Buffers(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkAnalyzeHolistic measures the raw analysis cost on the Figure 1
// scenario (no table rendering).
func BenchmarkAnalyzeHolistic(b *testing.B) {
	nw := mustFigure1Scenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := core.NewAnalyzer(nw, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSecond measures simulator throughput: one simulated
// second of the Figure 1 scenario per iteration.
func BenchmarkSimulateSecond(b *testing.B) {
	nw := mustFigure1Scenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(nw, sim.Config{Duration: units.Second})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionRequest measures one admission decision (tentative add
// + holistic analysis + rollback or commit).
func BenchmarkAdmissionRequest(b *testing.B) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: units.Gbps}))
	ctl, err := sys.NewAdmissionController(gmfnet.AnalysisConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ctl.Request(&gmfnet.FlowSpec{
			Flow:     gmfnet.VoIP(fmt.Sprintf("c%d", i), gmfnet.VoIPOptions{Deadline: 500 * units.Millisecond}),
			Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
			Priority: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !d.Admitted {
			b.Fatalf("request %d rejected; raise the bench link rate", i)
		}
	}
}

// admissionBenchSetup builds the network.Campus topology used by the
// BenchmarkAdmission* pair and the resident local VoIP flows that make
// up the steady state.
func admissionBenchSetup(b *testing.B, switches, hostsPer, residents int) (*network.Topology, []*network.FlowSpec) {
	b.Helper()
	topo, _, err := network.Campus(switches, hostsPer)
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]*network.FlowSpec, 0, residents)
	for i := 0; i < residents; i++ {
		s := i % switches
		a := (i / switches) % hostsPer
		c := (a + 1) % hostsPer
		specs = append(specs, &network.FlowSpec{
			Flow: trace.VoIP(fmt.Sprintf("res%d", i), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route: []network.NodeID{
				network.NodeID(fmt.Sprintf("h%d_%d", s, a)),
				network.NodeID(fmt.Sprintf("sw%d", s)),
				network.NodeID(fmt.Sprintf("h%d_%d", s, c)),
			},
			Priority: 2,
		})
	}
	return topo, specs
}

func admissionProbe(i int) *network.FlowSpec {
	return &network.FlowSpec{
		Flow:     trace.VoIP(fmt.Sprintf("probe%d", i), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
		Route:    []network.NodeID{"h0_0", "sw0", "h0_2"},
		Priority: 2,
	}
}

// BenchmarkAdmissionIncremental64 measures one admission + departure
// cycle through the engine-backed controller at a 64-flow steady state:
// snapshot, validate the newcomer only, delta-analyse its interference
// neighbourhood, and (for the departure) re-converge the affected flows.
func BenchmarkAdmissionIncremental64(b *testing.B) {
	topo, specs := admissionBenchSetup(b, 8, 4, 64)
	ctl, err := admission.NewController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitCycle(b, ctl, specs, admissionProbe)
}

// BenchmarkAdmissionCold64 is the identical workload through the
// from-scratch baseline: every request rebuilds a cold Analyzer and runs
// the full holistic fixpoint over all 65 flows.
func BenchmarkAdmissionCold64(b *testing.B) {
	topo, specs := admissionBenchSetup(b, 8, 4, 64)
	ctl, err := admission.NewColdController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitCycle(b, ctl, specs, admissionProbe)
}

// residentSpecs builds n local VoIP flows over an arbitrary generated
// topology whose hosts come grouped under a shared switch: resident i is
// a call between two hosts of group i mod (len(hosts)/group).
func residentSpecs(b *testing.B, topo *network.Topology, hosts []network.NodeID, group, n int) []*network.FlowSpec {
	b.Helper()
	groups := len(hosts) / group
	specs := make([]*network.FlowSpec, 0, n)
	for i := 0; i < n; i++ {
		g := i % groups
		a := (i / groups) % group
		c := (a + 1) % group
		route, err := topo.Route(hosts[g*group+a], hosts[g*group+c])
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, &network.FlowSpec{
			Flow:     trace.VoIP(fmt.Sprintf("res%d", i), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
		})
	}
	return specs
}

// benchAdmitCycle admits the residents through the controller and then
// measures one admission + departure cycle per iteration.
func benchAdmitCycle(b *testing.B, ctl interface {
	Request(fs *network.FlowSpec) (admission.Decision, error)
	Release(name string) (bool, error)
}, residents []*network.FlowSpec, probe func(i int) *network.FlowSpec) {
	b.Helper()
	for _, fs := range residents {
		d, err := ctl.Request(fs)
		if err != nil {
			b.Fatal(err)
		}
		if !d.Admitted {
			b.Fatalf("resident %s rejected during setup", fs.Flow.Name)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ctl.Request(probe(i))
		if err != nil {
			b.Fatal(err)
		}
		if !d.Admitted {
			b.Fatal("probe rejected")
		}
		if _, err := ctl.Release(d.FlowName); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionIncremental256 scales the admission cycle to a
// 256-flow steady state on a 16-switch industrial ring. With the arena
// engine a probe costs the O(1) snapshot plus the delta analysis of its
// local neighbourhood; the total resident count enters only through the
// departure's index shift, not through any per-request copy.
func BenchmarkAdmissionIncremental256(b *testing.B) {
	topo, hosts, err := network.Ring(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := admission.NewController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitCycle(b, ctl, residentSpecs(b, topo, hosts, 4, 256), admissionProbe)
}

// BenchmarkAdmissionCold256 is the identical 256-flow workload through the
// from-scratch baseline: every request re-runs the full holistic fixpoint
// over all 257 flows.
func BenchmarkAdmissionCold256(b *testing.B) {
	topo, hosts, err := network.Ring(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := admission.NewColdController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitCycle(b, ctl, residentSpecs(b, topo, hosts, 4, 256), admissionProbe)
}

// BenchmarkAdmissionSequential256 admits 256 VoIP flows one by one
// through RequestAll on the 16-switch industrial ring: 256 snapshots,
// 256 delta worklists, 256 detached result copies. It is the baseline
// the batched path is measured against.
func BenchmarkAdmissionSequential256(b *testing.B) {
	benchBatchAdmission(b, false)
}

// BenchmarkAdmissionBatch256 admits the identical 256 flows as one
// RequestBatch: one snapshot, one delta worklist seeded with every
// newcomer, one converged fixpoint, one result copy. The worklist setup
// and result-copy overhead amortise across the whole batch.
func BenchmarkAdmissionBatch256(b *testing.B) {
	benchBatchAdmission(b, true)
}

// benchBatchAdmission measures admitting a 256-flow batch into an empty
// 16-switch ring, batched or sequential, one full batch per iteration.
func benchBatchAdmission(b *testing.B, batched bool) {
	b.Helper()
	topo, hosts, err := network.Ring(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	specs := residentSpecs(b, topo, hosts, 4, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := admission.NewController(network.New(topo), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var ds []admission.Decision
		if batched {
			ds, err = ctl.RequestBatch(specs)
		} else {
			ds, err = ctl.RequestAll(specs)
		}
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range ds {
			if !d.Admitted {
				b.Fatalf("%s rejected during batch bench", d.FlowName)
			}
		}
	}
}

// BenchmarkAdmissionFatTreeBatch256 / BenchmarkAdmissionSharded256 are
// the mid-scale contended pair: the same 256-flow batch (~6% heavy
// video, forcing evictions) into an empty 4-ary fat tree, decided
// monolithically vs closure-sharded. (BenchmarkAdmissionBatch256 stays
// the uncontended monolithic reference on the one-closure ring, where
// sharding cannot help by construction.)
func BenchmarkAdmissionFatTreeBatch256(b *testing.B) {
	topo, hosts, err := network.FatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchInto(b, topo, contendedSpecs(b, topo, hosts, 256), false)
}

// BenchmarkAdmissionSharded256 is the sharded side of the mid-scale
// contended pair; see BenchmarkAdmissionFatTreeBatch256.
func BenchmarkAdmissionSharded256(b *testing.B) {
	topo, hosts, err := network.FatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchInto(b, topo, contendedSpecs(b, topo, hosts, 256), true)
}

// contendedSpecs builds n edge-local flows like residentSpecs but makes
// every 16th a ~67 Mbit/s CBR stream, so edge links overload and the
// batch exercises the eviction path — the realistic contended-admission
// case, and the one where batch cost structure differs most between the
// monolithic and the sharded controller.
func contendedSpecs(b *testing.B, topo *network.Topology, hosts []network.NodeID, n int) []*network.FlowSpec {
	b.Helper()
	specs := residentSpecs(b, topo, hosts, 4, n)
	for i := 15; i < n; i += 16 {
		specs[i] = &network.FlowSpec{
			Flow:     trace.CBRVideo(fmt.Sprintf("heavy%d", i), 250000, 30*units.Millisecond, 250*units.Millisecond),
			Route:    specs[i].Route,
			Priority: 1,
		}
	}
	return specs
}

// BenchmarkAdmissionBatch1024 admits a contended 1024-flow batch (~6%
// heavy video, forcing evictions) into an empty 8-ary fat tree as one
// monolithic RequestBatch: the eviction search bisects for schedulable
// prefixes of the *whole* staged batch, so every probe pays add/remove
// churn and re-convergence across all 128 closures.
func BenchmarkAdmissionBatch1024(b *testing.B) {
	benchFatTreeBatch(b, false)
}

// BenchmarkAdmissionSharded1024 admits the identical contended batch
// through the closure-sharded controller. The batch splits into 128
// independent groups (one per interference closure), so the eviction
// bisection runs inside 8-flow groups — and closures without violators
// never probe at all. Decisions are identical to the monolithic path
// (differential-tested); on a single core the win is the scoped
// eviction search, on many cores group convergence parallelises on top.
func BenchmarkAdmissionSharded1024(b *testing.B) {
	benchFatTreeBatch(b, true)
}

// benchFatTreeBatch measures admitting the contended 1024-flow batch
// into an empty 8-ary fat tree, monolithic or sharded, one full batch
// per iteration.
func benchFatTreeBatch(b *testing.B, sharded bool) {
	b.Helper()
	topo, hosts, err := network.FatTree(8)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchInto(b, topo, contendedSpecs(b, topo, hosts, 1024), sharded)
}

// benchBatchInto drives one RequestBatch of the specs into an empty
// controller per iteration, monolithic or sharded, and reports the
// rejection count (identical across both controllers by construction;
// zero rejections would mean the eviction path went unexercised).
func benchBatchInto(b *testing.B, topo *network.Topology, specs []*network.FlowSpec, sharded bool) {
	b.Helper()
	b.ReportAllocs()
	rejected := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ds []admission.Decision
		var err error
		if sharded {
			var ctl *admission.ShardedController
			ctl, err = admission.NewShardedController(network.New(topo), core.Config{})
			if err == nil {
				ds, err = ctl.RequestBatch(specs)
			}
		} else {
			var ctl *admission.Controller
			ctl, err = admission.NewController(network.New(topo), core.Config{})
			if err == nil {
				ds, err = ctl.RequestBatch(specs)
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		rejected = 0
		for _, d := range ds {
			if !d.Admitted {
				rejected++
			}
		}
		if rejected == 0 {
			b.Fatal("contended batch admitted everything; eviction path unexercised")
		}
	}
	b.ReportMetric(float64(rejected), "rejected")
}

// BenchmarkAdmissionShardedCycle1024 is the sharded counterpart of
// BenchmarkAdmissionIncremental1024: one admission + departure cycle at
// a 1024-flow steady state on the 8-ary fat tree. The probe's decision
// and the departure touch only the probe's ~8-flow shard — snapshot,
// delta analysis, result copy and index bookkeeping all scale with the
// closure, not with the 1024 residents (the monolithic engine's
// detached result copy alone is O(flows) per request).
func BenchmarkAdmissionShardedCycle1024(b *testing.B) {
	topo, hosts, err := network.FatTree(8)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := admission.NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// The probe rides inside one resident closure (h0_0_0 -> h0_0_1
	// shares both directed links with the a=0 residents), so a cycle is
	// pure one-shard work; a closure-bridging probe would additionally
	// pay one shard fusion + re-split per cycle.
	probe := func(i int) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(fmt.Sprintf("probe%d", i), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    []network.NodeID{"h0_0_0", "edge0_0", "h0_0_1"},
			Priority: 2,
		}
	}
	benchAdmitCycle(b, ctl, residentSpecs(b, topo, hosts, 4, 1024), probe)
}

// BenchmarkAdmissionIncremental1024 pushes the steady state to 1024 flows
// on an 8-ary fat tree (128 hosts, 80 switches) — the scale where the
// pre-arena engine's per-request deep-copy snapshot dominated.
func BenchmarkAdmissionIncremental1024(b *testing.B) {
	topo, hosts, err := network.FatTree(8)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := admission.NewController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	probe := func(i int) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(fmt.Sprintf("probe%d", i), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    []network.NodeID{"h0_0_0", "edge0_0", "h0_0_2"},
			Priority: 2,
		}
	}
	benchAdmitCycle(b, ctl, residentSpecs(b, topo, hosts, 4, 1024), probe)
}

// benchRingCycle measures one admission + departure cycle through the
// monolithic view-based controller at a steady state of `residents`
// switch-local VoIP flows on a `switches`-switch ring. Four hosts per
// switch and four residents per host group keep every interference
// closure at 16 flows regardless of scale, so the pair below varies ONLY
// the total flow count: an O(affected) cycle stays flat from 1024 to
// 4096 residents, while any O(flows) per-request cost (the pre-view
// engine's detached result copy and snapshot header copy, both gone)
// scales the cycle 4×.
func benchRingCycle(b *testing.B, switches, residents int) {
	b.Helper()
	topo, hosts, err := network.Ring(switches, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := admission.NewController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitCycle(b, ctl, residentSpecs(b, topo, hosts, 4, residents), admissionProbe)
}

// BenchmarkAdmissionCycle1024 is the monolithic steady-state cycle at
// 1024 residents (64-switch ring, 16-flow closures); pair it with
// BenchmarkAdmissionCycle4096 to read the scaling exponent.
func BenchmarkAdmissionCycle1024(b *testing.B) { benchRingCycle(b, 64, 1024) }

// BenchmarkAdmissionCycle4096 is the same 16-flow-closure cycle at 4096
// residents on a 256-switch ring: 4× the flows, identical affected set.
// Near-equal ns/op with BenchmarkAdmissionCycle1024 is the O(affected)
// acceptance check of the copy-on-read result path.
func BenchmarkAdmissionCycle4096(b *testing.B) { benchRingCycle(b, 256, 4096) }

// BenchmarkAdmissionVideoMix256 admits the 256-stream bursty GMF video
// mix (network.VideoMix: IBBPBBPBB GOPs in three rate profiles, every
// fourth stream crossing the ring backbone) as one batch per iteration
// and reports the admitted/rejected split. The nine-frame cycles make
// each per-flow analysis an order of magnitude heavier than the VoIP
// benchmarks — the workload where per-request result copies used to be
// cheap relative to analysis, and batched eviction plus O(affected)
// results still pay.
func BenchmarkAdmissionVideoMix256(b *testing.B) {
	topo, specs, err := network.VideoMix(16, 4, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	admitted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := admission.NewController(network.New(topo), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := ctl.RequestBatch(specs)
		if err != nil {
			b.Fatal(err)
		}
		admitted = 0
		for _, d := range ds {
			if d.Admitted {
				admitted++
			}
		}
		if admitted == 0 {
			b.Fatal("video mix admitted nothing")
		}
	}
	b.ReportMetric(float64(admitted), "admitted")
	b.ReportMetric(float64(len(specs)-admitted), "rejected")
}

// benchParallelBatch drives one contended RequestBatch per iteration
// through the scheduler-backed ParallelController (fresh controller and
// mailboxes each time, Close included in the measured work). Run with
// -cpu 1,4,16 to read the scaling: the batch splits into independent
// closure groups whose decisions run on the worker pool, so ns/op
// should fall near-linearly until the group count or the machine runs
// out. At -cpu 1 this measures the scheduler's overhead over the serial
// sharded controller (same workload: BenchmarkAdmissionSharded1024 /
// BenchmarkAdmissionSharded4096).
func benchParallelBatch(b *testing.B, topo *network.Topology, specs []*network.FlowSpec) {
	b.Helper()
	b.ReportAllocs()
	rejected := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := admission.NewParallelController(network.New(topo), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := ctl.RequestBatch(specs)
		if err != nil {
			b.Fatal(err)
		}
		if err := ctl.Close(); err != nil {
			b.Fatal(err)
		}
		rejected = 0
		for _, d := range ds {
			if !d.Admitted {
				rejected++
			}
		}
		if rejected == 0 {
			b.Fatal("contended batch admitted everything; eviction path unexercised")
		}
	}
	b.ReportMetric(float64(rejected), "rejected")
}

// BenchmarkAdmissionParallelBatch1024 is the multi-core side of the
// 1024-flow contended-batch pair (vs BenchmarkAdmissionSharded1024):
// the same ~6%-heavy batch into an empty 8-ary fat tree, decided by the
// shard scheduler across the worker pool.
func BenchmarkAdmissionParallelBatch1024(b *testing.B) {
	topo, hosts, err := network.FatTree(8)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelBatch(b, topo, contendedSpecs(b, topo, hosts, 1024))
}

// BenchmarkAdmissionParallelBatch4096 scales the contended batch to
// 4096 flows on a 256-switch ring (256 independent 16-flow closures,
// one heavy per closure): the closure-rich regime where shard
// scheduling has the most concurrency to harvest.
func BenchmarkAdmissionParallelBatch4096(b *testing.B) {
	topo, hosts, err := network.Ring(256, 4)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelBatch(b, topo, contendedSpecs(b, topo, hosts, 4096))
}

// BenchmarkAdmissionSharded4096 is the serial baseline for
// BenchmarkAdmissionParallelBatch4096: the identical contended batch
// through the serial sharded controller.
func BenchmarkAdmissionSharded4096(b *testing.B) {
	topo, hosts, err := network.Ring(256, 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchInto(b, topo, contendedSpecs(b, topo, hosts, 4096), true)
}

// benchParallelCycle measures the steady-state cycle through the
// scheduler: per iteration, `probes` single-flow submissions into
// distinct switch closures are pipelined (all submitted before any is
// waited for), decided concurrently on the pool, then released, with
// one Flush re-splitting after the departures. Residents are admitted
// once in setup via a single batch.
func benchParallelCycle(b *testing.B, switches, residents, probes int) {
	b.Helper()
	topo, hosts, err := network.Ring(switches, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := admission.NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := ctl.RequestBatch(residentSpecs(b, topo, hosts, 4, residents))
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range ds {
		if !d.Admitted {
			b.Fatalf("resident %s rejected during setup", d.FlowName)
		}
	}
	probeSpec := func(i, p int) *network.FlowSpec {
		s := (p * switches) / probes // spread probes across the ring
		return &network.FlowSpec{
			Flow: trace.VoIP(fmt.Sprintf("probe%d_%d", i, p), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route: []network.NodeID{
				network.NodeID(fmt.Sprintf("h%d_0", s)),
				network.NodeID(fmt.Sprintf("sw%d", s)),
				network.NodeID(fmt.Sprintf("h%d_1", s)),
			},
			Priority: 2,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tickets := make([]*admission.PendingBatch, probes)
		for p := 0; p < probes; p++ {
			t, err := ctl.SubmitBatch([]*network.FlowSpec{probeSpec(i, p)})
			if err != nil {
				b.Fatal(err)
			}
			tickets[p] = t
		}
		for p, t := range tickets {
			ds, err := t.Wait()
			if err != nil {
				b.Fatal(err)
			}
			if !ds[0].Admitted {
				b.Fatalf("probe %d rejected", p)
			}
		}
		for p := 0; p < probes; p++ {
			if _, err := ctl.Release(fmt.Sprintf("probe%d_%d", i, p)); err != nil {
				b.Fatal(err)
			}
		}
		if err := ctl.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := ctl.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdmissionParallelCycle1024 runs 16 pipelined probe/release
// cycles per iteration against a 1024-flow steady state on a 64-switch
// ring; pair with -cpu 1,4,16 for the steady-state scaling read.
func BenchmarkAdmissionParallelCycle1024(b *testing.B) { benchParallelCycle(b, 64, 1024, 16) }

// BenchmarkAdmissionParallelCycle4096 is the same pipelined cycle at a
// 4096-flow steady state on a 256-switch ring.
func BenchmarkAdmissionParallelCycle4096(b *testing.B) { benchParallelCycle(b, 256, 4096, 16) }

// figure1Bounds computes the holistic bounds of the shared E3/E5 scenario.
func figure1Bounds(b *testing.B) *core.Result {
	b.Helper()
	nw := mustFigure1Scenario(b)
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// mustFigure1Scenario rebuilds the E3/E5 scenario: MPEG + VoIP + CBR cross
// traffic on Figure 1 at 10 Mbit/s.
func mustFigure1Scenario(b *testing.B) *network.Network {
	b.Helper()
	topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{
			Flow:     trace.MPEGIBBPBBPBB("mpeg", trace.MPEGOptions{Deadline: 300 * units.Millisecond}),
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 2,
		},
		{
			Flow:     trace.VoIP("voip", trace.VoIPOptions{Deadline: 100 * units.Millisecond, Jitter: 500 * units.Microsecond}),
			Route:    []network.NodeID{"2", "5", "6", "3"},
			Priority: 3,
		},
		{
			Flow:     trace.CBRVideo("cbr", 4000, 40*units.Millisecond, 300*units.Millisecond),
			Route:    []network.NodeID{"1", "4", "6", "3"},
			Priority: 1,
		},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			b.Fatal(err)
		}
	}
	return nw
}

// deepRingSystem builds the near-critical 12-switch ring the
// accelerated-fixpoint work is calibrated on (mirroring the scenario
// pinned by internal/core's TestAcceleratedDeepChainIterations): the
// ring closes a directed interference cycle, so jitter circulates in
// laps and the plain holistic iteration converges by slow geometric
// damping — the regime Anderson extrapolation collapses.
func deepRingSystem(b *testing.B) *gmfnet.System {
	b.Helper()
	const switches = 12
	topo := gmfnet.NewTopology()
	for s := 0; s < switches; s++ {
		topo.AddSwitch(gmfnet.NodeID(fmt.Sprintf("sw%d", s)), gmfnet.DefaultSwitchParams())
	}
	for s := 0; s < switches; s++ {
		a := gmfnet.NodeID(fmt.Sprintf("sw%d", s))
		z := gmfnet.NodeID(fmt.Sprintf("sw%d", (s+1)%switches))
		if err := topo.AddDuplexLink(a, z, 100*gmfnet.Mbps, gmfnet.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
	for s := 0; s < switches; s++ {
		sw := gmfnet.NodeID(fmt.Sprintf("sw%d", s))
		for h := 0; h < 2; h++ {
			host := gmfnet.NodeID(fmt.Sprintf("h%d_%d", s, h))
			topo.AddHost(host)
			if err := topo.AddDuplexLink(host, sw, 100*gmfnet.Mbps, gmfnet.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	}
	sys := gmfnet.NewSystem(topo)
	for s := 0; s < switches; s++ {
		src := gmfnet.NodeID(fmt.Sprintf("h%d_0", s))
		dst := gmfnet.NodeID(fmt.Sprintf("h%d_1", (s+switches-3)%switches))
		route, err := topo.Route(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		sys.MustAddFlow(&gmfnet.FlowSpec{
			Flow:     gmfnet.CBRVideo(fmt.Sprintf("video%d", s), 65000, 30*gmfnet.Millisecond, 2*gmfnet.Second),
			Route:    route,
			Priority: 1,
		})
	}
	return sys
}

// benchDeepRing converges the deep ring from cold once per iteration
// and reports the convergence breakdown next to the wall clock:
// sweeps/op are the advancing holistic sweeps (Result.Iterations),
// rounds/op every worklist round including safeguard verification
// sweeps — the number that must drop for acceleration to be a real
// speedup rather than an accounting one.
func benchDeepRing(b *testing.B, cfg gmfnet.AnalysisConfig) {
	b.Helper()
	sys := deepRingSystem(b)
	var stats gmfnet.ConvergenceStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := sys.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		view, err := eng.AnalyzeView()
		if err != nil {
			b.Fatal(err)
		}
		if !view.Schedulable() {
			b.Fatal("deep ring must be schedulable")
		}
		stats = view.Stats()
		view.Close()
	}
	b.ReportMetric(float64(stats.Iterations), "sweeps/op")
	b.ReportMetric(float64(stats.WorklistRounds), "rounds/op")
	b.ReportMetric(float64(stats.AccelSteps), "acceljumps/op")
}

// BenchmarkAdmissionDeepRingPlain is the unaccelerated baseline of the
// deep-ring convergence pair.
func BenchmarkAdmissionDeepRingPlain(b *testing.B) {
	benchDeepRing(b, gmfnet.AnalysisConfig{})
}

// BenchmarkAdmissionDeepRingAccel is the same closure under the
// safeguarded Anderson acceleration: identical bounds and verdicts,
// ≥30% fewer advancing sweeps and fewer total rounds than Plain.
func BenchmarkAdmissionDeepRingAccel(b *testing.B) {
	benchDeepRing(b, gmfnet.AnalysisConfig{Accel: true})
}

// BenchmarkAdmissionOpenLoop4096 replays a synthesized open-loop
// workload — 4096 requests with exponential holds over a 512-group
// backbone, the thousand-closure regime cmd/gmfnet-load drives at
// million-request scale — through the parallel controller with
// counters-only retention. One iteration is the whole replay, so the
// archive tracks the load harness's steady-state cost per commit.
func BenchmarkAdmissionOpenLoop4096(b *testing.B) {
	spec := workload.TopoSpec{Kind: "backbone", Switches: 16, Fanout: 16, Hosts: 2}
	h, ops, err := workload.Synthesize(spec, workload.Config{
		Seed: 1, Requests: 4096, Hold: 1024, Local: 1, Heavy: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	topo, _, err := h.Topo.Build()
	if err != nil {
		b.Fatal(err)
	}
	// Rebuild the flow specs once; replays share them like every other
	// admission bench shares its batch across iterations.
	specs := make([]*network.FlowSpec, len(ops))
	for i := range ops {
		if ops[i].Op != "add" {
			continue
		}
		if specs[i], err = ops[i].Spec(topo); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ctl, err := admission.NewParallelController(network.New(topo), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ctl.SetRetention(admission.RetainCounters)
		var batch []*network.FlowSpec
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := ctl.RequestBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
		for i := range ops {
			if ops[i].Op == "add" {
				batch = append(batch, specs[i])
				if len(batch) == 64 {
					flush()
				}
				continue
			}
			flush()
			if _, err := ctl.Release(ops[i].Name); err != nil {
				b.Fatal(err)
			}
		}
		flush()
		if err := ctl.Close(); err != nil {
			b.Fatal(err)
		}
		if got := ctl.Admitted() + ctl.Rejected(); got != 4096 {
			b.Fatalf("decided %d of 4096", got)
		}
	}
}
