package gmfsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmfnet/internal/core"
	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

const ms = units.Millisecond

// simpleTask: one frame, payload such that C = 2 ms at 10 Mbit/s is not
// round; use explicit small numbers instead through a 2-frame flow.
func twoFrameTask(t *testing.T) *Task {
	t.Helper()
	flow := &gmf.Flow{Name: "x", Frames: []gmf.Frame{
		{MinSep: 10 * ms, Deadline: 5 * ms, PayloadBits: 11840 - 64},    // C = 1.2304 ms
		{MinSep: 30 * ms, Deadline: 20 * ms, PayloadBits: 2*11840 - 64}, // C = 2.4608 ms
	}}
	task, err := NewTask(flow, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewTaskErrors(t *testing.T) {
	if _, err := NewTask(&gmf.Flow{Name: "e"}, 10*units.Mbps, false); err == nil {
		t.Error("invalid flow accepted")
	}
	good := &gmf.Flow{Name: "g", Frames: []gmf.Frame{{MinSep: ms, Deadline: ms, PayloadBits: 8}}}
	if _, err := NewTask(good, 0, false); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestTaskAccessors(t *testing.T) {
	task := twoFrameTask(t)
	if task.N() != 2 || task.Name() != "x" {
		t.Fatalf("accessors: %d %q", task.N(), task.Name())
	}
	wantU := (1.2304 + 2.4608) / 40.0
	if diff := task.Utilization() - wantU; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utilization = %v, want %v", task.Utilization(), wantU)
	}
}

func TestDBFHandComputed(t *testing.T) {
	task := twoFrameTask(t)
	c0 := units.TxTime(12304, 10*units.Mbps)   // 1.2304 ms
	c1 := units.TxTime(2*12304, 10*units.Mbps) // 2.4608 ms
	cases := []struct {
		h    units.Time
		want units.Time
	}{
		{0, 0},
		{4 * ms, 0},                  // no deadline fits
		{5 * ms, c0},                 // frame 0's deadline at 5 ms
		{20 * ms, c1},                // frame 1 alone (start at k1=1)
		{10*ms + 20*ms, c0 + c1},     // frame 0 at 0, frame 1 at 10 ms, deadline 30 ms
		{30*ms + 5*ms, c1 + c0},      // start at frame 1: frame 0 arrives at 30 ms
		{40*ms + 5*ms, c0 + c1 + c0}, // full cycle + next frame 0
	}
	for _, c := range cases {
		if got := task.DBF(c.h); got != c.want {
			t.Errorf("DBF(%v) = %v, want %v", c.h, got, c.want)
		}
	}
}

func TestDBFMonotone(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		flow := trace.Random("r", rng, trace.RandomOptions{DeadlineFactor: 1.5})
		task, err := NewTask(flow, 100*units.Mbps, false)
		if err != nil {
			return false
		}
		a := units.Time(aRaw) * ms / 4
		b := units.Time(bRaw) * ms / 4
		if a > b {
			a, b = b, a
		}
		return task.DBF(a) <= task.DBF(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDBFFastForwardMatchesSlowWalk(t *testing.T) {
	// Oracle: recompute DBF without the cycle fast-forward.
	slow := func(task *Task, h units.Time) units.Time {
		if h <= 0 {
			return 0
		}
		n := task.N()
		var best units.Time
		for k1 := 0; k1 < n; k1++ {
			var demand, arrival units.Time
			for m := 0; arrival <= h; m++ {
				idx := (k1 + m) % n
				if arrival+task.d[idx] <= h {
					demand += task.c[idx]
				}
				arrival += task.t[idx]
			}
			if demand > best {
				best = demand
			}
		}
		return best
	}
	f := func(seed int64, hRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		flow := trace.Random("r", rng, trace.RandomOptions{DeadlineFactor: 2})
		task, err := NewTask(flow, 100*units.Mbps, false)
		if err != nil {
			return false
		}
		h := units.Time(hRaw) * ms
		return task.DBF(h) == slow(task, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLMAD(t *testing.T) {
	good := &gmf.Flow{Name: "g", Frames: []gmf.Frame{
		{MinSep: 10 * ms, Deadline: 10 * ms, PayloadBits: 8},
		{MinSep: 10 * ms, Deadline: 10 * ms, PayloadBits: 8},
	}}
	task, err := NewTask(good, units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	if !task.LMAD() {
		t.Fatal("uniform deadlines must satisfy l-MAD")
	}
	bad := &gmf.Flow{Name: "b", Frames: []gmf.Frame{
		{MinSep: 10 * ms, Deadline: 50 * ms, PayloadBits: 8}, // 50 > 10+5
		{MinSep: 10 * ms, Deadline: 5 * ms, PayloadBits: 8},
	}}
	task, err = NewTask(bad, units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	if task.LMAD() {
		t.Fatal("decreasing absolute deadlines must violate l-MAD")
	}
}

func TestEDFFeasibleEmptyAndOverload(t *testing.T) {
	if res := EDFFeasible(nil); !res.Feasible {
		t.Fatal("empty set infeasible")
	}
	heavy := &gmf.Flow{Name: "h", Frames: []gmf.Frame{
		{MinSep: 10 * ms, Deadline: 10 * ms, PayloadBits: 140000 * 8},
	}}
	task, err := NewTask(heavy, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	res := EDFFeasible([]*Task{task})
	if res.Feasible {
		t.Fatal("overloaded set feasible")
	}
	if res.Utilization < 1 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
}

func TestEDFFeasibleBoundary(t *testing.T) {
	// One flow with deadline exactly its transmission time: feasible
	// alone; two of them with deadline below combined demand: not.
	c := units.TxTime(12304, 10*units.Mbps)
	one := &gmf.Flow{Name: "a", Frames: []gmf.Frame{
		{MinSep: 100 * ms, Deadline: c, PayloadBits: 11840 - 64},
	}}
	ta, err := NewTask(one, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	if res := EDFFeasible([]*Task{ta}); !res.Feasible {
		t.Fatalf("single tight flow rejected: %+v", res)
	}
	tb, err := NewTask(&gmf.Flow{Name: "b", Frames: []gmf.Frame{
		{MinSep: 100 * ms, Deadline: c, PayloadBits: 11840 - 64},
	}}, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	res := EDFFeasible([]*Task{ta, tb})
	if res.Feasible {
		t.Fatal("two tight flows cannot both meet deadline C")
	}
	if res.FailAt != c {
		t.Fatalf("FailAt = %v, want %v", res.FailAt, c)
	}
}

// TestEDFDominatesPaperFirstHop: whenever the paper's first-hop analysis
// (any work-conserving discipline) admits a single-link workload, the
// idealized EDF test must too — EDF is optimal on one resource.
func TestEDFDominatesPaperFirstHop(t *testing.T) {
	rate := 10 * units.Mbps
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo := network.NewTopology()
		if err := topo.AddHost("h1"); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddHost("h2"); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddDuplexLink("h1", "h2", rate, 0); err != nil {
			t.Fatal(err)
		}
		nw := network.New(topo)
		var tasks []*Task
		nFlows := 1 + rng.Intn(4)
		for f := 0; f < nFlows; f++ {
			flow := trace.Random("r", rng, trace.RandomOptions{
				MaxPayloadBytes: 15000,
				DeadlineFactor:  0.5 + rng.Float64(),
			})
			if _, err := nw.AddFlow(&network.FlowSpec{
				Flow:  flow,
				Route: []network.NodeID{"h1", "h2"},
			}); err != nil {
				t.Fatal(err)
			}
			task, err := NewTask(flow, rate, false)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, task)
		}
		an, err := core.NewAnalyzer(nw, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := an.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedulable() && !EDFFeasible(tasks).Feasible {
			t.Fatalf("seed %d: paper analysis admits but EDF (optimal) rejects", seed)
		}
	}
}

func TestDBFAtMostRequestBound(t *testing.T) {
	// dbf(t) (deadline-constrained demand) never exceeds the request
	// bound MX(t) (all arrivals in t) of the same flow on the same link.
	f := func(seed int64, hRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		flow := trace.Random("r", rng, trace.RandomOptions{DeadlineFactor: 1.2})
		task, err := NewTask(flow, 100*units.Mbps, false)
		if err != nil {
			return false
		}
		d, err := ether.DemandFor(flow, 100*units.Mbps, false)
		if err != nil {
			return false
		}
		h := units.Time(hRaw) * ms / 2
		return task.DBF(h) <= d.MX(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
