// Package gmfsched implements single-resource schedulability theory from
// the original generalized multiframe paper (Baruah, Chen, Gorinsky, Mok:
// "Generalized multiframe tasks", Real-Time Systems 17, 1999 — the
// network paper's reference [6]): demand-bound functions, the l-MAD
// (localized Monotonic Absolute Deadlines) property, and an idealized
// preemptive-EDF feasibility test.
//
// In the network setting this serves as an optimality baseline for one
// link: preemptive EDF is optimal on a single resource, so its demand
// criterion upper-bounds what ANY output-queue discipline (including the
// paper's static priorities with non-preemptive frames and stride-induced
// delays) could admit. Comparing the two quantifies how much capacity the
// implementable discipline gives up.
package gmfsched

import (
	"sort"

	"fmt"

	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// Task is a GMF task bound to one resource: per-frame execution times
// (link transmission times), minimum separations and relative deadlines.
type Task struct {
	name string
	c    []units.Time
	t    []units.Time
	d    []units.Time
	tsum units.Time
	csum units.Time
}

// NewTask builds the single-link task of a flow: C_i^k is the wire time
// of frame k at the given rate.
func NewTask(flow *gmf.Flow, rate units.BitRate, rtp bool) (*Task, error) {
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("gmfsched: non-positive rate")
	}
	n := flow.N()
	task := &Task{
		name: flow.Name,
		c:    make([]units.Time, n),
		t:    make([]units.Time, n),
		d:    make([]units.Time, n),
	}
	for k := 0; k < n; k++ {
		udp := ether.UDPBits(flow.Frames[k].PayloadBits, rtp)
		task.c[k] = ether.TxTime(udp, rate)
		task.t[k] = flow.Frames[k].MinSep
		task.d[k] = flow.Frames[k].Deadline
		task.tsum += task.t[k]
		task.csum += task.c[k]
	}
	return task, nil
}

// N returns the number of frames.
func (t *Task) N() int { return len(t.c) }

// Name returns the originating flow's name.
func (t *Task) Name() string { return t.name }

// Utilization returns CSUM/TSUM.
func (t *Task) Utilization() float64 { return float64(t.csum) / float64(t.tsum) }

// LMAD reports whether the task satisfies localized Monotonic Absolute
// Deadlines: D_i^k <= T_i^k + D_i^{(k+1) mod n} for every k. Under l-MAD
// the original paper's simpler tests apply; DBF below does not require
// it.
func (t *Task) LMAD() bool {
	n := t.N()
	for k := 0; k < n; k++ {
		if t.d[k] > t.t[k]+t.d[(k+1)%n] {
			return false
		}
	}
	return true
}

// DBF returns the demand-bound function at horizon h: the maximum total
// execution of jobs that both arrive and have their absolute deadline
// within any interval of length h, maximised over the starting frame.
func (t *Task) DBF(h units.Time) units.Time {
	if h <= 0 {
		return 0
	}
	n := t.N()
	var maxD units.Time
	for _, d := range t.d {
		if d > maxD {
			maxD = d
		}
	}
	var best units.Time
	for k1 := 0; k1 < n; k1++ {
		var demand, arrival units.Time
		m := 0
		for arrival <= h {
			// Every job of a full cycle arriving before h-maxD has its
			// deadline within h; fast-forward those cycles in bulk.
			if m%n == 0 && h >= maxD+arrival+t.tsum {
				q := (h - maxD - arrival) / t.tsum
				demand += units.Time(q) * t.csum
				arrival += units.Time(q) * t.tsum
			}
			idx := (k1 + m) % n
			if arrival+t.d[idx] <= h {
				demand += t.c[idx]
			}
			arrival += t.t[idx]
			m++
		}
		if demand > best {
			best = demand
		}
	}
	return best
}

// Feasibility is the verdict of the EDF demand test.
type Feasibility struct {
	// Feasible reports whether total demand never exceeded supply.
	Feasible bool
	// FailAt is the first horizon at which demand exceeded supply (valid
	// when !Feasible).
	FailAt units.Time
	// Horizon is the largest horizon tested.
	Horizon units.Time
	// Utilization is the task set's total utilisation.
	Utilization float64
}

// EDFFeasible runs the processor-demand criterion for preemptive EDF on
// one resource: for every testing horizon h, sum of DBFs must be at most
// h. Utilisation at or above 1 is immediately infeasible.
func EDFFeasible(tasks []*Task) Feasibility {
	var util float64
	for _, t := range tasks {
		util += t.Utilization()
	}
	out := Feasibility{Utilization: util}
	if util >= 1 {
		return out
	}
	if len(tasks) == 0 {
		out.Feasible = true
		return out
	}

	// Standard horizon bound for the demand criterion: beyond
	// L = max_D + U/(1-U) * max_TSUM-scale backlog, dbf(t) <= U*t < t.
	var maxD, sumC units.Time
	for _, t := range tasks {
		for _, d := range t.d {
			if d > maxD {
				maxD = d
			}
		}
		sumC += t.csum
	}
	backlog := units.Time(float64(sumC) / (1 - util))
	horizon := maxD + backlog
	out.Horizon = horizon

	// Testing points: absolute deadlines of jobs released from every
	// phase, collected per task up to the horizon, checked in order so
	// the first failure is reported.
	points := make(map[units.Time]bool)
	for _, t := range tasks {
		n := t.N()
		for k1 := 0; k1 < n; k1++ {
			var arrival units.Time
			for m := 0; ; m++ {
				idx := (k1 + m) % n
				dl := arrival + t.d[idx]
				if arrival > horizon {
					break
				}
				if dl <= horizon {
					points[dl] = true
				}
				arrival += t.t[idx]
			}
		}
	}
	sorted := make([]units.Time, 0, len(points))
	for h := range points {
		sorted = append(sorted, h)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, h := range sorted {
		var demand units.Time
		for _, t := range tasks {
			demand += t.DBF(h)
		}
		if demand > h {
			out.FailAt = h
			return out
		}
	}
	out.Feasible = true
	return out
}
