// Package report renders experiment results as aligned ASCII tables and
// CSV, the output formats of the benchmark harness and CLIs.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers names the columns.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := 0; i < len(t.Headers) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprint(c)
	}
	t.AddRow(s...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) RenderCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := io.WriteString(w, strings.Join(out, ",")+"\n")
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}
