package report

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := NewTable("T1", "flow", "bound")
	tb.AddRow("video", "12.5ms")
	tb.AddRow("a", "3ms")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (%q)", len(lines), out)
	}
	if lines[0] != "T1" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "flow ") || !strings.Contains(lines[1], "bound") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "-----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "video" is the widest cell in column 1.
	if !strings.HasPrefix(lines[3], "video  ") {
		t.Errorf("row = %q", lines[3])
	}
	if !strings.HasPrefix(lines[4], "a      ") {
		t.Errorf("row = %q", lines[4])
	}
}

func TestAddRowMismatchedCells(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")           // short row pads
	tb.AddRow("1", "2", "3") // long row truncates
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Errorf("extra cell kept: %q", out)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "n", "x")
	tb.AddRowf(42, 1.5)
	out := tb.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "1.5") {
		t.Errorf("formatted row missing: %q", out)
	}
}

func TestNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "note")
	tb.AddRow("plain", "ok")
	tb.AddRow("with,comma", `say "hi"`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,note\nplain,ok\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
