package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmfnet/internal/units"
)

const ms = units.Millisecond

func TestMPEGDefaults(t *testing.T) {
	f := MPEGIBBPBBPBB("mpeg", MPEGOptions{})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.N() != 9 {
		t.Fatalf("N = %d, want 9 (IBBPBBPBB)", f.N())
	}
	// Figure 3/4: transmitted every 30 ms, cycle of 270 ms.
	if f.TSUM() != 270*ms {
		t.Fatalf("TSUM = %v, want 270ms", f.TSUM())
	}
	// Frame order: I+P, B, B, P, B, B, P, B, B.
	wantBytes := []int64{18000, 1500, 1500, 6000, 1500, 1500, 6000, 1500, 1500}
	for k, w := range wantBytes {
		if f.Frames[k].PayloadBits != w*8 {
			t.Errorf("frame %d payload = %d bits, want %d", k, f.Frames[k].PayloadBits, w*8)
		}
	}
	if f.MaxJitter() != ms {
		t.Fatalf("jitter = %v, want 1ms", f.MaxJitter())
	}
}

func TestMPEGCustomAndZeroJitter(t *testing.T) {
	f := MPEGIBBPBBPBB("m", MPEGOptions{
		IPBytes: 20000, PBytes: 7000, BBytes: 1600,
		FramePeriod: 40 * ms, Deadline: 200 * ms, Jitter: -1,
	})
	if f.TSUM() != 360*ms {
		t.Fatalf("TSUM = %v, want 360ms", f.TSUM())
	}
	if f.MaxJitter() != 0 {
		t.Fatalf("jitter = %v, want 0", f.MaxJitter())
	}
	if f.Frames[0].PayloadBits != 20000*8 || f.Frames[3].PayloadBits != 7000*8 {
		t.Fatal("custom sizes not applied")
	}
}

func TestVoIPDefaults(t *testing.T) {
	f := VoIP("voip", VoIPOptions{})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.N() != 1 {
		t.Fatalf("N = %d, want 1", f.N())
	}
	fr := f.Frames[0]
	if fr.PayloadBits != 160*8 || fr.MinSep != 20*ms || fr.Deadline != 20*ms {
		t.Fatalf("defaults wrong: %+v", fr)
	}
}

func TestCBRVideo(t *testing.T) {
	f := CBRVideo("cbr", 5000, 10*ms, 50*ms)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Frames[0].PayloadBits != 40000 || f.TSUM() != 10*ms {
		t.Fatalf("cbr frame wrong: %+v", f.Frames[0])
	}
}

func TestRandomFlowsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := Random("r", rng, RandomOptions{MaxJitter: 5 * ms})
		if err := fl.Validate(); err != nil {
			return false
		}
		// Deadline factor 1.0: deadline equals TSUM.
		return fl.Frames[0].Deadline == fl.TSUM()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	opt := RandomOptions{
		MinFrames: 2, MaxFrames: 4,
		MinSep: 5 * ms, MaxSep: 10 * ms,
		MinPayloadBytes: 100, MaxPayloadBytes: 200,
		DeadlineFactor: 2.0,
	}
	for i := 0; i < 200; i++ {
		fl := Random("r", rng, opt)
		if fl.N() < 2 || fl.N() > 4 {
			t.Fatalf("N = %d out of [2,4]", fl.N())
		}
		for _, fr := range fl.Frames {
			if fr.MinSep < 5*ms || fr.MinSep > 10*ms {
				t.Fatalf("sep %v out of bounds", fr.MinSep)
			}
			if fr.PayloadBits < 800 || fr.PayloadBits > 1600 {
				t.Fatalf("payload %d out of bounds", fr.PayloadBits)
			}
			if fr.Jitter != 0 {
				t.Fatalf("jitter %v, want 0 when MaxJitter unset", fr.Jitter)
			}
		}
		if fl.Frames[0].Deadline != 2*fl.TSUM() {
			t.Fatalf("deadline %v != 2×TSUM %v", fl.Frames[0].Deadline, fl.TSUM())
		}
	}
}

func TestRandomPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted bounds did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	Random("r", rng, RandomOptions{MinFrames: 5, MaxFrames: 2})
}

func TestRandomDeterministic(t *testing.T) {
	a := Random("r", rand.New(rand.NewSource(9)), RandomOptions{})
	b := Random("r", rand.New(rand.NewSource(9)), RandomOptions{})
	if a.N() != b.N() {
		t.Fatal("same seed produced different flows")
	}
	for k := range a.Frames {
		if a.Frames[k] != b.Frames[k] {
			t.Fatal("same seed produced different frames")
		}
	}
}
