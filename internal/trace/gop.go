package trace

import (
	"fmt"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// GOPSizes maps picture types to payload sizes in bytes.
type GOPSizes struct {
	// I, P and B are the payloads of the respective picture types.
	I, P, B int64
}

// DefaultGOPSizes matches the MPEGIBBPBBPBB defaults: I frames carry the
// combined I+P payload of the paper's example.
func DefaultGOPSizes() GOPSizes { return GOPSizes{I: 18000, P: 6000, B: 1500} }

// MPEGFromGOP builds a GMF flow from an arbitrary GOP pattern string such
// as "IBBPBBPBB" or "IPPPP". Each letter becomes one frame with the
// corresponding payload; all frames share the period, deadline and jitter.
// Only 'I', 'P' and 'B' (upper case) are accepted.
func MPEGFromGOP(name, pattern string, sizes GOPSizes, period, deadline, jitter units.Time) (*gmf.Flow, error) {
	if pattern == "" {
		return nil, fmt.Errorf("trace: empty GOP pattern")
	}
	if sizes.I <= 0 || sizes.P <= 0 || sizes.B <= 0 {
		return nil, fmt.Errorf("trace: GOP sizes must be positive, got %+v", sizes)
	}
	if period <= 0 || deadline <= 0 || jitter < 0 {
		return nil, fmt.Errorf("trace: invalid timing (period %v, deadline %v, jitter %v)", period, deadline, jitter)
	}
	f := &gmf.Flow{Name: name}
	for i, ch := range pattern {
		var bytes int64
		switch ch {
		case 'I':
			bytes = sizes.I
		case 'P':
			bytes = sizes.P
		case 'B':
			bytes = sizes.B
		default:
			return nil, fmt.Errorf("trace: GOP pattern %q: invalid picture type %q at %d", pattern, ch, i)
		}
		f.Frames = append(f.Frames, gmf.Frame{
			MinSep:      period,
			Deadline:    deadline,
			Jitter:      jitter,
			PayloadBits: bytes * 8,
		})
	}
	return f, nil
}
