package trace

import (
	"strings"
	"testing"

	"gmfnet/internal/units"
)

func TestMPEGFromGOP(t *testing.T) {
	f, err := MPEGFromGOP("v", "IBBP", DefaultGOPSizes(), 30*ms, 120*ms, ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.N() != 4 {
		t.Fatalf("N = %d", f.N())
	}
	want := []int64{18000, 1500, 1500, 6000}
	for k, w := range want {
		if f.Frames[k].PayloadBits != w*8 {
			t.Errorf("frame %d = %d bits, want %d", k, f.Frames[k].PayloadBits, w*8)
		}
	}
	if f.TSUM() != 120*ms {
		t.Fatalf("TSUM = %v", f.TSUM())
	}
}

func TestMPEGFromGOPMatchesPreset(t *testing.T) {
	viaGOP, err := MPEGFromGOP("m", "IBBPBBPBB", DefaultGOPSizes(), 30*ms, 100*ms, ms)
	if err != nil {
		t.Fatal(err)
	}
	preset := MPEGIBBPBBPBB("m", MPEGOptions{})
	if viaGOP.N() != preset.N() {
		t.Fatalf("N mismatch: %d vs %d", viaGOP.N(), preset.N())
	}
	for k := range preset.Frames {
		if viaGOP.Frames[k].PayloadBits != preset.Frames[k].PayloadBits {
			t.Errorf("frame %d payload mismatch", k)
		}
	}
}

func TestMPEGFromGOPErrors(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		sizes   GOPSizes
		period  units.Time
		dl      units.Time
		jit     units.Time
		wantErr string
	}{
		{"empty", "", DefaultGOPSizes(), ms, ms, 0, "empty"},
		{"lowercase", "ibb", DefaultGOPSizes(), ms, ms, 0, "invalid picture type"},
		{"bad char", "IXP", DefaultGOPSizes(), ms, ms, 0, "invalid picture type"},
		{"zero size", "I", GOPSizes{I: 0, P: 1, B: 1}, ms, ms, 0, "positive"},
		{"zero period", "I", DefaultGOPSizes(), 0, ms, 0, "timing"},
		{"zero deadline", "I", DefaultGOPSizes(), ms, 0, 0, "timing"},
		{"neg jitter", "I", DefaultGOPSizes(), ms, ms, -1, "timing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := MPEGFromGOP("v", c.pattern, c.sizes, c.period, c.dl, c.jit)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q missing %q", err, c.wantErr)
			}
		})
	}
}
