// Package trace provides workload generators: the paper's MPEG GOP example
// (Figure 3), VoIP and CBR video presets, and seeded random GMF workloads
// for parameter sweeps.
package trace

import (
	"fmt"
	"math/rand"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// MPEGOptions parameterises the Figure 3 stream: the GOP IBBPBBPBB
// transmitted as UDP packets every 30 ms, repeating every 270 ms.
//
// The paper's Figure 4 lists concrete per-frame transmission times that
// are illegible in the available text (DESIGN.md F7); the defaults below
// are representative MPEG-2 frame sizes at standard definition.
type MPEGOptions struct {
	// IPBytes is the payload of the combined "I+P" frame that opens the
	// GOP. Zero selects 18000 bytes.
	IPBytes int64
	// PBytes is the payload of a P frame. Zero selects 6000 bytes.
	PBytes int64
	// BBytes is the payload of a B frame. Zero selects 1500 bytes.
	BBytes int64
	// FramePeriod is the spacing between transmitted frames. Zero
	// selects 30 ms (Figure 3's timeline).
	FramePeriod units.Time
	// Deadline is the relative end-to-end deadline of every frame. Zero
	// selects 100 ms (a videoconferencing latency budget).
	Deadline units.Time
	// Jitter is the generalized jitter of every frame. Zero selects 1 ms
	// (the value used for Figure 4's illustration). Use a negative value
	// for zero jitter.
	Jitter units.Time
}

func (o MPEGOptions) withDefaults() MPEGOptions {
	if o.IPBytes == 0 {
		o.IPBytes = 18000
	}
	if o.PBytes == 0 {
		o.PBytes = 6000
	}
	if o.BBytes == 0 {
		o.BBytes = 1500
	}
	if o.FramePeriod == 0 {
		o.FramePeriod = 30 * units.Millisecond
	}
	if o.Deadline == 0 {
		o.Deadline = 100 * units.Millisecond
	}
	switch {
	case o.Jitter == 0:
		o.Jitter = units.Millisecond
	case o.Jitter < 0:
		o.Jitter = 0
	}
	return o
}

// MPEGIBBPBBPBB builds the paper's Figure 3 flow: nine frames in
// transmission order I+P, B, B, P, B, B, P, B, B with equal 30 ms spacing,
// so TSUM = 270 ms.
func MPEGIBBPBBPBB(name string, opt MPEGOptions) *gmf.Flow {
	opt = opt.withDefaults()
	sizes := []int64{
		opt.IPBytes, // I+P
		opt.BBytes, opt.BBytes,
		opt.PBytes,
		opt.BBytes, opt.BBytes,
		opt.PBytes,
		opt.BBytes, opt.BBytes,
	}
	f := &gmf.Flow{Name: name}
	for _, bytes := range sizes {
		f.Frames = append(f.Frames, gmf.Frame{
			MinSep:      opt.FramePeriod,
			Deadline:    opt.Deadline,
			Jitter:      opt.Jitter,
			PayloadBits: bytes * 8,
		})
	}
	return f
}

// VoIPOptions parameterises a constant-bit-rate telephony flow.
type VoIPOptions struct {
	// PayloadBytes per packet. Zero selects 160 (G.711, 20 ms of audio).
	PayloadBytes int64
	// Period between packets. Zero selects 20 ms.
	Period units.Time
	// Deadline per packet. Zero selects 20 ms (one period: the next
	// packet must not queue behind the previous one).
	Deadline units.Time
	// Jitter at the source. Zero means none.
	Jitter units.Time
}

// VoIP builds a single-frame GMF flow modelling a G.711-style voice
// stream.
func VoIP(name string, opt VoIPOptions) *gmf.Flow {
	if opt.PayloadBytes == 0 {
		opt.PayloadBytes = 160
	}
	if opt.Period == 0 {
		opt.Period = 20 * units.Millisecond
	}
	if opt.Deadline == 0 {
		opt.Deadline = 20 * units.Millisecond
	}
	return &gmf.Flow{Name: name, Frames: []gmf.Frame{{
		MinSep:      opt.Period,
		Deadline:    opt.Deadline,
		Jitter:      opt.Jitter,
		PayloadBits: opt.PayloadBytes * 8,
	}}}
}

// CBRVideo builds a constant-bit-rate video flow: equal frames of
// frameBytes every period.
func CBRVideo(name string, frameBytes int64, period, deadline units.Time) *gmf.Flow {
	return &gmf.Flow{Name: name, Frames: []gmf.Frame{{
		MinSep:      period,
		Deadline:    deadline,
		Jitter:      0,
		PayloadBits: frameBytes * 8,
	}}}
}

// RandomOptions bounds the random GMF workload generator.
type RandomOptions struct {
	// Frames is the range of n_i (inclusive). Zeros select [1, 6].
	MinFrames, MaxFrames int
	// Separation is the range of T_i^k. Zeros select [10 ms, 100 ms].
	MinSep, MaxSep units.Time
	// PayloadBytes is the range of payload sizes. Zeros select
	// [200 B, 30 kB].
	MinPayloadBytes, MaxPayloadBytes int64
	// DeadlineFactor scales the deadline: D = factor × TSUM. Zero
	// selects 1.0.
	DeadlineFactor float64
	// MaxJitter bounds the random source jitter. Zero means none.
	MaxJitter units.Time
}

func (o RandomOptions) withDefaults() RandomOptions {
	if o.MinFrames == 0 {
		o.MinFrames = 1
	}
	if o.MaxFrames == 0 {
		o.MaxFrames = 6
	}
	if o.MinSep == 0 {
		o.MinSep = 10 * units.Millisecond
	}
	if o.MaxSep == 0 {
		o.MaxSep = 100 * units.Millisecond
	}
	if o.MinPayloadBytes == 0 {
		o.MinPayloadBytes = 200
	}
	if o.MaxPayloadBytes == 0 {
		o.MaxPayloadBytes = 30000
	}
	if o.DeadlineFactor == 0 {
		o.DeadlineFactor = 1.0
	}
	return o
}

// Random builds a random well-formed GMF flow from the rng.
func Random(name string, rng *rand.Rand, opt RandomOptions) *gmf.Flow {
	opt = opt.withDefaults()
	if opt.MaxFrames < opt.MinFrames || opt.MaxSep < opt.MinSep || opt.MaxPayloadBytes < opt.MinPayloadBytes {
		panic(fmt.Sprintf("trace: inverted random bounds %+v", opt))
	}
	n := opt.MinFrames + rng.Intn(opt.MaxFrames-opt.MinFrames+1)
	f := &gmf.Flow{Name: name}
	var tsum units.Time
	seps := make([]units.Time, n)
	for k := 0; k < n; k++ {
		seps[k] = opt.MinSep + units.Time(rng.Int63n(int64(opt.MaxSep-opt.MinSep)+1))
		tsum += seps[k]
	}
	deadline := units.Time(opt.DeadlineFactor * float64(tsum))
	if deadline <= 0 {
		deadline = tsum
	}
	for k := 0; k < n; k++ {
		payload := opt.MinPayloadBytes + rng.Int63n(opt.MaxPayloadBytes-opt.MinPayloadBytes+1)
		var jit units.Time
		if opt.MaxJitter > 0 {
			jit = units.Time(rng.Int63n(int64(opt.MaxJitter) + 1))
		}
		f.Frames = append(f.Frames, gmf.Frame{
			MinSep:      seps[k],
			Deadline:    deadline,
			Jitter:      jit,
			PayloadBits: payload * 8,
		})
	}
	return f
}
