package core

import (
	"errors"
	"strings"
	"testing"

	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

const (
	ms = units.Millisecond
	us = units.Microsecond
)

// oneFrameFlow builds a single-frame flow with the given payload so that
// stage bounds are hand-computable.
func oneFrameFlow(name string, payloadBits int64, sep, dl, jit units.Time) *gmf.Flow {
	return &gmf.Flow{Name: name, Frames: []gmf.Frame{{
		MinSep: sep, Deadline: dl, Jitter: jit, PayloadBits: payloadBits,
	}}}
}

// directLinkNet is two hosts joined by a 10 Mbit/s link.
func directLinkNet(t *testing.T, flows ...*network.FlowSpec) *network.Network {
	t.Helper()
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddDuplexLink("h1", "h2", 10*units.Mbps, 0))
	nw := network.New(topo)
	for _, fs := range flows {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// oneSwitchNet is h1 - s - h2 with 10 Mbit/s links and Click parameters.
func oneSwitchNet(t *testing.T, flows ...*network.FlowSpec) *network.Network {
	t.Helper()
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddSwitch("s", network.DefaultSwitchParams()))
	mustOK(t, topo.AddDuplexLink("h1", "s", 10*units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("s", "h2", 10*units.Mbps, 0))
	nw := network.New(topo)
	for _, fs := range flows {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func analyze(t *testing.T, nw *network.Network, cfg Config) *Result {
	t.Helper()
	an, err := NewAnalyzer(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fullFramePayload is the payload whose UDP datagram is exactly one
// maximum Ethernet frame: 11840 data bits minus the 64-bit UDP header.
const fullFramePayload = 11840 - 64

// c1 is that datagram's transmission time at 10 Mbit/s: 12304 bits /
// 10 Mbit/s = 1230.4 µs.
var c1 = units.TxTime(12304, 10*units.Mbps)

func TestNewAnalyzerErrors(t *testing.T) {
	if _, err := NewAnalyzer(nil, Config{}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestSingleFlowDirectLink(t *testing.T) {
	// One flow, no interference: the bound is jitter + transmission time.
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := analyze(t, directLinkNet(t, fs), Config{})
	if !res.Converged || !res.Schedulable() {
		t.Fatalf("result: converged=%v schedulable=%v", res.Converged, res.Schedulable())
	}
	got := res.Flow(0).Frames[0].Response
	if got != c1 {
		t.Fatalf("response = %v, want %v", got, c1)
	}
	if len(res.Flow(0).Frames[0].Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(res.Flow(0).Frames[0].Stages))
	}
}

func TestSourceJitterAddsToBound(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 2*ms),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := analyze(t, directLinkNet(t, fs), Config{})
	got := res.Flow(0).Frames[0].Response
	if got != 2*ms+c1 {
		t.Fatalf("response = %v, want %v", got, 2*ms+c1)
	}
}

func TestPropagationDelayAdds(t *testing.T) {
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddDuplexLink("h1", "h2", 10*units.Mbps, 5*us))
	nw := network.New(topo)
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}); err != nil {
		t.Fatal(err)
	}
	res := analyze(t, nw, Config{})
	if got := res.Flow(0).Frames[0].Response; got != c1+5*us {
		t.Fatalf("response = %v, want %v", got, c1+5*us)
	}
}

func TestTwoFlowsFirstHopInterfere(t *testing.T) {
	// Two equal flows share the host's work-conserving queue: each one's
	// bound is both transmission times, regardless of priority.
	mk := func(name string) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:  oneFrameFlow(name, fullFramePayload, 100*ms, 100*ms, 0),
			Route: []network.NodeID{"h1", "h2"},
		}
	}
	a, b := mk("a"), mk("b")
	a.Priority = 7 // priority is irrelevant on the first hop
	res := analyze(t, directLinkNet(t, a, b), Config{})
	for i := 0; i < 2; i++ {
		if got := res.Flow(i).Frames[0].Response; got != 2*c1 {
			t.Fatalf("flow %d response = %v, want %v", i, got, 2*c1)
		}
	}
}

func TestOneSwitchPipelineHandComputed(t *testing.T) {
	// h1 - s - h2 with one single-fragment flow. CIRC(s) = 2 × 3.7 µs.
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	circ := units.Time(2) * 3700 * units.Nanosecond
	mft := ether.MFT(10 * units.Mbps)

	res := analyze(t, oneSwitchNet(t, fs), Config{Mode: ModeSound})
	fr := res.Flow(0).Frames[0]
	if len(fr.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(fr.Stages))
	}
	// Stage 1: first hop = C.
	if got := fr.Stages[0].Response; got != c1 {
		t.Errorf("first hop = %v, want %v", got, c1)
	}
	// Stage 2: ingress = one service slot for the single fragment.
	if got := fr.Stages[1].Response; got != circ {
		t.Errorf("ingress = %v, want %v", got, circ)
	}
	// Stage 3: egress = blocking MFT + own transmission + own stride slot.
	wantEgress := mft + c1 + circ
	if got := fr.Stages[2].Response; got != wantEgress {
		t.Errorf("egress = %v, want %v", got, wantEgress)
	}
	want := c1 + circ + wantEgress
	if fr.Response != want {
		t.Errorf("total = %v, want %v", fr.Response, want)
	}

	// ModePaper drops the flow's own stride slot at egress.
	resP := analyze(t, oneSwitchNet(t, fs), Config{Mode: ModePaper})
	frP := resP.Flow(0).Frames[0]
	if got := frP.Stages[2].Response; got != mft+c1 {
		t.Errorf("paper egress = %v, want %v", got, mft+c1)
	}
	if frP.Response >= fr.Response {
		t.Errorf("paper bound %v not below sound bound %v", frP.Response, fr.Response)
	}
}

func TestPaperModeNeverExceedsSound(t *testing.T) {
	flows := []*network.FlowSpec{
		{
			Flow:     mpegLike("v0"),
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 2,
		},
		{
			Flow:     mpegLike("v1"),
			Route:    []network.NodeID{"1", "4", "6", "3"},
			Priority: 1,
		},
		{
			Flow:     oneFrameFlow("voip", 160*8, 20*ms, 20*ms, 0),
			Route:    []network.NodeID{"2", "5", "6", "3"},
			Priority: 3,
		},
	}
	mkNet := func() *network.Network {
		topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
		nw := network.New(topo)
		for _, f := range flows {
			if _, err := nw.AddFlow(f); err != nil {
				t.Fatal(err)
			}
		}
		return nw
	}
	sound := analyze(t, mkNet(), Config{Mode: ModeSound})
	paper := analyze(t, mkNet(), Config{Mode: ModePaper})
	if !sound.Converged || !paper.Converged {
		t.Fatalf("convergence: sound=%v paper=%v", sound.Converged, paper.Converged)
	}
	for i := range flows {
		for k := range sound.Flow(i).Frames {
			s := sound.Flow(i).Frames[k].Response
			p := paper.Flow(i).Frames[k].Response
			if p > s {
				t.Errorf("flow %d frame %d: paper %v > sound %v", i, k, p, s)
			}
		}
	}
}

// mpegLike is a 3-frame GMF flow resembling a small GOP.
func mpegLike(name string) *gmf.Flow {
	return &gmf.Flow{Name: name, Frames: []gmf.Frame{
		{MinSep: 30 * ms, Deadline: 150 * ms, Jitter: ms, PayloadBits: 144000},
		{MinSep: 30 * ms, Deadline: 150 * ms, Jitter: ms, PayloadBits: 12000},
		{MinSep: 30 * ms, Deadline: 150 * ms, Jitter: ms, PayloadBits: 48000},
	}}
}

func TestOverloadDetected(t *testing.T) {
	// Two flows each needing ~62% of the link: overload on the first hop.
	mk := func(name string) *network.FlowSpec {
		return &network.FlowSpec{
			// 12304 bits on the wire every 2 ms at 10 Mbit/s = 61.5%.
			Flow:  oneFrameFlow(name, fullFramePayload, 2*ms, 10*ms, 0),
			Route: []network.NodeID{"h1", "h2"},
		}
	}
	res := analyze(t, directLinkNet(t, mk("a"), mk("b")), Config{})
	if res.Schedulable() {
		t.Fatal("overloaded network reported schedulable")
	}
	var oe *OverloadError
	foundErr := false
	for i := range res.Flows {
		if res.Flows[i].Err != nil {
			foundErr = true
			if !errors.As(res.Flows[i].Err, &oe) {
				t.Fatalf("flow %d error %v is not an OverloadError", i, res.Flows[i].Err)
			}
		}
	}
	if !foundErr {
		t.Fatal("no flow carries an overload error")
	}
	if oe.Utilization < 1 {
		t.Errorf("reported utilisation %v < 1", oe.Utilization)
	}
	if !strings.Contains(oe.Error(), "overloaded") {
		t.Errorf("error text: %q", oe.Error())
	}
}

func TestDeadlineMissReported(t *testing.T) {
	// Feasible utilisation but an impossible deadline: the bound exceeds
	// it and the verdict must be unschedulable, without any stage error.
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*us, 0), // deadline below C
		Route: []network.NodeID{"h1", "h2"},
	}
	res := analyze(t, directLinkNet(t, fs), Config{})
	if res.Schedulable() {
		t.Fatal("missed deadline reported schedulable")
	}
	fr := res.Flow(0)
	if fr.Err != nil {
		t.Fatalf("unexpected stage error: %v", fr.Err)
	}
	if fr.Frames[0].Meets() {
		t.Fatal("frame reports Meets despite bound above deadline")
	}
}

func TestMoreInterferenceNeverHelps(t *testing.T) {
	// Adding a flow must not decrease any existing flow's bound.
	base := &network.FlowSpec{
		Flow:     mpegLike("v"),
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 1,
	}
	mkNet := func(extra bool) *Result {
		topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
		nw := network.New(topo)
		if _, err := nw.AddFlow(base); err != nil {
			t.Fatal(err)
		}
		if extra {
			if _, err := nw.AddFlow(&network.FlowSpec{
				Flow:     mpegLike("x"),
				Route:    []network.NodeID{"1", "4", "6", "3"},
				Priority: 2,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return analyze(t, nw, Config{})
	}
	alone := mkNet(false)
	crowded := mkNet(true)
	for k := range alone.Flow(0).Frames {
		a := alone.Flow(0).Frames[k].Response
		c := crowded.Flow(0).Frames[k].Response
		if c < a {
			t.Errorf("frame %d: bound shrank from %v to %v with added load", k, a, c)
		}
	}
}

func TestHigherPriorityLowersEgressBound(t *testing.T) {
	// On switch egress, the higher-priority flow must have a bound no
	// larger than an equal flow at lower priority.
	mk := func(prioA, prioB network.Priority) (units.Time, units.Time) {
		a := &network.FlowSpec{
			Flow:     oneFrameFlow("a", 100000, 50*ms, 500*ms, 0),
			Route:    []network.NodeID{"h1", "s", "h2"},
			Priority: prioA,
		}
		b := &network.FlowSpec{
			Flow:     oneFrameFlow("b", 100000, 50*ms, 500*ms, 0),
			Route:    []network.NodeID{"h1", "s", "h2"},
			Priority: prioB,
		}
		res := analyze(t, oneSwitchNet(t, a, b), Config{})
		if !res.Converged {
			mk2 := res.Flow(0).Err
			mk3 := res.Flow(1).Err
			t.Fatalf("did not converge: %v %v", mk2, mk3)
		}
		return res.Flow(0).Frames[0].Response, res.Flow(1).Frames[0].Response
	}
	hi, lo := mk(2, 1)
	if hi > lo {
		t.Fatalf("high-priority bound %v above low-priority %v", hi, lo)
	}
	// And the high-priority flow beats its own bound at equal priority.
	eqHi, _ := mk(1, 1)
	if hi > eqHi {
		t.Fatalf("priority 2 bound %v above equal-priority bound %v", hi, eqHi)
	}
}

func TestHolisticConvergesAndIsIdempotent(t *testing.T) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{Flow: mpegLike("v0"), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 1},
		{Flow: mpegLike("v1"), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 2},
		{Flow: oneFrameFlow("voip", 160*8, 20*ms, 100*ms, 0), Route: []network.NodeID{"2", "5", "6", "7"}, Priority: 3},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			t.Fatal(err)
		}
	}
	an, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Converged {
		t.Fatal("holistic analysis did not converge")
	}
	if r1.Iterations < 2 {
		t.Fatalf("iterations = %d, want >= 2 (jitters must propagate)", r1.Iterations)
	}
	// Re-running on a fresh analyzer gives identical bounds.
	an2, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := an2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Flows {
		for k := range r1.Flows[i].Frames {
			if r1.Flows[i].Frames[k].Response != r2.Flows[i].Frames[k].Response {
				t.Fatalf("non-deterministic bound for flow %d frame %d", i, k)
			}
		}
	}
}

func TestEmptyNetworkAnalyze(t *testing.T) {
	nw := network.New(network.MustFigure1(network.Figure1Options{}))
	an, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Schedulable() {
		t.Fatal("empty network must be trivially schedulable")
	}
}

func TestAnalyzeFlowSinglePass(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	nw := directLinkNet(t, fs)
	an, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := an.AnalyzeFlow(0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Frames[0].Response != c1 {
		t.Fatalf("response = %v, want %v", fr.Frames[0].Response, c1)
	}
	if _, err := an.AnalyzeFlow(5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := an.AnalyzeFlow(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestStageEntryJittersGrowAlongRoute(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 500*ms, ms),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	res := analyze(t, oneSwitchNet(t, fs), Config{})
	stages := res.Flow(0).Frames[0].Stages
	if stages[0].EntryJitter != ms {
		t.Fatalf("first stage jitter = %v, want source jitter 1ms", stages[0].EntryJitter)
	}
	for i := 1; i < len(stages); i++ {
		want := stages[i-1].EntryJitter + stages[i-1].Response
		if stages[i].EntryJitter != want {
			t.Fatalf("stage %d entry jitter = %v, want %v", i, stages[i].EntryJitter, want)
		}
	}
}

func TestResourceString(t *testing.T) {
	l := Resource{Kind: KindLink, Node: "4", To: "6"}
	if l.String() != "link(4,6)" {
		t.Errorf("link string = %q", l.String())
	}
	in := Resource{Kind: KindIngress, Node: "6", To: "4"}
	if in.String() != "in(6)<-4" {
		t.Errorf("ingress string = %q", in.String())
	}
}

func TestModeString(t *testing.T) {
	if ModeSound.String() != "sound" || ModePaper.String() != "paper" {
		t.Fatal("mode strings wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Fatal("unknown mode string")
	}
}

func TestMultiFrameBusyPeriodCoversSeveralInstances(t *testing.T) {
	// High utilisation forces busy periods spanning several cycles; the
	// analysis must still converge and bound every frame.
	mk := func(name string) *gmf.Flow {
		return &gmf.Flow{Name: name, Frames: []gmf.Frame{
			{MinSep: 4 * ms, Deadline: 200 * ms, Jitter: 0, PayloadBits: 20000},
			{MinSep: 12 * ms, Deadline: 200 * ms, Jitter: 0, PayloadBits: 4000},
		}}
	}
	a := &network.FlowSpec{Flow: mk("a"), Route: []network.NodeID{"h1", "h2"}}
	b := &network.FlowSpec{Flow: mk("b"), Route: []network.NodeID{"h1", "h2"}}
	res := analyze(t, directLinkNet(t, a, b), Config{})
	if !res.Converged {
		t.Fatalf("did not converge: %v / %v", res.Flow(0).Err, res.Flow(1).Err)
	}
	for i := 0; i < 2; i++ {
		for k := range res.Flow(i).Frames {
			if res.Flow(i).Frames[k].Response <= 0 {
				t.Fatalf("flow %d frame %d: non-positive bound", i, k)
			}
		}
	}
}

func TestFlowResultHelpers(t *testing.T) {
	fr := FlowResult{Frames: []FrameResult{
		{Response: 5 * ms, Deadline: 10 * ms},
		{Response: 8 * ms, Deadline: 10 * ms},
	}}
	if !fr.Schedulable() {
		t.Fatal("schedulable flow reported unschedulable")
	}
	if fr.MaxResponse() != 8*ms {
		t.Fatalf("MaxResponse = %v", fr.MaxResponse())
	}
	fr.Frames[1].Response = 12 * ms
	if fr.Schedulable() {
		t.Fatal("missed deadline not detected")
	}
	fr.Err = errors.New("boom")
	if fr.Schedulable() {
		t.Fatal("errored flow reported schedulable")
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyzeFigure1(b *testing.B) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{Flow: mpegLike("v0"), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 1},
		{Flow: mpegLike("v1"), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 2},
		{Flow: oneFrameFlow("voip", 160*8, 20*ms, 100*ms, 0), Route: []network.NodeID{"2", "5", "6", "7"}, Priority: 3},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := NewAnalyzer(nw, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}
