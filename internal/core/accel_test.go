package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// accelConfig is the accelerated twin of the default test config.
func accelConfig() Config { return Config{Accel: true} }

// TestAcceleratedMatchesPlainRandom is the core exactness differential:
// an accelerated engine and a plain engine driven through identical
// add/remove/analyze sequences must hold bit-identical jitter
// assignments and bounds after every analysis — the safeguard's
// fallback-to-plain contract.
func TestAcceleratedMatchesPlainRandom(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts := randomEngineTopo(t, r)
			plain, err := NewEngine(network.New(topo), Config{})
			if err != nil {
				t.Fatal(err)
			}
			accel, err := NewEngine(network.New(topo), accelConfig())
			if err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 24; op++ {
				if accel.Network().NumFlows() > 2 && r.Intn(4) == 0 {
					i := r.Intn(accel.Network().NumFlows())
					if err := plain.RemoveFlow(i); err != nil {
						t.Fatal(err)
					}
					if err := accel.RemoveFlow(i); err != nil {
						t.Fatal(err)
					}
				} else {
					fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("f%d-%d", seed, op))
					if _, err := plain.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
					if _, err := accel.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
				}
				pres, err := plain.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				ares, err := accel.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, ares, pres)
				if pres.Converged && !sameAssignment(accel.js, plain.js) {
					t.Fatalf("op %d: accelerated jitter assignment differs from plain least fixpoint", op)
				}
				if ares.Stats.Iterations != ares.Iterations {
					t.Fatalf("op %d: Stats.Iterations %d != Iterations %d",
						op, ares.Stats.Iterations, ares.Iterations)
				}
				if ares.Stats.WorklistRounds < ares.Stats.Iterations {
					t.Fatalf("op %d: WorklistRounds %d < Iterations %d",
						op, ares.Stats.WorklistRounds, ares.Stats.Iterations)
				}
			}
		})
	}
}

// deepChainSetup builds the deep-convergence scenario the acceleration
// targets: a ring of software switches joined by 100 Mbit/s links, and
// video flows whose three-hop routes overlap like shingles all the way
// around. The shingling closes a directed cycle in the interference
// graph — each flow's response feeds the entry jitter of the next flow
// around the ring — so the holistic jitter assignment circulates in
// near-constant laps, gaining roughly one more preemption window per
// sweep until the busy periods saturate. That staircase is the worst
// case for the plain Kleene ascent (iterations proportional to the
// final jitter over the per-lap increment) and precisely the ramp
// pattern the accelerated engine collapses geometrically.
func deepChainSetup(t *testing.T) (*network.Topology, []*network.FlowSpec) {
	t.Helper()
	const switches = 12
	topo := network.NewTopology()
	for s := 0; s < switches; s++ {
		sw := network.NodeID(fmt.Sprintf("sw%d", s))
		if err := topo.AddSwitch(sw, network.DefaultSwitchParams()); err != nil {
			t.Fatal(err)
		}
		if s > 0 {
			prev := network.NodeID(fmt.Sprintf("sw%d", s-1))
			if err := topo.AddDuplexLink(prev, sw, 100*units.Mbps, units.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		for h := 0; h < 2; h++ {
			id := network.NodeID(fmt.Sprintf("h%d_%d", s, h))
			if err := topo.AddHost(id); err != nil {
				t.Fatal(err)
			}
			if err := topo.AddDuplexLink(id, sw, 100*units.Mbps, units.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	last := network.NodeID(fmt.Sprintf("sw%d", switches-1))
	if err := topo.AddDuplexLink(last, "sw0", 100*units.Mbps, units.Microsecond); err != nil {
		t.Fatal(err)
	}
	var specs []*network.FlowSpec
	for s := 0; s < switches; s++ {
		src := network.NodeID(fmt.Sprintf("h%d_0", s))
		dst := network.NodeID(fmt.Sprintf("h%d_1", (s+switches-3)%switches))
		route, err := topo.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, &network.FlowSpec{
			Flow: trace.CBRVideo(fmt.Sprintf("video%d", s), 65000,
				30*units.Millisecond, 2*units.Second),
			Route:    route,
			Priority: 1,
		})
	}
	return topo, specs
}

// analyzeChain loads the deep-chain scenario into a fresh engine under
// cfg and returns the converged result.
func analyzeChain(t *testing.T, cfg Config) *Result {
	t.Helper()
	topo, specs := deepChainSetup(t)
	eng, err := NewEngine(network.New(topo), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range specs {
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("deep chain did not converge (stats %+v)", res.Stats)
	}
	return res
}

// TestAcceleratedDeepChainIterations pins the convergence-rate win on
// the deep-chain scenario so it cannot silently regress: the plain
// iteration count is pinned inside a slack band, the accelerated
// engine must converge in no more iterations, must actually take
// accelerated steps, and must cut the advancing-sweep count by at
// least 30% — the tentpole's acceptance bar. Bounds are identical by
// the differential above.
func TestAcceleratedDeepChainIterations(t *testing.T) {
	plain := analyzeChain(t, Config{})
	accel := analyzeChain(t, accelConfig())
	t.Logf("plain iterations=%d; accel stats=%+v", plain.Iterations, accel.Stats)
	// The chain needs roughly one sweep per hop of the longest ripple;
	// the band is wide enough to absorb formula tweaks but tight enough
	// to catch a broken worklist (1-2 iterations) or a divergence
	// regression (hundreds).
	if plain.Iterations < 6 || plain.Iterations > 64 {
		t.Fatalf("plain iteration count %d outside the pinned band [6, 64]", plain.Iterations)
	}
	if accel.Iterations > plain.Iterations {
		t.Fatalf("accelerated iterations %d exceed plain %d", accel.Iterations, plain.Iterations)
	}
	if accel.Stats.AccelSteps == 0 {
		t.Fatalf("accelerated run took no accelerated steps (stats %+v)", accel.Stats)
	}
	if 10*accel.Iterations > 7*plain.Iterations {
		t.Fatalf("accelerated iterations %d not >=30%% below plain %d", accel.Iterations, plain.Iterations)
	}
	for i := range plain.Flows {
		for k := range plain.Flows[i].Frames {
			if plain.Flows[i].Frames[k].Response != accel.Flows[i].Frames[k].Response {
				t.Fatalf("flow %d frame %d bound differs: plain %v accel %v", i, k,
					plain.Flows[i].Frames[k].Response, accel.Flows[i].Frames[k].Response)
			}
		}
	}
}

// TestErrNoConvergence pins the typed abandonment signal: exhausting
// MaxHolisticIter yields Converged == false plus a NoConvergence record
// carrying a positive residual — with a nil error from Analyze, since
// cap exhaustion is a verdict, not a failure (the batch fallback in
// admission depends on that; see Controller.RequestBatch).
func TestErrNoConvergence(t *testing.T) {
	topo, specs := deepChainSetup(t)
	eng, err := NewEngine(network.New(topo), Config{MaxHolisticIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range specs {
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Schedulable() {
		t.Fatalf("cap-starved analysis converged (iterations %d)", res.Iterations)
	}
	nc := res.NoConvergence
	if nc == nil {
		t.Fatal("Result.NoConvergence is nil after cap exhaustion")
	}
	if nc.Iterations != 2 || nc.Residual <= 0 || nc.Pending <= 0 {
		t.Fatalf("NoConvergence = %+v, want iterations 2 and positive residual/pending", nc)
	}
	if nc.Error() == "" {
		t.Fatal("NoConvergence.Error() empty")
	}
	v, err := eng.AnalyzeView()
	if err != nil {
		t.Fatal(err)
	}
	if v.NoConvergence() == nil {
		t.Fatal("ResultView.NoConvergence() nil after cap exhaustion")
	}
	if mat := v.Materialize(); mat.NoConvergence == nil {
		t.Fatal("materialized Result lost NoConvergence")
	}
	// A converged analysis clears the signal.
	eng2, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.AddFlow(specs[0]); err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged || res2.NoConvergence != nil {
		t.Fatalf("converged analysis carries NoConvergence %+v", res2.NoConvergence)
	}
	// The one-shot cold Analyzer reports the same signal.
	ref := network.New(topo)
	for _, fs := range specs {
		if _, err := ref.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	an, err := NewAnalyzer(ref, Config{MaxHolisticIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Converged || cold.NoConvergence == nil || cold.NoConvergence.Residual <= 0 {
		t.Fatalf("cold analyzer after cap exhaustion: converged=%v noconv=%+v",
			cold.Converged, cold.NoConvergence)
	}
}

// FuzzAcceleratedFixpoint drives random interleavings of AddFlow,
// RemoveFlow, Analyze, Snapshot, Restore and Discard through an
// accelerated engine and a plain twin in lockstep: after every analysis
// both must hold bit-identical jitter assignments and agree with each
// other's bounds, and at the end both must agree with a cold reference
// analysis — acceleration must be invisible everywhere except the
// iteration counters.
func FuzzAcceleratedFixpoint(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 2, 1, 2})             // adds and analyses
	f.Add([]byte{0, 1, 3, 0, 2, 1, 4, 2})          // snapshot/restore around churn
	f.Add([]byte{0, 0, 0, 2, 3, 1, 2, 4, 2})       // rollback of an accelerated analysis
	f.Add([]byte{3, 0, 5, 3, 1, 4, 0, 2, 2})       // discard, re-snapshot, remove, restore
	f.Add([]byte{0, 2, 0, 2, 0, 2, 0, 2, 1, 2, 2}) // steady growth, repeated analyses
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64] // keep each case cheap
		}
		topo, hosts := fuzzTopo(t)
		accel, err := NewEngine(network.New(topo), accelConfig())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewEngine(network.New(topo), Config{})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(len(data))))
		var (
			snapA, snapP *Snapshot
			nextFlow     int
		)
		for pc, b := range data {
			switch b % 6 {
			case 0: // add
				fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("f%d", nextFlow))
				nextFlow++
				if _, err := accel.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
				if _, err := plain.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
			case 1: // remove
				if n := accel.Network().NumFlows(); n > 0 {
					i := int(b/6) % n
					if err := accel.RemoveFlow(i); err != nil {
						t.Fatal(err)
					}
					if err := plain.RemoveFlow(i); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // analyze
				ares, err := accel.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				pres, err := plain.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, ares, pres)
				if pres.Converged && !sameAssignment(accel.js, plain.js) {
					t.Fatalf("op %d: accelerated assignment differs from plain", pc)
				}
			case 3: // snapshot (supersedes any outstanding one)
				snapA = accel.Snapshot()
				snapP = plain.Snapshot()
			case 4: // restore
				if snapA == nil {
					continue
				}
				if err := accel.Restore(snapA); err != nil {
					t.Fatalf("op %d: accel restore: %v", pc, err)
				}
				if err := plain.Restore(snapP); err != nil {
					t.Fatalf("op %d: plain restore: %v", pc, err)
				}
				if !sameAssignment(accel.js, plain.js) {
					t.Fatalf("op %d: assignments differ after restore", pc)
				}
				snapA, snapP = nil, nil
			case 5: // discard
				accel.Discard(snapA)
				plain.Discard(snapP)
				snapA, snapP = nil, nil
			}
		}
		res, err := accel.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		ref := network.New(topo)
		for _, fs := range accel.Network().Flows() {
			if _, err := ref.AddFlow(fs); err != nil {
				t.Fatal(err)
			}
		}
		an, err := NewAnalyzer(ref, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := an.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, res, cold)
	})
}
