package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmfnet/internal/ether"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// TestIngressModeDifference pins the F4 reconstruction: for a
// multi-fragment frame, ModeSound charges one CIRC slot per fragment at
// the ingress stage while ModePaper charges a single CIRC.
func TestIngressModeDifference(t *testing.T) {
	payload := int64(3*11840 - 64) // exactly 3 fragments
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", payload, 100*ms, 500*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	circ := units.Time(2) * 3700 * units.Nanosecond // 2 interfaces

	sound := analyze(t, oneSwitchNet(t, fs), Config{Mode: ModeSound})
	paper := analyze(t, oneSwitchNet(t, fs), Config{Mode: ModePaper})
	sIn := sound.Flow(0).Frames[0].Stages[1].Response
	pIn := paper.Flow(0).Frames[0].Stages[1].Response
	if sIn != 3*circ {
		t.Errorf("sound ingress = %v, want %v", sIn, 3*circ)
	}
	if pIn != circ {
		t.Errorf("paper ingress = %v, want %v", pIn, circ)
	}
}

// TestEgressBlockingFromLowerPriority: a lower-priority flow on the same
// output contributes exactly the MFT blocking term — the high-priority
// egress bound must not otherwise grow.
func TestEgressBlockingFromLowerPriority(t *testing.T) {
	hi := &network.FlowSpec{
		Flow:     oneFrameFlow("hi", fullFramePayload, 100*ms, 500*ms, 0),
		Route:    []network.NodeID{"h1", "s", "h2"},
		Priority: 5,
	}
	alone := analyze(t, threeHostSwitchNet(t, hi), Config{Mode: ModeSound})
	lo := &network.FlowSpec{
		Flow:     oneFrameFlow("lo", fullFramePayload, 100*ms, 500*ms, 0),
		Route:    []network.NodeID{"h3", "s", "h2"},
		Priority: 1,
	}
	crowded := analyze(t, threeHostSwitchNet(t, hi, lo), Config{Mode: ModeSound})

	// The egress stage (index 2) already contains MFT blocking even when
	// alone (eq. 30 adds it unconditionally), so the lower-priority flow
	// adds nothing there.
	aEg := alone.Flow(0).Frames[0].Stages[2].Response
	cEg := crowded.Flow(0).Frames[0].Stages[2].Response
	if cEg != aEg {
		t.Errorf("egress bound changed by lower-priority flow: %v -> %v", aEg, cEg)
	}
	// And the end-to-end bound is unchanged too: lo shares no other
	// resource with hi.
	if alone.Flow(0).Frames[0].Response != crowded.Flow(0).Frames[0].Response {
		t.Error("lower-priority cross flow changed the end-to-end bound")
	}
}

// TestEqualPriorityInterferesAtEgress: equal priority counts as
// interference per eq. (2)'s >=.
func TestEqualPriorityInterferesAtEgress(t *testing.T) {
	mk := func(prioB network.Priority) units.Time {
		a := &network.FlowSpec{
			Flow:     oneFrameFlow("a", fullFramePayload, 100*ms, 500*ms, 0),
			Route:    []network.NodeID{"h1", "s", "h2"},
			Priority: 3,
		}
		b := &network.FlowSpec{
			Flow:     oneFrameFlow("b", fullFramePayload, 100*ms, 500*ms, 0),
			Route:    []network.NodeID{"h3", "s", "h2"},
			Priority: prioB,
		}
		res := analyze(t, threeHostSwitchNet(t, a, b), Config{})
		return res.Flow(0).Frames[0].Stages[2].Response
	}
	low := mk(1)
	equal := mk(3)
	if equal <= low {
		t.Fatalf("equal-priority egress bound %v not above lower-priority %v", equal, low)
	}
}

// TestBoundMonotoneInPayload: growing any payload must not shrink any
// bound.
func TestBoundMonotoneInPayload(t *testing.T) {
	f := func(seed int64, extraRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		flow := trace.Random("r", rng, trace.RandomOptions{
			MaxPayloadBytes: 10000, DeadlineFactor: 5,
		})
		mkRes := func(fl *network.FlowSpec) (units.Time, bool) {
			topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
			nw := network.New(topo)
			if _, err := nw.AddFlow(fl); err != nil {
				return 0, false
			}
			an, err := NewAnalyzer(nw, Config{})
			if err != nil {
				return 0, false
			}
			res, err := an.Analyze()
			if err != nil || !res.Converged {
				return 0, false
			}
			return res.Flow(0).MaxResponse(), true
		}
		base, baseOK := mkRes(&network.FlowSpec{Flow: flow, Route: []network.NodeID{"0", "4", "6", "3"}})
		bigger := flow.Clone()
		bigger.Frames[0].PayloadBits += int64(extraRaw) * 64
		grown, grownOK := mkRes(&network.FlowSpec{Flow: bigger, Route: []network.NodeID{"0", "4", "6", "3"}})
		if !baseOK {
			return true // base infeasible: nothing to compare
		}
		if !grownOK {
			return true // growing load made it infeasible: consistent
		}
		return grown >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundMonotoneInCrossJitter: inflating an interfering flow's source
// jitter must not shrink the analysed flow's bound.
func TestBoundMonotoneInCrossJitter(t *testing.T) {
	mk := func(jit units.Time) units.Time {
		topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
		nw := network.New(topo)
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     oneFrameFlow("main", fullFramePayload, 100*ms, 500*ms, 0),
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     oneFrameFlow("cross", fullFramePayload, 100*ms, 500*ms, jit),
			Route:    []network.NodeID{"1", "4", "6", "3"},
			Priority: 2,
		}); err != nil {
			t.Fatal(err)
		}
		res := analyze(t, nw, Config{})
		if !res.Converged {
			t.Fatal("did not converge")
		}
		return res.Flow(0).Frames[0].Response
	}
	small := mk(0)
	big := mk(20 * ms)
	if big < small {
		t.Fatalf("cross jitter 20ms shrank bound: %v -> %v", small, big)
	}
}

// TestFasterLinksNeverHurt: increasing every link rate must not increase
// any bound.
func TestFasterLinksNeverHurt(t *testing.T) {
	mk := func(rate units.BitRate) units.Time {
		topo := network.MustFigure1(network.Figure1Options{Rate: rate})
		nw := network.New(topo)
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     mpegLike("v"),
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
		res := analyze(t, nw, Config{})
		return res.Flow(0).MaxResponse()
	}
	slow := mk(10 * units.Mbps)
	fast := mk(100 * units.Mbps)
	if fast >= slow {
		t.Fatalf("10x faster links did not reduce the bound: %v vs %v", fast, slow)
	}
}

// TestDemandCacheReuse: the analyzer must build each (flow, rate) demand
// once.
func TestDemandCacheReuse(t *testing.T) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
	nw := network.New(topo)
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:  mpegLike("v"),
		Route: []network.NodeID{"0", "4", "6", "3"},
	}); err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d1 := an.demand(0, 10*units.Mbps)
	d2 := an.demand(0, 10*units.Mbps)
	if d1 != d2 {
		t.Fatal("demand cache missed")
	}
	d3 := an.demand(0, 100*units.Mbps)
	if d3 == d1 {
		t.Fatal("different rates shared a demand")
	}
	// The cached demand matches a fresh computation.
	fresh, err := ether.DemandFor(nw.Flow(0).Flow, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1.CSUM() != fresh.CSUM() || d1.NSUM() != fresh.NSUM() {
		t.Fatal("cached demand differs from fresh computation")
	}
}
