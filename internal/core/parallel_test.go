package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// randomNet builds a random Figure 1 workload for parallel-vs-sequential
// comparison.
func randomNet(t *testing.T, seed int64, nFlows int) *network.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
	nw := network.New(topo)
	hosts := []network.NodeID{"0", "1", "2", "3"}
	for f := 0; f < nFlows; f++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		flow := trace.Random(fmt.Sprintf("r%d", f), rng, trace.RandomOptions{
			MaxPayloadBytes: 8000,
			DeadlineFactor:  3,
			MaxJitter:       units.Millisecond,
		})
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     flow,
			Route:    route,
			Priority: network.Priority(rng.Intn(4)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// TestParallelMatchesSequential: Jacobi (parallel) and Gauss-Seidel
// (sequential) iterations must reach the same fixpoint bounds.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		nw := randomNet(t, seed, 12)
		seqAn, err := NewAnalyzer(nw, Config{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := seqAn.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		parAn, err := NewAnalyzer(nw, Config{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := parAn.AnalyzeParallel(4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Converged != par.Converged {
			t.Fatalf("seed %d: convergence differs (seq %v, par %v)", seed, seq.Converged, par.Converged)
		}
		if !seq.Converged {
			continue
		}
		for i := range seq.Flows {
			for k := range seq.Flows[i].Frames {
				s := seq.Flows[i].Frames[k].Response
				p := par.Flows[i].Frames[k].Response
				if s != p {
					t.Fatalf("seed %d flow %d frame %d: seq %v != par %v", seed, i, k, s, p)
				}
			}
		}
		if seq.Schedulable() != par.Schedulable() {
			t.Fatalf("seed %d: verdicts differ", seed)
		}
	}
}

func TestParallelEmptyNetwork(t *testing.T) {
	nw := network.New(network.MustFigure1(network.Figure1Options{}))
	an, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.AnalyzeParallel(0) // 0 selects GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Schedulable() {
		t.Fatal("empty network must be schedulable")
	}
}

func TestParallelDetectsOverload(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("hog", 140000*8, 10*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	nw := directLinkNet(t, fs)
	an, err := NewAnalyzer(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.AnalyzeParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable() {
		t.Fatal("overload not detected in parallel mode")
	}
}

func TestOverlayPanicsOnForeignWrite(t *testing.T) {
	nw := randomNet(t, 1, 2)
	js := newJitterState(nw)
	ov := newJitterOverlay(js, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign write did not panic")
		}
	}()
	ov.set(1, 0, 0, units.Millisecond)
}

func TestOverlayReadThrough(t *testing.T) {
	nw := randomNet(t, 2, 2)
	js := newJitterState(nw)
	rid1 := nw.FlowResources(1)[0]
	js.set(1, 0, 0, 5*ms)

	ov := newJitterOverlay(js, 0)
	// Foreign reads come from the base.
	if got := ov.get(1, 0, 0); got != 5*ms {
		t.Fatalf("read-through = %v", got)
	}
	if got := ov.extraOf(1, rid1); got < 5*ms {
		t.Fatalf("extra read-through = %v", got)
	}
	// Own writes shadow the base without mutating it.
	base0 := js.get(0, 0, 0)
	ov.set(0, 0, 0, base0+7*ms)
	if got := ov.get(0, 0, 0); got != base0+7*ms {
		t.Fatalf("own read = %v", got)
	}
	if js.get(0, 0, 0) != base0 {
		t.Fatal("overlay mutated base")
	}
	// Merge propagates.
	js.resetChanged()
	ov.mergeInto(js)
	if js.get(0, 0, 0) != base0+7*ms {
		t.Fatal("merge lost value")
	}
	if !js.changed {
		t.Fatal("merge did not mark change")
	}
}

func BenchmarkAnalyzeParallelVsSequential(b *testing.B) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
	nw := network.New(topo)
	rng := rand.New(rand.NewSource(42))
	hosts := []network.NodeID{"0", "1", "2", "3"}
	for f := 0; f < 32; f++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		flow := trace.Random(fmt.Sprintf("r%d", f), rng, trace.RandomOptions{
			MaxPayloadBytes: 8000, DeadlineFactor: 3,
		})
		if _, err := nw.AddFlow(&network.FlowSpec{Flow: flow, Route: route, Priority: network.Priority(f % 4)}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an, err := NewAnalyzer(nw, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := an.Analyze(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an, err := NewAnalyzer(nw, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := an.AnalyzeParallel(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
