package core

import (
	"fmt"

	"gmfnet/internal/units"
)

// flowPass runs Figure 6 for one flow: it walks the route, analyses each
// stage with the current jitter state, accumulates RSUM/JSUM, and records
// the flow's new entry jitters for the next holistic iteration.
func (a *Analyzer) flowPass(i int, js jitterSource) FlowResult {
	fs := a.nw.Flow(i)
	n := fs.Flow.N()
	route := fs.Route
	out := FlowResult{
		Index:  i,
		Name:   fs.Flow.Name,
		Frames: make([]FrameResult, n),
	}
	// All frames' stage records live in one arena, sub-sliced per frame
	// (capacity-clipped so an append on one frame's view can never bleed
	// into the next): the stage count per frame is fixed by the route, so
	// the whole pass costs two allocations instead of an append-grown
	// slice per frame. The arena escapes into the returned FlowResult,
	// which is what keeps the per-frame views alive.
	spf := 1 + 2*(len(route)-2)
	arena := make([]StageResult, 0, n*spf)
	var rsum, jsum units.Time
	record := func(res Resource, r units.Time) {
		arena = append(arena, StageResult{Resource: res, Response: r, EntryJitter: jsum})
		rsum = units.SaturatingAdd(rsum, r)
		jsum = units.SaturatingAdd(jsum, r)
	}
	for k := 0; k < n; k++ {
		// Figure 6, line 3: both sums start at the source jitter.
		rsum = fs.Flow.Frames[k].Jitter
		jsum = rsum
		base := len(arena)

		// First hop (lines 7-11). Stage positions follow the pipeline
		// layout shared with network.FlowResources: 0 is the first hop,
		// 2h-1 the ingress of route node h, 2h its egress.
		first := Resource{Kind: KindLink, Node: route[0], To: route[1]}
		js.set(i, 0, k, jsum)
		r, err := a.firstHop(i, k, js)
		if err != nil {
			out.Err = err
			return out
		}
		record(first, r)

		// Each intermediate switch: in(N) then link(N, next)
		// (lines 13-19).
		for h := 1; h < len(route)-1; h++ {
			resIn := Resource{Kind: KindIngress, Node: route[h], To: route[h-1]}
			js.set(i, 2*h-1, k, jsum)
			r, err = a.ingress(i, k, h, js)
			if err != nil {
				out.Err = err
				return out
			}
			record(resIn, r)

			resOut := Resource{Kind: KindLink, Node: route[h], To: route[h+1]}
			js.set(i, 2*h, k, jsum)
			r, err = a.egress(i, k, h, js)
			if err != nil {
				out.Err = err
				return out
			}
			record(resOut, r)
		}

		out.Frames[k] = FrameResult{
			Response: rsum,
			Deadline: fs.Flow.Frames[k].Deadline,
			Stages:   arena[base:len(arena):len(arena)],
		}
	}
	return out
}

// Analyze runs the holistic analysis of Section 3.5: starting from source
// jitters only, it repeatedly recomputes every flow's pipeline under the
// current jitter assignment and feeds the resulting per-stage response
// times back as jitters, until the assignment is a fixpoint.
//
// A non-nil error is returned only for a structurally broken input; an
// unschedulable but well-formed network yields Result.Schedulable() ==
// false with per-flow diagnostics.
func (a *Analyzer) Analyze() (*Result, error) {
	if a.nw.NumFlows() == 0 {
		return &Result{Converged: true, Iterations: 0}, nil
	}
	js := newJitterState(a.nw)
	res := &Result{}
	for iter := 1; iter <= a.cfg.MaxHolisticIter; iter++ {
		js.resetChanged()
		flows := make([]FlowResult, a.nw.NumFlows())
		for i := range flows {
			flows[i] = a.flowPass(i, js)
			if flows[i].Err != nil {
				// An overloaded or diverging stage dooms the whole
				// configuration: report what we have.
				res.Flows = flows
				res.Iterations = iter
				res.Stats = ConvergenceStats{Iterations: iter, WorklistRounds: iter}
				res.Converged = false
				return res, nil
			}
		}
		res.Flows = flows
		res.Iterations = iter
		res.Stats = ConvergenceStats{Iterations: iter, WorklistRounds: iter}
		if !js.changed {
			res.Converged = true
			return res, nil
		}
	}
	res.Converged = false
	res.NoConvergence = &ErrNoConvergence{
		Iterations: a.cfg.MaxHolisticIter,
		Residual:   js.maxDelta,
		Pending:    len(js.changedList),
	}
	return res, nil
}

// AnalyzeFlow bounds a single flow's response times under a fixed jitter
// assignment in which every other flow contributes only its source jitter.
// It matches Figure 6 run once and is mainly useful for examples, tests
// and single-resource studies; Analyze is the complete holistic analysis.
func (a *Analyzer) AnalyzeFlow(i int) (FlowResult, error) {
	if i < 0 || i >= a.nw.NumFlows() {
		return FlowResult{}, errIndex(i, a.nw.NumFlows())
	}
	js := newJitterState(a.nw)
	fr := a.flowPass(i, js)
	return fr, nil
}

func errIndex(i, n int) error {
	return &indexError{i: i, n: n}
}

type indexError struct{ i, n int }

func (e *indexError) Error() string {
	return fmt.Sprintf("core: flow index %d out of range [0, %d)", e.i, e.n)
}
