package core

import (
	"math"
	"sort"

	"gmfnet/internal/units"
)

// This file implements the engine's accelerated convergence layer
// (Config.Accel): Anderson(m) extrapolation over the flat jitter arena,
// safeguarded so the converged assignment is bit-identical to the plain
// Kleene least fixpoint.
//
// The holistic operator F of Section 3.5 is monotone on the jitter
// lattice and the engine's plain iteration is a Kleene ascent: x_{r+1}
// = F(x_r) (worklist-restricted, which changes nothing about the
// limit). The iterates now live in one flat arena, which makes them
// vectors — precisely the setting where Anderson acceleration of
// fixed-point problems applies: keep a short history of (iterate,
// residual) pairs, extrapolate the limit by a least-squares mix of the
// residual differences, and jump there instead of crawling.
//
// The candidate is the classic type-II Anderson mix: solve the
// (m-1)x(m-1) normal equations over the residual differences
// (Tikhonov-regularised, Gaussian elimination; m is tiny) and form
// z = g_k - sum_j gamma_j (g_{j+1}-g_j) in float64, rounding back to
// picosecond slots. The window m (Config.AccelDepth) matters more than
// any other knob: the worklist iteration propagates interference one
// hop per sweep, so an interference cycle of length L shows up as a
// rotating residual mode of period ~L, and the mix can only cancel a
// rotation it has seen — m of about one cycle length captures it,
// m of 3-4 merely dents it.
//
// Every candidate is clamped to the monotone envelope before it is
// written: z >= g slotwise, and a slot whose residual is zero is not
// moved at all (its inputs did not move last round, so extrapolating
// it is unjustified). The candidate is then adjudicated by one plain
// verification sweep under a speculative write epoch (jitterState
// beginSpec/rollbackSpec): plain sweeps from any point at or below the
// least fixpoint only ascend, so if the sweep moves any slot DOWN —
// or blows a stage up (overload/divergence at the inflated jitters) —
// the candidate overshot, and the epoch is rolled back to the exact
// plain iterate g it started from. Rather than abandoning the whole
// jump, the refuted slots are narrowed to the values the sweep itself
// computed for them and the shrunk candidate is re-verified
// (narrowCandidate below); the history survives rejection, since its
// entries are accepted plain iterates and the candidate never entered
// it.
//
// The refuting sweep is a necessary check, not by itself a sufficient
// one: F can have fixpoints above the least one, and at a candidate
// beyond the next basin F(z) >= z holds again, so a one-sweep
// adjudication would accept it. Exactness therefore additionally rests
// on the per-slot step bound (accelBumpCap): small steps cannot clear
// the refutation region between basins, so every overshooting
// trajectory is caught by a downward move and rolled back, and the
// accepted trajectory x_0 <= ... <= z <= F(z) <= ... converges to the
// same least fixpoint as the plain ascent. The differential, fuzz and
// golden-trace suites pin the resulting bounds and decisions
// bit-for-bit against the unaccelerated engines.
//
// All buffers — the active-set layout, the history ring, the
// least-squares scratch — are reused across rounds and analyses: the
// steady state allocates nothing per iteration.

// accelMaxNarrow caps how many times one candidate may be narrowed and
// re-verified after a refuting sweep before it is abandoned outright.
// Narrowing terminates on its own (the bumped set strictly shrinks);
// the cap just bounds the wall-clock of a pathological round.
const accelMaxNarrow = 8

// accelBumpCap bounds the Anderson candidate per slot to this multiple
// of the slot's current residual. This is the accelerator's exactness
// margin, not a tuning nicety: the holistic operator can have fixpoints
// above the least one (near-critical closures self-justify higher
// response levels), and a candidate that leaps the whole gap in one
// step lands where F(z) >= z holds again and the decrease-refutation
// sweep cannot tell it from the true fixpoint. Small per-slot steps
// force an overshooting trajectory through the intermediate region
// where some slot moves down under F, which refutes it. Caps up to
// 32x stay exact on every differential scenario; 48-64x provably jumps
// basins on the 12-switch ring (see TestAcceleratedDeepChainIterations).
const accelBumpCap = 24

// accelEntry is one history sample: the iterate g = F(x) and its
// residual f = g - x over the active slots.
type accelEntry struct {
	g []units.Time
	f []units.Time
}

// accelState is the reusable Anderson-acceleration state of one engine.
// It is reset at the start of every analyzeOver call; only the buffers
// survive.
type accelState struct {
	depth int // history window m (>= 2)

	// The active set: the union of every worklist seen this analysis,
	// i.e. the subspace of arena slots the extrapolation tracks. flows
	// is ascending; offs[i] is flows[i]'s offset in the packed vectors.
	// Growing the set rebuilds the layout and drops the history.
	activeMark []bool
	flows      []int
	offs       []int
	size       int

	// hist is the history ring, oldest first, at most depth entries.
	hist []accelEntry

	// x is the pre-sweep snapshot observe takes, paired by record with
	// the post-sweep arena into the next history entry.
	x      []units.Time
	xvalid bool

	// Least-squares and candidate scratch.
	z     []units.Time
	mat   []float64
	rhs   []float64
	gamma []float64
}

func newAccelState(depth int) *accelState {
	if depth < 2 {
		depth = 2
	}
	return &accelState{depth: depth}
}

// reset clears the active set and history for a fresh analysis,
// keeping every buffer.
func (a *accelState) reset() {
	for _, j := range a.flows {
		a.activeMark[j] = false
	}
	a.flows = a.flows[:0]
	a.offs = a.offs[:0]
	a.size = 0
	a.hist = a.hist[:0]
	a.xvalid = false
}

// ensureActive folds the round's worklist into the active set. Growth
// rebuilds the packed layout and migrates the history into it: old
// flows keep their samples, newcomers get their current arena values
// with a zero residual — so the extrapolation never moves a slot it
// has no history for, but a worklist front creeping across the closure
// (the deep-chain ripple) does not keep wiping the history it needs.
func (a *accelState) ensureActive(js *jitterState, work []int) {
	if n := js.numFlows(); len(a.activeMark) < n {
		a.activeMark = append(a.activeMark, make([]bool, n-len(a.activeMark))...)
	}
	grew := false
	for _, j := range work {
		if !a.activeMark[j] {
			a.activeMark[j] = true
			grew = true
		}
	}
	if !grew {
		return
	}
	oldFlows, oldOffs := a.flows, a.offs
	flows := make([]int, 0, len(oldFlows)+len(work))
	flows = append(flows, oldFlows...)
	for _, j := range work {
		pos := sort.SearchInts(oldFlows, j)
		if pos == len(oldFlows) || oldFlows[pos] != j {
			flows = append(flows, j)
		}
	}
	sort.Ints(flows)
	offs := make([]int, 0, len(flows))
	size := 0
	for _, j := range flows {
		offs = append(offs, size)
		b := &js.blocks[j]
		size += len(b.rids) * int(b.n)
	}
	a.flows, a.offs, a.size = flows, offs, size
	for ei := range a.hist {
		e := &a.hist[ei]
		e.g = a.migrateVec(e.g, oldFlows, oldOffs, js, true)
		e.f = a.migrateVec(e.f, oldFlows, oldOffs, js, false)
	}
	if a.xvalid {
		a.x = a.migrateVec(a.x, oldFlows, oldOffs, js, true)
	}
}

// migrateVec rebuilds a packed vector from the old layout into the
// current one: flows present in both keep their values, newcomers are
// filled from the live arena (fromArena, for iterates) or left zero
// (for residuals). Allocates only on growth, never per round.
func (a *accelState) migrateVec(vec []units.Time, oldFlows, oldOffs []int, js *jitterState, fromArena bool) []units.Time {
	out := make([]units.Time, a.size)
	oi := 0
	for fi, j := range a.flows {
		b := &js.blocks[j]
		slots := len(b.rids) * int(b.n)
		dst := out[a.offs[fi] : a.offs[fi]+slots]
		for oi < len(oldFlows) && oldFlows[oi] < j {
			oi++
		}
		if oi < len(oldFlows) && oldFlows[oi] == j {
			copy(dst, vec[oldOffs[oi]:oldOffs[oi]+slots])
		} else if fromArena {
			copy(dst, js.arena[b.base:int(b.base)+slots])
		}
	}
	return out
}

// gather packs the active flows' arena slots into dst (len a.size).
func (a *accelState) gather(js *jitterState, dst []units.Time) {
	for fi, j := range a.flows {
		b := &js.blocks[j]
		slots := int32(len(b.rids)) * b.n
		copy(dst[a.offs[fi]:], js.arena[b.base:b.base+slots])
	}
}

// observe snapshots the pre-sweep iterate x.
func (a *accelState) observe(js *jitterState) {
	if a.size == 0 {
		a.xvalid = false
		return
	}
	a.x = resizeTimes(a.x, a.size)
	a.gather(js, a.x)
	a.xvalid = true
}

// record pushes the post-sweep pair (g, f = g - x) into the history
// ring, recycling the oldest entry's buffers when the ring is full.
func (a *accelState) record(js *jitterState) {
	if !a.xvalid || a.size == 0 {
		return
	}
	var e accelEntry
	if len(a.hist) == a.depth {
		e = a.hist[0]
		copy(a.hist, a.hist[1:])
		a.hist = a.hist[:a.depth-1]
	}
	e.g = resizeTimes(e.g, a.size)
	e.f = resizeTimes(e.f, a.size)
	a.gather(js, e.g)
	for i, g := range e.g {
		e.f[i] = g - a.x[i]
	}
	a.hist = append(a.hist, e)
}

// ready reports whether enough history exists to extrapolate.
func (a *accelState) ready() bool { return len(a.hist) >= a.depth && a.size > 0 }

// propose builds an extrapolated candidate and writes its slot bumps
// into js (through set, so journaling, the changed worklist and the
// extra caches all stay coherent). It reports whether any slot moved;
// the caller then runs the safeguarded verification sweep.
func (a *accelState) propose(js *jitterState) bool {
	a.z = resizeTimes(a.z, a.size)
	if !a.andersonCandidate() {
		return false
	}
	return a.writeCandidate(js, a.hist[len(a.hist)-1].g)
}

// narrowCandidate lowers the bumps the verification sweep refuted —
// each slot in decOffs moves down to decVals, the value the sweep
// itself computed for it (its F(z), read before rollback) — and
// rewrites the candidate into js. A sweep from any state >= g keeps
// every slot >= its g value, so only bumped slots can decrease, the
// feedback value sits strictly inside [g, z), and every narrowing
// strictly lowers at least one integer slot: the retry loop
// terminates. Using the sweep's own output instead of zeroing the bump
// keeps the gain on slots whose local decay is faster than the global
// mode. Returns false when no bump survived.
func (a *accelState) narrowCandidate(js *jitterState, decOffs []int32, decVals []units.Time) bool {
	h := len(a.hist)
	if h == 0 {
		return false
	}
	g := a.hist[h-1].g
	var kept, orig float64
	for i, off := range decOffs {
		idx, ok := a.packedIndex(js, off)
		if !ok {
			continue
		}
		v := decVals[i]
		if v < g[idx] {
			v = g[idx]
		}
		if v < a.z[idx] {
			orig += float64(a.z[idx] - g[idx])
			kept += float64(v - g[idx])
			a.z[idx] = v
		}
	}
	// The refuted slots' surviving fraction of their bump anticipates
	// the cascade: the slots that passed did so against the refuted
	// slots' inflated inputs, so the same shrink is applied to every
	// surviving bump up front instead of waiting for the next sweep to
	// refute them one wavefront at a time.
	if orig > 0 {
		s := math.Sqrt(kept / orig)
		for i, zv := range a.z {
			if b := zv - g[i]; b > 0 {
				nb := units.Time(float64(b) * s)
				a.z[i] = g[i] + nb
			}
		}
	}
	return a.writeCandidate(js, g)
}

// packedIndex maps an arena offset to its index in the packed active
// vectors, by binary search over the active flows' blocks (arena bases
// are monotone in flow index).
func (a *accelState) packedIndex(js *jitterState, off int32) (int, bool) {
	lo, hi := 0, len(a.flows)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := &js.blocks[a.flows[mid]]
		slots := int32(len(b.rids)) * b.n
		switch {
		case off < b.base:
			hi = mid - 1
		case off >= b.base+slots:
			lo = mid + 1
		default:
			return a.offs[mid] + int(off-b.base), true
		}
	}
	return 0, false
}

// andersonCandidate forms the type-II Anderson mix over the residual
// differences: solve (dF'dF + reg) gamma = dF' f_k and set
// z = g_k - dG gamma, clamped slotwise to [g, g + cap*f].
func (a *accelState) andersonCandidate() bool {
	h := len(a.hist)
	q := h - 1
	fk := a.hist[h-1].f
	gk := a.hist[h-1].g
	a.mat = resizeFloats(a.mat, q*q)
	a.rhs = resizeFloats(a.rhs, q)
	a.gamma = resizeFloats(a.gamma, q)
	df := func(j, s int) float64 { return float64(a.hist[j+1].f[s] - a.hist[j].f[s]) }
	var trace float64
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			var sum float64
			for s := 0; s < a.size; s++ {
				sum += df(i, s) * df(j, s)
			}
			a.mat[i*q+j] = sum
			a.mat[j*q+i] = sum
			if i == j {
				trace += sum
			}
		}
		var sum float64
		for s := 0; s < a.size; s++ {
			sum += df(i, s) * float64(fk[s])
		}
		a.rhs[i] = sum
	}
	if trace == 0 {
		// Degenerate: the residual did not change between sweeps;
		// nothing to mix.
		return false
	}
	reg := 1e-10 * trace
	for i := 0; i < q; i++ {
		a.mat[i*q+i] += reg
	}
	if !solveDense(a.mat, a.rhs, a.gamma, q) {
		return false
	}
	for i := 0; i < q; i++ {
		if g := a.gamma[i]; math.IsNaN(g) || math.Abs(g) > 1e6 {
			return false
		}
	}
	any := false
	for s := 0; s < a.size; s++ {
		zz := float64(gk[s])
		for j := 0; j < q; j++ {
			zz -= a.gamma[j] * float64(a.hist[j+1].g[s]-a.hist[j].g[s])
		}
		f := fk[s]
		if f < 0 {
			f = 0
		}
		maxBump := f * accelBumpCap
		if maxBump/accelBumpCap != f { // overflow
			maxBump = f
		}
		// Floor, not round: a bump 1 ps past the least fixpoint costs a
		// full rollback sweep, a 1 ps undershoot costs nothing (the
		// accepted sweep ascends through it anyway).
		bumpF := math.Floor(zz - float64(gk[s]))
		if bumpF < 0 {
			bumpF = 0
		} else if bumpF > float64(maxBump) {
			bumpF = float64(maxBump)
		}
		bump := units.Time(bumpF)
		a.z[s] = units.SaturatingAdd(gk[s], bump)
		if bump > 0 {
			any = true
		}
	}
	return any
}

// writeCandidate applies the candidate's upward bumps (z was clamped
// >= g, so equality means "leave the slot alone").
func (a *accelState) writeCandidate(js *jitterState, g []units.Time) bool {
	wrote := false
	for fi, j := range a.flows {
		b := &js.blocks[j]
		n := int(b.n)
		off := a.offs[fi]
		for pos := range b.rids {
			for k := 0; k < n; k++ {
				idx := off + pos*n + k
				if a.z[idx] > g[idx] {
					js.set(j, pos, k, a.z[idx])
					wrote = true
				}
			}
		}
	}
	return wrote
}

// solveDense solves the dense n x n system m*out = b by Gaussian
// elimination with partial pivoting, destroying m and b (they are
// scratch). n is the Anderson window minus one — a handful.
func solveDense(m, b, out []float64, n int) bool {
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r*n+col]) > math.Abs(m[piv*n+col]) {
				piv = r
			}
		}
		if m[piv*n+col] == 0 {
			return false
		}
		if piv != col {
			for c := 0; c < n; c++ {
				m[col*n+c], m[piv*n+c] = m[piv*n+c], m[col*n+c]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			fac := m[r*n+col] * inv
			if fac == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r*n+c] -= fac * m[col*n+c]
			}
			b[r] -= fac * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= m[r*n+c] * out[c]
		}
		out[r] = s / m[r*n+r]
	}
	return true
}

func resizeTimes(s []units.Time, n int) []units.Time {
	if cap(s) < n {
		return make([]units.Time, n)
	}
	return s[:n]
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
