package core

import (
	"runtime"
	"sync"

	"gmfnet/internal/units"
)

// AnalyzeParallel runs the holistic analysis with Jacobi-style iterations:
// within one pass every flow is analysed concurrently against a snapshot
// of the previous pass's jitters, instead of the sequential Gauss-Seidel
// sweep of Analyze. Both iterate the same monotone operator from the same
// starting point, so they converge to the same least fixpoint (Kleene
// iteration); Jacobi may need more passes but parallelises across flows.
//
// workers <= 0 selects GOMAXPROCS. The Analyzer itself is still
// single-goroutine-owned: AnalyzeParallel must not be called concurrently
// with other methods.
func (a *Analyzer) AnalyzeParallel(workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.nw.NumFlows()
	if n == 0 {
		return &Result{Converged: true}, nil
	}
	// The demand cache is filled before fan-out so that the workers only
	// read it.
	a.prewarmDemands()

	js := newJitterState(a.nw)
	res := &Result{}
	for iter := 1; iter <= a.cfg.MaxHolisticIter; iter++ {
		flows := make([]FlowResult, n)
		overlays := make([]*jitterOverlay, n)

		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				// Each worker reads the shared snapshot and writes only
				// its own flow's jitters into a private overlay.
				ov := newJitterOverlay(js, i)
				w := &Analyzer{nw: a.nw, cfg: a.cfg, demands: a.demands}
				flows[i] = w.flowPass(i, ov)
				overlays[i] = ov
			}()
		}
		wg.Wait()

		res.Flows = flows
		res.Iterations = iter
		for i := 0; i < n; i++ {
			if flows[i].Err != nil {
				res.Converged = false
				return res, nil
			}
		}
		js.resetChanged()
		for _, ov := range overlays {
			ov.mergeInto(js)
		}
		if !js.changed {
			res.Converged = true
			return res, nil
		}
	}
	res.Converged = false
	return res, nil
}

// prewarmDemands builds every (flow, link rate) demand so the cache can be
// shared read-only across workers.
func (a *Analyzer) prewarmDemands() {
	for i, fs := range a.nw.Flows() {
		for h := 0; h < len(fs.Route)-1; h++ {
			link := a.nw.Topo.Link(fs.Route[h], fs.Route[h+1])
			a.demand(i, link.Rate)
			// Interfering flows on this link also get queried at this
			// link's rate.
			for _, j := range a.nw.FlowsOn(fs.Route[h], fs.Route[h+1]) {
				a.demand(j, link.Rate)
			}
		}
	}
}

// jitterSource is what the stage analyses read jitters from.
type jitterSource interface {
	set(j int, res Resource, k int, v units.Time)
	get(j int, res Resource, k int) units.Time
	extra(j int, res Resource) units.Time
}

// jitterOverlay is a copy-on-write view: reads of the owner flow's
// jitters see the private overlay, reads of other flows fall through to
// the shared snapshot; writes are restricted to the owner.
type jitterOverlay struct {
	base  *jitterState
	owner int
	own   map[jitterKey][]units.Time
}

func newJitterOverlay(base *jitterState, owner int) *jitterOverlay {
	return &jitterOverlay{base: base, owner: owner, own: make(map[jitterKey][]units.Time)}
}

func (o *jitterOverlay) set(j int, res Resource, k int, v units.Time) {
	if j != o.owner {
		panic("core: overlay write for foreign flow")
	}
	key := jitterKey{j, res}
	slot, ok := o.own[key]
	if !ok {
		baseSlot := o.base.perFrame[key]
		slot = make([]units.Time, len(baseSlot))
		copy(slot, baseSlot)
		o.own[key] = slot
	}
	slot[k] = v
}

func (o *jitterOverlay) get(j int, res Resource, k int) units.Time {
	if j == o.owner {
		if slot, ok := o.own[jitterKey{j, res}]; ok {
			return slot[k]
		}
	}
	return o.base.get(j, res, k)
}

func (o *jitterOverlay) extra(j int, res Resource) units.Time {
	if j == o.owner {
		if slot, ok := o.own[jitterKey{j, res}]; ok {
			var m units.Time
			for _, v := range slot {
				if v > m {
					m = v
				}
			}
			return m
		}
	}
	return o.base.extra(j, res)
}

// mergeInto writes the overlay's values back into the shared state,
// updating its changed flag.
func (o *jitterOverlay) mergeInto(js *jitterState) {
	for key, slot := range o.own {
		for k, v := range slot {
			js.set(key.flow, key.res, k, v)
		}
	}
}

var (
	_ jitterSource = (*jitterState)(nil)
	_ jitterSource = (*jitterOverlay)(nil)
)
