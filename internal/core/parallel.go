package core

import (
	"runtime"
	"sync"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// AnalyzeParallel runs the holistic analysis with Jacobi-style iterations:
// within one pass every flow is analysed concurrently against a snapshot
// of the previous pass's jitters, instead of the sequential Gauss-Seidel
// sweep of Analyze. Both iterate the same monotone operator from the same
// starting point, so they converge to the same least fixpoint (Kleene
// iteration); Jacobi may need more passes but parallelises across flows.
//
// workers <= 0 selects GOMAXPROCS. The Analyzer itself is still
// single-goroutine-owned: AnalyzeParallel must not be called concurrently
// with other methods.
func (a *Analyzer) AnalyzeParallel(workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.nw.NumFlows()
	if n == 0 {
		return &Result{Converged: true}, nil
	}
	// The demand cache is filled before fan-out so that the workers only
	// read it.
	a.prewarmDemands()

	js := newJitterState(a.nw)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	res := &Result{}
	for iter := 1; iter <= a.cfg.MaxHolisticIter; iter++ {
		flows := make([]FlowResult, n)
		overlays := a.parallelRound(js, all, workers, flows)

		res.Flows = flows
		res.Iterations = iter
		for i := 0; i < n; i++ {
			if flows[i].Err != nil {
				res.Converged = false
				return res, nil
			}
		}
		js.resetChanged()
		for _, ov := range overlays {
			ov.mergeInto(js)
		}
		if !js.changed {
			res.Converged = true
			return res, nil
		}
	}
	res.Converged = false
	return res, nil
}

// parallelRound analyses the given flows concurrently against a frozen
// view of js: each worker reads the shared state and writes only its own
// flow's jitters into a private overlay. Results land in out (indexed by
// flow); the overlays are returned aligned with work for the caller to
// merge. The demand cache must be prewarmed and is shared read-only;
// validateExtras runs first so foreign extraOf reads never mutate the
// shared caches. Both AnalyzeParallel and the engine's parallel delta
// worklist run their Jacobi rounds through here.
func (a *Analyzer) parallelRound(js *jitterState, work []int, workers int, out []FlowResult) []*jitterOverlay {
	js.validateExtras()
	overlays := make([]*jitterOverlay, len(work))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for wi, i := range work {
		wi, i := wi, i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ov := newJitterOverlay(js, i)
			w := &Analyzer{nw: a.nw, cfg: a.cfg, demands: a.demands}
			out[i] = w.flowPass(i, ov)
			overlays[wi] = ov
		}()
	}
	wg.Wait()
	return overlays
}

// prewarmDemands builds every (flow, link rate) demand so the cache can be
// shared read-only across workers.
func (a *Analyzer) prewarmDemands() {
	for i, fs := range a.nw.Flows() {
		for h := 0; h < len(fs.Route)-1; h++ {
			link := a.nw.Topo.Link(fs.Route[h], fs.Route[h+1])
			a.demand(i, link.Rate)
			// Interfering flows on this link also get queried at this
			// link's rate.
			for _, j := range a.nw.FlowsOn(fs.Route[h], fs.Route[h+1]) {
				a.demand(j, link.Rate)
			}
		}
	}
}

// jitterSource is what the stage analyses read jitters from: writes go by
// stage position within the owner flow's pipeline, interference reads by
// dense resource id.
type jitterSource interface {
	set(j, pos, k int, v units.Time)
	extraOf(j int, rid network.ResourceID) units.Time
}

// jitterOverlay is a copy-on-write view over the arena: the owner flow's
// block is copied up front and all writes land there; reads of other
// flows fall through to the shared base state.
type jitterOverlay struct {
	base  *jitterState
	owner int
	n     int
	rids  []network.ResourceID
	vals  []units.Time
}

func newJitterOverlay(base *jitterState, owner int) *jitterOverlay {
	b := &base.blocks[owner]
	vals := make([]units.Time, len(b.rids)*int(b.n))
	copy(vals, base.arena[b.base:int(b.base)+len(vals)])
	return &jitterOverlay{base: base, owner: owner, n: int(b.n), rids: b.rids, vals: vals}
}

func (o *jitterOverlay) set(j, pos, k int, v units.Time) {
	if j != o.owner {
		panic("core: overlay write for foreign flow")
	}
	o.vals[pos*o.n+k] = v
}

func (o *jitterOverlay) get(j, pos, k int) units.Time {
	if j == o.owner {
		return o.vals[pos*o.n+k]
	}
	return o.base.get(j, pos, k)
}

func (o *jitterOverlay) extraOf(j int, rid network.ResourceID) units.Time {
	if j != o.owner {
		// Foreign reads hit the base's extra caches, validated before
		// fan-out, so they are strictly read-only here.
		return o.base.extraOf(j, rid)
	}
	for pos, r := range o.rids {
		if r == rid {
			var m units.Time
			for _, v := range o.vals[pos*o.n : (pos+1)*o.n] {
				if v > m {
					m = v
				}
			}
			return m
		}
	}
	return 0
}

// mergeInto writes the overlay's values back into the shared state through
// set, preserving change tracking and the undo journal.
func (o *jitterOverlay) mergeInto(js *jitterState) {
	for pos := range o.rids {
		for k := 0; k < o.n; k++ {
			js.set(o.owner, pos, k, o.vals[pos*o.n+k])
		}
	}
}

var (
	_ jitterSource = (*jitterState)(nil)
	_ jitterSource = (*jitterOverlay)(nil)
)
