package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// TestSnapshotUndoMatchesClone is the randomized differential test for the
// undo-log rollback: at every snapshot point the jitter arena is also
// deep-copied with the clone oracle the journal replaced; after a burst of
// tentative admissions and analyses, Restore must leave the arena
// bit-identical to that deep copy.
func TestSnapshotUndoMatchesClone(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts := randomEngineTopo(t, r)
			eng, err := NewEngine(network.New(topo), Config{})
			if err != nil {
				t.Fatal(err)
			}
			// Converge a base population so snapshots carry warm state.
			for op := 0; op < 5; op++ {
				fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("base%d-%d", seed, op))
				if _, err := eng.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := eng.Analyze(); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 8; round++ {
				oracle := eng.js.clone()
				numFlows := eng.Network().NumFlows()
				snap := eng.Snapshot()
				adds := 1 + r.Intn(3)
				for a := 0; a < adds; a++ {
					fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("tent%d-%d-%d", seed, round, a))
					if _, err := eng.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
					if r.Intn(2) == 0 {
						if _, err := eng.Analyze(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := eng.Analyze(); err != nil {
					t.Fatal(err)
				}
				if err := eng.Restore(snap); err != nil {
					t.Fatal(err)
				}
				if eng.Network().NumFlows() != numFlows {
					t.Fatalf("round %d: %d flows after restore, want %d", round, eng.Network().NumFlows(), numFlows)
				}
				if eng.js == nil {
					t.Fatal("restore dropped warm state")
				}
				if !eng.js.equalAssignment(oracle) {
					t.Fatalf("round %d: undo-log rollback differs from deep-copy clone", round)
				}
				// The engine must keep working after the rollback.
				if _, err := eng.Analyze(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSnapshotOnceSemantics pins the token contract: a snapshot is
// restorable at most once, and taking a newer snapshot invalidates it.
func TestSnapshotOnceSemantics(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddFlow(voipOn("base", "a1", "sA", "a2")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if _, err := eng.AddFlow(voipOn("t1", "a1", "sA", "a3")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(snap); err == nil {
		t.Fatal("second restore of the same snapshot succeeded")
	}
	old := eng.Snapshot()
	_ = eng.Snapshot()
	if err := eng.Restore(old); err == nil {
		t.Fatal("restoring a superseded snapshot succeeded")
	}
}

// TestSnapshotDiscard: discarding the live snapshot disarms the journal
// (no more undo entries accumulate) and consumes the token; discarding a
// superseded token is a no-op.
func TestSnapshotDiscard(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddFlow(voipOn("base", "a1", "sA", "a2")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if !eng.js.journalOn {
		t.Fatal("snapshot did not arm the journal")
	}
	eng.Discard(snap)
	if eng.js.journalOn {
		t.Fatal("discard left the journal armed")
	}
	if err := eng.Restore(snap); err == nil {
		t.Fatal("restore of a discarded snapshot succeeded")
	}
	if _, err := eng.AddFlow(voipOn("more", "a2", "sA", "a3")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	if len(eng.js.journal) != 0 {
		t.Fatalf("journal accumulated %d entries after discard", len(eng.js.journal))
	}
	// A dead token must not disarm the journal of a newer snapshot.
	live := eng.Snapshot()
	eng.Discard(snap)
	if !eng.js.journalOn {
		t.Fatal("stale discard disarmed the live snapshot's journal")
	}
	if err := eng.Restore(live); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveFlowReindexChangedList is the regression test for the
// pre-arena bug: removeFlowReindex dropped per-frame slots but left the
// changed-flow worklist unshifted, so stale flow indices could leak into
// the next delta worklist after a departure.
func TestRemoveFlowReindexChangedList(t *testing.T) {
	topo := engineTopo(t)
	nw := network.New(topo)
	for _, fs := range []*network.FlowSpec{
		voipOn("f0", "a1", "sA", "a2"),
		voipOn("f1", "a2", "sA", "a3"),
		voipOn("f2", "b1", "sB", "b2"),
	} {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	js := newJitterState(nw)
	js.set(1, 0, 0, 2*ms)
	js.set(2, 0, 0, 3*ms)
	before := js.get(2, 0, 0)
	nw.RemoveFlow(0)
	js.removeFlowReindex(0)
	if js.numFlows() != 2 {
		t.Fatalf("blocks = %d, want 2", js.numFlows())
	}
	if got := js.get(1, 0, 0); got != before {
		t.Fatalf("shifted flow slot = %v, want %v", got, before)
	}
	if len(js.changedList) != 2 {
		t.Fatalf("changedList = %v, want two entries", js.changedList)
	}
	for _, j := range js.changedList {
		if j < 0 || j >= js.numFlows() {
			t.Fatalf("stale flow index %d leaked into the worklist (flows: %d)", j, js.numFlows())
		}
		if !js.changedMark[j] {
			t.Fatalf("changedList/changedMark out of sync at %d", j)
		}
	}
}

// TestEngineInterleavedRemoveAndDelta interleaves departures with delta
// analyses and asserts the engine stays bound-identical to a cold
// analysis — the end-to-end guard for the worklist reindexing above.
func TestEngineInterleavedRemoveAndDelta(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []*network.FlowSpec{
		voipOn("a1a2", "a1", "sA", "a2"),
		voipOn("a2a3", "a2", "sA", "a3"),
		voipOn("cross", "a1", "sA", "sB", "b2"),
		voipOn("b1b2", "b1", "sB", "b2"),
		voipOn("b2b3", "b2", "sB", "b3"),
	}
	for _, fs := range specs {
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	live := append([]*network.FlowSpec(nil), specs...)
	for _, i := range []int{2, 0} {
		if err := eng.RemoveFlow(i); err != nil {
			t.Fatal(err)
		}
		live = append(live[:i], live[i+1:]...)
		// Delta-analyse right after the departure with a fresh change on
		// the highest surviving index: a stale (unshifted) worklist entry
		// would address the wrong — or a vanished — flow.
		res, err := eng.AnalyzeDelta(len(live) - 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := network.New(topo)
		for _, fs := range live {
			if _, err := ref.AddFlow(fs); err != nil {
				t.Fatal(err)
			}
		}
		an, err := NewAnalyzer(ref, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := an.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, res, cold)
	}
}

// TestEngineParallelWorklistLargeNetwork drives the Jacobi delta worklist
// over a population large enough to actually engage the parallel rounds,
// and checks the fixpoint against the cold sequential analysis. Run with
// -race this also proves the rounds share state safely.
func TestEngineParallelWorklistLargeNetwork(t *testing.T) {
	topo, hosts, err := network.Ring(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(network.New(topo), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+5)%len(hosts)]
		route, err := topo.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		fs := &network.FlowSpec{
			Flow:     trace.VoIP(fmt.Sprintf("v%d", i), trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: network.Priority(i % 3),
		}
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(eng.Network(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, res, cold)
}
