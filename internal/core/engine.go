package core

import (
	"fmt"
	"sort"

	"gmfnet/internal/network"
)

// Engine is a persistent, warm-startable analysis engine for online
// admission control. Where Analyzer is a one-shot object that starts the
// holistic iteration of Section 3.5 cold on every call, an Engine lives
// across a stream of requests and keeps three pieces of state warm:
//
//   - the (flow, rate) demand cache, so packetisation (eq. 1) and the
//     request-bound tables are computed once per flow, not once per call;
//   - the last converged jitter assignment, so a subsequent analysis warm
//     starts at the previous fixpoint instead of at the cold-start point
//     (the holistic operator is monotone, so warm iterates still converge
//     to the exact least fixpoint after additions);
//   - the network's resource→flows interference index, so a change to one
//     flow re-analyses only the flows whose pipelines transitively share a
//     resource with it (AnalyzeDelta), falling back to a full pass when
//     the affected set is the whole network.
//
// Mutate the flow set only through AddFlow/RemoveFlow so the engine can
// track what changed; after any out-of-band change to the network or its
// flows, call Invalidate. An Engine is not safe for concurrent use.
type Engine struct {
	an *Analyzer

	js    *jitterState // last converged jitter assignment when valid
	flows []FlowResult // last per-flow results, aligned with network indices
	valid bool         // js and flows describe a fixpoint of the current flow set
	dirty map[int]bool // flows changed since the last converged analysis

	lastIterations int
}

// NewEngine validates the network once and returns an engine over it.
// Unlike the per-request core.NewAnalyzer path, later AddFlow calls
// validate only the incoming flow against the already-validated network.
func NewEngine(nw *network.Network, cfg Config) (*Engine, error) {
	an, err := NewAnalyzer(nw, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{an: an, dirty: make(map[int]bool)}, nil
}

// Network returns the underlying network.
func (e *Engine) Network() *network.Network { return e.an.nw }

// Invalidate discards all warm state; the next analysis runs cold. Call
// it after mutating the network or its flows outside AddFlow/RemoveFlow
// (e.g. reassigning priorities).
func (e *Engine) Invalidate() {
	e.js = nil
	e.flows = nil
	e.valid = false
	e.dirty = make(map[int]bool)
}

// AddFlow validates the flow against the topology, registers it and marks
// it for (re-)analysis. Only the incoming flow is validated; the rest of
// the network was validated at construction.
func (e *Engine) AddFlow(fs *network.FlowSpec) (int, error) {
	i, err := e.an.nw.AddFlow(fs)
	if err != nil {
		return 0, err
	}
	if e.valid {
		e.js.addFlow(i, fs)
		e.flows = append(e.flows, FlowResult{Index: i, Name: fs.Flow.Name})
	}
	e.dirty[i] = true
	return i, nil
}

// RemoveFlow removes the i-th flow (a departure). Flows above i shift
// down by one index, mirroring Network.RemoveFlow. The flows that shared
// resources with the departed one — transitively — are reset to the
// cold-start jitter assignment and re-analysed on the next Analyze; a
// descent from the stale fixpoint could otherwise stop at a non-least
// fixpoint and over-reject later admissions.
func (e *Engine) RemoveFlow(i int) error {
	nw := e.an.nw
	if i < 0 || i >= nw.NumFlows() {
		return errIndex(i, nw.NumFlows())
	}
	if !e.valid {
		nw.RemoveFlow(i)
		e.dirty = make(map[int]bool) // indices shifted; cold pass re-covers all
		return nil
	}
	affected := e.affectedSet(map[int]bool{i: true})
	nw.RemoveFlow(i)
	e.js.removeFlowReindex(i)
	e.flows = append(e.flows[:i], e.flows[i+1:]...)
	for j := i; j < len(e.flows); j++ {
		e.flows[j].Index = j
	}
	shift := func(j int) int {
		if j > i {
			return j - 1
		}
		return j
	}
	dirty := make(map[int]bool, len(e.dirty)+len(affected))
	for j := range e.dirty {
		if j != i {
			dirty[shift(j)] = true
		}
	}
	for _, j := range affected {
		if j == i {
			continue
		}
		j = shift(j)
		e.js.coldReset(j, nw.Flow(j))
		dirty[j] = true
	}
	e.dirty = dirty
	return nil
}

// Analyze brings the engine's bounds up to date and returns them. With no
// pending changes it returns the cached result; with pending changes it
// runs AnalyzeDelta over them; without warm state it runs a full cold
// pass. The returned Result is detached from the engine: later engine
// calls do not mutate it.
func (e *Engine) Analyze() (*Result, error) {
	if !e.valid {
		return e.analyzeFull()
	}
	if len(e.dirty) == 0 {
		return e.result(true), nil
	}
	changed := make([]int, 0, len(e.dirty))
	for i := range e.dirty {
		changed = append(changed, i)
	}
	return e.AnalyzeDelta(changed...)
}

// AnalyzeDelta re-analyses only the flows whose pipelines transitively
// share a resource with the given changed flows, keeping every other
// flow's converged bounds. It is decision- and bound-equivalent to a full
// cold analysis of the current network: unaffected flows' equations do
// not involve affected flows, and the affected subsystem is iterated
// monotonically to its least fixpoint. When the affected set is the whole
// network (or no warm state exists) it falls back to a full pass.
func (e *Engine) AnalyzeDelta(changed ...int) (*Result, error) {
	nw := e.an.nw
	n := nw.NumFlows()
	seed := make(map[int]bool, len(changed)+len(e.dirty))
	for _, i := range changed {
		if i < 0 || i >= n {
			return nil, errIndex(i, n)
		}
		seed[i] = true
	}
	// Fold in every other pending change: a converged delta pass marks
	// the whole engine state valid, which is only sound if no dirty flow
	// is left un-analysed.
	for i := range e.dirty {
		seed[i] = true
	}
	if n == 0 {
		e.js = newJitterState(nw)
		e.flows = nil
		e.valid = true
		e.dirty = make(map[int]bool)
		e.lastIterations = 0
		return e.result(true), nil
	}
	if !e.valid {
		return e.analyzeFull()
	}
	// A changed flow alters the inputs of every flow sharing a directed
	// link with it (its demand now appears in their interference sums),
	// so those neighbours seed the worklist alongside the changed flows
	// themselves; the iteration then propagates only where jitters
	// actually move, never leaving the transitive interference closure —
	// and degenerating to a full (warm-started) pass when that closure is
	// the whole network.
	work := make([]int, 0, len(seed))
	for i := range seed {
		work = append(work, i)
	}
	for _, i := range work {
		for _, j := range nw.Interferers(i) {
			seed[j] = true
		}
	}
	work = work[:0]
	for i := range seed {
		work = append(work, i)
	}
	sort.Ints(work)
	return e.analyzeOver(work)
}

// analyzeFull runs the holistic analysis cold over every flow, rebuilding
// all warm state.
func (e *Engine) analyzeFull() (*Result, error) {
	nw := e.an.nw
	e.js = newJitterState(nw)
	e.flows = make([]FlowResult, nw.NumFlows())
	for i := range e.flows {
		e.flows[i] = FlowResult{Index: i, Name: nw.Flow(i).Flow.Name}
	}
	all := make([]int, nw.NumFlows())
	for i := range all {
		all[i] = i
	}
	return e.analyzeOver(all)
}

// analyzeOver runs a chaotic (worklist) iteration of the holistic
// operator: each round re-analyses the flows on the worklist, and the
// next round's worklist is the flows whose jitters changed plus every
// flow sharing a directed link with one of them — the only flows whose
// inputs moved. A flow whose interferers' jitters are all unchanged
// recomputes to its previous result, so skipping it is exact: the
// iteration converges to the same least fixpoint as a full Gauss-Seidel
// sweep, while touching only the actual propagation front.
func (e *Engine) analyzeOver(work []int) (*Result, error) {
	nw := e.an.nw
	for iter := 1; iter <= e.an.cfg.MaxHolisticIter; iter++ {
		e.js.resetChanged()
		for _, i := range work {
			fr := e.an.flowPass(i, e.js)
			e.flows[i] = fr
			if fr.Err != nil {
				// An overloaded or diverging stage dooms the whole
				// configuration; warm state is no longer a fixpoint.
				e.valid = false
				e.lastIterations = iter
				return e.result(false), nil
			}
		}
		if len(e.js.changedFlows) == 0 {
			e.valid = true
			e.dirty = make(map[int]bool)
			e.lastIterations = iter
			return e.result(true), nil
		}
		next := make(map[int]bool, 2*len(e.js.changedFlows))
		for f := range e.js.changedFlows {
			next[f] = true
			for _, j := range nw.Interferers(f) {
				next[j] = true
			}
		}
		work = work[:0]
		for i := range next {
			work = append(work, i)
		}
		sort.Ints(work)
	}
	e.valid = false
	e.lastIterations = e.an.cfg.MaxHolisticIter
	return e.result(false), nil
}

// result assembles a detached Result from the cached per-flow results.
func (e *Engine) result(converged bool) *Result {
	out := &Result{
		Flows:      make([]FlowResult, len(e.flows)),
		Iterations: e.lastIterations,
		Converged:  converged,
	}
	copy(out.Flows, e.flows)
	return out
}

// affectedSet returns the transitive closure of the seed flows under the
// "shares a directed link" relation, sorted ascending. Interference in
// every pipeline stage — first hop, in(N) ingress, prioritised egress —
// travels only between flows on a common directed link, so this closure
// is exactly the set of flows whose bounds can change.
func (e *Engine) affectedSet(seed map[int]bool) []int {
	nw := e.an.nw
	n := nw.NumFlows()
	visited := make([]bool, n)
	queue := make([]int, 0, len(seed))
	for i := range seed {
		if !visited[i] {
			visited[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		fs := nw.Flow(i)
		for h := 0; h < len(fs.Route)-1; h++ {
			for _, j := range nw.FlowsOn(fs.Route[h], fs.Route[h+1]) {
				if !visited[j] {
					visited[j] = true
					queue = append(queue, j)
				}
			}
		}
	}
	out := make([]int, 0, n)
	for i, v := range visited {
		if v {
			out = append(out, i)
		}
	}
	return out
}

// Snapshot captures the engine's warm state and flow count. Taking a
// snapshot costs a deep copy of the jitter assignment — no fixpoint work —
// which is why the admission controller snapshots before every tentative
// admission instead of re-analysing after a rejection.
type Snapshot struct {
	js             *jitterState
	flows          []FlowResult
	dirty          map[int]bool
	valid          bool
	lastIterations int
	numFlows       int
}

// Snapshot captures the current engine state for a later Restore.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		valid:          e.valid,
		lastIterations: e.lastIterations,
		numFlows:       e.an.nw.NumFlows(),
		dirty:          make(map[int]bool, len(e.dirty)),
	}
	for i := range e.dirty {
		s.dirty[i] = true
	}
	if e.js != nil {
		s.js = e.js.clone()
	}
	s.flows = make([]FlowResult, len(e.flows))
	copy(s.flows, e.flows)
	return s
}

// Restore rolls the engine and its network back to a snapshot taken
// earlier in the same add-only window: flows added since the snapshot are
// popped and the warm state is restored wholesale. Restoring across a
// RemoveFlow is not supported (indices have shifted) and returns an
// error. The engine takes ownership of the snapshot's state; restore a
// given snapshot at most once.
func (e *Engine) Restore(s *Snapshot) error {
	nw := e.an.nw
	if nw.NumFlows() < s.numFlows {
		return fmt.Errorf("core: cannot restore snapshot across flow removals (%d flows now, %d at snapshot)", nw.NumFlows(), s.numFlows)
	}
	for nw.NumFlows() > s.numFlows {
		nw.RemoveLastFlow()
	}
	e.js = s.js
	e.flows = s.flows
	e.valid = s.valid
	e.lastIterations = s.lastIterations
	e.dirty = s.dirty
	return nil
}
