package core

import (
	"fmt"
	"runtime"
	"sort"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// Engine is a persistent, warm-startable analysis engine for online
// admission control. Where Analyzer is a one-shot object that starts the
// holistic iteration of Section 3.5 cold on every call, an Engine lives
// across a stream of requests and keeps three pieces of state warm:
//
//   - the per-flow demand cache, so packetisation (eq. 1) and the
//     request-bound tables are computed once per flow, not once per call;
//   - the last converged jitter assignment — a flat arena indexed by
//     (flow, pipeline stage, frame) — so a subsequent analysis warm
//     starts at the previous fixpoint instead of at the cold-start point
//     (the holistic operator is monotone, so warm iterates still converge
//     to the exact least fixpoint after additions);
//   - the network's resource→flows interference index, so a change to one
//     flow re-analyses only the flows whose pipelines transitively share a
//     resource with it (AnalyzeDelta), falling back to a full pass when
//     the affected set is the whole network.
//
// Results are published copy-on-read: the engine keeps one live slice of
// per-flow result headers, stamps each header with the generation that
// last wrote it, and AnalyzeView/AnalyzeDeltaView return O(1) immutable
// ResultViews sharing those headers (a write barrier preserves retained
// views — see view.go). Analyze/AnalyzeDelta remain as compatibility
// shims with the original detached-copy semantics; Refresh converges
// without publishing anything.
//
// Snapshots are O(1) tokens backed by undo journals: between Snapshot
// and Restore the arena records (slot, old value) for every jitter
// write, the header journal records every result-header mutation, and
// Restore replays both backwards — cost proportional to the writes since
// the snapshot, never to the total state. Snapshots survive RemoveFlow:
// a departure under an armed journal tombstones the departed flow's
// arena block in place (no compaction, so journaled offsets stay valid)
// and logs the removed spec, letting Restore re-insert the flow and
// re-link the block — the rollback-across-departure speculative batch
// admission needs.
//
// With Config.Workers > 1, large delta worklists run as Jacobi-style
// parallel rounds (every worked flow analysed concurrently against the
// previous round's jitters); small worklists keep the sequential
// Gauss-Seidel sweep. Both reach the same least fixpoint.
//
// Mutate the flow set only through AddFlow/RemoveFlow so the engine can
// track what changed; after any out-of-band change to the network or its
// flows, call Invalidate. An Engine is not safe for concurrent use.
type Engine struct {
	an *Analyzer

	js    *jitterState // last converged jitter assignment when valid
	flows []FlowResult // live per-flow result headers, aligned with network indices
	meta  []hdrMeta    // per-header generation stamp + cached verdict flags
	valid bool         // js and flows describe a fixpoint of the current flow set
	dirty map[int]bool // flows changed since the last converged analysis

	// gen is the header-write generation: bumped once per mutating entry
	// point, stamped onto every header written under it. Views order
	// themselves against header writes with it (view.go).
	gen uint64
	// unsched / errcnt count the headers that are currently not
	// schedulable / carry a stage error, so views answer Schedulable()
	// and the holistic-cap probe in O(1).
	unsched int
	errcnt  int
	// views are the live ResultViews, ascending by creation generation;
	// the write barrier saves overwritten headers into the suffix that
	// can still see them.
	views []*ResultView

	// hdrJournal is the header undo log armed by Snapshot, mirroring the
	// jitter journal: Restore replays it backwards instead of restoring a
	// header copy.
	hdrJournal   []hdrOp
	hdrJournalOn bool

	// scratch is the reusable buffer parallel rounds write their
	// per-flow results into before they are folded into flows through
	// the write barrier.
	scratch []FlowResult

	// wlMark/wlEpoch/wlNext are the worklist iteration's reusable
	// next-front scratch: wlMark[f] == wlEpoch marks flow f as already
	// on the next round's worklist, wlNext accumulates the front in
	// visit order (sorted into work afterwards). Epoch stamping makes
	// the reset O(1) per round instead of allocating a fresh set.
	wlMark  []int64
	wlEpoch int64
	wlNext  []int

	// lastIterations mirrors stats.Iterations for the pre-stats
	// Result.Iterations field; stats carries the full breakdown of the
	// last holistic analysis and noConv its abandonment record when
	// MaxHolisticIter ran out (see ConvergenceStats, ErrNoConvergence).
	lastIterations int
	stats          ConvergenceStats
	noConv         *ErrNoConvergence

	// accel is the reusable Anderson-acceleration state, allocated on
	// the first accelerated analysis (Config.Accel; see accel.go).
	accel *accelState

	// snapSeq increments on every Snapshot, Restore, Discard and
	// Invalidate: each snapshot truncates the undo journals, so only the
	// most recent snapshot is restorable, at most once.
	snapSeq uint64
	// snapLive reports whether the most recent snapshot is still
	// outstanding (neither restored, discarded, superseded nor
	// invalidated). While it is, RemoveFlow records departures in
	// removedLog so Restore can re-insert them.
	snapLive bool
	// removedLog holds the flows removed since the live snapshot, in
	// removal order; Restore replays it backwards through
	// Network.InsertFlowAt.
	removedLog []removedFlow
}

// removedFlow records one departure for rollback: the index the flow was
// removed from, its spec, and its cached per-rate demands.
type removedFlow struct {
	index  int
	fs     *network.FlowSpec
	demand []rateDemand
}

// minParallelWorklist is the smallest worklist worth a Jacobi round: below
// it the goroutine fan-out costs more than the sweep.
const minParallelWorklist = 8

// NewEngine validates the network once and returns an engine over it.
// Unlike the per-request core.NewAnalyzer path, later AddFlow calls
// validate only the incoming flow against the already-validated network.
func NewEngine(nw *network.Network, cfg Config) (*Engine, error) {
	an, err := NewAnalyzer(nw, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{an: an, dirty: make(map[int]bool)}, nil
}

// Network returns the underlying network.
func (e *Engine) Network() *network.Network { return e.an.nw }

// Invalidate discards all warm state; the next analysis runs cold. Call
// it after mutating the network or its flows outside AddFlow/RemoveFlow
// (e.g. reassigning priorities). Outstanding snapshots become
// unrestorable; outstanding views stay readable (their header storage is
// abandoned, not overwritten).
func (e *Engine) Invalidate() {
	e.bumpGen()
	e.js = nil
	e.flows = nil
	e.meta = nil
	e.unsched, e.errcnt = 0, 0
	e.valid = false
	e.dirty = make(map[int]bool)
	e.an.resetDemands()
	e.snapSeq++ // outstanding snapshots become stale
	e.snapLive = false
	e.removedLog = nil
	e.hdrJournal = nil
	e.hdrJournalOn = false
}

// AddFlow validates the flow against the topology, registers it and marks
// it for (re-)analysis. Only the incoming flow is validated; the rest of
// the network was validated at construction.
func (e *Engine) AddFlow(fs *network.FlowSpec) (int, error) {
	i, err := e.an.nw.AddFlow(fs)
	if err != nil {
		return 0, err
	}
	e.bumpGen()
	if e.valid {
		e.js.addFlow(i, fs, e.an.nw.FlowResources(i))
		e.appendHeader(FlowResult{Index: i, Name: fs.Flow.Name}, true)
	}
	e.dirty[i] = true
	return i, nil
}

// RemoveFlow removes the i-th flow (a departure). Flows above i shift
// down by one index, mirroring Network.RemoveFlow. The flows that shared
// resources with the departed one — transitively — are reset to the
// cold-start jitter assignment and re-analysed on the next Analyze; a
// descent from the stale fixpoint could otherwise stop at a non-least
// fixpoint and over-reject later admissions. A live snapshot survives
// the removal: the departure is logged (and the arena block tombstoned
// rather than compacted), so Restore can roll back across it.
func (e *Engine) RemoveFlow(i int) error {
	nw := e.an.nw
	if i < 0 || i >= nw.NumFlows() {
		return errIndex(i, nw.NumFlows())
	}
	e.bumpGen()
	if e.snapLive {
		rec := removedFlow{index: i, fs: nw.Flow(i)}
		if i < len(e.an.demands) {
			rec.demand = e.an.demands[i]
		}
		e.removedLog = append(e.removedLog, rec)
	}
	if !e.valid {
		nw.RemoveFlow(i)
		e.an.removeFlowDemand(i)
		e.dirty = make(map[int]bool) // indices shifted; cold pass re-covers all
		return nil
	}
	affected := e.affectedSet(map[int]bool{i: true})
	nw.RemoveFlow(i)
	e.an.removeFlowDemand(i)
	e.js.removeFlow(i)
	e.spliceHeader(i, true)
	shift := func(j int) int {
		if j > i {
			return j - 1
		}
		return j
	}
	dirty := make(map[int]bool, len(e.dirty)+len(affected))
	for j := range e.dirty {
		if j != i {
			dirty[shift(j)] = true
		}
	}
	for _, j := range affected {
		if j == i {
			continue
		}
		j = shift(j)
		e.js.coldReset(j, nw.Flow(j))
		dirty[j] = true
	}
	e.dirty = dirty
	return nil
}

// converge brings the engine's warm state up to date: with no pending
// changes it is a no-op, with pending changes it runs the delta
// worklist over them, and without warm state it runs a full cold pass.
// It reports whether the current assignment is a converged fixpoint.
func (e *Engine) converge() (bool, error) {
	if !e.valid {
		return e.convergeFull()
	}
	if len(e.dirty) == 0 {
		return true, nil
	}
	changed := make([]int, 0, len(e.dirty))
	for i := range e.dirty {
		changed = append(changed, i)
	}
	return e.convergeDelta(changed...)
}

// Analyze brings the engine's bounds up to date and returns them as a
// detached *Result: later engine calls do not mutate it. The detachment
// copies O(flows) headers per call — the compatibility path; hot callers
// should prefer AnalyzeView, whose copy-on-read views cost O(1) to
// create, or Refresh when the bounds need no reading at all.
func (e *Engine) Analyze() (*Result, error) {
	conv, err := e.converge()
	if err != nil {
		return nil, err
	}
	return e.result(conv), nil
}

// AnalyzeView brings the engine's bounds up to date and returns an
// immutable copy-on-read view of them. Creating the view is O(1): it
// shares the engine's live headers, and the engine copies a header into
// the view only at the moment a later mutation overwrites it, so a
// retained view costs O(headers actually rewritten), never O(flows).
// Call ResultView.Materialize for Analyze's detached *Result, or
// ResultView.Close to discard a view early.
func (e *Engine) AnalyzeView() (*ResultView, error) {
	conv, err := e.converge()
	if err != nil {
		return nil, err
	}
	return e.newView(conv), nil
}

// Refresh brings the engine's bounds up to date without publishing a
// result — the cheapest way to re-converge after a departure when the
// caller does not read the bounds.
func (e *Engine) Refresh() error {
	_, err := e.converge()
	return err
}

// AnalyzeDelta re-analyses only the flows whose pipelines transitively
// share a resource with the given changed flows, keeping every other
// flow's converged bounds, and returns them as a detached *Result (the
// compatibility path — see Analyze). AnalyzeDeltaView is the O(1)
// copy-on-read form.
func (e *Engine) AnalyzeDelta(changed ...int) (*Result, error) {
	conv, err := e.convergeDelta(changed...)
	if err != nil {
		return nil, err
	}
	return e.result(conv), nil
}

// AnalyzeDeltaView is AnalyzeDelta returning an immutable copy-on-read
// view instead of a detached copy; see AnalyzeView.
func (e *Engine) AnalyzeDeltaView(changed ...int) (*ResultView, error) {
	conv, err := e.convergeDelta(changed...)
	if err != nil {
		return nil, err
	}
	return e.newView(conv), nil
}

// convergeDelta converges the flows whose pipelines transitively share a
// resource with the given changed flows. It is decision- and
// bound-equivalent to a full cold analysis of the current network:
// unaffected flows' equations do not involve affected flows, and the
// affected subsystem is iterated monotonically to its least fixpoint.
// When the affected set is the whole network (or no warm state exists)
// it falls back to a full pass.
func (e *Engine) convergeDelta(changed ...int) (bool, error) {
	nw := e.an.nw
	n := nw.NumFlows()
	seed := make(map[int]bool, len(changed)+len(e.dirty))
	for _, i := range changed {
		if i < 0 || i >= n {
			return false, errIndex(i, n)
		}
		seed[i] = true
	}
	// Fold in every other pending change: a converged delta pass marks
	// the whole engine state valid, which is only sound if no dirty flow
	// is left un-analysed.
	for i := range e.dirty {
		seed[i] = true
	}
	if n == 0 {
		e.bumpGen()
		e.js = newJitterState(nw)
		e.replaceHeaders(nil, true)
		e.valid = true
		e.dirty = make(map[int]bool)
		e.lastIterations = 0
		e.stats = ConvergenceStats{}
		e.noConv = nil
		return true, nil
	}
	if !e.valid {
		return e.convergeFull()
	}
	// A changed flow alters the inputs of every flow sharing a directed
	// link with it (its demand now appears in their interference sums),
	// so those neighbours seed the worklist alongside the changed flows
	// themselves; the iteration then propagates only where jitters
	// actually move, never leaving the transitive interference closure —
	// and degenerating to a full (warm-started) pass when that closure is
	// the whole network.
	work := make([]int, 0, len(seed))
	for i := range seed {
		work = append(work, i)
	}
	grow := func(j int) { seed[j] = true }
	for _, i := range work {
		nw.VisitInterferers(i, grow)
	}
	work = work[:0]
	for i := range seed {
		work = append(work, i)
	}
	sort.Ints(work)
	return e.analyzeOver(work)
}

// convergeFull runs the holistic analysis cold over every flow,
// rebuilding all warm state.
func (e *Engine) convergeFull() (bool, error) {
	nw := e.an.nw
	e.bumpGen()
	e.js = newJitterState(nw)
	flows := make([]FlowResult, nw.NumFlows())
	for i := range flows {
		flows[i] = FlowResult{Index: i, Name: nw.Flow(i).Flow.Name}
	}
	e.replaceHeaders(flows, true)
	all := make([]int, nw.NumFlows())
	for i := range all {
		all[i] = i
	}
	return e.analyzeOver(all)
}

// analyzeOver runs a chaotic (worklist) iteration of the holistic
// operator: each round re-analyses the flows on the worklist, and the
// next round's worklist is the flows whose jitters changed plus every
// flow sharing a directed link with one of them — the only flows whose
// inputs moved. A flow whose interferers' jitters are all unchanged
// recomputes to its previous result, so skipping it is exact: the
// iteration converges to the same least fixpoint as a full Gauss-Seidel
// sweep, while touching only the actual propagation front.
//
// With Config.Workers > 1, rounds whose worklist reaches
// minParallelWorklist run Jacobi-style: every worked flow is analysed
// concurrently against the previous round's jitters and the private
// overlays are merged afterwards. Jacobi and Gauss-Seidel iterate the
// same monotone operator from the same point, so the least fixpoint — and
// therefore every bound and verdict — is identical; only the number of
// rounds may differ.
//
// Every header it rewrites goes through the engine's write barrier, so
// retained ResultViews keep their pre-analysis values and the cost per
// round is O(worked flows).
//
// With Config.Accel set, plain rounds additionally feed an Anderson
// history (accel.go): between sweeps the engine may write an
// extrapolated candidate into the jitter state under a speculative
// journal epoch and use the next sweep as its safeguard — an accepted
// sweep advanced the ascent from the candidate (one more Iteration, one
// AccelStep), a rejected one is rolled back slotwise and the plain
// ascent resumes where it was (a Fallback). The speculative round's
// worklist is the plain next worklist W extended with the bumped flows
// and their interferers, so after a rollback the very same worklist
// covers both the plain continuation and every header the rolled-back
// sweep rewrote. MaxHolisticIter caps the advancing sweeps
// (stats.Iterations), exactly the plain iteration count — so whenever
// the plain engine converges within the cap, the accelerated one does
// too; rolled-back verification sweeps are extra effort
// (stats.WorklistRounds), not extra cap pressure.
func (e *Engine) analyzeOver(work []int) (bool, error) {
	nw := e.an.nw
	e.bumpGen()
	workers := e.an.cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var acc *accelState
	if e.an.cfg.Accel {
		if e.accel == nil {
			e.accel = newAccelState(e.an.cfg.AccelDepth)
		}
		acc = e.accel
		acc.reset()
	}
	var (
		stats      ConvergenceStats
		prewarmed  bool
		spec       bool
		mark       specMark
		narrows    int
		cooldown   int
		decScratch []int32
		valScratch []units.Time
	)
	e.noConv = nil
	maxIter := e.an.cfg.MaxHolisticIter
	for stats.Iterations < maxIter {
		stats.WorklistRounds++
		if acc != nil {
			// The packed candidate layout must stay frozen while a
			// candidate is in flight: the verification sweep may pull
			// new flows into the worklist, and growing the active set
			// here would desynchronise z from the history it was built
			// against. Newcomers are folded in on the next plain round.
			if !spec {
				acc.ensureActive(e.js, work)
			}
			acc.observe(e.js)
		}
		e.js.resetChanged()
		errAt := e.sweepOnce(work, workers, &prewarmed)
		if spec {
			spec = false
			if errAt >= 0 || e.js.decreased {
				// The safeguard tripped: the extrapolated point
				// overshot the least fixpoint (a slot moved down under
				// F, or a stage blew up at the inflated jitters).
				// Undo the candidate and its verification sweep; work
				// still covers every header the sweep rewrote. A
				// decrease pinpoints the refuted slots, so narrow the
				// candidate to its surviving bumps and re-verify —
				// the bumped set strictly shrinks, so this terminates.
				// A stage blow-up names no slots; abandon wholesale
				// and hold off proposing for a few rounds so a burst
				// of hopeless candidates cannot double the sweep cost.
				stats.Fallbacks++
				decScratch = append(decScratch[:0], e.js.decOffs...)
				valScratch = valScratch[:0]
				for _, off := range decScratch {
					valScratch = append(valScratch, e.js.arena[off])
				}
				e.js.rollbackSpec(mark)
				if errAt < 0 && narrows < accelMaxNarrow {
					narrows++
					mark = e.js.beginSpec()
					if acc.narrowCandidate(e.js, decScratch, valScratch) {
						spec = true
						continue
					}
					e.js.acceptSpec(mark)
				}
				cooldown = narrows + 2
				narrows = 0
				continue
			}
			e.js.acceptSpec(mark)
			stats.AccelSteps++
			narrows = 0
		}
		stats.Iterations++
		if errAt >= 0 {
			// An overloaded or diverging stage dooms the whole
			// configuration; warm state is no longer a fixpoint.
			e.valid = false
			e.finishStats(stats)
			return false, nil
		}
		if acc != nil {
			acc.record(e.js)
		}
		if len(e.js.changedList) == 0 {
			e.valid = true
			e.dirty = make(map[int]bool)
			e.finishStats(stats)
			return true, nil
		}
		front := e.nextFrontStart(nw.NumFlows())
		for _, f := range e.js.changedList {
			front(f)
			nw.VisitInterferers(f, front)
		}
		if cooldown > 0 {
			cooldown--
		} else if acc != nil && stats.Iterations < maxIter && acc.ready() {
			mark = e.js.beginSpec()
			e.js.resetChanged()
			if acc.propose(e.js) {
				spec = true
				for _, f := range e.js.changedList {
					front(f)
					nw.VisitInterferers(f, front)
				}
			} else {
				e.js.acceptSpec(mark)
			}
		}
		work = append(work[:0], e.wlNext...)
		sort.Ints(work)
	}
	e.valid = false
	e.noConv = &ErrNoConvergence{
		Iterations: maxIter,
		Residual:   e.js.maxDelta,
		Pending:    len(e.js.changedList),
	}
	e.finishStats(stats)
	return false, nil
}

// sweepOnce runs one worklist round — Jacobi-parallel when the worklist
// is large enough, Gauss-Seidel otherwise — writing every result header
// through the barrier. It returns the index of the first flow whose
// pass failed (overload or divergence), or -1. On failure the parallel
// branch has published every header but merged no overlay; both callers
// cope (plain rounds mark the engine invalid, speculative rounds roll
// the epoch back).
func (e *Engine) sweepOnce(work []int, workers int, prewarmed *bool) int {
	if workers > 1 && len(work) >= minParallelWorklist {
		if !*prewarmed {
			e.an.prewarmDemands()
			*prewarmed = true
		}
		if cap(e.scratch) < len(e.flows) {
			e.scratch = make([]FlowResult, len(e.flows))
		}
		scratch := e.scratch[:len(e.flows)]
		overlays := e.an.parallelRound(e.js, work, workers, scratch)
		for _, i := range work {
			e.setHeader(i, scratch[i], true)
		}
		for _, i := range work {
			if e.flows[i].Err != nil {
				return i
			}
		}
		for _, ov := range overlays {
			ov.mergeInto(e.js)
		}
		return -1
	}
	for _, i := range work {
		fr := e.an.flowPass(i, e.js)
		e.setHeader(i, fr, true)
		if fr.Err != nil {
			return i
		}
	}
	return -1
}

// nextFrontStart begins a new next-worklist round — an O(1) epoch bump
// over the reusable membership scratch instead of a fresh set per round
// — and returns the add function: add(f) appends f to e.wlNext exactly
// once per round. The same function value feeds VisitInterferers, so a
// round allocates one closure instead of a map.
func (e *Engine) nextFrontStart(n int) func(int) {
	if len(e.wlMark) < n {
		e.wlMark = make([]int64, n)
		e.wlEpoch = 0
	}
	e.wlEpoch++
	e.wlNext = e.wlNext[:0]
	return func(f int) {
		if e.wlMark[f] != e.wlEpoch {
			e.wlMark[f] = e.wlEpoch
			e.wlNext = append(e.wlNext, f)
		}
	}
}

// finishStats publishes the analysis's convergence stats, keeping the
// legacy lastIterations mirror in sync.
func (e *Engine) finishStats(s ConvergenceStats) {
	e.stats = s
	e.lastIterations = s.Iterations
}

// result assembles a detached Result from the live per-flow headers —
// the O(flows) copy the view path exists to avoid.
func (e *Engine) result(converged bool) *Result {
	out := &Result{
		Flows:         make([]FlowResult, len(e.flows)),
		Iterations:    e.lastIterations,
		Converged:     converged,
		Stats:         e.stats,
		NoConvergence: e.noConv,
	}
	copy(out.Flows, e.flows)
	return out
}

// affectedSet returns the transitive closure of the seed flows under the
// "shares a directed link" relation, sorted ascending. Interference in
// every pipeline stage — first hop, in(N) ingress, prioritised egress —
// travels only between flows on a common directed link, so this closure
// is exactly the set of flows whose bounds can change. Cost is
// O(closure), not O(flows): membership lives in a closure-sized map and
// the result is collected during the walk, so a departure in a large
// network touches only its own interference neighbourhood.
func (e *Engine) affectedSet(seed map[int]bool) []int {
	nw := e.an.nw
	visited := make(map[int]bool, 2*len(seed))
	queue := make([]int, 0, len(seed))
	out := make([]int, 0, len(seed))
	for i := range seed {
		if !visited[i] {
			visited[i] = true
			queue = append(queue, i)
			out = append(out, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		fs := nw.Flow(i)
		for h := 0; h < len(fs.Route)-1; h++ {
			for _, j := range nw.FlowsOn(fs.Route[h], fs.Route[h+1]) {
				if !visited[j] {
					visited[j] = true
					queue = append(queue, j)
					out = append(out, j)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Snapshot captures the engine's state for a later Restore as a cheap
// token: no jitter values and no result headers are copied. Taking it
// arms both undo journals — every subsequent jitter write and header
// mutation records its old value. The admission controller snapshots
// before every tentative admission and rolls back on rejection instead
// of re-analysing.
type Snapshot struct {
	jsRef *jitterState
	mark  jitterMark
	seq   uint64

	dirty          []int
	valid          bool
	lastIterations int
	stats          ConvergenceStats
	noConv         *ErrNoConvergence
	numFlows       int
}

// Snapshot captures the current engine state for a later Restore. Each
// call starts a fresh undo epoch: only the most recent snapshot can be
// restored, at most once (snapshot-once semantics). The snapshot spans
// AddFlow, RemoveFlow and analyses alike; only Invalidate kills it. Call
// Discard when the snapshot is known dead (the tentative change
// committed) to stop journaling and reclaim tombstoned arena blocks.
func (e *Engine) Snapshot() *Snapshot {
	e.snapSeq++
	e.snapLive = true
	e.removedLog = nil
	s := &Snapshot{
		seq:            e.snapSeq,
		valid:          e.valid,
		lastIterations: e.lastIterations,
		stats:          e.stats,
		noConv:         e.noConv,
		numFlows:       e.an.nw.NumFlows(),
		dirty:          make([]int, 0, len(e.dirty)),
	}
	for i := range e.dirty {
		s.dirty = append(s.dirty, i)
	}
	if e.js != nil {
		s.jsRef = e.js
		s.mark = e.js.beginJournal()
	}
	e.hdrJournal = e.hdrJournal[:0]
	e.hdrJournalOn = true
	return s
}

// Discard releases a snapshot without restoring it: the undo journals
// are disarmed, their memory reclaimed and arena blocks tombstoned by
// departures since the snapshot are compacted. Discarding a superseded
// or already consumed snapshot is a no-op. Commit paths should call it —
// otherwise the journals stay armed and grow with every write until the
// next Snapshot or Invalidate.
func (e *Engine) Discard(s *Snapshot) {
	if s == nil || s.seq != e.snapSeq {
		return
	}
	e.snapSeq++
	e.snapLive = false
	e.removedLog = nil
	e.hdrJournal = e.hdrJournal[:0]
	e.hdrJournalOn = false
	if s.jsRef != nil {
		s.jsRef.endJournal()
	}
	if e.js != nil && e.js != s.jsRef {
		// The jitter state was rebuilt (a cold pass) while the snapshot
		// was live; reclaim any tombstones the rebuilt state accumulated.
		e.js.endJournal()
	}
}

// Restore rolls the engine and its network back to the snapshot: flows
// added since it are popped, flows removed since it are re-inserted at
// their original indices (reverse removal order, via the engine's
// removal log and the jitter state's tombstone journal), and journaled
// jitter writes and header mutations are undone in reverse — O(changes
// since the snapshot), not O(total state). Views taken between Snapshot
// and Restore survive: the replay runs through the write barrier, so a
// retained view keeps showing the pre-restore analysis. Restoring a
// stale snapshot (a newer one was taken, it was discarded or already
// restored, or Invalidate ran) returns an error.
func (e *Engine) Restore(s *Snapshot) error {
	if s.seq != e.snapSeq {
		return fmt.Errorf("core: stale snapshot: only the most recent snapshot can be restored, once")
	}
	e.snapSeq++ // consume: a second restore of s is refused
	e.snapLive = false
	e.bumpGen()
	nw := e.an.nw
	// Re-insert departures in reverse removal order: afterwards every
	// flow alive at the snapshot is back at its original index and every
	// post-snapshot addition sits at the tail, so popping down to the
	// snapshot count restores the exact flow list.
	for r := len(e.removedLog) - 1; r >= 0; r-- {
		rec := e.removedLog[r]
		if err := nw.InsertFlowAt(rec.index, rec.fs); err != nil {
			return fmt.Errorf("core: restore could not re-insert removed flow %q: %w", rec.fs.Flow.Name, err)
		}
		e.an.insertDemandAt(rec.index, rec.demand)
	}
	e.removedLog = nil
	if nw.NumFlows() < s.numFlows {
		return fmt.Errorf("core: corrupt removal log (%d flows after replay, %d at snapshot)", nw.NumFlows(), s.numFlows)
	}
	for nw.NumFlows() > s.numFlows {
		nw.RemoveLastFlow()
	}
	if len(e.an.demands) > s.numFlows {
		e.an.demands = e.an.demands[:s.numFlows]
	}
	if s.jsRef != nil {
		s.jsRef.undoTo(s.mark)
	}
	e.js = s.jsRef
	e.undoHeaders()
	e.valid = s.valid
	e.lastIterations = s.lastIterations
	e.stats = s.stats
	e.noConv = s.noConv
	e.dirty = make(map[int]bool, len(s.dirty))
	for _, i := range s.dirty {
		e.dirty[i] = true
	}
	return nil
}
