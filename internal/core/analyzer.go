package core

import (
	"fmt"
	"sort"

	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// Analyzer computes response-time bounds for all flows of a network. It is
// not safe for concurrent use; create one per goroutine. Its caches are
// keyed by flow index, so an Analyzer must not outlive a change to the
// network's flow set made behind its back (Network.RemoveFlow shifts
// indices): build a fresh Analyzer per flow set, or use Engine, which
// keeps the caches aligned across its own AddFlow/RemoveFlow.
type Analyzer struct {
	nw  *network.Network
	cfg Config

	// demands caches each flow's per-link-rate demand, indexed by flow.
	// A flow meets at most a handful of distinct link rates, so the inner
	// entry is a tiny linear-scanned slice — no hashing on the hot path.
	// The index alignment is maintained by the engine across removals;
	// one-shot analyzers are built fresh per flow set.
	demands [][]rateDemand

	// demScratch/extScratch are reusable buffers for the per-stage hoists
	// of interferer demands and entry jitters (see stages.go); hepScratch
	// backs the per-egress hep set the same way.
	demScratch []*gmf.Demand
	extScratch []units.Time
	hepScratch []int
}

type rateDemand struct {
	rate units.BitRate
	d    *gmf.Demand
}

// NewAnalyzer returns an analyzer over the given network. The network must
// already validate; NewAnalyzer re-checks and returns any error. The
// analyzer is bound to the network's current flow indices; rebuild it
// after adding or removing flows directly on the network.
func NewAnalyzer(nw *network.Network, cfg Config) (*Analyzer, error) {
	if nw == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{
		nw:      nw,
		cfg:     cfg.withDefaults(),
		demands: make([][]rateDemand, nw.NumFlows()),
	}, nil
}

// demand returns the (cached) per-link demand of flow j at the given rate.
func (a *Analyzer) demand(j int, rate units.BitRate) *gmf.Demand {
	for len(a.demands) <= j {
		a.demands = append(a.demands, nil)
	}
	for _, rd := range a.demands[j] {
		if rd.rate == rate {
			return rd.d
		}
	}
	fs := a.nw.Flow(j)
	d, err := ether.DemandFor(fs.Flow, rate, fs.RTP)
	if err != nil {
		// The network validated every flow, so packetisation cannot fail;
		// reaching this is a programming error.
		panic(fmt.Sprintf("core: demand for validated flow %q: %v", fs.Flow.Name, err))
	}
	a.demands[j] = append(a.demands[j], rateDemand{rate, d})
	return d
}

// removeFlowDemand drops flow i's demand cache entry and shifts higher
// flow indices down by one, mirroring Network.RemoveFlow.
func (a *Analyzer) removeFlowDemand(i int) {
	if i >= 0 && i < len(a.demands) {
		a.demands = append(a.demands[:i], a.demands[i+1:]...)
	}
}

// insertDemandAt is the inverse of removeFlowDemand: it re-links flow
// i's cached demands when Engine.Restore resurrects a departure,
// shifting higher indices up by one. The cache may legitimately be
// shorter than the flow count (entries are filled lazily); missing slots
// are padded so the insert lands at the right index.
func (a *Analyzer) insertDemandAt(i int, entry []rateDemand) {
	for len(a.demands) < i {
		a.demands = append(a.demands, nil)
	}
	a.demands = append(a.demands, nil)
	copy(a.demands[i+1:], a.demands[i:])
	a.demands[i] = entry
}

// resetDemands discards the whole cache; Engine.Invalidate uses it after
// out-of-band flow-set changes that may have shifted indices.
func (a *Analyzer) resetDemands() {
	a.demands = make([][]rateDemand, a.nw.NumFlows())
}

// jitterState stores GJ_j^{k,resource} for every flow, resource and frame:
// the generalized jitter with which frame k of flow j enters each stage of
// its pipeline. It powers the extra_j(N,i) terms of the analysis and the
// holistic iteration of Section 3.5.
//
// The state is a single flat arena of picosecond values. Flow j's slots
// form one contiguous block: stage s (position in the flow's pipeline,
// route order) frame k lives at blocks[j].base + s*n_j + k. Stages address
// their own flow by position and interfering flows by the network's dense
// ResourceID, resolved with a short linear scan of the interferer's
// pipeline — no map hashing anywhere on the analysis hot path.
//
// Alongside the arena it maintains:
//
//   - a per-(flow, stage) cache of max-over-frames entry jitter (the
//     extra_j term), kept incrementally valid under writes;
//   - the changed-flow worklist driving the engine's delta iteration;
//   - an optional undo journal of (offset, old value) pairs, which makes
//     engine snapshots O(1) and restores O(writes since the snapshot)
//     instead of a deep copy of the whole assignment.
//
// Lazy-compaction invariant (restore-across-removal). While the journal
// is armed, removeFlow does NOT compact the arena: the departed flow's
// block is unlinked from blocks but its slots stay in place as a
// tombstone, recorded in structJournal (for resurrection by undoTo) and
// in tombs (for later reclamation). Because nothing moves, every
// absolute (off, eidx) pair in the write journal — and every live
// block's base — remains valid across any number of removals, which is
// what lets one snapshot span departures. Tombstones exist only while a
// journal is armed: endJournal (snapshot discarded) and beginJournal (a
// new snapshot supersedes the old one) compact them away and re-base the
// surviving blocks, and undoTo re-links them instead. With no journal
// armed, removeFlow compacts eagerly as before (removeFlowReindex).
type jitterState struct {
	blocks []flowBlock
	arena  []units.Time

	// extraMax[e] caches max over frames of one (flow, stage) block;
	// extraValid[e] says whether the cache reflects the arena.
	extraMax   []units.Time
	extraValid []bool

	changed bool
	// changedMark/changedList record which flows' jitters changed since
	// the last resetChanged; the incremental engine's worklist iteration
	// uses them to re-analyse only the flows whose inputs actually moved.
	changedMark []bool
	changedList []int

	// decreased / maxDelta instrument the writes since the last
	// resetChanged: whether any slot moved down, and the largest upward
	// move. Plain Kleene sweeps only ascend, so a decrease during the
	// verification sweep of an accelerated candidate means the
	// extrapolation overshot the least fixpoint — the safeguard's
	// rollback trigger (see accel.go). maxDelta is the residual
	// ErrNoConvergence reports at cap exhaustion.
	decreased bool
	maxDelta  units.Time

	// trackDec / decOffs additionally record WHICH arena slots moved
	// down during a speculative verification sweep, so the accelerator
	// can narrow an overshot candidate to its surviving bumps instead
	// of discarding it wholesale. Armed only inside a spec epoch.
	trackDec bool
	decOffs  []int32

	// journal records (slot, old value) for every write since the last
	// beginJournal, newest last; undoTo replays it backwards.
	journal   []undoEntry
	journalOn bool

	// structJournal records the flows tombstoned since beginJournal, in
	// removal order; undoTo re-inserts them backwards. tombs lists the
	// same blocks' dead arena extents for compaction once the journal is
	// resolved (see the lazy-compaction invariant above).
	structJournal []structUndo
	tombs         []flowBlock
}

// structUndo records one tombstoned flow: the index it was removed from
// and its (still allocated) block, so undoTo can re-link it in place.
type structUndo struct {
	index int
	block flowBlock
}

// flowBlock locates one flow's slots inside the arena.
type flowBlock struct {
	base  int32 // arena offset of stage 0, frame 0
	ebase int32 // extraMax/extraValid offset of stage 0
	n     int32 // frames per stage
	rids  []network.ResourceID
}

type undoEntry struct {
	off  int32
	eidx int32
	old  units.Time
}

// jitterMark freezes the arena extents at snapshot time so undoTo can pop
// flows added afterwards.
type jitterMark struct {
	arenaLen, eLen, numFlows int
}

// newJitterState initialises the holistic starting point: every flow's
// jitter at its first resource is its source jitter GJ_j^k; the jitter at
// every downstream resource starts at zero.
func newJitterState(nw *network.Network) *jitterState {
	js := &jitterState{}
	for j, fs := range nw.Flows() {
		js.addFlow(j, fs, nw.FlowResources(j))
	}
	return js
}

// flowResources lists the pipeline resources of a flow in route order:
// first link, then (ingress, egress link) per intermediate switch. The
// order matches Network.FlowResources, which interns the same pipeline as
// dense ids.
func flowResources(fs *network.FlowSpec) []Resource {
	route := fs.Route
	out := []Resource{{Kind: KindLink, Node: route[0], To: route[1]}}
	for h := 1; h < len(route)-1; h++ {
		out = append(out,
			Resource{Kind: KindIngress, Node: route[h], To: route[h-1]},
			Resource{Kind: KindLink, Node: route[h], To: route[h+1]},
		)
	}
	return out
}

// addFlow appends cold-start slots for flow j: the source jitter at the
// first resource, zero everywhere downstream — exactly the entries
// newJitterState creates. rids is the flow's interned pipeline.
func (js *jitterState) addFlow(j int, fs *network.FlowSpec, rids []network.ResourceID) {
	if j != len(js.blocks) {
		panic(fmt.Sprintf("core: jitter addFlow out of order: flow %d with %d blocks", j, len(js.blocks)))
	}
	n := fs.Flow.N()
	b := flowBlock{
		base:  int32(len(js.arena)),
		ebase: int32(len(js.extraMax)),
		n:     int32(n),
		rids:  rids,
	}
	js.blocks = append(js.blocks, b)
	js.arena = append(js.arena, make([]units.Time, len(rids)*n)...)
	js.extraMax = append(js.extraMax, make([]units.Time, len(rids))...)
	js.extraValid = append(js.extraValid, make([]bool, len(rids))...)
	js.changedMark = append(js.changedMark, false)
	var m units.Time
	for k := 0; k < n; k++ {
		v := fs.Flow.Frames[k].Jitter
		js.arena[int(b.base)+k] = v
		if v > m {
			m = v
		}
	}
	// All caches start valid: stage 0 holds the max source jitter, the
	// zeroed downstream stages hold zero.
	for s := range rids {
		js.extraValid[int(b.ebase)+s] = true
	}
	if len(rids) > 0 {
		js.extraMax[b.ebase] = m
	}
}

// numFlows returns the number of flows with slots in the arena.
func (js *jitterState) numFlows() int { return len(js.blocks) }

// set records the entry jitter of frame k at stage pos of flow j's
// pipeline, journaling the old value when a snapshot is outstanding and
// tracking whether anything changed since the last resetChanged.
func (js *jitterState) set(j, pos, k int, v units.Time) {
	b := &js.blocks[j]
	if pos < 0 || pos >= len(b.rids) || k < 0 || int32(k) >= b.n {
		panic(fmt.Sprintf("core: jitter set out of range: flow %d stage %d frame %d", j, pos, k))
	}
	off := b.base + int32(pos)*b.n + int32(k)
	old := js.arena[off]
	if old == v {
		return
	}
	eidx := b.ebase + int32(pos)
	if js.journalOn {
		js.journal = append(js.journal, undoEntry{off: off, eidx: eidx, old: old})
	}
	js.arena[off] = v
	js.changed = true
	if v < old {
		js.decreased = true
		if js.trackDec {
			js.decOffs = append(js.decOffs, off)
		}
	} else if d := v - old; d > js.maxDelta {
		js.maxDelta = d
	}
	if !js.changedMark[j] {
		js.changedMark[j] = true
		js.changedList = append(js.changedList, j)
	}
	if js.extraValid[eidx] {
		switch {
		case v >= js.extraMax[eidx]:
			js.extraMax[eidx] = v
		case old == js.extraMax[eidx]:
			js.extraValid[eidx] = false
		}
	}
}

// get returns the entry jitter of frame k at stage pos of flow j.
func (js *jitterState) get(j, pos, k int) units.Time {
	b := &js.blocks[j]
	return js.arena[b.base+int32(pos)*b.n+int32(k)]
}

// extraAt returns extra_j at stage pos of flow j's own pipeline: the
// largest entry jitter over the flow's frames, the quantity added to
// interference windows. It refreshes the cache when a write invalidated it.
func (js *jitterState) extraAt(j, pos int) units.Time {
	b := &js.blocks[j]
	eidx := b.ebase + int32(pos)
	if !js.extraValid[eidx] {
		var m units.Time
		base := b.base + int32(pos)*b.n
		for _, v := range js.arena[base : base+b.n] {
			if v > m {
				m = v
			}
		}
		js.extraMax[eidx] = m
		js.extraValid[eidx] = true
	}
	return js.extraMax[eidx]
}

// extraOf returns extra_j of flow j at the resource with the given dense
// id, or zero when the flow's pipeline does not cross it. Interference
// sums use it for foreign flows; the pipeline scan is a handful of int32
// compares.
func (js *jitterState) extraOf(j int, rid network.ResourceID) units.Time {
	if j < 0 || j >= len(js.blocks) {
		return 0
	}
	for pos, r := range js.blocks[j].rids {
		if r == rid {
			return js.extraAt(j, pos)
		}
	}
	return 0
}

// validateExtras refreshes every invalidated extra cache. Parallel rounds
// call it before fan-out so that concurrent extraOf reads of foreign
// flows are strictly read-only.
func (js *jitterState) validateExtras() {
	for j := range js.blocks {
		b := &js.blocks[j]
		for pos := range b.rids {
			if !js.extraValid[b.ebase+int32(pos)] {
				js.extraAt(j, pos)
			}
		}
	}
}

func (js *jitterState) resetChanged() {
	js.changed = false
	js.decreased = false
	js.maxDelta = 0
	for _, j := range js.changedList {
		js.changedMark[j] = false
	}
	js.changedList = js.changedList[:0]
}

// specMark bounds one speculative write epoch: the journal length at
// beginSpec plus whether the journal was armed privately for it.
type specMark struct {
	jlen  int
	owned bool
}

// beginSpec opens a speculative write epoch for the accelerated
// iteration: every subsequent write is journaled so rollbackSpec can
// undo exactly the speculation. When an engine snapshot already has the
// journal armed, the speculation shares it (the suffix since jlen is
// the speculation); otherwise the journal is armed privately and
// acceptSpec/rollbackSpec disarm it again. Structural changes
// (add/remove flow) must not happen inside a spec epoch.
func (js *jitterState) beginSpec() specMark {
	m := specMark{jlen: len(js.journal), owned: !js.journalOn}
	js.journalOn = true
	js.trackDec = true
	js.decOffs = js.decOffs[:0]
	return m
}

// rollbackSpec undoes every write since beginSpec — the journal suffix
// is replayed backwards (restoring slots and invalidating the touched
// extra caches) and truncated. Cost O(writes since the mark). The
// changed tracking is NOT rewound; callers re-sweep the touched flows,
// which restores the headers and re-derives the worklist.
func (js *jitterState) rollbackSpec(m specMark) {
	for i := len(js.journal) - 1; i >= m.jlen; i-- {
		e := js.journal[i]
		js.arena[e.off] = e.old
		js.extraValid[e.eidx] = false
	}
	js.journal = js.journal[:m.jlen]
	if m.owned {
		js.journalOn = false
	}
	js.trackDec = false
}

// acceptSpec commits the speculative writes: with a privately armed
// journal the suffix is dropped and journaling disarmed; under an
// outer snapshot the entries stay — they are real writes the snapshot
// must be able to undo.
func (js *jitterState) acceptSpec(m specMark) {
	if m.owned {
		js.journal = js.journal[:m.jlen]
		js.journalOn = false
	}
	js.trackDec = false
}

// coldReset restores flow j's slots to the cold-start assignment. The
// incremental engine applies it to every flow affected by a departure, so
// that the subsequent delta iteration ascends to the least fixpoint from
// below instead of descending from the stale (now too large) one. With a
// journal armed the overwritten values are recorded like any other write,
// so a snapshot restore spanning the departure rolls them back too.
func (js *jitterState) coldReset(j int, fs *network.FlowSpec) {
	b := &js.blocks[j]
	n := int(b.n)
	cold := func(s, k int) units.Time {
		if s == 0 {
			return fs.Flow.Frames[k].Jitter
		}
		return 0
	}
	for s := range b.rids {
		base := int(b.base) + s*n
		var m units.Time
		for k := 0; k < n; k++ {
			v := cold(s, k)
			if old := js.arena[base+k]; old != v {
				if js.journalOn {
					js.journal = append(js.journal, undoEntry{
						off: int32(base + k), eidx: b.ebase + int32(s), old: old,
					})
				}
				js.arena[base+k] = v
			}
			if v > m {
				m = v
			}
		}
		js.extraMax[int(b.ebase)+s] = m
		js.extraValid[int(b.ebase)+s] = true
	}
}

// removeFlow drops flow i's slots, mirroring Network.RemoveFlow's index
// compaction. With no journal armed it compacts the arena eagerly
// (removeFlowReindex); with an armed journal it tombstones the block
// instead — nothing moves, so the snapshot's journaled offsets and the
// surviving blocks' bases stay valid and a later undoTo can roll back
// across the departure (see the lazy-compaction invariant on
// jitterState).
func (js *jitterState) removeFlow(i int) {
	if js.journalOn {
		js.tombstoneFlow(i)
		return
	}
	js.removeFlowReindex(i)
}

// removeFlowReindex is the eager path: it drops flow i's slots, compacts
// the arena and shifts every tracking structure — including the
// changed-flow worklist, which the pre-arena implementation left
// unshifted, leaking stale indices into the next delta worklist — down by
// one. Only legal with no journal armed: compaction moves slots out from
// under journaled offsets.
func (js *jitterState) removeFlowReindex(i int) {
	b := js.blocks[i]
	stages := int32(len(b.rids))
	slots := stages * b.n
	copy(js.arena[b.base:], js.arena[b.base+slots:])
	js.arena = js.arena[:int32(len(js.arena))-slots]
	copy(js.extraMax[b.ebase:], js.extraMax[b.ebase+stages:])
	js.extraMax = js.extraMax[:int32(len(js.extraMax))-stages]
	copy(js.extraValid[b.ebase:], js.extraValid[b.ebase+stages:])
	js.extraValid = js.extraValid[:int32(len(js.extraValid))-stages]
	js.blocks = append(js.blocks[:i], js.blocks[i+1:]...)
	for j := i; j < len(js.blocks); j++ {
		js.blocks[j].base -= slots
		js.blocks[j].ebase -= stages
	}
	js.shiftChangedDown(i)
	js.journal = js.journal[:0]
	js.journalOn = false
}

// tombstoneFlow is the journaled path of removeFlow: flow i's block is
// unlinked from the index structures but its arena slots stay allocated
// in place, recorded in structJournal for resurrection and in tombs for
// compaction once the journal is resolved.
func (js *jitterState) tombstoneFlow(i int) {
	b := js.blocks[i]
	js.structJournal = append(js.structJournal, structUndo{index: i, block: b})
	js.tombs = append(js.tombs, b)
	js.blocks = append(js.blocks[:i], js.blocks[i+1:]...)
	js.shiftChangedDown(i)
}

// shiftChangedDown rewrites the changed-flow worklist after flow i left:
// entry i is dropped and higher indices shift down by one, keeping
// changedMark aligned with blocks.
func (js *jitterState) shiftChangedDown(i int) {
	list := js.changedList[:0]
	for _, j := range js.changedList {
		switch {
		case j == i:
		case j > i:
			list = append(list, j-1)
		default:
			list = append(list, j)
		}
	}
	js.changedList = list
	js.changedMark = js.changedMark[:len(js.blocks)]
	for j := range js.changedMark {
		js.changedMark[j] = false
	}
	for _, j := range js.changedList {
		js.changedMark[j] = true
	}
}

// compactTombs reclaims the tombstoned extents left by journaled
// removals: live arena content slides down over the dead blocks and the
// surviving blocks' bases are rebased. Must only run with no journal
// armed — it is called from endJournal and beginJournal, the two places
// where an outstanding snapshot dies.
func (js *jitterState) compactTombs() {
	if len(js.tombs) == 0 {
		return
	}
	sort.Slice(js.tombs, func(a, b int) bool { return js.tombs[a].base < js.tombs[b].base })
	// Slide the live segments between consecutive tombstones leftward.
	dst := js.tombs[0].base
	edst := js.tombs[0].ebase
	for t := 0; t < len(js.tombs); t++ {
		b := js.tombs[t]
		stages := int32(len(b.rids))
		src := b.base + stages*b.n
		esrc := b.ebase + stages
		end := int32(len(js.arena))
		eend := int32(len(js.extraMax))
		if t+1 < len(js.tombs) {
			end = js.tombs[t+1].base
			eend = js.tombs[t+1].ebase
		}
		copy(js.arena[dst:], js.arena[src:end])
		dst += end - src
		copy(js.extraMax[edst:], js.extraMax[esrc:eend])
		copy(js.extraValid[edst:], js.extraValid[esrc:eend])
		edst += eend - esrc
	}
	js.arena = js.arena[:dst]
	js.extraMax = js.extraMax[:edst]
	js.extraValid = js.extraValid[:edst]
	for j := range js.blocks {
		var slots, stages int32
		for _, tb := range js.tombs {
			if tb.base < js.blocks[j].base {
				slots += int32(len(tb.rids)) * tb.n
				stages += int32(len(tb.rids))
			}
		}
		js.blocks[j].base -= slots
		js.blocks[j].ebase -= stages
	}
	js.tombs = js.tombs[:0]
}

// beginJournal starts a fresh undo epoch: the journal is truncated (any
// older snapshot becomes unrestorable), tombstones left by that
// superseded snapshot's removals are compacted away, and subsequent
// writes record their old values. It returns the mark undoTo needs to
// also pop flows added after the snapshot.
func (js *jitterState) beginJournal() jitterMark {
	js.journal = js.journal[:0]
	js.journalOn = false
	js.structJournal = js.structJournal[:0]
	js.compactTombs()
	js.journalOn = true
	return jitterMark{
		arenaLen: len(js.arena),
		eLen:     len(js.extraMax),
		numFlows: len(js.blocks),
	}
}

// endJournal disarms journaling, drops the recorded history and compacts
// any tombstoned blocks; the engine calls it when the outstanding
// snapshot is discarded, so a long snapshot-free write stream does not
// keep accumulating undo entries or dead arena extents.
func (js *jitterState) endJournal() {
	js.journal = js.journal[:0]
	js.journalOn = false
	js.structJournal = js.structJournal[:0]
	js.compactTombs()
}

// undoTo rolls the state back to the mark: journaled writes are replayed
// backwards, tombstoned blocks are re-linked at their recorded indices in
// reverse removal order (their slots never moved, so the block records
// are still exact), and flows added after the mark are popped. After the
// re-insertions every flow alive at the snapshot sits at its original
// index and every post-snapshot addition at the tail, so the final
// truncation to the mark restores the snapshot layout bit-identically.
// Cost is proportional to the writes and removals since beginJournal,
// plus a changed-mark wipe, not to the arena size.
func (js *jitterState) undoTo(m jitterMark) {
	for i := len(js.journal) - 1; i >= 0; i-- {
		e := js.journal[i]
		js.arena[e.off] = e.old
		js.extraValid[e.eidx] = false
	}
	js.journal = js.journal[:0]
	js.journalOn = false
	for i := len(js.structJournal) - 1; i >= 0; i-- {
		u := js.structJournal[i]
		js.blocks = append(js.blocks, flowBlock{})
		copy(js.blocks[u.index+1:], js.blocks[u.index:])
		js.blocks[u.index] = u.block
	}
	js.structJournal = js.structJournal[:0]
	js.tombs = js.tombs[:0]
	js.arena = js.arena[:m.arenaLen]
	js.extraMax = js.extraMax[:m.eLen]
	js.extraValid = js.extraValid[:m.eLen]
	js.blocks = js.blocks[:m.numFlows]
	if cap(js.changedMark) < m.numFlows {
		js.changedMark = make([]bool, m.numFlows)
	}
	js.changedMark = js.changedMark[:m.numFlows]
	for j := range js.changedMark {
		js.changedMark[j] = false
	}
	js.changedList = js.changedList[:0]
	js.changed = false
}

// clone deep-copies the state (journal excluded). The undo-log restore
// path replaced it in the engine; it remains the oracle for differential
// tests asserting that undo rollback is bit-identical to a deep copy.
func (js *jitterState) clone() *jitterState {
	out := &jitterState{
		blocks:      make([]flowBlock, len(js.blocks)),
		arena:       append([]units.Time(nil), js.arena...),
		extraMax:    append([]units.Time(nil), js.extraMax...),
		extraValid:  append([]bool(nil), js.extraValid...),
		changed:     js.changed,
		changedMark: append([]bool(nil), js.changedMark...),
		changedList: append([]int(nil), js.changedList...),
	}
	copy(out.blocks, js.blocks)
	return out
}

// equalAssignment reports whether two states hold bit-identical jitter
// assignments (arena contents and layout).
func (js *jitterState) equalAssignment(other *jitterState) bool {
	if len(js.arena) != len(other.arena) || len(js.blocks) != len(other.blocks) {
		return false
	}
	for i := range js.arena {
		if js.arena[i] != other.arena[i] {
			return false
		}
	}
	for i := range js.blocks {
		if js.blocks[i].base != other.blocks[i].base || js.blocks[i].n != other.blocks[i].n {
			return false
		}
	}
	return true
}
