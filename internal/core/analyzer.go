package core

import (
	"fmt"

	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// Analyzer computes response-time bounds for all flows of a network. It is
// not safe for concurrent use; create one per goroutine.
type Analyzer struct {
	nw  *network.Network
	cfg Config

	demands map[demandKey]*gmf.Demand
}

type demandKey struct {
	flow *gmf.Flow
	rate units.BitRate
	rtp  bool
}

// NewAnalyzer returns an analyzer over the given network. The network must
// already validate; NewAnalyzer re-checks and returns any error.
func NewAnalyzer(nw *network.Network, cfg Config) (*Analyzer, error) {
	if nw == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{
		nw:      nw,
		cfg:     cfg.withDefaults(),
		demands: make(map[demandKey]*gmf.Demand),
	}, nil
}

// demand returns the (cached) per-link demand of flow j at the given rate.
func (a *Analyzer) demand(j int, rate units.BitRate) *gmf.Demand {
	fs := a.nw.Flow(j)
	key := demandKey{fs.Flow, rate, fs.RTP}
	if d, ok := a.demands[key]; ok {
		return d
	}
	d, err := ether.DemandFor(fs.Flow, rate, fs.RTP)
	if err != nil {
		// The network validated every flow, so packetisation cannot fail;
		// reaching this is a programming error.
		panic(fmt.Sprintf("core: demand for validated flow %q: %v", fs.Flow.Name, err))
	}
	a.demands[key] = d
	return d
}

// jitterState stores GJ_j^{k,resource} for every flow, resource and frame:
// the generalized jitter with which frame k of flow j enters each stage of
// its pipeline. It powers the extra_j(N,i) terms of the analysis and the
// holistic iteration of Section 3.5.
type jitterState struct {
	perFrame map[jitterKey][]units.Time // one entry per frame of the flow
	changed  bool
	// changedFlows records which flows' jitters changed since the last
	// resetChanged; the incremental engine's worklist iteration uses it to
	// re-analyse only the flows whose inputs actually moved.
	changedFlows map[int]bool
}

type jitterKey struct {
	flow int
	res  Resource
}

// newJitterState initialises the holistic starting point: every flow's
// jitter at its first resource is its source jitter GJ_j^k; the jitter at
// every downstream resource starts at zero.
func newJitterState(nw *network.Network) *jitterState {
	js := &jitterState{
		perFrame:     make(map[jitterKey][]units.Time),
		changedFlows: make(map[int]bool),
	}
	for j, fs := range nw.Flows() {
		n := fs.Flow.N()
		for _, res := range flowResources(fs) {
			js.perFrame[jitterKey{j, res}] = make([]units.Time, n)
		}
		first := Resource{Kind: KindLink, Node: fs.Route[0], To: fs.Route[1]}
		slot := js.perFrame[jitterKey{j, first}]
		for k := 0; k < n; k++ {
			slot[k] = fs.Flow.Frames[k].Jitter
		}
	}
	return js
}

// flowResources lists the pipeline resources of a flow in route order:
// first link, then (ingress, egress link) per intermediate switch.
func flowResources(fs *network.FlowSpec) []Resource {
	route := fs.Route
	out := []Resource{{Kind: KindLink, Node: route[0], To: route[1]}}
	for h := 1; h < len(route)-1; h++ {
		out = append(out,
			Resource{Kind: KindIngress, Node: route[h], To: route[h-1]},
			Resource{Kind: KindLink, Node: route[h], To: route[h+1]},
		)
	}
	return out
}

// set records the entry jitter of frame k of flow j at a resource and
// tracks whether anything changed since the last resetChanged.
func (js *jitterState) set(j int, res Resource, k int, v units.Time) {
	slot, ok := js.perFrame[jitterKey{j, res}]
	if !ok {
		panic(fmt.Sprintf("core: jitter set for unknown resource %v of flow %d", res, j))
	}
	if slot[k] != v {
		slot[k] = v
		js.changed = true
		if js.changedFlows != nil {
			js.changedFlows[j] = true
		}
	}
}

// get returns the entry jitter of frame k of flow j at a resource.
func (js *jitterState) get(j int, res Resource, k int) units.Time {
	slot, ok := js.perFrame[jitterKey{j, res}]
	if !ok {
		return 0
	}
	return slot[k]
}

// extra returns extra_j at a resource: the largest entry jitter over the
// flow's frames, the quantity added to interference windows.
func (js *jitterState) extra(j int, res Resource) units.Time {
	slot, ok := js.perFrame[jitterKey{j, res}]
	if !ok {
		return 0
	}
	var m units.Time
	for _, v := range slot {
		if v > m {
			m = v
		}
	}
	return m
}

func (js *jitterState) resetChanged() {
	js.changed = false
	for j := range js.changedFlows {
		delete(js.changedFlows, j)
	}
}

// addFlow registers cold-start slots for a newly added flow j: the source
// jitter at the first resource, zero everywhere downstream — exactly the
// entries newJitterState would have created.
func (js *jitterState) addFlow(j int, fs *network.FlowSpec) {
	n := fs.Flow.N()
	for _, res := range flowResources(fs) {
		js.perFrame[jitterKey{j, res}] = make([]units.Time, n)
	}
	first := Resource{Kind: KindLink, Node: fs.Route[0], To: fs.Route[1]}
	slot := js.perFrame[jitterKey{j, first}]
	for k := 0; k < n; k++ {
		slot[k] = fs.Flow.Frames[k].Jitter
	}
}

// coldReset restores flow j's slots to the cold-start assignment. The
// incremental engine applies it to every flow affected by a departure, so
// that the subsequent delta iteration ascends to the least fixpoint from
// below instead of descending from the stale (now too large) one.
func (js *jitterState) coldReset(j int, fs *network.FlowSpec) {
	for _, res := range flowResources(fs) {
		slot := js.perFrame[jitterKey{j, res}]
		for k := range slot {
			slot[k] = 0
		}
	}
	first := Resource{Kind: KindLink, Node: fs.Route[0], To: fs.Route[1]}
	slot := js.perFrame[jitterKey{j, first}]
	for k := range slot {
		slot[k] = fs.Flow.Frames[k].Jitter
	}
}

// removeFlowReindex drops flow i's slots and shifts the keys of every flow
// above i down by one, mirroring Network.RemoveFlow's index compaction.
func (js *jitterState) removeFlowReindex(i int) {
	next := make(map[jitterKey][]units.Time, len(js.perFrame))
	for key, slot := range js.perFrame {
		switch {
		case key.flow == i:
			// dropped
		case key.flow > i:
			key.flow--
			next[key] = slot
		default:
			next[key] = slot
		}
	}
	js.perFrame = next
}

// clone deep-copies the state; engine snapshots use it for rollback.
func (js *jitterState) clone() *jitterState {
	out := &jitterState{
		perFrame:     make(map[jitterKey][]units.Time, len(js.perFrame)),
		changed:      js.changed,
		changedFlows: make(map[int]bool),
	}
	for key, slot := range js.perFrame {
		cp := make([]units.Time, len(slot))
		copy(cp, slot)
		out.perFrame[key] = cp
	}
	return out
}
