// Package core implements the paper's schedulability analysis: upper
// bounds on the end-to-end response time of generalized multiframe flows
// crossing a multihop network of software-implemented Ethernet switches.
//
// The analysis decomposes a flow's route into a pipeline of resources
// (Figure 6):
//
//   - the first hop, where any work-conserving queuing discipline may be
//     used by the source host (Section 3.2, eqs. 14-20);
//   - the ingress stage in(N) of every switch, where a per-input-interface
//     task serviced once every CIRC(N) moves Ethernet frames into priority
//     queues (Section 3.3, eqs. 21-27);
//   - the egress stage of every switch, a static-priority non-preemptive
//     output queue whose dequeuing task is also stride-scheduled
//     (Section 3.4, eqs. 28-35).
//
// Each stage's response time becomes additional generalized jitter for the
// next stage, and Analyze iterates the whole network to the holistic
// fixpoint of Section 3.5, yielding a schedulability verdict usable as an
// admission test.
//
// Three execution vehicles share those equations:
//
//   - Analyzer is the one-shot reference: a full cold fixpoint per call;
//   - Engine is the persistent online form: warm-started delta worklists
//     over an arena-backed jitter state with O(1) undo-journal snapshots
//     (Snapshot/Restore/Discard) that survive departures;
//   - ShardedEngine partitions the arena by interference closure, one
//     Engine per closure, with warm shard fusion and re-splitting.
//
// All three compute identical bounds — the repo's differential and fuzz
// tests pin that. The state layout and its invariants (arena blocks,
// undo journal, tombstones, snapshot-once semantics, closure lifecycle)
// are documented in docs/ARCHITECTURE.md and on jitterState in
// analyzer.go.
package core

import (
	"fmt"
	"runtime"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// Mode selects between the formulas exactly as printed in the paper and
// the reconstruction this package argues is sound (see DESIGN.md F3-F5).
type Mode int

const (
	// ModeSound charges every Ethernet fragment of the analysed frame a
	// full CIRC(N) service slot at the ingress stage, and charges the
	// analysed flow's own stride delays at the egress stage. It is the
	// default because the simulator never violates its bounds.
	ModeSound Mode = iota
	// ModePaper follows the printed equations: the ingress completion
	// term is a single CIRC(N) (eq. 25) and the egress stage charges
	// stride delays only for interfering flows (eq. 31).
	ModePaper
)

// String returns "sound" or "paper".
func (m Mode) String() string {
	switch m {
	case ModeSound:
		return "sound"
	case ModePaper:
		return "paper"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config tunes the analysis.
type Config struct {
	// Mode selects the formula variant; the zero value is ModeSound.
	Mode Mode
	// MaxBusy caps every busy-period and backlog fixpoint; exceeding it
	// is reported as divergence. Zero selects 10 s.
	MaxBusy units.Time
	// MaxFixpointIter caps the iterations of each inner fixpoint. Zero
	// selects 1 << 20.
	MaxFixpointIter int
	// MaxHolisticIter caps the outer holistic jitter iteration of
	// Section 3.5. Zero selects 256.
	MaxHolisticIter int
	// Workers is the one parallelism knob of the analysis layer. It
	// bounds every fan-out that Config reaches: the size of the shard
	// scheduler's worker pool, the per-shard fan-out of AnalyzeAll and
	// the sharded batch groups (all via PoolWorkers), and the engine's
	// parallel delta worklist — when > 1, delta iterations whose
	// worklist is large enough run as Jacobi-style rounds across that
	// many goroutines instead of the sequential Gauss-Seidel sweep;
	// both reach the same least fixpoint. Zero or one keeps the
	// engine iteration sequential; negative selects GOMAXPROCS.
	//
	// The two levels do not stack: a ShardedEngine hands each shard a
	// sequential engine (shard-level concurrency already uses the
	// budget), so delta-worklist parallelism applies to monolithic
	// engines only and shard and worklist fan-out never oversubscribe
	// each other.
	Workers int
	// Accel enables Anderson-accelerated convergence of the engine's
	// holistic iteration: between plain sweeps the engine extrapolates
	// the jitter assignment from its residual history and adjudicates
	// the candidate with one safeguarded verification sweep, falling
	// back to plain Kleene iteration whenever the candidate misbehaves
	// (see accel.go). The converged assignment — and therefore every
	// bound and admission verdict — is bit-identical to the
	// unaccelerated least fixpoint; only iteration counts change.
	// ShardedEngine and the scheduler pass the knob to every per-shard
	// engine. The one-shot Analyzer ignores it (it is the cold
	// reference the accelerated engine is differentially tested
	// against).
	Accel bool
	// AccelDepth is the Anderson history window m: how many previous
	// (iterate, residual) pairs the extrapolation mixes. Zero selects 4.
	// Meaningful only with Accel set.
	AccelDepth int
}

// PoolWorkers resolves Workers to a worker-pool size for shard-level
// fan-out (the scheduler's pool, AnalyzeAll, sharded batch groups):
// a positive value is taken literally, zero and negative select
// GOMAXPROCS. Contrast the engine-internal worklist, where zero means
// sequential — shard-level concurrency is on by default, worklist
// parallelism is opt-in.
func (c Config) PoolWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) withDefaults() Config {
	if c.MaxBusy == 0 {
		c.MaxBusy = 10 * units.Second
	}
	if c.MaxFixpointIter == 0 {
		c.MaxFixpointIter = 1 << 20
	}
	if c.MaxHolisticIter == 0 {
		c.MaxHolisticIter = 256
	}
	if c.AccelDepth == 0 {
		c.AccelDepth = 8
	}
	return c
}

// ConvergenceStats reports how the last holistic iteration converged.
// The engine fills it on every analysis; with acceleration off,
// WorklistRounds == Iterations and the accel counters are zero.
type ConvergenceStats struct {
	// Iterations counts the sweeps that advanced the monotone ascent —
	// the plain Kleene iterations plus the accepted accelerated steps.
	// It equals Result.Iterations.
	Iterations int
	// WorklistRounds counts every worklist round executed, including
	// verification sweeps of accelerated candidates that were rolled
	// back — the total effort spent, bounded by Config.MaxHolisticIter.
	WorklistRounds int
	// AccelSteps counts accelerated candidates whose verification sweep
	// accepted them (the sweep is itself one of the Iterations).
	AccelSteps int
	// Fallbacks counts accelerated candidates the safeguard rejected
	// and rolled back to the plain iterate.
	Fallbacks int
}

// Add accumulates other into s; admission loops use it to aggregate
// per-decision stats.
func (s *ConvergenceStats) Add(other ConvergenceStats) {
	s.Iterations += other.Iterations
	s.WorklistRounds += other.WorklistRounds
	s.AccelSteps += other.AccelSteps
	s.Fallbacks += other.Fallbacks
}

// ErrNoConvergence reports that the holistic iteration exhausted
// Config.MaxHolisticIter with the jitter assignment still moving: the
// analysis gave up, it did not converge in exactly the cap. It is
// carried on Result.NoConvergence / ResultView.NoConvergence() — not
// returned from Analyze — because cap exhaustion is a verdict
// (unschedulable as far as we know), not a structural failure: the
// batched admission path relies on distinguishing it from stage errors
// (see Controller.RequestBatch).
type ErrNoConvergence struct {
	// Iterations is the cap that was exhausted.
	Iterations int
	// Residual is the largest jitter increase observed in the final
	// sweep — how far the assignment was still moving when abandoned.
	Residual units.Time
	// Pending is the number of flows whose jitters changed in the final
	// sweep.
	Pending int
}

func (e *ErrNoConvergence) Error() string {
	return fmt.Sprintf("core: holistic iteration abandoned after %d iterations (residual %v, %d flows still moving)",
		e.Iterations, e.Residual, e.Pending)
}

// ResourceKind distinguishes the two resource types of the pipeline.
type ResourceKind int

const (
	// KindLink is an output queue plus wire: either the first hop's
	// work-conserving queue or a switch's prioritised egress.
	KindLink ResourceKind = iota
	// KindIngress is the in(N) stage: the software path from an input
	// card's FIFO to the right priority queue.
	KindIngress
)

// Resource identifies one stage of a flow's pipeline.
type Resource struct {
	Kind ResourceKind
	// Node is the transmitting node for KindLink and the switch for
	// KindIngress.
	Node network.NodeID
	// To is the receiving node for KindLink and the predecessor node
	// (identifying the input interface) for KindIngress.
	To network.NodeID
}

// String renders the resource in the paper's notation, e.g. "link(4,6)" or
// "in(6)<-4".
func (r Resource) String() string {
	if r.Kind == KindIngress {
		return fmt.Sprintf("in(%s)<-%s", r.Node, r.To)
	}
	return fmt.Sprintf("link(%s,%s)", r.Node, r.To)
}

// OverloadError reports that eq. (20)/(35)-style utilisation tests failed:
// the long-run demand on a resource reaches or exceeds its capacity, so no
// response-time bound exists.
type OverloadError struct {
	Resource    Resource
	Utilization float64
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("core: resource %v overloaded (utilisation %.3f >= 1)", e.Resource, e.Utilization)
}

// DivergenceError reports that a busy-period or backlog iteration exceeded
// Config.MaxBusy or Config.MaxFixpointIter without converging.
type DivergenceError struct {
	Resource Resource
	Flow     string
	Frame    int
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("core: fixpoint for flow %q frame %d on %v diverged", e.Flow, e.Frame, e.Resource)
}

// StageResult is the response-time bound of one pipeline stage for one
// frame.
type StageResult struct {
	// Resource identifies the stage.
	Resource Resource
	// Response is R_i^k at this stage: from being queued at the stage to
	// leaving it (including propagation for link stages).
	Response units.Time
	// EntryJitter is GJ_i^k at this stage: the accumulated jitter with
	// which the frame's fragments arrive.
	EntryJitter units.Time
}

// FrameResult is the end-to-end bound for one frame of a flow.
type FrameResult struct {
	// Response is R_i^k: the end-to-end response-time bound, including
	// the source's generalized jitter (Figure 6, line 3).
	Response units.Time
	// Deadline is D_i^k.
	Deadline units.Time
	// Stages holds the per-resource decomposition in route order.
	Stages []StageResult
}

// Meets reports whether the bound is within the deadline.
func (fr *FrameResult) Meets() bool { return fr.Response <= fr.Deadline }

// FlowResult aggregates the per-frame bounds of one flow.
type FlowResult struct {
	// Index is the flow's index in the network's flow list.
	Index int
	// Name is the flow's name.
	Name string
	// Err is non-nil when a stage analysis failed (overload or
	// divergence); Frames is then incomplete.
	Err error
	// Frames holds one result per GMF frame.
	Frames []FrameResult
}

// Schedulable reports whether every frame's bound meets its deadline.
func (fr *FlowResult) Schedulable() bool {
	if fr.Err != nil {
		return false
	}
	for i := range fr.Frames {
		if !fr.Frames[i].Meets() {
			return false
		}
	}
	return true
}

// MaxResponse returns the largest per-frame bound, or zero when Err is set.
func (fr *FlowResult) MaxResponse() units.Time {
	var m units.Time
	for i := range fr.Frames {
		if fr.Frames[i].Response > m {
			m = fr.Frames[i].Response
		}
	}
	return m
}

// Result is the outcome of the holistic analysis.
type Result struct {
	// Flows holds one result per flow, in network order.
	Flows []FlowResult
	// Iterations is the number of holistic passes executed.
	Iterations int
	// Converged reports whether the jitter assignment reached a fixpoint
	// within Config.MaxHolisticIter.
	Converged bool
	// Stats breaks the convergence down (worklist rounds, accelerated
	// steps, safeguard fallbacks). Stats.Iterations == Iterations.
	Stats ConvergenceStats
	// NoConvergence is non-nil when the analysis exhausted
	// Config.MaxHolisticIter without reaching a fixpoint; it carries
	// the residual the iteration was abandoned at. Converged is then
	// false and the usual verdict logic applies — the typed error just
	// distinguishes "gave up" from "converged and unschedulable".
	NoConvergence *ErrNoConvergence
}

// Schedulable reports the admission verdict: the analysis converged and
// every frame of every flow meets its deadline.
func (r *Result) Schedulable() bool {
	if !r.Converged {
		return false
	}
	for i := range r.Flows {
		if !r.Flows[i].Schedulable() {
			return false
		}
	}
	return true
}

// Flow returns the result for the flow with the given index. The index
// must be in [0, len(r.Flows)); a violation panics with a descriptive
// message (it is a programming error, exactly like indexing Flows
// directly). Callers handling untrusted indices — CLIs cross-indexing a
// result against another flow list — should use FlowByIndex instead.
func (r *Result) Flow(i int) *FlowResult {
	if i < 0 || i >= len(r.Flows) {
		panic(fmt.Sprintf("core: Result.Flow(%d) out of range: result covers %d flows", i, len(r.Flows)))
	}
	return &r.Flows[i]
}

// FlowByIndex returns the result for the flow with the given index, or a
// descriptive error when the index is out of range.
func (r *Result) FlowByIndex(i int) (*FlowResult, error) {
	if i < 0 || i >= len(r.Flows) {
		return nil, errIndex(i, len(r.Flows))
	}
	return &r.Flows[i], nil
}
