package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/network"
)

// sameAssignment compares two jitter states semantically: same flow
// count, same per-flow pipeline shape, and bit-identical slot values read
// through the block index. Unlike equalAssignment it is insensitive to
// arena layout, so it stays a valid oracle when tombstone compaction has
// re-based blocks between the clone and the comparison.
func sameAssignment(a, b *jitterState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.numFlows() != b.numFlows() {
		return false
	}
	for j := range a.blocks {
		ba, bb := &a.blocks[j], &b.blocks[j]
		if ba.n != bb.n || len(ba.rids) != len(bb.rids) {
			return false
		}
		for pos := range ba.rids {
			if ba.rids[pos] != bb.rids[pos] {
				return false
			}
			for k := 0; k < int(ba.n); k++ {
				if a.get(j, pos, k) != b.get(j, pos, k) {
					return false
				}
			}
		}
	}
	return true
}

// flowNames lists the network's flow names in index order.
func flowNames(nw *network.Network) []string {
	out := make([]string, nw.NumFlows())
	for i := range out {
		out[i] = nw.Flow(i).Flow.Name
	}
	return out
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzSnapshotRestore drives random interleavings of AddFlow, RemoveFlow,
// Analyze, Snapshot, Restore and Discard through the engine and checks
// every Restore against a deep-clone oracle taken at Snapshot time: the
// jitter assignment must round-trip bit-identically and the network's
// flow list must be exactly the snapshot's. This exercises the
// block-move (tombstone) journal: removals between Snapshot and Restore
// are the interesting interleavings, previously refused outright.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add([]byte{0, 1, 3, 0, 2, 1, 4})             // snapshot, add, remove, restore
	f.Add([]byte{0, 0, 2, 3, 1, 1, 2, 4, 2})       // two removals inside the window
	f.Add([]byte{3, 0, 5, 3, 1, 4, 0, 2})          // discard, re-snapshot, remove, restore
	f.Add([]byte{0, 3, 1, 3, 0, 4})                // superseding snapshot after a removal
	f.Add([]byte{0, 0, 0, 3, 2, 1, 0, 1, 2, 4, 2}) // churn with analyses mixed in
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64] // keep each case cheap
		}
		topo, hosts := fuzzTopo(t)
		eng, err := NewEngine(network.New(topo), Config{})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(len(data))))
		var (
			snap        *Snapshot
			oracle      *jitterState
			oracleNames []string
			nextFlow    int
		)
		for pc, b := range data {
			switch b % 6 {
			case 0: // add
				fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("f%d", nextFlow))
				nextFlow++
				if _, err := eng.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
			case 1: // remove
				if n := eng.Network().NumFlows(); n > 0 {
					if err := eng.RemoveFlow(int(b/6) % n); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // analyze
				if _, err := eng.Analyze(); err != nil {
					t.Fatal(err)
				}
			case 3: // snapshot (supersedes any outstanding one)
				if eng.js != nil {
					oracle = eng.js.clone()
				} else {
					oracle = nil
				}
				oracleNames = flowNames(eng.Network())
				snap = eng.Snapshot()
			case 4: // restore
				if snap == nil {
					continue
				}
				if err := eng.Restore(snap); err != nil {
					t.Fatalf("op %d: restore: %v", pc, err)
				}
				if !sameNames(flowNames(eng.Network()), oracleNames) {
					t.Fatalf("op %d: flow list after restore = %v, want %v",
						pc, flowNames(eng.Network()), oracleNames)
				}
				if !sameAssignment(eng.js, oracle) {
					t.Fatalf("op %d: jitter assignment differs from deep-clone oracle", pc)
				}
				snap, oracle, oracleNames = nil, nil, nil
			case 5: // discard
				eng.Discard(snap)
				snap, oracle, oracleNames = nil, nil, nil
			}
		}
		// The engine must still agree with a cold analysis at the end.
		res, err := eng.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		ref := network.New(topo)
		for _, fs := range eng.Network().Flows() {
			if _, err := ref.AddFlow(fs); err != nil {
				t.Fatal(err)
			}
		}
		an, err := NewAnalyzer(ref, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := an.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, res, cold)
	})
}

// fuzzTopo is a fixed two-switch topology for the fuzz target: small
// enough that each case is fast, rich enough that flows interfere across
// the backbone.
func fuzzTopo(t *testing.T) (*network.Topology, []network.NodeID) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	return randomEngineTopo(t, r)
}

// TestSnapshotRestoreAcrossRemovals is the deterministic slice of the
// fuzz property that runs on every plain `go test`: bursts of tentative
// admissions AND departures inside one snapshot window must roll back
// bit-identically to the deep-clone oracle, and the restored engine must
// keep matching a cold analysis.
func TestSnapshotRestoreAcrossRemovals(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts := randomEngineTopo(t, r)
			eng, err := NewEngine(network.New(topo), Config{})
			if err != nil {
				t.Fatal(err)
			}
			var live []*network.FlowSpec
			for op := 0; op < 6; op++ {
				fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("base%d-%d", seed, op))
				if _, err := eng.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
				live = append(live, fs)
			}
			if _, err := eng.Analyze(); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 8; round++ {
				oracle := eng.js.clone()
				names := flowNames(eng.Network())
				snap := eng.Snapshot()
				for op := 0; op < 2+r.Intn(4); op++ {
					if eng.Network().NumFlows() > 0 && r.Intn(2) == 0 {
						if err := eng.RemoveFlow(r.Intn(eng.Network().NumFlows())); err != nil {
							t.Fatal(err)
						}
					} else {
						fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("tent%d-%d-%d", seed, round, op))
						if _, err := eng.AddFlow(fs); err != nil {
							t.Fatal(err)
						}
					}
					if r.Intn(2) == 0 {
						if _, err := eng.Analyze(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := eng.Restore(snap); err != nil {
					t.Fatalf("round %d: restore across removals: %v", round, err)
				}
				if !sameNames(flowNames(eng.Network()), names) {
					t.Fatalf("round %d: flow list %v, want %v", round, flowNames(eng.Network()), names)
				}
				if !sameAssignment(eng.js, oracle) {
					t.Fatalf("round %d: rollback differs from deep-copy clone", round)
				}
				res, err := eng.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				ref := network.New(topo)
				for _, fs := range live {
					if _, err := ref.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
				}
				an, err := NewAnalyzer(ref, Config{})
				if err != nil {
					t.Fatal(err)
				}
				cold, err := an.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, res, cold)
			}
		})
	}
}
