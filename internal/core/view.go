package core

import (
	"fmt"
	"sort"
)

// This file implements the engine's copy-on-read result path.
//
// The old result path assembled a detached *Result on every Analyze by
// copying O(flows) FlowResult headers — at 1024+ resident flows the
// dominant per-request cost of admission control. The replacement keeps
// one live header slice inside the engine, stamps every header with the
// generation that last wrote it, and hands callers immutable ResultViews
// that *share* the live headers:
//
//   - creating a view is O(1): it captures the slice, the current
//     generation, and the precomputed schedulability counters;
//   - the engine runs a write barrier before every header it overwrites:
//     the old value is saved into the private overlay of exactly the
//     views that can still see it (views created since the header's last
//     write — a generation-sorted suffix of the live-view list), so a
//     retained view stays byte-stable while the engine moves on, at cost
//     O(headers actually overwritten), never O(flows);
//   - Materialize is the escape hatch back to today's detached *Result
//     semantics, and releases the view's pin.
//
// Invariant (header visibility). For every live view v and header slot i
// that v can address (same backing array, i < len(v.flows)):
// v.overlay[i] exists iff slot i was overwritten after v was created.
// The barrier maintains it: a write to slot i saves the old value into
// every live view with v.gen >= meta[i].gen before the slot changes, and
// restamps meta[i].gen with the current generation. Reads then need no
// generation check at all: overlay hit → saved value, miss → live slot.
//
// Structural changes (append, pop, whole-slice replacement) ride the
// same machinery: a splice is per-slot barriered writes plus a pop, a
// cold pass replaces the backing array wholesale (old array freezes, so
// views on it are immutably detached for free — identity is the array
// pointer, compared via arrID), and an in-place append into a slot an
// older, longer view still addresses is barriered explicitly.

// hdrMeta is the engine-side bookkeeping for one FlowResult header.
type hdrMeta struct {
	// gen is the engine generation that last wrote the header.
	gen uint64
	// sched / err cache FlowResult.Schedulable() and Err != nil so the
	// engine can maintain whole-network counters per write and views can
	// answer Schedulable() in O(1).
	sched bool
	err   bool
}

// hdrOp is one entry of the header undo journal (armed by Snapshot,
// replayed backwards by Restore). The journal replaces the snapshot's
// old O(flows) header copy: rollback costs O(headers written since the
// snapshot).
type hdrOp struct {
	kind    uint8
	i       int
	old     FlowResult
	oldMeta hdrMeta
	// opReplace payload: the abandoned slices are retained by reference
	// (they are never mutated after the replacement), not copied.
	oldFlows   []FlowResult
	oldAll     []hdrMeta
	oldUnsched int
	oldErr     int
}

const (
	opWrite   uint8 = iota // flows[i] was old
	opAppend               // flows grew by one at i; undo truncates
	opPop                  // flows[i] (the tail) was popped; undo re-appends old
	opReplace              // the whole slice was swapped; undo restores the refs
)

// arrID identifies a header slice's backing array: the address of its
// first allocated element. Two slices alias iff their arrIDs are equal;
// the engine compares a view's captured id against the live one to
// decide whether the view still shares engine storage. Views keep their
// slice alive, so an id is never reused while a view that captured it
// exists.
func arrID(s []FlowResult) *FlowResult {
	if cap(s) == 0 {
		return nil
	}
	return &s[:1][0]
}

// hdrFlags computes the cached per-header flags.
func hdrFlags(fr *FlowResult) (sched, hasErr bool) {
	return fr.Schedulable(), fr.Err != nil
}

// bumpGen starts a new header generation; every public mutating entry
// point calls it once, so a view's generation totally orders it against
// the header writes before and after it.
func (e *Engine) bumpGen() { e.gen++ }

// saveHeaderForViews runs the write barrier for slot i: the slot's
// current value is copied into every live view created at or after the
// slot's last write. Views older than that already hold their copy (the
// visibility invariant), so the generation-sorted live-view list is
// scanned only from the matching suffix — in steady state the handful of
// views minted since the slot last changed.
func (e *Engine) saveHeaderForViews(i int) {
	if len(e.views) == 0 {
		return
	}
	g := e.meta[i].gen
	id := arrID(e.flows)
	lo := sort.Search(len(e.views), func(k int) bool { return e.views[k].gen >= g })
	for _, v := range e.views[lo:] {
		v.save(i, id)
	}
}

// setHeader overwrites header slot i through the barrier, journaling the
// old value when a snapshot is armed and maintaining the schedulability
// counters. journal is false only during Restore's replay.
func (e *Engine) setHeader(i int, fr FlowResult, journal bool) {
	e.saveHeaderForViews(i)
	m := e.meta[i]
	if journal && e.hdrJournalOn {
		e.hdrJournal = append(e.hdrJournal, hdrOp{kind: opWrite, i: i, old: e.flows[i], oldMeta: m})
	}
	sched, hasErr := hdrFlags(&fr)
	if m.sched != sched {
		if sched {
			e.unsched--
		} else {
			e.unsched++
		}
	}
	if m.err != hasErr {
		if hasErr {
			e.errcnt++
		} else {
			e.errcnt--
		}
	}
	e.flows[i] = fr
	e.meta[i] = hdrMeta{gen: e.gen, sched: sched, err: hasErr}
}

// appendHeader grows the header slice by one. No barrier is needed: a
// reallocating append freezes the old array (views on it are immutably
// detached), and an in-place append reuses a slot that popHeader already
// saved into every view that could still see it.
func (e *Engine) appendHeader(fr FlowResult, journal bool) {
	s := len(e.flows)
	if journal && e.hdrJournalOn {
		e.hdrJournal = append(e.hdrJournal, hdrOp{kind: opAppend, i: s})
	}
	sched, hasErr := hdrFlags(&fr)
	if !sched {
		e.unsched++
	}
	if hasErr {
		e.errcnt++
	}
	e.flows = append(e.flows, fr)
	e.meta = append(e.meta, hdrMeta{gen: e.gen, sched: sched, err: hasErr})
}

// popHeader drops the tail header, first saving it into the views that
// still address the slot — a later in-place append may overwrite it, so
// this is the last moment the shared value is trustworthy for them.
func (e *Engine) popHeader(journal bool) {
	s := len(e.flows) - 1
	e.saveHeaderForViews(s)
	m := e.meta[s]
	if journal && e.hdrJournalOn {
		e.hdrJournal = append(e.hdrJournal, hdrOp{kind: opPop, i: s, old: e.flows[s], oldMeta: m})
	}
	if !m.sched {
		e.unsched--
	}
	if m.err {
		e.errcnt--
	}
	e.flows = e.flows[:s]
	e.meta = e.meta[:s]
}

// spliceHeader removes header slot i, shifting the tail down with
// barriered per-slot writes (each shifted header's Index is rewritten in
// the same stroke) and popping the duplicate tail. Removing the last
// flow — the admission cycle's steady-state departure — costs one pop.
func (e *Engine) spliceHeader(i int, journal bool) {
	n := len(e.flows)
	for j := i; j < n-1; j++ {
		fr := e.flows[j+1]
		fr.Index = j
		e.setHeader(j, fr, journal)
	}
	e.popHeader(journal)
}

// replaceHeaders swaps in a freshly built header slice (a cold pass, or
// the empty-network degenerate case). The old slices are abandoned, not
// mutated, so views on them are detached and byte-stable for free; under
// an armed journal the refs are retained for O(1) rollback.
func (e *Engine) replaceHeaders(flows []FlowResult, journal bool) {
	if journal && e.hdrJournalOn {
		e.hdrJournal = append(e.hdrJournal, hdrOp{
			kind: opReplace, oldFlows: e.flows, oldAll: e.meta,
			oldUnsched: e.unsched, oldErr: e.errcnt,
		})
	}
	e.flows = flows
	e.meta = make([]hdrMeta, len(flows))
	e.unsched, e.errcnt = 0, 0
	for i := range flows {
		sched, hasErr := hdrFlags(&flows[i])
		e.meta[i] = hdrMeta{gen: e.gen, sched: sched, err: hasErr}
		if !sched {
			e.unsched++
		}
		if hasErr {
			e.errcnt++
		}
	}
}

// undoHeaders replays the header journal backwards, restoring the header
// slice bit-identically to its state at the last Snapshot. Live views
// are barriered through every undo write, so a view taken between
// Snapshot and Restore keeps showing the pre-restore analysis.
func (e *Engine) undoHeaders() {
	e.hdrJournalOn = false
	for k := len(e.hdrJournal) - 1; k >= 0; k-- {
		op := &e.hdrJournal[k]
		switch op.kind {
		case opWrite:
			e.setHeader(op.i, op.old, false)
		case opAppend:
			e.popHeader(false)
		case opPop:
			e.appendHeader(op.old, false)
		case opReplace:
			// The current slices were built after the snapshot and are
			// abandoned here; views on them stay frozen.
			e.flows = op.oldFlows
			e.meta = op.oldAll
			e.unsched = op.oldUnsched
			e.errcnt = op.oldErr
		}
	}
	e.hdrJournal = e.hdrJournal[:0]
}

// newView mints a live view of the current headers and pins it on the
// engine. O(1): nothing is copied until the engine overwrites a header
// the view can see.
func (e *Engine) newView(converged bool) *ResultView {
	v := &ResultView{
		eng:        e,
		gen:        e.gen,
		arr:        arrID(e.flows),
		flows:      e.flows,
		iterations: e.lastIterations,
		stats:      e.stats,
		noConv:     e.noConv,
		converged:  converged,
		sched:      converged && e.unsched == 0,
		errs:       e.errcnt,
	}
	e.views = append(e.views, v)
	return v
}

// dropView unpins a view; the engine stops saving overwritten headers
// into it.
func (e *Engine) dropView(v *ResultView) {
	for k, w := range e.views {
		if w == v {
			e.views = append(e.views[:k], e.views[k+1:]...)
			return
		}
	}
}

// ResultView is an immutable, generation-stamped view of one analysis
// outcome. It is what AnalyzeView and AnalyzeDeltaView return: creation
// is O(1) because unchanged headers are shared with the engine, and the
// engine's write barrier copies a header into the view's private overlay
// only at the moment a later mutation overwrites it — copy-on-read for
// callers that retain a view across later engine activity, at total cost
// O(headers the engine actually rewrote), never O(flows).
//
// A view logically freezes the analysis at its creation: every accessor
// keeps answering from that state no matter what the engine does next
// (additions, removals, re-analyses, snapshot rollbacks — pinned by
// FuzzResultView against a deep-clone oracle). A live view pins a small
// amount of engine bookkeeping; call Materialize to convert it into a
// detached *Result (today's semantics) or Close to discard it. Both
// release the pin; unreleased views cost memory proportional to the
// headers overwritten since their creation, not correctness.
//
// Accessors return FlowResult by value, but the header's Frames and
// Stages slices still alias the analysis's backing arrays — the same
// arrays the engine's live headers, sibling views and materialized
// Results reference. The engine never mutates those arrays in place
// (every flow pass allocates fresh ones), which is what makes sharing
// them sound; callers must extend the same courtesy and treat the
// returned bounds as read-only, exactly as with Result.Flows. Like the
// engine itself, a ResultView is not safe for concurrent use with
// engine mutations.
type ResultView struct {
	eng   *Engine
	gen   uint64
	arr   *FlowResult
	flows []FlowResult
	// overlay holds the headers overwritten since the view was created,
	// saved by the engine's write barrier; nil until the first save.
	overlay map[int]FlowResult

	iterations int
	stats      ConvergenceStats
	noConv     *ErrNoConvergence
	converged  bool
	sched      bool
	errs       int

	mat    *Result
	closed bool
}

// save is the barrier target: record slot i's current value if this view
// still shares the engine's backing array, can address the slot, and has
// not saved it already.
func (v *ResultView) save(i int, id *FlowResult) {
	if v.arr != id || i >= len(v.flows) {
		return
	}
	if v.overlay == nil {
		v.overlay = make(map[int]FlowResult)
	}
	if _, ok := v.overlay[i]; !ok {
		v.overlay[i] = v.flows[i]
	}
}

func (v *ResultView) read(i int) FlowResult {
	if v.mat != nil {
		return v.mat.Flows[i]
	}
	if v.closed {
		panic("core: read of a closed ResultView (Close was called without Materialize)")
	}
	if fr, ok := v.overlay[i]; ok {
		return fr
	}
	return v.flows[i]
}

// NumFlows returns the number of flows the analysis covered.
func (v *ResultView) NumFlows() int { return len(v.flows) }

// Iterations returns the number of holistic passes the analysis ran.
func (v *ResultView) Iterations() int { return v.iterations }

// Stats returns the convergence breakdown of the analysis at view time
// (worklist rounds, accelerated steps, safeguard fallbacks). O(1) and
// safe after Close — the stats are captured at view creation.
func (v *ResultView) Stats() ConvergenceStats { return v.stats }

// NoConvergence returns the abandonment record when the analysis
// exhausted Config.MaxHolisticIter without converging, nil otherwise.
// Like Stats it is captured at view creation and survives Close.
func (v *ResultView) NoConvergence() *ErrNoConvergence { return v.noConv }

// Converged reports whether the jitter assignment reached a fixpoint
// within Config.MaxHolisticIter.
func (v *ResultView) Converged() bool { return v.converged }

// Schedulable reports the admission verdict at view time: the analysis
// converged and every frame of every flow met its deadline. O(1) — the
// engine maintains the verdict incrementally as it writes headers.
func (v *ResultView) Schedulable() bool { return v.sched }

// StageErrors returns how many flows carried a stage error (overload or
// inner-fixpoint divergence) at view time. Zero with Converged() false
// means the outer holistic iteration cap was exhausted — the one verdict
// that is not monotone in the flow set (see Controller.RequestBatch).
func (v *ResultView) StageErrors() int { return v.errs }

// Flow returns the result of the i-th flow as a value snapshot. It
// panics with a descriptive message when i is out of range, mirroring
// Result.Flow; use FlowByIndex for an error-returning lookup.
func (v *ResultView) Flow(i int) FlowResult {
	if i < 0 || i >= len(v.flows) {
		panic(fmt.Sprintf("core: ResultView.Flow(%d) out of range: view covers %d flows", i, len(v.flows)))
	}
	return v.read(i)
}

// FlowByIndex returns the result of the i-th flow, or a descriptive
// error when i is out of range.
func (v *ResultView) FlowByIndex(i int) (FlowResult, error) {
	if i < 0 || i >= len(v.flows) {
		return FlowResult{}, errIndex(i, len(v.flows))
	}
	return v.read(i), nil
}

// Materialize converts the view into a detached *Result with exactly the
// semantics Engine.Analyze always had: later engine calls do not affect
// it. The first call copies the headers (O(flows)) and releases the
// view's pin on the engine; repeat calls return the cached Result. A
// view that was Closed before ever materializing has given its data up
// for good — Materialize then returns nil.
func (v *ResultView) Materialize() *Result {
	if v.mat == nil {
		if v.closed {
			return nil
		}
		out := &Result{
			Flows:         make([]FlowResult, len(v.flows)),
			Iterations:    v.iterations,
			Converged:     v.converged,
			Stats:         v.stats,
			NoConvergence: v.noConv,
		}
		for i := range out.Flows {
			out.Flows[i] = v.read(i)
		}
		v.release()
		v.mat = out
	}
	return v.mat
}

// Close releases the view without materializing it. Flow reads after
// Close panic and Materialize returns nil, unless Materialize was
// called first; Close after Materialize is a no-op (the cached Result
// keeps serving).
func (v *ResultView) Close() {
	v.release()
	if v.mat == nil {
		v.closed = true
	}
}

func (v *ResultView) release() {
	if v.eng != nil {
		v.eng.dropView(v)
		v.eng = nil
	}
}
