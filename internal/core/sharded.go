package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gmfnet/internal/network"
)

// ShardedEngine partitions the analysis state by interference closure:
// flows whose pipelines (transitively) share no resource never exchange
// jitter, so the holistic fixpoint decomposes exactly over the closures
// of network.Closures. Each closure gets its own shard — a private
// Engine over its own network (all shards share one read-only
// Topology) — so shard fixpoints run independently and concurrently,
// and an admission snapshot/rollback touches one shard's arena, not
// the whole system.
//
// The shard map is maintained online:
//
//   - a newcomer whose pipeline touches no shard opens a fresh one;
//   - a newcomer inside one closure routes to that shard;
//   - a newcomer whose pipeline bridges two or more shards *fuses*
//     them first: the smaller shards' arena blocks are spliced into the
//     largest shard's engine at their converged values (adoptFrom), so
//     the merged engine is immediately at its fixpoint — the disjoint
//     union of fixpoints is the fixpoint of the union precisely because
//     the fused closures shared no resource;
//   - a departure can split a closure; Resplit detects shards whose
//     flows now fall into several closures and splices each closure
//     out into its own warm shard.
//
// Because every per-shard analysis is the unmodified Engine iterating
// the same equations over exactly the flows of one closure, per-flow
// bounds and schedulability verdicts are identical to a monolithic
// engine over the union — the property the sharded admission
// controller's differential tests pin.
//
// A ShardedEngine is not safe for concurrent use in general; AnalyzeAll
// parallelises internally over shards, and the routing table (routes)
// is striped so the Scheduler's dispatch fast path can look up and
// claim resources concurrently — see routeTable for the locking model.
type ShardedEngine struct {
	topo *network.Topology
	cfg  Config

	shards []*shard
	routes routeTable
	seq    int
}

// shard is one closure's private engine plus the resources routed to it.
type shard struct {
	eng *Engine
	seq int
	// mu guards owned against the scheduler's concurrent claims; the
	// stripe lock of the key being (dis)owned nests outside it (see
	// routeTable). Paths holding the scheduler's exclusive dispatch
	// lock take it too, for uniformity.
	mu sync.Mutex
	// owned mirrors this shard's routeTable entries as an enumeration
	// index: pipeline resource → how many of the shard's committed (or
	// eagerly routed in-flight) flows cross it. Fusion and drop need
	// "all keys of this shard" without scanning every stripe; Resplit
	// rebuilds the counts from scratch for shards it splits.
	owned map[Resource]int
}

// ownedEmpty reports whether the shard owns no resource routes.
func (s *shard) ownedEmpty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.owned) == 0
}

// NewShardedEngine partitions the network's flows by interference
// closure and returns an engine per closure. The passed network is
// only read (topology shared, flow specs re-registered per shard); it
// is validated once here.
func NewShardedEngine(nw *network.Network, cfg Config) (*ShardedEngine, error) {
	if nw == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	se := &ShardedEngine{
		topo: nw.Topo,
		cfg:  cfg,
	}
	for _, members := range nw.Closures() {
		s, err := se.newShard()
		if err != nil {
			return nil, err
		}
		for _, i := range members {
			fs := nw.Flow(i)
			if _, err := s.eng.AddFlow(fs); err != nil {
				return nil, err
			}
			se.own(s, flowResources(fs))
		}
	}
	return se, nil
}

// shardEngineCfg is the config handed to per-shard engines: the
// analysis knobs pass through, but Workers is clamped to 1 (sequential
// delta worklists). Shard-level fan-out — AnalyzeAll, batch groups, the
// scheduler's worker pool — already spends the Config.Workers budget,
// so letting every shard also fan out its worklists would oversubscribe
// the machine. Decisions are unaffected: the sequential and parallel
// worklists reach the same least fixpoint. Closures are small by
// construction anyway (a shard rarely reaches minParallelWorklist).
func (se *ShardedEngine) shardEngineCfg() Config {
	cfg := se.cfg
	cfg.Workers = 1
	return cfg
}

// newShard opens an empty shard. Its engine is converged trivially so
// later fusions and splits can adopt warm blocks into it.
func (se *ShardedEngine) newShard() (*shard, error) {
	eng, err := NewEngine(network.New(se.topo), se.shardEngineCfg())
	if err != nil {
		return nil, err
	}
	if _, err := eng.Analyze(); err != nil { // empty fixpoint: marks the engine valid
		return nil, err
	}
	s := &shard{eng: eng, seq: se.seq, owned: make(map[Resource]int)}
	se.seq++
	se.shards = append(se.shards, s)
	return s, nil
}

// own routes one committed flow's pipeline resources to the shard.
// Callers guarantee each key is unowned or already routed to s —
// placement fuses bridging shards first.
func (se *ShardedEngine) own(s *shard, keys []Resource) {
	for _, k := range keys {
		se.routes.route(k, s)
	}
}

// tryOwn atomically routes the keys to s, failing — and undoing the
// claims already made — when any key is owned by another shard. The
// scheduler's dispatch fast path uses it to detect racing dispatches
// without a global lock: a conflict means the partition is shifting
// under the group, and the dispatch retries under exclusion.
func (se *ShardedEngine) tryOwn(s *shard, keys []Resource) bool {
	for n, k := range keys {
		if !se.routes.claim(k, s) {
			for _, u := range keys[:n] {
				se.routes.release(u, s)
			}
			return false
		}
	}
	return true
}

// disown releases one departed flow's pipeline resources: refcounts
// drop, and keys no remaining flow of the shard crosses are unrouted,
// so a later newcomer on those resources opens a fresh closure instead
// of being pulled into this shard.
func (se *ShardedEngine) disown(s *shard, keys []Resource) {
	for _, k := range keys {
		se.routes.release(k, s)
	}
}

// drop unregisters a shard and its resource routes.
func (se *ShardedEngine) drop(s *shard) {
	s.mu.Lock()
	for k := range s.owned {
		se.routes.unroute(k, s)
	}
	s.mu.Unlock()
	for i, t := range se.shards {
		if t == s {
			se.shards = append(se.shards[:i], se.shards[i+1:]...)
			return
		}
	}
}

// specKeys returns the pipeline resources of a spec, or nil when the
// spec is too malformed to have a pipeline (placement then falls back
// to a fresh shard and the engine's own validation reports the error).
func specKeys(fs *network.FlowSpec) []Resource {
	if fs == nil || fs.Flow == nil || len(fs.Route) < 2 {
		return nil
	}
	return flowResources(fs)
}

// touching returns the distinct shards owning any of the keys, in
// first-touch order (deterministic: keys are in pipeline order and
// shard routes are updated deterministically).
func (se *ShardedEngine) touching(keys []Resource) []*shard {
	var out []*shard
	for _, k := range keys {
		s := se.routes.owner(k)
		if s == nil {
			continue
		}
		dup := false
		for _, t := range out {
			if t == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// Placement is the result of routing one request (or one batch group)
// to a shard: the engine to admit into, with any required fusion
// already performed. Exactly one Commit call must follow — on every
// path, including rejection (with no specs) — so the shard map stays
// consistent.
type Placement struct {
	se    *ShardedEngine
	s     *shard
	fused int
}

// Engine returns the shard engine the placed request(s) must be
// admitted into.
func (p *Placement) Engine() *Engine { return p.s.eng }

// Fused returns how many pre-existing shards the placement fused
// (zero when the request landed in one shard or opened a fresh one).
func (p *Placement) Fused() int { return p.fused }

// Commit finalises a placement: the pipelines of the specs that were
// actually admitted are routed to the shard, and a shard left with no
// flows (a fresh shard whose only candidate was rejected, or an
// emptied one) is dropped. Fusions performed by Place are kept either
// way — re-splitting is Resplit's job.
func (p *Placement) Commit(admitted ...*network.FlowSpec) {
	for _, fs := range admitted {
		p.se.own(p.s, specKeys(fs))
	}
	if p.s.eng.Network().NumFlows() == 0 {
		p.se.drop(p.s)
	}
}

// Place routes a request (or a batch group that must be decided
// together) to a shard: the shard owning the specs' pipeline
// resources, fused first when the specs bridge several, or a fresh
// shard when they touch none. Fusion happens before any spec is
// staged, so the caller's snapshot/rollback stays within one engine.
// The specs are not added and their pipelines not yet routed; Commit
// does that for the admitted ones.
func (se *ShardedEngine) Place(specs ...*network.FlowSpec) (*Placement, error) {
	var keys []Resource
	for _, fs := range specs {
		keys = append(keys, specKeys(fs)...)
	}
	return se.placeKeys(keys)
}

// placeKeys is Place over precomputed pipeline keys.
func (se *ShardedEngine) placeKeys(keys []Resource) (*Placement, error) {
	touched := se.touching(keys)
	if len(touched) == 0 {
		s, err := se.newShard()
		if err != nil {
			return nil, err
		}
		return &Placement{se: se, s: s}, nil
	}
	dst, err := se.fuse(touched)
	if err != nil {
		return nil, err
	}
	return &Placement{se: se, s: dst, fused: len(touched) - 1}, nil
}

// BatchPlacement is one interference group of a batch together with
// its placement: the group members' positions in the original batch
// and the shard engine (fused as needed) that must decide them as one
// monolithic sub-batch.
type BatchPlacement struct {
	Placement
	// Indices are the group members' positions in the batch passed to
	// PlaceBatch, ascending.
	Indices []int

	keys [][]Resource // pipeline keys per member, for Commit
}

// Commit finalises the group: the pipelines of the members whose
// admitted flag is set are routed to the shard, and an emptied shard
// is dropped. admitted is indexed like Indices.
func (bp *BatchPlacement) Commit(admitted []bool) {
	for at := range bp.Indices {
		if admitted[at] {
			bp.se.own(bp.s, bp.keys[at])
		}
	}
	if bp.s.eng.Network().NumFlows() == 0 {
		bp.se.drop(bp.s)
	}
}

// PlaceBatch partitions a batch into its interference groups — specs
// land in the same group when their pipelines share a resource
// directly, through a chain of batch specs, or through a common
// existing shard — and places every group, fusing the shards it
// bridges. Distinct groups touch disjoint shards and disjoint
// resources, so they can be decided independently (and concurrently)
// with decisions identical to deciding the whole batch in one engine.
// Groups are ordered by first member. Pipeline keys are computed once
// here and reused by Commit.
func (se *ShardedEngine) PlaceBatch(specs []*network.FlowSpec) ([]*BatchPlacement, error) {
	keys := make([][]Resource, len(specs))
	for i, fs := range specs {
		keys[i] = specKeys(fs)
	}
	out := make([]*BatchPlacement, 0, 4)
	for _, idx := range se.groupByKeys(keys) {
		var gkeys []Resource
		bp := &BatchPlacement{Indices: idx, keys: make([][]Resource, len(idx))}
		for at, i := range idx {
			bp.keys[at] = keys[i]
			gkeys = append(gkeys, keys[i]...)
		}
		p, err := se.placeKeys(gkeys)
		if err != nil {
			for _, placed := range out {
				placed.Commit(make([]bool, len(placed.Indices)))
			}
			// Best-effort: undo fusions already performed for earlier
			// groups so a failing batch cannot decay the partition.
			// Resplit is atomic per shard; on a further error the
			// partition merely stays fused, which is conservative.
			_, _ = se.Resplit()
			return nil, err
		}
		bp.Placement = *p
		out = append(out, bp)
	}
	return out, nil
}

// fuse merges the shards into the one with the most flows (ties to the
// oldest), splicing the others' converged arena blocks in, and returns
// the survivor.
func (se *ShardedEngine) fuse(list []*shard) (*shard, error) {
	dst := fusionSurvivor(list, func(s *shard) int { return s.eng.Network().NumFlows() })
	for _, s := range list {
		if s == dst {
			continue
		}
		if err := dst.eng.adoptFrom(s.eng); err != nil {
			return nil, fmt.Errorf("core: shard fusion: %w", err)
		}
		se.fuseRoutes(dst, s)
	}
	return dst, nil
}

// fusionSurvivor picks the shard a fusion keeps: the one with the most
// flows, ties to the oldest. flows abstracts the count so the scheduler
// can use its own bookkeeping instead of reading engines that may be
// mid-task on their mailboxes.
func fusionSurvivor(list []*shard, flows func(*shard) int) *shard {
	dst := list[0]
	for _, s := range list[1:] {
		if n, m := flows(s), flows(dst); n > m || (n == m && s.seq < dst.seq) {
			dst = s
		}
	}
	return dst
}

// fuseRoutes transfers victim's resource routes to dst and unregisters
// victim — the pure bookkeeping half of a fusion, touching only the
// shard map, never an engine. The arena splice (adoptFrom) is the
// caller's job: fuse runs it inline; the scheduler defers it to dst's
// mailbox so routing moves on immediately while the victim's queue
// drains.
func (se *ShardedEngine) fuseRoutes(dst, victim *shard) {
	victim.mu.Lock()
	moved := victim.owned
	victim.owned = nil // already re-routed; keep drop from deleting them
	victim.mu.Unlock()
	for k, n := range moved {
		se.routes.reroute(k, victim, dst)
		dst.mu.Lock()
		dst.owned[k] += n
		dst.mu.Unlock()
	}
	se.drop(victim)
}

// Resplit re-partitions shards whose flows no longer form a single
// closure (departures can split what arrivals fused): each closure is
// spliced out into its own shard at the converged assignment, and the
// split shards' resource routes are rebuilt exactly. It returns the
// number of additional shards that now exist. Shards still forming one
// closure are untouched, so steady-state cost is one memoized closure
// query per shard. A split is atomic per shard: the replacements are
// built detached and swapped in only once every closure spliced
// cleanly, so an error leaves the old shard — and the whole partition —
// exactly as it was.
func (se *ShardedEngine) Resplit() (int, error) {
	created := 0
	for _, s := range append([]*shard(nil), se.shards...) {
		nw := s.eng.Network()
		if nw.NumFlows() == 0 {
			se.drop(s)
			continue
		}
		closures := nw.Closures()
		if len(closures) <= 1 {
			continue
		}
		// Converge once so every spliced block is a fixpoint.
		if _, err := s.eng.Analyze(); err != nil {
			return created, err
		}
		// Build the replacement shards detached: nothing below touches
		// se.shards or the routing table until every closure spliced cleanly.
		detached := make([]*shard, 0, len(closures))
		buildErr := func() error {
			for _, members := range closures {
				eng, err := NewEngine(network.New(se.topo), se.shardEngineCfg())
				if err != nil {
					return err
				}
				if _, err := eng.Analyze(); err != nil { // empty fixpoint: valid for warm adoption
					return err
				}
				ns := &shard{eng: eng, owned: make(map[Resource]int)}
				for _, j := range members {
					if err := ns.eng.adoptFlow(s.eng, j); err != nil {
						return err
					}
					for _, k := range flowResources(nw.Flow(j)) {
						ns.owned[k]++
					}
				}
				detached = append(detached, ns)
			}
			return nil
		}()
		if buildErr != nil {
			return created, buildErr
		}
		// Commit point: swap the old shard for the replacements.
		se.drop(s)
		for _, ns := range detached {
			ns.seq = se.seq
			se.seq++
			se.shards = append(se.shards, ns)
			for k, n := range ns.owned {
				se.routes.set(k, ns, n)
			}
		}
		created += len(detached) - 1
	}
	return created, nil
}

// Find returns the shard engine holding the first flow with the given
// name (shards scanned in creation order, flows in admission order)
// and its index within that engine. When several admitted flows share
// a name, shard-creation order need not match global admission order;
// use FindSpec with the exact spec for admission-order semantics.
func (se *ShardedEngine) Find(name string) (*Engine, int, bool) {
	for _, s := range se.shards {
		nw := s.eng.Network()
		for i := 0; i < nw.NumFlows(); i++ {
			if nw.Flow(i).Flow.Name == name {
				return s.eng, i, true
			}
		}
	}
	return nil, 0, false
}

// FindSpec locates the exact spec (by pointer identity — shards
// re-register the caller's *FlowSpec values, so the pointer survives
// fusion and re-splitting) and returns its shard engine and index.
func (se *ShardedEngine) FindSpec(fs *network.FlowSpec) (*Engine, int, bool) {
	for _, s := range se.shards {
		nw := s.eng.Network()
		for i := 0; i < nw.NumFlows(); i++ {
			if nw.Flow(i) == fs {
				return s.eng, i, true
			}
		}
	}
	return nil, 0, false
}

// Remove removes flow i from the given shard engine (a departure) and
// releases the flow's resource routes: keys no remaining flow of the
// shard crosses are unrouted, so departed flows do not accumulate
// stale routes that would pull unrelated newcomers into the shard. Use
// it instead of calling the engine's RemoveFlow directly.
func (se *ShardedEngine) Remove(eng *Engine, i int) error {
	var sh *shard
	for _, s := range se.shards {
		if s.eng == eng {
			sh = s
			break
		}
	}
	if sh == nil {
		return fmt.Errorf("core: Remove on an engine that is not a live shard")
	}
	nw := eng.Network()
	if i < 0 || i >= nw.NumFlows() {
		return errIndex(i, nw.NumFlows())
	}
	keys := specKeys(nw.Flow(i))
	if err := eng.RemoveFlow(i); err != nil {
		return err
	}
	se.disown(sh, keys)
	return nil
}

// NumShards returns the number of live shards.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// NumFlows returns the total flow count across all shards.
func (se *ShardedEngine) NumFlows() int {
	n := 0
	for _, s := range se.shards {
		n += s.eng.Network().NumFlows()
	}
	return n
}

// Shards returns the live shard engines in creation order. The slice
// is a copy; the engines are the live shards — treat them as read-only
// unless you own the ShardedEngine.
func (se *ShardedEngine) Shards() []*Engine {
	out := make([]*Engine, len(se.shards))
	for i, s := range se.shards {
		out[i] = s.eng
	}
	return out
}

// Topology returns the shared topology.
func (se *ShardedEngine) Topology() *network.Topology { return se.topo }

// ValidateSpecs pre-validates a batch against the topology exactly as
// staging each spec would, without touching any shard. The sharded
// batch path uses it to reproduce the monolithic batch contract — a
// malformed spec fails the whole batch before any decision is made.
func (se *ShardedEngine) ValidateSpecs(specs []*network.FlowSpec) error {
	scratch := network.New(se.topo)
	for _, fs := range specs {
		if err := scratch.ValidateSpec(fs); err != nil {
			return err
		}
	}
	return nil
}

// groupByKeys computes PlaceBatch's interference groups from the
// batch members' precomputed pipeline keys, as index lists, each
// ascending, ordered by first member.
func (se *ShardedEngine) groupByKeys(keys [][]Resource) [][]int {
	if len(keys) == 1 {
		// A single spec is always its own group: skip the union-find
		// and its maps on the hot single-request path.
		return [][]int{{0}}
	}
	parent := make([]int, len(keys))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	keyOwner := make(map[Resource]int)
	shardOwner := make(map[*shard]int)
	for i, ks := range keys {
		for _, k := range ks {
			if j, ok := keyOwner[k]; ok {
				union(i, j)
			} else {
				keyOwner[k] = i
			}
			if s := se.routes.owner(k); s != nil {
				if j, ok := shardOwner[s]; ok {
					union(i, j)
				} else {
					shardOwner[s] = i
				}
			}
		}
	}
	groups := make(map[int][]int)
	var roots []int
	for i := range keys {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// RunLimited runs f(0), …, f(n-1) concurrently, at most GOMAXPROCS in
// flight, and returns when all have finished. It is the fan-out used
// for independent per-shard work (AnalyzeAll, the sharded batch
// groups): the tasks must touch disjoint state or only write to
// distinct indices. Callers holding a Config should use
// RunLimitedWorkers with Config.PoolWorkers so every layer draws from
// the same worker budget.
func RunLimited(n int, f func(int)) {
	RunLimitedWorkers(n, runtime.GOMAXPROCS(0), f)
}

// RunLimitedWorkers is RunLimited with an explicit worker cap — the
// same knob the shard scheduler's pool is sized by (Config.Workers via
// PoolWorkers), so delta-worklist and shard-level fan-out cannot
// oversubscribe each other. workers < 1 is treated as 1.
func RunLimitedWorkers(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

// PoolWorkers returns the shard-level worker budget of this engine's
// Config (see Config.PoolWorkers).
func (se *ShardedEngine) PoolWorkers() int { return se.cfg.PoolWorkers() }

// AnalyzeAll converges every shard — concurrently, up to GOMAXPROCS
// shards in flight — and returns the per-shard results in shard
// (creation) order. Distinct shards share only the read-only topology,
// so their fixpoints are independent. Each result is a detached copy
// (O(closure) headers per shard); AnalyzeAllViews is the copy-free
// form.
func (se *ShardedEngine) AnalyzeAll() ([]*Result, error) {
	out := make([]*Result, len(se.shards))
	errs := make([]error, len(se.shards))
	engines := se.Shards()
	RunLimitedWorkers(len(engines), se.PoolWorkers(), func(i int) {
		out[i], errs[i] = engines[i].Analyze()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AnalyzeAllViews converges every shard concurrently and composes the
// outcome as one copy-on-read view per closure, in shard (creation)
// order — no header is copied anywhere. The network-wide verdict is the
// conjunction of the per-view verdicts (closures are independent, so
// their fixpoints compose exactly); ShardsSchedulable folds it. Close or
// Materialize the views like any other ResultView.
func (se *ShardedEngine) AnalyzeAllViews() ([]*ResultView, error) {
	out := make([]*ResultView, len(se.shards))
	errs := make([]error, len(se.shards))
	engines := se.Shards()
	RunLimitedWorkers(len(engines), se.PoolWorkers(), func(i int) {
		out[i], errs[i] = engines[i].AnalyzeView()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ShardsSchedulable folds per-closure views into the network-wide
// admission verdict: every closure converged and schedulable.
func ShardsSchedulable(views []*ResultView) bool {
	for _, v := range views {
		if !v.Schedulable() {
			return false
		}
	}
	return true
}

// adoptFrom splices every flow of src into e at its converged jitter
// assignment. Both engines are converged first; the splice is only
// sound when src's flows share no pipeline resource with e's (the
// ShardedEngine invariant): then the disjoint union of the two
// fixpoints is the fixpoint of the union, so e stays valid with no
// re-analysis. When either engine cannot be brought to a valid
// fixpoint the flows are adopted cold (marked dirty) instead, which is
// always sound. Refused while either engine has a live snapshot.
func (e *Engine) adoptFrom(src *Engine) error {
	if e.snapLive || src.snapLive {
		return fmt.Errorf("core: adoptFrom with a live snapshot")
	}
	if _, err := src.Analyze(); err != nil {
		return err
	}
	if _, err := e.Analyze(); err != nil {
		return err
	}
	// Adoption copies; src is untouched. On a mid-way error, pop the
	// flows already copied so e is exactly its pre-call self — fusion
	// must be all-or-nothing or flows would exist in two shards.
	start := e.an.nw.NumFlows()
	for j := 0; j < src.an.nw.NumFlows(); j++ {
		if err := e.adoptFlow(src, j); err != nil {
			for e.an.nw.NumFlows() > start {
				_ = e.RemoveFlow(e.an.nw.NumFlows() - 1)
			}
			return err
		}
	}
	return nil
}

// adoptFlow splices flow j of src into e: the spec is re-registered,
// the cached demands copied, and — when both engines hold converged
// state — the flow's arena block is copied at its converged values so
// the adopted flow needs no re-analysis. Otherwise the flow is adopted
// cold and marked dirty.
func (e *Engine) adoptFlow(src *Engine, j int) error {
	fs := src.an.nw.Flow(j)
	i, err := e.an.nw.AddFlow(fs)
	if err != nil {
		return err
	}
	var dem []rateDemand
	if j < len(src.an.demands) {
		dem = append([]rateDemand(nil), src.an.demands[j]...)
	}
	for len(e.an.demands) <= i {
		e.an.demands = append(e.an.demands, nil)
	}
	e.an.demands[i] = dem
	e.bumpGen()
	warm := e.valid && src.valid && len(src.dirty) == 0
	if !e.valid {
		e.dirty[i] = true
		return nil
	}
	e.js.addFlow(i, fs, e.an.nw.FlowResources(i))
	if !warm {
		e.appendHeader(FlowResult{Index: i, Name: fs.Flow.Name}, true)
		e.dirty[i] = true
		return nil
	}
	copyJitterBlock(e.js, i, src.js, j)
	fr := src.flows[j]
	fr.Index = i
	e.appendHeader(fr, true)
	return nil
}

// copyJitterBlock overwrites dst flow i's (freshly added, cold) arena
// block with src flow j's values. The two blocks describe the same
// flow, so their shapes — frames per stage and pipeline length —
// match; resource ids may differ between the engines' networks, but
// stage positions are route-ordered in both.
func copyJitterBlock(dst *jitterState, i int, src *jitterState, j int) {
	db, sb := &dst.blocks[i], &src.blocks[j]
	stages := len(db.rids)
	slots := int32(stages) * db.n
	copy(dst.arena[db.base:db.base+slots], src.arena[sb.base:sb.base+slots])
	copy(dst.extraMax[db.ebase:int(db.ebase)+stages], src.extraMax[sb.ebase:int(sb.ebase)+stages])
	copy(dst.extraValid[db.ebase:int(db.ebase)+stages], src.extraValid[sb.ebase:int(sb.ebase)+stages])
}
