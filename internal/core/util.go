package core

import (
	"fmt"
	"sort"

	"gmfnet/internal/ether"
	"gmfnet/internal/network"
)

// ResourceLoad summarises the long-run demand on one resource.
type ResourceLoad struct {
	// Resource identifies the link or ingress stage.
	Resource Resource
	// Utilization is the long-run demand fraction: transmission time for
	// links (eq. 20's left side), CIRC-slots for ingress stages.
	Utilization float64
	// Flows names the flows loading the resource.
	Flows []string
}

// UtilizationReport computes the load of every resource any flow crosses,
// sorted by decreasing utilisation — the operator's bottleneck view. It
// requires no fixpoint and works on unschedulable networks too.
func UtilizationReport(nw *network.Network) ([]ResourceLoad, error) {
	if nw == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	type acc struct {
		util  float64
		flows []string
	}
	loads := make(map[Resource]*acc)
	add := func(res Resource, util float64, name string) {
		a := loads[res]
		if a == nil {
			a = &acc{}
			loads[res] = a
		}
		a.util += util
		a.flows = append(a.flows, name)
	}

	for _, fs := range nw.Flows() {
		route := fs.Route
		for h := 0; h < len(route)-1; h++ {
			link := nw.Topo.Link(route[h], route[h+1])
			d, err := ether.DemandFor(fs.Flow, link.Rate, fs.RTP)
			if err != nil {
				return nil, err
			}
			add(Resource{Kind: KindLink, Node: route[h], To: route[h+1]}, d.Utilization(), fs.Flow.Name)
			// Ingress load at the receiving switch (not at the final
			// destination).
			if h+1 < len(route)-1 {
				circ, err := nw.Topo.CIRC(route[h+1])
				if err != nil {
					return nil, err
				}
				add(Resource{Kind: KindIngress, Node: route[h+1], To: route[h]},
					d.CountUtilization(circ), fs.Flow.Name)
			}
		}
	}

	out := make([]ResourceLoad, 0, len(loads))
	for res, a := range loads {
		out = append(out, ResourceLoad{Resource: res, Utilization: a.util, Flows: a.flows})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization != out[j].Utilization {
			return out[i].Utilization > out[j].Utilization
		}
		return out[i].Resource.String() < out[j].Resource.String()
	})
	return out, nil
}

// Bottleneck returns the most loaded resource, or false for a flowless
// network.
func Bottleneck(nw *network.Network) (ResourceLoad, bool, error) {
	loads, err := UtilizationReport(nw)
	if err != nil {
		return ResourceLoad{}, false, err
	}
	if len(loads) == 0 {
		return ResourceLoad{}, false, nil
	}
	return loads[0], true, nil
}
