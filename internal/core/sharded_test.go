package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// shardedRandomNetwork builds a campus network with n random local/
// cross-backbone VoIP and CBR flows.
func shardedRandomNetwork(t *testing.T, r *rand.Rand, switches, hostsPer, n int) *network.Network {
	t.Helper()
	topo, hosts, err := network.Campus(switches, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.New(topo)
	for i := 0; nw.NumFlows() < n; i++ {
		var src, dst network.NodeID
		if r.Float64() < 0.8 {
			s := r.Intn(switches)
			src = hosts[s*hostsPer+r.Intn(hostsPer)]
			dst = hosts[s*hostsPer+r.Intn(hostsPer)]
		} else {
			src = hosts[r.Intn(len(hosts))]
			dst = hosts[r.Intn(len(hosts))]
		}
		if src == dst {
			continue
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			continue
		}
		name := fmt.Sprintf("f%d", i)
		fs := &network.FlowSpec{Route: route, Priority: network.Priority(1 + r.Intn(3))}
		if r.Intn(3) > 0 {
			fs.Flow = trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond})
			fs.RTP = true
		} else {
			fs.Flow = trace.CBRVideo(name, 4000+r.Int63n(8000), 33*units.Millisecond, 200*units.Millisecond)
		}
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// boundsByName flattens per-flow frame bounds keyed by flow name.
func boundsByName(t *testing.T, results ...*Result) map[string][]units.Time {
	t.Helper()
	out := make(map[string][]units.Time)
	for _, res := range results {
		for i := range res.Flows {
			fr := &res.Flows[i]
			if fr.Err != nil {
				t.Fatalf("flow %q: %v", fr.Name, fr.Err)
			}
			if _, dup := out[fr.Name]; dup {
				t.Fatalf("flow %q appears in two shards", fr.Name)
			}
			var rs []units.Time
			for k := range fr.Frames {
				rs = append(rs, fr.Frames[k].Response)
			}
			out[fr.Name] = rs
		}
	}
	return out
}

// TestShardedEngineMatchesMonolithic partitions random networks by
// closure and asserts every shard-computed bound equals the monolithic
// engine's bound for the same flow.
func TestShardedEngineMatchesMonolithic(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			nw := shardedRandomNetwork(t, r, 6, 3, 24)

			mono, err := NewEngine(nw, Config{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := mono.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			if !want.Converged {
				t.Fatal("monolithic analysis did not converge")
			}

			se, err := NewShardedEngine(nw, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if se.NumShards() != nw.NumClosures() {
				t.Fatalf("%d shards, want %d closures", se.NumShards(), nw.NumClosures())
			}
			if se.NumFlows() != nw.NumFlows() {
				t.Fatalf("%d flows across shards, want %d", se.NumFlows(), nw.NumFlows())
			}
			results, err := se.AnalyzeAll()
			if err != nil {
				t.Fatal(err)
			}
			got := boundsByName(t, results...)
			wantBounds := boundsByName(t, want)
			if len(got) != len(wantBounds) {
				t.Fatalf("%d sharded flows, want %d", len(got), len(wantBounds))
			}
			for name, wb := range wantBounds {
				gb, ok := got[name]
				if !ok {
					t.Fatalf("flow %q missing from shards", name)
				}
				for k := range wb {
					if gb[k] != wb[k] {
						t.Fatalf("flow %q frame %d: sharded bound %v, want %v", name, k, gb[k], wb[k])
					}
				}
			}
		})
	}
}

// TestAdoptFromIsWarm pins the fusion splice: merging two converged,
// resource-disjoint engines must yield an engine that is already at
// its fixpoint — no dirty flows, one cache-hit Analyze — with bounds
// identical to the parts.
func TestAdoptFromIsWarm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nw := shardedRandomNetwork(t, r, 4, 3, 16)
	se, err := NewShardedEngine(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if se.NumShards() < 2 {
		t.Skip("draw produced a single closure")
	}
	partResults, err := se.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	want := boundsByName(t, partResults...)

	engines := se.Shards()
	dst, src := engines[0], engines[1]
	if err := dst.adoptFrom(src); err != nil {
		t.Fatal(err)
	}
	if !dst.valid || len(dst.dirty) != 0 {
		t.Fatalf("fused engine not warm: valid=%v dirty=%d", dst.valid, len(dst.dirty))
	}
	res, err := dst.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fused engine did not report convergence")
	}
	got := boundsByName(t, res)
	for name, gb := range got {
		wb, ok := want[name]
		if !ok {
			t.Fatalf("unexpected flow %q in fused engine", name)
		}
		for k := range wb {
			if gb[k] != wb[k] {
				t.Fatalf("flow %q frame %d: fused bound %v, want %v", name, k, gb[k], wb[k])
			}
		}
	}
}

// TestSnapshotRestoreResplitsClosures is the rollback regression for
// closure tracking: a tentative bridging admission fuses two closures;
// restoring the pre-request snapshot (which pops the bridge — and, in
// the second phase, also re-inserts a departure) must re-split them,
// since the union-find rebuild sees only the surviving pipelines.
func TestSnapshotRestoreResplitsClosures(t *testing.T) {
	topo, _, err := network.Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.New(topo)
	mk := func(name string, route ...network.NodeID) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
			RTP:      true,
		}
	}
	if _, err := nw.AddFlow(mk("a", "h0_0", "sw0", "h0_1")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddFlow(mk("b", "h2_0", "sw2", "h2_1")); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	if n := nw.NumClosures(); n != 2 {
		t.Fatalf("%d closures, want 2", n)
	}

	snap := eng.Snapshot()
	if _, err := eng.AddFlow(mk("bridge", "h0_0", "sw0", "sw1", "sw2", "h2_1")); err != nil {
		t.Fatal(err)
	}
	if n := nw.NumClosures(); n != 1 {
		t.Fatalf("after tentative bridge: %d closures, want 1", n)
	}
	// A departure under the same snapshot: rollback must undo both.
	if err := eng.RemoveFlow(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if n := nw.NumClosures(); n != 2 {
		t.Fatalf("after restore: %d closures, want 2", n)
	}
	if nw.NumFlows() != 2 || nw.Flow(0).Flow.Name != "a" || nw.Flow(1).Flow.Name != "b" {
		t.Fatalf("restore did not reproduce the flow set: %d flows", nw.NumFlows())
	}
}

// TestResplitAfterDeparture pins the split lifecycle: a bridging flow
// fuses two shards; its departure plus Resplit must restore one shard
// per closure with bounds equal to a cold analysis.
func TestResplitAfterDeparture(t *testing.T) {
	topo, _, err := network.Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw := network.New(topo)
	mk := func(name string, route ...network.NodeID) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
			RTP:      true,
		}
	}
	for _, fs := range []*network.FlowSpec{
		mk("a", "h0_0", "sw0", "h0_1"),
		mk("b", "h2_0", "sw2", "h2_1"),
	} {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	se, err := NewShardedEngine(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if se.NumShards() != 2 {
		t.Fatalf("%d shards, want 2", se.NumShards())
	}

	bridge := mk("bridge", "h0_0", "sw0", "sw1", "sw2", "h2_1")
	p, err := se.Place(bridge)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fused() != 1 {
		t.Fatalf("bridge fused %d shards, want 1", p.Fused())
	}
	if _, err := p.Engine().AddFlow(bridge); err != nil {
		t.Fatal(err)
	}
	p.Commit(bridge)
	if se.NumShards() != 1 {
		t.Fatalf("%d shards after fusion, want 1", se.NumShards())
	}
	if _, err := se.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}

	eng, i, ok := se.Find("bridge")
	if !ok {
		t.Fatal("bridge not found")
	}
	if err := eng.RemoveFlow(i); err != nil {
		t.Fatal(err)
	}
	delta, err := se.Resplit()
	if err != nil {
		t.Fatal(err)
	}
	if se.NumShards() != 2 || delta != 1 {
		t.Fatalf("after resplit: %d shards (delta %d), want 2 (delta 1)", se.NumShards(), delta)
	}
	results, err := se.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	got := boundsByName(t, results...)

	ref := network.New(topo)
	for _, fs := range []*network.FlowSpec{
		mk("a", "h0_0", "sw0", "h0_1"),
		mk("b", "h2_0", "sw2", "h2_1"),
	} {
		if _, err := ref.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	an, err := NewAnalyzer(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	wantBounds := boundsByName(t, want)
	for name, wb := range wantBounds {
		gb, ok := got[name]
		if !ok {
			t.Fatalf("flow %q missing after resplit", name)
		}
		for k := range wb {
			if gb[k] != wb[k] {
				t.Fatalf("flow %q frame %d: post-resplit bound %v, want %v", name, k, gb[k], wb[k])
			}
		}
	}
}
