package core

import (
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

func TestUtilizationReportErrors(t *testing.T) {
	if _, err := UtilizationReport(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestUtilizationReportEmpty(t *testing.T) {
	nw := network.New(network.MustFigure1(network.Figure1Options{}))
	loads, err := UtilizationReport(nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 0 {
		t.Fatalf("loads = %v, want none", loads)
	}
	if _, ok, err := Bottleneck(nw); err != nil || ok {
		t.Fatalf("bottleneck on empty network: ok=%v err=%v", ok, err)
	}
}

func TestUtilizationReportSingleFlow(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	nw := oneSwitchNet(t, fs)
	loads, err := UtilizationReport(nw)
	if err != nil {
		t.Fatal(err)
	}
	// Resources: link(h1,s), in(s)<-h1, link(s,h2).
	if len(loads) != 3 {
		t.Fatalf("loads = %d, want 3", len(loads))
	}
	// Link utilisation: 12304 bits per 100 ms at 10 Mbit/s = 1.2304 ms /
	// 100 ms = 0.012304.
	wantLink := float64(c1) / float64(100*ms)
	foundLinks := 0
	for _, l := range loads {
		if l.Kind() == KindLink {
			foundLinks++
			if l.Utilization != wantLink {
				t.Errorf("%v utilisation %v, want %v", l.Resource, l.Utilization, wantLink)
			}
		} else {
			// Ingress: 1 fragment × CIRC(7.4µs) / 100 ms.
			circ := 7400 * units.Nanosecond
			want := float64(circ) / float64(100*ms)
			if l.Utilization != want {
				t.Errorf("ingress utilisation %v, want %v", l.Utilization, want)
			}
		}
		if len(l.Flows) != 1 || l.Flows[0] != "a" {
			t.Errorf("%v flows = %v", l.Resource, l.Flows)
		}
	}
	if foundLinks != 2 {
		t.Fatalf("link resources = %d, want 2", foundLinks)
	}
}

// Kind is a tiny test helper on ResourceLoad.
func (l ResourceLoad) Kind() ResourceKind { return l.Resource.Kind }

func TestUtilizationSortedAndBottleneck(t *testing.T) {
	// Two flows converge on link(s,h2): it must be the bottleneck.
	a := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	b := &network.FlowSpec{
		Flow:  oneFrameFlow("b", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h3", "s", "h2"},
	}
	nw := threeHostSwitchNet(t, a, b)
	loads, err := UtilizationReport(nw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(loads); i++ {
		if loads[i-1].Utilization < loads[i].Utilization {
			t.Fatal("loads not sorted descending")
		}
	}
	top, ok, err := Bottleneck(nw)
	if err != nil || !ok {
		t.Fatalf("bottleneck: ok=%v err=%v", ok, err)
	}
	want := Resource{Kind: KindLink, Node: "s", To: "h2"}
	if top.Resource != want {
		t.Fatalf("bottleneck = %v, want %v", top.Resource, want)
	}
	if len(top.Flows) != 2 {
		t.Fatalf("bottleneck flows = %v", top.Flows)
	}
}

// threeHostSwitchNet is h1,h3 -> s -> h2 at 10 Mbit/s.
func threeHostSwitchNet(t *testing.T, flows ...*network.FlowSpec) *network.Network {
	t.Helper()
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddHost("h3"))
	mustOK(t, topo.AddSwitch("s", network.DefaultSwitchParams()))
	mustOK(t, topo.AddDuplexLink("h1", "s", 10*units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("h2", "s", 10*units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("h3", "s", 10*units.Mbps, 0))
	nw := network.New(topo)
	for _, fs := range flows {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestUtilizationMatchesOverloadVerdict(t *testing.T) {
	// If the report says a first-hop link is >= 1, the analysis must
	// reject, and vice versa for clearly underloaded networks.
	mk := func(payload int64) *network.Network {
		fs := &network.FlowSpec{
			Flow:  oneFrameFlow("a", payload, 10*ms, 100*ms, 0),
			Route: []network.NodeID{"h1", "h2"},
		}
		return directLinkNet(t, fs)
	}
	heavy := mk(140000 * 8) // ~14.5 ms of wire time per 10 ms
	loads, err := UtilizationReport(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0].Utilization < 1 {
		t.Fatalf("expected overload, got %v", loads[0].Utilization)
	}
	res := analyze(t, heavy, Config{})
	if res.Schedulable() {
		t.Fatal("overloaded network schedulable")
	}
	light := mk(1000 * 8)
	loads, err = UtilizationReport(light)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0].Utilization >= 1 {
		t.Fatalf("expected headroom, got %v", loads[0].Utilization)
	}
}
