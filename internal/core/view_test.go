package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"gmfnet/internal/network"
)

// deepCloneResult copies a Result down to the per-stage slices, so the
// clone shares no memory with the engine — the oracle retained views are
// compared against.
func deepCloneResult(r *Result) *Result {
	out := &Result{Iterations: r.Iterations, Converged: r.Converged, Flows: make([]FlowResult, len(r.Flows))}
	for i := range r.Flows {
		fr := r.Flows[i]
		if fr.Frames != nil {
			frames := make([]FrameResult, len(fr.Frames))
			for k := range fr.Frames {
				fm := fr.Frames[k]
				if fm.Stages != nil {
					fm.Stages = append([]StageResult(nil), fm.Stages...)
				}
				frames[k] = fm
			}
			fr.Frames = frames
		}
		out.Flows[i] = fr
	}
	return out
}

// viewOracle mints a retained view together with an independent deep
// clone of its creation-time reads. The clone is taken through the view
// itself, immediately, so it captures exactly what the view promises to
// keep showing (a second analysis would not do: on an engine in error
// state every converge re-runs the failing pass and may leave different
// partial headers).
func viewOracle(t *testing.T, eng *Engine) (*ResultView, *Result) {
	t.Helper()
	v, err := eng.AnalyzeView()
	if err != nil {
		t.Fatal(err)
	}
	out := &Result{
		Flows:      make([]FlowResult, v.NumFlows()),
		Iterations: v.Iterations(),
		Converged:  v.Converged(),
	}
	for i := range out.Flows {
		out.Flows[i] = v.Flow(i)
	}
	return v, deepCloneResult(out)
}

// checkViewMatches asserts a retained view still reports exactly the
// oracle analysis, field by field.
func checkViewMatches(t *testing.T, label string, v *ResultView, want *Result) {
	t.Helper()
	if v.NumFlows() != len(want.Flows) {
		t.Fatalf("%s: view covers %d flows, want %d", label, v.NumFlows(), len(want.Flows))
	}
	if v.Converged() != want.Converged {
		t.Fatalf("%s: view converged=%v, want %v", label, v.Converged(), want.Converged)
	}
	if v.Iterations() != want.Iterations {
		t.Fatalf("%s: view iterations=%d, want %d", label, v.Iterations(), want.Iterations)
	}
	if v.Schedulable() != want.Schedulable() {
		t.Fatalf("%s: view schedulable=%v, want %v", label, v.Schedulable(), want.Schedulable())
	}
	for i := range want.Flows {
		got := v.Flow(i)
		if !reflect.DeepEqual(got, want.Flows[i]) {
			t.Fatalf("%s: flow %d diverged:\ngot:  %+v\nwant: %+v", label, i, got, want.Flows[i])
		}
	}
}

// TestResultViewMatchesAnalyze pins the basic contract: the view of a
// converged engine reports the same verdict, bounds and metadata as the
// detached Analyze result, Materialize reproduces it exactly, and the
// bounds-checked accessors behave as documented.
func TestResultViewMatchesAnalyze(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range []*network.FlowSpec{
		voipOn("v1", "a1", "sA", "a2"),
		voipOn("v2", "a2", "sA", "sB", "b1"),
		voipOn("v3", "b2", "sB", "b3"),
	} {
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	v, err := eng.AnalyzeView()
	if err != nil {
		t.Fatal(err)
	}
	checkViewMatches(t, "fresh view", v, res)
	if _, err := v.FlowByIndex(99); err == nil {
		t.Fatal("FlowByIndex(99) accepted an out-of-range index")
	}
	if _, err := v.FlowByIndex(-1); err == nil {
		t.Fatal("FlowByIndex(-1) accepted a negative index")
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("ResultView.Flow(99) did not panic")
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, "99") {
				t.Fatalf("panic message %q does not name the index", msg)
			}
		}()
		v.Flow(99)
	}()
	mat := v.Materialize()
	compareResults(t, mat, res)
	if len(eng.views) != 0 {
		t.Fatalf("materialize left %d views pinned", len(eng.views))
	}
	// Result.Flow mirrors the descriptive-panic contract.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Result.Flow(99) did not panic")
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, "99") {
				t.Fatalf("panic message %q does not name the index", msg)
			}
		}()
		res.Flow(99)
	}()
	if _, err := res.FlowByIndex(len(res.Flows)); err == nil {
		t.Fatal("Result.FlowByIndex accepted an out-of-range index")
	}
}

// TestResultViewCloseSemantics pins the release contract: Close before
// Materialize gives the data up (Materialize returns nil, reads panic),
// Close after Materialize keeps the cached Result serving, and both
// release the engine pin.
func TestResultViewCloseSemantics(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddFlow(voipOn("v1", "a1", "sA", "a2")); err != nil {
		t.Fatal(err)
	}
	v, err := eng.AnalyzeView()
	if err != nil {
		t.Fatal(err)
	}
	v.Close()
	if got := v.Materialize(); got != nil {
		t.Fatalf("Materialize after Close = %v, want nil", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Flow read after Close did not panic")
			}
		}()
		v.Flow(0)
	}()
	w, err := eng.AnalyzeView()
	if err != nil {
		t.Fatal(err)
	}
	res := w.Materialize()
	w.Close()
	if w.Materialize() != res {
		t.Fatal("Close after Materialize dropped the cached Result")
	}
	if len(eng.views) != 0 {
		t.Fatalf("%d views still pinned", len(eng.views))
	}
}

// TestResultViewStableAcrossMutations retains views across additions,
// removals and re-analyses and asserts each keeps reporting its creation-
// time analysis bit-for-bit — the copy-on-read property the write
// barrier exists for.
func TestResultViewStableAcrossMutations(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts := randomEngineTopo(t, r)
			eng, err := NewEngine(network.New(topo), Config{})
			if err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 5; op++ {
				fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("base%d-%d", seed, op))
				if _, err := eng.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
			}
			type retained struct {
				v      *ResultView
				oracle *Result
				label  string
			}
			var views []retained
			take := func(label string) {
				v, oracle := viewOracle(t, eng)
				views = append(views, retained{v, oracle, label})
			}
			take("initial")
			for round := 0; round < 10; round++ {
				switch r.Intn(3) {
				case 0:
					fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("mut%d-%d", seed, round))
					if _, err := eng.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
				case 1:
					if n := eng.Network().NumFlows(); n > 0 {
						if err := eng.RemoveFlow(r.Intn(n)); err != nil {
							t.Fatal(err)
						}
					}
				case 2:
					if err := eng.Refresh(); err != nil {
						t.Fatal(err)
					}
				}
				if r.Intn(2) == 0 {
					take(fmt.Sprintf("round%d", round))
				}
				for _, re := range views {
					checkViewMatches(t, fmt.Sprintf("round %d, view %s", round, re.label), re.v, re.oracle)
				}
			}
			// Materialized forms must equal the oracles too.
			for _, re := range views {
				compareResults(t, re.v.Materialize(), re.oracle)
			}
		})
	}
}

// TestResultViewSurvivesRestore takes a view of the tentative analysis
// inside a snapshot window and rolls the engine back: the view must keep
// showing the pre-restore (tentative) analysis — the property the
// admission controller's rejected decisions rely on.
func TestResultViewSurvivesRestore(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddFlow(voipOn("base", "a1", "sA", "a2")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Refresh(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if _, err := eng.AddFlow(voipOn("tent", "a1", "sA", "a3")); err != nil {
		t.Fatal(err)
	}
	v, oracle := viewOracle(t, eng)
	if err := eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	checkViewMatches(t, "after restore", v, oracle)
	if err := eng.Refresh(); err != nil {
		t.Fatal(err)
	}
	checkViewMatches(t, "after restore + refresh", v, oracle)
	if got := eng.Network().NumFlows(); got != 1 {
		t.Fatalf("restore left %d flows, want 1", got)
	}
	compareResults(t, v.Materialize(), oracle)
}

// TestResultViewScedulableCounter cross-checks the O(1) Schedulable()
// verdict (engine-maintained counters) against the full scan of the
// materialized result while an engine admits a mix of feasible and
// infeasible flows.
func TestResultViewSchedulableCounter(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	topo, hosts := randomEngineTopo(t, r)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 14; op++ {
		if eng.Network().NumFlows() > 0 && r.Intn(4) == 0 {
			if err := eng.RemoveFlow(r.Intn(eng.Network().NumFlows())); err != nil {
				t.Fatal(err)
			}
		} else {
			fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("f%d", op))
			if _, err := eng.AddFlow(fs); err != nil {
				t.Fatal(err)
			}
		}
		v, err := eng.AnalyzeView()
		if err != nil {
			t.Fatal(err)
		}
		res := v.Materialize()
		if v.Schedulable() != res.Schedulable() {
			t.Fatalf("op %d: O(1) verdict %v, scanned verdict %v", op, v.Schedulable(), res.Schedulable())
		}
		errs := 0
		for i := range res.Flows {
			if res.Flows[i].Err != nil {
				errs++
			}
		}
		if v.StageErrors() != errs {
			t.Fatalf("op %d: StageErrors=%d, scan found %d", op, v.StageErrors(), errs)
		}
	}
}

// FuzzResultView drives random interleavings of AddFlow, RemoveFlow,
// analyses, Snapshot, Restore and Discard through the engine while
// retaining views minted along the way, asserting after every operation
// that each retained view is byte-stable against a deep-clone oracle
// taken at its creation. This is the pin for the write-barrier
// invariant: an engine header is copied into every view that can still
// see it before the engine overwrites it, across splices, re-analyses,
// cold passes and journal rollbacks alike.
func FuzzResultView(f *testing.F) {
	f.Add([]byte{6, 0, 2, 6, 1, 2, 6, 0, 1, 2})       // views across add/remove/analyze churn
	f.Add([]byte{0, 0, 2, 6, 3, 0, 1, 2, 4, 6})       // view taken before a snapshot rollback
	f.Add([]byte{0, 2, 3, 6, 1, 1, 4, 6, 0, 2})       // view inside the window, removals rolled back
	f.Add([]byte{6, 0, 0, 0, 0, 0, 0, 0, 0, 2, 6, 1}) // growth forcing header reallocation
	f.Add([]byte{0, 2, 6, 3, 5, 3, 1, 4, 2, 6})       // discard + re-snapshot between views
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48] // keep each case cheap
		}
		topo, hosts := fuzzTopo(t)
		eng, err := NewEngine(network.New(topo), Config{})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(len(data))))
		type retained struct {
			v      *ResultView
			oracle *Result
			at     int
		}
		var (
			views    []retained
			snap     *Snapshot
			nextFlow int
		)
		for pc, b := range data {
			switch b % 7 {
			case 0: // add
				fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("f%d", nextFlow))
				nextFlow++
				if _, err := eng.AddFlow(fs); err != nil {
					t.Fatal(err)
				}
			case 1: // remove
				if n := eng.Network().NumFlows(); n > 0 {
					if err := eng.RemoveFlow(int(b/7) % n); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // analyze (no retained view)
				if err := eng.Refresh(); err != nil {
					t.Fatal(err)
				}
			case 3: // snapshot (supersedes any outstanding one)
				snap = eng.Snapshot()
			case 4: // restore
				if snap == nil {
					continue
				}
				if err := eng.Restore(snap); err != nil {
					t.Fatalf("op %d: restore: %v", pc, err)
				}
				snap = nil
			case 5: // discard
				eng.Discard(snap)
				snap = nil
			case 6: // mint and retain a view (with its deep-clone oracle)
				v, oracle := viewOracle(t, eng)
				views = append(views, retained{v: v, oracle: oracle, at: pc})
				if len(views) > 6 {
					views[0].v.Close()
					views = views[1:]
				}
			}
			for _, re := range views {
				checkViewMatches(t, fmt.Sprintf("op %d (view from op %d)", pc, re.at), re.v, re.oracle)
			}
		}
		// Materialized forms must equal the oracles, and the engine must
		// still agree with a cold analysis after all the churn.
		for _, re := range views {
			compareResults(t, re.v.Materialize(), re.oracle)
		}
		res, err := eng.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		ref := network.New(topo)
		for _, fs := range eng.Network().Flows() {
			if _, err := ref.AddFlow(fs); err != nil {
				t.Fatal(err)
			}
		}
		an, err := NewAnalyzer(ref, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := an.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, res, cold)
	})
}
