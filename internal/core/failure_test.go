package core

import (
	"errors"
	"strings"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// TestDivergenceOnTinyMaxBusy: with an absurdly small busy-period cap the
// analysis must fail with a DivergenceError instead of looping or
// returning an optimistic bound.
func TestDivergenceOnTinyMaxBusy(t *testing.T) {
	// Two 6.2 ms frames share the link: the busy period grows to ~12.3 ms,
	// beyond the 8 ms cap.
	mk := func(name string) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:  oneFrameFlow(name, 5*11840-64, 100*ms, 100*ms, 0),
			Route: []network.NodeID{"h1", "h2"},
		}
	}
	nw := directLinkNet(t, mk("a"), mk("b"))
	an, err := NewAnalyzer(nw, Config{MaxBusy: 8 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable() {
		t.Fatal("capped analysis reported schedulable")
	}
	var de *DivergenceError
	if !errors.As(res.Flow(0).Err, &de) {
		t.Fatalf("error = %v, want DivergenceError", res.Flow(0).Err)
	}
	if de.Flow != "a" || de.Frame != 0 {
		t.Fatalf("divergence details: %+v", de)
	}
	if !strings.Contains(de.Error(), "diverged") {
		t.Fatalf("error text %q", de.Error())
	}
}

// TestFixpointIterationCap: a pathological fixpoint function must stop at
// MaxFixpointIter.
func TestFixpointIterationCap(t *testing.T) {
	nw := directLinkNet(t, &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	})
	an, err := NewAnalyzer(nw, Config{MaxFixpointIter: 3, MaxBusy: units.Hour})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, errFix := an.fixpoint(Resource{}, "x", 0, 1, func(x units.Time) units.Time {
		calls++
		return x + 1 // never converges
	})
	var de *DivergenceError
	if !errors.As(errFix, &de) {
		t.Fatalf("error = %v, want DivergenceError", errFix)
	}
	if calls != 3 {
		t.Fatalf("fixpoint ran %d times, want 3", calls)
	}
}

// TestHolisticIterationCap: forcing MaxHolisticIter to 1 must report
// non-convergence on a scenario that needs 2+ passes, and the verdict must
// be unschedulable (jitters unconfirmed).
func TestHolisticIterationCap(t *testing.T) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
	nw := network.New(topo)
	for i, src := range []network.NodeID{"0", "1"} {
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     mpegLike(string(src)),
			Route:    []network.NodeID{src, "4", "6", "3"},
			Priority: network.Priority(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	an, err := NewAnalyzer(nw, Config{MaxHolisticIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("one pass cannot confirm the fixpoint here")
	}
	if res.Schedulable() {
		t.Fatal("unconverged result must not be schedulable")
	}
}

// TestJitterStatePanicsOnUnknownStage guards the internal invariant that
// stages only record jitters at positions on the flow's own pipeline.
func TestJitterStatePanicsOnUnknownStage(t *testing.T) {
	nw := directLinkNet(t, &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	})
	js := newJitterState(nw)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-pipeline stage")
		}
	}()
	js.set(0, 7, 0, ms) // a direct link has exactly one stage
}

// TestFlowResourcesLayout pins the pipeline decomposition used by both the
// analysis and the jitter bookkeeping.
func TestFlowResourcesLayout(t *testing.T) {
	fs := &network.FlowSpec{
		Route: []network.NodeID{"a", "s1", "s2", "b"},
	}
	got := flowResources(fs)
	want := []Resource{
		{Kind: KindLink, Node: "a", To: "s1"},
		{Kind: KindIngress, Node: "s1", To: "a"},
		{Kind: KindLink, Node: "s1", To: "s2"},
		{Kind: KindIngress, Node: "s2", To: "s1"},
		{Kind: KindLink, Node: "s2", To: "b"},
	}
	if len(got) != len(want) {
		t.Fatalf("resources = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resource %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestJitterStateExtraOfUnknown returns zero rather than panicking: the
// interference sums legitimately probe flows whose pipelines do not cross
// the queried resource.
func TestJitterStateExtraOfUnknown(t *testing.T) {
	nw := directLinkNet(t, &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	})
	js := newJitterState(nw)
	if js.extraOf(0, network.ResourceID(9999)) != 0 {
		t.Fatal("unknown resource reads must be zero")
	}
	if js.extraOf(5, network.ResourceID(0)) != 0 {
		t.Fatal("unknown flow reads must be zero")
	}
}

// TestSourceJitterSeedsFirstResource pins the holistic starting point.
func TestSourceJitterSeedsFirstResource(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 3*ms),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	nw := oneSwitchNet(t, fs)
	js := newJitterState(nw)
	if got := js.get(0, 0, 0); got != 3*ms {
		t.Fatalf("first-resource jitter = %v, want 3ms", got)
	}
	if got := js.get(0, 1, 0); got != 0 {
		t.Fatalf("downstream jitter = %v, want 0", got)
	}
	// The interned pipeline mirrors the stage decomposition, so reads by
	// dense resource id agree with reads by position.
	rid0 := nw.FlowResources(0)[0]
	if got := js.extraOf(0, rid0); got != 3*ms {
		t.Fatalf("extraOf(first hop) = %v, want 3ms", got)
	}
}

// TestFlowResourcesAlignWithNetworkIDs pins the contract between the
// analysis pipeline order and the network's interned resource ids.
func TestFlowResourcesAlignWithNetworkIDs(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	nw := oneSwitchNet(t, fs)
	rids := nw.FlowResources(0)
	resources := flowResources(nw.Flow(0))
	if len(rids) != len(resources) {
		t.Fatalf("pipeline lengths differ: %d ids vs %d resources", len(rids), len(resources))
	}
	for pos, res := range resources {
		var id network.ResourceID
		var ok bool
		if res.Kind == KindIngress {
			id, ok = nw.IngressResourceID(res.Node, res.To)
		} else {
			id, ok = nw.LinkResourceID(res.Node, res.To)
		}
		if !ok || id != rids[pos] {
			t.Fatalf("stage %d (%v): interned id %d (ok=%v), pipeline id %d", pos, res, id, ok, rids[pos])
		}
	}
}
