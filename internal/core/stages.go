package core

import (
	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// hoistInterference fills the analyzer's scratch buffers with the
// loop-invariant inputs of a stage's fixpoints: each listed flow's demand
// at the link rate and its entry jitter at the stage's resource. Both are
// constant while the busy-period and response-time windows iterate, so
// hoisting them out of the fixpoint closures removes every demand-cache
// lookup and pipeline scan from the innermost loops.
func (a *Analyzer) hoistInterference(flows []int, rate units.BitRate, rid network.ResourceID, js jitterSource) ([]*gmf.Demand, []units.Time) {
	dems := a.demScratch[:0]
	exts := a.extScratch[:0]
	for _, j := range flows {
		dems = append(dems, a.demand(j, rate))
		exts = append(exts, js.extraOf(j, rid))
	}
	a.demScratch, a.extScratch = dems, exts
	return dems, exts
}

// firstHop implements Section 3.2 (eqs. 14-20): the response time of frame
// k of flow i on the link out of the source node, where the source's
// queuing discipline is any work-conserving one and therefore every flow
// on the link interferes regardless of priority.
//
// It returns the bound including the link's propagation delay (eq. 19).
func (a *Analyzer) firstHop(i, k int, js jitterSource) (units.Time, error) {
	fs := a.nw.Flow(i)
	from, to := fs.Route[0], fs.Route[1]
	link := a.nw.Topo.Link(from, to)
	res := Resource{Kind: KindLink, Node: from, To: to}
	rid := a.nw.FlowResources(i)[0]
	flows := a.nw.FlowsOn(from, to)
	dems, exts := a.hoistInterference(flows, link.Rate, rid, js)

	// Convergence condition (20): total utilisation strictly below 1.
	var util float64
	for _, d := range dems {
		util += d.Utilization()
	}
	if util >= 1 {
		return 0, &OverloadError{Resource: res, Utilization: util}
	}

	di := a.demand(i, link.Rate)
	ci := di.Cost(k)

	// Busy-period length (14)-(15). The paper seeds t⁰ = 0, a trivial
	// fixpoint; we seed with the frame's own cost (DESIGN.md F2).
	busy, err := a.fixpoint(res, fs.Flow.Name, k, ci, func(t units.Time) units.Time {
		var next units.Time
		for idx := range dems {
			next += dems[idx].MX(t + exts[idx])
		}
		return next
	})
	if err != nil {
		return 0, err
	}

	// Eqs. (16)-(19): per-instance backlog and response time.
	q1 := units.CeilDivTime(busy, di.TSUM())
	var r, w units.Time
	for q := int64(0); q < q1; q++ {
		self := units.Time(q) * di.CSUM()
		// Seed one picosecond above the self demand so that MX counts the
		// critical-instant releases of interfering flows; a zero-length
		// window would be a degenerate fixpoint (DESIGN.md F2). The
		// previous instance's window is an exact warm seed on top of
		// that: the self term grows with q, so f_q(w) - w = self_q -
		// self_{q-1} >= 0 at w = w(q-1), and no fixpoint of f_q can hide
		// below w(q-1) (on [seed, w(q-1)) the previous map already
		// satisfied f(x) > x, and f_q >= f_{q-1} pointwise). The q loop
		// therefore telescopes — total staircase work proportional to
		// the final window, not q1 full climbs — and returns bit-for-bit
		// the same windows the cold seed would.
		seed := self + 1
		if w > seed {
			seed = w
		}
		var err error
		w, err = a.fixpoint(res, fs.Flow.Name, k, seed, func(w units.Time) units.Time {
			next := self
			for idx, j := range flows {
				if j == i {
					continue
				}
				next += dems[idx].MX(w + exts[idx])
			}
			return next
		})
		if err != nil {
			return 0, err
		}
		if rq := w - units.Time(q)*di.TSUM() + ci; rq > r {
			r = rq
		}
	}
	return r + link.Prop, nil
}

// ingress implements Section 3.3 (eqs. 21-27): the in(N) stage of switch
// N = route[h]. Ethernet frames arriving on the input interface from
// prec(τi,N) wait for their per-interface route task, which is serviced
// once every CIRC(N); every fragment costs one service slot.
func (a *Analyzer) ingress(i, k, h int, js jitterSource) (units.Time, error) {
	fs := a.nw.Flow(i)
	node, pred := fs.Route[h], fs.Route[h-1]
	res := Resource{Kind: KindIngress, Node: node, To: pred}
	rid := a.nw.FlowResources(i)[2*h-1]
	link := a.nw.Topo.Link(pred, node)
	circ, err := a.nw.Topo.CIRC(node)
	if err != nil {
		return 0, err
	}
	flows := a.nw.FlowsOn(pred, node)
	dems, exts := a.hoistInterference(flows, link.Rate, rid, js)

	// Long-run processing demand on the input task must stay below 1.
	var util float64
	for _, d := range dems {
		util += d.CountUtilization(circ)
	}
	if util >= 1 {
		return 0, &OverloadError{Resource: res, Utilization: util}
	}

	di := a.demand(i, link.Rate)
	nf := di.Count(k) // Ethernet fragments of frame k

	// Busy-period length (21)-(22), seeded with one service slot
	// (DESIGN.md F2).
	busy, err := a.fixpoint(res, fs.Flow.Name, k, circ, func(t units.Time) units.Time {
		var frames int64
		for idx := range dems {
			frames += dems[idx].NX(t + exts[idx])
		}
		return units.Time(frames) * circ
	})
	if err != nil {
		return 0, err
	}

	// Eqs. (23)-(26). ModePaper finishes the frame with a single CIRC
	// (eq. 25 as printed); ModeSound charges one slot per fragment
	// (DESIGN.md F4).
	completion := circ
	if a.cfg.Mode == ModeSound {
		completion = units.Time(nf) * circ
	}
	q1 := units.CeilDivTime(busy, di.TSUM())
	var r, w units.Time
	for q := int64(0); q < q1; q++ {
		self := units.Time(q*di.NSUM()) * circ
		// Seed above the self demand for the same critical-instant reason
		// as in firstHop, warm-started from the previous instance's
		// window (exact: see firstHop).
		seed := self + 1
		if w > seed {
			seed = w
		}
		var err error
		w, err = a.fixpoint(res, fs.Flow.Name, k, seed, func(w units.Time) units.Time {
			next := self
			for idx, j := range flows {
				if j == i {
					continue
				}
				next += units.Time(dems[idx].NX(w+exts[idx])) * circ
			}
			return next
		})
		if err != nil {
			return 0, err
		}
		if rq := w - units.Time(q)*di.TSUM() + completion; rq > r {
			r = rq
		}
	}
	return r, nil
}

// egress implements Section 3.4 (eqs. 28-35): from the moment all
// fragments of the frame sit in switch N's prioritised output queue toward
// succ(τi,N) until they are received there. Interference comes from
// higher-or-equal-priority flows (transmission plus their stride slots), a
// blocking term of one maximum-size frame already on the wire, and — in
// ModeSound — the analysed flow's own stride slots (DESIGN.md F5).
func (a *Analyzer) egress(i, k, h int, js jitterSource) (units.Time, error) {
	fs := a.nw.Flow(i)
	node, to := fs.Route[h], fs.Route[h+1]
	link := a.nw.Topo.Link(node, to)
	res := Resource{Kind: KindLink, Node: node, To: to}
	rid := a.nw.FlowResources(i)[2*h]
	circ, err := a.nw.Topo.CIRC(node)
	if err != nil {
		return 0, err
	}
	hep := a.nw.AppendHEP(a.hepScratch[:0], i, node, to)
	a.hepScratch = hep
	mft := ether.MFT(link.Rate)
	dems, exts := a.hoistInterference(hep, link.Rate, rid, js)
	di := a.demand(i, link.Rate)
	selfExt := js.extraOf(i, rid)

	// Convergence condition (35) over hep ∪ {τi} (DESIGN.md F3), widened
	// with the stride service demand that also enters the busy period.
	util := di.Utilization() + di.CountUtilization(circ)
	for _, d := range dems {
		util += d.Utilization() + d.CountUtilization(circ)
	}
	if util >= 1 {
		return 0, &OverloadError{Resource: res, Utilization: util}
	}

	ci := di.Cost(k)
	nf := di.Count(k)

	interference := func(t units.Time, includeSelf bool) units.Time {
		var sum units.Time
		for idx := range dems {
			win := t + exts[idx]
			sum += dems[idx].MX(win) + units.Time(dems[idx].NX(win))*circ
		}
		if includeSelf {
			win := t + selfExt
			sum += di.MX(win) + units.Time(di.NX(win))*circ
		}
		return sum
	}

	// Level-i busy-period length (28)-(29), including the analysed flow's
	// own demand so that the busy period covers all its instances
	// (DESIGN.md F3).
	busy, err := a.fixpoint(res, fs.Flow.Name, k, mft, func(t units.Time) units.Time {
		return mft + interference(t, true)
	})
	if err != nil {
		return 0, err
	}

	// Eqs. (30)-(33).
	q1 := units.CeilDivTime(busy, di.TSUM())
	var r, w units.Time
	for q := int64(0); q < q1; q++ {
		self := units.Time(q) * di.CSUM()
		completion := ci
		if a.cfg.Mode == ModeSound {
			self += units.Time(q*di.NSUM()) * circ
			completion += units.Time(nf) * circ
		}
		// Warm seed from the previous instance's window (exact: see
		// firstHop).
		seed := mft + self
		if w > seed {
			seed = w
		}
		var err error
		w, err = a.fixpoint(res, fs.Flow.Name, k, seed, func(w units.Time) units.Time {
			return mft + self + interference(w, false)
		})
		if err != nil {
			return 0, err
		}
		if rq := w - units.Time(q)*di.TSUM() + completion; rq > r {
			r = rq
		}
	}
	return r + link.Prop, nil
}

// fixpoint iterates x ← f(x) from the given seed until convergence,
// diverging when the iterate exceeds Config.MaxBusy or the iteration count
// exceeds Config.MaxFixpointIter. f must be monotone and satisfy
// f(seed) >= seed for the least-fixpoint argument to hold.
func (a *Analyzer) fixpoint(res Resource, flow string, frame int, seed units.Time, f func(units.Time) units.Time) (units.Time, error) {
	x := seed
	for iter := 0; iter < a.cfg.MaxFixpointIter; iter++ {
		next := f(x)
		if next == x {
			return x, nil
		}
		x = next
		if x > a.cfg.MaxBusy {
			return 0, &DivergenceError{Resource: res, Flow: flow, Frame: frame}
		}
	}
	return 0, &DivergenceError{Resource: res, Flow: flow, Frame: frame}
}
