package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gmfnet/internal/network"
)

// Scheduler runs a ShardedEngine across cores: every shard gets a
// serial mailbox that owns the shard's Engine, so decisions within one
// interference closure stay strictly ordered while distinct closures
// proceed concurrently on a pool of Config.PoolWorkers persistent
// worker goroutines. Bodies run on the long-lived workers rather than
// the per-shard goroutines so the deep analysis recursion grows a
// stack once per worker, not once per shard — shard churn stays cheap.
//
// Dispatch concurrency model. Routing state — the resource→shard map —
// lives in the ShardedEngine's striped routeTable, so the hot dispatch
// path touches no scheduler-global lock at all:
//
//   - Fast path (the steady state: a group whose resources are owned by
//     exactly one existing shard, plus any number of unowned keys).
//     Under a shared disp.RLock the dispatcher resolves the owner from
//     the stripes, claims every key with per-stripe atomic
//     claim-or-fail, bumps the in-flight count and enqueues the group —
//     concurrent dispatches into distinct closures only ever share a
//     stripe lock, and only when their resources hash together.
//   - Slow path (fresh shard, fusion across shards, or a lost claim
//     race). Under the exclusive disp.Lock the dispatcher re-resolves
//     routing authoritatively and performs the partition surgery.
//     Fusion, re-split, shard drop and index rebuild all run here, so
//     the fast path can rely on shard liveness and route stability for
//     the duration of its RLock.
//
// A claim conflict (two dispatches racing an unowned resource to
// different shards) is detected by the stripe's claim-or-fail, rolled
// back, and retried on the slow path, where the race resolves into a
// fusion or a queue-behind — decisions are unaffected either way (see
// the dispatch-equivalence note on Submit).
//
// Fusion is handled as ownership transfer. When a group's pipeline
// bridges several shards, the dispatcher immediately re-routes the
// victims' resources to the survivor (pure bookkeeping — fuseRoutes),
// so later dispatches land on the survivor's mailbox and stay ordered
// behind the fusing group. Each victim's queue then drains: a sentinel
// task on the victim's mailbox marks the moment its engine goes
// quiescent, and the survivor's task waits for every victim's sentinel
// before splicing their arenas in (adoptFrom) and deciding the group.
// Only that wait blocks a mailbox, and it happens before the task's
// body is handed to the pool, so the pool cannot deadlock: workers only
// ever run non-blocking engine work.
//
// Routing is eager: a group's pipeline resources are owned by its shard
// from dispatch time, and the keys of members that end up rejected are
// disowned when the decision completes. Interleaved dispatches may
// therefore land on a shard that still holds rejected-pending or
// recently-departed routes — decisions are unaffected, the partition is
// merely coarser until the next Flush re-splits it.
//
// Re-splitting is deferred to quiescence: fused-then-rejected groups
// and departures mark the partition dirty, and Flush — once every
// in-flight task has completed — runs Resplit and rebuilds the
// dispatcher's indexes. Running it eagerly would have to stop the world
// anyway (Resplit walks every shard), so batching it at the flush
// boundary costs nothing and keeps the hot path wait-free.
//
// A Scheduler is safe for concurrent use by multiple dispatching
// goroutines. Close shuts the mailboxes down; the wrapped ShardedEngine
// is consistent and single-thread usable afterwards.
type Scheduler struct {
	se   *ShardedEngine
	work chan poolItem  // task bodies, executed by the worker pool
	pool sync.WaitGroup // worker goroutines

	wg sync.WaitGroup // live mailbox goroutines

	// disp is the fast/slow dispatch gate: shared holders (dispatch,
	// completion, Remove) rely on routes and shards staying live;
	// exclusive holders (fusion, fresh shards, drop, re-split, rebuild,
	// close) restructure the partition. It serialises nothing on the
	// fast path — the striped routeTable and the leaf locks below do.
	disp   sync.RWMutex
	closed bool // written under disp.Lock, read under either mode

	// bk guards the dispatcher's flow bookkeeping. forward is not under
	// bk: it is written only under disp.Lock and read under disp.RLock.
	bk        sync.Mutex
	specShard map[*network.FlowSpec]*shard // committed flow -> owning shard
	flowCount map[*shard]int               // committed flows per shard (dispatcher's view)
	forward   map[*shard]*shard            // fused victim -> survivor

	boxMu sync.Mutex
	boxes map[*shard]*mailbox

	qmu      sync.Mutex
	quiet    *sync.Cond // signalled when inflight drops to zero
	inflight int

	errMu sync.Mutex
	err   error // first asynchronous failure; surfaced by Flush

	needResplit atomic.Bool
}

// GroupRun decides one dispatched interference group on a pool worker,
// serialised by the shard's mailbox. members indexes the submitted
// batch; eng is the shard engine (owned by the calling goroutine for
// the duration — no other task can touch it). A non-nil dispatchErr means the group could
// not be placed or fused (eng is then unusable for it); the callback
// must not decide anything and should record the error. The returned
// flags, aligned with members, report which members were admitted —
// the scheduler keeps their resource routes and releases the rest.
// State read through eng (including ResultViews) must not escape the
// callback: materialize anything the caller needs.
type GroupRun func(members []int, eng *Engine, dispatchErr error) []bool

// NewScheduler wraps the engine. The engine must not be used directly
// (other than read-only topology access) until Close returns; flows
// already present stay owned by their shards and are indexed for
// Remove.
func NewScheduler(se *ShardedEngine) *Scheduler {
	s := &Scheduler{
		se:        se,
		work:      make(chan poolItem),
		boxes:     make(map[*shard]*mailbox),
		specShard: make(map[*network.FlowSpec]*shard),
		forward:   make(map[*shard]*shard),
		flowCount: make(map[*shard]int),
	}
	s.quiet = sync.NewCond(&s.qmu)
	workers := se.cfg.PoolWorkers()
	s.pool.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer s.pool.Done()
			for it := range s.work {
				it.body(it.eng)
				it.done <- struct{}{}
			}
		}()
	}
	for _, sh := range se.shards {
		nw := sh.eng.Network()
		s.flowCount[sh] = nw.NumFlows()
		for i := 0; i < nw.NumFlows(); i++ {
			s.specShard[nw.Flow(i)] = sh
		}
	}
	return s
}

// Sharded exposes the wrapped engine. Safe uses while the scheduler is
// live: topology reads and ValidateSpecs (both touch only the shared
// read-only topology). Anything else requires quiescence.
func (s *Scheduler) Sharded() *ShardedEngine { return s.se }

// Submit partitions the specs into interference groups (exactly
// PlaceBatch's partition: specs sharing a resource directly, through a
// chain of batch specs, or through a common shard) and dispatches each
// group to its closure's mailbox, fusing shards as needed. prepare, if
// non-nil, is called with the group index lists before any group can
// start — use it to record how many completions to expect. run is then
// invoked once per group on its shard's goroutine; distinct groups run
// concurrently, groups on one shard in dispatch order.
//
// Dispatch equivalence: because routing is eager — and because the
// grouping itself reads the striped routes without a global lock — a
// submission may see routes of not-yet-decided or just-rejected members
// of earlier submissions and land in a coarser group (or fused shard)
// than a serial run would use, or split what a stable snapshot would
// have grouped (the members then serialise on the shared shard's
// mailbox and are decided as consecutive sub-batches). Decisions are
// identical regardless: a shard holding several disjoint closures
// decides a request exactly as the split shards would (residual
// residents are schedulable — admission only ever admits schedulable
// sets and removal shrinks interference — so the verdict reduces to
// the request's own closure), a monolithic decision over resource-
// disjoint groups equals the per-group decisions, and a batch decided
// as consecutive sub-batches equals the batch decided whole (the batch
// contract is sequential-equivalent). These are the properties the
// sharded-vs-monolithic differential tests pin.
func (s *Scheduler) Submit(specs []*network.FlowSpec, prepare func(groups [][]int), run GroupRun) {
	// The commit half of a group outlives the caller's Wait (the
	// decision callback fires first), so the slice is copied here:
	// callers may reuse their backing array as soon as their own
	// completion signal fires. The specs themselves must stay
	// unmodified until their decisions complete.
	specs = append([]*network.FlowSpec(nil), specs...)
	keys := make([][]Resource, len(specs))
	for i := range specs {
		keys[i] = specKeys(specs[i])
	}
	s.disp.RLock()
	closed := s.closed
	s.disp.RUnlock()
	if closed {
		panic("core: Submit on a closed Scheduler")
	}
	groups := s.se.groupByKeys(keys)
	if prepare != nil {
		prepare(groups)
	}
	for _, idx := range groups {
		s.dispatchGroup(specs, keys, idx, run)
	}
}

// dispatchGroup routes one group: the lock-free fast path when its
// resources already belong to exactly one shard, the exclusive slow
// path for fresh shards, fusion, and lost claim races.
func (s *Scheduler) dispatchGroup(specs []*network.FlowSpec, keys [][]Resource, idx []int, run GroupRun) {
	total := 0
	for _, i := range idx {
		total += len(keys[i])
	}
	gkeys := make([]Resource, 0, total)
	for _, i := range idx {
		gkeys = append(gkeys, keys[i]...)
	}
	if s.tryDispatchFast(gkeys, specs, keys, idx, run) {
		return
	}
	s.disp.Lock()
	defer s.disp.Unlock()
	s.dispatchGroupSlow(gkeys, specs, keys, idx, run)
}

// tryDispatchFast dispatches a group whose keys are owned by exactly
// one live shard (unowned keys are claimed for it) without the
// exclusive lock. It fails — changing nothing — when the group touches
// no shard (fresh closure), bridges several (fusion), or loses a claim
// race to a concurrent dispatch.
func (s *Scheduler) tryDispatchFast(gkeys []Resource, specs []*network.FlowSpec, keys [][]Resource, idx []int, run GroupRun) bool {
	if len(gkeys) == 0 {
		return false // malformed specs go to a fresh shard via the slow path
	}
	s.disp.RLock()
	var target *shard
	for _, k := range gkeys {
		sh := s.se.routes.owner(k)
		if sh == nil {
			continue
		}
		if target == nil {
			target = sh
		} else if target != sh {
			s.disp.RUnlock()
			return false
		}
	}
	if target == nil {
		s.disp.RUnlock()
		return false
	}
	// Eager routing with per-stripe claim-or-fail: a concurrent
	// dispatch racing one of the unowned keys to another shard makes
	// the claim fail, the whole group rolls back and retries under
	// exclusion. The RLock keeps target live (drop, fusion and
	// re-split are exclusive), so a successful claim set cannot dangle.
	if !s.se.tryOwn(target, gkeys) {
		s.disp.RUnlock()
		return false
	}
	s.enqueueGroup(target, nil, nil, specs, keys, idx, 0, run)
	s.disp.RUnlock()
	return true
}

// dispatchGroupSlow is the exclusive-path dispatcher: fresh shards,
// fusion as ownership transfer, and the authoritative retry after a
// fast-path claim race. Caller holds disp.Lock.
func (s *Scheduler) dispatchGroupSlow(gkeys []Resource, specs []*network.FlowSpec, keys [][]Resource, idx []int, run GroupRun) {
	touched := s.se.touching(gkeys)
	var target *shard
	var victims []*shard
	if len(touched) == 0 {
		t, err := s.se.newShard()
		if err != nil {
			// Unreachable for a validated topology; account the group
			// synchronously so the caller's completion count stays exact.
			s.setErr(err)
			run(idx, nil, err)
			return
		}
		target = t
		s.bk.Lock()
		s.flowCount[target] = 0
		s.bk.Unlock()
	} else {
		s.bk.Lock()
		target = fusionSurvivor(touched, func(sh *shard) int { return s.flowCount[sh] })
		s.bk.Unlock()
		for _, sh := range touched {
			if sh != target {
				victims = append(victims, sh)
			}
		}
	}

	// Ownership transfer, bookkeeping half: re-route the victims' keys
	// to the survivor NOW, so every later dispatch for those resources
	// queues behind this group on the survivor's mailbox.
	var handoff *sync.WaitGroup
	victimEngines := make([]*Engine, 0, len(victims))
	if len(victims) > 0 {
		handoff = new(sync.WaitGroup)
		handoff.Add(len(victims))
		for _, v := range victims {
			s.se.fuseRoutes(target, v)
			s.forward[v] = target
			s.bk.Lock()
			s.flowCount[target] += s.flowCount[v]
			delete(s.flowCount, v)
			s.bk.Unlock()
			victimEngines = append(victimEngines, v.eng)
			s.boxMu.Lock()
			vb := s.boxes[v]
			delete(s.boxes, v)
			s.boxMu.Unlock()
			if vb == nil {
				// The victim never ran a task; its engine is quiescent
				// and the enqueue below publishes it to the survivor.
				handoff.Done()
				continue
			}
			// Sentinel: fires once every task queued before the fusion
			// has finished, then retires the mailbox. Runs as a pre on
			// the victim's own goroutine — never on a pool worker — so
			// it cannot deadlock the pool.
			s.qmu.Lock()
			s.inflight++
			s.qmu.Unlock()
			vb.enqueue(schedTask{pre: func() {
				s.taskDone()
				handoff.Done()
				vb.close()
			}})
		}
	}

	// Eager routing of the group itself; rejected members are disowned
	// at completion, so the net effect equals the serial Commit.
	s.se.own(target, gkeys)
	s.enqueueGroup(target, handoff, victimEngines, specs, keys, idx, len(victims), run)
}

// enqueueGroup raises the in-flight count and queues the group's
// decision task on its shard's mailbox. Caller holds disp (either
// mode), which is what keeps the emptiness check in tryDrop from
// racing this enqueue.
func (s *Scheduler) enqueueGroup(target *shard, handoff *sync.WaitGroup, victimEngines []*Engine, specs []*network.FlowSpec, keys [][]Resource, idx []int, fused int, run GroupRun) {
	s.qmu.Lock()
	s.inflight++
	s.qmu.Unlock()
	task := schedTask{
		body: func(eng *Engine) {
			var err error
			for _, ve := range victimEngines {
				if aerr := eng.adoptFrom(ve); aerr != nil {
					err = fmt.Errorf("core: shard fusion: %w", aerr)
					break
				}
			}
			flags := run(idx, eng, err)
			s.completeGroup(target, specs, keys, idx, flags, fused, err)
		},
	}
	if handoff != nil {
		task.pre = handoff.Wait
	}
	s.boxFor(target).enqueue(task)
}

// completeGroup is the commit half of a dispatched group, still on the
// group's pool worker: admitted members' specs are indexed,
// rejected members' routes released, and a fused-but-rejected group
// marks the partition for re-splitting at the next Flush. The target is
// re-resolved through the fusion forwards: a later dispatch may have
// fused this shard into a survivor while the group was queued, moving
// its routes and counts there — the commit must land on the survivor.
func (s *Scheduler) completeGroup(target *shard, specs []*network.FlowSpec, keys [][]Resource, idx []int, flags []bool, fused int, err error) {
	s.disp.RLock()
	target = s.resolve(target)
	anyRejected := err != nil
	s.bk.Lock()
	for at, i := range idx {
		if flags != nil && flags[at] {
			s.specShard[specs[i]] = target
			s.flowCount[target]++
		} else {
			anyRejected = true
		}
	}
	s.bk.Unlock()
	for at, i := range idx {
		if flags == nil || !flags[at] {
			s.se.disown(target, keys[i])
		}
	}
	if err != nil {
		s.setErr(err)
	}
	if fused > 0 && anyRejected {
		s.needResplit.Store(true)
	}
	empty := s.shardIdle(target)
	s.taskDone()
	s.disp.RUnlock()
	if empty {
		s.tryDrop(target)
	}
}

// Remove dispatches an asynchronous departure of the exact spec to its
// owning shard's mailbox (following fusion forwards), where the flow is
// removed, its shard re-converged, and its resource routes released.
// It reports whether the spec was a tracked resident; the removal
// itself completes later — removal errors surface through Flush.
// Departures on distinct shards run concurrently; a departure and the
// admissions around it on one shard stay in dispatch order.
//
// A group's client-visible completion (the admission fold) runs inside
// its task body, strictly before completeGroup indexes the admitted
// specs — so a caller that observed the admission and immediately
// removes the flow can look it up while the commit is still in flight.
// A miss therefore quiesces once (waiting out every in-flight
// completion, the lagging commit included) and retries before ruling
// the spec untracked.
func (s *Scheduler) Remove(fs *network.FlowSpec) bool {
	if s.tryRemove(fs) {
		return true
	}
	s.Quiesce()
	return s.tryRemove(fs)
}

func (s *Scheduler) tryRemove(fs *network.FlowSpec) bool {
	s.disp.RLock()
	if s.closed {
		s.disp.RUnlock()
		panic("core: Remove on a closed Scheduler")
	}
	s.bk.Lock()
	sh, ok := s.specShard[fs]
	if ok {
		delete(s.specShard, fs) // claimed: a concurrent Remove of the same spec misses
	}
	s.bk.Unlock()
	if !ok {
		s.disp.RUnlock()
		return false
	}
	sh = s.resolve(sh)
	s.qmu.Lock()
	s.inflight++
	s.qmu.Unlock()
	s.boxFor(sh).enqueue(schedTask{body: func(eng *Engine) {
		nw := eng.Network()
		at := -1
		for i := 0; i < nw.NumFlows(); i++ {
			if nw.Flow(i) == fs {
				at = i
				break
			}
		}
		var err error
		var keys []Resource
		if at < 0 {
			err = fmt.Errorf("core: scheduler: tracked flow %q missing from its shard", fs.Flow.Name)
		} else {
			keys = specKeys(nw.Flow(at))
			if err = eng.RemoveFlow(at); err == nil {
				// Removal only shrinks interference; Refresh re-converges
				// the survivors without publishing a result.
				err = eng.Refresh()
			}
		}
		s.disp.RLock()
		// The shard may have been fused into a survivor while this
		// departure was queued; its routes and counts live there now.
		cur := s.resolve(sh)
		if err != nil {
			s.setErr(err)
		} else {
			s.se.disown(cur, keys)
			s.bk.Lock()
			s.flowCount[cur]--
			s.bk.Unlock()
			s.needResplit.Store(true) // a departure can split the closure
		}
		empty := s.shardIdle(cur)
		s.taskDone()
		s.disp.RUnlock()
		if empty {
			s.tryDrop(cur)
		}
	}})
	s.disp.RUnlock()
	return true
}

// resolve follows fusion forwards to the shard that currently owns a
// fused-away shard's flows and routes. forward is written only under
// the exclusive dispatch lock; callers hold disp in either mode.
func (s *Scheduler) resolve(sh *shard) *shard {
	for {
		nxt, ok := s.forward[sh]
		if !ok {
			return sh
		}
		sh = nxt
	}
}

// shardIdle reports whether the shard holds no committed flows and no
// resource routes — a drop candidate.
func (s *Scheduler) shardIdle(sh *shard) bool {
	s.bk.Lock()
	n := s.flowCount[sh]
	s.bk.Unlock()
	return n == 0 && sh.ownedEmpty()
}

// Quiesce blocks until every dispatched task has completed. The shard
// engines are then untouched until the next Submit/Remove, so reads
// through Sharded are safe while the caller prevents new dispatches.
func (s *Scheduler) Quiesce() {
	s.qmu.Lock()
	for s.inflight > 0 {
		s.quiet.Wait()
	}
	s.qmu.Unlock()
}

// lockQuiesced acquires the exclusive dispatch lock with no task in
// flight: wait for quiescence, take the lock, and retry if a dispatch
// slipped in between. On return the caller holds disp.Lock and the
// whole system is idle.
func (s *Scheduler) lockQuiesced() {
	for {
		s.Quiesce()
		s.disp.Lock()
		s.qmu.Lock()
		idle := s.inflight == 0
		s.qmu.Unlock()
		if idle {
			return
		}
		s.disp.Unlock()
	}
}

// Flush quiesces, re-splits the partition if any fused-rejected group
// or departure dirtied it, rebuilds the dispatcher's indexes, and
// returns (and clears) the first asynchronous error since the last
// Flush — fusion splice, removal, or re-split failures. The re-split
// is deferred here deliberately: it is decision-neutral (a fused shard
// decides exactly as its split closures would) and needs the world
// stopped anyway.
func (s *Scheduler) Flush() error {
	s.lockQuiesced()
	defer s.disp.Unlock()
	if s.needResplit.Swap(false) {
		if _, err := s.se.Resplit(); err != nil {
			s.setErr(err)
		}
		s.rebuild()
	}
	s.errMu.Lock()
	err := s.err
	s.err = nil
	s.errMu.Unlock()
	return err
}

// rebuild re-indexes the dispatcher after a re-split: shards were
// replaced wholesale, so specShard/flowCount are rebuilt from the live
// partition, fusion forwards are obsolete, and mailboxes of retired
// shards are closed. Caller holds disp.Lock with the system idle.
func (s *Scheduler) rebuild() {
	live := make(map[*shard]bool, len(s.se.shards))
	for _, sh := range s.se.shards {
		live[sh] = true
	}
	s.boxMu.Lock()
	for sh, mb := range s.boxes {
		if !live[sh] {
			mb.close()
			delete(s.boxes, sh)
		}
	}
	s.boxMu.Unlock()
	s.forward = make(map[*shard]*shard)
	s.bk.Lock()
	s.specShard = make(map[*network.FlowSpec]*shard)
	s.flowCount = make(map[*shard]int)
	for _, sh := range s.se.shards {
		nw := sh.eng.Network()
		s.flowCount[sh] = nw.NumFlows()
		for i := 0; i < nw.NumFlows(); i++ {
			s.specShard[nw.Flow(i)] = sh
		}
	}
	s.bk.Unlock()
}

// NumFlows quiesces and returns the committed flow count across shards.
func (s *Scheduler) NumFlows() int {
	s.lockQuiesced()
	defer s.disp.Unlock()
	return s.se.NumFlows()
}

// NumShards quiesces and returns the number of live shards.
func (s *Scheduler) NumShards() int {
	s.lockQuiesced()
	defer s.disp.Unlock()
	return s.se.NumShards()
}

// Close flushes, retires every mailbox and waits for their goroutines
// to exit, returning Flush's error. The wrapped ShardedEngine is
// consistent afterwards and may be used directly (single-threaded);
// the Scheduler itself must not be used again.
func (s *Scheduler) Close() error {
	err := s.Flush()
	s.lockQuiesced()
	first := !s.closed
	if first {
		s.closed = true
		s.boxMu.Lock()
		for sh, mb := range s.boxes {
			mb.close()
			delete(s.boxes, sh)
		}
		s.boxMu.Unlock()
	}
	s.disp.Unlock()
	s.wg.Wait()
	if first {
		close(s.work)
	}
	s.pool.Wait()
	return err
}

// setErr records the first asynchronous failure.
func (s *Scheduler) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// taskDone retires one in-flight task and wakes quiescence waiters at
// zero.
func (s *Scheduler) taskDone() {
	s.qmu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.quiet.Broadcast()
	}
	s.qmu.Unlock()
}

// tryDrop retires a shard that ended up empty (a fresh shard whose
// only candidates were rejected, or one emptied by departures): no
// committed flows, no owned routes, nothing queued. It runs after the
// emptying task released the dispatch lock — drop restructures the
// partition, so it needs exclusion — and re-checks everything under the
// lock: a Flush may have rebuilt the world, or a re-split dropped the
// shard already, in which case the flowCount entry is gone and there
// is nothing to do. New work cannot arrive while the lock is held, and
// no fast path can route to a shard that owns nothing.
func (s *Scheduler) tryDrop(sh *shard) {
	s.disp.Lock()
	defer s.disp.Unlock()
	if s.closed {
		return
	}
	s.bk.Lock()
	n, live := s.flowCount[sh]
	s.bk.Unlock()
	if !live || n != 0 || !sh.ownedEmpty() {
		return
	}
	s.boxMu.Lock()
	mb := s.boxes[sh]
	s.boxMu.Unlock()
	if mb != nil && !mb.drained() {
		return
	}
	s.se.drop(sh)
	s.bk.Lock()
	delete(s.flowCount, sh)
	s.bk.Unlock()
	if mb != nil {
		mb.close()
		s.boxMu.Lock()
		delete(s.boxes, sh)
		s.boxMu.Unlock()
	}
}

// boxFor returns the shard's mailbox, starting its goroutine on first
// use. Caller holds disp (either mode).
func (s *Scheduler) boxFor(sh *shard) *mailbox {
	s.boxMu.Lock()
	defer s.boxMu.Unlock()
	if mb, ok := s.boxes[sh]; ok {
		return mb
	}
	mb := &mailbox{sched: s, sh: sh, done: make(chan struct{}, 1)}
	mb.cond = sync.NewCond(&mb.mu)
	s.boxes[sh] = mb
	s.wg.Add(1)
	go mb.loop()
	return mb
}

// schedTask is one unit of mailbox work. pre runs first, on the
// mailbox goroutine itself — it is the only part allowed to block
// (fusion handoff waits). body is then handed to a pool worker, which
// owns the shard's engine for the duration; it must not block on other
// tasks.
type schedTask struct {
	pre  func()
	body func(eng *Engine)
}

// poolItem is one body on the worker pool's queue: run it against the
// shard engine, then signal the mailbox that is waiting on done.
type poolItem struct {
	body func(eng *Engine)
	eng  *Engine
	done chan<- struct{}
}

// mailbox serialises one shard's work: a goroutine pops tasks in FIFO
// order, so everything touching the shard's engine is totally ordered.
// The queue is unbounded — dispatch never blocks — and the run-loop
// owns the engine outright between Submit boundaries.
type mailbox struct {
	sched *Scheduler
	sh    *shard
	done  chan struct{} // signalled by the pool worker after each body

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []schedTask
	closed bool
}

func (m *mailbox) enqueue(t schedTask) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("core: enqueue on a closed mailbox")
	}
	m.queue = append(m.queue, t)
	m.cond.Signal()
	m.mu.Unlock()
}

// drained reports whether nothing is queued. The currently executing
// task (if any) is not counted; callers that need full quiescence use
// the scheduler's inflight counter.
func (m *mailbox) drained() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) == 0
}

// close retires the mailbox once the queue drains; idempotent.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// loop is the run-loop-owns-state actor: between one body's handoff to
// the pool and its done signal, exactly one goroutine touches m.sh.eng,
// which is what makes per-closure ordering and engine thread-safety
// structural rather than locked. The loop itself never runs engine
// work, so this goroutine's stack stays small no matter how deep the
// analysis recursion goes.
func (m *mailbox) loop() {
	defer m.sched.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		if t.pre != nil {
			t.pre()
		}
		if t.body != nil {
			m.sched.work <- poolItem{body: t.body, eng: m.sh.eng, done: m.done}
			<-m.done
		}
	}
}
