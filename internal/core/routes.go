package core

import "sync"

// routeStripes is the number of independently locked buckets the
// resource→shard routing table is split across. Power of two (the
// stripe index is a hash mask). 64 stripes keep the probability of two
// concurrent dispatches serialising on the same stripe low even at
// high core counts, while the table stays small enough to embed in
// every ShardedEngine by value.
const routeStripes = 64

// routeTable is the striped resource→shard routing map: the shared
// state every dispatch consults and the reason dispatch used to need a
// global lock. Each stripe guards its own bucket, so routing lookups
// and claims for different resources proceed concurrently; only
// operations that restructure the partition itself (fusion, re-split,
// shard drop) still need global exclusion, which the Scheduler provides
// with an RWMutex around the rare paths.
//
// An entry carries the owning shard and a refcount: how many committed
// (or in-flight, eagerly routed) flows' pipelines cross the resource.
// The stripe entry is the authoritative count; shard.owned mirrors it
// as a per-shard enumeration index (fusion and drop need "all keys of
// this shard" without scanning every stripe). Both are updated under
// the stripe lock — the shard's own lock nests inside — so the pair
// can never be observed out of sync.
type routeTable struct {
	stripes [routeStripes]routeStripe
}

type routeStripe struct {
	mu sync.Mutex
	m  map[Resource]routeEnt
}

type routeEnt struct {
	sh   *shard
	refs int
}

// stripe picks the bucket for a key: FNV-1a over the resource fields.
func (t *routeTable) stripe(k Resource) *routeStripe {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h ^= uint32(k.Kind)
	h *= prime32
	for i := 0; i < len(k.Node); i++ {
		h ^= uint32(k.Node[i])
		h *= prime32
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime32
	for i := 0; i < len(k.To); i++ {
		h ^= uint32(k.To[i])
		h *= prime32
	}
	return &t.stripes[h&(routeStripes-1)]
}

// owner returns the shard the key is routed to, or nil.
func (t *routeTable) owner(k Resource) *shard {
	st := t.stripe(k)
	st.mu.Lock()
	e := st.m[k]
	st.mu.Unlock()
	return e.sh
}

// claim routes the key to sh with refcount +1 — unless another shard
// owns it, in which case nothing changes and claim reports false. This
// is the dispatch fast path's conflict detector: claims for the same
// key serialise on its stripe, so two dispatches racing to route an
// unowned key to different shards cannot both succeed.
func (t *routeTable) claim(k Resource, sh *shard) bool {
	st := t.stripe(k)
	st.mu.Lock()
	e, ok := st.m[k]
	if ok && e.sh != sh {
		st.mu.Unlock()
		return false
	}
	if st.m == nil {
		st.m = make(map[Resource]routeEnt)
	}
	st.m[k] = routeEnt{sh: sh, refs: e.refs + 1}
	sh.mu.Lock()
	sh.owned[k]++
	sh.mu.Unlock()
	st.mu.Unlock()
	return true
}

// route is the unconditional form of claim for the serial placement
// paths (Place/Commit and the scheduler's exclusive dispatch), whose
// callers guarantee the key is unowned or already routed to sh —
// bridging shards are fused before any key is routed.
func (t *routeTable) route(k Resource, sh *shard) {
	st := t.stripe(k)
	st.mu.Lock()
	e := st.m[k]
	refs := 1
	if e.sh == sh {
		refs = e.refs + 1
	}
	if st.m == nil {
		st.m = make(map[Resource]routeEnt)
	}
	st.m[k] = routeEnt{sh: sh, refs: refs}
	sh.mu.Lock()
	sh.owned[k]++
	sh.mu.Unlock()
	st.mu.Unlock()
}

// release undoes one claim: refcount −1, unrouting the key at zero so
// a later newcomer on the resource opens a fresh closure. A key not
// routed to sh is left untouched.
func (t *routeTable) release(k Resource, sh *shard) {
	st := t.stripe(k)
	st.mu.Lock()
	e, ok := st.m[k]
	if !ok || e.sh != sh {
		st.mu.Unlock()
		return
	}
	sh.mu.Lock()
	if e.refs <= 1 {
		delete(st.m, k)
		delete(sh.owned, k)
	} else {
		st.m[k] = routeEnt{sh: sh, refs: e.refs - 1}
		sh.owned[k] = e.refs - 1
	}
	sh.mu.Unlock()
	st.mu.Unlock()
}

// reroute points an existing entry at dst, keeping its refcount — the
// per-key half of fusion's ownership transfer. Entries not owned by
// victim (already moved, or dropped concurrently — impossible under
// the scheduler's exclusive lock, tolerated for the serial paths) are
// left alone.
func (t *routeTable) reroute(k Resource, victim, dst *shard) {
	st := t.stripe(k)
	st.mu.Lock()
	if e, ok := st.m[k]; ok && e.sh == victim {
		st.m[k] = routeEnt{sh: dst, refs: e.refs}
	}
	st.mu.Unlock()
}

// set installs an entry with an explicit refcount — Resplit rebuilds
// split shards' routes from their freshly counted owned maps.
func (t *routeTable) set(k Resource, sh *shard, refs int) {
	st := t.stripe(k)
	st.mu.Lock()
	if st.m == nil {
		st.m = make(map[Resource]routeEnt)
	}
	st.m[k] = routeEnt{sh: sh, refs: refs}
	st.mu.Unlock()
}

// unroute deletes the key's entry when sh owns it (shard drop).
func (t *routeTable) unroute(k Resource, sh *shard) {
	st := t.stripe(k)
	st.mu.Lock()
	if e, ok := st.m[k]; ok && e.sh == sh {
		delete(st.m, k)
	}
	st.mu.Unlock()
}
