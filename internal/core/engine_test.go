package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// engineTopo builds two switches, each with three hosts, joined by a
// backbone link. Flows local to one switch never share a resource with
// flows local to the other.
func engineTopo(t *testing.T) *network.Topology {
	t.Helper()
	topo := network.NewTopology()
	for _, sw := range []network.NodeID{"sA", "sB"} {
		if err := topo.AddSwitch(sw, network.DefaultSwitchParams()); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddDuplexLink("sA", "sB", 100*units.Mbps, units.Microsecond); err != nil {
		t.Fatal(err)
	}
	for _, h := range []network.NodeID{"a1", "a2", "a3"} {
		if err := topo.AddHost(h); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddDuplexLink(h, "sA", 100*units.Mbps, units.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []network.NodeID{"b1", "b2", "b3"} {
		if err := topo.AddHost(h); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddDuplexLink(h, "sB", 100*units.Mbps, units.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func voipOn(name string, route ...network.NodeID) *network.FlowSpec {
	return &network.FlowSpec{
		Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 50 * units.Millisecond}),
		Route:    route,
		Priority: 2,
	}
}

func TestEngineWarmAnalyzeMatchesCold(t *testing.T) {
	topo := engineTopo(t)
	nw := network.New(topo)
	eng, err := NewEngine(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []*network.FlowSpec{
		voipOn("v1", "a1", "sA", "a2"),
		voipOn("v2", "a2", "sA", "sB", "b1"),
		voipOn("v3", "b2", "sB", "b3"),
	}
	for _, fs := range specs {
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		ref := network.New(topo)
		for j := 0; j <= len(res.Flows)-1; j++ {
			if _, err := ref.AddFlow(nw.Flow(j)); err != nil {
				t.Fatal(err)
			}
		}
		an, err := NewAnalyzer(ref, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := an.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, res, cold)
	}
	// A second Analyze with no changes returns the cached fixpoint.
	again, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Converged || len(again.Flows) != 3 {
		t.Fatalf("cached result: converged=%v flows=%d", again.Converged, len(again.Flows))
	}
}

func TestEngineAffectedSetIsLocal(t *testing.T) {
	topo := engineTopo(t)
	nw := network.New(topo)
	eng, err := NewEngine(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Flows 0,1 live on switch A; flow 2 on switch B; flow 3 crosses.
	for _, fs := range []*network.FlowSpec{
		voipOn("a-local1", "a1", "sA", "a2"),
		voipOn("a-local2", "a2", "sA", "a3"),
		voipOn("b-local", "b1", "sB", "b2"),
	} {
		if _, err := eng.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	// a-local1 and a-local2 share link sA->a2? No: routes a1->sA->a2 and
	// a2->sA->a3 share no directed link; both share nothing with b-local.
	got := eng.affectedSet(map[int]bool{0: true})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("affectedSet(0) = %v, want [0]", got)
	}
	// A crossing flow couples the two sides it touches.
	if _, err := eng.AddFlow(voipOn("cross", "a1", "sA", "sB", "b2")); err != nil {
		t.Fatal(err)
	}
	got = eng.affectedSet(map[int]bool{3: true})
	// cross shares a1->sA with a-local1 and sB->b2 with b-local.
	want := []int{0, 2, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("affectedSet(cross) = %v, want %v", got, want)
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	topo := engineTopo(t)
	nw := network.New(topo)
	eng, err := NewEngine(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddFlow(voipOn("base", "a1", "sA", "a2")); err != nil {
		t.Fatal(err)
	}
	before, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if _, err := eng.AddFlow(voipOn("tentative", "a1", "sA", "a3")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 1 {
		t.Fatalf("NumFlows after restore = %d, want 1", nw.NumFlows())
	}
	after, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, after, before)

	// Restoring across a removal re-inserts the departed flow and lands
	// on the snapshot's exact bounds (the block-move journal at work).
	snap2 := eng.Snapshot()
	if err := eng.RemoveFlow(0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(snap2); err != nil {
		t.Fatalf("restore across removal: %v", err)
	}
	if nw.NumFlows() != 1 || nw.Flow(0).Flow.Name != "base" {
		t.Fatalf("flow set after restore-across-removal: %d flows", nw.NumFlows())
	}
	roundTrip, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, roundTrip, before)
}

// TestAnalyzeDeltaCoversPendingDirtyFlows guards against a converged
// subset delta marking the engine valid while another freshly added (and
// never analysed) flow still has placeholder results: the pending flow
// must be folded into the pass.
func TestAnalyzeDeltaCoversPendingDirtyFlows(t *testing.T) {
	topo := engineTopo(t)
	eng, err := NewEngine(network.New(topo), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ia, err := eng.AddFlow(voipOn("a-side", "a1", "sA", "a2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	// b-side is on a disjoint switch: analysing only a-side would not
	// reach it through interference propagation.
	if _, err := eng.AddFlow(voipOn("b-side", "b1", "sB", "b2")); err != nil {
		t.Fatal(err)
	}
	res, err := eng.AnalyzeDelta(ia)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(res.Flows))
	}
	if len(res.Flows[1].Frames) == 0 || res.Flows[1].Frames[0].Response == 0 {
		t.Fatalf("pending flow %q was not analysed: %+v", res.Flows[1].Name, res.Flows[1])
	}
	// And the cached follow-up must agree with a cold analysis.
	again, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(eng.Network(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, again, cold)
}

func TestEngineRemoveFlowErrors(t *testing.T) {
	eng, err := NewEngine(network.New(engineTopo(t)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveFlow(0); err == nil {
		t.Fatal("removing from empty engine succeeded")
	}
	if _, err := eng.AnalyzeDelta(5); err == nil {
		t.Fatal("AnalyzeDelta with bad index succeeded")
	}
}

// TestEngineReplayEquivalence is the randomized property test: a replayed
// request/departure sequence through the incremental engine — sequential
// and with the parallel delta worklist — must reach exactly the verdicts
// and bounds of a cold Gauss-Seidel analysis and of the Jacobi-style
// AnalyzeParallel, after every single operation.
func TestEngineReplayEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts := randomEngineTopo(t, r)
			nw := network.New(topo)
			eng, err := NewEngine(nw, Config{})
			if err != nil {
				t.Fatal(err)
			}
			engPar, err := NewEngine(network.New(topo), Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var live []*network.FlowSpec
			for op := 0; op < 14; op++ {
				if len(live) > 0 && r.Float64() < 0.3 {
					i := r.Intn(len(live))
					if err := eng.RemoveFlow(i); err != nil {
						t.Fatal(err)
					}
					if err := engPar.RemoveFlow(i); err != nil {
						t.Fatal(err)
					}
					live = append(live[:i], live[i+1:]...)
				} else {
					fs := randomFlowSpec(t, r, topo, hosts, fmt.Sprintf("f%d-%d", seed, op))
					if _, err := eng.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
					if _, err := engPar.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
					live = append(live, fs)
				}
				engRes, err := eng.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				parEngRes, err := engPar.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				ref := network.New(topo)
				for _, fs := range live {
					if _, err := ref.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
				}
				seq, err := NewAnalyzer(ref, Config{})
				if err != nil {
					t.Fatal(err)
				}
				cold, err := seq.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, engRes, cold)
				compareResults(t, parEngRes, cold)
				par, err := seq.AnalyzeParallel(4)
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, par, cold)
			}
		})
	}
}

// randomEngineTopo chains 2-4 switches with 2-3 hosts each.
func randomEngineTopo(t *testing.T, r *rand.Rand) (*network.Topology, []network.NodeID) {
	t.Helper()
	topo := network.NewTopology()
	nsw := 2 + r.Intn(3)
	backbone := []units.BitRate{100 * units.Mbps, units.Gbps}[r.Intn(2)]
	for s := 0; s < nsw; s++ {
		id := network.NodeID(fmt.Sprintf("s%d", s))
		if err := topo.AddSwitch(id, network.DefaultSwitchParams()); err != nil {
			t.Fatal(err)
		}
		if s > 0 {
			prev := network.NodeID(fmt.Sprintf("s%d", s-1))
			if err := topo.AddDuplexLink(prev, id, backbone, units.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	var hosts []network.NodeID
	for s := 0; s < nsw; s++ {
		nh := 2 + r.Intn(2)
		for h := 0; h < nh; h++ {
			id := network.NodeID(fmt.Sprintf("h%d_%d", s, h))
			rate := []units.BitRate{10 * units.Mbps, 100 * units.Mbps}[r.Intn(2)]
			if err := topo.AddHost(id); err != nil {
				t.Fatal(err)
			}
			sw := network.NodeID(fmt.Sprintf("s%d", s))
			if err := topo.AddDuplexLink(id, sw, rate, units.Microsecond); err != nil {
				t.Fatal(err)
			}
			hosts = append(hosts, id)
		}
	}
	return topo, hosts
}

// randomFlowSpec draws a VoIP, CBR or MPEG flow between two random hosts;
// some draws are deliberately heavy so that unschedulable configurations
// occur and the error paths are exercised too.
func randomFlowSpec(t *testing.T, r *rand.Rand, topo *network.Topology, hosts []network.NodeID, name string) *network.FlowSpec {
	t.Helper()
	for {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			continue
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			continue
		}
		var fs *network.FlowSpec
		switch r.Intn(4) {
		case 0:
			fs = &network.FlowSpec{
				Flow: trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			}
		case 1:
			fs = &network.FlowSpec{
				Flow: trace.CBRVideo(name, 2000+r.Int63n(8000),
					units.Time(20+r.Intn(30))*units.Millisecond, 200*units.Millisecond),
			}
		case 2:
			fs = &network.FlowSpec{
				Flow: trace.MPEGIBBPBBPBB(name, trace.MPEGOptions{Deadline: 300 * units.Millisecond}),
			}
		default:
			// Heavy: ~8-24 Mbit/s, overloads a 10 Mbit/s edge link.
			fs = &network.FlowSpec{
				Flow: trace.CBRVideo(name, 50000+r.Int63n(100000),
					50*units.Millisecond, 250*units.Millisecond),
			}
		}
		fs.Route = route
		fs.Priority = network.Priority(r.Intn(4))
		fs.RTP = r.Intn(2) == 0
		return fs
	}
}

// compareResults asserts two analyses agree: same verdict always, and
// identical per-frame bounds whenever both converged.
func compareResults(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Schedulable() != want.Schedulable() {
		t.Fatalf("verdicts differ: got %v, want %v", got.Schedulable(), want.Schedulable())
	}
	if got.Converged != want.Converged {
		t.Fatalf("convergence differs: got %v, want %v", got.Converged, want.Converged)
	}
	if !got.Converged {
		return
	}
	if len(got.Flows) != len(want.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(got.Flows), len(want.Flows))
	}
	for i := range want.Flows {
		g, w := &got.Flows[i], &want.Flows[i]
		if g.Name != w.Name {
			t.Fatalf("flow %d name %q vs %q", i, g.Name, w.Name)
		}
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("flow %d err %v vs %v", i, g.Err, w.Err)
		}
		if len(g.Frames) != len(w.Frames) {
			t.Fatalf("flow %d frame counts %d vs %d", i, len(g.Frames), len(w.Frames))
		}
		for k := range w.Frames {
			if g.Frames[k].Response != w.Frames[k].Response {
				t.Fatalf("flow %d frame %d bound %v vs %v",
					i, k, g.Frames[k].Response, w.Frames[k].Response)
			}
			if g.Frames[k].Deadline != w.Frames[k].Deadline {
				t.Fatalf("flow %d frame %d deadline differs", i, k)
			}
		}
	}
}
