package admission

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// runShardedStreamDifferential drives one randomized request/release
// stream through the monolithic and the sharded controller and asserts
// identical decisions, release outcomes, resident sets and final
// bounds. Local-heavy traffic keeps closures disjoint; cross-backbone
// requests force fusions; departures force re-splits.
func runShardedStreamDifferential(t *testing.T, topo *network.Topology, hosts []network.NodeID, seed int64, n int) {
	t.Helper()
	mono, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	var live []string
	maxShards := 0
	for step := 0; step < n; step++ {
		if sh := shard.NumShards(); sh > maxShards {
			maxShards = sh
		}
		if len(live) > 0 && r.Float64() < 0.25 {
			name := live[r.Intn(len(live))]
			mok, err := mono.Release(name)
			if err != nil {
				t.Fatal(err)
			}
			sok, err := shard.Release(name)
			if err != nil {
				t.Fatal(err)
			}
			if mok != sok {
				t.Fatalf("step %d: release %q diverged: mono=%v sharded=%v", step, name, mok, sok)
			}
			for i, nm := range live {
				if nm == name {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			continue
		}
		fs := shardedStreamSpec(r, topo, hosts, fmt.Sprintf("s%d", step))
		if fs == nil {
			continue
		}
		md, err := mono.Request(fs)
		if err != nil {
			t.Fatal(err)
		}
		c := *fs
		sd, err := shard.Request(&c)
		if err != nil {
			t.Fatal(err)
		}
		if md.Admitted != sd.Admitted {
			t.Fatalf("step %d (%s): mono=%v sharded=%v", step, fs.Flow.Name, md.Admitted, sd.Admitted)
		}
		if md.Admitted {
			live = append(live, fs.Flow.Name)
		}
	}
	if shard.NumFlows() != mono.NumFlows() {
		t.Fatalf("resident counts: sharded=%d mono=%d", shard.NumFlows(), mono.NumFlows())
	}
	want, err := mono.Engine().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	checkShardedBounds(t, shard, want)
	t.Logf("seed %d: %d residents across %d shards (peak %d shards)",
		seed, shard.NumFlows(), shard.NumShards(), maxShards)
}

// shardedStreamSpec draws one request: 70% pod-local VoIP/CBR (keeps
// closures disjoint), 30% cross-backbone (forces closure fusions), with
// occasional heavy video so rejections occur.
func shardedStreamSpec(r *rand.Rand, topo *network.Topology, hosts []network.NodeID, name string) *network.FlowSpec {
	for tries := 0; tries < 32; tries++ {
		var src, dst network.NodeID
		if r.Float64() < 0.7 {
			g := r.Intn(len(hosts) / 2)
			src = hosts[2*g]
			dst = hosts[2*g+1]
			if r.Intn(2) == 0 {
				src, dst = dst, src
			}
		} else {
			src = hosts[r.Intn(len(hosts))]
			dst = hosts[r.Intn(len(hosts))]
		}
		if src == dst {
			continue
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			continue
		}
		fs := &network.FlowSpec{Route: route, Priority: network.Priority(1 + r.Intn(3))}
		switch r.Intn(6) {
		case 0:
			fs.Flow = trace.CBRVideo(name, 100000+r.Int63n(100000), 30*units.Millisecond, 250*units.Millisecond)
		case 1, 2:
			fs.Flow = trace.CBRVideo(name, 4000+r.Int63n(8000), 33*units.Millisecond, 200*units.Millisecond)
		default:
			fs.Flow = trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond})
			fs.RTP = true
		}
		return fs
	}
	return nil
}

// TestShardedMatchesMonolithicFatTree is the randomized stream
// differential on a 4-ary fat tree, where pod-local traffic shards
// well and cross-pod arrivals fuse closures.
func TestShardedMatchesMonolithicFatTree(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			topo, hosts, err := network.FatTree(4)
			if err != nil {
				t.Fatal(err)
			}
			runShardedStreamDifferential(t, topo, hosts, seed, 60)
		})
	}
}

// TestShardedMatchesMonolithicRing runs the same property on an
// 8-switch industrial ring — the worst case for sharding, where the
// backbone quickly fuses everything into one closure.
func TestShardedMatchesMonolithicRing(t *testing.T) {
	for seed := int64(20); seed < 22; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			topo, hosts, err := network.Ring(8, 3)
			if err != nil {
				t.Fatal(err)
			}
			runShardedStreamDifferential(t, topo, hosts, seed, 50)
		})
	}
}

// TestShardedFusionLifecycle pins the deterministic fuse/split story:
// two pod-local flows shard separately; a bridging arrival fuses their
// shards before admission; the bridge's departure re-splits them — and
// decisions stay equal to the monolithic controller throughout.
func TestShardedFusionLifecycle(t *testing.T) {
	topo, _, err := network.Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, route ...network.NodeID) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
			RTP:      true,
		}
	}
	ctl, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	req := func(fs *network.FlowSpec) Decision {
		t.Helper()
		c := *fs
		md, err := mono.Request(&c)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := ctl.Request(fs)
		if err != nil {
			t.Fatal(err)
		}
		if md.Admitted != sd.Admitted {
			t.Fatalf("%s: mono=%v sharded=%v", fs.Flow.Name, md.Admitted, sd.Admitted)
		}
		return sd
	}

	req(mk("a", "h0_0", "sw0", "h0_1"))
	req(mk("b", "h2_0", "sw2", "h2_1"))
	if n := ctl.NumShards(); n != 2 {
		t.Fatalf("disjoint flows: %d shards, want 2", n)
	}
	d := req(mk("bridge", "h0_0", "sw0", "sw1", "sw2", "h2_1"))
	if !d.Admitted {
		t.Fatal("bridge rejected")
	}
	if n := ctl.NumShards(); n != 1 {
		t.Fatalf("after bridging arrival: %d shards, want 1", n)
	}
	for _, c := range []interface {
		Release(string) (bool, error)
	}{mono, ctl} {
		ok, err := c.Release("bridge")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("bridge not found on release")
		}
	}
	if n := ctl.NumShards(); n != 2 {
		t.Fatalf("after bridge departure: %d shards, want 2", n)
	}
	want, err := mono.Engine().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	checkShardedBounds(t, ctl, want)
}

// TestShardedReleaseDuplicateNames pins Release's admission-order
// semantics under duplicate flow names: the monolithic controller
// removes the *first admitted* flow with the name, and the sharded one
// must remove the very same flow even though shard-creation order
// differs from admission order.
func TestShardedReleaseDuplicateNames(t *testing.T) {
	topo, _, err := network.Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, route ...network.NodeID) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
			RTP:      true,
		}
	}
	mono, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// "y" opens closure A (shard 1); the first "x" opens closure B
	// (shard 2); the second "x" joins closure A (shard 1). A name scan
	// in shard order would find the second "x" first — admission order
	// must find the closure-B one.
	reqs := []*network.FlowSpec{
		mk("y", "h0_0", "sw0", "h0_1"),
		mk("x", "h2_0", "sw2", "h2_1"),
		mk("x", "h0_0", "sw0", "h0_1"),
	}
	for _, fs := range reqs {
		cp := *fs
		if _, err := mono.Request(&cp); err != nil {
			t.Fatal(err)
		}
		if _, err := shard.Request(fs); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []interface {
		Release(string) (bool, error)
	}{mono, shard} {
		ok, err := c.Release("x")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("release missed")
		}
	}
	// The monolithic survivor set is {y, x(closure A)}; compare bounds
	// by name — if the sharded controller removed the wrong "x", the
	// surviving x's bounds (closure A, sharing links with y) differ
	// from a lone closure-B x.
	if mono.NumFlows() != 2 || shard.NumFlows() != 2 {
		t.Fatalf("resident counts: mono=%d sharded=%d, want 2", mono.NumFlows(), shard.NumFlows())
	}
	want, err := mono.Engine().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	checkShardedBounds(t, shard, want)
	// The survivor "x" must be the closure-A instance in both: its
	// shard also hosts "y".
	eng, _, ok := shard.Sharded().Find("x")
	if !ok {
		t.Fatal("surviving x not found")
	}
	if eng.Network().NumFlows() != 2 {
		t.Fatalf("surviving x shares a shard with %d flows, want 2 (it must be the closure-A twin)",
			eng.Network().NumFlows())
	}
}

// TestShardedRejectedBridgeResplits pins that a fusion performed for a
// request that is then rejected is undone immediately: arrival-only
// workloads with rejected bridging requests must not decay the
// partition toward one monolithic shard.
func TestShardedRejectedBridgeResplits(t *testing.T) {
	topo, _, err := network.Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mkVoip := func(name string, route ...network.NodeID) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
			RTP:      true,
		}
	}
	for _, fs := range []*network.FlowSpec{
		mkVoip("a", "h0_0", "sw0", "h0_1"),
		mkVoip("b", "h2_0", "sw2", "h2_1"),
	} {
		if d, err := ctl.Request(fs); err != nil || !d.Admitted {
			t.Fatalf("setup admit: %v %v", d.Admitted, err)
		}
	}
	if n := ctl.NumShards(); n != 2 {
		t.Fatalf("%d shards, want 2", n)
	}
	// A bridging hog (~160 Mbit/s over the 100 Mbit/s backbone): fuses
	// both shards for the decision, is rejected, and the fusion must be
	// re-split right away.
	hog := &network.FlowSpec{
		Flow:     trace.CBRVideo("hog", 600000, 30*units.Millisecond, 100*units.Millisecond),
		Route:    []network.NodeID{"h0_0", "sw0", "sw1", "sw2", "h2_1"},
		Priority: 1,
	}
	d, err := ctl.Request(hog)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatal("hog admitted")
	}
	if n := ctl.NumShards(); n != 2 {
		t.Fatalf("after rejected bridge: %d shards, want 2 (fusion not re-split)", n)
	}
	// Same property through the batch path.
	if _, err := ctl.RequestBatch([]*network.FlowSpec{{
		Flow:     trace.CBRVideo("hog2", 600000, 30*units.Millisecond, 100*units.Millisecond),
		Route:    []network.NodeID{"h0_1", "sw0", "sw1", "sw2", "h2_0"},
		Priority: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	if n := ctl.NumShards(); n != 2 {
		t.Fatalf("after rejected bridging batch: %d shards, want 2", n)
	}
}

// TestShardedDepartureFreesRoutes pins the resource-route refcounting:
// after a departure, pipeline resources no surviving shard flow
// crosses must be unrouted, so a newcomer using only those resources
// opens its own shard instead of being pulled into the old one.
func TestShardedDepartureFreesRoutes(t *testing.T) {
	topo, _, err := network.Campus(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, route ...network.NodeID) *network.FlowSpec {
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 2,
			RTP:      true,
		}
	}
	// a and f share h0_0->sw0 (one closure); f's egress sw0->h0_2 is
	// exclusive to f.
	for _, fs := range []*network.FlowSpec{
		mk("a", "h0_0", "sw0", "h0_1"),
		mk("f", "h0_0", "sw0", "h0_2"),
	} {
		if d, err := ctl.Request(fs); err != nil || !d.Admitted {
			t.Fatalf("setup admit: %v %v", d.Admitted, err)
		}
	}
	if n := ctl.NumShards(); n != 1 {
		t.Fatalf("%d shards, want 1", n)
	}
	if ok, err := ctl.Release("f"); err != nil || !ok {
		t.Fatalf("release f: %v %v", ok, err)
	}
	// g uses only f's former exclusive resources (plus its own first
	// hop): a fresh closure, so it must open its own shard rather than
	// join a's.
	d, err := ctl.Request(mk("g", "h0_3", "sw0", "h0_2"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("g rejected")
	}
	if n := ctl.NumShards(); n != 2 {
		t.Fatalf("after departure + fresh newcomer: %d shards, want 2 (stale route pulled g in)", n)
	}
}

// TestShardedRejectionLeavesNoShard pins the bookkeeping around a
// rejected newcomer into fresh territory: the tentative shard is
// dropped, and no resource route leaks that would misdirect later
// requests.
func TestShardedRejectionLeavesNoShard(t *testing.T) {
	topo, _, err := network.Campus(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// ~160 Mbit/s into a 100 Mbit/s edge link: overloaded, rejected.
	heavy := &network.FlowSpec{
		Flow:     trace.CBRVideo("hog", 600000, 30*units.Millisecond, 100*units.Millisecond),
		Route:    []network.NodeID{"h0_0", "sw0", "h0_1"},
		Priority: 1,
	}
	d, err := ctl.Request(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatal("overloading flow admitted")
	}
	if n := ctl.NumShards(); n != 0 {
		t.Fatalf("rejected flow left %d shards, want 0", n)
	}
	// The same pipeline must still admit a feasible flow afterwards.
	ok := &network.FlowSpec{
		Flow:     trace.VoIP("call", trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
		Route:    []network.NodeID{"h0_0", "sw0", "h0_1"},
		Priority: 2,
		RTP:      true,
	}
	d, err = ctl.Request(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("feasible flow rejected after prior rejection")
	}
	if n := ctl.NumShards(); n != 1 {
		t.Fatalf("%d shards, want 1", n)
	}
}
