// Package admission implements the admission controller sketched at the
// end of the paper's Section 3.5: a new flow is tentatively added to the
// network, the holistic analysis recomputes every bound, and the flow is
// admitted only when the whole network remains schedulable (existing
// guarantees included).
package admission

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// Decision records the outcome of one admission request.
type Decision struct {
	// FlowName identifies the requested flow.
	FlowName string
	// Admitted reports whether the flow was accepted.
	Admitted bool
	// Result is the holistic analysis of the network including the
	// tentative flow; for rejected flows it explains the rejection.
	Result *core.Result
}

// Controller owns a network and admits or rejects flows against it.
type Controller struct {
	nw  *network.Network
	cfg core.Config

	decisions []Decision
}

// NewController returns a controller over the network; flows already in
// the network are treated as admitted (they are not re-checked).
func NewController(nw *network.Network, cfg core.Config) (*Controller, error) {
	if nw == nil {
		return nil, fmt.Errorf("admission: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return &Controller{nw: nw, cfg: cfg}, nil
}

// Network returns the controlled network with all currently admitted
// flows.
func (c *Controller) Network() *network.Network { return c.nw }

// Request tentatively adds the flow, analyses the network, and keeps the
// flow only when every flow (old and new) stays schedulable. The returned
// error reports malformed requests; a sound rejection returns a Decision
// with Admitted == false and a nil error.
func (c *Controller) Request(fs *network.FlowSpec) (Decision, error) {
	if _, err := c.nw.AddFlow(fs); err != nil {
		return Decision{}, err
	}
	an, err := core.NewAnalyzer(c.nw, c.cfg)
	if err != nil {
		c.nw.RemoveLastFlow()
		return Decision{}, err
	}
	res, err := an.Analyze()
	if err != nil {
		c.nw.RemoveLastFlow()
		return Decision{}, err
	}
	d := Decision{
		FlowName: fs.Flow.Name,
		Admitted: res.Schedulable(),
		Result:   res,
	}
	if !d.Admitted {
		c.nw.RemoveLastFlow()
	}
	c.decisions = append(c.decisions, d)
	return d, nil
}

// Decisions returns all decisions in request order.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Admitted returns the number of admitted flows among the processed
// requests.
func (c *Controller) Admitted() int {
	n := 0
	for _, d := range c.decisions {
		if d.Admitted {
			n++
		}
	}
	return n
}

// Rejected returns the number of rejected requests.
func (c *Controller) Rejected() int { return len(c.decisions) - c.Admitted() }
