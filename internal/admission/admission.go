// Package admission implements the admission controller sketched at the
// end of the paper's Section 3.5: a new flow is tentatively added to the
// network, the holistic analysis recomputes every bound, and the flow is
// admitted only when the whole network remains schedulable (existing
// guarantees included).
//
// Controller runs on the incremental core.Engine: it validates the
// network once, takes an O(1) undo-log snapshot token before every
// tentative admission, re-analyses only the flows that transitively share
// a resource with the newcomer, and on rejection restores the token —
// undoing just the jitter writes the tentative analysis made, never
// copying or rebuilding the whole assignment. ColdController is the
// original from-scratch implementation, retained as the reference
// baseline for differential tests and benchmarks.
package admission

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// Decision records the outcome of one admission request.
type Decision struct {
	// FlowName identifies the requested flow.
	FlowName string
	// Admitted reports whether the flow was accepted.
	Admitted bool
	// Result is the holistic analysis of the network including the
	// tentative flow; for rejected flows it explains the rejection.
	Result *core.Result
}

// Controller owns a network and admits or rejects flows against it,
// re-analysing incrementally between requests.
type Controller struct {
	eng *core.Engine

	decisions []Decision
	released  int
}

// NewController returns a controller over the network; flows already in
// the network are treated as admitted (they are not re-checked). The
// network is validated once here; each later request validates only its
// own flow.
func NewController(nw *network.Network, cfg core.Config) (*Controller, error) {
	if nw == nil {
		return nil, fmt.Errorf("admission: nil network")
	}
	eng, err := core.NewEngine(nw, cfg)
	if err != nil {
		return nil, err
	}
	return &Controller{eng: eng}, nil
}

// Network returns the controlled network with all currently admitted
// flows.
func (c *Controller) Network() *network.Network { return c.eng.Network() }

// Engine exposes the underlying incremental engine, e.g. to read the
// current bounds without issuing a request.
func (c *Controller) Engine() *core.Engine { return c.eng }

// Request tentatively adds the flow, re-analyses the affected part of the
// network from the engine's warm state, and keeps the flow only when
// every flow (old and new) stays schedulable; on rejection the engine is
// rolled back to its pre-request snapshot. The snapshot is a cheap
// token: it arms the engine's undo journal and copies only the per-flow
// result headers — no jitter state — so rollback cost tracks what the
// tentative analysis touched, not the resident flow count. The returned
// error reports malformed requests; a sound rejection returns a Decision
// with Admitted == false and a nil error.
func (c *Controller) Request(fs *network.FlowSpec) (Decision, error) {
	snap := c.eng.Snapshot()
	if _, err := c.eng.AddFlow(fs); err != nil {
		c.eng.Discard(snap) // nothing was admitted; disarm the journal
		return Decision{}, err
	}
	res, err := c.eng.Analyze()
	if err != nil {
		if rerr := c.eng.Restore(snap); rerr != nil {
			return Decision{}, fmt.Errorf("admission: rollback failed: %v (after %w)", rerr, err)
		}
		return Decision{}, err
	}
	d := Decision{
		FlowName: fs.Flow.Name,
		Admitted: res.Schedulable(),
		Result:   res,
	}
	if !d.Admitted {
		if rerr := c.eng.Restore(snap); rerr != nil {
			return Decision{}, fmt.Errorf("admission: rollback failed: %v", rerr)
		}
	} else {
		// Committed: release the snapshot so the journal stops recording.
		c.eng.Discard(snap)
	}
	c.decisions = append(c.decisions, d)
	return d, nil
}

// RequestAll processes a batch of requests in order, stopping at the
// first malformed request. Decisions for the requests processed so far
// are returned alongside any error. Each request rides its own snapshot
// token, so a rejection mid-batch rolls back exactly that request and
// the batch continues from the last committed state.
func (c *Controller) RequestAll(specs []*network.FlowSpec) ([]Decision, error) {
	out := make([]Decision, 0, len(specs))
	for _, fs := range specs {
		d, err := c.Request(fs)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Release removes the first admitted flow with the given name (a
// departure) and re-analyses the flows that shared resources with it, so
// the published bounds stay current. It reports whether a flow was
// removed.
func (c *Controller) Release(name string) (bool, error) {
	nw := c.eng.Network()
	for i := 0; i < nw.NumFlows(); i++ {
		if nw.Flow(i).Flow.Name != name {
			continue
		}
		if err := c.eng.RemoveFlow(i); err != nil {
			return false, err
		}
		// Removing a flow can only shrink interference, so the remaining
		// set stays schedulable; the delta pass just refreshes bounds.
		if _, err := c.eng.Analyze(); err != nil {
			return false, err
		}
		c.released++
		return true, nil
	}
	return false, nil
}

// Decisions returns all decisions in request order.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Admitted returns the number of admitted flows among the processed
// requests.
func (c *Controller) Admitted() int {
	n := 0
	for _, d := range c.decisions {
		if d.Admitted {
			n++
		}
	}
	return n
}

// Rejected returns the number of rejected requests.
func (c *Controller) Rejected() int { return len(c.decisions) - c.Admitted() }

// Released returns the number of departures processed by Release.
func (c *Controller) Released() int { return c.released }

// ColdController is the from-scratch reference: every request re-builds a
// cold Analyzer and re-runs the full holistic fixpoint over every flow,
// and a rejection is rolled back by popping the tentative flow. It exists
// to differential-test and benchmark the incremental Controller against.
type ColdController struct {
	nw  *network.Network
	cfg core.Config

	decisions []Decision
}

// NewColdController returns the from-scratch baseline controller.
func NewColdController(nw *network.Network, cfg core.Config) (*ColdController, error) {
	if nw == nil {
		return nil, fmt.Errorf("admission: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return &ColdController{nw: nw, cfg: cfg}, nil
}

// Network returns the controlled network.
func (c *ColdController) Network() *network.Network { return c.nw }

// Request tentatively adds the flow, analyses the whole network cold, and
// keeps the flow only when every flow stays schedulable.
func (c *ColdController) Request(fs *network.FlowSpec) (Decision, error) {
	if _, err := c.nw.AddFlow(fs); err != nil {
		return Decision{}, err
	}
	an, err := core.NewAnalyzer(c.nw, c.cfg)
	if err != nil {
		c.nw.RemoveLastFlow()
		return Decision{}, err
	}
	res, err := an.Analyze()
	if err != nil {
		c.nw.RemoveLastFlow()
		return Decision{}, err
	}
	d := Decision{
		FlowName: fs.Flow.Name,
		Admitted: res.Schedulable(),
		Result:   res,
	}
	if !d.Admitted {
		c.nw.RemoveLastFlow()
	}
	c.decisions = append(c.decisions, d)
	return d, nil
}

// Release removes the first flow with the given name.
func (c *ColdController) Release(name string) (bool, error) {
	for i := 0; i < c.nw.NumFlows(); i++ {
		if c.nw.Flow(i).Flow.Name == name {
			c.nw.RemoveFlow(i)
			return true, nil
		}
	}
	return false, nil
}

// Decisions returns all decisions in request order.
func (c *ColdController) Decisions() []Decision { return c.decisions }
