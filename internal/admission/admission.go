// Package admission implements the admission controller sketched at the
// end of the paper's Section 3.5: a new flow is tentatively added to the
// network, the holistic analysis recomputes every bound, and the flow is
// admitted only when the whole network remains schedulable (existing
// guarantees included).
//
// Controller runs on the incremental core.Engine: it validates the
// network once, takes an O(1) undo-log snapshot token before every
// tentative admission, re-analyses only the flows that transitively share
// a resource with the newcomer, reads the verdict off an O(1)
// copy-on-read core.ResultView (no per-flow result headers are copied
// anywhere on the accept path), and on rejection restores the token —
// undoing just the jitter and header writes the tentative analysis
// made, never copying or rebuilding the whole assignment. ColdController
// is the original from-scratch implementation, retained as the
// reference baseline for differential tests and benchmarks.
//
// ShardedController scales the same test out by interference closure:
// requests are decided inside their closure's private shard engine
// (core.ShardedEngine), batches spanning disjoint closures are decided
// concurrently, and eviction searches stay inside one closure instead
// of bisecting the whole batch. ParallelController runs that same
// decomposition on a core.Scheduler worker pool: each shard's decisions
// execute on a serial mailbox goroutine, distinct closures run
// concurrently, and SubmitBatch pipelines batches so independent work
// never waits. All four controllers produce byte-identical decisions on
// the same request sequence; the differential tests in this package
// assert it.
package admission

import (
	"errors"
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// Decision records the outcome of one admission request.
type Decision struct {
	// FlowName identifies the requested flow.
	FlowName string
	// Admitted reports whether the flow was accepted.
	Admitted bool
	// View is the holistic analysis including the tentative flow, as a
	// copy-on-read core.ResultView frozen at decision time; for rejected
	// flows it explains the rejection. Controller and ColdController
	// analyse the whole network; ShardedController analyses the
	// request's interference closure only (flows outside it cannot be
	// affected, but their bounds are not in this view — read them via
	// Sharded().AnalyzeAllViews). ColdController, which has no engine,
	// leaves View nil and fills Result instead; read decisions through
	// Analysis to be controller-agnostic.
	//
	// A live view pins a little engine bookkeeping, and the engine
	// copies each header the view saw into it at most once as later
	// requests overwrite them — in total never more than the eager
	// per-decision Result copy this replaced, but it does accrue with
	// the decision log. High-volume services that do not revisit old
	// analyses should release them (View.Close, or View.Materialize to
	// keep a detached copy); admitted batch decisions share one view,
	// for which Close is idempotent.
	View *core.ResultView
	// Result is the detached form of the analysis.
	//
	// Deprecated: only ColdController populates it eagerly; the
	// engine-backed controllers publish View instead, precisely so the
	// hot accept path copies no per-flow result headers. Use Analysis,
	// which serves whichever form the deciding controller produced.
	Result *core.Result
}

// Analysis returns the decision's full detached analysis, materializing
// the view on first use (O(flows) once, cached). It returns nil for a
// zero Decision, and for a decision whose View was Closed before ever
// materializing — the caller declared the analysis dead then.
func (d Decision) Analysis() *core.Result {
	if d.Result != nil {
		return d.Result
	}
	if d.View != nil {
		return d.View.Materialize()
	}
	return nil
}

// Controller owns a network and admits or rejects flows against it,
// re-analysing incrementally between requests.
type Controller struct {
	eng *core.Engine

	decisions []Decision
	released  int
}

// NewController returns a controller over the network; flows already in
// the network are treated as admitted (they are not re-checked). The
// network is validated once here; each later request validates only its
// own flow.
func NewController(nw *network.Network, cfg core.Config) (*Controller, error) {
	if nw == nil {
		return nil, fmt.Errorf("admission: nil network")
	}
	eng, err := core.NewEngine(nw, cfg)
	if err != nil {
		return nil, err
	}
	return &Controller{eng: eng}, nil
}

// Network returns the controlled network with all currently admitted
// flows.
func (c *Controller) Network() *network.Network { return c.eng.Network() }

// Engine exposes the underlying incremental engine, e.g. to read the
// current bounds without issuing a request.
func (c *Controller) Engine() *core.Engine { return c.eng }

// NumFlows returns the number of currently admitted flows.
func (c *Controller) NumFlows() int { return c.eng.Network().NumFlows() }

// Request tentatively adds the flow, re-analyses the affected part of the
// network from the engine's warm state, and keeps the flow only when
// every flow (old and new) stays schedulable; on rejection the engine is
// rolled back to its pre-request snapshot. The whole accept path is
// O(affected): the snapshot is a cheap token arming the engine's undo
// journals (no header or jitter copies), the verdict is read off an O(1)
// copy-on-read view, and the decision retains that view — the engine's
// write barrier keeps it frozen as later requests overwrite the shared
// headers. The returned error reports malformed requests; a sound
// rejection returns a Decision with Admitted == false and a nil error.
func (c *Controller) Request(fs *network.FlowSpec) (Decision, error) {
	snap := c.eng.Snapshot()
	if _, err := c.eng.AddFlow(fs); err != nil {
		c.eng.Discard(snap) // nothing was admitted; disarm the journal
		return Decision{}, err
	}
	v, err := c.eng.AnalyzeView()
	if err != nil {
		if rerr := c.eng.Restore(snap); rerr != nil {
			return Decision{}, fmt.Errorf("admission: rollback failed: %v (after %w)", rerr, err)
		}
		return Decision{}, err
	}
	d := Decision{
		FlowName: fs.Flow.Name,
		Admitted: v.Schedulable(),
		View:     v,
	}
	if !d.Admitted {
		// The rollback's undo writes pass through the write barrier, so
		// the retained view keeps showing the violating analysis.
		if rerr := c.eng.Restore(snap); rerr != nil {
			v.Close()
			return Decision{}, fmt.Errorf("admission: rollback failed: %v", rerr)
		}
	} else {
		// Committed: release the snapshot so the journals stop recording.
		c.eng.Discard(snap)
	}
	c.decisions = append(c.decisions, d)
	return d, nil
}

// RequestAll processes a batch of requests in order, stopping at the
// first malformed request. Decisions for the requests processed so far
// are returned alongside any error. Each request rides its own snapshot
// token, so a rejection mid-batch rolls back exactly that request and
// the batch continues from the last committed state.
func (c *Controller) RequestAll(specs []*network.FlowSpec) ([]Decision, error) {
	out := make([]Decision, 0, len(specs))
	for _, fs := range specs {
		d, err := c.Request(fs)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// RequestBatch admits a batch of requests with one converged analysis
// instead of one per request: every newcomer is staged into the engine,
// a single delta worklist seeded with all of them is converged once, and
// only when the combined set violates a deadline does the controller
// fall back to evicting newcomers via journaled rollback — the
// departures of the eviction probes run under the batch's one snapshot,
// which survives them thanks to the engine's block-move journal.
//
// Decisions are exactly RequestAll's: a schedulable whole batch admits
// every request (the holistic interference is monotone, so every subset
// of a schedulable set is schedulable — one-by-one processing would have
// accepted each prefix too), and the eviction search reproduces the
// greedy prefix rule by bisecting for the longest schedulable prefix of
// the undecided suffix and rejecting the first flow beyond it, i.e. the
// most expensive violator in request order. Admitted decisions share the
// batch's final converged Result; a rejected decision carries the
// analysis of the prefix whose violation evicted it.
//
// A malformed spec aborts the whole batch: the engine is rolled back to
// its pre-batch state, no decisions are recorded, and the error is
// returned (unlike RequestAll, which commits the prefix before the bad
// request).
//
// One verdict is not monotone in the flow set: an analysis that exhausts
// Config.MaxHolisticIter without converging (and without a stage error)
// depends on the warm-start point, so batch probes and one-by-one
// processing could disagree near the cap. When any batch analysis hits
// the cap, RequestBatch therefore rolls back and replays the batch
// through the literal one-by-one path, preserving decision equality by
// construction. Stage errors (overload, inner-fixpoint divergence) are
// monotone like deadline misses and stay on the fast path.
func (c *Controller) RequestBatch(specs []*network.FlowSpec) ([]Decision, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	snap := c.eng.Snapshot()
	// opened tracks every view minted during the batch; the ones that do
	// not end up in a decision are closed before returning, on every
	// path, so discarded bisection probes do not stay pinned.
	var opened []*core.ResultView
	closeAll := func() {
		for _, v := range opened {
			v.Close()
		}
	}
	abort := func(err error) ([]Decision, error) {
		closeAll()
		if rerr := c.eng.Restore(snap); rerr != nil {
			return nil, fmt.Errorf("admission: batch rollback failed: %v (after %w)", rerr, err)
		}
		return nil, err
	}
	fallback := func() ([]Decision, error) {
		closeAll()
		if rerr := c.eng.Restore(snap); rerr != nil {
			return nil, fmt.Errorf("admission: batch fallback rollback failed: %v", rerr)
		}
		return c.RequestAll(specs)
	}
	for _, fs := range specs {
		if _, err := c.eng.AddFlow(fs); err != nil {
			return abort(err)
		}
	}
	v, err := c.eng.AnalyzeView()
	if err != nil {
		return abort(err)
	}
	opened = append(opened, v)
	if holisticCapHit(v) {
		return fallback()
	}
	admitted := make([]bool, len(specs))
	rejected := make([]*core.ResultView, len(specs))
	if v.Schedulable() {
		for i := range admitted {
			admitted[i] = true
		}
	} else if err := c.evictBatch(specs, v, admitted, rejected, &opened); err != nil {
		if errors.Is(err, errHolisticCap) {
			return fallback()
		}
		return abort(err)
	}
	// Converge whatever survived; with no evictions this is the cached
	// batch fixpoint. The surviving set is schedulable by construction.
	final, err := c.eng.AnalyzeView()
	if err != nil {
		return abort(err)
	}
	opened = append(opened, final)
	if holisticCapHit(final) {
		return fallback()
	}
	c.eng.Discard(snap)
	out := make([]Decision, len(specs))
	kept := map[*core.ResultView]bool{final: true}
	for i, fs := range specs {
		out[i] = Decision{FlowName: fs.Flow.Name, Admitted: admitted[i], View: final}
		if !admitted[i] {
			out[i].View = rejected[i]
			kept[rejected[i]] = true
		}
	}
	for _, w := range opened {
		if !kept[w] {
			w.Close()
		}
	}
	c.decisions = append(c.decisions, out...)
	return out, nil
}

// evictBatch is RequestBatch's slow path: the engine holds every staged
// newcomer and the last analysis (lastFail) says the combined set is not
// schedulable. It decides each spec by repeatedly bisecting for the
// longest schedulable prefix of the undecided suffix — shrinking and
// re-growing the staged set through RemoveFlow/AddFlow probes under the
// batch snapshot — accepting that prefix, rejecting the flow beyond it,
// and re-staging the rest. Schedulability is monotone in the staged
// prefix (removing flows only removes interference), so the bisection is
// exact and the resulting accept set equals one-by-one processing.
// Probe analyses are read off copy-on-read views; the write barrier
// keeps a failing probe's view intact through the later add/remove churn
// so it can serve as the rejected flow's diagnostic. Every minted view
// is appended to opened for the caller's cleanup. A returned error means
// the engine is in an intermediate state; the caller restores the batch
// snapshot (and, for errHolisticCap, replays the batch one by one — see
// RequestBatch).
func (c *Controller) evictBatch(specs []*network.FlowSpec, lastFail *core.ResultView, admitted []bool, rejected []*core.ResultView, opened *[]*core.ResultView) error {
	// rest holds the undecided spec indices, all currently staged after
	// the committed-and-accepted flows; base is the engine index of the
	// first staged one.
	base := c.eng.Network().NumFlows() - len(specs)
	rest := make([]int, len(specs))
	for i := range rest {
		rest[i] = i
	}
	for len(rest) > 0 {
		cur := len(rest) // staged prefix length of rest
		adjust := func(target int) error {
			for cur > target {
				if err := c.eng.RemoveFlow(base + cur - 1); err != nil {
					return err
				}
				cur--
			}
			for cur < target {
				if _, err := c.eng.AddFlow(specs[rest[cur]]); err != nil {
					return err
				}
				cur++
			}
			return nil
		}
		lo, hi := 0, len(rest)
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if err := adjust(mid); err != nil {
				return err
			}
			probe, err := c.eng.AnalyzeView()
			if err != nil {
				return err
			}
			*opened = append(*opened, probe)
			if holisticCapHit(probe) {
				return errHolisticCap
			}
			if probe.Schedulable() {
				lo = mid
			} else {
				hi = mid
				lastFail = probe
			}
		}
		// rest[:hi-1] is the longest schedulable prefix: accepted.
		// rest[hi-1] broke it: rejected, with the analysis that shows the
		// violation.
		if err := adjust(hi - 1); err != nil {
			return err
		}
		for _, si := range rest[:hi-1] {
			admitted[si] = true
		}
		rejected[rest[hi-1]] = lastFail
		base += hi - 1
		rest = rest[hi:]
		if len(rest) == 0 {
			break
		}
		// Re-stage the suffix beyond the rejected flow and converge once;
		// if everything now fits the batch is done, otherwise bisect again.
		for _, si := range rest {
			if _, err := c.eng.AddFlow(specs[si]); err != nil {
				return err
			}
		}
		again, err := c.eng.AnalyzeView()
		if err != nil {
			return err
		}
		*opened = append(*opened, again)
		if holisticCapHit(again) {
			return errHolisticCap
		}
		if again.Schedulable() {
			for _, si := range rest {
				admitted[si] = true
			}
			break
		}
		lastFail = again
	}
	return nil
}

// errHolisticCap signals that a batch analysis exhausted the holistic
// iteration cap: not an input error, but a verdict the batch path must
// not bisect on (see RequestBatch).
var errHolisticCap = errors.New("admission: holistic iteration cap hit mid-batch")

// holisticCapHit reports whether the analysis stopped because the outer
// holistic iteration cap was exhausted: not converged, yet no stage
// reported an error. Deadline misses and stage errors are monotone in
// the flow set; this verdict is not (it depends on the warm-start
// point), so the batch path falls back to one-by-one processing on it.
// O(1): the view carries the engine's maintained stage-error count.
func holisticCapHit(v *core.ResultView) bool {
	return !v.Converged() && v.StageErrors() == 0
}

// Release removes the first admitted flow with the given name (a
// departure) and re-analyses the flows that shared resources with it, so
// the published bounds stay current. It reports whether a flow was
// removed.
func (c *Controller) Release(name string) (bool, error) {
	nw := c.eng.Network()
	for i := 0; i < nw.NumFlows(); i++ {
		if nw.Flow(i).Flow.Name != name {
			continue
		}
		if err := c.eng.RemoveFlow(i); err != nil {
			return false, err
		}
		// Removing a flow can only shrink interference, so the remaining
		// set stays schedulable; the delta pass just refreshes bounds —
		// Refresh converges without publishing (or copying) a result.
		if err := c.eng.Refresh(); err != nil {
			return false, err
		}
		c.released++
		return true, nil
	}
	return false, nil
}

// Decisions returns all decisions in request order.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Admitted returns the number of admitted flows among the processed
// requests.
func (c *Controller) Admitted() int {
	n := 0
	for _, d := range c.decisions {
		if d.Admitted {
			n++
		}
	}
	return n
}

// Rejected returns the number of rejected requests.
func (c *Controller) Rejected() int { return len(c.decisions) - c.Admitted() }

// Released returns the number of departures processed by Release.
func (c *Controller) Released() int { return c.released }

// ColdController is the from-scratch reference: every request re-builds a
// cold Analyzer and re-runs the full holistic fixpoint over every flow,
// and a rejection is rolled back by popping the tentative flow. It exists
// to differential-test and benchmark the incremental Controller against.
type ColdController struct {
	nw  *network.Network
	cfg core.Config

	decisions []Decision
}

// NewColdController returns the from-scratch baseline controller.
func NewColdController(nw *network.Network, cfg core.Config) (*ColdController, error) {
	if nw == nil {
		return nil, fmt.Errorf("admission: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return &ColdController{nw: nw, cfg: cfg}, nil
}

// Network returns the controlled network.
func (c *ColdController) Network() *network.Network { return c.nw }

// NumFlows returns the number of currently admitted flows.
func (c *ColdController) NumFlows() int { return c.nw.NumFlows() }

// Request tentatively adds the flow, analyses the whole network cold, and
// keeps the flow only when every flow stays schedulable.
func (c *ColdController) Request(fs *network.FlowSpec) (Decision, error) {
	if _, err := c.nw.AddFlow(fs); err != nil {
		return Decision{}, err
	}
	an, err := core.NewAnalyzer(c.nw, c.cfg)
	if err != nil {
		c.nw.RemoveLastFlow()
		return Decision{}, err
	}
	res, err := an.Analyze()
	if err != nil {
		c.nw.RemoveLastFlow()
		return Decision{}, err
	}
	d := Decision{
		FlowName: fs.Flow.Name,
		Admitted: res.Schedulable(),
		Result:   res,
	}
	if !d.Admitted {
		c.nw.RemoveLastFlow()
	}
	c.decisions = append(c.decisions, d)
	return d, nil
}

// Release removes the first flow with the given name.
func (c *ColdController) Release(name string) (bool, error) {
	for i := 0; i < c.nw.NumFlows(); i++ {
		if c.nw.Flow(i).Flow.Name == name {
			c.nw.RemoveFlow(i)
			return true, nil
		}
	}
	return false, nil
}

// Decisions returns all decisions in request order.
func (c *ColdController) Decisions() []Decision { return c.decisions }
