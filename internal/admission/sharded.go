package admission

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// ShardedController is the closure-sharded admission controller: it
// routes every request to the interference closure it belongs to and
// decides it inside that closure's private shard engine, so requests
// into disjoint closures (different fat-tree pods, separate ring
// segments) never share analysis state and batches spanning several
// closures are decided concurrently.
//
// Decisions are identical to the monolithic Controller's: a flow's
// bounds depend only on the flows its pipeline transitively shares
// resources with, so analysing its closure in isolation computes the
// exact same fixpoint the monolithic engine would. A newcomer whose
// pipeline bridges two closures fuses their shards (a warm arena
// splice — see core.ShardedEngine) before admission; a batch whose
// specs bridge closures is decided group-by-group on the fused shard,
// which for that group is the monolithic engine. The equality is
// pinned by differential tests on ring, fat-tree and the shipped
// industrial-ring topologies, and by the golden replay trace.
//
// Error contract: Request and Release match Controller exactly —
// Release removes the first admitted flow with the name in global
// admission order, even when names repeat. RequestBatch pre-validates
// the whole batch (a malformed spec fails the batch with no decisions,
// like Controller.RequestBatch); an analysis error mid-batch —
// unreachable for validated specs on a validated topology — rolls back
// the failing group's shard but, unlike the monolithic controller,
// leaves other groups' admissions standing and recorded (visible via
// Decisions, releasable via Release). Decision.View covers the
// request's interference closure, not the whole network; see Decision.
//
// A ShardedController is not safe for concurrent use; RequestBatch
// parallelises internally over independent groups.
type ShardedController struct {
	se *core.ShardedEngine

	// residents lists the admitted flows in admission order (shard
	// membership scatters them across engines, so the global order
	// lives here). Release consumes it front-first per name, exactly
	// like Controller.Release walks its network — including when
	// several admitted flows share a name.
	residents []*network.FlowSpec

	decisions []Decision
	released  int
}

// NewShardedController returns a sharded controller over the network;
// flows already present are treated as admitted and partitioned into
// shards by interference closure. The network is validated once; it is
// only read (shards re-register its flows over the shared topology).
func NewShardedController(nw *network.Network, cfg core.Config) (*ShardedController, error) {
	se, err := core.NewShardedEngine(nw, cfg)
	if err != nil {
		return nil, err
	}
	c := &ShardedController{se: se}
	c.residents = append(c.residents, nw.Flows()...)
	return c, nil
}

// Sharded exposes the underlying sharded engine, e.g. to inspect the
// shard partition or read per-shard bounds without issuing a request.
func (c *ShardedController) Sharded() *core.ShardedEngine { return c.se }

// Request routes the flow to its closure's shard — fusing shards first
// when the flow bridges closures, opening a fresh one when it touches
// none — and decides it there with the standard snapshot / delta
// analysis / rollback protocol, scoped to that one shard.
func (c *ShardedController) Request(fs *network.FlowSpec) (Decision, error) {
	p, err := c.se.Place(fs)
	if err != nil {
		return Decision{}, err
	}
	tmp := &Controller{eng: p.Engine()}
	d, err := tmp.Request(fs)
	if err != nil {
		p.Commit()
		c.resplitAfterRejection(p.Fused())
		return Decision{}, err
	}
	if d.Admitted {
		p.Commit(fs)
		c.residents = append(c.residents, fs)
	} else {
		p.Commit()
		c.resplitAfterRejection(p.Fused())
	}
	c.decisions = append(c.decisions, d)
	return d, nil
}

// resplitAfterRejection undoes a fusion performed for a request that
// was then rejected (or failed): the fused shard holds the still
// disjoint closures, so without this, arrival-only workloads with
// rejected bridging requests would monotonically collapse the
// partition toward one monolithic shard. A no-op when nothing fused.
func (c *ShardedController) resplitAfterRejection(fused int) {
	if fused == 0 {
		return
	}
	// Resplit is atomic per shard, so discarding its error is safe:
	// on failure the partition merely stays fused, which is
	// conservative — decisions are unaffected, only parallelism and
	// rollback scope degrade until a later re-split succeeds.
	_, _ = c.se.Resplit()
}

// RequestAll processes the requests in order, stopping at the first
// malformed request, exactly like Controller.RequestAll.
func (c *ShardedController) RequestAll(specs []*network.FlowSpec) ([]Decision, error) {
	out := make([]Decision, 0, len(specs))
	for _, fs := range specs {
		d, err := c.Request(fs)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// RequestBatch decides a batch shard-by-shard: the specs are
// partitioned into interference groups (specs sharing a resource with
// each other or with a common shard), each group is placed — fusing
// the shards it bridges, so the group's engine is monolithic for the
// group — and the groups are decided concurrently through the standard
// batched protocol (one converged worklist per group, violators
// evicted in request order). Groups are independent by construction,
// so the combined decisions equal deciding the whole batch in one
// monolithic engine, in request order.
func (c *ShardedController) RequestBatch(specs []*network.FlowSpec) ([]Decision, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if err := c.se.ValidateSpecs(specs); err != nil {
		return nil, err
	}
	groups, err := c.se.PlaceBatch(specs)
	if err != nil {
		return nil, err
	}
	type result struct {
		ds  []Decision
		err error
	}
	results := make([]result, len(groups))
	groupSpecs := make([][]*network.FlowSpec, len(groups))
	for gi, g := range groups {
		groupSpecs[gi] = make([]*network.FlowSpec, len(g.Indices))
		for at, i := range g.Indices {
			groupSpecs[gi][at] = specs[i]
		}
	}
	core.RunLimitedWorkers(len(groups), c.se.PoolWorkers(), func(gi int) {
		results[gi].ds, results[gi].err = (&Controller{eng: groups[gi].Engine()}).RequestBatch(groupSpecs[gi])
	})
	var firstErr error
	fusedRejection := false
	for gi, g := range groups {
		admitted := make([]bool, len(g.Indices))
		allAdmitted := true
		for at, d := range results[gi].ds {
			admitted[at] = d.Admitted
			allAdmitted = allAdmitted && d.Admitted
		}
		g.Commit(admitted)
		if g.Fused() > 0 && (!allAdmitted || results[gi].err != nil) {
			fusedRejection = true
		}
		if results[gi].err != nil && firstErr == nil {
			firstErr = results[gi].err
		}
	}
	if fusedRejection {
		// A rejected (or failed) bridging spec fused shards that are
		// still disjoint closures; re-split so the partition does not
		// decay in arrival-only workloads.
		if _, err := c.se.Resplit(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Scatter per-group decisions back to batch positions; a group
	// that errored contributed none.
	out := make([]Decision, len(specs))
	decided := make([]bool, len(specs))
	for gi, g := range groups {
		for at, d := range results[gi].ds {
			out[g.Indices[at]] = d
			decided[g.Indices[at]] = true
		}
	}
	for i, d := range out {
		if decided[i] && d.Admitted {
			c.residents = append(c.residents, specs[i])
		}
	}
	if firstErr != nil {
		// Groups that finished keep their admissions (unlike the
		// monolithic controller, which rolls the whole batch back on
		// error); record their decisions too, so Release, Decisions
		// and the counters stay consistent with the shard engines,
		// then surface the error.
		for i, d := range out {
			if decided[i] {
				c.decisions = append(c.decisions, d)
			}
		}
		return nil, firstErr
	}
	c.decisions = append(c.decisions, out...)
	return out, nil
}

// Release removes the first *admitted* flow with the given name — in
// global admission order, exactly like Controller.Release, even when
// several admitted flows share a name — re-converges its shard,
// releases the departed flow's resource routes, and re-splits any
// shard whose flows no longer form a single closure. It reports
// whether a flow was removed.
func (c *ShardedController) Release(name string) (bool, error) {
	at := -1
	for k, fs := range c.residents {
		if fs.Flow.Name == name {
			at = k
			break
		}
	}
	if at < 0 {
		return false, nil
	}
	eng, i, ok := c.se.FindSpec(c.residents[at])
	if !ok {
		return false, fmt.Errorf("admission: resident flow %q missing from every shard", name)
	}
	if err := c.se.Remove(eng, i); err != nil {
		return false, err
	}
	c.residents = append(c.residents[:at], c.residents[at+1:]...)
	if err := eng.Refresh(); err != nil {
		return false, err
	}
	if _, err := c.se.Resplit(); err != nil {
		return false, err
	}
	c.released++
	return true, nil
}

// Decisions returns all decisions in request order.
func (c *ShardedController) Decisions() []Decision { return c.decisions }

// Admitted returns the number of admitted flows among the processed
// requests.
func (c *ShardedController) Admitted() int {
	n := 0
	for _, d := range c.decisions {
		if d.Admitted {
			n++
		}
	}
	return n
}

// Rejected returns the number of rejected requests.
func (c *ShardedController) Rejected() int { return len(c.decisions) - c.Admitted() }

// Released returns the number of departures processed by Release.
func (c *ShardedController) Released() int { return c.released }

// NumFlows returns the number of currently admitted flows across all
// shards.
func (c *ShardedController) NumFlows() int { return c.se.NumFlows() }

// NumShards returns the number of live shards (one per interference
// closure, up to pending re-splits).
func (c *ShardedController) NumShards() int { return c.se.NumShards() }
