package admission

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// frameCap is a deep, slice-free capture of one flow's bounds read off a
// decision view at decision time.
type frameCap struct {
	name     string
	hasErr   bool
	response []units.Time
	deadline []units.Time
}

func captureView(v *core.ResultView) []frameCap {
	out := make([]frameCap, v.NumFlows())
	for i := range out {
		fr := v.Flow(i)
		c := frameCap{name: fr.Name, hasErr: fr.Err != nil}
		for k := range fr.Frames {
			c.response = append(c.response, fr.Frames[k].Response)
			c.deadline = append(c.deadline, fr.Frames[k].Deadline)
		}
		out[i] = c
	}
	return out
}

func checkCapture(t *testing.T, label string, v *core.ResultView, want []frameCap) {
	t.Helper()
	if v.NumFlows() != len(want) {
		t.Fatalf("%s: view now covers %d flows, captured %d", label, v.NumFlows(), len(want))
	}
	for i, w := range want {
		fr := v.Flow(i)
		if fr.Name != w.name || (fr.Err != nil) != w.hasErr || len(fr.Frames) != len(w.response) {
			t.Fatalf("%s: flow %d drifted: %+v vs capture %+v", label, i, fr, w)
		}
		for k := range w.response {
			if fr.Frames[k].Response != w.response[k] || fr.Frames[k].Deadline != w.deadline[k] {
				t.Fatalf("%s: flow %d frame %d bound drifted: %v/%v vs %v/%v",
					label, i, k, fr.Frames[k].Response, fr.Frames[k].Deadline, w.response[k], w.deadline[k])
			}
		}
	}
}

// TestDecisionViewsMatchColdBounds drives the view-based incremental
// controller and the from-scratch cold baseline through an identical
// randomized request/departure stream and pins, per decision: the
// verdict, the bounds served by the decision's copy-on-read view against
// the cold controller's detached result, and — the new property — that
// every retained decision view keeps serving its decision-time bounds
// unchanged while later requests, rejections and departures churn the
// shared engine state underneath it.
func TestDecisionViewsMatchColdBounds(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
			inc, err := NewController(network.New(topo), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := NewColdController(network.New(topo), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			routes := [][]network.NodeID{
				{"0", "4", "6", "3"},
				{"1", "4", "6", "3"},
				{"2", "5", "6", "3"},
			}
			type retained struct {
				d    Decision
				want []frameCap
				op   int
			}
			var kept []retained
			var admittedNames []string
			for op := 0; op < 30; op++ {
				if len(admittedNames) > 0 && r.Float64() < 0.25 {
					victim := admittedNames[r.Intn(len(admittedNames))]
					if _, err := inc.Release(victim); err != nil {
						t.Fatal(err)
					}
					if _, err := cold.Release(victim); err != nil {
						t.Fatal(err)
					}
					for i, n := range admittedNames {
						if n == victim {
							admittedNames = append(admittedNames[:i], admittedNames[i+1:]...)
							break
						}
					}
				} else {
					nm := fmt.Sprintf("f%d", op)
					route := routes[r.Intn(len(routes))]
					var flow = trace.CBRVideo(nm, 2000+r.Int63n(20000), 40*units.Millisecond, 250*units.Millisecond)
					if r.Intn(3) == 0 {
						flow = trace.MPEGIBBPBBPBB(nm, trace.MPEGOptions{Deadline: 300 * units.Millisecond})
					}
					spec := &network.FlowSpec{Flow: flow, Route: route, Priority: network.Priority(r.Intn(3))}
					specCopy := *spec
					dInc, err := inc.Request(spec)
					if err != nil {
						t.Fatal(err)
					}
					dCold, err := cold.Request(&specCopy)
					if err != nil {
						t.Fatal(err)
					}
					if dInc.Admitted != dCold.Admitted {
						t.Fatalf("op %d: verdicts diverged: view=%v cold=%v", op, dInc.Admitted, dCold.Admitted)
					}
					if dInc.View == nil {
						t.Fatalf("op %d: engine controller produced no view", op)
					}
					if dInc.View.Schedulable() != dInc.Admitted {
						t.Fatalf("op %d: view verdict %v, decision %v", op, dInc.View.Schedulable(), dInc.Admitted)
					}
					// For converged analyses — admissions and deadline-miss
					// rejections — the view's bounds must equal the cold
					// baseline's detached result, flow for flow (the least
					// fixpoint is unique). Stage-error analyses are only
					// verdict-compared: the one-shot analyzer stops at the
					// failing flow and leaves the rest zero, while the warm
					// engine legitimately still carries the other flows'
					// previous bounds.
					if dInc.View.Converged() && dCold.Result.Converged {
						want := dCold.Result
						if dInc.View.NumFlows() != len(want.Flows) {
							t.Fatalf("op %d: view covers %d flows, cold result %d", op, dInc.View.NumFlows(), len(want.Flows))
						}
						for i := range want.Flows {
							g, w := dInc.View.Flow(i), &want.Flows[i]
							if g.Name != w.Name || (g.Err == nil) != (w.Err == nil) || len(g.Frames) != len(w.Frames) {
								t.Fatalf("op %d flow %d: %+v vs cold %+v", op, i, g, w)
							}
							for k := range w.Frames {
								if g.Frames[k].Response != w.Frames[k].Response {
									t.Fatalf("op %d flow %d frame %d: bound %v vs cold %v",
										op, i, k, g.Frames[k].Response, w.Frames[k].Response)
								}
							}
						}
					}
					kept = append(kept, retained{d: dInc, want: captureView(dInc.View), op: op})
					if dInc.Admitted {
						admittedNames = append(admittedNames, nm)
					}
				}
				for _, re := range kept {
					checkCapture(t, fmt.Sprintf("op %d, decision from op %d", op, re.op), re.d.View, re.want)
				}
			}
			// Materialized decisions must reproduce the captures too, and
			// Analysis() must serve them controller-agnostically.
			for _, re := range kept {
				res := re.d.Analysis()
				if len(res.Flows) != len(re.want) {
					t.Fatalf("decision from op %d materialized to %d flows, captured %d", re.op, len(res.Flows), len(re.want))
				}
				for i, w := range re.want {
					for k := range w.response {
						if res.Flows[i].Frames[k].Response != w.response[k] {
							t.Fatalf("decision from op %d: materialized flow %d frame %d drifted", re.op, i, k)
						}
					}
				}
			}
		})
	}
}

// TestBatchDecisionViews pins the batched path's view plumbing: admitted
// decisions share the batch's final converged view, rejected decisions
// carry the violating probe analysis, and both stay frozen across a
// subsequent batch.
func TestBatchDecisionViews(t *testing.T) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
	ctl, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []*network.FlowSpec{
		{Flow: trace.CBRVideo("a", 4000, 40*units.Millisecond, 300*units.Millisecond), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 1},
		{Flow: trace.CBRVideo("hog", 150000, 100*units.Millisecond, 100*units.Millisecond), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 2},
		{Flow: trace.CBRVideo("b", 4000, 40*units.Millisecond, 300*units.Millisecond), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 1},
	}
	ds, err := ctl.RequestBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !ds[0].Admitted || ds[1].Admitted || !ds[2].Admitted {
		t.Fatalf("unexpected verdicts: %v %v %v", ds[0].Admitted, ds[1].Admitted, ds[2].Admitted)
	}
	if ds[0].View != ds[2].View {
		t.Fatal("admitted batch decisions do not share the final view")
	}
	if ds[1].View == ds[0].View {
		t.Fatal("rejected decision shares the admitted view")
	}
	if ds[1].View.Schedulable() {
		t.Fatal("rejected decision's view claims schedulable")
	}
	caps := [][]frameCap{captureView(ds[0].View), captureView(ds[1].View)}
	// Churn the engine: another batch plus a departure.
	if _, err := ctl.RequestBatch([]*network.FlowSpec{
		{Flow: trace.CBRVideo("c", 4000, 40*units.Millisecond, 300*units.Millisecond), Route: []network.NodeID{"2", "5", "6", "3"}, Priority: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Release("a"); err != nil {
		t.Fatal(err)
	}
	checkCapture(t, "admitted batch view", ds[0].View, caps[0])
	checkCapture(t, "rejected batch view", ds[1].View, caps[1])
}
