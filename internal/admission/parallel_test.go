package admission

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// stressSpec builds one request for the fusion stress test: mostly
// local traffic under one ring switch, every third request bridging the
// backbone to a far switch (forcing closure fusion), every fifth a
// deliberately heavy CBR flow (forcing rejections, and therefore
// fused-rejection re-splits).
func stressSpec(t *testing.T, topo *network.Topology, hosts []network.NodeID, hostsPer, switches, g, phase, k int) *network.FlowSpec {
	t.Helper()
	name := fmt.Sprintf("p%dg%df%d", phase, g, k)
	src := hosts[(g%switches)*hostsPer+k%hostsPer]
	dstSwitch := g % switches
	if k%3 == 2 {
		dstSwitch = (g + switches/2) % switches // cross the backbone: fuse
	}
	dst := hosts[dstSwitch*hostsPer+(k+1)%hostsPer]
	if src == dst {
		dst = hosts[dstSwitch*hostsPer+(k+2)%hostsPer]
	}
	route, err := topo.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var fs *network.FlowSpec
	if k%5 == 4 {
		// ~53 Mbit/s: a handful of these overload a 100 Mbit/s host link.
		fs = &network.FlowSpec{
			Flow: trace.CBRVideo(name, 200000, 30*units.Millisecond, 250*units.Millisecond),
		}
	} else {
		fs = &network.FlowSpec{
			Flow: trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			RTP:  true,
		}
	}
	fs.Route = route
	fs.Priority = network.Priority(1 + k%3)
	return fs
}

// residentSpecs snapshots the controller's resident flows, sorted by
// name for deterministic iteration.
func residentSpecs(ctl *ParallelController) []*network.FlowSpec {
	ctl.mu.Lock()
	var out []*network.FlowSpec
	for _, q := range ctl.residents {
		out = append(out, q...)
	}
	ctl.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Flow.Name < out[j].Flow.Name })
	return out
}

// checkParallelPartition asserts, at quiescence, that the shards
// partition exactly the controller's resident flows: every resident in
// exactly one shard, no strays.
func checkParallelPartition(t *testing.T, ctl *ParallelController) {
	t.Helper()
	want := make(map[string]int)
	for _, fs := range residentSpecs(ctl) {
		want[fs.Flow.Name]++
	}
	got := make(map[string]int)
	for _, eng := range ctl.se.Shards() {
		nw := eng.Network()
		for i := 0; i < nw.NumFlows(); i++ {
			got[nw.Flow(i).Flow.Name]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("partition holds %d distinct flows, residents list %d", len(got), len(want))
	}
	for name, n := range want {
		if got[name] != n {
			t.Fatalf("flow %q: %d copies across shards, want %d", name, got[name], n)
		}
	}
}

// TestParallelFusionStress is the correctness gate for fusion as
// ownership transfer: concurrent submitters whose pipelines repeatedly
// bridge closures (fusing shards mid-flight), heavy flows forcing
// rejections and deferred re-splits, concurrent departures, and
// pipelined batches — hammered through the scheduler, then checked
// against a from-scratch cold analysis of whatever was admitted. Run
// under -race (the CI race job picks it up) this pins that no engine
// state is ever touched by two goroutines at once.
func TestParallelFusionStress(t *testing.T) {
	const (
		switches = 8
		hostsPer = 4
		workers  = 4
		gors     = 6
		phases   = 3
		perPhase = 8
	)
	topo, hosts, err := network.Ring(switches, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewParallelController(network.New(topo), core.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}

	for phase := 0; phase < phases; phase++ {
		var wg sync.WaitGroup
		for g := 0; g < gors; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var batch []*network.FlowSpec
				for k := 0; k < perPhase; k++ {
					fs := stressSpec(t, topo, hosts, hostsPer, switches, g, phase, k)
					if k%2 == 0 {
						// Pipelined two-spec batches, never waited for:
						// later submissions overlap their decisions.
						batch = append(batch, fs)
						if len(batch) == 2 {
							if _, err := ctl.SubmitBatch(batch); err != nil {
								t.Error(err)
								return
							}
							batch = nil
						}
					} else if _, err := ctl.Request(fs); err != nil {
						t.Error(err)
						return
					}
				}
				if len(batch) > 0 {
					if _, err := ctl.SubmitBatch(batch); err != nil {
						t.Error(err)
					}
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		// Concurrent departures: each goroutine releases a slice of this
		// phase's admitted flows while the others do the same.
		ctl.mu.Lock()
		for len(ctl.tickets) > 0 {
			ctl.cond.Wait()
		}
		ctl.mu.Unlock()
		var names []string
		for _, fs := range residentSpecs(ctl) {
			names = append(names, fs.Flow.Name)
		}
		var rg sync.WaitGroup
		for g := 0; g < gors; g++ {
			rg.Add(1)
			go func(g int) {
				defer rg.Done()
				for i := g; i < len(names); i += gors {
					if i%3 != 0 {
						continue
					}
					if _, err := ctl.Release(names[i]); err != nil {
						t.Error(err)
					}
				}
			}(g)
		}
		rg.Wait()
		if err := ctl.Flush(); err != nil {
			t.Fatalf("phase %d flush: %v", phase, err)
		}
		wantFlows := ctl.NumResidents()
		if got := ctl.NumFlows(); got != wantFlows {
			t.Fatalf("phase %d: %d flows across shards, residents list %d", phase, got, wantFlows)
		}
		checkParallelPartition(t, ctl)
	}

	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	if ctl.Admitted()+ctl.Rejected() != len(ctl.Decisions()) {
		t.Fatalf("counters disagree: %d + %d != %d decisions",
			ctl.Admitted(), ctl.Rejected(), len(ctl.Decisions()))
	}

	// The admitted set must be schedulable and every shard's bounds must
	// equal a from-scratch cold analysis of exactly that set.
	ref := network.New(topo)
	for _, fs := range residentSpecs(ctl) {
		if _, err := ref.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	an, err := core.NewAnalyzer(ref, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !want.Schedulable() {
		t.Fatal("admitted set is not schedulable")
	}
	checkEngineBounds(t, ctl.Sharded(), want)
}

// TestParallelMatchesShardedSerially pins the serial-client contract:
// one goroutine issuing the same randomized Request/Release stream to
// the parallel and the serial sharded controller gets byte-identical
// decisions and identical final bounds.
func TestParallelMatchesShardedSerially(t *testing.T) {
	topo, hosts, err := network.Ring(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	specs := batchSpecs(t, r, topo, hosts, 24, "pm-")
	parCtl, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	shardCtl, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, fs := range specs {
		pd, err := parCtl.Request(fs)
		if err != nil {
			t.Fatal(err)
		}
		cp := *fs
		sd, err := shardCtl.Request(&cp)
		if err != nil {
			t.Fatal(err)
		}
		if pd.Admitted != sd.Admitted {
			t.Fatalf("spec %d (%s): parallel=%v sharded=%v", i, fs.Flow.Name, pd.Admitted, sd.Admitted)
		}
		if pd.Admitted && i%4 == 0 {
			pok, err := parCtl.Release(fs.Flow.Name)
			if err != nil {
				t.Fatal(err)
			}
			sok, err := shardCtl.Release(fs.Flow.Name)
			if err != nil {
				t.Fatal(err)
			}
			if pok != sok {
				t.Fatalf("release %q: parallel=%v sharded=%v", fs.Flow.Name, pok, sok)
			}
		}
	}
	if err := parCtl.Close(); err != nil {
		t.Fatal(err)
	}
	if parCtl.NumFlows() != shardCtl.NumFlows() {
		t.Fatalf("final flows: parallel=%d sharded=%d", parCtl.NumFlows(), shardCtl.NumFlows())
	}
	if parCtl.Released() != shardCtl.Released() {
		t.Fatalf("released: parallel=%d sharded=%d", parCtl.Released(), shardCtl.Released())
	}
	results, err := shardCtl.Sharded().AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	want := &core.Result{Converged: true}
	for _, res := range results {
		want.Flows = append(want.Flows, res.Flows...)
	}
	checkEngineBounds(t, parCtl.Sharded(), want)
}

// TestParallelErrorContract pins malformed-input behavior: a bad batch
// fails synchronously with no decisions recorded, a bad single request
// surfaces its error through Wait, and the controller keeps working
// afterwards.
func TestParallelErrorContract(t *testing.T) {
	topo, hosts, err := network.Ring(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	bad := &network.FlowSpec{
		Flow:  trace.VoIP("bad", trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
		Route: []network.NodeID{"nope1", "nope2"},
	}
	if _, err := ctl.RequestBatch([]*network.FlowSpec{bad}); err == nil {
		t.Fatal("batch with malformed spec: want validation error")
	}
	if n := len(ctl.Decisions()); n != 0 {
		t.Fatalf("failed batch recorded %d decisions", n)
	}
	if _, err := ctl.Request(bad); err == nil {
		t.Fatal("malformed single request: want error")
	}

	route, err := topo.Route(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	good := &network.FlowSpec{
		Flow:     trace.VoIP("good", trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
		Route:    route,
		RTP:      true,
		Priority: 2,
	}
	d, err := ctl.Request(good)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("feasible flow rejected after error")
	}
	if err := ctl.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if ctl.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d, want 1", ctl.NumFlows())
	}
}

// TestParallelEmptyBatch pins the trivial edges: empty submissions
// decide nothing and Wait returns immediately.
func TestParallelEmptyBatch(t *testing.T) {
	topo, _, err := network.Ring(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ds, err := ctl.RequestBatch(nil)
	if err != nil || ds != nil {
		t.Fatalf("empty RequestBatch = (%v, %v), want (nil, nil)", ds, err)
	}
	pb, err := ctl.SubmitBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds, err := pb.Wait(); err != nil || ds != nil {
		t.Fatalf("empty SubmitBatch Wait = (%v, %v), want (nil, nil)", ds, err)
	}
	if ok, err := ctl.Release("ghost"); ok || err != nil {
		t.Fatalf("Release(ghost) = (%v, %v), want (false, nil)", ok, err)
	}
}

// TestParallelRetentionCounters pins the lean retention mode the load
// harness replays under: decisions and departures are identical to
// RetainAll, the counters agree, but no decision log (and no
// materialized analyses) accumulate.
func TestParallelRetentionCounters(t *testing.T) {
	topo, hosts, err := network.Ring(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	specs := batchSpecs(t, r, topo, hosts, 48, "rt-")
	full, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lean, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lean.SetRetention(RetainCounters)
	for i, fs := range specs {
		fd, err := full.Request(fs)
		if err != nil {
			t.Fatal(err)
		}
		cp := *fs
		ld, err := lean.Request(&cp)
		if err != nil {
			t.Fatal(err)
		}
		if fd.Admitted != ld.Admitted {
			t.Fatalf("spec %d (%s): full=%v lean=%v", i, fs.Flow.Name, fd.Admitted, ld.Admitted)
		}
		if ld.Result != nil || ld.View != nil {
			t.Fatalf("spec %d: lean decision kept an analysis", i)
		}
		if fd.Admitted && i%3 == 0 {
			fok, err := full.Release(fs.Flow.Name)
			if err != nil {
				t.Fatal(err)
			}
			lok, err := lean.Release(fs.Flow.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !fok || !lok {
				t.Fatalf("release %q: full=%v lean=%v", fs.Flow.Name, fok, lok)
			}
		}
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lean.Close(); err != nil {
		t.Fatal(err)
	}
	if full.Admitted() != lean.Admitted() || full.Rejected() != lean.Rejected() ||
		full.Released() != lean.Released() {
		t.Fatalf("counters: full %d/%d/%d, lean %d/%d/%d",
			full.Admitted(), full.Rejected(), full.Released(),
			lean.Admitted(), lean.Rejected(), lean.Released())
	}
	if len(full.Decisions()) != len(specs) {
		t.Fatalf("full log = %d decisions, want %d", len(full.Decisions()), len(specs))
	}
	if n := len(lean.Decisions()); n != 0 {
		t.Fatalf("lean log = %d decisions, want none", n)
	}
	if lean.NumResidents() != lean.Admitted()-lean.Released() {
		t.Fatalf("residents %d != admitted %d - released %d",
			lean.NumResidents(), lean.Admitted(), lean.Released())
	}
	if lean.NumFlows() != lean.NumResidents() {
		t.Fatalf("shard flows %d != residents %d", lean.NumFlows(), lean.NumResidents())
	}
	checkParallelPartition(t, lean)
}
