package admission

import (
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

const ms = units.Millisecond

func newController(t *testing.T) *Controller {
	t.Helper()
	topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
	c, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func voipSpec(name string, src network.NodeID) *network.FlowSpec {
	return &network.FlowSpec{
		Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * ms}),
		Route:    []network.NodeID{src, "4", "6", "3"},
		Priority: 1,
	}
}

func TestNewControllerErrors(t *testing.T) {
	if _, err := NewController(nil, core.Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestAdmitFeasibleFlow(t *testing.T) {
	c := newController(t)
	d, err := c.Request(voipSpec("v1", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("feasible flow rejected: %+v", d.Result)
	}
	if c.Network().NumFlows() != 1 {
		t.Fatalf("network has %d flows, want 1", c.Network().NumFlows())
	}
	if c.Admitted() != 1 || c.Rejected() != 0 {
		t.Fatalf("counters: %d/%d", c.Admitted(), c.Rejected())
	}
}

func TestRejectInfeasibleFlowAndRollBack(t *testing.T) {
	c := newController(t)
	// A flow that saturates the 10 Mbit/s first hop on its own.
	hog := &network.FlowSpec{
		Flow:     trace.CBRVideo("hog", 150000, 100*ms, 100*ms), // 12 Mbit/s
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	}
	d, err := c.Request(hog)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatal("overloading flow admitted")
	}
	if c.Network().NumFlows() != 0 {
		t.Fatal("rejected flow not rolled back")
	}
	// The network keeps working for later feasible requests.
	d, err = c.Request(voipSpec("v1", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("feasible flow rejected after rollback")
	}
}

func TestExistingFlowsProtected(t *testing.T) {
	c := newController(t)
	// Fill the network with video until a request is refused; admitted
	// flows must all stay schedulable throughout.
	admitted := 0
	for i := 0; ; i++ {
		spec := &network.FlowSpec{
			Flow:     trace.CBRVideo(name(i), 15000, 50*ms, 200*ms), // 2.4 Mbit/s
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 1,
		}
		d, err := c.Request(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			break
		}
		admitted++
		if admitted > 20 {
			t.Fatal("admission never saturates")
		}
	}
	if admitted == 0 {
		t.Fatal("no flow admitted at all")
	}
	// Final network must be schedulable.
	an, err := core.NewAnalyzer(c.Network(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable() {
		t.Fatal("admitted set is not schedulable")
	}
	if c.Admitted() != admitted || c.Rejected() != 1 {
		t.Fatalf("counters: %d/%d, want %d/1", c.Admitted(), c.Rejected(), admitted)
	}
	if len(c.Decisions()) != admitted+1 {
		t.Fatalf("decisions = %d", len(c.Decisions()))
	}
}

func TestMalformedRequestReturnsError(t *testing.T) {
	c := newController(t)
	bad := &network.FlowSpec{
		Flow:  trace.VoIP("bad", trace.VoIPOptions{}),
		Route: []network.NodeID{"0", "5", "3"}, // no such link
	}
	if _, err := c.Request(bad); err == nil {
		t.Fatal("malformed request accepted")
	}
	if c.Network().NumFlows() != 0 {
		t.Fatal("malformed request left residue")
	}
	if len(c.Decisions()) != 0 {
		t.Fatal("malformed request recorded a decision")
	}
}

func name(i int) string {
	return "cbr" + string(rune('a'+i))
}
