package admission

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

const ms = units.Millisecond

func newController(t *testing.T) *Controller {
	t.Helper()
	topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
	c, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func voipSpec(name string, src network.NodeID) *network.FlowSpec {
	return &network.FlowSpec{
		Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * ms}),
		Route:    []network.NodeID{src, "4", "6", "3"},
		Priority: 1,
	}
}

func TestNewControllerErrors(t *testing.T) {
	if _, err := NewController(nil, core.Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestAdmitFeasibleFlow(t *testing.T) {
	c := newController(t)
	d, err := c.Request(voipSpec("v1", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("feasible flow rejected: %+v", d.Analysis())
	}
	if c.Network().NumFlows() != 1 {
		t.Fatalf("network has %d flows, want 1", c.Network().NumFlows())
	}
	if c.Admitted() != 1 || c.Rejected() != 0 {
		t.Fatalf("counters: %d/%d", c.Admitted(), c.Rejected())
	}
}

func TestRejectInfeasibleFlowAndRollBack(t *testing.T) {
	c := newController(t)
	// A flow that saturates the 10 Mbit/s first hop on its own.
	hog := &network.FlowSpec{
		Flow:     trace.CBRVideo("hog", 150000, 100*ms, 100*ms), // 12 Mbit/s
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	}
	d, err := c.Request(hog)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatal("overloading flow admitted")
	}
	if c.Network().NumFlows() != 0 {
		t.Fatal("rejected flow not rolled back")
	}
	// The network keeps working for later feasible requests.
	d, err = c.Request(voipSpec("v1", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("feasible flow rejected after rollback")
	}
}

func TestExistingFlowsProtected(t *testing.T) {
	c := newController(t)
	// Fill the network with video until a request is refused; admitted
	// flows must all stay schedulable throughout.
	admitted := 0
	for i := 0; ; i++ {
		spec := &network.FlowSpec{
			Flow:     trace.CBRVideo(name(i), 15000, 50*ms, 200*ms), // 2.4 Mbit/s
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 1,
		}
		d, err := c.Request(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			break
		}
		admitted++
		if admitted > 20 {
			t.Fatal("admission never saturates")
		}
	}
	if admitted == 0 {
		t.Fatal("no flow admitted at all")
	}
	// Final network must be schedulable.
	an, err := core.NewAnalyzer(c.Network(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable() {
		t.Fatal("admitted set is not schedulable")
	}
	if c.Admitted() != admitted || c.Rejected() != 1 {
		t.Fatalf("counters: %d/%d, want %d/1", c.Admitted(), c.Rejected(), admitted)
	}
	if len(c.Decisions()) != admitted+1 {
		t.Fatalf("decisions = %d", len(c.Decisions()))
	}
}

func TestMalformedRequestReturnsError(t *testing.T) {
	c := newController(t)
	bad := &network.FlowSpec{
		Flow:  trace.VoIP("bad", trace.VoIPOptions{}),
		Route: []network.NodeID{"0", "5", "3"}, // no such link
	}
	if _, err := c.Request(bad); err == nil {
		t.Fatal("malformed request accepted")
	}
	if c.Network().NumFlows() != 0 {
		t.Fatal("malformed request left residue")
	}
	if len(c.Decisions()) != 0 {
		t.Fatal("malformed request recorded a decision")
	}
}

func name(i int) string {
	return "cbr" + string(rune('a'+i))
}

func TestRequestAllAndRelease(t *testing.T) {
	c := newController(t)
	specs := []*network.FlowSpec{
		voipSpec("v1", "0"),
		voipSpec("v2", "1"),
		voipSpec("v3", "2"),
	}
	specs[2].Route = []network.NodeID{"2", "5", "6", "3"}
	ds, err := c.RequestAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 || c.Admitted() != 3 {
		t.Fatalf("batch admitted %d of %d", c.Admitted(), len(ds))
	}
	ok, err := c.Release("v2")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || c.Network().NumFlows() != 2 || c.Released() != 1 {
		t.Fatalf("release: ok=%v flows=%d released=%d", ok, c.Network().NumFlows(), c.Released())
	}
	if ok, _ := c.Release("ghost"); ok {
		t.Fatal("released a flow that does not exist")
	}
	// Departure must leave the controller consistent for new requests.
	d, err := c.Request(voipSpec("v4", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("request after release rejected")
	}
}

// TestIncrementalMatchesColdController drives the incremental controller
// and the from-scratch baseline through identical randomized request/
// departure sequences; every decision, the admitted flow sets and the
// published bounds must agree exactly.
func TestIncrementalMatchesColdController(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
			inc, err := NewController(network.New(topo), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := NewColdController(network.New(topo), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			hosts := []network.NodeID{"0", "1", "2"}
			routesTo3 := map[network.NodeID][]network.NodeID{
				"0": {"0", "4", "6", "3"},
				"1": {"1", "4", "6", "3"},
				"2": {"2", "5", "6", "3"},
			}
			var admittedNames []string
			for op := 0; op < 25; op++ {
				if len(admittedNames) > 0 && r.Float64() < 0.25 {
					victim := admittedNames[r.Intn(len(admittedNames))]
					okInc, err := inc.Release(victim)
					if err != nil {
						t.Fatal(err)
					}
					okCold, err := cold.Release(victim)
					if err != nil {
						t.Fatal(err)
					}
					if okInc != okCold {
						t.Fatalf("op %d: release %q diverged: %v vs %v", op, victim, okInc, okCold)
					}
					for i, n := range admittedNames {
						if n == victim {
							admittedNames = append(admittedNames[:i], admittedNames[i+1:]...)
							break
						}
					}
				} else {
					src := hosts[r.Intn(len(hosts))]
					mk := func(nm string) *network.FlowSpec {
						switch r.Intn(3) {
						case 0:
							return &network.FlowSpec{
								Flow:     trace.VoIP(nm, trace.VoIPOptions{Deadline: 100 * ms}),
								Route:    routesTo3[src],
								Priority: network.Priority(1 + r.Intn(3)),
							}
						case 1:
							return &network.FlowSpec{
								Flow:     trace.CBRVideo(nm, 4000+r.Int63n(12000), 40*ms, 250*ms),
								Route:    routesTo3[src],
								Priority: network.Priority(r.Intn(3)),
							}
						default:
							return &network.FlowSpec{
								Flow:     trace.MPEGIBBPBBPBB(nm, trace.MPEGOptions{Deadline: 300 * ms}),
								Route:    routesTo3[src],
								Priority: network.Priority(r.Intn(2)),
							}
						}
					}
					nm := fmt.Sprintf("f%d", op)
					// Draw once; hand equal specs to both controllers.
					spec := mk(nm)
					specCopy := *spec
					dInc, err := inc.Request(spec)
					if err != nil {
						t.Fatal(err)
					}
					dCold, err := cold.Request(&specCopy)
					if err != nil {
						t.Fatal(err)
					}
					if dInc.Admitted != dCold.Admitted {
						t.Fatalf("op %d (%s): decisions diverged: incremental=%v cold=%v",
							op, nm, dInc.Admitted, dCold.Admitted)
					}
					if dInc.Admitted {
						admittedNames = append(admittedNames, nm)
					}
				}
				// The two admitted flow sets must match exactly.
				if inc.Network().NumFlows() != cold.Network().NumFlows() {
					t.Fatalf("op %d: flow counts diverged: %d vs %d",
						op, inc.Network().NumFlows(), cold.Network().NumFlows())
				}
				for i := 0; i < inc.Network().NumFlows(); i++ {
					if inc.Network().Flow(i).Flow.Name != cold.Network().Flow(i).Flow.Name {
						t.Fatalf("op %d: flow %d differs: %q vs %q", op, i,
							inc.Network().Flow(i).Flow.Name, cold.Network().Flow(i).Flow.Name)
					}
				}
			}
			// Published bounds of the final admitted set must be identical
			// to a cold analysis.
			res, err := inc.Engine().Analyze()
			if err != nil {
				t.Fatal(err)
			}
			an, err := core.NewAnalyzer(cold.Network(), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := an.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedulable() != ref.Schedulable() || len(res.Flows) != len(ref.Flows) {
				t.Fatalf("final state diverged: %v/%d vs %v/%d",
					res.Schedulable(), len(res.Flows), ref.Schedulable(), len(ref.Flows))
			}
			for i := range ref.Flows {
				for k := range ref.Flows[i].Frames {
					if res.Flows[i].Frames[k].Response != ref.Flows[i].Frames[k].Response {
						t.Fatalf("flow %d frame %d bound %v vs %v", i, k,
							res.Flows[i].Frames[k].Response, ref.Flows[i].Frames[k].Response)
					}
				}
			}
		})
	}
}
