package admission

import (
	"sync"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// foldRecorder collects FoldEvents under a lock: the notify hook fires
// under the controller's lock but from whatever goroutine folds the
// ticket, so a recording consumer must still synchronize its own state.
type foldRecorder struct {
	mu  sync.Mutex
	evs []FoldEvent
}

func (r *foldRecorder) record(ev FoldEvent) {
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

func (r *foldRecorder) take() []FoldEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	evs := r.evs
	r.evs = nil
	return evs
}

// TestParallelNotifyOrder pins the post-fold notification hook that
// feeds gmfnet-admitd's subscription manager: every decided request
// fires exactly one event in fold order carrying the exact submitted
// spec pointer, batches fire one event per member in request order,
// and releases fire with the pointer that was admitted.
func TestParallelNotifyOrder(t *testing.T) {
	topo, hosts, err := network.Campus(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	rec := &foldRecorder{}
	ctl.SetNotify(rec.record)

	voip := func(name string, a, b int) *network.FlowSpec {
		route, err := topo.Route(hosts[a], hosts[b])
		if err != nil {
			t.Fatal(err)
		}
		return &network.FlowSpec{
			Flow:     trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
			Route:    route,
			Priority: 1,
			RTP:      true,
		}
	}
	heavy := func(name string, a, b int) *network.FlowSpec {
		route, err := topo.Route(hosts[a], hosts[b])
		if err != nil {
			t.Fatal(err)
		}
		return &network.FlowSpec{
			Flow:     trace.CBRVideo(name, 250000, 30*units.Millisecond, 250*units.Millisecond),
			Route:    route,
			Priority: 1,
		}
	}
	expect := func(step string, want []FoldEvent) {
		t.Helper()
		got := rec.take()
		if len(got) != len(want) {
			t.Fatalf("%s: %d events, want %d: %+v", step, len(got), len(want), got)
		}
		for i := range want {
			if got[i].Spec != want[i].Spec || got[i].Kind != want[i].Kind {
				t.Fatalf("%s: event %d = {%s %d}, want {%s %d}",
					step, i, got[i].Spec.Flow.Name, got[i].Kind,
					want[i].Spec.Flow.Name, want[i].Kind)
			}
		}
	}

	a := voip("a", 0, 1)
	if d, err := ctl.Request(a); err != nil || !d.Admitted {
		t.Fatalf("admit a: %+v %v", d, err)
	}
	expect("admit", []FoldEvent{{Spec: a, Kind: FoldAdmitted}})

	// Heavy CBR beside the VoIP call: rejected, still exactly one event.
	r := heavy("r", 0, 1)
	if d, err := ctl.Request(r); err != nil || d.Admitted {
		t.Fatalf("reject r: %+v %v", d, err)
	}
	expect("reject", []FoldEvent{{Spec: r, Kind: FoldRejected}})

	// A batch fires one event per member, in request order.
	b, c := voip("b", 2, 3), voip("c", 2, 3)
	ds, err := ctl.RequestBatch([]*network.FlowSpec{b, c})
	if err != nil || !ds[0].Admitted || !ds[1].Admitted {
		t.Fatalf("batch: %+v %v", ds, err)
	}
	expect("batch", []FoldEvent{{Spec: b, Kind: FoldAdmitted}, {Spec: c, Kind: FoldAdmitted}})

	// Release fires with the admitted spec pointer; a miss fires nothing.
	if ok, err := ctl.Release("b"); err != nil || !ok {
		t.Fatalf("release b: %v %v", ok, err)
	}
	expect("release", []FoldEvent{{Spec: b, Kind: FoldReleased}})
	if ok, err := ctl.Release("ghost"); err != nil || ok {
		t.Fatalf("release ghost: %v %v", ok, err)
	}
	expect("miss", nil)

	// Clearing the hook silences it.
	ctl.SetNotify(nil)
	if _, err := ctl.Request(voip("d", 0, 1)); err != nil {
		t.Fatal(err)
	}
	expect("cleared", nil)
}
