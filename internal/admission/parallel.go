package admission

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// ParallelController is the multi-core admission controller: the
// closure-sharded test of ShardedController, scheduled across a worker
// pool by core.Scheduler. Every interference closure's shard is owned
// by a serial mailbox goroutine, so decisions within one closure stay
// strictly ordered while requests and batch groups into distinct
// closures are decided concurrently — including across submissions:
// SubmitBatch pipelines batches, so batch k+1's independent closures
// start while batch k's eviction bisection is still running.
//
// Decisions are byte-identical to ShardedController's (and therefore to
// the monolithic and cold controllers') for any serial or pipelined
// submission order; with concurrent submitters from several goroutines
// the interleaving is whatever the dispatch order was, but every
// decision still equals what the serial controller would have decided
// at that point. The equality is pinned by the batch differential
// tests, the golden replay trace, and the fusion stress test.
//
// Bookkeeping (decision log, residents, counters) is folded in
// submission order: a later batch's decisions are recorded only after
// every earlier submission has completed, so Decisions and Release see
// exactly the serial controller's global admission order. The fold is
// structured so the controller lock is off the verdict hot path: each
// group accumulates its decisions lock-free into its ticket's
// pre-sliced output (the per-worker shard — groups partition the
// batch, so writes never overlap), takes the lock exactly once to
// retire itself, and the last group of the head ticket merges the
// whole ticket in one fold step. The counters fold through atomics, so
// Admitted/Rejected/NumResidents never contend with a fold in
// progress.
//
// Error contract: Request and RequestBatch surface their groups' errors
// exactly like ShardedController (decided groups stay recorded).
// Release dispatches the departure asynchronously and returns
// immediately; removal and re-split errors surface at the next Flush
// (or Close). Call Flush at stream boundaries; call Close when done —
// it shuts the mailbox goroutines down.
//
// A ParallelController is safe for concurrent use.
type ParallelController struct {
	se    *core.ShardedEngine
	sched *core.Scheduler

	mu   sync.Mutex
	cond *sync.Cond
	// tickets holds unfolded submissions in submission order; the head
	// folds into decisions/residents as soon as all its groups decided.
	tickets []*PendingBatch
	// residents maps a flow name to its admitted, unreleased specs in
	// global admission order, so Release pops the first admission of
	// that name in O(1) instead of scanning every resident — the
	// difference between O(1) and O(population) per departure when the
	// load harness replays millions of them.
	residents map[string][]*network.FlowSpec
	retention Retention
	notify    func(FoldEvent)
	decisions []Decision

	// The verdict counters are atomics, written at fold time (so they
	// still count folded decisions, in every retention mode) but
	// readable without the controller lock: the monitoring surface of
	// the 1M-request replay never blocks behind a fold or a submission.
	nresident atomic.Int64
	admitted  atomic.Int64
	rejected  atomic.Int64
	released  atomic.Int64
}

// FoldKind classifies a FoldEvent.
type FoldKind int

const (
	// FoldAdmitted: the flow was admitted and is now resident.
	FoldAdmitted FoldKind = iota
	// FoldRejected: the request was rejected; the flow never entered
	// the network.
	FoldRejected
	// FoldReleased: a resident flow was claimed by Release and is
	// departing.
	FoldReleased
)

// FoldEvent describes one flow-set change at the moment it folds into
// the controller's bookkeeping: an admission or rejection entering the
// decision log (in global fold order, i.e. submission order), or a
// departure claimed by Release. Spec is the exact *network.FlowSpec
// pointer the caller submitted, so consumers can key shadow state on
// identity.
type FoldEvent struct {
	Spec *network.FlowSpec
	Kind FoldKind
}

// SetNotify installs a post-fold change-notification hook: fn is
// invoked once per folded decision, in fold order, and once per
// departure claimed by Release — the serialization point a push-based
// service (internal/admitd) needs to publish verdict deltas without
// polling. fn runs under the controller's internal lock, possibly on a
// shard mailbox goroutine: it must be fast and must not call back into
// the controller. Set it before the first request; nil disables.
func (c *ParallelController) SetNotify(fn func(FoldEvent)) {
	c.mu.Lock()
	c.notify = fn
	c.mu.Unlock()
}

// Retention selects how much per-decision state the controller keeps.
type Retention int

const (
	// RetainAll keeps the full decision log, each decision carrying its
	// materialized analysis Result: the default, and what the
	// differential and golden tests compare byte for byte.
	RetainAll Retention = iota
	// RetainCounters folds every decision into the admitted/rejected
	// counters and drops the analysis views unmaterialized. Memory per
	// request is constant and the O(closure) bound copy per decision
	// disappears — the retention mode for replaying millions of
	// requests, where the decision log would otherwise dominate memory.
	RetainCounters
)

// SetRetention switches the retention mode. It applies to submissions
// made after the call; set it before the first request for a uniform
// log. Decisions already folded are kept either way.
func (c *ParallelController) SetRetention(r Retention) {
	c.mu.Lock()
	c.retention = r
	c.mu.Unlock()
}

// PendingBatch is one in-flight submission: a ticket whose groups are
// being decided on their shards' mailboxes. Wait blocks for the
// decisions; results are recorded in the controller's log in submission
// order regardless of when Wait is called.
type PendingBatch struct {
	c     *ParallelController
	specs []*network.FlowSpec
	// out and decided are written lock-free by the groups: the groups
	// partition the batch, so each decision index has exactly one
	// writer, and the fold (ordered after every group's completion by
	// the controller lock) reads them settled.
	out     []Decision
	decided []bool
	// remaining counts undecided groups; -1 until the scheduler's
	// prepare callback has counted them (before any group is
	// dispatched, hence before any group can complete).
	remaining int
	err       error
	folded    bool
	single    bool // decide via Controller.Request, not RequestBatch
	lean      bool // retention snapshot at submission: RetainCounters
}

// NewParallelController returns a scheduler-backed controller over the
// network; flows already present are treated as admitted and
// partitioned into shards by interference closure. cfg.Workers sizes
// the worker pool (zero selects GOMAXPROCS — see
// core.Config.PoolWorkers).
func NewParallelController(nw *network.Network, cfg core.Config) (*ParallelController, error) {
	se, err := core.NewShardedEngine(nw, cfg)
	if err != nil {
		return nil, err
	}
	c := &ParallelController{se: se, sched: core.NewScheduler(se)}
	c.cond = sync.NewCond(&c.mu)
	c.residents = make(map[string][]*network.FlowSpec)
	for _, fs := range nw.Flows() {
		c.residents[fs.Flow.Name] = append(c.residents[fs.Flow.Name], fs)
		c.nresident.Add(1)
	}
	return c, nil
}

// Sharded exposes the underlying sharded engine. Reads beyond the
// topology are only safe after Flush or Close (quiescence).
func (c *ParallelController) Sharded() *core.ShardedEngine { return c.se }

// Request decides one flow synchronously: it is submitted, decided on
// its closure's mailbox, and waited for. Identical decisions and error
// returns to ShardedController.Request.
func (c *ParallelController) Request(fs *network.FlowSpec) (Decision, error) {
	t := c.submit([]*network.FlowSpec{fs}, true)
	ds, err := t.Wait()
	if err != nil {
		return Decision{}, err
	}
	return ds[0], nil
}

// RequestAll processes the requests in order, stopping at the first
// malformed request, exactly like ShardedController.RequestAll.
func (c *ParallelController) RequestAll(specs []*network.FlowSpec) ([]Decision, error) {
	out := make([]Decision, 0, len(specs))
	for _, fs := range specs {
		d, err := c.Request(fs)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// RequestBatch decides a batch and waits for it: SubmitBatch + Wait.
// Decisions equal ShardedController.RequestBatch's.
func (c *ParallelController) RequestBatch(specs []*network.FlowSpec) ([]Decision, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	t, err := c.SubmitBatch(specs)
	if err != nil {
		return nil, err
	}
	return t.Wait()
}

// SubmitBatch validates the batch (a malformed spec fails it with no
// decisions, like every batch entry point) and dispatches its
// interference groups to their shards without waiting: the pipelining
// entry point. Groups of this batch that land on idle shards start
// immediately, even while earlier batches' groups — e.g. an eviction
// bisection in a contended closure — are still running; groups sharing
// a shard with earlier work queue behind it in submission order. The
// slice and the specs it holds must stay unmodified until Wait
// returns; the backing array may be reused afterwards.
func (c *ParallelController) SubmitBatch(specs []*network.FlowSpec) (*PendingBatch, error) {
	if len(specs) == 0 {
		return &PendingBatch{folded: true}, nil
	}
	if err := c.se.ValidateSpecs(specs); err != nil {
		return nil, err
	}
	return c.submit(specs, false), nil
}

// submit creates the ticket and hands the specs to the scheduler. The
// ticket enters the fold queue before dispatch, so completions —
// however fast — find it; prepare runs under the dispatch lock before
// any group can complete, so remaining is set first.
func (c *ParallelController) submit(specs []*network.FlowSpec, single bool) *PendingBatch {
	t := &PendingBatch{
		c:         c,
		specs:     specs,
		out:       make([]Decision, len(specs)),
		decided:   make([]bool, len(specs)),
		remaining: -1,
		single:    single,
	}
	c.mu.Lock()
	t.lean = c.retention == RetainCounters
	c.tickets = append(c.tickets, t)
	c.mu.Unlock()
	c.sched.Submit(specs,
		func(groups [][]int) { t.remaining = len(groups) },
		func(members []int, eng *core.Engine, derr error) []bool {
			return c.runGroup(t, members, eng, derr)
		})
	return t
}

// runGroup decides one interference group on its shard's mailbox
// goroutine: the standard serial protocol (Controller.Request or
// .RequestBatch scoped to the shard engine), with the decisions'
// analysis views materialized here — views are engine state and must
// not escape the goroutine that owns the engine. The decisions land in
// the ticket's output lock-free (each group owns its member indices);
// the controller lock is taken exactly once, to retire the group and —
// when it was the last open group of the head ticket — run the fold.
func (c *ParallelController) runGroup(t *PendingBatch, members []int, eng *core.Engine, derr error) []bool {
	var ds []Decision
	err := derr
	if err == nil {
		tmp := &Controller{eng: eng}
		if t.single {
			d, rerr := tmp.Request(t.specs[members[0]])
			if rerr != nil {
				err = rerr
			} else {
				ds = []Decision{d}
			}
		} else {
			gspecs := make([]*network.FlowSpec, len(members))
			for at, i := range members {
				gspecs[at] = t.specs[i]
			}
			ds, err = tmp.RequestBatch(gspecs)
		}
	}
	// Detach the analyses: one materialization per distinct view (an
	// admitted group shares one), closed right after so nothing stays
	// pinned on the shard engine. Under RetainCounters (t.lean, the
	// retention snapshotted at submission) the views are closed without
	// copying — the analysis is never read back.
	mats := make(map[*core.ResultView]*core.Result)
	for i := range ds {
		v := ds[i].View
		if v == nil {
			continue
		}
		r, ok := mats[v]
		if !ok {
			if !t.lean {
				r = v.Materialize()
			}
			mats[v] = r
			v.Close()
		}
		ds[i].Result = r
		ds[i].View = nil
	}
	flags := make([]bool, len(members))
	for at := range members {
		if at < len(ds) {
			t.out[members[at]] = ds[at]
			t.decided[members[at]] = true
			flags[at] = ds[at].Admitted
		}
	}
	c.mu.Lock()
	if err != nil && t.err == nil {
		t.err = err
	}
	t.remaining--
	if t.remaining == 0 {
		c.foldLocked()
	}
	c.mu.Unlock()
	return flags
}

// foldLocked folds completed head tickets into the decision log and
// residents list, preserving submission order: a completed ticket
// behind an unfinished one waits its turn.
func (c *ParallelController) foldLocked() {
	for len(c.tickets) > 0 {
		t := c.tickets[0]
		if t.remaining != 0 {
			break
		}
		for i := range t.out {
			if !t.decided[i] {
				continue // a group that errored decided nothing
			}
			if c.notify != nil {
				k := FoldRejected
				if t.out[i].Admitted {
					k = FoldAdmitted
				}
				c.notify(FoldEvent{Spec: t.specs[i], Kind: k})
			}
			if c.retention == RetainAll {
				c.decisions = append(c.decisions, t.out[i])
			}
			if t.out[i].Admitted {
				c.admitted.Add(1)
				name := t.specs[i].Flow.Name
				c.residents[name] = append(c.residents[name], t.specs[i])
				c.nresident.Add(1)
			} else {
				c.rejected.Add(1)
			}
		}
		t.folded = true
		c.tickets = c.tickets[1:]
	}
	c.cond.Broadcast()
}

// Wait blocks until the submission (and every submission before it) has
// folded, then returns its decisions in request order — or the first
// group error, with decided groups recorded in the controller exactly
// like ShardedController.RequestBatch's error contract.
func (t *PendingBatch) Wait() ([]Decision, error) {
	if t.c == nil { // empty submission
		return nil, nil
	}
	c := t.c
	c.mu.Lock()
	for !t.folded {
		c.cond.Wait()
	}
	err := t.err
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return t.out, nil
}

// Release removes the first admitted flow with the given name in global
// admission order, exactly like the serial controllers. It waits for
// in-flight submissions to fold (so the admission order is complete),
// then dispatches the departure asynchronously to the flow's shard —
// departures on distinct shards overlap with each other and with later
// admissions. It reports whether a resident flow was claimed; removal
// errors surface at the next Flush.
func (c *ParallelController) Release(name string) (bool, error) {
	c.mu.Lock()
	for len(c.tickets) > 0 {
		c.cond.Wait()
	}
	q := c.residents[name]
	if len(q) == 0 {
		c.mu.Unlock()
		return false, nil
	}
	fs := q[0]
	if len(q) == 1 {
		delete(c.residents, name)
	} else {
		c.residents[name] = q[1:]
	}
	c.nresident.Add(-1)
	c.released.Add(1)
	if c.notify != nil {
		c.notify(FoldEvent{Spec: fs, Kind: FoldReleased})
	}
	c.mu.Unlock()
	if !c.sched.Remove(fs) {
		return false, fmt.Errorf("admission: resident flow %q missing from every shard", name)
	}
	return true, nil
}

// Flush waits for every pending decision and departure to complete,
// re-splits shards whose flows no longer form one closure, and returns
// the first asynchronous error since the last Flush.
func (c *ParallelController) Flush() error { return c.sched.Flush() }

// Close flushes and shuts down the shard mailboxes; the controller must
// not be used afterwards (the final counters remain readable).
func (c *ParallelController) Close() error { return c.sched.Close() }

// Decisions returns the folded decisions in submission order. Decisions
// of submissions still in flight are not yet included; Flush first for
// a complete log. Decisions folded under RetainCounters are counted but
// not logged, so they do not appear here.
func (c *ParallelController) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decisions
}

// Admitted returns the number of admitted flows among the folded
// decisions, in every retention mode. It reads an atomic — monitoring
// never contends with a fold in progress.
func (c *ParallelController) Admitted() int { return int(c.admitted.Load()) }

// Rejected returns the number of rejected requests among the folded
// decisions, in every retention mode.
func (c *ParallelController) Rejected() int { return int(c.rejected.Load()) }

// NumResidents returns the number of resident flows: admissions (plus
// flows present at construction) not yet claimed by Release. Unlike
// NumFlows it reads the fold-order bookkeeping without waiting for
// in-flight shard work.
func (c *ParallelController) NumResidents() int { return int(c.nresident.Load()) }

// Released returns the number of departures dispatched by Release.
func (c *ParallelController) Released() int { return int(c.released.Load()) }

// NumFlows waits for in-flight work and returns the number of admitted
// flows across all shards.
func (c *ParallelController) NumFlows() int { return c.sched.NumFlows() }

// NumShards waits for in-flight work and returns the number of live
// shards. Until a Flush re-splits, the partition can be coarser than
// the serial controller's (fusions performed for later-rejected
// bridging requests are undone lazily).
func (c *ParallelController) NumShards() int { return c.sched.NumShards() }
