package admission

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/config"
	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// batchSpecs draws a request mix for the batch differential tests:
// mostly feasible VoIP/CBR calls between random hosts, with deliberately
// heavy CBR flows sprinkled in so rejections — and therefore the
// eviction path of RequestBatch — occur.
func batchSpecs(t *testing.T, r *rand.Rand, topo *network.Topology, hosts []network.NodeID, n int, tag string) []*network.FlowSpec {
	t.Helper()
	specs := make([]*network.FlowSpec, 0, n)
	for i := 0; len(specs) < n; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			continue
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			continue
		}
		name := fmt.Sprintf("%s%d", tag, len(specs))
		var fs *network.FlowSpec
		switch r.Intn(5) {
		case 0, 1:
			fs = &network.FlowSpec{
				Flow: trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond}),
				RTP:  true,
			}
		case 2, 3:
			fs = &network.FlowSpec{
				Flow: trace.CBRVideo(name, 4000+r.Int63n(8000),
					units.Time(25+r.Intn(25))*units.Millisecond, 200*units.Millisecond),
			}
		default:
			// Heavy: ~27-67 Mbit/s, so two of them meeting on a 100 Mbit/s
			// edge link overload it and force evictions.
			fs = &network.FlowSpec{
				Flow: trace.CBRVideo(name, 100000+r.Int63n(150000),
					30*units.Millisecond, 250*units.Millisecond),
			}
		}
		fs.Route = route
		fs.Priority = network.Priority(1 + r.Intn(3))
		specs = append(specs, fs)
	}
	return specs
}

// copySpecs gives each controller its own shallow spec copies, like a
// real deployment where every replica parses its own request.
func copySpecs(specs []*network.FlowSpec) []*network.FlowSpec {
	out := make([]*network.FlowSpec, len(specs))
	for i, fs := range specs {
		c := *fs
		out[i] = &c
	}
	return out
}

// runBatchDifferential drives the same request list through RequestBatch
// (one batch and chunked), one-by-one RequestAll, the closure-sharded
// controller (chunked batches), the scheduler-backed parallel controller
// (the same chunks, pipelined: every chunk submitted before the first is
// waited for), and the from-scratch ColdController, then asserts
// identical accept sets and identical final jitter bounds.
func runBatchDifferential(t *testing.T, topo *network.Topology, specs []*network.FlowSpec, chunk int) {
	t.Helper()
	batchCtl, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	chunkCtl, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seqCtl, err := NewController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	coldCtl, err := NewColdController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	shardCtl, err := NewShardedController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	parCtl, err := NewParallelController(network.New(topo), core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	batchDs, err := batchCtl.RequestBatch(copySpecs(specs))
	if err != nil {
		t.Fatal(err)
	}
	chunked := copySpecs(specs)
	var chunkDs []Decision
	for at := 0; at < len(chunked); at += chunk {
		end := at + chunk
		if end > len(chunked) {
			end = len(chunked)
		}
		ds, err := chunkCtl.RequestBatch(chunked[at:end])
		if err != nil {
			t.Fatal(err)
		}
		chunkDs = append(chunkDs, ds...)
	}
	seqDs, err := seqCtl.RequestAll(copySpecs(specs))
	if err != nil {
		t.Fatal(err)
	}
	sharded := copySpecs(specs)
	var shardDs []Decision
	for at := 0; at < len(sharded); at += chunk {
		end := at + chunk
		if end > len(sharded) {
			end = len(sharded)
		}
		ds, err := shardCtl.RequestBatch(sharded[at:end])
		if err != nil {
			t.Fatal(err)
		}
		shardDs = append(shardDs, ds...)
	}
	par := copySpecs(specs)
	var tickets []*PendingBatch
	for at := 0; at < len(par); at += chunk {
		end := at + chunk
		if end > len(par) {
			end = len(par)
		}
		pb, err := parCtl.SubmitBatch(par[at:end])
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, pb)
	}
	var parDs []Decision
	for _, pb := range tickets {
		ds, err := pb.Wait()
		if err != nil {
			t.Fatal(err)
		}
		parDs = append(parDs, ds...)
	}
	if err := parCtl.Close(); err != nil {
		t.Fatal(err)
	}
	var coldDs []Decision
	for _, fs := range copySpecs(specs) {
		d, err := coldCtl.Request(fs)
		if err != nil {
			t.Fatal(err)
		}
		coldDs = append(coldDs, d)
	}

	if len(batchDs) != len(specs) || len(chunkDs) != len(specs) ||
		len(seqDs) != len(specs) || len(shardDs) != len(specs) || len(parDs) != len(specs) {
		t.Fatalf("decision counts: batch=%d chunked=%d seq=%d sharded=%d parallel=%d, want %d",
			len(batchDs), len(chunkDs), len(seqDs), len(shardDs), len(parDs), len(specs))
	}
	for i := range specs {
		if batchDs[i].Admitted != seqDs[i].Admitted ||
			chunkDs[i].Admitted != seqDs[i].Admitted ||
			coldDs[i].Admitted != seqDs[i].Admitted ||
			shardDs[i].Admitted != seqDs[i].Admitted ||
			parDs[i].Admitted != seqDs[i].Admitted {
			t.Fatalf("spec %d (%s): decisions diverged: batch=%v chunked=%v seq=%v cold=%v sharded=%v parallel=%v",
				i, specs[i].Flow.Name, batchDs[i].Admitted, chunkDs[i].Admitted,
				seqDs[i].Admitted, coldDs[i].Admitted, shardDs[i].Admitted, parDs[i].Admitted)
		}
	}
	if batchCtl.Rejected() == 0 {
		t.Log("note: no rejections in this draw; eviction path not exercised")
	}

	// Final admitted sets and bounds must be identical across all four.
	nets := []*network.Network{batchCtl.Network(), chunkCtl.Network(), seqCtl.Network(), coldCtl.Network()}
	for v, nw := range nets[1:] {
		if nw.NumFlows() != nets[0].NumFlows() {
			t.Fatalf("variant %d: %d admitted flows, want %d", v+1, nw.NumFlows(), nets[0].NumFlows())
		}
		for i := 0; i < nw.NumFlows(); i++ {
			if nw.Flow(i).Flow.Name != nets[0].Flow(i).Flow.Name {
				t.Fatalf("variant %d: flow %d is %q, want %q", v+1, i,
					nw.Flow(i).Flow.Name, nets[0].Flow(i).Flow.Name)
			}
		}
	}
	ref, err := core.NewAnalyzer(coldCtl.Network(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !want.Schedulable() {
		t.Fatal("admitted set is not schedulable")
	}
	for _, eng := range []*core.Engine{batchCtl.Engine(), chunkCtl.Engine(), seqCtl.Engine()} {
		got, err := eng.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Flows) != len(want.Flows) {
			t.Fatalf("bound count %d, want %d", len(got.Flows), len(want.Flows))
		}
		for i := range want.Flows {
			for k := range want.Flows[i].Frames {
				if got.Flows[i].Frames[k].Response != want.Flows[i].Frames[k].Response {
					t.Fatalf("flow %d frame %d bound %v, want %v", i, k,
						got.Flows[i].Frames[k].Response, want.Flows[i].Frames[k].Response)
				}
			}
		}
	}

	// The sharded and parallel controllers have no global flow order;
	// compare their admitted sets and bounds by flow name.
	if shardCtl.NumFlows() != nets[0].NumFlows() {
		t.Fatalf("sharded: %d admitted flows, want %d", shardCtl.NumFlows(), nets[0].NumFlows())
	}
	checkShardedBounds(t, shardCtl, want)
	if parCtl.NumFlows() != nets[0].NumFlows() {
		t.Fatalf("parallel: %d admitted flows, want %d", parCtl.NumFlows(), nets[0].NumFlows())
	}
	checkEngineBounds(t, parCtl.Sharded(), want)
}

// checkShardedBounds asserts the sharded controller's per-shard bounds
// equal the reference analysis, matched by flow name.
func checkShardedBounds(t *testing.T, shardCtl *ShardedController, want *core.Result) {
	t.Helper()
	checkEngineBounds(t, shardCtl.Sharded(), want)
}

// checkEngineBounds asserts a sharded engine's per-shard bounds equal
// the reference analysis, matched by flow name.
func checkEngineBounds(t *testing.T, se *core.ShardedEngine, want *core.Result) {
	t.Helper()
	shardResults, err := se.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]core.FlowResult)
	for _, res := range shardResults {
		for i := range res.Flows {
			if _, dup := got[res.Flows[i].Name]; dup {
				t.Fatalf("sharded: flow %q in two shards", res.Flows[i].Name)
			}
			got[res.Flows[i].Name] = res.Flows[i]
		}
	}
	for i := range want.Flows {
		wf := &want.Flows[i]
		gf, ok := got[wf.Name]
		if !ok {
			t.Fatalf("sharded: flow %q missing", wf.Name)
		}
		for k := range wf.Frames {
			if gf.Frames[k].Response != wf.Frames[k].Response {
				t.Fatalf("sharded: flow %q frame %d bound %v, want %v",
					wf.Name, k, gf.Frames[k].Response, wf.Frames[k].Response)
			}
		}
	}
}

// TestBatchMatchesSequentialRing is the randomized differential test on
// the 8-switch industrial ring generator.
func TestBatchMatchesSequentialRing(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts, err := network.Ring(8, 3)
			if err != nil {
				t.Fatal(err)
			}
			specs := batchSpecs(t, r, topo, hosts, 16, fmt.Sprintf("r%d-", seed))
			runBatchDifferential(t, topo, specs, 5)
		})
	}
}

// TestBatchMatchesSequentialFatTree runs the same property on a 4-ary
// fat tree.
func TestBatchMatchesSequentialFatTree(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts, err := network.FatTree(4)
			if err != nil {
				t.Fatal(err)
			}
			specs := batchSpecs(t, r, topo, hosts, 18, fmt.Sprintf("ft%d-", seed))
			runBatchDifferential(t, topo, specs, 4)
		})
	}
}

// TestBatchFallsBackOnHolisticCap pins the non-monotone-verdict escape
// hatch: with a holistic iteration cap so tight that analyses stop
// before converging, RequestBatch must abandon the bisection (whose
// monotonicity argument no longer holds) and fall back to literal
// one-by-one processing, keeping decisions identical to RequestAll.
func TestBatchFallsBackOnHolisticCap(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	topo, hosts, err := network.Ring(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	specs := batchSpecs(t, r, topo, hosts, 12, "cap-")
	for _, iters := range []int{1, 2, 3} {
		cfg := core.Config{MaxHolisticIter: iters}
		batchCtl, err := NewController(network.New(topo), cfg)
		if err != nil {
			t.Fatal(err)
		}
		seqCtl, err := NewController(network.New(topo), cfg)
		if err != nil {
			t.Fatal(err)
		}
		bds, err := batchCtl.RequestBatch(copySpecs(specs))
		if err != nil {
			t.Fatal(err)
		}
		sds, err := seqCtl.RequestAll(copySpecs(specs))
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			if bds[i].Admitted != sds[i].Admitted {
				t.Fatalf("cap %d, spec %d (%s): batch=%v seq=%v",
					iters, i, specs[i].Flow.Name, bds[i].Admitted, sds[i].Admitted)
			}
		}
		if batchCtl.Network().NumFlows() != seqCtl.Network().NumFlows() {
			t.Fatalf("cap %d: resident counts %d vs %d", iters,
				batchCtl.Network().NumFlows(), seqCtl.Network().NumFlows())
		}
	}
}

// TestBatchMatchesSequentialIndustrialRing replays the shipped
// industrial-ring scenario's flows — tripled with unique names so the
// ring saturates and rejections occur — as one batch vs one-by-one vs
// cold.
func TestBatchMatchesSequentialIndustrialRing(t *testing.T) {
	sc, err := config.Load("../../scenarios/industrial-ring.json")
	if err != nil {
		t.Fatal(err)
	}
	full, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	var specs []*network.FlowSpec
	for rep := 0; rep < 3; rep++ {
		for _, fs := range full.Flows() {
			c := *fs
			flow := *fs.Flow
			flow.Name = fmt.Sprintf("%s-rep%d", fs.Flow.Name, rep)
			c.Flow = &flow
			specs = append(specs, &c)
		}
	}
	// Cross-ring heavy video (~53 Mbit/s each): several of them share the
	// 100 Mbit/s backbone, so the tail of the batch must be evicted.
	for i := 0; i < 5; i++ {
		src := network.NodeID(fmt.Sprintf("h%d_0", i%6))
		dst := network.NodeID(fmt.Sprintf("h%d_1", (i+3)%6))
		route, err := full.Topo.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, &network.FlowSpec{
			Flow:     trace.CBRVideo(fmt.Sprintf("heavy%d", i), 200000, 30*units.Millisecond, 250*units.Millisecond),
			Route:    route,
			Priority: 1,
		})
	}
	runBatchDifferential(t, full.Topo, specs, 7)
}

// TestBatchMatchesSequentialVideoMix runs the differential property on
// the video-mix generator: a closure-rich star of per-switch streams
// plus random cross-switch requests, so the parallel variant exercises
// many concurrent shards and a few fusions in one run.
func TestBatchMatchesSequentialVideoMix(t *testing.T) {
	topo, base, err := network.VideoMix(4, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	var hosts []network.NodeID
	for s := 0; s < 4; s++ {
		for h := 0; h < 3; h++ {
			hosts = append(hosts, network.NodeID(fmt.Sprintf("h%d_%d", s, h)))
		}
	}
	r := rand.New(rand.NewSource(21))
	specs := append([]*network.FlowSpec{}, base...)
	specs = append(specs, batchSpecs(t, r, topo, hosts, 10, "vm-")...)
	runBatchDifferential(t, topo, specs, 6)
}
