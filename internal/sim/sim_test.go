package sim

import (
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/ether"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

const (
	ms = units.Millisecond
	us = units.Microsecond
)

func oneFrameFlow(name string, payloadBits int64, sep, dl, jit units.Time) *gmf.Flow {
	return &gmf.Flow{Name: name, Frames: []gmf.Frame{{
		MinSep: sep, Deadline: dl, Jitter: jit, PayloadBits: payloadBits,
	}}}
}

func directLinkNet(t *testing.T, flows ...*network.FlowSpec) *network.Network {
	t.Helper()
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddDuplexLink("h1", "h2", 10*units.Mbps, 0))
	nw := network.New(topo)
	for _, fs := range flows {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func oneSwitchNet(t *testing.T, flows ...*network.FlowSpec) *network.Network {
	t.Helper()
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddHost("h3"))
	mustOK(t, topo.AddSwitch("s", network.DefaultSwitchParams()))
	mustOK(t, topo.AddDuplexLink("h1", "s", 10*units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("h2", "s", 10*units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("h3", "s", 10*units.Mbps, 0))
	nw := network.New(topo)
	for _, fs := range flows {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func run(t *testing.T, nw *network.Network, cfg Config) *Result {
	t.Helper()
	s, err := New(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const fullFramePayload = 11840 - 64

var c1 = units.TxTime(12304, 10*units.Mbps)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestSingleFlowDirectLinkExactResponse(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := run(t, directLinkNet(t, fs), Config{Duration: units.Second})
	st := res.Flows[0].PerFrame[0]
	if st.Completed < 9 {
		t.Fatalf("completed = %d, want >= 9 over 1s at 100ms period", st.Completed)
	}
	// No contention: every response equals the transmission time.
	if st.MaxResponse != c1 {
		t.Fatalf("max response = %v, want %v", st.MaxResponse, c1)
	}
	if st.MeanResponse() != c1 {
		t.Fatalf("mean response = %v, want %v", st.MeanResponse(), c1)
	}
}

func TestJitterBackDelaysResponse(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 2*ms),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := run(t, directLinkNet(t, fs), Config{Duration: units.Second, Jitter: JitterBack})
	if got := res.Flows[0].PerFrame[0].MaxResponse; got != 2*ms+c1 {
		t.Fatalf("max response = %v, want %v", got, 2*ms+c1)
	}
	// With fragments at the window start, the jitter does not show up.
	res = run(t, directLinkNet(t, fs), Config{Duration: units.Second, Jitter: JitterNone})
	if got := res.Flows[0].PerFrame[0].MaxResponse; got != c1 {
		t.Fatalf("JitterNone max response = %v, want %v", got, c1)
	}
}

func TestPropagationDelayObserved(t *testing.T) {
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddDuplexLink("h1", "h2", 10*units.Mbps, 7*us))
	nw := network.New(topo)
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}); err != nil {
		t.Fatal(err)
	}
	res := run(t, nw, Config{Duration: units.Second})
	if got := res.Flows[0].PerFrame[0].MaxResponse; got != c1+7*us {
		t.Fatalf("max response = %v, want %v", got, c1+7*us)
	}
}

func TestFragmentationCounts(t *testing.T) {
	// A 3-fragment UDP frame must arrive as a whole before completing.
	payload := int64(3 * 11840) // -> 4 fragments (UDP header pushes over)
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", payload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := run(t, directLinkNet(t, fs), Config{Duration: units.Second})
	st := res.Flows[0].PerFrame[0]
	udp := ether.UDPBits(payload, false)
	want := units.TxTime(ether.WireBits(udp), 10*units.Mbps)
	if st.MaxResponse != want {
		t.Fatalf("max response = %v, want %v (all fragments back to back)", st.MaxResponse, want)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	a := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	b := &network.FlowSpec{
		Flow:  oneFrameFlow("b", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := run(t, directLinkNet(t, a, b), Config{Duration: units.Second})
	// Synchronised release: one of the two waits for the other.
	slower := res.Flows[0].PerFrame[0].MaxResponse
	if res.Flows[1].PerFrame[0].MaxResponse > slower {
		slower = res.Flows[1].PerFrame[0].MaxResponse
	}
	if slower != 2*c1 {
		t.Fatalf("slower flow max response = %v, want %v", slower, 2*c1)
	}
}

func TestSwitchPipelineDelivers(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	res := run(t, oneSwitchNet(t, fs), Config{Duration: units.Second})
	st := res.Flows[0].PerFrame[0]
	if st.Completed < 9 {
		t.Fatalf("completed = %d, want >= 9", st.Completed)
	}
	// Lower bound: two transmissions plus route and send costs.
	p := network.DefaultSwitchParams()
	min := 2*c1 + p.CRoute + p.CSend
	if st.MaxResponse < min {
		t.Fatalf("max response %v below physical minimum %v", st.MaxResponse, min)
	}
}

func TestPriorityQueueingAtSwitch(t *testing.T) {
	// Two flows from different hosts converge on the same output; the
	// high-priority flow must see a smaller worst-case response than the
	// low-priority one under saturation.
	mk := func(name string, src network.NodeID, prio network.Priority) *network.FlowSpec {
		return &network.FlowSpec{
			// 20 kB every 25 ms at 10 Mbit/s is ~66% load each: the
			// output link saturates and priorities matter.
			Flow:     oneFrameFlow(name, 160000, 25*ms, 250*ms, 0),
			Route:    []network.NodeID{src, "s", "h3"},
			Priority: prio,
		}
	}
	hi := mk("hi", "h1", 5)
	lo := mk("lo", "h2", 1)
	res := run(t, oneSwitchNet(t, hi, lo), Config{Duration: 2 * units.Second})
	hiMax := res.Flows[0].PerFrame[0].MaxResponse
	loMax := res.Flows[1].PerFrame[0].MaxResponse
	if hiMax == 0 || loMax == 0 {
		t.Fatalf("no completions: hi=%v lo=%v", hiMax, loMax)
	}
	if hiMax >= loMax {
		t.Fatalf("priority inversion: hi %v >= lo %v", hiMax, loMax)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mkRes := func() *Result {
		fs := &network.FlowSpec{
			Flow:  mpegLike("v"),
			Route: []network.NodeID{"h1", "s", "h2"},
		}
		return run(t, oneSwitchNet(t, fs), Config{
			Duration: units.Second, Seed: 42,
			Jitter: JitterUniform, SeparationSlack: 0.3, Phase: PhaseRandom,
		})
	}
	a, b := mkRes(), mkRes()
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	for k := range a.Flows[0].PerFrame {
		if a.Flows[0].PerFrame[k].MaxResponse != b.Flows[0].PerFrame[k].MaxResponse {
			t.Fatal("responses differ between identical seeded runs")
		}
	}
}

func TestSeedChangesRandomisedRuns(t *testing.T) {
	mkRes := func(seed int64) *Result {
		fs := &network.FlowSpec{
			Flow:  mpegLike("v"),
			Route: []network.NodeID{"h1", "s", "h2"},
		}
		return run(t, oneSwitchNet(t, fs), Config{
			Duration: units.Second, Seed: seed,
			Jitter: JitterUniform, SeparationSlack: 0.5, Phase: PhaseRandom,
		})
	}
	a, b := mkRes(1), mkRes(2)
	if a.Flows[0].PerFrame[0].MeanResponse() == b.Flows[0].PerFrame[0].MeanResponse() &&
		a.Events == b.Events {
		t.Fatal("different seeds produced identical runs; PRNG unused?")
	}
}

func mpegLike(name string) *gmf.Flow {
	return &gmf.Flow{Name: name, Frames: []gmf.Frame{
		{MinSep: 30 * ms, Deadline: 300 * ms, Jitter: ms, PayloadBits: 144000},
		{MinSep: 30 * ms, Deadline: 300 * ms, Jitter: ms, PayloadBits: 12000},
		{MinSep: 30 * ms, Deadline: 300 * ms, Jitter: ms, PayloadBits: 48000},
	}}
}

// TestAnalysisBoundsDominateSimulation is the central soundness check: on
// the Figure 1 network with cross traffic, the analytic bound of every
// flow/frame must dominate the worst response the adversarial simulator
// observes.
func TestAnalysisBoundsDominateSimulation(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"adversarial", Config{Duration: 3 * units.Second}},
		{"randomised", Config{Duration: 3 * units.Second, Seed: 7, Jitter: JitterUniform, SeparationSlack: 0.25, Phase: PhaseRandom}},
		{"fast-poll", Config{Duration: 3 * units.Second, PollCost: 200 * units.Nanosecond}},
	}
	build := func() *network.Network {
		topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
		nw := network.New(topo)
		specs := []*network.FlowSpec{
			{Flow: mpegLike("v0"), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 2},
			{Flow: mpegLike("v1"), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 1},
			{Flow: oneFrameFlow("voip", 160*8, 20*ms, 100*ms, 500*us), Route: []network.NodeID{"2", "5", "6", "3"}, Priority: 3},
		}
		for _, s := range specs {
			if _, err := nw.AddFlow(s); err != nil {
				t.Fatal(err)
			}
		}
		return nw
	}

	nw := build()
	an, err := core.NewAnalyzer(nw, core.Config{Mode: core.ModeSound})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !bound.Schedulable() {
		t.Fatalf("scenario unexpectedly unschedulable (converged=%v)", bound.Converged)
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			res := run(t, nw, sc.cfg)
			for i := range res.Flows {
				for k := range res.Flows[i].PerFrame {
					observed := res.Flows[i].PerFrame[k].MaxResponse
					analytic := bound.Flow(i).Frames[k].Response
					if observed > analytic {
						t.Errorf("flow %d frame %d: observed %v exceeds bound %v",
							i, k, observed, analytic)
					}
					if res.Flows[i].PerFrame[k].Completed == 0 {
						t.Errorf("flow %d frame %d: nothing delivered", i, k)
					}
				}
			}
		})
	}
}

func TestInFlightAccounting(t *testing.T) {
	// A very short run ends with the frame still in flight.
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := run(t, directLinkNet(t, fs), Config{Duration: 100 * us})
	st := res.Flows[0].PerFrame[0]
	if st.Completed != 0 || st.InFlight != 1 {
		t.Fatalf("completed=%d inflight=%d, want 0/1", st.Completed, st.InFlight)
	}
}

func TestMultiprocessorSwitchStillDelivers(t *testing.T) {
	p := network.DefaultSwitchParams()
	p.Processors = 2
	topo := network.NewTopology()
	mustOK(t, topo.AddHost("h1"))
	mustOK(t, topo.AddHost("h2"))
	mustOK(t, topo.AddHost("h3"))
	mustOK(t, topo.AddHost("h4"))
	mustOK(t, topo.AddSwitch("s", p))
	for _, h := range []network.NodeID{"h1", "h2", "h3", "h4"} {
		mustOK(t, topo.AddDuplexLink(h, "s", 10*units.Mbps, 0))
	}
	nw := network.New(topo)
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 50*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "s", "h4"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:  oneFrameFlow("b", fullFramePayload, 50*ms, 100*ms, 0),
		Route: []network.NodeID{"h3", "s", "h2"},
	}); err != nil {
		t.Fatal(err)
	}
	res := run(t, nw, Config{Duration: units.Second})
	for i := range res.Flows {
		if res.Flows[i].PerFrame[0].Completed < 15 {
			t.Fatalf("flow %d completed %d, want >= 15", i, res.Flows[i].PerFrame[0].Completed)
		}
	}
}

func TestFlowStatsHelpers(t *testing.T) {
	st := FlowStats{PerFrame: []FrameStats{
		{MaxResponse: 3 * ms, Completed: 2, SumResponse: 4 * ms},
		{MaxResponse: 7 * ms},
	}}
	if st.MaxResponse() != 7*ms {
		t.Fatalf("MaxResponse = %v", st.MaxResponse())
	}
	if st.PerFrame[0].MeanResponse() != 2*ms {
		t.Fatalf("MeanResponse = %v", st.PerFrame[0].MeanResponse())
	}
	empty := FrameStats{}
	if empty.MeanResponse() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulateSecond(b *testing.B) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 100 * units.Mbps})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{Flow: mpegLike("v0"), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 2},
		{Flow: mpegLike("v1"), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 1},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(nw, Config{Duration: units.Second})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
