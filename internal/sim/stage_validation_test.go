package sim

import (
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// frameKey identifies one UDP frame instance in a trace.
type frameKey struct {
	flow     string
	cycle    int64
	frameIdx int
}

// stageSpan accumulates the last entry and exit instants of a frame at one
// stage.
type stageSpan struct {
	entry, exit units.Time
}

// measureStageLatencies derives, per flow name and per stage resource
// string, the maximum observed stage latency (last fragment entering the
// stage to last fragment leaving it) from a trace. Only frames observed
// completing the stage contribute.
func measureStageLatencies(t *testing.T, events []TraceEvent, nw *network.Network) map[string]map[string]units.Time {
	t.Helper()
	// For each frame instance collect the latest timestamp of each event
	// kind at each location.
	last := make(map[frameKey]map[string]units.Time)
	note := func(e TraceEvent, tag string) {
		key := frameKey{e.Flow, e.Cycle, e.FrameIdx}
		m := last[key]
		if m == nil {
			m = make(map[string]units.Time)
			last[key] = m
		}
		if e.At > m[tag] {
			m[tag] = e.At
		}
	}
	for _, e := range events {
		switch e.Kind {
		case EvFragRelease:
			note(e, "release")
		case EvSwitchInFIFO:
			note(e, "in@"+string(e.Node))
		case EvRouted:
			note(e, "routed@"+string(e.Node))
		case EvTxEnd:
			note(e, "txend@"+string(e.Node)+">"+string(e.Peer))
		}
	}

	routes := make(map[string][]network.NodeID)
	for _, fs := range nw.Flows() {
		routes[fs.Flow.Name] = fs.Route
	}
	out := make(map[string]map[string]units.Time)
	for key, m := range last {
		route := routes[key.flow]
		spans := make(map[string]stageSpan)
		// First hop: last release -> arrival at route[1].
		firstExit, ok := exitInstant(m, route, 0)
		if rel, okRel := m["release"]; okRel && ok {
			spans[core.Resource{Kind: core.KindLink, Node: route[0], To: route[1]}.String()] =
				stageSpan{rel, firstExit}
		}
		for h := 1; h < len(route)-1; h++ {
			node := route[h]
			inT, okIn := m["in@"+string(node)]
			routedT, okRouted := m["routed@"+string(node)]
			if okIn && okRouted {
				spans[core.Resource{Kind: core.KindIngress, Node: node, To: route[h-1]}.String()] =
					stageSpan{inT, routedT}
			}
			exitT, okExit := exitInstant(m, route, h)
			if okRouted && okExit {
				spans[core.Resource{Kind: core.KindLink, Node: node, To: route[h+1]}.String()] =
					stageSpan{routedT, exitT}
			}
		}
		flowMax := out[key.flow]
		if flowMax == nil {
			flowMax = make(map[string]units.Time)
			out[key.flow] = flowMax
		}
		for res, span := range spans {
			if span.exit < span.entry {
				t.Fatalf("frame %+v stage %s: exit %v before entry %v", key, res, span.exit, span.entry)
			}
			if lat := span.exit - span.entry; lat > flowMax[res] {
				flowMax[res] = lat
			}
		}
	}
	return out
}

// exitInstant returns when the frame finished leaving route[h]: arrival at
// the next switch, or end of transmission toward a host/router.
func exitInstant(m map[string]units.Time, route []network.NodeID, h int) (units.Time, bool) {
	next := route[h+1]
	if h+1 < len(route)-1 { // next is a switch
		v, ok := m["in@"+string(next)]
		return v, ok
	}
	v, ok := m["txend@"+string(route[h])+">"+string(next)]
	return v, ok
}

// TestPerStageBoundsDominateSimulation validates each pipeline stage's
// bound separately — a much finer check than the end-to-end comparison.
func TestPerStageBoundsDominateSimulation(t *testing.T) {
	topo := network.MustFigure1(network.Figure1Options{Rate: 10 * units.Mbps})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{Flow: mpegLike("mpeg"), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 2},
		{Flow: oneFrameFlow("voip", 160*8, 20*ms, 100*ms, 0), Route: []network.NodeID{"2", "5", "6", "3"}, Priority: 3},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			t.Fatal(err)
		}
	}
	an, err := core.NewAnalyzer(nw, core.Config{Mode: core.ModeSound})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Schedulable() {
		t.Fatal("scenario must be schedulable")
	}

	tr := &CollectTracer{}
	res := run(t, nw, Config{Duration: 2 * units.Second, Tracer: tr})
	if res.Conservation.DeliveredUDP == 0 {
		t.Fatal("nothing delivered")
	}

	measured := measureStageLatencies(t, tr.Events, nw)
	checked := 0
	for i := range bounds.Flows {
		fr := bounds.Flow(i)
		flowMax := measured[fr.Name]
		if flowMax == nil {
			t.Fatalf("no measurements for flow %q", fr.Name)
		}
		// Per-stage bound: max over frames k of the stage's bound.
		stageBound := make(map[string]units.Time)
		for k := range fr.Frames {
			for _, st := range fr.Frames[k].Stages {
				if st.Response > stageBound[st.Resource.String()] {
					stageBound[st.Resource.String()] = st.Response
				}
			}
		}
		for res, lat := range flowMax {
			bound, ok := stageBound[res]
			if !ok {
				t.Fatalf("flow %q: measured unknown stage %s", fr.Name, res)
			}
			if lat > bound {
				t.Errorf("flow %q stage %s: observed %v exceeds bound %v", fr.Name, res, lat, bound)
			}
			checked++
		}
	}
	if checked < 8 {
		t.Fatalf("only %d stage comparisons; trace extraction broken?", checked)
	}
}
