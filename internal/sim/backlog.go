package sim

import (
	"sort"

	"gmfnet/internal/network"
)

// QueueKind classifies the buffered locations of the data path.
type QueueKind int

// Queue kinds.
const (
	// QueueHostPort is a host or router output queue (first hop).
	QueueHostPort QueueKind = iota
	// QueueSwitchInput is a switch input-interface FIFO.
	QueueSwitchInput
	// QueueSwitchOutput is a switch prioritised output queue (all
	// priority levels combined).
	QueueSwitchOutput
)

// String returns the kind's mnemonic.
func (k QueueKind) String() string {
	switch k {
	case QueueHostPort:
		return "host-port"
	case QueueSwitchInput:
		return "switch-in"
	case QueueSwitchOutput:
		return "switch-out"
	}
	return "unknown"
}

// QueueID identifies one queue.
type QueueID struct {
	Kind QueueKind
	// Node owns the queue; Peer is the link direction (receive-from for
	// inputs, send-to for outputs).
	Node, Peer network.NodeID
}

// Backlog is the observed occupancy high-water mark of one queue, in
// Ethernet frames — the buffer size that would have avoided loss in this
// run.
type Backlog struct {
	Queue QueueID
	// MaxFrames is the largest number of Ethernet frames ever queued.
	MaxFrames int
}

// backlogTracker accumulates high-water marks during a run.
type backlogTracker struct {
	max map[QueueID]int
}

func newBacklogTracker() *backlogTracker {
	return &backlogTracker{max: make(map[QueueID]int)}
}

// observe records the current depth of a queue.
func (b *backlogTracker) observe(id QueueID, depth int) {
	if depth > b.max[id] {
		b.max[id] = depth
	}
}

// snapshot returns the high-water marks sorted by descending depth, ties
// by queue identity.
func (b *backlogTracker) snapshot() []Backlog {
	out := make([]Backlog, 0, len(b.max))
	for id, d := range b.max {
		out = append(out, Backlog{Queue: id, MaxFrames: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxFrames != out[j].MaxFrames {
			return out[i].MaxFrames > out[j].MaxFrames
		}
		a, b := out[i].Queue, out[j].Queue
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Peer < b.Peer
	})
	return out
}
