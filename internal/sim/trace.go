package sim

import (
	"fmt"
	"io"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// EventKind classifies trace events along a fragment's life cycle.
type EventKind int

// Trace event kinds, in the order a fragment normally experiences them at
// each hop.
const (
	// EvUDPArrival marks a UDP frame arriving at its source (one event
	// per UDP frame, Frag == -1).
	EvUDPArrival EventKind = iota
	// EvFragRelease marks an Ethernet fragment entering the source
	// node's output queue (after its jitter offset).
	EvFragRelease
	// EvTxStart and EvTxEnd bracket a fragment's transmission on a link;
	// Node is the transmitter, Peer the receiver.
	EvTxStart
	EvTxEnd
	// EvSwitchInFIFO marks reception into a switch input FIFO.
	EvSwitchInFIFO
	// EvRouted marks the route task moving the fragment into an output
	// priority queue.
	EvRouted
	// EvStagedToCard marks the send task moving the fragment into the
	// output card FIFO.
	EvStagedToCard
	// EvDelivered marks a complete UDP frame at the destination (one
	// event per UDP frame, Frag == -1).
	EvDelivered
)

// String returns the event kind's mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvUDPArrival:
		return "udp-arrival"
	case EvFragRelease:
		return "frag-release"
	case EvTxStart:
		return "tx-start"
	case EvTxEnd:
		return "tx-end"
	case EvSwitchInFIFO:
		return "switch-in"
	case EvRouted:
		return "routed"
	case EvStagedToCard:
		return "staged"
	case EvDelivered:
		return "delivered"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// TraceEvent is one observation of the simulated data path.
type TraceEvent struct {
	// At is the simulation time of the event.
	At units.Time
	// Kind classifies the event.
	Kind EventKind
	// Node is where the event happened; Peer is the other end for link
	// events (receiver) and switch stages (input/output neighbour).
	Node, Peer network.NodeID
	// Flow is the flow name; Cycle and FrameIdx identify the UDP frame;
	// Frag is the fragment index (-1 for whole-frame events).
	Flow     string
	Cycle    int64
	FrameIdx int
	Frag     int
}

// Tracer receives every trace event of a run. Implementations must be
// fast; they run inside the event loop.
type Tracer interface {
	Event(TraceEvent)
}

// CollectTracer accumulates events in memory.
type CollectTracer struct {
	// Events holds the observations in emission order.
	Events []TraceEvent
}

// Event implements Tracer.
func (c *CollectTracer) Event(e TraceEvent) { c.Events = append(c.Events, e) }

// WriterTracer renders each event as one text line.
type WriterTracer struct {
	// W receives the rendered lines.
	W io.Writer
}

// Event implements Tracer.
func (w WriterTracer) Event(e TraceEvent) {
	frag := fmt.Sprintf("frag %d/%d", e.Frag, 0)
	if e.Frag < 0 {
		frag = "frame"
	} else {
		frag = fmt.Sprintf("frag %d", e.Frag)
	}
	peer := ""
	if e.Peer != "" {
		peer = "->" + string(e.Peer)
	}
	fmt.Fprintf(w.W, "%-12v %-12s %s%s flow=%s cycle=%d k=%d %s\n",
		e.At, e.Kind, e.Node, peer, e.Flow, e.Cycle, e.FrameIdx, frag)
}

// emit sends an event to the configured tracer, if any.
func (s *Simulator) emit(kind EventKind, node, peer network.NodeID, f *frame, frag int) {
	if s.cfg.Tracer == nil {
		return
	}
	s.cfg.Tracer.Event(TraceEvent{
		At:       s.now,
		Kind:     kind,
		Node:     node,
		Peer:     peer,
		Flow:     s.nw.Flow(f.flow).Flow.Name,
		Cycle:    f.cycle,
		FrameIdx: f.frameIdx,
		Frag:     frag,
	})
}
