package sim

import (
	"sort"

	"gmfnet/internal/units"
)

// Percentile returns the p-quantile (0 <= p <= 1) of the recorded response
// times, or 0 when sampling was disabled (Config.KeepSamples) or nothing
// completed. p = 1 returns the maximum.
func (s *FrameStats) Percentile(p float64) units.Time {
	if len(s.samples) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
	idx := int(p * float64(len(s.samples)-1))
	return s.samples[idx]
}

// Samples returns the number of recorded response samples.
func (s *FrameStats) Samples() int { return len(s.samples) }

// Conservation summarises frame accounting over a run: everything released
// must be delivered or still in flight — the simulator's mass-balance
// invariant, checked by tests and exposed for diagnostics.
type Conservation struct {
	// ReleasedUDP counts UDP frames released by sources.
	ReleasedUDP int64
	// DeliveredUDP counts UDP frames fully received at destinations.
	DeliveredUDP int64
	// InFlightUDP counts UDP frames pending at simulation end.
	InFlightUDP int64
	// ReleasedFragments and DeliveredFragments count Ethernet frames.
	ReleasedFragments  int64
	DeliveredFragments int64
}

// Balanced reports whether released = delivered + in flight.
func (c Conservation) Balanced() bool {
	return c.ReleasedUDP == c.DeliveredUDP+c.InFlightUDP &&
		c.ReleasedFragments >= c.DeliveredFragments
}
