// Package sim is a discrete-event simulator of the paper's data path: GMF
// sources, work-conserving host queues, links with transmission and
// propagation delay, and software Ethernet switches with the internals of
// the paper's Figure 5 — per-input-interface FIFOs, a stride-scheduled CPU
// running one route task per input and one send task per output,
// per-output priority queues and a single-slot NIC FIFO.
//
// The simulator measures the end-to-end response time of every UDP frame
// (from its arrival at the source until its last Ethernet fragment reaches
// the destination) and is used to validate that the analytic bounds of
// package core dominate observed behaviour. By default it is adversarial:
// sources release frames at exactly their minimum separations, all flows
// start synchronised at time zero, and fragments are released at the end
// of their jitter windows.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"gmfnet/internal/ether"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// JitterModel selects where inside [t, t+GJ) the fragments of a frame are
// released.
type JitterModel int

const (
	// JitterBack releases every fragment at the end of the window, the
	// adversarial placement (response is measured from the window start).
	JitterBack JitterModel = iota
	// JitterNone releases every fragment at the window start.
	JitterNone
	// JitterUniform spreads fragments uniformly over the window.
	JitterUniform
)

// PhaseModel selects the flows' start offsets.
type PhaseModel int

const (
	// PhaseSynchronized starts every flow at time zero — the critical
	// instant the analysis assumes.
	PhaseSynchronized PhaseModel = iota
	// PhaseRandom gives each flow a random offset within its cycle.
	PhaseRandom
)

// Config tunes a simulation run.
type Config struct {
	// Duration is the simulated time span. Zero selects one second.
	Duration units.Time
	// Seed feeds the deterministic PRNG.
	Seed int64
	// SeparationSlack inflates inter-arrival times: each separation is
	// T × (1 + SeparationSlack × U[0,1)). Zero keeps minimum separations.
	SeparationSlack float64
	// Jitter selects the fragment release placement.
	Jitter JitterModel
	// Phase selects the flows' start offsets.
	Phase PhaseModel
	// PollCost is the CPU time a stride-scheduled task consumes when it
	// finds no work. Zero selects the task's full cost, which reproduces
	// the analysis' worst-case CIRC exactly; a real Click poll returns
	// faster.
	PollCost units.Time
	// KeepSamples records every response time so that
	// FrameStats.Percentile works; costs memory proportional to the
	// number of delivered frames.
	KeepSamples bool
	// Tracer, when non-nil, receives every data-path event of the run.
	Tracer Tracer
}

func (c Config) withDefaults() Config {
	if c.Duration == 0 {
		c.Duration = units.Second
	}
	return c
}

// FrameStats aggregates the observed response times of one GMF frame index
// of one flow.
type FrameStats struct {
	// Completed is the number of UDP frames fully delivered.
	Completed int64
	// MaxResponse is the largest observed end-to-end response time.
	MaxResponse units.Time
	// SumResponse accumulates response times for MeanResponse.
	SumResponse units.Time
	// InFlight counts UDP frames released but not delivered when the
	// simulation ended (they do not contribute to MaxResponse).
	InFlight int64

	samples []units.Time // populated when Config.KeepSamples is set
	sorted  bool
}

// MeanResponse returns the average observed response time.
func (s *FrameStats) MeanResponse() units.Time {
	if s.Completed == 0 {
		return 0
	}
	return s.SumResponse / units.Time(s.Completed)
}

// FlowStats holds per-frame statistics of one flow.
type FlowStats struct {
	Name     string
	PerFrame []FrameStats
}

// MaxResponse returns the largest observed response over all frames.
func (s *FlowStats) MaxResponse() units.Time {
	var m units.Time
	for i := range s.PerFrame {
		if s.PerFrame[i].MaxResponse > m {
			m = s.PerFrame[i].MaxResponse
		}
	}
	return m
}

// Result is the outcome of a simulation run.
type Result struct {
	// Flows holds statistics per flow, in network order.
	Flows []FlowStats
	// Events is the number of processed events.
	Events int64
	// EndTime is the simulated end time.
	EndTime units.Time
	// Conservation is the frame mass balance of the run.
	Conservation Conservation
	// Backlogs holds the queue-occupancy high-water marks, sorted by
	// descending depth — the buffer provisioning view.
	Backlogs []Backlog
}

// event is one scheduled action. seq breaks time ties deterministically in
// schedule order.
type event struct {
	at  units.Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// frame is one Ethernet frame in flight.
type frame struct {
	flow     int
	cycle    int64 // which repetition of the GMF cycle
	frameIdx int   // k within the cycle
	frag     int
	nfrags   int
	wireBits int64
	// udpArrival is when the UDP frame arrived at the source; responses
	// are measured from here.
	udpArrival units.Time
}

// Simulator runs one scenario. Create with New, run with Run.
type Simulator struct {
	nw  *network.Network
	cfg Config
	rng *rand.Rand

	now    units.Time
	seq    int64
	events eventHeap
	nEv    int64

	ports    map[portKey]*port // transmitting side of every link
	switches map[network.NodeID]*swNode
	stats    []FlowStats
	pending  map[pendingKey]*pendingFrame
	cons     Conservation
	backlog  *backlogTracker
	// succ[i][node] and prio[i] route frames inside switches.
	succ []map[network.NodeID]network.NodeID
}

type portKey struct{ from, to network.NodeID }

type pendingKey struct {
	flow     int
	cycle    int64
	frameIdx int
}

type pendingFrame struct {
	got      int
	nfrags   int
	frameIdx int
	arrival  units.Time
}

// New builds a simulator for the network. The network must validate.
func New(nw *network.Network, cfg Config) (*Simulator, error) {
	if nw == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Simulator{
		nw:       nw,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		ports:    make(map[portKey]*port),
		switches: make(map[network.NodeID]*swNode),
		pending:  make(map[pendingKey]*pendingFrame),
		backlog:  newBacklogTracker(),
	}
	for _, l := range nw.Topo.Links() {
		s.ports[portKey{l.From, l.To}] = &port{sim: s, link: l}
	}
	for _, n := range nw.Topo.Nodes() {
		if n.Kind == network.Switch {
			sw, err := newSwitchNode(s, n)
			if err != nil {
				return nil, err
			}
			s.switches[n.ID] = sw
		}
	}
	s.stats = make([]FlowStats, nw.NumFlows())
	s.succ = make([]map[network.NodeID]network.NodeID, nw.NumFlows())
	for i, fs := range nw.Flows() {
		s.stats[i] = FlowStats{
			Name:     fs.Flow.Name,
			PerFrame: make([]FrameStats, fs.Flow.N()),
		}
		s.succ[i] = make(map[network.NodeID]network.NodeID)
		for h := 0; h < len(fs.Route)-1; h++ {
			s.succ[i][fs.Route[h]] = fs.Route[h+1]
		}
	}
	return s, nil
}

// schedule queues fn at time at (clamped to now).
func (s *Simulator) schedule(at units.Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// Run executes the scenario and returns the collected statistics.
func (s *Simulator) Run() (*Result, error) {
	for i := range s.nw.Flows() {
		s.startSource(i)
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > s.cfg.Duration {
			break
		}
		s.now = e.at
		s.nEv++
		e.fn()
	}
	// Frames still pending are reported as in flight.
	for key, p := range s.pending {
		s.stats[key.flow].PerFrame[p.frameIdx].InFlight++
		s.cons.InFlightUDP++
	}
	return &Result{
		Flows:        s.stats,
		Events:       s.nEv,
		EndTime:      s.now,
		Conservation: s.cons,
		Backlogs:     s.backlog.snapshot(),
	}, nil
}

// startSource schedules the first UDP frame arrival of a flow.
func (s *Simulator) startSource(i int) {
	fs := s.nw.Flow(i)
	var offset units.Time
	if s.cfg.Phase == PhaseRandom {
		offset = units.Time(s.rng.Int63n(int64(fs.Flow.TSUM())))
	}
	s.schedule(offset, func() { s.udpArrival(i, 0, 0) })
}

// udpArrival handles the arrival of frame k (cycle c) of flow i at its
// source: it releases the frame's Ethernet fragments into the source
// port's queue and schedules the next arrival.
func (s *Simulator) udpArrival(i int, c int64, k int) {
	fs := s.nw.Flow(i)
	fr := fs.Flow.Frames[k]
	arrival := s.now

	udpBits := ether.UDPBits(fr.PayloadBits, fs.RTP)
	frags := ether.Fragments(udpBits)
	s.pending[pendingKey{i, c, k}] = &pendingFrame{
		nfrags:   len(frags),
		frameIdx: k,
		arrival:  arrival,
	}
	s.cons.ReleasedUDP++
	s.cons.ReleasedFragments += int64(len(frags))
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Event(TraceEvent{
			At: s.now, Kind: EvUDPArrival, Node: fs.Route[0],
			Flow: fs.Flow.Name, Cycle: c, FrameIdx: k, Frag: -1,
		})
	}
	out := s.ports[portKey{fs.Route[0], fs.Route[1]}]
	for fi, bits := range frags {
		release := arrival
		switch s.cfg.Jitter {
		case JitterBack:
			release += fr.Jitter
		case JitterUniform:
			if fr.Jitter > 0 {
				release += units.Time(s.rng.Int63n(int64(fr.Jitter)))
			}
		}
		f := &frame{
			flow: i, cycle: c, frameIdx: k,
			frag: fi, nfrags: len(frags),
			wireBits: bits, udpArrival: arrival,
		}
		s.schedule(release, func() {
			s.emit(EvFragRelease, fs.Route[0], fs.Route[1], f, f.frag)
			out.enqueue(f)
		})
	}

	// Next arrival: minimum separation, optionally inflated.
	sep := fr.MinSep
	if s.cfg.SeparationSlack > 0 {
		sep += units.Time(s.cfg.SeparationSlack * s.rng.Float64() * float64(fr.MinSep))
	}
	nextK := (k + 1) % fs.Flow.N()
	nextC := c
	if nextK == 0 {
		nextC++
	}
	s.schedule(s.now+sep, func() { s.udpArrival(i, nextC, nextK) })
}

// deliver handles an Ethernet frame reaching the next node after the
// wire's propagation delay.
func (s *Simulator) deliver(f *frame, node network.NodeID) {
	fs := s.nw.Flow(f.flow)
	if node == fs.Destination() {
		key := pendingKey{f.flow, f.cycle, f.frameIdx}
		p := s.pending[key]
		if p == nil {
			return // duplicate delivery cannot happen; be defensive
		}
		p.got++
		s.cons.DeliveredFragments++
		if p.got == p.nfrags {
			delete(s.pending, key)
			s.cons.DeliveredUDP++
			s.emit(EvDelivered, node, "", f, -1)
			resp := s.now - p.arrival
			st := &s.stats[f.flow].PerFrame[p.frameIdx]
			st.Completed++
			st.SumResponse += resp
			if resp > st.MaxResponse {
				st.MaxResponse = resp
			}
			if s.cfg.KeepSamples {
				st.samples = append(st.samples, resp)
				st.sorted = false
			}
		}
		return
	}
	sw := s.switches[node]
	if sw == nil {
		// Validated routes only relay through switches.
		panic(fmt.Sprintf("sim: frame for non-switch relay %q", node))
	}
	sw.receive(f)
}
