package sim

import (
	"fmt"
	"sort"

	"gmfnet/internal/network"
	"gmfnet/internal/stride"
	"gmfnet/internal/units"
)

// port is the transmitting side of one directed link: a FIFO queue and a
// transmitter. For a host or router it is the work-conserving output
// queue of the first hop; for a switch it is the NIC that drains the
// single-slot card FIFO filled by the send task.
type port struct {
	sim  *Simulator
	link *network.Link

	queue []*frame
	busy  bool

	// onDrain, when non-nil, is called each time a transmission finishes;
	// the switch uses it to wake its CPU (the card FIFO has a free slot).
	onDrain func()
}

// enqueue adds a frame and starts transmitting when idle.
func (p *port) enqueue(f *frame) {
	p.queue = append(p.queue, f)
	if p.sim.nw.Topo.Node(p.link.From).Kind != network.Switch {
		p.sim.backlog.observe(QueueID{Kind: QueueHostPort, Node: p.link.From, Peer: p.link.To}, len(p.queue))
	}
	p.maybeTransmit()
}

func (p *port) maybeTransmit() {
	if p.busy || len(p.queue) == 0 {
		return
	}
	f := p.queue[0]
	p.queue = p.queue[1:]
	p.busy = true
	p.sim.emit(EvTxStart, p.link.From, p.link.To, f, f.frag)
	txDone := p.sim.now + units.TxTime(f.wireBits, p.link.Rate)
	arrive := txDone + p.link.Prop
	p.sim.schedule(txDone, func() {
		p.sim.emit(EvTxEnd, p.link.From, p.link.To, f, f.frag)
		p.busy = false
		if p.onDrain != nil {
			p.onDrain()
		}
		p.maybeTransmit()
	})
	p.sim.schedule(arrive, func() { p.sim.deliver(f, p.link.To) })
}

// taskKind distinguishes the two Click task types.
type taskKind int

const (
	taskRoute taskKind = iota
	taskSend
)

// swTask is one stride-scheduled software task of a switch.
type swTask struct {
	kind taskKind
	// peer is the neighbour whose input FIFO (route) or output queue
	// (send) this task serves.
	peer network.NodeID
}

// cpu is one processor of a switch: a stride scheduler over its tasks.
type cpu struct {
	sw      *swNode
	sched   *stride.Scheduler
	tasks   map[string]swTask
	running bool
}

// swNode is a software Ethernet switch per the paper's Figure 5.
type swNode struct {
	sim  *Simulator
	node *network.Node

	// inFIFO holds frames received from each neighbour, awaiting the
	// route task.
	inFIFO map[network.NodeID][]*frame
	// prioQ holds, per outgoing neighbour, the prioritised output queue:
	// a slice of per-priority FIFOs indexed via prioOrder.
	prioQ map[network.NodeID]map[network.Priority][]*frame
	// cardFree reports whether the outgoing card FIFO (capacity one) has
	// room; the send task only moves a frame when it does.
	cardFree map[network.NodeID]bool

	cpus   []*cpu
	byPeer map[network.NodeID]*cpu
}

func newSwitchNode(s *Simulator, node *network.Node) (*swNode, error) {
	sw := &swNode{
		sim:      s,
		node:     node,
		inFIFO:   make(map[network.NodeID][]*frame),
		prioQ:    make(map[network.NodeID]map[network.Priority][]*frame),
		cardFree: make(map[network.NodeID]bool),
		byPeer:   make(map[network.NodeID]*cpu),
	}
	// Interfaces = union of in- and out-neighbours, sorted for
	// determinism.
	peerSet := make(map[network.NodeID]bool)
	for _, l := range s.nw.Topo.Links() {
		if l.From == node.ID {
			peerSet[l.To] = true
		}
		if l.To == node.ID {
			peerSet[l.From] = true
		}
	}
	peers := make([]network.NodeID, 0, len(peerSet))
	for p := range peerSet {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	if len(peers) == 0 {
		return nil, fmt.Errorf("sim: switch %q has no interfaces", node.ID)
	}

	// Partition interfaces over the processors (Conclusions section):
	// contiguous groups of ceil(n/m), both tasks of an interface on the
	// same CPU.
	m := node.Switch.Processors
	if m <= 0 {
		m = 1
	}
	group := int(units.CeilDiv(int64(len(peers)), int64(m)))
	for start := 0; start < len(peers); start += group {
		end := start + group
		if end > len(peers) {
			end = len(peers)
		}
		c := &cpu{sw: sw, sched: stride.New(), tasks: make(map[string]swTask)}
		for _, peer := range peers[start:end] {
			routeName := "route:" + string(peer)
			sendName := "send:" + string(peer)
			if _, err := c.sched.Add(routeName, 1); err != nil {
				return nil, err
			}
			c.tasks[routeName] = swTask{kind: taskRoute, peer: peer}
			if _, err := c.sched.Add(sendName, 1); err != nil {
				return nil, err
			}
			c.tasks[sendName] = swTask{kind: taskSend, peer: peer}
			sw.byPeer[peer] = c
		}
		sw.cpus = append(sw.cpus, c)
	}

	for _, peer := range peers {
		peer := peer
		sw.cardFree[peer] = true
		if out := s.ports[portKey{node.ID, peer}]; out != nil {
			// The card FIFO slot frees when the wire finishes; the CPU
			// may then stage the next frame.
			out.onDrain = func() {
				sw.cardFree[peer] = true
				if c := sw.byPeer[peer]; c != nil {
					c.wake()
				}
			}
		}
	}
	return sw, nil
}

// receive stores an arriving frame in the input FIFO and wakes the CPU
// serving that interface.
func (sw *swNode) receive(f *frame) {
	from := sw.prevHop(f)
	sw.sim.emit(EvSwitchInFIFO, sw.node.ID, from, f, f.frag)
	sw.inFIFO[from] = append(sw.inFIFO[from], f)
	sw.sim.backlog.observe(QueueID{Kind: QueueSwitchInput, Node: sw.node.ID, Peer: from}, len(sw.inFIFO[from]))
	if c := sw.byPeer[from]; c != nil {
		c.wake()
	}
}

// prevHop returns the neighbour the frame arrived from.
func (sw *swNode) prevHop(f *frame) network.NodeID {
	fs := sw.sim.nw.Flow(f.flow)
	p, ok := fs.Prec(sw.node.ID)
	if !ok {
		panic(fmt.Sprintf("sim: switch %q not on route of flow %q", sw.node.ID, fs.Flow.Name))
	}
	return p
}

// hasWork reports whether any task of this CPU could make progress or at
// least must keep polling: a non-empty input FIFO or output queue.
func (c *cpu) hasWork() bool {
	for _, t := range c.tasks {
		switch t.kind {
		case taskRoute:
			if len(c.sw.inFIFO[t.peer]) > 0 {
				return true
			}
		case taskSend:
			if queuedFrames(c.sw.prioQ[t.peer]) > 0 {
				return true
			}
		}
	}
	return false
}

func queuedFrames(q map[network.Priority][]*frame) int {
	n := 0
	for _, fifo := range q {
		n += len(fifo)
	}
	return n
}

// wake starts the CPU's polling loop if it is sleeping.
func (c *cpu) wake() {
	if c.running {
		return
	}
	c.running = true
	c.step()
}

// step dispatches the next stride-scheduled task, executes it, and
// schedules the following step. The CPU sleeps when no task has work,
// which preserves worst-case timing because the analysis covers any task
// phasing.
func (c *cpu) step() {
	if !c.hasWork() {
		c.running = false
		return
	}
	task := c.tasks[c.sched.Next().Name()]
	sw := c.sw
	p := sw.node.Switch
	switch task.kind {
	case taskRoute:
		fifo := sw.inFIFO[task.peer]
		if len(fifo) == 0 {
			c.idleStep(p.CRoute)
			return
		}
		f := fifo[0]
		sw.inFIFO[task.peer] = fifo[1:]
		done := sw.sim.now + p.CRoute
		sw.sim.schedule(done, func() {
			sw.enqueuePrio(f)
			c.step()
		})
	case taskSend:
		if !sw.cardFree[task.peer] {
			c.idleStep(p.CSend)
			return
		}
		f := sw.dequeuePrio(task.peer)
		if f == nil {
			c.idleStep(p.CSend)
			return
		}
		sw.cardFree[task.peer] = false
		done := sw.sim.now + p.CSend
		sw.sim.schedule(done, func() {
			sw.sendToCard(task.peer, f)
			c.step()
		})
	}
}

// idleStep burns the poll cost of a task that found no work.
func (c *cpu) idleStep(full units.Time) {
	cost := c.sw.sim.cfg.PollCost
	if cost <= 0 {
		cost = full
	}
	c.sw.sim.schedule(c.sw.sim.now+cost, c.step)
}

// enqueuePrio places a routed frame in the output priority queue toward
// its next hop.
func (sw *swNode) enqueuePrio(f *frame) {
	fs := sw.sim.nw.Flow(f.flow)
	next := sw.sim.succ[f.flow][sw.node.ID]
	q := sw.prioQ[next]
	if q == nil {
		q = make(map[network.Priority][]*frame)
		sw.prioQ[next] = q
	}
	q[fs.Priority] = append(q[fs.Priority], f)
	sw.sim.backlog.observe(QueueID{Kind: QueueSwitchOutput, Node: sw.node.ID, Peer: next}, queuedFrames(q))
	sw.sim.emit(EvRouted, sw.node.ID, next, f, f.frag)
	if c := sw.byPeer[next]; c != nil {
		c.wake()
	}
}

// dequeuePrio removes the head of the highest non-empty priority FIFO of
// the output toward peer, or returns nil.
func (sw *swNode) dequeuePrio(peer network.NodeID) *frame {
	q := sw.prioQ[peer]
	if len(q) == 0 {
		return nil
	}
	best := network.Priority(-1)
	for prio, fifo := range q {
		if len(fifo) > 0 && prio > best {
			best = prio
		}
	}
	if best < 0 {
		return nil
	}
	f := q[best][0]
	q[best] = q[best][1:]
	if len(q[best]) == 0 {
		delete(q, best)
	}
	return f
}

// sendToCard puts the frame into the outgoing card FIFO; the card
// transmits immediately and the slot frees (via the port's onDrain hook)
// when the transmission ends.
func (sw *swNode) sendToCard(peer network.NodeID, f *frame) {
	out := sw.sim.ports[portKey{sw.node.ID, peer}]
	if out == nil {
		panic(fmt.Sprintf("sim: switch %q has no link to %q", sw.node.ID, peer))
	}
	sw.sim.emit(EvStagedToCard, sw.node.ID, peer, f, f.frag)
	out.enqueue(f)
}
