package sim

import (
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

func TestQueueKindString(t *testing.T) {
	if QueueHostPort.String() != "host-port" ||
		QueueSwitchInput.String() != "switch-in" ||
		QueueSwitchOutput.String() != "switch-out" {
		t.Fatal("queue kind strings wrong")
	}
	if QueueKind(9).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestBacklogsRecorded(t *testing.T) {
	// Two converging flows force queueing at the shared output.
	a := &network.FlowSpec{
		Flow:  oneFrameFlow("a", 3*11840, 30*ms, 300*ms, 0), // 4 fragments
		Route: []network.NodeID{"h1", "s", "h3"},
	}
	b := &network.FlowSpec{
		Flow:  oneFrameFlow("b", 3*11840, 30*ms, 300*ms, 0),
		Route: []network.NodeID{"h2", "s", "h3"},
	}
	res := run(t, oneSwitchNet(t, a, b), Config{Duration: units.Second})
	if len(res.Backlogs) == 0 {
		t.Fatal("no backlogs recorded")
	}
	// Sorted descending.
	for i := 1; i < len(res.Backlogs); i++ {
		if res.Backlogs[i-1].MaxFrames < res.Backlogs[i].MaxFrames {
			t.Fatal("backlogs not sorted")
		}
	}
	byID := make(map[QueueID]int)
	for _, bl := range res.Backlogs {
		if bl.MaxFrames <= 0 {
			t.Fatalf("non-positive high-water mark: %+v", bl)
		}
		byID[bl.Queue] = bl.MaxFrames
	}
	// The shared switch output toward h3 must have buffered more than one
	// frame (two flows of 4 fragments collide).
	out := byID[QueueID{Kind: QueueSwitchOutput, Node: "s", Peer: "h3"}]
	if out < 2 {
		t.Fatalf("switch output backlog = %d, want >= 2", out)
	}
	// Host ports queue the fragments behind the one already on the wire:
	// a 4-fragment frame leaves at most 3 waiting.
	hp := byID[QueueID{Kind: QueueHostPort, Node: "h1", Peer: "s"}]
	if hp != 3 {
		t.Fatalf("host port backlog = %d, want 3", hp)
	}
	// Idle direction must not appear.
	if _, ok := byID[QueueID{Kind: QueueSwitchOutput, Node: "s", Peer: "h1"}]; ok {
		t.Fatal("idle output recorded a backlog")
	}
}

func TestBacklogGrowsWithLoad(t *testing.T) {
	mk := func(payload int64) int {
		fs := &network.FlowSpec{
			Flow:  oneFrameFlow("a", payload, 50*ms, 500*ms, 0),
			Route: []network.NodeID{"h1", "s", "h2"},
		}
		res := run(t, oneSwitchNet(t, fs), Config{Duration: units.Second})
		max := 0
		for _, bl := range res.Backlogs {
			if bl.Queue.Kind == QueueHostPort && bl.MaxFrames > max {
				max = bl.MaxFrames
			}
		}
		return max
	}
	small := mk(11840 - 64) // 1 fragment
	large := mk(8 * 11840)  // 9 fragments
	if large <= small {
		t.Fatalf("host-port backlog small=%d large=%d; larger frames must queue deeper", small, large)
	}
	// The switch input FIFO never builds up here: CIRC (7.4 µs) drains far
	// faster than the 10 Mbit/s wire delivers (1.23 ms per fragment).
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", 8*11840, 50*ms, 500*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	res := run(t, oneSwitchNet(t, fs), Config{Duration: units.Second})
	for _, bl := range res.Backlogs {
		if bl.Queue.Kind == QueueSwitchInput && bl.MaxFrames > 1 {
			t.Fatalf("switch input backlog %d, want <= 1 (drain outpaces wire)", bl.MaxFrames)
		}
	}
}
