package sim

import (
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

func TestPercentilesWithSampling(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  mpegLike("v"),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	res := run(t, oneSwitchNet(t, fs), Config{
		Duration:        2 * units.Second,
		KeepSamples:     true,
		Jitter:          JitterUniform,
		SeparationSlack: 0.2,
		Seed:            11,
	})
	st := &res.Flows[0].PerFrame[0]
	if st.Samples() == 0 {
		t.Fatal("no samples recorded despite KeepSamples")
	}
	if int64(st.Samples()) != st.Completed {
		t.Fatalf("samples %d != completed %d", st.Samples(), st.Completed)
	}
	p0 := st.Percentile(0)
	p50 := st.Percentile(0.5)
	p100 := st.Percentile(1)
	if !(p0 <= p50 && p50 <= p100) {
		t.Fatalf("percentiles not monotone: %v %v %v", p0, p50, p100)
	}
	if p100 != st.MaxResponse {
		t.Fatalf("p100 %v != max %v", p100, st.MaxResponse)
	}
	if st.MeanResponse() < p0 || st.MeanResponse() > p100 {
		t.Fatalf("mean %v outside [min,max]", st.MeanResponse())
	}
	// Out-of-range arguments clamp.
	if st.Percentile(-1) != p0 || st.Percentile(2) != p100 {
		t.Fatal("percentile clamping broken")
	}
}

func TestPercentileWithoutSampling(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	res := run(t, directLinkNet(t, fs), Config{Duration: units.Second})
	if got := res.Flows[0].PerFrame[0].Percentile(0.5); got != 0 {
		t.Fatalf("percentile without sampling = %v, want 0", got)
	}
}

func TestConservationBalanced(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  mpegLike("v"),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	cfgs := []Config{
		{Duration: units.Second},
		{Duration: 100 * units.Millisecond}, // ends with frames in flight
		{Duration: units.Second, Jitter: JitterUniform, SeparationSlack: 0.5, Seed: 5, Phase: PhaseRandom},
	}
	for i, cfg := range cfgs {
		res := run(t, oneSwitchNet(t, fs), cfg)
		c := res.Conservation
		if !c.Balanced() {
			t.Fatalf("config %d: conservation violated: %+v", i, c)
		}
		if c.ReleasedUDP == 0 {
			t.Fatalf("config %d: nothing released", i)
		}
		var delivered int64
		for k := range res.Flows[0].PerFrame {
			delivered += res.Flows[0].PerFrame[k].Completed
		}
		if delivered != c.DeliveredUDP {
			t.Fatalf("config %d: stats delivered %d != conservation %d", i, delivered, c.DeliveredUDP)
		}
	}
}

func TestConservationFragments(t *testing.T) {
	// Multi-fragment frames: fragment counters must track UDP counters.
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", 3*11840, 50*ms, 100*ms, 0), // 4 fragments
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	res := run(t, oneSwitchNet(t, fs), Config{Duration: units.Second})
	c := res.Conservation
	if c.ReleasedFragments != 4*c.ReleasedUDP {
		t.Fatalf("released fragments %d != 4×%d", c.ReleasedFragments, c.ReleasedUDP)
	}
	if c.DeliveredFragments < 4*c.DeliveredUDP {
		t.Fatalf("delivered fragments %d < 4×%d", c.DeliveredFragments, c.DeliveredUDP)
	}
}
