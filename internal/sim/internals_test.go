package sim

import (
	"container/heap"
	"testing"
	"testing/quick"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// TestEventHeapOrdering: events pop in time order with scheduling order as
// the tie break — the foundation of the simulator's determinism.
func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	times := []units.Time{50, 10, 30, 10, 50, 20}
	for i, at := range times {
		heap.Push(&h, &event{at: at, seq: int64(i)})
	}
	var gotAt []units.Time
	var gotSeq []int64
	for h.Len() > 0 {
		e := heap.Pop(&h).(*event)
		gotAt = append(gotAt, e.at)
		gotSeq = append(gotSeq, e.seq)
	}
	wantAt := []units.Time{10, 10, 20, 30, 50, 50}
	wantSeq := []int64{1, 3, 5, 2, 0, 4}
	for i := range wantAt {
		if gotAt[i] != wantAt[i] || gotSeq[i] != wantSeq[i] {
			t.Fatalf("pop %d = (%v, %d), want (%v, %d)", i, gotAt[i], gotSeq[i], wantAt[i], wantSeq[i])
		}
	}
}

// TestEventHeapProperty: any push sequence pops in non-decreasing time.
func TestEventHeapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var h eventHeap
		for i, r := range raw {
			heap.Push(&h, &event{at: units.Time(r), seq: int64(i)})
		}
		var prev units.Time = -1
		for h.Len() > 0 {
			e := heap.Pop(&h).(*event)
			if e.at < prev {
				return false
			}
			prev = e.at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleClampsPast: events scheduled in the past fire "now", never
// rewinding simulated time.
func TestScheduleClampsPast(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 100*ms, 100*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	s, err := New(directLinkNet(t, fs), Config{Duration: 10 * ms})
	if err != nil {
		t.Fatal(err)
	}
	s.now = 5 * ms
	fired := units.Time(-1)
	s.schedule(1*ms, func() { fired = s.now })
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	if fired != 5*ms {
		t.Fatalf("past event fired at %v, want clamped to 5ms", fired)
	}
}

// TestPortFIFOOrder: a port transmits frames strictly in enqueue order.
func TestPortFIFOOrder(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", 4*11840, 100*ms, 100*ms, 0), // 5 fragments
		Route: []network.NodeID{"h1", "h2"},
	}
	tr := &CollectTracer{}
	_ = run(t, directLinkNet(t, fs), Config{Duration: 50 * units.Millisecond, Tracer: tr})
	lastFrag := -1
	for _, e := range tr.Events {
		if e.Kind != EvTxStart {
			continue
		}
		if e.Frag != lastFrag+1 {
			t.Fatalf("fragment %d transmitted after %d", e.Frag, lastFrag)
		}
		lastFrag = e.Frag
	}
	if lastFrag != 4 {
		t.Fatalf("saw %d fragments, want 5", lastFrag+1)
	}
}

// TestWireNeverOverlaps: on any single link, tx-start never happens while
// a previous transmission is still running.
func TestWireNeverOverlaps(t *testing.T) {
	fs0 := &network.FlowSpec{
		Flow:  mpegLike("v"),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	fs1 := &network.FlowSpec{
		Flow:  oneFrameFlow("c", 2*11840, 25*ms, 100*ms, 0),
		Route: []network.NodeID{"h3", "s", "h2"},
	}
	tr := &CollectTracer{}
	_ = run(t, oneSwitchNet(t, fs0, fs1), Config{Duration: units.Second, Tracer: tr})
	type link struct{ from, to network.NodeID }
	busyUntil := make(map[link]units.Time)
	started := make(map[link]units.Time)
	for _, e := range tr.Events {
		l := link{e.Node, e.Peer}
		switch e.Kind {
		case EvTxStart:
			if e.At < busyUntil[l] {
				t.Fatalf("link %v: tx-start at %v while busy until %v", l, e.At, busyUntil[l])
			}
			started[l] = e.At
		case EvTxEnd:
			busyUntil[l] = e.At
		}
	}
	if len(busyUntil) == 0 {
		t.Fatal("no transmissions observed")
	}
}
