package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// randomScenario builds a random workload on the Figure 1 topology. It
// may or may not be schedulable; the caller filters.
func randomScenario(seed int64) (*network.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	rates := []units.BitRate{10 * units.Mbps, 100 * units.Mbps}
	topo, err := network.Figure1(network.Figure1Options{Rate: rates[rng.Intn(len(rates))]})
	if err != nil {
		return nil, err
	}
	nw := network.New(topo)
	hosts := []network.NodeID{"0", "1", "2", "3"}
	nFlows := 1 + rng.Intn(5)
	for f := 0; f < nFlows; f++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			return nil, err
		}
		flow := trace.Random(fmt.Sprintf("r%d", f), rng, trace.RandomOptions{
			MaxFrames:       5,
			MinSep:          20 * units.Millisecond,
			MaxSep:          80 * units.Millisecond,
			MaxPayloadBytes: 20000,
			DeadlineFactor:  4,
			MaxJitter:       2 * units.Millisecond,
		})
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     flow,
			Route:    route,
			Priority: network.Priority(rng.Intn(3)),
		}); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// TestCrossValidateRandomScenarios is the fuzz harness for the central
// soundness claim: over randomly generated workloads, whenever the
// ModeSound analysis converges, the adversarial simulator must never
// observe a response above the analytic bound.
func TestCrossValidateRandomScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("cross validation is expensive")
	}
	analysed, validated := 0, 0
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			nw, err := randomScenario(seed)
			if err != nil {
				t.Fatal(err)
			}
			an, err := core.NewAnalyzer(nw, core.Config{Mode: core.ModeSound})
			if err != nil {
				t.Fatal(err)
			}
			res, err := an.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			analysed++
			if !res.Converged {
				t.Skip("scenario diverged; nothing to validate")
			}
			for _, cfg := range []Config{
				{Duration: units.Second},
				{Duration: units.Second, Seed: seed, Jitter: JitterUniform, Phase: PhaseRandom, SeparationSlack: 0.3},
			} {
				s, err := New(nw, cfg)
				if err != nil {
					t.Fatal(err)
				}
				obs, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !obs.Conservation.Balanced() {
					t.Fatalf("conservation violated: %+v", obs.Conservation)
				}
				for i := range obs.Flows {
					if res.Flow(i).Err != nil {
						continue
					}
					for k := range obs.Flows[i].PerFrame {
						o := obs.Flows[i].PerFrame[k].MaxResponse
						b := res.Flow(i).Frames[k].Response
						if o > b {
							t.Errorf("flow %d frame %d: observed %v > bound %v (cfg %+v)",
								i, k, o, b, cfg)
						}
					}
				}
			}
			validated++
		})
	}
	t.Logf("cross-validated %d/%d random scenarios", validated, analysed)
}
