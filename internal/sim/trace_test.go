package sim

import (
	"strings"
	"testing"

	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		EvUDPArrival: "udp-arrival", EvFragRelease: "frag-release",
		EvTxStart: "tx-start", EvTxEnd: "tx-end",
		EvSwitchInFIFO: "switch-in", EvRouted: "routed",
		EvStagedToCard: "staged", EvDelivered: "delivered",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(EventKind(42).String(), "42") {
		t.Error("unknown kind string")
	}
}

func TestTraceSingleFragmentLifecycle(t *testing.T) {
	// One flow, one fragment per frame, one switch: the trace must show
	// the full Figure 5 path in order.
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 200*ms, 200*ms, 0),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	tr := &CollectTracer{}
	_ = run(t, oneSwitchNet(t, fs), Config{Duration: 150 * units.Millisecond, Tracer: tr})

	wantOrder := []EventKind{
		EvUDPArrival, EvFragRelease,
		EvTxStart, EvTxEnd, // h1 -> s
		EvSwitchInFIFO, EvRouted, EvStagedToCard,
		EvTxStart, EvTxEnd, // s -> h2
		EvDelivered,
	}
	if len(tr.Events) != len(wantOrder) {
		kinds := make([]EventKind, len(tr.Events))
		for i, e := range tr.Events {
			kinds[i] = e.Kind
		}
		t.Fatalf("events = %v, want %v", kinds, wantOrder)
	}
	var prev units.Time
	for i, e := range tr.Events {
		if e.Kind != wantOrder[i] {
			t.Fatalf("event %d = %v, want %v", i, e.Kind, wantOrder[i])
		}
		if e.At < prev {
			t.Fatalf("event %d time %v before %v", i, e.At, prev)
		}
		prev = e.At
		if e.Flow != "a" {
			t.Fatalf("event %d flow %q", i, e.Flow)
		}
	}
	// Spot-check locations.
	if tr.Events[2].Node != "h1" || tr.Events[2].Peer != "s" {
		t.Fatalf("tx-start at %v->%v", tr.Events[2].Node, tr.Events[2].Peer)
	}
	if tr.Events[5].Node != "s" || tr.Events[5].Peer != "h2" {
		t.Fatalf("routed at %v->%v", tr.Events[5].Node, tr.Events[5].Peer)
	}
}

func TestTraceFragmentCountsMatchConservation(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  mpegLike("v"),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	tr := &CollectTracer{}
	res := run(t, oneSwitchNet(t, fs), Config{Duration: 500 * units.Millisecond, Tracer: tr})
	counts := map[EventKind]int64{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	c := res.Conservation
	if counts[EvUDPArrival] != c.ReleasedUDP {
		t.Fatalf("udp arrivals %d != released %d", counts[EvUDPArrival], c.ReleasedUDP)
	}
	if counts[EvDelivered] != c.DeliveredUDP {
		t.Fatalf("delivered events %d != delivered %d", counts[EvDelivered], c.DeliveredUDP)
	}
	if counts[EvFragRelease] != c.ReleasedFragments {
		t.Fatalf("frag releases %d != released %d", counts[EvFragRelease], c.ReleasedFragments)
	}
	// Every routed fragment was first received; every staged one first
	// routed.
	if counts[EvRouted] > counts[EvSwitchInFIFO] || counts[EvStagedToCard] > counts[EvRouted] {
		t.Fatalf("pipeline counts inconsistent: %v", counts)
	}
}

func TestWriterTracer(t *testing.T) {
	var b strings.Builder
	fs := &network.FlowSpec{
		Flow:  oneFrameFlow("a", fullFramePayload, 200*ms, 200*ms, 0),
		Route: []network.NodeID{"h1", "h2"},
	}
	_ = run(t, directLinkNet(t, fs), Config{Duration: 100 * units.Millisecond, Tracer: WriterTracer{W: &b}})
	out := b.String()
	for _, want := range []string{"udp-arrival", "tx-start", "tx-end", "delivered", "flow=a"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < 5 {
		t.Fatalf("only %d trace lines", lines)
	}
}

func TestTracingDoesNotChangeBehaviour(t *testing.T) {
	fs := &network.FlowSpec{
		Flow:  mpegLike("v"),
		Route: []network.NodeID{"h1", "s", "h2"},
	}
	plain := run(t, oneSwitchNet(t, fs), Config{Duration: units.Second})
	traced := run(t, oneSwitchNet(t, fs), Config{Duration: units.Second, Tracer: &CollectTracer{}})
	for k := range plain.Flows[0].PerFrame {
		if plain.Flows[0].PerFrame[k].MaxResponse != traced.Flows[0].PerFrame[k].MaxResponse {
			t.Fatal("tracing changed observed responses")
		}
	}
	if plain.Events != traced.Events {
		t.Fatal("tracing changed event count")
	}
}
