// Package stride implements stride scheduling (Waldspurger & Weihl, 1995),
// the proportional-share dispatcher used by the Click software inside the
// paper's Ethernet switches.
//
// Each task owns a number of tickets. Its stride is Stride1/tickets for a
// large constant Stride1, and its pass counter starts at its stride. The
// dispatcher always runs the task with the least pass (ties broken
// deterministically by registration order), then advances that task's pass
// by its stride. A task with twice the tickets is therefore dispatched
// twice as often.
//
// With equal tickets for every task, stride scheduling degenerates to
// round-robin — the configuration the paper assumes (its footnote 1: the
// Click default) and the one that yields CIRC(N) = NINTERFACES(N) ×
// (CROUTE(N)+CSEND(N)).
package stride

import "fmt"

// Stride1 is the large constant divided by a task's tickets to obtain its
// stride. 1<<20 matches the original paper's suggestion.
const Stride1 = 1 << 20

// Task is one schedulable entity.
type Task struct {
	name    string
	tickets int64
	stride  int64
	pass    int64
	index   int // registration order; deterministic tie break
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Tickets returns the task's ticket allocation.
func (t *Task) Tickets() int64 { return t.tickets }

// Pass returns the task's current pass value.
func (t *Task) Pass() int64 { return t.pass }

// Scheduler is a stride-scheduling dispatcher. The zero value is unusable;
// create one with New.
type Scheduler struct {
	tasks []*Task
	heap  []*Task // min-heap on (pass, index)
}

// New returns an empty scheduler.
func New() *Scheduler { return &Scheduler{} }

// Add registers a task with the given ticket count and returns it.
// Per the original algorithm the task's pass starts at its stride.
func (s *Scheduler) Add(name string, tickets int64) (*Task, error) {
	if tickets <= 0 {
		return nil, fmt.Errorf("stride: task %q: tickets must be positive, got %d", name, tickets)
	}
	if tickets > Stride1 {
		return nil, fmt.Errorf("stride: task %q: tickets %d exceed Stride1", name, tickets)
	}
	t := &Task{
		name:    name,
		tickets: tickets,
		stride:  Stride1 / tickets,
		pass:    Stride1 / tickets,
		index:   len(s.tasks),
	}
	s.tasks = append(s.tasks, t)
	s.push(t)
	return t, nil
}

// Len returns the number of registered tasks.
func (s *Scheduler) Len() int { return len(s.tasks) }

// Tasks returns the registered tasks in registration order. The slice is
// shared; callers must not mutate it.
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Next dispatches: it returns the task with the least pass and advances
// that task's pass by its stride. It panics if no tasks are registered,
// because a switch without tasks cannot exist in a validated model.
func (s *Scheduler) Next() *Task {
	if len(s.heap) == 0 {
		panic("stride: Next on empty scheduler")
	}
	t := s.heap[0]
	t.pass += t.stride
	s.siftDown(0)
	return t
}

// Peek returns the task that Next would dispatch, without advancing it.
func (s *Scheduler) Peek() *Task {
	if len(s.heap) == 0 {
		panic("stride: Peek on empty scheduler")
	}
	return s.heap[0]
}

func (s *Scheduler) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.pass != b.pass {
		return a.pass < b.pass
	}
	return a.index < b.index
}

func (s *Scheduler) push(t *Task) {
	s.heap = append(s.heap, t)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// RoundRobin builds a scheduler with one ticket per name: the Click
// default configuration in which stride scheduling collapses to
// round-robin.
func RoundRobin(names ...string) (*Scheduler, error) {
	s := New()
	for _, n := range names {
		if _, err := s.Add(n, 1); err != nil {
			return nil, err
		}
	}
	return s, nil
}
