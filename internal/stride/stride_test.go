package stride

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddErrors(t *testing.T) {
	s := New()
	if _, err := s.Add("a", 0); err == nil {
		t.Error("zero tickets accepted")
	}
	if _, err := s.Add("a", -3); err == nil {
		t.Error("negative tickets accepted")
	}
	if _, err := s.Add("a", Stride1+1); err == nil {
		t.Error("oversized tickets accepted")
	}
	if _, err := s.Add("a", 1); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestTaskAccessors(t *testing.T) {
	s := New()
	task, err := s.Add("io", 4)
	if err != nil {
		t.Fatal(err)
	}
	if task.Name() != "io" || task.Tickets() != 4 {
		t.Fatalf("accessors: %q %d", task.Name(), task.Tickets())
	}
	if task.Pass() != Stride1/4 {
		t.Fatalf("initial pass = %d, want stride %d", task.Pass(), Stride1/4)
	}
	if got := s.Tasks(); len(got) != 1 || got[0] != task {
		t.Fatal("Tasks() wrong")
	}
}

func TestEmptySchedulerPanics(t *testing.T) {
	s := New()
	for name, f := range map[string]func(){
		"Next": func() { s.Next() },
		"Peek": func() { s.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty scheduler did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRoundRobinOrder(t *testing.T) {
	// Equal tickets must produce strict round-robin: the paper's
	// footnote 1 relies on this.
	s, err := RoundRobin("in0", "in1", "out0", "out1")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 12; i++ {
		got = append(got, s.Next().Name())
	}
	want := []string{
		"in0", "in1", "out0", "out1",
		"in0", "in1", "out0", "out1",
		"in0", "in1", "out0", "out1",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d = %q, want %q (sequence %v)", i, got[i], want[i], got)
		}
	}
}

func TestRoundRobinSeparation(t *testing.T) {
	// Property: with k equal-ticket tasks, consecutive dispatches of the
	// same task are exactly k apart — the fact behind CIRC(N).
	f := func(kRaw uint8, nRaw uint16) bool {
		k := int(kRaw%15) + 1
		n := int(nRaw%500) + k
		names := make([]string, k)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		s, err := RoundRobin(names...)
		if err != nil {
			return false
		}
		last := make(map[string]int)
		for i := 0; i < n; i++ {
			name := s.Next().Name()
			if prev, seen := last[name]; seen && i-prev != k {
				return false
			}
			last[name] = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalShare(t *testing.T) {
	// A task with double tickets runs twice as often, within ±1 dispatch
	// over any window (stride scheduling's strong throughput accuracy).
	s := New()
	if _, err := s.Add("heavy", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add("light", 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[s.Next().Name()]++
	}
	if counts["heavy"] != 2000 || counts["light"] != 1000 {
		t.Fatalf("counts = %v, want heavy=2000 light=1000", counts)
	}
}

func TestProportionalShareRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		s := New()
		tickets := make([]int64, k)
		var total int64
		for i := 0; i < k; i++ {
			tickets[i] = int64(1 + rng.Intn(8))
			total += tickets[i]
			if _, err := s.Add(string(rune('a'+i)), tickets[i]); err != nil {
				return false
			}
		}
		rounds := 400 * total
		counts := make(map[string]int64)
		for i := int64(0); i < rounds; i++ {
			counts[s.Next().Name()]++
		}
		// Relative error of each task's share must be below 1%.
		for i := 0; i < k; i++ {
			want := float64(rounds) * float64(tickets[i]) / float64(total)
			got := float64(counts[string(rune('a'+i))])
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.01*want+float64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekMatchesNext(t *testing.T) {
	s, err := RoundRobin("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		want := s.Peek()
		if got := s.Next(); got != want {
			t.Fatalf("dispatch %d: Peek %q != Next %q", i, want.Name(), got.Name())
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two identical schedulers must produce identical sequences.
	mk := func() *Scheduler {
		s := New()
		for _, n := range []string{"x", "y", "z"} {
			if _, err := s.Add(n, 3); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Next().Name() != b.Next().Name() {
			t.Fatal("schedulers diverged")
		}
	}
}

func BenchmarkNext(b *testing.B) {
	s := New()
	for i := 0; i < 16; i++ {
		if _, err := s.Add(string(rune('a'+i)), int64(1+i%4)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
