package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConstants(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d, want 1000", Nanosecond)
	}
	if Second != 1_000_000_000_000 {
		t.Fatalf("Second = %d, want 1e12", Second)
	}
	if Minute != 60*Second || Hour != 3600*Second {
		t.Fatalf("minute/hour constants wrong: %d %d", Minute, Hour)
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in      Time
		seconds float64
	}{
		{0, 0},
		{Second, 1},
		{500 * Millisecond, 0.5},
		{Microsecond, 1e-6},
		{270 * Millisecond, 0.27},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.seconds {
			t.Errorf("(%d).Seconds() = %g, want %g", c.in, got, c.seconds)
		}
	}
	if got := (14800 * Nanosecond).Microseconds(); got != 14.8 {
		t.Errorf("Microseconds = %g, want 14.8", got)
	}
	if got := (270 * Millisecond).Milliseconds(); got != 270 {
		t.Errorf("Milliseconds = %g, want 270", got)
	}
	if got := (5 * Nanosecond).Nanoseconds(); got != 5 {
		t.Errorf("Nanoseconds = %g, want 5", got)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := 37 * time.Millisecond
	tt := FromDuration(d)
	if tt != 37*Millisecond {
		t.Fatalf("FromDuration = %v, want 37ms", tt)
	}
	if tt.Duration() != d {
		t.Fatalf("Duration round trip = %v, want %v", tt.Duration(), d)
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(0.27); got != 270*Millisecond {
		t.Fatalf("FromSeconds(0.27) = %d, want %d", got, 270*Millisecond)
	}
	if got := FromSeconds(2.7e-6); got != 2700*Nanosecond {
		t.Fatalf("FromSeconds(2.7e-6) = %d, want %d", got, 2700*Nanosecond)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1, "1ps"},
		{1500, "1.5ns"},
		{14800 * Nanosecond, "14.8µs"},
		{270 * Millisecond, "270ms"},
		{2 * Second, "2s"},
		{-3 * Millisecond, "-3ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"30ms", 30 * Millisecond},
		{"2.7us", 2700 * Nanosecond},
		{"2.7µs", 2700 * Nanosecond},
		{"1s", Second},
		{" 100 ns", 100 * Nanosecond},
		{"0.001s", Millisecond},
		{"5ps", 5},
		{"2m", 2 * Minute},
		{"1h", Hour},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseTimeErrors(t *testing.T) {
	for _, in := range []string{"", "10", "abcms", "10 parsecs"} {
		if _, err := ParseTime(in); err == nil {
			t.Errorf("ParseTime(%q) succeeded, want error", in)
		}
	}
}

func TestParseTimeStringRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		v := Time(raw % int64(Hour))
		if v < 0 {
			v = -v
		}
		got, err := ParseTime(v.String())
		if err != nil {
			return false
		}
		// String keeps 6 significant decimals of the chosen unit, so allow
		// relative error of 1e-6.
		diff := float64(got - v)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*float64(v)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{10 * Mbps, "10Mbit/s"},
		{Gbps, "1Gbit/s"},
		{64 * Kbps, "64kbit/s"},
		{300, "300bit/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBitRate(t *testing.T) {
	cases := []struct {
		in   string
		want BitRate
	}{
		{"10Mbps", 10 * Mbps},
		{"10Mbit/s", 10 * Mbps},
		{"1Gbit/s", Gbps},
		{"9600bps", 9600},
		{"0.5Mbps", 500 * Kbps},
	}
	for _, c := range cases {
		got, err := ParseBitRate(c.in)
		if err != nil {
			t.Errorf("ParseBitRate(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBitRate(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", "10", "xMbps"} {
		if _, err := ParseBitRate(in); err == nil {
			t.Errorf("ParseBitRate(%q) succeeded, want error", in)
		}
	}
}

func TestTxTime(t *testing.T) {
	// 12304 bits at 10 Mbit/s = 1230.4 µs.
	got := TxTime(12304, 10*Mbps)
	want := Time(12304) * Second / (10 * 1000 * 1000)
	if got != want {
		t.Fatalf("TxTime = %d, want %d", got, want)
	}
	if got.Microseconds() != 1230.4 {
		t.Fatalf("TxTime = %v µs, want 1230.4", got.Microseconds())
	}
	// 1 bit at 1 Gbit/s = 1 ns exactly.
	if got := TxTime(1, Gbps); got != Nanosecond {
		t.Fatalf("TxTime(1, 1Gbps) = %d, want %d", got, Nanosecond)
	}
	// Rounds up: 1 bit at 3 bit/s is 333333333334 ps, not ...33.
	if got := TxTime(1, 3); got != Time(333333333334) {
		t.Fatalf("TxTime(1,3) = %d", got)
	}
	if got := TxTime(0, Gbps); got != 0 {
		t.Fatalf("TxTime(0) = %d, want 0", got)
	}
}

func TestTxTimePanics(t *testing.T) {
	assertPanics(t, func() { TxTime(-1, Gbps) })
	assertPanics(t, func() { TxTime(1, 0) })
	assertPanics(t, func() { TxTime(1, -5) })
}

func TestTxTimeNeverOptimistic(t *testing.T) {
	f := func(bitsRaw, rateRaw int64) bool {
		bits := bitsRaw % 1_000_000_000
		if bits < 0 {
			bits = -bits
		}
		rate := BitRate(rateRaw % int64(100*Gbps))
		if rate <= 0 {
			rate = 10 * Mbps
		}
		got := TxTime(bits, rate)
		exact := float64(bits) * float64(Second) / float64(rate)
		// got must be >= exact (pessimistic) and within 1 ps of it.
		return float64(got) >= exact-0.5 && float64(got)-exact < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {11840, 11840, 1}, {11841, 11840, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	assertPanics(t, func() { CeilDiv(-1, 5) })
	assertPanics(t, func() { CeilDiv(1, 0) })
}

func TestCeilDivTime(t *testing.T) {
	if got := CeilDivTime(270*Millisecond, 270*Millisecond); got != 1 {
		t.Fatalf("CeilDivTime = %d, want 1", got)
	}
	if got := CeilDivTime(271*Millisecond, 270*Millisecond); got != 2 {
		t.Fatalf("CeilDivTime = %d, want 2", got)
	}
}

func TestMulDivCeil(t *testing.T) {
	if got := MulDivCeil(10, 10, 3); got != 34 {
		t.Fatalf("MulDivCeil(10,10,3) = %d, want 34", got)
	}
	// Large values that would overflow int64 multiplication.
	if got := MulDivCeil(math.MaxInt64/2, 2, math.MaxInt64); got != 1 {
		t.Fatalf("MulDivCeil large = %d, want 1", got)
	}
	assertPanics(t, func() { MulDivCeil(-1, 1, 1) })
	assertPanics(t, func() { MulDivCeil(math.MaxInt64, math.MaxInt64, 1) })
}

func TestMulDivCeilMatchesBigArithmetic(t *testing.T) {
	f := func(a, m uint32, d uint32) bool {
		aa, mm := int64(a%(1<<31)), int64(m%(1<<31))
		dd := int64(d%1000) + 1
		got := MulDivCeil(aa, mm, dd)
		prod := aa * mm // fits: 31-bit × 31-bit
		want := (prod + dd - 1) / dd
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSaturatingAdd(t *testing.T) {
	if got := SaturatingAdd(1, 2); got != 3 {
		t.Fatalf("SaturatingAdd(1,2) = %d", got)
	}
	if got := SaturatingAdd(MaxTime-1, 5); got != MaxTime {
		t.Fatalf("SaturatingAdd near max = %d, want MaxTime", got)
	}
	if got := SaturatingAdd(MaxTime, MaxTime); got != MaxTime {
		t.Fatalf("SaturatingAdd(max,max) = %d, want MaxTime", got)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}
