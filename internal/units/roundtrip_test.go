package units

import (
	"testing"
	"testing/quick"
)

// TestBitRateStringParseRoundTrip: String output always parses back to a
// close value.
func TestBitRateStringParseRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		v := BitRate(raw % int64(100*Gbps))
		if v <= 0 {
			v = -v + 1
		}
		got, err := ParseBitRate(v.String())
		if err != nil {
			return false
		}
		diff := float64(got - v)
		if diff < 0 {
			diff = -diff
		}
		// String keeps 6 decimals of the chosen unit.
		return diff <= 1e-6*float64(v)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTxTimeAdditive: transmitting a+b bits takes within 1 ps of the sum
// of the parts (ceil rounding may add at most one picosecond per part).
func TestTxTimeAdditive(t *testing.T) {
	f := func(aRaw, bRaw uint32, rRaw int64) bool {
		a, b := int64(aRaw%1_000_000), int64(bRaw%1_000_000)
		r := BitRate(rRaw % int64(10*Gbps))
		if r <= 0 {
			r = 10 * Mbps
		}
		whole := TxTime(a+b, r)
		parts := TxTime(a, r) + TxTime(b, r)
		return parts >= whole && parts-whole <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSaturatingAddCommutes on representative values.
func TestSaturatingAddCommutes(t *testing.T) {
	f := func(aRaw, bRaw int64) bool {
		a, b := Time(aRaw), Time(bRaw)
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		return SaturatingAdd(a, b) == SaturatingAdd(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
