// Package units provides the fixed-point time and bit-rate arithmetic used
// throughout gmfnet.
//
// All durations are held as int64 picoseconds and all divisions that
// produce a duration round up, so response-time bounds computed from these
// primitives can only err on the pessimistic (safe) side. One picosecond of
// resolution represents a single bit time on a 1 Tbit/s link; int64
// picoseconds cover about 106 days, far beyond any busy period analysed
// here.
package units

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"time"
)

// Time is a duration or instant measured in picoseconds.
type Time int64

// Duration unit constants.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable Time.
const MaxTime = Time(math.MaxInt64)

// Seconds returns the duration as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns the duration as a floating-point number of
// nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Duration converts t to a time.Duration, rounding toward zero.
// Durations beyond the range of time.Duration saturate.
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// FromDuration converts a time.Duration to a Time.
func FromDuration(d time.Duration) Time { return Time(d) * Nanosecond }

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest picosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// String renders the duration with an adaptive unit, e.g. "14.8µs",
// "270ms", "1.2s".
func (t Time) String() string {
	neg := t < 0
	a := t
	if neg {
		a = -a
	}
	var val float64
	var unit string
	switch {
	case a == 0:
		return "0s"
	case a < Nanosecond:
		val, unit = float64(a), "ps"
	case a < Microsecond:
		val, unit = a.Nanoseconds(), "ns"
	case a < Millisecond:
		val, unit = a.Microseconds(), "µs"
	case a < Second:
		val, unit = a.Milliseconds(), "ms"
	default:
		val, unit = a.Seconds(), "s"
	}
	s := strconv.FormatFloat(val, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if neg {
		s = "-" + s
	}
	return s + unit
}

// ParseTime parses a human-readable duration such as "30ms", "2.7us",
// "1.5e-3s". Recognised suffixes: ps, ns, us, µs, ms, s, m, h.
func ParseTime(s string) (Time, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty duration")
	}
	type suf struct {
		text string
		mult Time
	}
	// Longest suffixes first so "ms" is not matched as "s".
	suffixes := []suf{
		{"ps", Picosecond}, {"ns", Nanosecond}, {"µs", Microsecond},
		{"us", Microsecond}, {"ms", Millisecond}, {"s", Second},
		{"m", Minute}, {"h", Hour},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.text) {
			num := strings.TrimSpace(strings.TrimSuffix(s, sf.text))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad duration %q: %v", s, err)
			}
			return Time(math.Round(v * float64(sf.mult))), nil
		}
	}
	return 0, fmt.Errorf("units: duration %q lacks a unit suffix", s)
}

// BitRate is a link speed in bits per second.
type BitRate int64

// Bit-rate unit constants.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
)

// String renders the rate with an adaptive unit, e.g. "10Mbit/s".
func (r BitRate) String() string {
	a := r
	neg := a < 0
	if neg {
		a = -a
	}
	var val float64
	var unit string
	switch {
	case a >= Gbps:
		val, unit = float64(a)/float64(Gbps), "Gbit/s"
	case a >= Mbps:
		val, unit = float64(a)/float64(Mbps), "Mbit/s"
	case a >= Kbps:
		val, unit = float64(a)/float64(Kbps), "kbit/s"
	default:
		val, unit = float64(a), "bit/s"
	}
	s := strconv.FormatFloat(val, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if neg {
		s = "-" + s
	}
	return s + unit
}

// ParseBitRate parses a human-readable rate such as "10Mbps", "1Gbit/s",
// "9600bps".
func ParseBitRate(s string) (BitRate, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty bit rate")
	}
	type suf struct {
		text string
		mult BitRate
	}
	suffixes := []suf{
		{"Gbit/s", Gbps}, {"Mbit/s", Mbps}, {"kbit/s", Kbps}, {"bit/s", BitPerSecond},
		{"Gbps", Gbps}, {"Mbps", Mbps}, {"Kbps", Kbps}, {"kbps", Kbps},
		{"bps", BitPerSecond},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.text) {
			num := strings.TrimSpace(strings.TrimSuffix(s, sf.text))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad bit rate %q: %v", s, err)
			}
			return BitRate(math.Round(v * float64(sf.mult))), nil
		}
	}
	return 0, fmt.Errorf("units: bit rate %q lacks a unit suffix", s)
}

// TxTime returns the time needed to transmit the given number of bits at
// rate r, rounded up to the next picosecond. It panics if bits or r is not
// positive, because a zero-rate link or negative frame cannot occur in a
// validated model.
func TxTime(bits int64, r BitRate) Time {
	if bits < 0 {
		panic("units: negative bit count")
	}
	if r <= 0 {
		panic("units: non-positive bit rate")
	}
	return Time(mulDivCeil(uint64(bits), uint64(Second), uint64(r)))
}

// CeilDiv returns ceil(a/b) for non-negative a and positive b.
func CeilDiv(a, b int64) int64 {
	if a < 0 || b <= 0 {
		panic("units: CeilDiv requires a >= 0, b > 0")
	}
	return (a + b - 1) / b
}

// CeilDivTime returns ceil(a/b) for non-negative Times.
func CeilDivTime(a, b Time) int64 { return CeilDiv(int64(a), int64(b)) }

// mulDivCeil computes ceil(a*m/d) using 128-bit intermediate arithmetic.
// It panics if the result overflows 63 bits, which in this codebase means a
// model parameter is out of any physically meaningful range.
func mulDivCeil(a, m, d uint64) int64 {
	hi, lo := bits.Mul64(a, m)
	if hi >= d {
		panic("units: mulDivCeil overflow")
	}
	q, rem := bits.Div64(hi, lo, d)
	if rem > 0 {
		q++
	}
	if q > math.MaxInt64 {
		panic("units: mulDivCeil overflow")
	}
	return int64(q)
}

// MulDivCeil computes ceil(a*m/d) for non-negative arguments with positive
// divisor, without intermediate overflow.
func MulDivCeil(a, m, d int64) int64 {
	if a < 0 || m < 0 || d <= 0 {
		panic("units: MulDivCeil requires a,m >= 0, d > 0")
	}
	return mulDivCeil(uint64(a), uint64(m), uint64(d))
}

// SaturatingAdd returns a+b, saturating at MaxTime instead of wrapping.
func SaturatingAdd(a, b Time) Time {
	if a > MaxTime-b {
		return MaxTime
	}
	return a + b
}
