// Package sporadic implements the baseline the paper argues against for
// MPEG-like traffic: holistic analysis under the classic sporadic model.
//
// Each GMF flow is collapsed to a single-frame flow with the smallest
// separation, smallest deadline, largest payload and largest jitter of any
// of its frames — the only sound sporadic abstraction of a GMF flow. The
// collapsed network is then analysed by the same engine (package core), so
// any difference in verdicts isolates the traffic model, not the
// implementation. The paper's motivation for adopting the generalized
// multiframe model is exactly that this collapse is very pessimistic for
// variable-bit-rate video.
package sporadic

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// CollapseNetwork returns a copy of the network in which every flow is
// replaced by its sporadic collapse (same route, priority and framing).
func CollapseNetwork(nw *network.Network) (*network.Network, error) {
	if nw == nil {
		return nil, fmt.Errorf("sporadic: nil network")
	}
	out := network.New(nw.Topo)
	for _, fs := range nw.Flows() {
		collapsed := &network.FlowSpec{
			Flow:     fs.Flow.Sporadic(),
			Route:    fs.Route,
			Priority: fs.Priority,
			RTP:      fs.RTP,
		}
		if _, err := out.AddFlow(collapsed); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Analyze runs the holistic analysis on the sporadic collapse of the
// network. The result's flow names carry a "/sporadic" suffix.
func Analyze(nw *network.Network, cfg core.Config) (*core.Result, error) {
	collapsed, err := CollapseNetwork(nw)
	if err != nil {
		return nil, err
	}
	an, err := core.NewAnalyzer(collapsed, cfg)
	if err != nil {
		return nil, err
	}
	return an.Analyze()
}

// Comparison pairs the GMF and sporadic verdicts for one network.
type Comparison struct {
	// GMF is the verdict under the generalized multiframe analysis.
	GMF *core.Result
	// Sporadic is the verdict under the sporadic collapse.
	Sporadic *core.Result
}

// Compare analyses the network under both models.
func Compare(nw *network.Network, cfg core.Config) (*Comparison, error) {
	an, err := core.NewAnalyzer(nw, cfg)
	if err != nil {
		return nil, err
	}
	gmfRes, err := an.Analyze()
	if err != nil {
		return nil, err
	}
	spoRes, err := Analyze(nw, cfg)
	if err != nil {
		return nil, err
	}
	return &Comparison{GMF: gmfRes, Sporadic: spoRes}, nil
}

// GMFOnlyAdmitted reports whether the GMF analysis admits the network
// while the sporadic collapse rejects it — the regime where the paper's
// model pays off.
func (c *Comparison) GMFOnlyAdmitted() bool {
	return c.GMF.Schedulable() && !c.Sporadic.Schedulable()
}
