package sporadic

import (
	"strings"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

const ms = units.Millisecond

func figure1Net(t *testing.T, rate units.BitRate, flows ...*network.FlowSpec) *network.Network {
	t.Helper()
	topo := network.MustFigure1(network.Figure1Options{Rate: rate})
	nw := network.New(topo)
	for _, fs := range flows {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestCollapseNetwork(t *testing.T) {
	mpeg := trace.MPEGIBBPBBPBB("v", trace.MPEGOptions{})
	nw := figure1Net(t, 100*units.Mbps, &network.FlowSpec{
		Flow: mpeg, Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 2, RTP: true,
	})
	col, err := CollapseNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumFlows() != 1 {
		t.Fatalf("flows = %d", col.NumFlows())
	}
	fs := col.Flow(0)
	if fs.Flow.N() != 1 {
		t.Fatalf("collapsed N = %d, want 1", fs.Flow.N())
	}
	if !strings.HasSuffix(fs.Flow.Name, "/sporadic") {
		t.Fatalf("name = %q", fs.Flow.Name)
	}
	if fs.Priority != 2 || !fs.RTP {
		t.Fatal("spec fields not preserved")
	}
	// The collapse pairs the biggest payload with the smallest separation.
	if fs.Flow.Frames[0].PayloadBits != mpeg.MaxPayloadBits() {
		t.Fatal("payload not maximal")
	}
	if fs.Flow.Frames[0].MinSep != mpeg.MinSeparation() {
		t.Fatal("separation not minimal")
	}
}

func TestCollapseNilNetwork(t *testing.T) {
	if _, err := CollapseNetwork(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Analyze(nil, core.Config{}); err == nil {
		t.Fatal("nil accepted by Analyze")
	}
}

func TestSporadicIsMorePessimistic(t *testing.T) {
	// The sporadic collapse must never produce a smaller bound than the
	// GMF analysis for the first (largest) frame, and its utilisation can
	// render feasible networks infeasible.
	mpeg := trace.MPEGIBBPBBPBB("v", trace.MPEGOptions{})
	nw := figure1Net(t, 100*units.Mbps,
		&network.FlowSpec{Flow: mpeg, Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 2},
		&network.FlowSpec{Flow: trace.VoIP("voip", trace.VoIPOptions{Deadline: 50 * ms}), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 3},
	)
	cmp, err := Compare(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.GMF.Converged {
		t.Fatal("GMF analysis did not converge")
	}
	if cmp.Sporadic.Converged {
		// When both converge, the sporadic bound on the video flow must
		// dominate the GMF bound of its worst frame.
		gmfWorst := cmp.GMF.Flow(0).MaxResponse()
		spoWorst := cmp.Sporadic.Flow(0).MaxResponse()
		if spoWorst < gmfWorst {
			t.Fatalf("sporadic bound %v below GMF %v", spoWorst, gmfWorst)
		}
	}
}

// TestGMFAdmitsWhereSporadicRejects reproduces the paper's motivation: a
// VBR video workload feasible under GMF analysis but rejected when
// collapsed to sporadic (min separation with max payload explodes
// utilisation).
func TestGMFAdmitsWhereSporadicRejects(t *testing.T) {
	// One big frame then nine small ones: GMF utilisation is ~10%, but
	// the sporadic collapse assumes the big frame (~10 ms of wire time at
	// 100 Mbit/s) every 10 ms — ~100% per flow, so two flows overload.
	mk := func(name string) *gmf.Flow {
		f := &gmf.Flow{Name: name}
		f.Frames = append(f.Frames, gmf.Frame{
			MinSep: 10 * ms, Deadline: 150 * ms, PayloadBits: 120000 * 8,
		})
		for i := 0; i < 9; i++ {
			f.Frames = append(f.Frames, gmf.Frame{
				MinSep: 10 * ms, Deadline: 150 * ms, PayloadBits: 400 * 8,
			})
		}
		return f
	}
	nw := figure1Net(t, 100*units.Mbps,
		&network.FlowSpec{Flow: mk("vbr0"), Route: []network.NodeID{"0", "4", "6", "3"}, Priority: 1},
		&network.FlowSpec{Flow: mk("vbr1"), Route: []network.NodeID{"1", "4", "6", "3"}, Priority: 1},
	)
	cmp, err := Compare(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.GMF.Schedulable() {
		t.Fatalf("GMF rejected the workload (converged=%v)", cmp.GMF.Converged)
	}
	if cmp.Sporadic.Schedulable() {
		t.Fatal("sporadic collapse unexpectedly admitted the workload")
	}
	if !cmp.GMFOnlyAdmitted() {
		t.Fatal("GMFOnlyAdmitted should be true")
	}
}
