// Package profiling is the shared pprof plumbing of the gmfnet command
// line tools: one Session per run, started from the -cpuprofile,
// -memprofile, -mutexprofile and -blockprofile flags and stopped on the
// way out. The mutex and block profiles are the contention instruments
// — they attribute lock hold-ups (sync.Mutex wait time) and scheduler
// blocking (channel waits, Wait calls) to stacks, which is how the
// dispatch-path lock split was found and is how a regression of it
// would be found again (see README "Finding the contention").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the profile state of one run. The zero value is inert;
// use Start.
type Session struct {
	cpu               *os.File
	mem, mutex, block string
}

// Start opens the requested pprof outputs, starts CPU profiling and
// arms the mutex/block samplers; any path may be empty. Mutex events
// are sampled at fraction 1 and block events at rate 1 (every event):
// profiling runs are explicit diagnostics, so fidelity beats overhead.
func Start(cpu, mem, mutex, block string) (*Session, error) {
	s := &Session{mem: mem, mutex: mutex, block: block}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		s.cpu = f
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return s, nil
}

// Stop finishes the CPU profile, writes the heap, mutex and block
// profiles, and disarms the samplers. It returns the first error.
func (s *Session) Stop() error {
	var firstErr error
	keep := func(flag string, err error) {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", flag, err)
		}
	}
	if s.cpu != nil {
		pprof.StopCPUProfile()
		keep("-cpuprofile", s.cpu.Close())
	}
	if s.mem != "" {
		runtime.GC() // settle the heap so the profile reflects live data
		keep("-memprofile", writeLookup("heap", s.mem))
	}
	if s.mutex != "" {
		keep("-mutexprofile", writeLookup("mutex", s.mutex))
		runtime.SetMutexProfileFraction(0)
	}
	if s.block != "" {
		keep("-blockprofile", writeLookup("block", s.block))
		runtime.SetBlockProfileRate(0)
	}
	return firstErr
}

// writeLookup dumps the named runtime profile to path in pprof format.
func writeLookup(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("runtime profile %q not found", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = p.WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
