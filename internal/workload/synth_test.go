package workload

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func synthBytes(t *testing.T, spec TopoSpec, cfg Config) []byte {
	t.Helper()
	h, ops, err := Synthesize(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, ops); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSynthesizeDeterministic pins satellite 3: the same seed and config
// produce the byte-identical JSON-lines trace, including when the
// scheduler parallelism changes underneath.
func TestSynthesizeDeterministic(t *testing.T) {
	spec := TopoSpec{Kind: "clos", Switches: 6, Hosts: 4, Fanout: 2}
	cfg := Config{Seed: 42, Requests: 2000, Hold: 64, Diurnal: 0.5,
		Flash: 2, Tenants: 3, TenantChurn: 0.002}

	prev := runtime.GOMAXPROCS(1)
	one := synthBytes(t, spec, cfg)
	runtime.GOMAXPROCS(runtime.NumCPU())
	many := synthBytes(t, spec, cfg)
	runtime.GOMAXPROCS(prev)

	if !bytes.Equal(one, many) {
		t.Fatal("trace bytes differ between GOMAXPROCS=1 and GOMAXPROCS=NumCPU")
	}
	if other := synthBytes(t, spec, Config{Seed: 43, Requests: 2000, Hold: 64,
		Diurnal: 0.5, Flash: 2, Tenants: 3, TenantChurn: 0.002}); bytes.Equal(one, other) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSynthesizeStream checks the structural invariants of a synthesized
// trace: every del names a previously added, still-live flow; the add
// count is exactly cfg.Requests; the live population stays bounded near
// Hold rather than growing with the trace.
func TestSynthesizeStream(t *testing.T) {
	cfg := Config{Seed: 1, Requests: 10000, Hold: 100, Flash: 3, Tenants: 4, TenantChurn: 0.001}
	spec := TopoSpec{Kind: "backbone", Switches: 3, Fanout: 4, Hosts: 4}
	h, ops, err := Synthesize(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Topo != spec {
		t.Fatalf("header topo %+v, want %+v", h.Topo, spec)
	}
	live := make(map[string]bool)
	adds, dels, peak := 0, 0, 0
	for _, op := range ops {
		switch op.Op {
		case "add":
			adds++
			if live[op.Name] {
				t.Fatalf("duplicate live add %q", op.Name)
			}
			if op.Src == op.Dst || op.Src == "" || op.Dst == "" {
				t.Fatalf("add %q endpoints %q -> %q", op.Name, op.Src, op.Dst)
			}
			if !strings.HasPrefix(op.Name, "t") {
				t.Fatalf("tenanted trace has untenanted name %q", op.Name)
			}
			live[op.Name] = true
			if len(live) > peak {
				peak = len(live)
			}
		case "del":
			dels++
			if !live[op.Name] {
				t.Fatalf("del of dead or unknown flow %q", op.Name)
			}
			delete(live, op.Name)
		default:
			t.Fatalf("op %q", op.Op)
		}
	}
	if adds != cfg.Requests {
		t.Fatalf("adds = %d, want %d", adds, cfg.Requests)
	}
	if dels == 0 {
		t.Fatal("no departures in a 10k-request trace")
	}
	// Open-loop equilibrium: the peak population tracks Hold, not the
	// trace length (tenant churn and flashes only pull it down).
	if peak > 8*cfg.Hold {
		t.Fatalf("peak population %d for hold %d — population unbounded?", peak, cfg.Hold)
	}
}

// TestSynthesizeLocality checks that the Local knob concentrates
// endpoints inside one locality group and that tenants never leave
// their footprint.
func TestSynthesizeLocality(t *testing.T) {
	spec := TopoSpec{Kind: "fronthaul", Switches: 2, Fanout: 3, Hosts: 4}
	_, ops, err := Synthesize(spec, Config{Seed: 5, Requests: 4000, Local: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	localAdds, adds := 0, 0
	for _, op := range ops {
		if op.Op != "add" {
			continue
		}
		adds++
		// Fronthaul RU names are "ru<h>_<c>_<r>"; group = hub+cell.
		sg := op.Src[:strings.LastIndex(op.Src, "_")]
		dg := op.Dst[:strings.LastIndex(op.Dst, "_")]
		if sg == dg {
			localAdds++
		}
	}
	if frac := float64(localAdds) / float64(adds); frac < 0.8 || frac > 0.99 {
		t.Fatalf("local fraction %.3f, want ~0.9", frac)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	good := TopoSpec{Kind: "clos", Switches: 4, Hosts: 2, Fanout: 1}
	for _, tc := range []struct {
		name string
		spec TopoSpec
		cfg  Config
	}{
		{"no requests", good, Config{Seed: 1}},
		{"bad topo", TopoSpec{Kind: "nope", Switches: 1, Hosts: 2}, Config{Seed: 1, Requests: 10}},
		{"heavy out of range", good, Config{Seed: 1, Requests: 10, Heavy: 1.5}},
		{"negative hold", good, Config{Seed: 1, Requests: 10, Hold: -1}},
		{"too many tenants", good, Config{Seed: 1, Requests: 10, Tenants: 9}},
		{"single host", TopoSpec{Kind: "clos", Switches: 1, Hosts: 1, Fanout: 1}, Config{Seed: 1, Requests: 10}},
	} {
		if _, _, err := Synthesize(tc.spec, tc.cfg); err == nil {
			t.Errorf("%s: Synthesize succeeded", tc.name)
		}
	}
	// One-host groups still work when multiple groups exist: locality
	// degrades to cross-group traffic instead of failing.
	if _, ops, err := Synthesize(TopoSpec{Kind: "clos", Switches: 3, Hosts: 1, Fanout: 1},
		Config{Seed: 1, Requests: 50}); err != nil {
		t.Fatal(err)
	} else {
		for _, op := range ops {
			if op.Op == "add" && op.Src == op.Dst {
				t.Fatalf("degenerate self-flow %+v", op)
			}
		}
	}
}
