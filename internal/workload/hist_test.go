package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistIndexUpperInverse(t *testing.T) {
	// Every bucket's upper bound maps back to that bucket, and the next
	// value up maps to the next bucket: the bucketing is a partition.
	for i := 0; i < histBuckets; i++ {
		u := histUpper(i)
		if got := histIndex(u); got != i {
			t.Fatalf("histIndex(histUpper(%d)) = %d", i, got)
		}
		if u < 1<<62 { // next value exists and stays in range
			if got := histIndex(u + 1); got != i+1 {
				t.Fatalf("histIndex(%d) = %d, want %d", u+1, got, i+1)
			}
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Quantiles of a log-uniform sample must land within one bucket
	// (≤1/32 relative) above the exact order statistic.
	r := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(1) << uint(r.Intn(30))
		v += uint64(r.Int63n(int64(v)))
		samples = append(samples, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(samples))+0.5) - 1
		exact := samples[rank]
		got := uint64(h.Quantile(q))
		if got < exact {
			t.Fatalf("q%g = %d under exact %d", q, got, exact)
		}
		if float64(got-exact) > float64(exact)/32+1 {
			t.Fatalf("q%g = %d overshoots exact %d by more than 1/32", q, got, exact)
		}
	}
	if h.Quantile(1) != time.Duration(samples[len(samples)-1]) {
		t.Fatalf("Quantile(1) = %v, want exact max %d", h.Quantile(1), samples[len(samples)-1])
	}
	if h.Count() != 20000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(-time.Second) // clock step
	h.Record(0)
	h.Record(time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("median of {0,0,1} = %v", h.Quantile(0.5))
	}
	if h.Max() != time.Nanosecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * 37)
	}
}
