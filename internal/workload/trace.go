package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// The request-trace format is one JSON object per line: a Header naming
// the generated topology, then add/del operations in stream order. A
// recorded trace replays deterministically — admit/reject decisions
// depend only on the operations, not on timing or RNG state — so the
// same trace through the sequential, parallel-worklist, batched,
// sharded and scheduled controllers must produce byte-identical
// decision logs (gmfnet-admit's golden tests pin that).

// Header is the first line of a trace file.
type Header struct {
	Topo TopoSpec `json:"topo"`
}

// Op is one recorded operation. Traces on disk only ever carry "add"
// and "del"; the gmfnet-admitd wire protocol (internal/admitd) reuses
// the same schema with additional op kinds ("batch", "sub", "unsub",
// "stats"), a correlation ID, and member operations for batches — all
// omitempty, so trace files are byte-unchanged.
type Op struct {
	Op   string `json:"op"` // "add" or "del"; wire ops add "batch", "sub", "unsub", "stats"
	Name string `json:"name"`

	// ID correlates a wire request with its verdicts; unused in traces.
	ID int64 `json:"id,omitempty"`
	// Flows holds the member "add" operations of a wire "batch" op.
	Flows []Op `json:"flows,omitempty"`

	// Request parameters, set for "add". Times are picoseconds
	// (units.Time), so recording is lossless.
	Kind       string `json:"kind,omitempty"` // "voip" or "cbr"
	Src        string `json:"src,omitempty"`
	Dst        string `json:"dst,omitempty"`
	Prio       int    `json:"prio,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`       // cbr frame payload
	PeriodPS   int64  `json:"period_ps,omitempty"`   // cbr period
	DeadlinePS int64  `json:"deadline_ps,omitempty"` // end-to-end deadline
	RTP        bool   `json:"rtp,omitempty"`
}

// Spec rebuilds the flow spec of an "add" operation on the given
// topology.
func (op *Op) Spec(topo *network.Topology) (*network.FlowSpec, error) {
	route, err := topo.Route(network.NodeID(op.Src), network.NodeID(op.Dst))
	if err != nil {
		return nil, fmt.Errorf("trace op %q: %w", op.Name, err)
	}
	fs := &network.FlowSpec{Route: route, Priority: network.Priority(op.Prio)}
	switch op.Kind {
	case "voip":
		fs.Flow = trace.VoIP(op.Name, trace.VoIPOptions{Deadline: units.Time(op.DeadlinePS)})
		fs.RTP = op.RTP
	case "cbr":
		fs.Flow = trace.CBRVideo(op.Name, op.Bytes,
			units.Time(op.PeriodPS), units.Time(op.DeadlinePS))
		fs.RTP = op.RTP
	default:
		return nil, fmt.Errorf("trace op %q: unknown kind %q", op.Name, op.Kind)
	}
	return fs, nil
}

// CaptureAdd records a flow spec as an "add" trace operation. Stream
// generators draw single-frame VoIP (RTP) or CBR video flows; VoIP is
// recognised by its G.711 payload and recorded by kind, everything else
// by its exact CBR parameters.
func CaptureAdd(fs *network.FlowSpec) Op {
	op := Op{
		Op:   "add",
		Name: fs.Flow.Name,
		Src:  string(fs.Route[0]),
		Dst:  string(fs.Route[len(fs.Route)-1]),
		Prio: int(fs.Priority),
		RTP:  fs.RTP,
	}
	fr := fs.Flow.Frames[0]
	if fs.RTP && fr.PayloadBits == 160*8 {
		op.Kind = "voip"
		op.DeadlinePS = int64(fr.Deadline)
		return op
	}
	op.Kind = "cbr"
	op.Bytes = fr.PayloadBits / 8
	op.PeriodPS = int64(fr.MinSep)
	op.DeadlinePS = int64(fr.Deadline)
	return op
}

// Recorder streams a header plus operations to a file.
type Recorder struct {
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
}

// NewRecorder creates the trace file and writes its header.
func NewRecorder(path string, h Header) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	r := &Recorder{f: f, w: w, enc: json.NewEncoder(w)}
	if err := r.enc.Encode(h); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Record appends one operation. A nil Recorder discards silently, so
// callers can thread an optional recorder without branching.
func (r *Recorder) Record(op Op) error {
	if r == nil {
		return nil
	}
	return r.enc.Encode(op)
}

// Close flushes and closes the trace file. It is idempotent so that the
// success path can surface the flush error while a deferred call still
// cleans up on early returns.
func (r *Recorder) Close() error {
	if r == nil || r.f == nil {
		return nil
	}
	ferr := r.w.Flush()
	cerr := r.f.Close()
	r.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// WriteTrace writes a whole synthesized trace (header + ops) to w.
func WriteTrace(w io.Writer, h Header, ops []Op) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return err
	}
	for i := range ops {
		if err := enc.Encode(&ops[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace stream into its header and operation list.
func ReadTrace(r io.Reader) (Header, []Op, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if err := h.Topo.validate(); err != nil {
		return Header{}, nil, fmt.Errorf("trace: %w", err)
	}
	var ops []Op
	for {
		var op Op
		if err := dec.Decode(&op); err == io.EOF {
			break
		} else if err != nil {
			return Header{}, nil, fmt.Errorf("trace: op %d: %w", len(ops), err)
		}
		if op.Op != "add" && op.Op != "del" {
			return Header{}, nil, fmt.Errorf("trace: op %d: unknown op %q", len(ops), op.Op)
		}
		ops = append(ops, op)
	}
	return h, ops, nil
}

// LoadTrace reads a trace file.
func LoadTrace(path string) (Header, []Op, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	h, ops, err := ReadTrace(f)
	if err != nil {
		return Header{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	return h, ops, nil
}
