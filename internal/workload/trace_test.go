package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestTraceRoundTrip(t *testing.T) {
	spec := TopoSpec{Kind: "backbone", Switches: 2, Fanout: 2, Hosts: 2}
	h, ops, err := Synthesize(spec, Config{Seed: 9, Requests: 300, Hold: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, ops); err != nil {
		t.Fatal(err)
	}
	h2, ops2, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header %+v, want %+v", h2, h)
	}
	if !reflect.DeepEqual(ops2, ops) {
		t.Fatal("ops changed across write/read round trip")
	}
	// And the re-serialisation is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, h2, ops2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace bytes changed across round trip")
	}
}

func TestRecorderMatchesWriteTrace(t *testing.T) {
	spec := TopoSpec{Switches: 3, Hosts: 3}
	h, ops, err := Synthesize(spec, Config{Seed: 2, Requests: 100, Hold: 16})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	rec, err := NewRecorder(path, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := rec.Record(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	h2, ops2, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h || !reflect.DeepEqual(ops2, ops) {
		t.Fatal("recorded trace differs from synthesized ops")
	}
	var nilRec *Recorder
	if err := nilRec.Record(Op{}); err != nil || nilRec.Close() != nil {
		t.Fatal("nil recorder not a no-op")
	}
}

func TestOpSpecRebuild(t *testing.T) {
	spec := TopoSpec{Kind: "clos", Switches: 2, Hosts: 2, Fanout: 1}
	topo, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, ops, err := Synthesize(spec, Config{Seed: 3, Requests: 200, Hold: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Op != "add" {
			continue
		}
		fs, err := op.Spec(topo)
		if err != nil {
			t.Fatal(err)
		}
		// CaptureAdd must invert Spec: replaying a re-captured op gives
		// the same wire record, so gmfnet-admit -record round-trips.
		if got := CaptureAdd(fs); !reflect.DeepEqual(got, op) {
			t.Fatalf("CaptureAdd(Spec(op)) = %+v, want %+v", got, op)
		}
	}
	bad := Op{Op: "add", Name: "x", Kind: "mpeg", Src: "h0_0", Dst: "h0_1"}
	if _, err := bad.Spec(topo); err == nil {
		t.Fatal("unknown kind accepted")
	}
	lost := Op{Op: "add", Name: "x", Kind: "voip", Src: "h0_0", Dst: "nope"}
	if _, err := lost.Spec(topo); err == nil {
		t.Fatal("unroutable endpoints accepted")
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	const goodHeader = "{\"topo\":{\"switches\":2,\"hosts\":2}}\n"
	for _, tc := range []struct {
		name, in, want string
	}{
		{"empty", "", "bad header"},
		{"truncated header", "{\"topo\":{\"switch", "bad header"},
		{"header is not json", "switches=2 hosts=2\n", "bad header"},
		{"unknown kind", "{\"topo\":{\"kind\":\"warp\",\"switches\":2,\"hosts\":2}}\n", "unknown topology kind"},
		{"missing topo sizes", "{\"topo\":{}}\n", "at least 1 switch"},
		{"campus one host", "{\"topo\":{\"switches\":2,\"hosts\":1}}\n", "at least 2 hosts"},
		{"backbone no fanout", "{\"topo\":{\"kind\":\"backbone\",\"switches\":2,\"hosts\":2}}\n", "fanout"},
		{"fronthaul no fanout", "{\"topo\":{\"kind\":\"fronthaul\",\"switches\":2,\"hosts\":2}}\n", "fanout"},
		{"clos no fanout", "{\"topo\":{\"kind\":\"clos\",\"switches\":2,\"hosts\":2}}\n", "fanout"},
		{"unknown op", goodHeader + "{\"op\":\"mod\",\"name\":\"f\"}\n", "unknown op"},
		// The wire-only op kinds (internal/admitd) must never appear in a
		// trace file.
		{"wire op batch", goodHeader + "{\"op\":\"batch\"}\n", "unknown op"},
		{"wire op sub", goodHeader + "{\"op\":\"sub\",\"name\":\"f\"}\n", "unknown op"},
		{"truncated op", goodHeader + "{\"op\":", "op 0"},
		{"garbage op line", goodHeader + "not json\n", "op 0"},
		{"bad op after good", goodHeader + "{\"op\":\"del\",\"name\":\"f\"}\n{\"op\":\"mod\"}\n", "op 1"},
	} {
		_, _, err := ReadTrace(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ReadTrace succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, _, err := LoadTrace(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Fatal("LoadTrace on a missing file succeeded")
	}
	// And a file that exists but fails to parse reports its path.
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := writeFile(path, "{\"topo\":{\"switches\":0,\"hosts\":0}}\n"); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadTrace(path)
	if err == nil {
		t.Fatal("LoadTrace on a malformed file succeeded")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the file", err)
	}
}

func TestTopoSpecBuildKinds(t *testing.T) {
	for _, tc := range []struct {
		spec  TopoSpec
		hosts int
	}{
		{TopoSpec{Switches: 2, Hosts: 3}, 6},
		{TopoSpec{Kind: "campus", Switches: 2, Hosts: 3}, 6},
		{TopoSpec{Kind: "backbone", Switches: 2, Fanout: 3, Hosts: 2}, 12},
		{TopoSpec{Kind: "fronthaul", Switches: 2, Fanout: 2, Hosts: 3}, 12},
		{TopoSpec{Kind: "clos", Switches: 4, Fanout: 2, Hosts: 2}, 8},
	} {
		_, hosts, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if len(hosts) != tc.hosts {
			t.Fatalf("%+v: %d hosts, want %d", tc.spec, len(hosts), tc.hosts)
		}
		if g := tc.spec.Groups() * tc.spec.Group(); g != tc.hosts {
			t.Fatalf("%+v: Groups*Group = %d, want %d", tc.spec, g, tc.hosts)
		}
	}
	if _, _, err := (TopoSpec{Kind: "torus", Switches: 2, Hosts: 2}).Build(); err == nil {
		t.Fatal("unknown kind built")
	}
}
