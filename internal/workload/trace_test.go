package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	spec := TopoSpec{Kind: "backbone", Switches: 2, Fanout: 2, Hosts: 2}
	h, ops, err := Synthesize(spec, Config{Seed: 9, Requests: 300, Hold: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, ops); err != nil {
		t.Fatal(err)
	}
	h2, ops2, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header %+v, want %+v", h2, h)
	}
	if !reflect.DeepEqual(ops2, ops) {
		t.Fatal("ops changed across write/read round trip")
	}
	// And the re-serialisation is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, h2, ops2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace bytes changed across round trip")
	}
}

func TestRecorderMatchesWriteTrace(t *testing.T) {
	spec := TopoSpec{Switches: 3, Hosts: 3}
	h, ops, err := Synthesize(spec, Config{Seed: 2, Requests: 100, Hold: 16})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	rec, err := NewRecorder(path, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := rec.Record(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	h2, ops2, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h || !reflect.DeepEqual(ops2, ops) {
		t.Fatal("recorded trace differs from synthesized ops")
	}
	var nilRec *Recorder
	if err := nilRec.Record(Op{}); err != nil || nilRec.Close() != nil {
		t.Fatal("nil recorder not a no-op")
	}
}

func TestOpSpecRebuild(t *testing.T) {
	spec := TopoSpec{Kind: "clos", Switches: 2, Hosts: 2, Fanout: 1}
	topo, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, ops, err := Synthesize(spec, Config{Seed: 3, Requests: 200, Hold: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Op != "add" {
			continue
		}
		fs, err := op.Spec(topo)
		if err != nil {
			t.Fatal(err)
		}
		// CaptureAdd must invert Spec: replaying a re-captured op gives
		// the same wire record, so gmfnet-admit -record round-trips.
		if got := CaptureAdd(fs); got != op {
			t.Fatalf("CaptureAdd(Spec(op)) = %+v, want %+v", got, op)
		}
	}
	bad := Op{Op: "add", Name: "x", Kind: "mpeg", Src: "h0_0", Dst: "h0_1"}
	if _, err := bad.Spec(topo); err == nil {
		t.Fatal("unknown kind accepted")
	}
	lost := Op{Op: "add", Name: "x", Kind: "voip", Src: "h0_0", Dst: "nope"}
	if _, err := lost.Spec(topo); err == nil {
		t.Fatal("unroutable endpoints accepted")
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "{\"topo\":{\"kind\":\"warp\",\"switches\":2,\"hosts\":2}}\n"},
		{"bad op", "{\"topo\":{\"switches\":2,\"hosts\":2}}\n{\"op\":\"mod\",\"name\":\"f\"}\n"},
		{"truncated json", "{\"topo\":{\"switches\":2,\"hosts\":2}}\n{\"op\":"},
	} {
		if _, _, err := ReadTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadTrace succeeded", tc.name)
		}
	}
}

func TestTopoSpecBuildKinds(t *testing.T) {
	for _, tc := range []struct {
		spec  TopoSpec
		hosts int
	}{
		{TopoSpec{Switches: 2, Hosts: 3}, 6},
		{TopoSpec{Kind: "campus", Switches: 2, Hosts: 3}, 6},
		{TopoSpec{Kind: "backbone", Switches: 2, Fanout: 3, Hosts: 2}, 12},
		{TopoSpec{Kind: "fronthaul", Switches: 2, Fanout: 2, Hosts: 3}, 12},
		{TopoSpec{Kind: "clos", Switches: 4, Fanout: 2, Hosts: 2}, 8},
	} {
		_, hosts, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if len(hosts) != tc.hosts {
			t.Fatalf("%+v: %d hosts, want %d", tc.spec, len(hosts), tc.hosts)
		}
		if g := tc.spec.Groups() * tc.spec.Group(); g != tc.hosts {
			t.Fatalf("%+v: Groups*Group = %d, want %d", tc.spec, g, tc.hosts)
		}
	}
	if _, _, err := (TopoSpec{Kind: "torus", Switches: 2, Hosts: 2}).Build(); err == nil {
		t.Fatal("unknown kind built")
	}
}
