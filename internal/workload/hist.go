package workload

import (
	"math/bits"
	"time"
)

// Histogram is a fixed-footprint log-linear latency histogram in the
// HDR style: exact buckets below 64 ns, then 32 sub-buckets per power
// of two, bounding the relative quantile error by 1/32 (~3.1%) at any
// magnitude up to ~292 years. Record is a shift, a table index and two
// adds — no allocation, no branching on magnitude beyond the small-
// value fast path — so it sits on the load harness's per-request
// measurement path for millions of requests.
//
// The zero value is an empty histogram. Not safe for concurrent use;
// the replay loop records from a single goroutine.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
}

const (
	histSubBits = 5
	histSubs    = 1 << histSubBits // sub-buckets per octave
	// 64 exact buckets, then 32 per octave for exponents 6..63.
	histBuckets = 2*histSubs + (63-histSubBits)*histSubs
)

// histIndex maps a value to its bucket. Values below 64 get exact
// buckets; above, the top six bits (1 implicit + 5 sub-bucket bits)
// select a bucket of width 2^(exp-5).
func histIndex(v uint64) int {
	if v < 2*histSubs {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	return (exp-histSubBits)*histSubs + int(v>>(uint(exp)-histSubBits))
}

// histUpper is the largest value bucket i holds (the inverse of
// histIndex, rounded up).
func histUpper(i int) uint64 {
	if i < 2*histSubs {
		return uint64(i)
	}
	shift := uint(i/histSubs) - 1
	mantissa := uint64(i%histSubs) + histSubs
	return (mantissa+1)<<shift - 1
}

// Record adds one latency sample. Negative durations (clock steps)
// count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded sample exactly.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the exact arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) that
// overshoots the true order statistic by at most one bucket width
// (~3.1% relative). Quantile(1) returns the exact maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	// Rank of the q-th sample, 1-based, clamped to [1, total].
	rank := uint64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= h.total {
		return time.Duration(h.max)
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			u := histUpper(i)
			if u > h.max {
				u = h.max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(h.max)
}
