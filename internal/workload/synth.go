package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterises the open-loop trace synthesizer. The zero value
// of every knob selects the documented default, so Config{Seed: 1,
// Requests: n} is a sensible flat workload; the trace produced by one
// (TopoSpec, Config) pair is a pure function of its fields.
type Config struct {
	// Seed seeds the deterministic RNG.
	Seed int64
	// Requests is the number of admission requests (trace "add" ops);
	// departures are emitted on top as flows expire.
	Requests int
	// Hold is the mean flow lifetime measured in requests: each
	// admitted flow departs an exponentially-distributed number of
	// requests later, so the steady-state resident population
	// approaches Hold (an open-loop M/G/inf shape — arrivals never wait
	// for decisions). Default 256.
	Hold int
	// Local is the fraction of requests whose endpoints share one
	// locality group (see TopoSpec.Group). Default 0.8; groups of one
	// host force Local to 0.
	Local float64
	// Heavy is the fraction of heavy CBR video requests (~67 Mbit/s,
	// the contention driver on 100 Mbit/s access links). Default 0.1.
	Heavy float64
	// Diurnal is the amplitude (0..1) of a sinusoidal modulation of
	// Hold across the trace: at the peak flows live (1+Diurnal) times
	// longer, so the resident population swells and ebbs like a daily
	// load curve. Default 0 (flat).
	Diurnal float64
	// Cycles is the number of diurnal cycles across the trace.
	// Default 2.
	Cycles float64
	// Flash is the number of flash-crowd episodes: bursts of arrivals
	// concentrated on one hot locality group, with quarter-length
	// holds so the spike drains after the crowd passes. Default 0.
	Flash int
	// FlashLen is the number of requests per flash episode. Default
	// Requests/50, at least 8.
	FlashLen int
	// Tenants carves the locality groups into this many tenants
	// (group g belongs to tenant g mod Tenants); requests stay inside
	// their tenant's footprint and names gain a "t<k>." prefix. Must
	// not exceed the group count. Default 0 (untenanted).
	Tenants int
	// TenantChurn is the per-request probability that one whole tenant
	// departs: every live flow of a random tenant is released at once —
	// the mass-departure regime that forces closure re-splits. Only
	// meaningful with Tenants > 0. Default 0.
	TenantChurn float64
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Hold == 0 {
		c.Hold = 256
	}
	if c.Local == 0 {
		c.Local = 0.8
	}
	if c.Heavy == 0 {
		c.Heavy = 0.1
	}
	if c.Cycles == 0 {
		c.Cycles = 2
	}
	if c.FlashLen == 0 {
		c.FlashLen = c.Requests / 50
		if c.FlashLen < 8 {
			c.FlashLen = 8
		}
	}
	return c
}

// validate rejects configurations the synthesizer cannot honour.
func (c Config) validate(groups, group int) error {
	if c.Requests < 1 {
		return fmt.Errorf("workload: synthesis needs at least 1 request")
	}
	if c.Hold < 1 {
		return fmt.Errorf("workload: hold must be >= 1 request")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"local", c.Local}, {"heavy", c.Heavy}, {"diurnal", c.Diurnal}, {"tenant churn", c.TenantChurn}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("workload: %s fraction %g outside [0,1]", p.name, p.v)
		}
	}
	if c.Tenants < 0 || c.Tenants > groups {
		return fmt.Errorf("workload: %d tenants over %d locality groups", c.Tenants, groups)
	}
	if groups == 1 && group < 2 {
		return fmt.Errorf("workload: topology has a single one-host group; no two distinct endpoints exist")
	}
	return nil
}

// flashEpisode is one precomputed flash crowd: a request-index window
// and the hot locality group it converges on.
type flashEpisode struct {
	start, end, hot int
}

// Synthesize produces the open-loop request trace of cfg over the
// topology spec: for each of cfg.Requests ticks it first emits the
// departures of flows whose lifetime expired at this tick (and, under
// tenant churn, of entire tenants), then one admission request. The
// result is a pure function of (spec, cfg) — a single-goroutine walk of
// one seeded rand.Rand — so equal inputs yield byte-identical traces on
// any GOMAXPROCS setting.
//
// The trace is open-loop: departures name previously *submitted* flows
// whether or not the replaying controller admitted them (a release of a
// rejected flow is a deterministic miss), so the operation stream never
// depends on decisions.
func Synthesize(spec TopoSpec, cfg Config) (Header, []Op, error) {
	if err := spec.validate(); err != nil {
		return Header{}, nil, err
	}
	_, hosts, err := spec.Build()
	if err != nil {
		return Header{}, nil, err
	}
	group := spec.Group()
	groups := spec.Groups()
	cfg = cfg.withDefaults()
	if err := cfg.validate(groups, group); err != nil {
		return Header{}, nil, err
	}
	if group < 2 {
		cfg.Local = 0
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	// Draw the flash windows up front, in episode order, so the main
	// loop's draw sequence is independent of where the episodes land.
	flashes := make([]flashEpisode, cfg.Flash)
	for e := range flashes {
		center := (e + 1) * cfg.Requests / (cfg.Flash + 1)
		start := center - cfg.FlashLen/2
		if start < 0 {
			start = 0
		}
		flashes[e] = flashEpisode{start: start, end: start + cfg.FlashLen, hot: r.Intn(groups)}
	}
	flashAt := func(i int) (int, bool) {
		for _, f := range flashes {
			if i >= f.start && i < f.end {
				return f.hot, true
			}
		}
		return 0, false
	}

	type flowRec struct {
		name   string
		tenant int
		dead   bool
	}
	var flows []flowRec
	expire := make(map[int][]int) // tick -> indices into flows
	byTenant := make([][]int, cfg.Tenants)

	release := func(ops []Op, fi int) []Op {
		if flows[fi].dead {
			return ops
		}
		flows[fi].dead = true
		return append(ops, Op{Op: "del", Name: flows[fi].name})
	}

	// pickGroup draws a locality group from the tenant's footprint
	// (every group when untenanted).
	pickGroup := func(tenant int) int {
		if cfg.Tenants == 0 {
			return r.Intn(groups)
		}
		owned := (groups - tenant + cfg.Tenants - 1) / cfg.Tenants
		return tenant + cfg.Tenants*r.Intn(owned)
	}

	ops := make([]Op, 0, cfg.Requests*2)
	for i := 0; i < cfg.Requests; i++ {
		// 1. Scheduled departures of flows expiring at this tick.
		for _, fi := range expire[i] {
			ops = release(ops, fi)
		}
		delete(expire, i)

		// 2. Tenant churn: one whole tenant leaves at once.
		if cfg.Tenants > 0 && cfg.TenantChurn > 0 && r.Float64() < cfg.TenantChurn {
			tn := r.Intn(cfg.Tenants)
			for _, fi := range byTenant[tn] {
				ops = release(ops, fi)
			}
			byTenant[tn] = byTenant[tn][:0]
		}

		// 3. The admission request.
		tenant := 0
		if cfg.Tenants > 0 {
			tenant = r.Intn(cfg.Tenants)
		}
		hot, inFlash := flashAt(i)
		var sg, dg int
		if inFlash {
			// The crowd converges on the hot group; sources keep the
			// usual locality split.
			dg = hot
			if r.Float64() < cfg.Local {
				sg = hot
			} else {
				sg = pickGroup(tenant)
			}
		} else {
			sg = pickGroup(tenant)
			if r.Float64() < cfg.Local {
				dg = sg
			} else {
				dg = pickGroup(tenant)
			}
		}
		src := hosts[sg*group+r.Intn(group)]
		var dst = src
		for dst == src {
			if sg == dg && group < 2 {
				dg = (dg + 1) % groups
			}
			dst = hosts[dg*group+r.Intn(group)]
		}
		name := fmt.Sprintf("r%d", i)
		if cfg.Tenants > 0 {
			name = fmt.Sprintf("t%d.%s", tenant, name)
		}
		op := Op{Op: "add", Name: name, Src: string(src), Dst: string(dst)}
		switch {
		case r.Float64() < cfg.Heavy:
			// ~67 Mbit/s video: two on one access link overload it.
			op.Kind = "cbr"
			op.Prio = 1
			op.Bytes = 250000
			op.PeriodPS = int64(30 * msPS)
			op.DeadlinePS = int64(250 * msPS)
		case r.Intn(4) < 3:
			op.Kind = "voip"
			op.Prio = 1 + r.Intn(3)
			op.DeadlinePS = int64(100 * msPS)
			op.RTP = true
		default:
			op.Kind = "cbr"
			op.Prio = 1 + r.Intn(3)
			op.Bytes = 4000 + r.Int63n(12000)
			op.PeriodPS = int64(33 * msPS)
			op.DeadlinePS = int64(200 * msPS)
		}
		ops = append(ops, op)
		fi := len(flows)
		flows = append(flows, flowRec{name: name, tenant: tenant})
		if cfg.Tenants > 0 {
			byTenant[tenant] = append(byTenant[tenant], fi)
		}

		// 4. Schedule the flow's departure: exponential lifetime around
		// the (diurnally modulated) mean hold; crowd flows drain fast.
		hold := float64(cfg.Hold)
		if cfg.Diurnal > 0 {
			hold *= 1 + cfg.Diurnal*math.Sin(2*math.Pi*cfg.Cycles*float64(i)/float64(cfg.Requests))
		}
		if inFlash {
			hold /= 4
		}
		life := int(r.ExpFloat64()*hold) + 1
		expire[i+life] = append(expire[i+life], fi)
	}
	return Header{Topo: spec}, ops, nil
}

// msPS is one millisecond in picoseconds, the trace format's time unit.
const msPS = int64(1_000_000_000)
