// Package workload is the production-scale workload axis: the
// JSON-lines request-trace format shared by gmfnet-admit and
// gmfnet-load (a topology header, then add/del operations in stream
// order), an open-loop trace synthesizer producing diurnal load, flash
// crowds and tenant churn from a seeded deterministic RNG, and a fixed-
// footprint HDR-style latency histogram for replaying millions of
// requests without per-request allocation on the measurement path.
//
// Everything here is deterministic by construction: the same TopoSpec
// and Config always synthesize the byte-identical trace regardless of
// GOMAXPROCS, so the same workload can be handed to every controller
// variant and the decision logs compared byte for byte — the harness is
// part of the proof layer, not just the load generator.
package workload

import (
	"fmt"

	"gmfnet/internal/network"
)

// TopoSpec names a generated topology in a trace header: one of the
// network package's workload generators plus its size parameters. Three
// numbers describe every shape; Fanout is unused by campus.
//
//	kind        Switches        Fanout          Hosts
//	campus      chain switches  —               hosts per switch
//	backbone    PoPs            aggs per PoP    hosts per agg
//	fronthaul   CU hubs         cells per hub   radio units per cell
//	clos        leaves          spines          hosts per leaf
//
// An empty Kind means campus, which keeps traces recorded before the
// production generators replayable unchanged.
type TopoSpec struct {
	Kind     string `json:"kind,omitempty"`
	Switches int    `json:"switches"`
	Hosts    int    `json:"hosts"`
	Fanout   int    `json:"fanout,omitempty"`
}

// Build materialises the named topology and returns its hosts in the
// generator's locality-group order (see Group).
func (t TopoSpec) Build() (*network.Topology, []network.NodeID, error) {
	switch t.Kind {
	case "", "campus":
		return network.Campus(t.Switches, t.Hosts)
	case "backbone":
		return network.Backbone(t.Switches, t.Fanout, t.Hosts)
	case "fronthaul":
		return network.Fronthaul(t.Switches, t.Fanout, t.Hosts)
	case "clos":
		return network.ClosTenant(t.Fanout, t.Switches, t.Hosts)
	default:
		return nil, nil, fmt.Errorf("workload: unknown topology kind %q", t.Kind)
	}
}

// Group returns the locality-group size of the host list Build returns:
// consecutive runs of this many hosts share an edge switch (campus
// switch, aggregation, cell DU or leaf). The synthesizer keeps most
// traffic inside one group, mirroring real edge locality.
func (t TopoSpec) Group() int { return t.Hosts }

// Groups returns the number of locality groups.
func (t TopoSpec) Groups() int {
	switch t.Kind {
	case "", "campus":
		return t.Switches
	case "clos":
		return t.Switches
	default: // backbone, fronthaul
		return t.Switches * t.Fanout
	}
}

// validate rejects parameter combinations no generator accepts, so a
// malformed trace header fails before Build's first node is added.
func (t TopoSpec) validate() error {
	if t.Switches < 1 || t.Hosts < 1 {
		return fmt.Errorf("workload: topology %q needs at least 1 switch and 1 host per group", t.Kind)
	}
	switch t.Kind {
	case "", "campus":
		if t.Hosts < 2 {
			return fmt.Errorf("workload: campus traces need at least 2 hosts per switch")
		}
	case "backbone", "fronthaul", "clos":
		if t.Fanout < 1 {
			return fmt.Errorf("workload: topology %q needs fanout >= 1", t.Kind)
		}
	default:
		return fmt.Errorf("workload: unknown topology kind %q", t.Kind)
	}
	return nil
}
