package gmf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmfnet/internal/units"
)

// demandFixture builds a Demand with hand-computable numbers:
// frame: sep   cost  count
//
//	0:   30ms  6ms   3
//	1:   20ms  1ms   1
//	2:   50ms  2ms   2
func demandFixture(t *testing.T) *Demand {
	t.Helper()
	f := testFlow()
	d, err := NewDemand(f,
		[]units.Time{6 * ms, 1 * ms, 2 * ms},
		[]int64{3, 1, 2})
	if err != nil {
		t.Fatalf("NewDemand: %v", err)
	}
	return d
}

func TestNewDemandErrors(t *testing.T) {
	f := testFlow()
	if _, err := NewDemand(f, []units.Time{1}, []int64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewDemand(f, []units.Time{-1, 1, 1}, []int64{1, 1, 1}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := NewDemand(f, []units.Time{1, 1, 1}, []int64{1, -1, 1}); err == nil {
		t.Error("negative count accepted")
	}
	bad := &Flow{Name: "bad"}
	if _, err := NewDemand(bad, nil, nil); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestDemandAggregates(t *testing.T) {
	d := demandFixture(t)
	if d.TSUM() != 100*ms {
		t.Errorf("TSUM = %v", d.TSUM())
	}
	if d.CSUM() != 9*ms {
		t.Errorf("CSUM = %v", d.CSUM())
	}
	if d.NSUM() != 6 {
		t.Errorf("NSUM = %d", d.NSUM())
	}
	if d.N() != 3 || d.FlowName() != "t" {
		t.Errorf("N/FlowName = %d/%q", d.N(), d.FlowName())
	}
	if d.Cost(0) != 6*ms || d.Count(2) != 2 {
		t.Errorf("Cost/Count accessors wrong")
	}
}

func TestWindowSums(t *testing.T) {
	d := demandFixture(t)
	cases := []struct {
		k1, k2 int
		cost   units.Time
		count  int64
		span   units.Time
	}{
		{0, 1, 6 * ms, 3, 0},
		{0, 2, 7 * ms, 4, 30 * ms},
		{0, 3, 9 * ms, 6, 50 * ms},
		{1, 1, 1 * ms, 1, 0},
		{2, 2, 8 * ms, 5, 50 * ms}, // frames 2,0
		{2, 3, 9 * ms, 6, 80 * ms}, // frames 2,0,1
	}
	for _, c := range cases {
		if got := d.CSUMWindow(c.k1, c.k2); got != c.cost {
			t.Errorf("CSUMWindow(%d,%d) = %v, want %v", c.k1, c.k2, got, c.cost)
		}
		if got := d.NSUMWindow(c.k1, c.k2); got != c.count {
			t.Errorf("NSUMWindow(%d,%d) = %d, want %d", c.k1, c.k2, got, c.count)
		}
		if got := d.TSUMWindow(c.k1, c.k2); got != c.span {
			t.Errorf("TSUMWindow(%d,%d) = %v, want %v", c.k1, c.k2, got, c.span)
		}
	}
}

func TestWindowPanics(t *testing.T) {
	d := demandFixture(t)
	for _, bad := range [][2]int{{-1, 1}, {3, 1}, {0, 0}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CSUMWindow(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			d.CSUMWindow(bad[0], bad[1])
		}()
	}
}

func TestMXSHandValues(t *testing.T) {
	d := demandFixture(t)
	// Spans available: 0 (any single frame, max cost 6ms), 20ms (frames
	// 1,2: 3ms), 30ms (frames 0,1: 7ms), 50ms (frames 0,1,2: 9ms; frames
	// 2,0: 8ms), 70ms (1,2,0: 9ms), 80ms (2,0,1: 9ms).
	cases := []struct {
		t    units.Time
		want units.Time
	}{
		{-5 * ms, 0},
		{0, 0},
		{1, 6 * ms}, // any positive interval fits one frame
		{19 * ms, 6 * ms},
		{20 * ms, 6 * ms}, // frames 1,2 give only 3ms; single frame 0 is better
		{30 * ms, 7 * ms},
		{49 * ms, 7 * ms},
		{50 * ms, 9 * ms},
		{99 * ms, 9 * ms},
	}
	for _, c := range cases {
		if got := d.MXS(c.t); got != c.want {
			t.Errorf("MXS(%v) = %v, want %v", c.t, got, c.want)
		}
		if got := d.MXSBrute(c.t); got != c.want {
			t.Errorf("MXSBrute(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNXSHandValues(t *testing.T) {
	d := demandFixture(t)
	cases := []struct {
		t    units.Time
		want int64
	}{
		{0, 0},
		{1, 3},
		{30 * ms, 4},
		{50 * ms, 6},
	}
	for _, c := range cases {
		if got := d.NXS(c.t); got != c.want {
			t.Errorf("NXS(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestMXHandValues(t *testing.T) {
	d := demandFixture(t)
	cases := []struct {
		t    units.Time
		want units.Time
	}{
		{0, 0},
		{100 * ms, 9 * ms},        // exactly one cycle
		{150 * ms, 9*ms + 9*ms},   // cycle + MXS(50ms)=9ms
		{230 * ms, 2*9*ms + 7*ms}, // 2 cycles + MXS(30ms)=7ms
		{1, 6 * ms},
	}
	for _, c := range cases {
		if got := d.MX(c.t); got != c.want {
			t.Errorf("MX(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNXHandValues(t *testing.T) {
	d := demandFixture(t)
	if got := d.NX(100 * ms); got != 6 {
		t.Errorf("NX(100ms) = %d, want 6", got)
	}
	if got := d.NX(150 * ms); got != 12 {
		t.Errorf("NX(150ms) = %d, want 12", got)
	}
	if got := d.NX(0); got != 0 {
		t.Errorf("NX(0) = %d, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	d := demandFixture(t)
	if got := d.Utilization(); got != 0.09 {
		t.Errorf("Utilization = %g, want 0.09", got)
	}
	// 6 fragments × 1ms per fragment over 100ms = 0.06.
	if got := d.CountUtilization(1 * ms); got != 0.06 {
		t.Errorf("CountUtilization = %g, want 0.06", got)
	}
}

// randomDemand builds a random well-formed Demand from a seed.
func randomDemand(rng *rand.Rand) *Demand {
	n := 1 + rng.Intn(8)
	f := &Flow{Name: "r"}
	cost := make([]units.Time, n)
	count := make([]int64, n)
	for k := 0; k < n; k++ {
		f.Frames = append(f.Frames, Frame{
			MinSep:      units.Time(1+rng.Intn(50)) * ms,
			Deadline:    units.Time(1+rng.Intn(500)) * ms,
			Jitter:      units.Time(rng.Intn(5)) * ms,
			PayloadBits: int64(1 + rng.Intn(100000)),
		})
		cost[k] = units.Time(rng.Intn(10)) * ms
		count[k] = int64(rng.Intn(12))
	}
	d, err := NewDemand(f, cost, count)
	if err != nil {
		panic(err)
	}
	return d
}

func TestStaircaseMatchesBruteForce(t *testing.T) {
	f := func(seed int64, probe uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDemand(rng)
		tt := units.Time(probe) * ms / 4
		return d.MXS(tt) == d.MXSBrute(tt) && d.NXS(tt) == d.NXSBrute(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMXMonotone(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDemand(rng)
		a := units.Time(aRaw) * ms / 8
		b := units.Time(bRaw) * ms / 8
		if a > b {
			a, b = b, a
		}
		return d.MX(a) <= d.MX(b) && d.NX(a) <= d.NX(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// MX must dominate actual demand: any k2 consecutive frames released as
// fast as allowed inside an interval of their minimum span demand their
// summed cost, and MX(span) must cover it.
func TestMXDominatesWindows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDemand(rng)
		n := d.N()
		for k1 := 0; k1 < n; k1++ {
			for k2 := 1; k2 <= n; k2++ {
				span := d.TSUMWindow(k1, k2)
				probe := span
				if probe == 0 {
					probe = 1
				}
				if d.MX(probe) < d.CSUMWindow(k1, k2) {
					return false
				}
				if d.NX(probe) < d.NSUMWindow(k1, k2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// MX is subadditive across full cycles: MX(t + TSUM) == MX(t) + CSUM.
func TestMXCycleShift(t *testing.T) {
	f := func(seed int64, probe uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDemand(rng)
		tt := units.Time(probe) * ms / 4
		return d.MX(tt+d.TSUM()) == d.MX(tt)+d.CSUM() &&
			d.NX(tt+d.TSUM()) == d.NX(tt)+d.NSUM()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFrameDemandIsSporadic(t *testing.T) {
	// For n=1 the GMF bounds collapse to the classical sporadic
	// request-bound function ceil(t/T)*C.
	f := &Flow{Name: "s", Frames: []Frame{{MinSep: 10 * ms, Deadline: 10 * ms, PayloadBits: 8}}}
	d, err := NewDemand(f, []units.Time{3 * ms}, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []units.Time{1, 5 * ms, 10 * ms, 15 * ms, 20 * ms, 25 * ms} {
		wantMul := int64(units.CeilDivTime(tt, 10*ms))
		if got := d.MX(tt); got != units.Time(wantMul)*3*ms {
			t.Errorf("MX(%v) = %v, want %v", tt, got, units.Time(wantMul)*3*ms)
		}
		if got := d.NX(tt); got != wantMul*2 {
			t.Errorf("NX(%v) = %d, want %d", tt, got, wantMul*2)
		}
	}
}

func BenchmarkMXQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := randomDemand(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MX(units.Time(i%1000) * ms / 3)
	}
}

func BenchmarkNewDemand(b *testing.B) {
	f := testFlow()
	cost := []units.Time{6 * ms, 1 * ms, 2 * ms}
	count := []int64{3, 1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDemand(f, cost, count); err != nil {
			b.Fatal(err)
		}
	}
}
