// Package gmf implements the generalized multiframe (GMF) traffic model of
// Baruah et al. extended with the paper's notion of generalized jitter.
//
// A flow τi is a cyclic sequence of n_i frames. Frame k is described by four
// parameters: T_i^k, the minimum separation between the arrival of frame k
// and frame k+1 at the source; D_i^k, the relative end-to-end deadline;
// GJ_i^k, the generalized jitter (all Ethernet fragments of the frame are
// released within [t, t+GJ_i^k) of the frame's arrival t); and S_i^k, the
// UDP payload size in bits.
//
// The package also provides the request-bound machinery of the paper's
// Section 3.1: windowed sums CSUM/NSUM/TSUM over frame sequences (eqs. 4-9)
// and the functions MXS/MX/NXS/NX (eqs. 10-13) that upper-bound the time
// (respectively the number of Ethernet frames) a flow demands from a link
// during any interval.
package gmf

import (
	"fmt"

	"gmfnet/internal/units"
)

// Frame describes one frame (one UDP packet class) of a GMF flow.
type Frame struct {
	// MinSep is T_i^k: the minimum time between the arrival of this frame
	// and the arrival of the next frame of the flow at the source node.
	MinSep units.Time
	// Deadline is D_i^k: the relative end-to-end deadline of the frame,
	// measured from its arrival at the source node to its complete
	// reception at the destination node.
	Deadline units.Time
	// Jitter is GJ_i^k: the generalized jitter at the source. All Ethernet
	// fragments of the frame are released within [t, t+Jitter) of the
	// frame arrival t.
	Jitter units.Time
	// PayloadBits is S_i^k: the number of payload bits in the UDP packet.
	PayloadBits int64
}

// Flow is a generalized multiframe flow: a cyclically repeating sequence of
// frames.
type Flow struct {
	// Name identifies the flow in reports and error messages.
	Name string
	// Frames holds the n_i frame descriptors in cyclic order.
	Frames []Frame
}

// N returns n_i, the number of frames in the flow's cycle.
func (f *Flow) N() int { return len(f.Frames) }

// Validate checks that the flow is well formed: at least one frame,
// positive separations and payloads, non-negative jitters and deadlines.
func (f *Flow) Validate() error {
	if f == nil {
		return fmt.Errorf("gmf: nil flow")
	}
	if len(f.Frames) == 0 {
		return fmt.Errorf("gmf: flow %q has no frames", f.Name)
	}
	for k, fr := range f.Frames {
		if fr.MinSep <= 0 {
			return fmt.Errorf("gmf: flow %q frame %d: MinSep %v must be positive", f.Name, k, fr.MinSep)
		}
		if fr.Deadline <= 0 {
			return fmt.Errorf("gmf: flow %q frame %d: Deadline %v must be positive", f.Name, k, fr.Deadline)
		}
		if fr.Jitter < 0 {
			return fmt.Errorf("gmf: flow %q frame %d: Jitter %v must be non-negative", f.Name, k, fr.Jitter)
		}
		if fr.PayloadBits <= 0 {
			return fmt.Errorf("gmf: flow %q frame %d: PayloadBits %d must be positive", f.Name, k, fr.PayloadBits)
		}
	}
	return nil
}

// TSUM returns eq. (6): the sum of all minimum separations, i.e. the
// minimum duration of one full cycle of the flow.
func (f *Flow) TSUM() units.Time {
	var s units.Time
	for _, fr := range f.Frames {
		s += fr.MinSep
	}
	return s
}

// TSUMWindow returns eq. (9): the minimum time spanned by k2 consecutive
// frame arrivals starting at frame k1, i.e. the sum of the k2-1 separations
// T^{k1}, …, T^{k1+k2-2} (indices mod n). TSUMWindow(k1, 1) is 0.
func (f *Flow) TSUMWindow(k1, k2 int) units.Time {
	n := f.N()
	if k1 < 0 || k1 >= n || k2 < 1 {
		panic("gmf: TSUMWindow index out of range")
	}
	var s units.Time
	for k := k1; k <= k1+k2-2; k++ {
		s += f.Frames[k%n].MinSep
	}
	return s
}

// MaxJitter returns the largest source jitter over all frames of the flow.
func (f *Flow) MaxJitter() units.Time {
	var m units.Time
	for _, fr := range f.Frames {
		if fr.Jitter > m {
			m = fr.Jitter
		}
	}
	return m
}

// MinDeadline returns the smallest relative deadline over all frames.
func (f *Flow) MinDeadline() units.Time {
	m := units.MaxTime
	for _, fr := range f.Frames {
		if fr.Deadline < m {
			m = fr.Deadline
		}
	}
	return m
}

// MaxPayloadBits returns the largest payload over all frames.
func (f *Flow) MaxPayloadBits() int64 {
	var m int64
	for _, fr := range f.Frames {
		if fr.PayloadBits > m {
			m = fr.PayloadBits
		}
	}
	return m
}

// MinSeparation returns the smallest separation over all frames.
func (f *Flow) MinSeparation() units.Time {
	m := units.MaxTime
	for _, fr := range f.Frames {
		if fr.MinSep < m {
			m = fr.MinSep
		}
	}
	return m
}

// TotalPayloadBits returns the sum of payloads over one cycle.
func (f *Flow) TotalPayloadBits() int64 {
	var s int64
	for _, fr := range f.Frames {
		s += fr.PayloadBits
	}
	return s
}

// Sporadic collapses the flow to a single-frame (sporadic) flow using the
// classical pessimistic transformation: the largest payload and jitter
// combined with the smallest separation and deadline. This is the baseline
// model the paper argues against for MPEG-like traffic.
func (f *Flow) Sporadic() *Flow {
	return &Flow{
		Name: f.Name + "/sporadic",
		Frames: []Frame{{
			MinSep:      f.MinSeparation(),
			Deadline:    f.MinDeadline(),
			Jitter:      f.MaxJitter(),
			PayloadBits: f.MaxPayloadBits(),
		}},
	}
}

// Clone returns a deep copy of the flow.
func (f *Flow) Clone() *Flow {
	frames := make([]Frame, len(f.Frames))
	copy(frames, f.Frames)
	return &Flow{Name: f.Name, Frames: frames}
}

// String returns a short human-readable description of the flow.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %q (n=%d, TSUM=%v)", f.Name, f.N(), f.TSUM())
}
