package gmf

import (
	"strings"
	"testing"

	"gmfnet/internal/units"
)

const ms = units.Millisecond

// testFlow returns a 3-frame GMF flow used across the tests.
func testFlow() *Flow {
	return &Flow{
		Name: "t",
		Frames: []Frame{
			{MinSep: 30 * ms, Deadline: 100 * ms, Jitter: 1 * ms, PayloadBits: 144000},
			{MinSep: 20 * ms, Deadline: 90 * ms, Jitter: 2 * ms, PayloadBits: 12000},
			{MinSep: 50 * ms, Deadline: 120 * ms, Jitter: 0, PayloadBits: 48000},
		},
	}
}

func TestFlowValidateOK(t *testing.T) {
	if err := testFlow().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFlowValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Flow)
		want   string
	}{
		{"no frames", func(f *Flow) { f.Frames = nil }, "no frames"},
		{"zero sep", func(f *Flow) { f.Frames[1].MinSep = 0 }, "MinSep"},
		{"negative sep", func(f *Flow) { f.Frames[0].MinSep = -1 }, "MinSep"},
		{"zero deadline", func(f *Flow) { f.Frames[2].Deadline = 0 }, "Deadline"},
		{"negative jitter", func(f *Flow) { f.Frames[0].Jitter = -ms }, "Jitter"},
		{"zero payload", func(f *Flow) { f.Frames[1].PayloadBits = 0 }, "PayloadBits"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := testFlow()
			c.mutate(f)
			err := f.Validate()
			if err == nil {
				t.Fatalf("Validate succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestNilFlowValidate(t *testing.T) {
	var f *Flow
	if err := f.Validate(); err == nil {
		t.Fatal("nil flow validated")
	}
}

func TestFlowAggregates(t *testing.T) {
	f := testFlow()
	if got := f.N(); got != 3 {
		t.Errorf("N = %d, want 3", got)
	}
	if got := f.TSUM(); got != 100*ms {
		t.Errorf("TSUM = %v, want 100ms", got)
	}
	if got := f.MaxJitter(); got != 2*ms {
		t.Errorf("MaxJitter = %v, want 2ms", got)
	}
	if got := f.MinDeadline(); got != 90*ms {
		t.Errorf("MinDeadline = %v, want 90ms", got)
	}
	if got := f.MinSeparation(); got != 20*ms {
		t.Errorf("MinSeparation = %v, want 20ms", got)
	}
	if got := f.MaxPayloadBits(); got != 144000 {
		t.Errorf("MaxPayloadBits = %d, want 144000", got)
	}
	if got := f.TotalPayloadBits(); got != 144000+12000+48000 {
		t.Errorf("TotalPayloadBits = %d", got)
	}
}

func TestTSUMWindow(t *testing.T) {
	f := testFlow()
	cases := []struct {
		k1, k2 int
		want   units.Time
	}{
		{0, 1, 0},       // single frame spans no separation
		{0, 2, 30 * ms}, // frames 0,1 span T^0
		{0, 3, 50 * ms}, // frames 0,1,2 span T^0+T^1
		{1, 2, 20 * ms},
		{2, 2, 50 * ms}, // wraps: frames 2,0 span T^2
		{2, 3, 80 * ms}, // frames 2,0,1 span T^2+T^0
		{1, 3, 70 * ms}, // frames 1,2,0 span T^1+T^2
	}
	for _, c := range cases {
		if got := f.TSUMWindow(c.k1, c.k2); got != c.want {
			t.Errorf("TSUMWindow(%d,%d) = %v, want %v", c.k1, c.k2, got, c.want)
		}
	}
}

func TestTSUMWindowPanics(t *testing.T) {
	f := testFlow()
	for _, bad := range [][2]int{{-1, 1}, {3, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TSUMWindow(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			f.TSUMWindow(bad[0], bad[1])
		}()
	}
}

func TestSporadicCollapse(t *testing.T) {
	s := testFlow().Sporadic()
	if err := s.Validate(); err != nil {
		t.Fatalf("sporadic flow invalid: %v", err)
	}
	if s.N() != 1 {
		t.Fatalf("sporadic N = %d, want 1", s.N())
	}
	fr := s.Frames[0]
	if fr.MinSep != 20*ms || fr.Deadline != 90*ms || fr.Jitter != 2*ms || fr.PayloadBits != 144000 {
		t.Fatalf("sporadic frame = %+v", fr)
	}
	// The collapse must be pessimistic: its single frame dominates every
	// original frame in payload and jitter, and is dominated in separation.
	orig := testFlow()
	for k, of := range orig.Frames {
		if fr.PayloadBits < of.PayloadBits {
			t.Errorf("frame %d payload exceeds sporadic", k)
		}
		if fr.MinSep > of.MinSep {
			t.Errorf("frame %d separation below sporadic", k)
		}
	}
}

func TestClone(t *testing.T) {
	f := testFlow()
	c := f.Clone()
	c.Frames[0].PayloadBits = 1
	if f.Frames[0].PayloadBits == 1 {
		t.Fatal("Clone shares frame storage")
	}
	if c.Name != f.Name || c.N() != f.N() {
		t.Fatal("Clone lost metadata")
	}
}

func TestFlowString(t *testing.T) {
	s := testFlow().String()
	for _, want := range []string{"\"t\"", "n=3", "100ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
