package gmf

import (
	"math/rand"
	"testing"

	"gmfnet/internal/units"
)

// fuzzDemand derives a random but valid Demand from a fuzzer-chosen seed:
// 1-6 frames with arbitrary separations, costs and fragment counts. Using
// a seeded RNG keeps the input space dense under fuzzing while every
// drawn instance stays structurally valid.
func fuzzDemand(t *testing.T, seed int64) *Demand {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n := 1 + r.Intn(6)
	flow := &Flow{Name: "fuzz"}
	cost := make([]units.Time, n)
	count := make([]int64, n)
	for k := 0; k < n; k++ {
		flow.Frames = append(flow.Frames, Frame{
			MinSep:      units.Time(1+r.Int63n(50)) * units.Millisecond,
			Deadline:    100 * units.Millisecond,
			PayloadBits: 1 + r.Int63n(100000),
		})
		cost[k] = units.Time(r.Int63n(5 * int64(units.Millisecond)))
		count[k] = r.Int63n(8)
	}
	d, err := NewDemand(flow, cost, count)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fuzzWindow maps the fuzzer's raw interval to the meaningful query range
// (slightly beyond one full cycle; MX/NX handle longer intervals by
// periodicity).
func fuzzWindow(d *Demand, raw int64) units.Time {
	span := int64(d.TSUM()) + int64(units.Millisecond)
	t := raw % span
	if t < 0 {
		t = -t
	}
	return units.Time(t)
}

// FuzzMXS cross-checks the binary-searched staircase of eq. (10) against
// direct enumeration of all frame windows.
func FuzzMXS(f *testing.F) {
	f.Add(int64(1), int64(units.Millisecond))
	f.Add(int64(42), int64(0))
	f.Add(int64(7), int64(-3*units.Millisecond))
	f.Add(int64(1234), int64(units.Second))
	f.Fuzz(func(t *testing.T, seed, raw int64) {
		d := fuzzDemand(t, seed)
		q := fuzzWindow(d, raw)
		if got, want := d.MXS(q), d.MXSBrute(q); got != want {
			t.Fatalf("MXS(%v) = %v, brute force = %v (seed %d)", q, got, want, seed)
		}
	})
}

// FuzzNXS cross-checks the fragment-count staircase of eq. (12) the same
// way.
func FuzzNXS(f *testing.F) {
	f.Add(int64(1), int64(units.Millisecond))
	f.Add(int64(99), int64(17*units.Millisecond))
	f.Add(int64(3), int64(-1))
	f.Add(int64(555), int64(units.Second))
	f.Fuzz(func(t *testing.T, seed, raw int64) {
		d := fuzzDemand(t, seed)
		q := fuzzWindow(d, raw)
		if got, want := d.NXS(q), d.NXSBrute(q); got != want {
			t.Fatalf("NXS(%v) = %v, brute force = %v (seed %d)", q, got, want, seed)
		}
	})
}
