package gmf

import (
	"fmt"
	"sort"

	"gmfnet/internal/units"
)

// Demand captures how a GMF flow loads one particular resource. For a link
// it pairs the flow's separations with the per-frame transmission times
// C_j^k on that link and the per-frame Ethernet fragment counts; for a
// switch CPU the same structure is used with per-fragment service costs.
//
// Demand answers the paper's request-bound queries: CSUM/NSUM/TSUM windows
// (eqs. 7-9) and MXS/MX/NXS/NX (eqs. 10-13). Queries are O(log n) after an
// O(n² log n) precomputation of monotone staircases.
type Demand struct {
	flowName string
	sep      []units.Time // T_j^k
	cost     []units.Time // C_j^k on this resource
	count    []int64      // Ethernet frames of frame k on this resource

	tsum units.Time
	csum units.Time
	nsum int64

	costStair  []stairStep // span -> max cost over windows with that span
	countStair []stairStep // span -> max fragment count
}

// stairStep is one point of a monotone staircase: any window whose minimum
// span is <= span can demand up to val.
type stairStep struct {
	span units.Time
	val  int64
}

// NewDemand builds a Demand for a flow on a resource. cost[k] is the
// service time of frame k on the resource, count[k] the number of Ethernet
// frames it contributes there. cost, count and the flow's frames must have
// equal length.
func NewDemand(flow *Flow, cost []units.Time, count []int64) (*Demand, error) {
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	n := flow.N()
	if len(cost) != n || len(count) != n {
		return nil, fmt.Errorf("gmf: demand for %q: got %d costs, %d counts, want %d", flow.Name, len(cost), len(count), n)
	}
	d := &Demand{
		flowName: flow.Name,
		sep:      make([]units.Time, n),
		cost:     make([]units.Time, n),
		count:    make([]int64, n),
	}
	for k := 0; k < n; k++ {
		d.sep[k] = flow.Frames[k].MinSep
		if cost[k] < 0 || count[k] < 0 {
			return nil, fmt.Errorf("gmf: demand for %q frame %d: negative cost or count", flow.Name, k)
		}
		d.cost[k] = cost[k]
		d.count[k] = count[k]
		d.tsum += d.sep[k]
		d.csum += d.cost[k]
		d.nsum += count[k]
	}
	d.buildStairs()
	return d, nil
}

// N returns the number of frames in the underlying flow cycle.
func (d *Demand) N() int { return len(d.sep) }

// FlowName returns the name of the flow this demand belongs to.
func (d *Demand) FlowName() string { return d.flowName }

// TSUM returns eq. (6): the minimum duration of one full flow cycle.
func (d *Demand) TSUM() units.Time { return d.tsum }

// CSUM returns eq. (4): the total service time of one full cycle on this
// resource.
func (d *Demand) CSUM() units.Time { return d.csum }

// NSUM returns eq. (5): the total number of Ethernet frames of one full
// cycle on this resource.
func (d *Demand) NSUM() int64 { return d.nsum }

// Cost returns C_j^k for frame k.
func (d *Demand) Cost(k int) units.Time { return d.cost[k] }

// Count returns the Ethernet frame count of frame k.
func (d *Demand) Count(k int) int64 { return d.count[k] }

// CSUMWindow returns eq. (7): the total cost of the k2 consecutive frames
// k1, …, k1+k2-1 (indices mod n).
func (d *Demand) CSUMWindow(k1, k2 int) units.Time {
	d.checkWindow(k1, k2)
	var s units.Time
	n := d.N()
	for k := k1; k <= k1+k2-1; k++ {
		s += d.cost[k%n]
	}
	return s
}

// NSUMWindow returns eq. (8): the total Ethernet frame count of the k2
// consecutive frames starting at k1.
func (d *Demand) NSUMWindow(k1, k2 int) int64 {
	d.checkWindow(k1, k2)
	var s int64
	n := d.N()
	for k := k1; k <= k1+k2-1; k++ {
		s += d.count[k%n]
	}
	return s
}

// TSUMWindow returns eq. (9): the minimum time spanned by the arrivals of
// the k2 consecutive frames starting at k1 (k2-1 separations).
func (d *Demand) TSUMWindow(k1, k2 int) units.Time {
	d.checkWindow(k1, k2)
	var s units.Time
	n := d.N()
	for k := k1; k <= k1+k2-2; k++ {
		s += d.sep[k%n]
	}
	return s
}

func (d *Demand) checkWindow(k1, k2 int) {
	if k1 < 0 || k1 >= d.N() || k2 < 1 || k2 > d.N() {
		panic(fmt.Sprintf("gmf: window (k1=%d,k2=%d) out of range for n=%d", k1, k2, d.N()))
	}
}

// buildStairs enumerates all (k1,k2) windows, records (minimum span,
// demand) pairs, and compresses them into monotone staircases so that each
// MXS/NXS query is a binary search.
func (d *Demand) buildStairs() {
	n := d.N()
	type pt struct {
		span  units.Time
		cost  units.Time
		count int64
	}
	pts := make([]pt, 0, n*n)
	for k1 := 0; k1 < n; k1++ {
		var span, cost units.Time
		var count int64
		for k2 := 1; k2 <= n; k2++ {
			// Window of k2 frames starting at k1: span grows by the
			// separation before the newly appended frame.
			idx := (k1 + k2 - 1) % n
			if k2 > 1 {
				span += d.sep[(k1+k2-2)%n]
			}
			cost += d.cost[idx]
			count += d.count[idx]
			pts = append(pts, pt{span, cost, count})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].span < pts[j].span })
	d.costStair = d.costStair[:0]
	d.countStair = d.countStair[:0]
	var maxCost, maxCount int64 = -1, -1
	for _, p := range pts {
		if int64(p.cost) > maxCost {
			maxCost = int64(p.cost)
			if len(d.costStair) > 0 && d.costStair[len(d.costStair)-1].span == p.span {
				d.costStair[len(d.costStair)-1].val = maxCost
			} else {
				d.costStair = append(d.costStair, stairStep{p.span, maxCost})
			}
		}
		if p.count > maxCount {
			maxCount = p.count
			if len(d.countStair) > 0 && d.countStair[len(d.countStair)-1].span == p.span {
				d.countStair[len(d.countStair)-1].val = maxCount
			} else {
				d.countStair = append(d.countStair, stairStep{p.span, maxCount})
			}
		}
	}
}

// stairQuery returns the maximum val over steps with span <= t, or 0 if
// none qualifies.
func stairQuery(stair []stairStep, t units.Time) int64 {
	// Find the last step with span <= t.
	lo, hi := 0, len(stair)
	for lo < hi {
		mid := (lo + hi) / 2
		if stair[mid].span <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return stair[lo-1].val
}

// MXS returns eq. (10): the maximum total cost of any window of at most n
// frames whose minimum span fits in an interval of length t. It is the
// paper's "small" request bound, meaningful for 0 < t < TSUM; for t <= 0 it
// returns 0 and for t >= TSUM it returns the full-window maximum (which
// callers never rely on: MX handles long intervals).
func (d *Demand) MXS(t units.Time) units.Time {
	if t <= 0 {
		return 0
	}
	return units.Time(stairQuery(d.costStair, t))
}

// NXS returns eq. (12): like MXS but counting Ethernet frames.
func (d *Demand) NXS(t units.Time) int64 {
	if t <= 0 {
		return 0
	}
	return stairQuery(d.countStair, t)
}

// MX returns eq. (11): an upper bound on the service time the flow demands
// from the resource during any interval of length t, for any t >= 0.
func (d *Demand) MX(t units.Time) units.Time {
	if t <= 0 {
		return 0
	}
	q := t / d.tsum
	rem := t - q*d.tsum
	return units.Time(q)*d.csum + d.MXS(rem)
}

// NX returns eq. (13): an upper bound on the number of Ethernet frames the
// flow delivers to the resource during any interval of length t.
func (d *Demand) NX(t units.Time) int64 {
	if t <= 0 {
		return 0
	}
	q := int64(t / d.tsum)
	rem := t - units.Time(q)*d.tsum
	return q*d.nsum + d.NXS(rem)
}

// Utilization returns CSUM/TSUM, the long-run fraction of the resource the
// flow needs.
func (d *Demand) Utilization() float64 {
	return float64(d.csum) / float64(d.tsum)
}

// CountUtilization returns NSUM*perUnit/TSUM: the long-run fraction of a
// CPU that services one Ethernet frame per perUnit (used for the ingress
// stage where each fragment costs one CIRC slot).
func (d *Demand) CountUtilization(perUnit units.Time) float64 {
	return float64(d.nsum) * float64(perUnit) / float64(d.tsum)
}

// MXSBrute recomputes eq. (10) by direct enumeration of all windows. It is
// exported for oracle-based testing of the staircase.
func (d *Demand) MXSBrute(t units.Time) units.Time {
	if t <= 0 {
		return 0
	}
	n := d.N()
	var best units.Time
	for k1 := 0; k1 < n; k1++ {
		for k2 := 1; k2 <= n; k2++ {
			if d.TSUMWindow(k1, k2) <= t {
				if c := d.CSUMWindow(k1, k2); c > best {
					best = c
				}
			}
		}
	}
	return best
}

// NXSBrute recomputes eq. (12) by direct enumeration.
func (d *Demand) NXSBrute(t units.Time) int64 {
	if t <= 0 {
		return 0
	}
	n := d.N()
	var best int64
	for k1 := 0; k1 < n; k1++ {
		for k2 := 1; k2 <= n; k2++ {
			if d.TSUMWindow(k1, k2) <= t {
				if c := d.NSUMWindow(k1, k2); c > best {
					best = c
				}
			}
		}
	}
	return best
}
