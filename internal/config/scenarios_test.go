package config

import (
	"path/filepath"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/sim"
	"gmfnet/internal/units"
)

// TestShippedScenarios loads every JSON file under scenarios/, builds it,
// analyses it and simulates half a second — the shipped library must stay
// valid, schedulable and sound.
func TestShippedScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 shipped scenarios, found %d", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := sc.Build()
			if err != nil {
				t.Fatal(err)
			}
			an, err := core.NewAnalyzer(nw, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := an.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable() {
				for i := range res.Flows {
					t.Logf("flow %q err=%v", res.Flows[i].Name, res.Flows[i].Err)
				}
				t.Fatalf("shipped scenario %s is not schedulable", path)
			}
			s, err := sim.New(nw, sim.Config{Duration: 500 * units.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			obs, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !obs.Conservation.Balanced() {
				t.Fatalf("conservation violated: %+v", obs.Conservation)
			}
			for i := range obs.Flows {
				for k := range obs.Flows[i].PerFrame {
					o := obs.Flows[i].PerFrame[k].MaxResponse
					b := res.Flow(i).Frames[k].Response
					if o > b {
						t.Errorf("flow %d frame %d: observed %v > bound %v", i, k, o, b)
					}
				}
			}
		})
	}
}
