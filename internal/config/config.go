// Package config reads and writes JSON scenario files: a topology, its
// switch parameters and a set of flows, with human-readable units
// ("30ms", "10Mbit/s"). The CLIs (gmfnet-analyze, gmfnet-sim) consume
// these files.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// Scenario is the JSON document root.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Hosts and Routers list endpoint node ids.
	Hosts   []string `json:"hosts"`
	Routers []string `json:"routers,omitempty"`
	// Switches lists the software switches.
	Switches []SwitchJSON `json:"switches"`
	// Links lists full-duplex links.
	Links []LinkJSON `json:"links"`
	// Flows lists the GMF flows.
	Flows []FlowJSON `json:"flows"`
}

// SwitchJSON describes one software switch.
type SwitchJSON struct {
	ID string `json:"id"`
	// CRoute and CSend are the Click task costs; empty selects the
	// paper's measurements (2.7 µs and 1.0 µs).
	CRoute string `json:"croute,omitempty"`
	CSend  string `json:"csend,omitempty"`
	// Processors defaults to 1.
	Processors int `json:"processors,omitempty"`
}

// LinkJSON describes one full-duplex link.
type LinkJSON struct {
	A string `json:"a"`
	B string `json:"b"`
	// Rate like "100Mbit/s".
	Rate string `json:"rate"`
	// Prop like "5us"; empty means zero.
	Prop string `json:"prop,omitempty"`
}

// FrameJSON describes one GMF frame.
type FrameJSON struct {
	// MinSep like "30ms".
	MinSep string `json:"minSep"`
	// Deadline like "100ms".
	Deadline string `json:"deadline"`
	// Jitter like "1ms"; empty means zero.
	Jitter string `json:"jitter,omitempty"`
	// PayloadBytes is the UDP payload size.
	PayloadBytes int64 `json:"payloadBytes"`
}

// FlowJSON describes one flow.
type FlowJSON struct {
	Name string `json:"name"`
	// Route lists node ids from source to destination. When omitted,
	// Source/Destination select a shortest route.
	Route  []string `json:"route,omitempty"`
	Source string   `json:"source,omitempty"`
	Dest   string   `json:"dest,omitempty"`
	// Priority is the 802.1p priority (larger = more important).
	Priority int `json:"priority"`
	// RTP selects RTP framing.
	RTP bool `json:"rtp,omitempty"`
	// Frames lists the GMF cycle.
	Frames []FrameJSON `json:"frames"`
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read decodes a scenario document.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &s, nil
}

// Write encodes the scenario as indented JSON.
func (s *Scenario) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Build materialises the scenario into a network ready for analysis or
// simulation.
func (s *Scenario) Build() (*network.Network, error) {
	topo := network.NewTopology()
	for _, h := range s.Hosts {
		if err := topo.AddHost(network.NodeID(h)); err != nil {
			return nil, err
		}
	}
	for _, r := range s.Routers {
		if err := topo.AddRouter(network.NodeID(r)); err != nil {
			return nil, err
		}
	}
	for _, sw := range s.Switches {
		params := network.DefaultSwitchParams()
		var err error
		if sw.CRoute != "" {
			if params.CRoute, err = units.ParseTime(sw.CRoute); err != nil {
				return nil, fmt.Errorf("config: switch %q: %w", sw.ID, err)
			}
		}
		if sw.CSend != "" {
			if params.CSend, err = units.ParseTime(sw.CSend); err != nil {
				return nil, fmt.Errorf("config: switch %q: %w", sw.ID, err)
			}
		}
		if sw.Processors != 0 {
			params.Processors = sw.Processors
		}
		if err := topo.AddSwitch(network.NodeID(sw.ID), params); err != nil {
			return nil, err
		}
	}
	for _, l := range s.Links {
		rate, err := units.ParseBitRate(l.Rate)
		if err != nil {
			return nil, fmt.Errorf("config: link %s-%s: %w", l.A, l.B, err)
		}
		var prop units.Time
		if l.Prop != "" {
			if prop, err = units.ParseTime(l.Prop); err != nil {
				return nil, fmt.Errorf("config: link %s-%s: %w", l.A, l.B, err)
			}
		}
		if err := topo.AddDuplexLink(network.NodeID(l.A), network.NodeID(l.B), rate, prop); err != nil {
			return nil, err
		}
	}

	nw := network.New(topo)
	for _, fj := range s.Flows {
		flow := &gmf.Flow{Name: fj.Name}
		for i, fr := range fj.Frames {
			sep, err := units.ParseTime(fr.MinSep)
			if err != nil {
				return nil, fmt.Errorf("config: flow %q frame %d: %w", fj.Name, i, err)
			}
			dl, err := units.ParseTime(fr.Deadline)
			if err != nil {
				return nil, fmt.Errorf("config: flow %q frame %d: %w", fj.Name, i, err)
			}
			var jit units.Time
			if fr.Jitter != "" {
				if jit, err = units.ParseTime(fr.Jitter); err != nil {
					return nil, fmt.Errorf("config: flow %q frame %d: %w", fj.Name, i, err)
				}
			}
			flow.Frames = append(flow.Frames, gmf.Frame{
				MinSep:      sep,
				Deadline:    dl,
				Jitter:      jit,
				PayloadBits: fr.PayloadBytes * 8,
			})
		}
		var route []network.NodeID
		if len(fj.Route) > 0 {
			for _, id := range fj.Route {
				route = append(route, network.NodeID(id))
			}
		} else {
			if fj.Source == "" || fj.Dest == "" {
				return nil, fmt.Errorf("config: flow %q needs a route or source+dest", fj.Name)
			}
			var err error
			route, err = topo.Route(network.NodeID(fj.Source), network.NodeID(fj.Dest))
			if err != nil {
				return nil, fmt.Errorf("config: flow %q: %w", fj.Name, err)
			}
		}
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:     flow,
			Route:    route,
			Priority: network.Priority(fj.Priority),
			RTP:      fj.RTP,
		}); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// Figure1Scenario returns the paper's Figure 1/2 worked example as a
// scenario document: the MPEG flow 0→4→6→3 plus VoIP cross traffic.
func Figure1Scenario() *Scenario {
	return &Scenario{
		Name:  "figure1",
		Hosts: []string{"0", "1", "2", "3"},
		Routers: []string{
			"7",
		},
		Switches: []SwitchJSON{{ID: "4"}, {ID: "5"}, {ID: "6"}},
		Links: []LinkJSON{
			{A: "0", B: "4", Rate: "10Mbit/s"},
			{A: "1", B: "4", Rate: "10Mbit/s"},
			{A: "2", B: "5", Rate: "10Mbit/s"},
			{A: "4", B: "6", Rate: "10Mbit/s"},
			{A: "5", B: "6", Rate: "10Mbit/s"},
			{A: "6", B: "3", Rate: "10Mbit/s"},
			{A: "6", B: "7", Rate: "10Mbit/s"},
		},
		Flows: []FlowJSON{
			{
				Name: "mpeg", Route: []string{"0", "4", "6", "3"}, Priority: 2,
				Frames: mpegFrames(),
			},
			{
				Name: "voip", Source: "2", Dest: "3", Priority: 3,
				Frames: []FrameJSON{{MinSep: "20ms", Deadline: "100ms", PayloadBytes: 160}},
			},
		},
	}
}

func mpegFrames() []FrameJSON {
	sizes := []int64{18000, 1500, 1500, 6000, 1500, 1500, 6000, 1500, 1500}
	out := make([]FrameJSON, len(sizes))
	for i, b := range sizes {
		out[i] = FrameJSON{MinSep: "30ms", Deadline: "300ms", Jitter: "1ms", PayloadBytes: b}
	}
	return out
}
