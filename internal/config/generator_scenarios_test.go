package config

import (
	"strings"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

// loadAndBuild loads a shipped scenario and returns both the document
// and the built network, failing the test on any error.
func loadAndBuild(t *testing.T, path string) (*Scenario, *network.Network) {
	t.Helper()
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc, nw
}

// requireNodesSubsetOf asserts that every node named by the scenario
// exists in the generator-built reference topology: the hand-written
// scenario files are down-scaled instances of the production
// generators, and their naming must track the generator's so a trace
// synthesized over the generated topology reads naturally against the
// shipped file.
func requireNodesSubsetOf(t *testing.T, sc *Scenario, ref *network.Topology) {
	t.Helper()
	for _, h := range sc.Hosts {
		if ref.Node(network.NodeID(h)) == nil {
			t.Errorf("host %q not named by the generator", h)
		}
	}
	for _, sw := range sc.Switches {
		if ref.Node(network.NodeID(sw.ID)) == nil {
			t.Errorf("switch %q not named by the generator", sw.ID)
		}
	}
}

// TestBackboneShipped pins the ISP-backbone scenario's shape: a
// two-PoP instance of network.Backbone's naming (pop<p>, agg<p>_<a>,
// h<p>_<a>_<i>), with at least one flow staying access-local and at
// least one climbing over the long-haul ring — the two closure
// regimes the generator documentation promises.
func TestBackboneShipped(t *testing.T) {
	sc, nw := loadAndBuild(t, "../../scenarios/backbone.json")
	ref, _, err := network.Backbone(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireNodesSubsetOf(t, sc, ref)
	if nw.NumFlows() != 4 {
		t.Fatalf("flows = %d, want 4", nw.NumFlows())
	}
	local, longhaul := 0, 0
	for i := 0; i < nw.NumFlows(); i++ {
		switch r := nw.Flow(i).Route; {
		case len(r) <= 3:
			local++
		case len(r) >= 6:
			longhaul++
		}
	}
	if local == 0 || longhaul == 0 {
		t.Fatalf("want both access-local and long-haul flows, got %d local / %d long-haul", local, longhaul)
	}
}

// TestFronthaulShipped pins the 5G-fronthaul scenario: network.
// Fronthaul's naming (cu<h>, du<h>_<c>, ru<h>_<c>_<r>) and the tight
// 1 ms IQ streams that distinguish fronthaul traffic from the voice
// and video mixes elsewhere in the library.
func TestFronthaulShipped(t *testing.T) {
	sc, nw := loadAndBuild(t, "../../scenarios/fronthaul.json")
	ref, _, err := network.Fronthaul(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireNodesSubsetOf(t, sc, ref)
	if nw.NumFlows() != 4 {
		t.Fatalf("flows = %d, want 4", nw.NumFlows())
	}
	tight := 0
	for i := 0; i < nw.NumFlows(); i++ {
		if nw.Flow(i).Flow.MinDeadline() <= 10*units.Millisecond {
			tight++
		}
	}
	if tight < 2 {
		t.Fatalf("only %d flows carry a <=10ms deadline; fronthaul needs its IQ streams", tight)
	}
}

// TestClosTenantShipped pins the multi-tenant Clos scenario:
// network.ClosTenant's naming (spine<s>, leaf<l>, h<l>_<i>), flow
// names carrying the synthesizer's t<k>. tenant prefix, and at least
// one east-west route per tenant crossing a spine.
func TestClosTenantShipped(t *testing.T) {
	sc, nw := loadAndBuild(t, "../../scenarios/clos-tenant.json")
	ref, _, err := network.ClosTenant(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireNodesSubsetOf(t, sc, ref)
	if nw.NumFlows() != 4 {
		t.Fatalf("flows = %d, want 4", nw.NumFlows())
	}
	tenants := map[string]bool{}
	eastWest := 0
	for i := 0; i < nw.NumFlows(); i++ {
		fs := nw.Flow(i)
		name := fs.Flow.Name
		dot := strings.IndexByte(name, '.')
		if !strings.HasPrefix(name, "t") || dot < 2 {
			t.Fatalf("flow %q lacks the t<k>. tenant prefix", name)
		}
		tenants[name[:dot]] = true
		for _, hop := range fs.Route {
			if strings.HasPrefix(string(hop), "spine") {
				eastWest++
				break
			}
		}
	}
	if len(tenants) < 2 {
		t.Fatalf("want at least 2 tenants, got %v", tenants)
	}
	if eastWest < 2 {
		t.Fatalf("only %d flows cross a spine", eastWest)
	}
}

// TestGeneratorScenariosSchedulable re-checks the three generator
// scenarios explicitly (TestShippedScenarios globs them too, but a
// rename there must not silently drop this family from coverage).
func TestGeneratorScenariosSchedulable(t *testing.T) {
	for _, name := range []string{"backbone", "fronthaul", "clos-tenant"} {
		name := name
		t.Run(name, func(t *testing.T) {
			_, nw := loadAndBuild(t, "../../scenarios/"+name+".json")
			an, err := core.NewAnalyzer(nw, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := an.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable() {
				t.Fatalf("shipped %s scenario is not schedulable", name)
			}
		})
	}
}
