package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

func TestFigure1ScenarioBuilds(t *testing.T) {
	nw, err := Figure1Scenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 2 {
		t.Fatalf("flows = %d, want 2", nw.NumFlows())
	}
	// The voip flow used source/dest resolution: 2 -> 5 -> 6 -> 3.
	voip := nw.Flow(1)
	want := []network.NodeID{"2", "5", "6", "3"}
	if len(voip.Route) != len(want) {
		t.Fatalf("route = %v", voip.Route)
	}
	for i := range want {
		if voip.Route[i] != want[i] {
			t.Fatalf("route = %v, want %v", voip.Route, want)
		}
	}
	// The whole thing is analysable.
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Analyze(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripThroughJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure1Scenario().Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "figure1" || len(loaded.Flows) != 2 {
		t.Fatalf("loaded = %+v", loaded)
	}
	nw, err := loaded.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 2 {
		t.Fatalf("flows = %d", nw.NumFlows())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	_, err := Read(strings.NewReader(`{"hosts": ["a"], "bogus": 1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	base := func() *Scenario {
		s := Figure1Scenario()
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"bad croute", func(s *Scenario) { s.Switches[0].CRoute = "fast" }},
		{"bad csend", func(s *Scenario) { s.Switches[0].CSend = "??" }},
		{"bad rate", func(s *Scenario) { s.Links[0].Rate = "warp9" }},
		{"bad prop", func(s *Scenario) { s.Links[0].Prop = "long" }},
		{"bad sep", func(s *Scenario) { s.Flows[0].Frames[0].MinSep = "x" }},
		{"bad deadline", func(s *Scenario) { s.Flows[0].Frames[0].Deadline = "x" }},
		{"bad jitter", func(s *Scenario) { s.Flows[0].Frames[0].Jitter = "x" }},
		{"no route", func(s *Scenario) { s.Flows[1].Source = ""; s.Flows[1].Dest = "" }},
		{"unroutable", func(s *Scenario) { s.Flows[1].Source = "2"; s.Flows[1].Dest = "2" }},
		{"dup host", func(s *Scenario) { s.Hosts = append(s.Hosts, "0") }},
		{"dup link", func(s *Scenario) { s.Links = append(s.Links, s.Links[0]) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base()
			c.mutate(s)
			if _, err := s.Build(); err == nil {
				t.Fatalf("%s: Build succeeded", c.name)
			}
		})
	}
}

func TestCustomSwitchParams(t *testing.T) {
	s := &Scenario{
		Hosts:    []string{"a", "b"},
		Switches: []SwitchJSON{{ID: "s", CRoute: "5us", CSend: "2us", Processors: 2}},
		Links: []LinkJSON{
			{A: "a", B: "s", Rate: "1Gbit/s", Prop: "1us"},
			{A: "s", B: "b", Rate: "1Gbit/s"},
		},
		Flows: []FlowJSON{{
			Name: "f", Source: "a", Dest: "b", Priority: 1,
			Frames: []FrameJSON{{MinSep: "10ms", Deadline: "10ms", PayloadBytes: 100}},
		}},
	}
	nw, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	node := nw.Topo.Node("s")
	if node.Switch.CRoute != 5*units.Microsecond || node.Switch.CSend != 2*units.Microsecond {
		t.Fatalf("switch params: %+v", node.Switch)
	}
	if node.Switch.Processors != 2 {
		t.Fatalf("processors = %d", node.Switch.Processors)
	}
	circ, err := nw.Topo.CIRC("s")
	if err != nil {
		t.Fatal(err)
	}
	// 2 interfaces over 2 CPUs: 1 interface each -> CIRC = 7 µs.
	if circ != 7*units.Microsecond {
		t.Fatalf("CIRC = %v", circ)
	}
}
