package config

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"gmfnet/internal/core"
)

// TestScenarioRoundTrip: Write followed by Read must reproduce every
// shipped scenario document exactly, and the rebuilt network must analyse
// to the same bounds — the loader is part of the persistence contract.
func TestScenarioRoundTrip(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped scenarios found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			orig, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.Write(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(orig, back) {
				t.Fatalf("round trip changed the document:\norig: %+v\nback: %+v", orig, back)
			}
			bounds := func(s *Scenario) *core.Result {
				nw, err := s.Build()
				if err != nil {
					t.Fatal(err)
				}
				an, err := core.NewAnalyzer(nw, core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := an.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := bounds(orig), bounds(back)
			if len(a.Flows) != len(b.Flows) {
				t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
			}
			for i := range a.Flows {
				for k := range a.Flows[i].Frames {
					if a.Flows[i].Frames[k].Response != b.Flows[i].Frames[k].Response {
						t.Fatalf("flow %d frame %d bound changed across round trip", i, k)
					}
				}
			}
		})
	}
}

// TestIndustrialRingShipped pins the new ring scenario's shape: the flows
// must actually traverse the ring (multi-switch routes), not collapse to
// single-hop paths.
func TestIndustrialRingShipped(t *testing.T) {
	sc, err := Load("../../scenarios/industrial-ring.json")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 9 {
		t.Fatalf("flows = %d, want 9", nw.NumFlows())
	}
	multi := 0
	for i := 0; i < nw.NumFlows(); i++ {
		if len(nw.Flow(i).Route) >= 4 {
			multi++
		}
	}
	if multi < 8 {
		t.Fatalf("only %d flows cross more than one switch", multi)
	}
}
