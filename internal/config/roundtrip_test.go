package config

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"gmfnet/internal/core"
)

// TestScenarioRoundTrip: Write followed by Read must reproduce every
// shipped scenario document exactly, and the rebuilt network must analyse
// to the same bounds — the loader is part of the persistence contract.
func TestScenarioRoundTrip(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped scenarios found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			orig, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.Write(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(orig, back) {
				t.Fatalf("round trip changed the document:\norig: %+v\nback: %+v", orig, back)
			}
			bounds := func(s *Scenario) *core.Result {
				nw, err := s.Build()
				if err != nil {
					t.Fatal(err)
				}
				an, err := core.NewAnalyzer(nw, core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := an.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := bounds(orig), bounds(back)
			if len(a.Flows) != len(b.Flows) {
				t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
			}
			for i := range a.Flows {
				for k := range a.Flows[i].Frames {
					if a.Flows[i].Frames[k].Response != b.Flows[i].Frames[k].Response {
						t.Fatalf("flow %d frame %d bound changed across round trip", i, k)
					}
				}
			}
		})
	}
}

// TestVideoMixShipped pins the bursty video-mix scenario's shape: six
// GMF video streams, each a nine-frame IBBPBBPBB cycle whose I frame
// dwarfs its B frames (the burstiness the GMF model exists for), with at
// least one stream crossing the ring backbone — and the whole mix must
// be schedulable, so it exercises real bounds rather than overload.
func TestVideoMixShipped(t *testing.T) {
	sc, err := Load("../../scenarios/video-mix.json")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 6 {
		t.Fatalf("flows = %d, want 6", nw.NumFlows())
	}
	crossing := 0
	for i := 0; i < nw.NumFlows(); i++ {
		fs := nw.Flow(i)
		if n := fs.Flow.N(); n != 9 {
			t.Fatalf("flow %q has %d frames, want the 9-frame GOP", fs.Flow.Name, n)
		}
		iBits, bBits := fs.Flow.Frames[0].PayloadBits, fs.Flow.Frames[1].PayloadBits
		if iBits < 4*bBits {
			t.Fatalf("flow %q not bursty: I=%d B=%d bits", fs.Flow.Name, iBits, bBits)
		}
		if len(fs.Route) >= 4 {
			crossing++
		}
	}
	if crossing == 0 {
		t.Fatal("no stream crosses the ring backbone")
	}
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable() {
		t.Fatal("shipped video mix is not schedulable")
	}
}

// TestIndustrialRingShipped pins the new ring scenario's shape: the flows
// must actually traverse the ring (multi-switch routes), not collapse to
// single-hop paths.
func TestIndustrialRingShipped(t *testing.T) {
	sc, err := Load("../../scenarios/industrial-ring.json")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 9 {
		t.Fatalf("flows = %d, want 9", nw.NumFlows())
	}
	multi := 0
	for i := 0; i < nw.NumFlows(); i++ {
		if len(nw.Flow(i).Route) >= 4 {
			multi++
		}
	}
	if multi < 8 {
		t.Fatalf("only %d flows cross more than one switch", multi)
	}
}
