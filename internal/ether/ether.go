// Package ether implements the paper's Ethernet packetisation model
// (Section 3.1): how a UDP packet of S payload bits becomes one or more
// Ethernet frames on the wire, the per-link transmission time C_i^k, and
// the maximum frame transmission time MFT (eq. 1).
//
// Wire format accounting, per the paper: an Ethernet frame carries at most
// 1500 bytes of IP payload of which 20 bytes are the IP header, leaving
// 1480 bytes (11840 bits) of UDP data. On the wire the frame additionally
// occupies a 14-byte MAC header, 4-byte CRC, 8-byte preamble + start-frame
// delimiter and a 12-byte inter-frame gap, so a maximum-size frame is
// 1538 bytes = 12304 bits.
//
// Faithfulness note (DESIGN.md F1): the paper's partial-frame formula
// prints "+304" bits of overhead, but 12304 = 11840 + 464, and 304 would
// omit the per-fragment IP header that the paper's own 1480-byte figure
// assumes. We charge rem+464 bits for a partial trailing fragment.
package ether

import (
	"fmt"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// Wire-format constants, in bytes unless suffixed Bits.
const (
	// MTUPayloadBytes is the maximum IP payload of an Ethernet frame.
	MTUPayloadBytes = 1500
	// IPHeaderBytes is the IPv4 header carried in every fragment.
	IPHeaderBytes = 20
	// UDPHeaderBytes is the UDP header carried once per UDP packet.
	UDPHeaderBytes = 8
	// RTPHeaderBytes is the RTP header size used by the paper (16 bytes;
	// RFC 3550 specifies 12 — we follow the paper, DESIGN.md F8).
	RTPHeaderBytes = 16
	// MACHeaderBytes, CRCBytes, PreambleSFDBytes and InterFrameGapBytes
	// make up the per-frame wire overhead outside the IP payload.
	MACHeaderBytes     = 14
	CRCBytes           = 4
	PreambleSFDBytes   = 8
	InterFrameGapBytes = 12

	// DataBitsPerFrame is the UDP data capacity of one Ethernet frame:
	// (1500-20) bytes = 11840 bits.
	DataBitsPerFrame = (MTUPayloadBytes - IPHeaderBytes) * 8
	// FrameOverheadBits is the non-UDP-data wire cost of one fragment:
	// MAC header + CRC + preamble/SFD + IFG + IP header = 58 B = 464 bits.
	FrameOverheadBits = (MACHeaderBytes + CRCBytes + PreambleSFDBytes + InterFrameGapBytes + IPHeaderBytes) * 8
	// MaxFrameWireBits is the on-wire size of a maximum Ethernet frame:
	// 12304 bits (eq. 1's numerator).
	MaxFrameWireBits = DataBitsPerFrame + FrameOverheadBits
)

// UDPBits returns nbits_i^k: the size of the UDP datagram (payload rounded
// up to whole bytes, plus the UDP header and, if rtp is set, the RTP
// header). This is the quantity that fragments across Ethernet frames.
func UDPBits(payloadBits int64, rtp bool) int64 {
	if payloadBits < 0 {
		panic("ether: negative payload")
	}
	n := units.CeilDiv(payloadBits, 8)*8 + UDPHeaderBytes*8
	if rtp {
		n += RTPHeaderBytes * 8
	}
	return n
}

// FrameCount returns the number of Ethernet frames the UDP datagram
// fragments into.
func FrameCount(udpBits int64) int64 {
	if udpBits <= 0 {
		panic("ether: non-positive UDP size")
	}
	return units.CeilDiv(udpBits, DataBitsPerFrame)
}

// WireBits returns the total number of bits the UDP datagram occupies on
// the wire, including all per-fragment overheads and inter-frame gaps.
func WireBits(udpBits int64) int64 {
	if udpBits <= 0 {
		panic("ether: non-positive UDP size")
	}
	full := udpBits / DataBitsPerFrame
	rem := udpBits % DataBitsPerFrame
	bits := full * MaxFrameWireBits
	if rem > 0 {
		bits += rem + FrameOverheadBits
	}
	return bits
}

// Fragments returns the on-wire size in bits of each Ethernet frame of the
// UDP datagram, in transmission order. The sum equals WireBits.
func Fragments(udpBits int64) []int64 {
	nf := FrameCount(udpBits)
	out := make([]int64, 0, nf)
	for rem := udpBits; rem > 0; rem -= DataBitsPerFrame {
		data := rem
		if data > DataBitsPerFrame {
			data = DataBitsPerFrame
		}
		out = append(out, data+FrameOverheadBits)
	}
	return out
}

// TxTime returns C_i^k on a link of the given rate: the time to transmit
// all Ethernet frames of the UDP datagram back to back.
func TxTime(udpBits int64, rate units.BitRate) units.Time {
	return units.TxTime(WireBits(udpBits), rate)
}

// MFT returns eq. (1): the Maximum-Frame-Transmission-Time of a link,
// i.e. the time a maximum-size Ethernet frame occupies the wire. It bounds
// the blocking a higher-priority frame can suffer from one lower-priority
// frame already in transmission.
func MFT(rate units.BitRate) units.Time {
	return units.TxTime(MaxFrameWireBits, rate)
}

// DemandFor builds the gmf.Demand of a flow on a link of the given rate:
// per-frame transmission times and Ethernet fragment counts.
func DemandFor(flow *gmf.Flow, rate units.BitRate, rtp bool) (*gmf.Demand, error) {
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("ether: non-positive link rate %d", rate)
	}
	n := flow.N()
	cost := make([]units.Time, n)
	count := make([]int64, n)
	for k := 0; k < n; k++ {
		ub := UDPBits(flow.Frames[k].PayloadBits, rtp)
		cost[k] = TxTime(ub, rate)
		count[k] = FrameCount(ub)
	}
	return gmf.NewDemand(flow, cost, count)
}
