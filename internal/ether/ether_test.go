package ether

import (
	"testing"
	"testing/quick"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

func TestWireConstants(t *testing.T) {
	if DataBitsPerFrame != 11840 {
		t.Errorf("DataBitsPerFrame = %d, want 11840", DataBitsPerFrame)
	}
	if MaxFrameWireBits != 12304 {
		t.Errorf("MaxFrameWireBits = %d, want 12304 (paper eq. 1)", MaxFrameWireBits)
	}
	if FrameOverheadBits != 464 {
		t.Errorf("FrameOverheadBits = %d, want 464", FrameOverheadBits)
	}
}

func TestUDPBits(t *testing.T) {
	cases := []struct {
		payload int64
		rtp     bool
		want    int64
	}{
		{8, false, 8 + 64}, // one byte + UDP header
		{1, false, 8 + 64}, // rounds up to a byte
		{9, false, 16 + 64},
		{11840 - 64, false, 11840}, // exactly one frame of data
		{8, true, 8 + 64 + 128},    // RTP adds 16 bytes
		{160 * 8, false, 1280 + 64},
	}
	for _, c := range cases {
		if got := UDPBits(c.payload, c.rtp); got != c.want {
			t.Errorf("UDPBits(%d,%v) = %d, want %d", c.payload, c.rtp, got, c.want)
		}
	}
}

func TestUDPBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UDPBits(-1) did not panic")
		}
	}()
	UDPBits(-1, false)
}

func TestFrameCount(t *testing.T) {
	cases := []struct {
		udp  int64
		want int64
	}{
		{1, 1},
		{11840, 1},
		{11841, 2},
		{23680, 2},
		{23681, 3},
		{118400, 10},
	}
	for _, c := range cases {
		if got := FrameCount(c.udp); got != c.want {
			t.Errorf("FrameCount(%d) = %d, want %d", c.udp, got, c.want)
		}
	}
}

func TestWireBits(t *testing.T) {
	cases := []struct {
		udp  int64
		want int64
	}{
		{11840, 12304},           // exactly one max frame
		{8, 8 + 464},             // tiny datagram: data + overhead
		{11841, 12304 + 1 + 464}, // one full + 1-bit fragment
		{2 * 11840, 2 * 12304},   // two full frames
		{23681, 2*12304 + 1 + 464},
	}
	for _, c := range cases {
		if got := WireBits(c.udp); got != c.want {
			t.Errorf("WireBits(%d) = %d, want %d", c.udp, got, c.want)
		}
	}
}

func TestFragments(t *testing.T) {
	fr := Fragments(11841)
	if len(fr) != 2 {
		t.Fatalf("Fragments(11841) len = %d, want 2", len(fr))
	}
	if fr[0] != 12304 || fr[1] != 1+464 {
		t.Fatalf("Fragments(11841) = %v", fr)
	}
	// Property: fragments sum to WireBits and count matches FrameCount.
	f := func(raw uint32) bool {
		udp := int64(raw%3_000_000) + 1
		fr := Fragments(udp)
		if int64(len(fr)) != FrameCount(udp) {
			return false
		}
		var sum int64
		for _, b := range fr {
			sum += b
			if b > MaxFrameWireBits || b <= FrameOverheadBits {
				return false
			}
		}
		return sum == WireBits(udp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMFT(t *testing.T) {
	// Paper's example link speed: 10^7 bit/s. MFT = 12304/10^7 s = 1230.4 µs.
	got := MFT(10 * units.Mbps)
	if got.Microseconds() != 1230.4 {
		t.Fatalf("MFT(10Mbps) = %v µs, want 1230.4", got.Microseconds())
	}
	// 1 Gbit/s: 12.304 µs.
	if got := MFT(units.Gbps); got.Microseconds() != 12.304 {
		t.Fatalf("MFT(1Gbps) = %v µs, want 12.304", got.Microseconds())
	}
}

func TestTxTimeSingleFrame(t *testing.T) {
	// A 160-byte VoIP payload: UDP bits = 1280+64 = 1344; wire = 1344+464
	// = 1808 bits; at 10 Mbit/s that is 180.8 µs.
	udp := UDPBits(160*8, false)
	got := TxTime(udp, 10*units.Mbps)
	if got.Microseconds() != 180.8 {
		t.Fatalf("TxTime = %v µs, want 180.8", got.Microseconds())
	}
}

func TestTxTimeMonotoneInPayload(t *testing.T) {
	f := func(a, b uint32) bool {
		ua := int64(a%1_000_000) + 1
		ub := int64(b%1_000_000) + 1
		if ua > ub {
			ua, ub = ub, ua
		}
		return TxTime(ua, 10*units.Mbps) <= TxTime(ub, 10*units.Mbps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandFor(t *testing.T) {
	flow := &gmf.Flow{
		Name: "video",
		Frames: []gmf.Frame{
			{MinSep: 30 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 144000},
			{MinSep: 30 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 12000},
		},
	}
	d, err := DemandFor(flow, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 {
		t.Fatalf("N = %d", d.N())
	}
	// Frame 0: UDP bits 144064 -> 13 fragments.
	if d.Count(0) != 13 {
		t.Errorf("Count(0) = %d, want 13", d.Count(0))
	}
	// Frame 1: UDP bits 12064 -> 2 fragments.
	if d.Count(1) != 2 {
		t.Errorf("Count(1) = %d, want 2", d.Count(1))
	}
	wantCost0 := units.TxTime(WireBits(144064), 10*units.Mbps)
	if d.Cost(0) != wantCost0 {
		t.Errorf("Cost(0) = %v, want %v", d.Cost(0), wantCost0)
	}
}

func TestDemandForErrors(t *testing.T) {
	flow := &gmf.Flow{Name: "bad"}
	if _, err := DemandFor(flow, 10*units.Mbps, false); err == nil {
		t.Error("invalid flow accepted")
	}
	good := &gmf.Flow{Name: "g", Frames: []gmf.Frame{{MinSep: 1, Deadline: 1, PayloadBits: 8}}}
	if _, err := DemandFor(good, 0, false); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestRTPIncreasesCost(t *testing.T) {
	flow := &gmf.Flow{Name: "g", Frames: []gmf.Frame{
		{MinSep: units.Millisecond, Deadline: units.Millisecond, PayloadBits: 800},
	}}
	plain, err := DemandFor(flow, 10*units.Mbps, false)
	if err != nil {
		t.Fatal(err)
	}
	rtp, err := DemandFor(flow, 10*units.Mbps, true)
	if err != nil {
		t.Fatal(err)
	}
	if rtp.Cost(0) <= plain.Cost(0) {
		t.Fatalf("RTP cost %v not above plain %v", rtp.Cost(0), plain.Cost(0))
	}
}

func BenchmarkDemandFor(b *testing.B) {
	flow := &gmf.Flow{
		Name: "video",
		Frames: []gmf.Frame{
			{MinSep: 30 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 144000},
			{MinSep: 30 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 12000},
			{MinSep: 30 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 48000},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DemandFor(flow, 10*units.Mbps, false); err != nil {
			b.Fatal(err)
		}
	}
}
