package exp

import (
	"fmt"
	"math/rand"
	"time"

	"gmfnet/internal/admission"
	"gmfnet/internal/core"
	"gmfnet/internal/ether"
	"gmfnet/internal/network"
	"gmfnet/internal/report"
	"gmfnet/internal/sim"
	"gmfnet/internal/sporadic"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// E1LinkParameters reproduces Figures 3 and 4: the per-frame parameters of
// the MPEG stream on link(0,4) at 10 Mbit/s, and the aggregates CSUM, NSUM,
// TSUM (eqs. 4-6) plus MFT (eq. 1).
func E1LinkParameters() ([]*report.Table, error) {
	rate := 10 * units.Mbps
	flow := trace.MPEGIBBPBBPBB("mpeg", trace.MPEGOptions{})
	d, err := ether.DemandFor(flow, rate, false)
	if err != nil {
		return nil, err
	}

	perFrame := report.NewTable(
		"E1a: per-frame parameters of the MPEG flow on link(0,4) at 10 Mbit/s",
		"k", "kind", "payload(B)", "udp bits", "eth frames", "C_ik", "T_ik", "GJ_ik")
	kinds := []string{"I+P", "B", "B", "P", "B", "B", "P", "B", "B"}
	for k := 0; k < flow.N(); k++ {
		udp := ether.UDPBits(flow.Frames[k].PayloadBits, false)
		perFrame.AddRowf(
			k, kinds[k],
			flow.Frames[k].PayloadBits/8,
			udp,
			d.Count(k),
			d.Cost(k),
			flow.Frames[k].MinSep,
			flow.Frames[k].Jitter,
		)
	}

	agg := report.NewTable("E1b: aggregates (eqs. 1, 4-6)", "quantity", "value", "paper")
	agg.AddRowf("TSUM", d.TSUM(), "270ms")
	agg.AddRowf("CSUM", d.CSUM(), "illegible in source (DESIGN.md F7)")
	agg.AddRowf("NSUM", d.NSUM(), "illegible in source (DESIGN.md F7)")
	agg.AddRowf("MFT(link(0,4))", ether.MFT(rate), "12304 bits / 10^7 bit/s = 1230.4µs")
	agg.AddRowf("utilisation", fmt.Sprintf("%.4f", d.Utilization()), "")
	return []*report.Table{perFrame, agg}, nil
}

// E2CIRC reproduces the Section 3.3 example: a task is serviced once every
// CIRC(N) = NINTERFACES(N) × (CROUTE+CSEND); with the Click measurements
// and 4 interfaces that is 14.8 µs.
func E2CIRC() ([]*report.Table, error) {
	t := report.NewTable(
		"E2: CIRC(N) vs number of interfaces (CROUTE=2.7µs, CSEND=1.0µs, 1 CPU)",
		"interfaces", "CIRC", "paper")
	for nif := 2; nif <= 8; nif++ {
		topo := network.NewTopology()
		if err := topo.AddSwitch("s", network.DefaultSwitchParams()); err != nil {
			return nil, err
		}
		for i := 0; i < nif; i++ {
			id := network.NodeID(fmt.Sprintf("h%d", i))
			if err := topo.AddHost(id); err != nil {
				return nil, err
			}
			if err := topo.AddDuplexLink("s", id, units.Gbps, 0); err != nil {
				return nil, err
			}
		}
		circ, err := topo.CIRC("s")
		if err != nil {
			return nil, err
		}
		note := ""
		if nif == 4 {
			note = "14.8µs (Fig. 5 example)"
		}
		t.AddRowf(nif, circ, note)
	}
	return []*report.Table{t}, nil
}

// E3EndToEnd reproduces Figure 6 on the Figure 1/2 network: the per-stage
// decomposition of the MPEG flow's end-to-end bound with cross traffic.
func E3EndToEnd() ([]*report.Table, error) {
	nw, err := figure1Scenario(10 * units.Mbps)
	if err != nil {
		return nil, err
	}
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		return nil, err
	}
	res, err := an.Analyze()
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("exp: E3 analysis did not converge")
	}

	stages := report.NewTable(
		"E3a: per-stage response-time bounds of the MPEG flow (frame 0 = I+P), route 0→4→6→3",
		"stage", "entry jitter", "bound")
	mp := res.Flow(0)
	for _, st := range mp.Frames[0].Stages {
		stages.AddRowf(st.Resource, st.EntryJitter, st.Response)
	}

	frames := report.NewTable(
		"E3b: end-to-end bounds per flow and frame (holistic fixpoint)",
		"flow", "frame", "bound", "deadline", "meets")
	for i := range res.Flows {
		fr := res.Flow(i)
		for k := range fr.Frames {
			frames.AddRowf(fr.Name, k, fr.Frames[k].Response, fr.Frames[k].Deadline, fr.Frames[k].Meets())
		}
	}
	meta := report.NewTable("E3c: analysis metadata", "quantity", "value")
	meta.AddRowf("holistic iterations", res.Iterations)
	meta.AddRowf("schedulable", res.Schedulable())
	return []*report.Table{stages, frames, meta}, nil
}

// E4Holistic measures the holistic iteration count and verdicts as the
// number of random flows grows on the Figure 1 network.
func E4Holistic() ([]*report.Table, error) {
	t := report.NewTable(
		"E4: holistic convergence vs workload size (Figure 1 at 100 Mbit/s, random GMF flows)",
		"flows", "iterations", "converged", "schedulable")
	hosts := []network.NodeID{"0", "1", "2", "3"}
	for _, n := range []int{2, 5, 10, 20, 40} {
		rng := rand.New(rand.NewSource(int64(n)))
		topo, err := network.Figure1(network.Figure1Options{Rate: 100 * units.Mbps})
		if err != nil {
			return nil, err
		}
		nw := network.New(topo)
		for f := 0; f < n; f++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			route, err := topo.Route(src, dst)
			if err != nil {
				return nil, err
			}
			flow := trace.Random(fmt.Sprintf("r%d", f), rng, trace.RandomOptions{
				MaxPayloadBytes: 8000,
				DeadlineFactor:  3,
				MaxJitter:       units.Millisecond,
			})
			if _, err := nw.AddFlow(&network.FlowSpec{
				Flow: flow, Route: route,
				Priority: network.Priority(rng.Intn(4)),
			}); err != nil {
				return nil, err
			}
		}
		an, err := core.NewAnalyzer(nw, core.Config{})
		if err != nil {
			return nil, err
		}
		res, err := an.Analyze()
		if err != nil {
			return nil, err
		}
		t.AddRowf(n, res.Iterations, res.Converged, res.Schedulable())
	}
	return []*report.Table{t}, nil
}

// E5AnalysisVsSim validates soundness: on the Figure 1 scenario the
// analytic bound must dominate the adversarial simulator's worst observed
// response for every flow and frame.
func E5AnalysisVsSim() ([]*report.Table, error) {
	nw, err := figure1Scenario(10 * units.Mbps)
	if err != nil {
		return nil, err
	}
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		return nil, err
	}
	res, err := an.Analyze()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(nw, sim.Config{Duration: 3 * units.Second})
	if err != nil {
		return nil, err
	}
	obs, err := s.Run()
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		"E5: analytic bound vs simulated worst case (3 s adversarial run)",
		"flow", "frame", "observed max", "bound", "obs/bound", "violation")
	violations := 0
	for i := range obs.Flows {
		for k := range obs.Flows[i].PerFrame {
			o := obs.Flows[i].PerFrame[k].MaxResponse
			b := res.Flow(i).Frames[k].Response
			viol := o > b
			if viol {
				violations++
			}
			t.AddRowf(obs.Flows[i].Name, k, o, b, ratio(o, b), viol)
		}
	}
	meta := report.NewTable("E5b: summary", "quantity", "value")
	meta.AddRowf("events simulated", obs.Events)
	meta.AddRowf("violations", violations)
	if violations > 0 {
		return []*report.Table{t, meta}, fmt.Errorf("exp: E5 found %d bound violations", violations)
	}
	return []*report.Table{t, meta}, nil
}

// E6Admission compares admission counts under the GMF analysis and the
// sporadic collapse as identical VBR video requests arrive.
func E6Admission() ([]*report.Table, error) {
	mkFlow := func(i int) *network.FlowSpec {
		// VBR video: a large key frame then five small deltas.
		f := trace.MPEGIBBPBBPBB(fmt.Sprintf("vbr%d", i), trace.MPEGOptions{
			IPBytes: 24000, PBytes: 3000, BBytes: 800,
			Deadline: 250 * units.Millisecond,
		})
		routes := [][]network.NodeID{
			{"0", "4", "6", "3"},
			{"1", "4", "6", "3"},
			{"2", "5", "6", "3"},
		}
		return &network.FlowSpec{Flow: f, Route: routes[i%len(routes)], Priority: 1}
	}

	run := func(useSporadic bool) (int, error) {
		topo, err := network.Figure1(network.Figure1Options{Rate: 100 * units.Mbps})
		if err != nil {
			return 0, err
		}
		ctl, err := admission.NewController(network.New(topo), core.Config{})
		if err != nil {
			return 0, err
		}
		for i := 0; i < 48; i++ {
			fs := mkFlow(i)
			if useSporadic {
				fs = &network.FlowSpec{
					Flow:     fs.Flow.Sporadic(),
					Route:    fs.Route,
					Priority: fs.Priority,
				}
			}
			d, err := ctl.Request(fs)
			if err != nil {
				return 0, err
			}
			if !d.Admitted {
				break
			}
		}
		return ctl.Admitted(), nil
	}

	gmfN, err := run(false)
	if err != nil {
		return nil, err
	}
	spoN, err := run(true)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"E6: flows admitted before first rejection (identical VBR requests, Figure 1 at 100 Mbit/s)",
		"model", "admitted")
	t.AddRowf("GMF (paper)", gmfN)
	t.AddRowf("sporadic collapse", spoN)
	if gmfN <= spoN {
		return []*report.Table{t}, fmt.Errorf("exp: E6 expected GMF (%d) to admit more than sporadic (%d)", gmfN, spoN)
	}
	return []*report.Table{t}, nil
}

// E7Scaling reports the bound of a flow crossing 1..8 switches and the
// analysis wall time.
func E7Scaling() ([]*report.Table, error) {
	t := report.NewTable(
		"E7: end-to-end bound and analysis runtime vs route length (100 Mbit/s chain)",
		"switches", "stages", "worst bound", "iterations", "analysis time")
	for _, hops := range []int{1, 2, 4, 6, 8} {
		nw, mainIdx, err := chainScenario(hops, 100*units.Mbps)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		an, err := core.NewAnalyzer(nw, core.Config{})
		if err != nil {
			return nil, err
		}
		res, err := an.Analyze()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if !res.Converged {
			return nil, fmt.Errorf("exp: E7 with %d switches did not converge", hops)
		}
		fr := res.Flow(mainIdx)
		t.AddRowf(hops, len(fr.Frames[0].Stages), fr.MaxResponse(), res.Iterations, elapsed.Round(time.Microsecond))
	}
	return []*report.Table{t}, nil
}

// E8SwitchSizing reproduces the Conclusions example: CIRC of a 48-port
// switch as the processor count grows, against the 1 Gbit/s MFT it must
// keep up with. With 16 processors CIRC = 11.1 µs < MFT = 12.304 µs.
func E8SwitchSizing() ([]*report.Table, error) {
	mft := ether.MFT(units.Gbps)
	t := report.NewTable(
		"E8: 48-port software switch sizing (Click costs), line rate 1 Gbit/s",
		"processors", "interfaces/CPU", "CIRC", "CIRC <= MFT(1G)=12.304µs", "paper")
	for _, m := range []int{1, 2, 4, 8, 16} {
		p := network.DefaultSwitchParams()
		p.Processors = m
		topo := network.NewTopology()
		if err := topo.AddSwitch("big", p); err != nil {
			return nil, err
		}
		for i := 0; i < 48; i++ {
			id := network.NodeID(fmt.Sprintf("h%02d", i))
			if err := topo.AddHost(id); err != nil {
				return nil, err
			}
			if err := topo.AddDuplexLink("big", id, units.Gbps, 0); err != nil {
				return nil, err
			}
		}
		circ, err := topo.CIRC("big")
		if err != nil {
			return nil, err
		}
		note := ""
		if m == 16 {
			note = "11.1µs, 'comfortably 1 Gbit/s'"
		}
		t.AddRowf(m, units.CeilDiv(48, int64(m)), circ, circ <= mft, note)
	}
	return []*report.Table{t}, nil
}

// E9Ablation compares the two formula variants (DESIGN.md F3-F5) against
// each other and against the simulator on the Figure 1 scenario.
func E9Ablation() ([]*report.Table, error) {
	nw, err := figure1Scenario(10 * units.Mbps)
	if err != nil {
		return nil, err
	}
	bound := func(mode core.Mode) (*core.Result, error) {
		an, err := core.NewAnalyzer(nw, core.Config{Mode: mode})
		if err != nil {
			return nil, err
		}
		return an.Analyze()
	}
	sound, err := bound(core.ModeSound)
	if err != nil {
		return nil, err
	}
	paper, err := bound(core.ModePaper)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(nw, sim.Config{Duration: 3 * units.Second})
	if err != nil {
		return nil, err
	}
	obs, err := s.Run()
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		"E9: ModeSound vs ModePaper bounds vs simulation (worst frame per flow)",
		"flow", "observed max", "paper bound", "sound bound", "sound/paper", "paper violated")
	for i := range obs.Flows {
		o := obs.Flows[i].MaxResponse()
		pb := paper.Flow(i).MaxResponse()
		sb := sound.Flow(i).MaxResponse()
		t.AddRowf(obs.Flows[i].Name, o, pb, sb, ratio(sb, pb), o > pb)
	}
	return []*report.Table{t}, nil
}

// CompareModels exposes the sporadic comparison for reuse by examples.
func CompareModels(nw *network.Network) (*sporadic.Comparison, error) {
	return sporadic.Compare(nw, core.Config{})
}
