package exp

import (
	"fmt"

	"gmfnet/internal/report"
	"gmfnet/internal/sim"
	"gmfnet/internal/units"
)

// E13Buffers measures queue-occupancy high-water marks on the Figure 1
// scenario: the buffer sizes (in Ethernet frames) each FIFO and priority
// queue would need to never drop under the adversarial release pattern.
// The paper assumes lossless queues; this experiment quantifies how big
// "lossless" has to be.
func E13Buffers() ([]*report.Table, error) {
	nw, err := figure1Scenario(10 * units.Mbps)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(nw, sim.Config{Duration: 3 * units.Second})
	if err != nil {
		return nil, err
	}
	obs, err := s.Run()
	if err != nil {
		return nil, err
	}
	if len(obs.Backlogs) == 0 {
		return nil, fmt.Errorf("exp: E13 recorded no backlogs")
	}
	t := report.NewTable(
		"E13: queue high-water marks, 3 s adversarial run (Ethernet frames)",
		"queue kind", "node", "peer", "max frames")
	for _, bl := range obs.Backlogs {
		t.AddRowf(bl.Queue.Kind, bl.Queue.Node, bl.Queue.Peer, bl.MaxFrames)
	}
	return []*report.Table{t}, nil
}
