// Package exp implements the reproducible experiments E1-E9 indexed in
// DESIGN.md. Each experiment regenerates one of the paper's worked
// examples or claims as a report.Table; the tables are printed by
// cmd/gmfnet-experiments and exercised by the root benchmarks, and their
// paper-vs-measured comparison is recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sort"

	"gmfnet/internal/report"
)

// Experiment is one regenerable experiment.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title describes what is reproduced.
	Title string
	// Run produces the experiment's tables.
	Run func() ([]*report.Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Fig. 3/4 — MPEG flow parameters on link(0,4) at 10 Mbit/s", Run: E1LinkParameters},
		{ID: "E2", Title: "Section 3.3 — CIRC(N) and the 14.8 µs example", Run: E2CIRC},
		{ID: "E3", Title: "Fig. 1/2/6 — end-to-end bound of the MPEG flow with cross traffic", Run: E3EndToEnd},
		{ID: "E4", Title: "Section 3.5 — holistic iteration convergence", Run: E4Holistic},
		{ID: "E5", Title: "Soundness — analysis bound vs simulated worst case", Run: E5AnalysisVsSim},
		{ID: "E6", Title: "Motivation — GMF vs sporadic admission as load grows", Run: E6Admission},
		{ID: "E7", Title: "Multihop scaling — bound growth with route length", Run: E7Scaling},
		{ID: "E8", Title: "Conclusions — multiprocessor switch sizing (48 ports)", Run: E8SwitchSizing},
		{ID: "E9", Title: "Ablation — ModePaper vs ModeSound bounds against simulation", Run: E9Ablation},
		{ID: "E10", Title: "Extension — response-time distribution vs worst-case bound", Run: E10Distribution},
		{ID: "E11", Title: "Extension — breakdown load, bottlenecks and priority policies", Run: E11Breakdown},
		{ID: "E12", Title: "Baseline — paper analysis vs idealized EDF (GMF ref. [6]) on one link", Run: E12EDFGap},
		{ID: "E13", Title: "Extension — buffer sizing: queue high-water marks under adversarial load", Run: E13Buffers},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}
