package exp

import (
	"fmt"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// paperMPEG returns the Figure 3 flow with the defaults documented in
// DESIGN.md F7.
func paperMPEG(name string) *network.FlowSpec {
	return &network.FlowSpec{
		Flow:     trace.MPEGIBBPBBPBB(name, trace.MPEGOptions{Deadline: 300 * units.Millisecond}),
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	}
}

// figure1Scenario is the Figure 1/2 network with the MPEG flow of
// Figure 3 plus VoIP and CBR cross traffic, at the given link rate.
func figure1Scenario(rate units.BitRate) (*network.Network, error) {
	topo, err := network.Figure1(network.Figure1Options{Rate: rate})
	if err != nil {
		return nil, err
	}
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		paperMPEG("mpeg"),
		{
			Flow:     trace.VoIP("voip", trace.VoIPOptions{Deadline: 100 * units.Millisecond, Jitter: 500 * units.Microsecond}),
			Route:    []network.NodeID{"2", "5", "6", "3"},
			Priority: 3,
		},
		{
			Flow:     trace.CBRVideo("cbr", 4000, 40*units.Millisecond, 300*units.Millisecond),
			Route:    []network.NodeID{"1", "4", "6", "3"},
			Priority: 1,
		},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// chainScenario builds a linear topology hA - s1 - … - sH - hB with a main
// flow end to end and one cross flow entering at each internal link, used
// by the scaling experiment.
func chainScenario(hops int, rate units.BitRate) (*network.Network, int, error) {
	if hops < 1 {
		return nil, 0, fmt.Errorf("exp: need at least one switch, got %d", hops)
	}
	topo := network.NewTopology()
	if err := topo.AddHost("hA"); err != nil {
		return nil, 0, err
	}
	if err := topo.AddHost("hB"); err != nil {
		return nil, 0, err
	}
	var spine []network.NodeID
	for i := 1; i <= hops; i++ {
		id := network.NodeID(fmt.Sprintf("s%d", i))
		if err := topo.AddSwitch(id, network.DefaultSwitchParams()); err != nil {
			return nil, 0, err
		}
		spine = append(spine, id)
	}
	links := [][2]network.NodeID{{"hA", spine[0]}, {spine[len(spine)-1], "hB"}}
	for i := 0; i+1 < len(spine); i++ {
		links = append(links, [2]network.NodeID{spine[i], spine[i+1]})
	}
	// One cross host per switch pair, injecting traffic over the internal
	// links.
	for i := 0; i+1 < len(spine); i++ {
		src := network.NodeID(fmt.Sprintf("c%d", i+1))
		dst := network.NodeID(fmt.Sprintf("d%d", i+2))
		if err := topo.AddHost(src); err != nil {
			return nil, 0, err
		}
		if err := topo.AddHost(dst); err != nil {
			return nil, 0, err
		}
		links = append(links, [2]network.NodeID{src, spine[i]}, [2]network.NodeID{spine[i+1], dst})
	}
	for _, l := range links {
		if err := topo.AddDuplexLink(l[0], l[1], rate, 0); err != nil {
			return nil, 0, err
		}
	}

	nw := network.New(topo)
	mainRoute := append([]network.NodeID{"hA"}, append(spine, "hB")...)
	mainIdx, err := nw.AddFlow(&network.FlowSpec{
		Flow:     trace.MPEGIBBPBBPBB("main", trace.MPEGOptions{Deadline: units.Second}),
		Route:    mainRoute,
		Priority: 2,
	})
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i+1 < len(spine); i++ {
		cross := &network.FlowSpec{
			Flow: trace.CBRVideo(fmt.Sprintf("cross%d", i+1), 4000, 40*units.Millisecond, units.Second),
			Route: []network.NodeID{
				network.NodeID(fmt.Sprintf("c%d", i+1)),
				spine[i], spine[i+1],
				network.NodeID(fmt.Sprintf("d%d", i+2)),
			},
			Priority: 3,
		}
		if _, err := nw.AddFlow(cross); err != nil {
			return nil, 0, err
		}
	}
	return nw, mainIdx, nil
}

// ratio formats a/b as a fixed-point percentage string.
func ratio(a, b units.Time) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}
