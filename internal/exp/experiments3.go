package exp

import (
	"fmt"
	"math/rand"

	"gmfnet/internal/core"
	"gmfnet/internal/gmf"
	"gmfnet/internal/gmfsched"
	"gmfnet/internal/network"
	"gmfnet/internal/report"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// E12EDFGap compares the paper's analysis against the idealized
// preemptive-EDF feasibility test of the original GMF paper (reference
// [6]) on a single link: how many random workloads each admits per
// utilisation band. EDF is optimal on one resource, so its column upper
// bounds any queue discipline; the gap is the price of the implementable
// FIFO first hop plus analysis pessimism.
func E12EDFGap() ([]*report.Table, error) {
	const rate = 10 * units.Mbps
	const setsPerBand = 40

	t := report.NewTable(
		"E12: single-link admission, paper analysis vs idealized EDF (random GMF sets, 10 Mbit/s)",
		"target util", "sets", "paper admits", "EDF admits", "EDF-only")
	for _, target := range []float64{0.3, 0.5, 0.7, 0.85} {
		var paperOK, edfOK, edfOnly int
		for set := 0; set < setsPerBand; set++ {
			rng := rand.New(rand.NewSource(int64(target*1000) + int64(set)))
			flows, err := randomFlowSet(rng, target, rate)
			if err != nil {
				return nil, err
			}
			p, err := paperAdmitsSingleLink(flows, rate)
			if err != nil {
				return nil, err
			}
			tasks := make([]*gmfsched.Task, len(flows))
			for i, f := range flows {
				if tasks[i], err = gmfsched.NewTask(f, rate, false); err != nil {
					return nil, err
				}
			}
			e := gmfsched.EDFFeasible(tasks).Feasible
			if p && !e {
				return nil, fmt.Errorf("exp: E12 optimality violated: paper admits but EDF rejects")
			}
			if p {
				paperOK++
			}
			if e {
				edfOK++
			}
			if e && !p {
				edfOnly++
			}
		}
		t.AddRowf(fmt.Sprintf("%.2f", target), setsPerBand, paperOK, edfOK, edfOnly)
	}
	return []*report.Table{t}, nil
}

// randomFlowSet draws GMF flows until the target utilisation on the link
// is reached.
func randomFlowSet(rng *rand.Rand, targetUtil float64, rate units.BitRate) ([]*gmf.Flow, error) {
	var flows []*gmf.Flow
	var util float64
	for i := 0; util < targetUtil && i < 64; i++ {
		// Tight deadlines (a fraction of one cycle) so the idealized EDF
		// column is informative rather than trivially feasible.
		f := trace.Random(fmt.Sprintf("r%d", i), rng, trace.RandomOptions{
			MaxFrames:       5,
			MaxPayloadBytes: 12000,
			DeadlineFactor:  0.2 + 0.6*rng.Float64(),
		})
		task, err := gmfsched.NewTask(f, rate, false)
		if err != nil {
			return nil, err
		}
		if util+task.Utilization() > targetUtil+0.03 {
			continue
		}
		util += task.Utilization()
		flows = append(flows, f)
	}
	return flows, nil
}

// paperAdmitsSingleLink runs the paper's holistic analysis on a
// direct-link network carrying the flows.
func paperAdmitsSingleLink(flows []*gmf.Flow, rate units.BitRate) (bool, error) {
	topo := network.NewTopology()
	if err := topo.AddHost("h1"); err != nil {
		return false, err
	}
	if err := topo.AddHost("h2"); err != nil {
		return false, err
	}
	if err := topo.AddDuplexLink("h1", "h2", rate, 0); err != nil {
		return false, err
	}
	nw := network.New(topo)
	for _, f := range flows {
		if _, err := nw.AddFlow(&network.FlowSpec{
			Flow:  f,
			Route: []network.NodeID{"h1", "h2"},
		}); err != nil {
			return false, err
		}
	}
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		return false, err
	}
	res, err := an.Analyze()
	if err != nil {
		return false, err
	}
	return res.Schedulable(), nil
}
