package exp

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("%s table %q is empty", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "E1" {
		t.Fatalf("ID = %q", e.ID)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestE1ContainsPaperValues(t *testing.T) {
	tables, err := E1LinkParameters()
	if err != nil {
		t.Fatal(err)
	}
	agg := tables[1].String()
	if !strings.Contains(agg, "270ms") {
		t.Errorf("E1b missing TSUM=270ms:\n%s", agg)
	}
	if !strings.Contains(agg, "1230.4µs") {
		t.Errorf("E1b missing MFT=1230.4µs:\n%s", agg)
	}
}

func TestE2ContainsCIRCExample(t *testing.T) {
	tables, err := E2CIRC()
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	if !strings.Contains(s, "14.8µs") {
		t.Errorf("E2 missing CIRC=14.8µs:\n%s", s)
	}
}

func TestE8ContainsSizingExample(t *testing.T) {
	tables, err := E8SwitchSizing()
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	if !strings.Contains(s, "11.1µs") {
		t.Errorf("E8 missing CIRC=11.1µs:\n%s", s)
	}
	// 16 CPUs must sustain 1 Gbit/s: the row reads "16 3 11.1µs true".
	found := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "16") && strings.Contains(line, "true") {
			found = true
		}
	}
	if !found {
		t.Errorf("E8: 16-CPU row not marked sustainable:\n%s", s)
	}
}

func TestChainScenarioShape(t *testing.T) {
	nw, mainIdx, err := chainScenario(3, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	fs := nw.Flow(mainIdx)
	if len(fs.Route) != 5 { // hA, s1, s2, s3, hB
		t.Fatalf("route = %v", fs.Route)
	}
	// Cross flows: one per internal link (hops-1).
	if nw.NumFlows() != 1+2 {
		t.Fatalf("flows = %d, want 3", nw.NumFlows())
	}
	if _, _, err := chainScenario(0, 100_000_000); err == nil {
		t.Fatal("zero hops accepted")
	}
}
