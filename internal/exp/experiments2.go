package exp

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/prio"
	"gmfnet/internal/report"
	"gmfnet/internal/sensitivity"
	"gmfnet/internal/sim"
	"gmfnet/internal/units"
)

// E10Distribution records the simulated response-time distribution of the
// Figure 1 scenario against the analytic bound: the bound caps the tail,
// and the typical (median) latency sits far below it — the cost of a
// worst-case guarantee.
func E10Distribution() ([]*report.Table, error) {
	nw, err := figure1Scenario(10 * units.Mbps)
	if err != nil {
		return nil, err
	}
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		return nil, err
	}
	bounds, err := an.Analyze()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(nw, sim.Config{
		Duration:        5 * units.Second,
		KeepSamples:     true,
		Jitter:          sim.JitterUniform,
		SeparationSlack: 0.1,
		Seed:            17,
	})
	if err != nil {
		return nil, err
	}
	obs, err := s.Run()
	if err != nil {
		return nil, err
	}
	if !obs.Conservation.Balanced() {
		return nil, fmt.Errorf("exp: E10 conservation violated: %+v", obs.Conservation)
	}

	t := report.NewTable(
		"E10: response-time distribution vs bound (5 s lightly randomised run)",
		"flow", "frame", "samples", "p50", "p99", "max", "bound")
	for i := range obs.Flows {
		for k := range obs.Flows[i].PerFrame {
			st := &obs.Flows[i].PerFrame[k]
			if st.Samples() == 0 {
				continue
			}
			t.AddRowf(obs.Flows[i].Name, k, st.Samples(),
				st.Percentile(0.5), st.Percentile(0.99), st.MaxResponse,
				bounds.Flow(i).Frames[k].Response)
		}
	}
	return []*report.Table{t}, nil
}

// E11Breakdown measures operational headroom: the largest payload scaling
// of the Figure 1 scenario that stays schedulable, per link rate, plus the
// utilisation bottleneck and a feasibility comparison of the three
// priority-assignment policies (as configured / deadline-monotonic /
// Audsley OPA) at the breakdown load.
func E11Breakdown() ([]*report.Table, error) {
	t := report.NewTable(
		"E11a: breakdown payload scale of the Figure 1 scenario",
		"link rate", "breakdown scale", "bottleneck", "bottleneck util at scale 1")
	for _, rate := range []units.BitRate{10 * units.Mbps, 100 * units.Mbps} {
		nw, err := figure1Scenario(rate)
		if err != nil {
			return nil, err
		}
		bd, err := sensitivity.FindBreakdown(nw, sensitivity.Options{})
		if err != nil {
			return nil, err
		}
		top, ok, err := core.Bottleneck(nw)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("exp: E11 found no bottleneck")
		}
		scale := fmt.Sprintf("%.2f", bd.Scale)
		if bd.AtMaxScale {
			scale = ">= " + scale
		}
		t.AddRowf(rate, scale, top.Resource, fmt.Sprintf("%.4f", top.Utilization))
	}

	// Priority policies at 10 Mbit/s, workload scaled to 95% of breakdown.
	nw, err := figure1Scenario(10 * units.Mbps)
	if err != nil {
		return nil, err
	}
	bd, err := sensitivity.FindBreakdown(nw, sensitivity.Options{})
	if err != nil {
		return nil, err
	}
	t2 := report.NewTable(
		fmt.Sprintf("E11b: priority policies near the load limit (scale %.2f)", bd.Scale*0.95),
		"policy", "schedulable")
	stressed, err := scaledFigure1(10*units.Mbps, bd.Scale*0.95)
	if err != nil {
		return nil, err
	}
	verdict := func() (bool, error) {
		an, err := core.NewAnalyzer(stressed, core.Config{})
		if err != nil {
			return false, err
		}
		res, err := an.Analyze()
		if err != nil {
			return false, err
		}
		return res.Schedulable(), nil
	}
	asConfigured, err := verdict()
	if err != nil {
		return nil, err
	}
	t2.AddRowf("as configured", asConfigured)
	stressed.AssignPrioritiesDM()
	dm, err := verdict()
	if err != nil {
		return nil, err
	}
	t2.AddRowf("deadline monotonic", dm)
	opaOK, err := prio.Assign(stressed, core.Config{})
	if err != nil {
		return nil, err
	}
	t2.AddRowf("Audsley OPA", opaOK)
	return []*report.Table{t, t2}, nil
}

// scaledFigure1 rebuilds the Figure 1 scenario with payloads multiplied by
// scale.
func scaledFigure1(rate units.BitRate, scale float64) (*network.Network, error) {
	nw, err := figure1Scenario(rate)
	if err != nil {
		return nil, err
	}
	for _, fs := range nw.Flows() {
		for k := range fs.Flow.Frames {
			fs.Flow.Frames[k].PayloadBits = int64(float64(fs.Flow.Frames[k].PayloadBits)*scale + 0.999999)
		}
	}
	return nw, nil
}
