// Package prio searches for feasible 802.1p priority assignments using
// Audsley's optimal-priority-assignment (OPA) strategy on top of the
// holistic analysis.
//
// The paper assumes the operator fixes each flow's priority. OPA assigns
// priorities bottom-up: for each level starting from the lowest, it looks
// for a flow that stays schedulable when given that level while every
// still-unassigned flow is (pessimistically) placed above it. For
// single-resource static-priority scheduling OPA is optimal; under
// holistic multi-resource analysis with jitter inheritance the
// OPA-compatibility conditions do not strictly hold, so this is a
// well-motivated heuristic rather than an optimal procedure — it is
// guaranteed sound (an assignment is only reported after the full
// holistic analysis accepts it) but may fail to find an existing feasible
// assignment.
package prio

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
)

// Assign searches for a feasible priority assignment and applies it to
// the network's flows (distinct levels 0..n-1, larger = more important).
// It returns true when the found assignment passes the holistic analysis.
// On failure the original priorities are restored.
func Assign(nw *network.Network, cfg core.Config) (bool, error) {
	if nw == nil {
		return false, fmt.Errorf("prio: nil network")
	}
	n := nw.NumFlows()
	if n == 0 {
		return true, nil
	}
	saved := make([]network.Priority, n)
	for i, fs := range nw.Flows() {
		saved[i] = fs.Priority
	}
	restore := func() {
		for i, fs := range nw.Flows() {
			fs.Priority = saved[i]
		}
	}

	assigned := make([]bool, n)
	// ceiling is a priority strictly above every level we will hand out;
	// unassigned flows are parked there while probing.
	ceiling := network.Priority(n)
	for i, fs := range nw.Flows() {
		_ = i
		fs.Priority = ceiling
	}

	for level := network.Priority(0); int(level) < n; level++ {
		placed := false
		for cand := 0; cand < n && !placed; cand++ {
			if assigned[cand] {
				continue
			}
			nw.Flow(cand).Priority = level
			ok, err := flowFeasible(nw, cand, cfg)
			if err != nil {
				restore()
				return false, err
			}
			if ok {
				assigned[cand] = true
				placed = true
				break
			}
			nw.Flow(cand).Priority = ceiling
		}
		if !placed {
			restore()
			return false, nil
		}
	}

	// Final check of the complete assignment (the probe runs analysed
	// partially assigned networks).
	an, err := core.NewAnalyzer(nw, cfg)
	if err != nil {
		restore()
		return false, err
	}
	res, err := an.Analyze()
	if err != nil {
		restore()
		return false, err
	}
	if !res.Schedulable() {
		restore()
		return false, nil
	}
	return true, nil
}

// flowFeasible reports whether the candidate flow is schedulable under
// the current (partial) priority assignment.
func flowFeasible(nw *network.Network, cand int, cfg core.Config) (bool, error) {
	an, err := core.NewAnalyzer(nw, cfg)
	if err != nil {
		return false, err
	}
	res, err := an.Analyze()
	if err != nil {
		return false, err
	}
	// Unconverged jitters would make the candidate's bound unreliable.
	if !res.Converged {
		return false, nil
	}
	// During probing only the candidate's verdict matters; flows parked
	// at the ceiling may legitimately miss deadlines at this stage.
	fr := res.Flow(cand)
	if fr.Err != nil {
		return false, nil
	}
	if len(fr.Frames) == 0 {
		// The candidate was never analysed because an earlier flow's
		// stage diverged before reaching it; treat as infeasible probe.
		return false, nil
	}
	return fr.Schedulable(), nil
}
