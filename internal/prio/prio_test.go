package prio

import (
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

const ms = units.Millisecond

func mixedNet(t *testing.T, rate units.BitRate) *network.Network {
	t.Helper()
	topo := network.MustFigure1(network.Figure1Options{Rate: rate})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{
			Flow:  trace.MPEGIBBPBBPBB("video", trace.MPEGOptions{Deadline: 300 * ms}),
			Route: []network.NodeID{"0", "4", "6", "3"},
		},
		{
			Flow:  trace.VoIP("voip", trace.VoIPOptions{Deadline: 30 * ms}),
			Route: []network.NodeID{"1", "4", "6", "3"},
		},
		{
			Flow:  trace.CBRVideo("cbr", 4000, 40*ms, 400*ms),
			Route: []network.NodeID{"2", "5", "6", "3"},
		},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestAssignNil(t *testing.T) {
	if _, err := Assign(nil, core.Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestAssignEmpty(t *testing.T) {
	nw := network.New(network.MustFigure1(network.Figure1Options{}))
	ok, err := Assign(nw, core.Config{})
	if err != nil || !ok {
		t.Fatalf("empty network: ok=%v err=%v", ok, err)
	}
}

func TestAssignFindsFeasibleAssignment(t *testing.T) {
	nw := mixedNet(t, 10*units.Mbps)
	ok, err := Assign(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("OPA failed on a feasible scenario")
	}
	// Distinct levels 0..n-1.
	seen := map[network.Priority]bool{}
	for _, fs := range nw.Flows() {
		if fs.Priority < 0 || int(fs.Priority) >= nw.NumFlows() {
			t.Fatalf("priority %d out of range", fs.Priority)
		}
		if seen[fs.Priority] {
			t.Fatalf("duplicate priority %d", fs.Priority)
		}
		seen[fs.Priority] = true
	}
	// The assignment really is schedulable.
	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable() {
		t.Fatal("returned assignment not schedulable")
	}
}

func TestAssignPrefersTightDeadlineHigh(t *testing.T) {
	// With a 30 ms VoIP deadline competing against multi-ms video bursts
	// on shared links, the feasible assignments put voip above video;
	// Audsley must discover one of them.
	nw := mixedNet(t, 10*units.Mbps)
	ok, err := Assign(nw, core.Config{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	var video, voip network.Priority
	for _, fs := range nw.Flows() {
		switch fs.Flow.Name {
		case "video":
			video = fs.Priority
		case "voip":
			voip = fs.Priority
		}
	}
	if voip < video {
		t.Fatalf("voip prio %d below video %d despite tighter deadline", voip, video)
	}
}

func TestAssignRestoresOnFailure(t *testing.T) {
	nw := mixedNet(t, 10*units.Mbps)
	// Add an impossible flow: deadline below its own transmission time.
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:     trace.CBRVideo("doomed", 30000, 50*ms, 1*ms),
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 7,
	}); err != nil {
		t.Fatal(err)
	}
	before := make([]network.Priority, nw.NumFlows())
	for i, fs := range nw.Flows() {
		before[i] = fs.Priority
	}
	ok, err := Assign(nw, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible scenario reported feasible")
	}
	for i, fs := range nw.Flows() {
		if fs.Priority != before[i] {
			t.Fatalf("flow %d priority not restored: %d != %d", i, fs.Priority, before[i])
		}
	}
}

func TestAssignAtLeastAsGoodAsDM(t *testing.T) {
	// Wherever deadline-monotonic assignment works, OPA must too.
	mkNet := func() *network.Network { return mixedNet(t, 100*units.Mbps) }

	dmNet := mkNet()
	dmNet.AssignPrioritiesDM()
	an, err := core.NewAnalyzer(dmNet, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dmRes, err := an.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !dmRes.Schedulable() {
		t.Skip("DM baseline not schedulable; nothing to compare")
	}

	opaNet := mkNet()
	ok, err := Assign(opaNet, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("OPA failed where DM succeeded")
	}
}
