package admitd

import (
	"fmt"
	"sort"

	"gmfnet/internal/admission"
	"gmfnet/internal/network"
	"gmfnet/internal/workload"
)

// dispatch is the daemon's single run loop: it owns every connection,
// subscription and shadow-closure structure, and serializes wire
// submissions into the controller in the order they arrive on s.ch.
// That ordering invariant is the daemon's determinism guarantee — one
// client replaying a trace sees exactly the decisions an in-process
// replay of the same op sequence produces, byte for byte.
func (s *Server) dispatch() {
	defer close(s.done)
	stopCh := s.stop
	draining := false
	for !(draining && len(s.conns) == 0) {
		select {
		case m := <-s.ch:
			s.handle(m, draining)
		case <-stopCh:
			stopCh = nil
			draining = true
			// Flush in-flight work: every submission already queued is
			// decided before anyone is told about the drain.
			for flushed := false; !flushed; {
				select {
				case m := <-s.ch:
					s.handle(m, false)
				default:
					flushed = true
				}
			}
			for _, c := range append([]*conn(nil), s.order...) {
				s.push(c, Msg{Kind: KindDrain})
				s.unregister(c)
			}
		}
	}
	s.drainErr = s.ctl.Close()
	s.residents = append([]*network.FlowSpec(nil), s.shadow.Flows()...)
	// Readers may still be blocked sending to s.ch (their sockets close
	// asynchronously, via the writers); keep the channel drained until
	// the last one has exited, closing any connection that raced the
	// drain through the accept loop.
	go func() {
		s.readers.Wait()
		close(s.ch)
	}()
	for m := range s.ch {
		if m.reg {
			close(m.c.out)
		}
	}
}

// handle processes one dispatcher message.
func (s *Server) handle(m dmsg, draining bool) {
	switch {
	case m.reg:
		if draining {
			// Raced the drain through the accept loop: turn it away.
			m.c.out <- Msg{Kind: KindDrain}
			close(m.c.out)
			return
		}
		s.conns[m.c] = true
		s.order = append(s.order, m.c)
		s.totalConns++
	case m.unreg:
		s.unregister(m.c)
	default:
		if !s.conns[m.c] {
			return // ops queued behind a drop
		}
		m.c.ops++
		s.ops++
		s.handleOp(m.c, m.op)
	}
}

// unregister removes a connection from the dispatcher's books and
// closes its outbound queue; the writer flushes what is queued and
// closes the socket, which in turn unblocks the reader. Idempotent.
func (s *Server) unregister(c *conn) {
	if !s.conns[c] {
		return
	}
	delete(s.conns, c)
	for i, oc := range s.order {
		if oc == c {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	for name := range c.subs {
		if set := s.subs[name]; set != nil {
			delete(set, c)
			if len(set) == 0 {
				delete(s.subs, name)
			}
		}
	}
	close(c.out)
}

// drop disconnects a connection whose outbound queue overflowed: the
// peer has stopped reading, and the fold must never wait for it. The
// socket is closed immediately so both its goroutines unwind without
// waiting out a write timeout.
func (s *Server) drop(c *conn) {
	if !s.conns[c] {
		return
	}
	s.dropped++
	s.unregister(c)
	c.nc.Close()
}

// push enqueues one message without ever blocking: the queue is
// bounded, and overflow means the peer is too slow to keep — it is
// dropped on the spot. Messages to already-unregistered connections
// are discarded.
func (s *Server) push(c *conn, m Msg) {
	if !s.conns[c] {
		return
	}
	select {
	case c.out <- m:
		if m.Kind == KindEvent {
			c.events++
			s.events++
		} else if m.Kind != KindDrain {
			c.verdicts++
			s.verdicts++
		}
	default:
		s.drop(c)
	}
}

func errMsg(id int64, err error) Msg {
	return Msg{Kind: KindError, ID: id, Err: err.Error()}
}

func verdictMsg(id int64, d admission.Decision) Msg {
	v := VerdictReject
	if d.Admitted {
		v = VerdictAdmit
	}
	return Msg{Kind: KindVerdict, ID: id, Flow: d.FlowName, Verdict: v}
}

// handleOp decides one wire operation. Subscription events caused by
// the op are fanned out *before* its verdict is enqueued, so a client
// reading its own connection in order always sees cause before
// acknowledgement.
func (s *Server) handleOp(c *conn, op *workload.Op) {
	switch op.Op {
	case "add":
		spec, err := op.Spec(s.topo)
		if err != nil {
			s.push(c, errMsg(op.ID, err))
			return
		}
		d, err := s.ctl.Request(spec)
		s.fanout()
		if err != nil {
			s.push(c, errMsg(op.ID, err))
			return
		}
		s.push(c, verdictMsg(op.ID, d))
	case "batch":
		specs := make([]*network.FlowSpec, len(op.Flows))
		for i := range op.Flows {
			if op.Flows[i].Op != "add" {
				s.push(c, errMsg(op.ID, fmt.Errorf("admitd: batch member %d is %q, want \"add\"", i, op.Flows[i].Op)))
				return
			}
			spec, err := op.Flows[i].Spec(s.topo)
			if err != nil {
				s.push(c, errMsg(op.ID, err))
				return
			}
			specs[i] = spec
		}
		ds, err := s.ctl.RequestBatch(specs)
		s.fanout()
		if err != nil {
			s.push(c, errMsg(op.ID, err))
			return
		}
		for _, d := range ds {
			s.push(c, verdictMsg(op.ID, d))
		}
	case "del":
		ok, err := s.ctl.Release(op.Name)
		s.fanout()
		if err != nil {
			s.push(c, errMsg(op.ID, err))
			return
		}
		v := VerdictMiss
		if ok {
			v = VerdictOK
		}
		s.push(c, Msg{Kind: KindVerdict, ID: op.ID, Flow: op.Name, Verdict: v})
	case "sub":
		if op.Name == "" {
			s.push(c, errMsg(op.ID, fmt.Errorf("admitd: sub needs a flow name")))
			return
		}
		set := s.subs[op.Name]
		if set == nil {
			set = make(map[*conn]bool)
			s.subs[op.Name] = set
		}
		set[c] = true
		c.subs[op.Name] = true
		s.push(c, Msg{Kind: KindVerdict, ID: op.ID, Flow: op.Name, Verdict: VerdictSub})
	case "unsub":
		if set := s.subs[op.Name]; set != nil {
			delete(set, c)
			if len(set) == 0 {
				delete(s.subs, op.Name)
			}
		}
		delete(c.subs, op.Name)
		s.push(c, Msg{Kind: KindVerdict, ID: op.ID, Flow: op.Name, Verdict: VerdictUnsub})
	case "stats":
		s.push(c, Msg{Kind: KindStats, ID: op.ID, Stats: s.stats()})
	default:
		s.push(c, errMsg(op.ID, fmt.Errorf("admitd: unknown op %q", op.Op)))
	}
}

// fanout drains the controller's post-fold notifications, mirrors them
// into the shadow network, and pushes closure deltas to subscribers of
// affected flows. The shadow network holds exactly the resident flow
// set in admission order (the same specs the controller folded, by
// pointer), so its incremental union-find answers "whose headroom did
// this fold change" without touching any engine state.
func (s *Server) fanout() {
	for _, ev := range s.takeFolds() {
		switch ev.Kind {
		case admission.FoldAdmitted:
			idx, err := s.shadow.AddFlow(ev.Spec)
			if err != nil {
				continue // unreachable: the controller validated the spec
			}
			s.notifyClosure(ev.Spec.Flow.Name, EventAdmitted, s.closureNames(idx))
		case admission.FoldReleased:
			idx := s.shadowIndex(ev.Spec)
			if idx < 0 {
				continue // unreachable: every resident was mirrored on fold
			}
			// Affected flows are the ones that shared the closure
			// *before* the departure; their populations are reported
			// after it (the closure may have split).
			names := s.closureNames(idx)
			s.shadow.RemoveFlow(idx)
			s.notifyClosure(ev.Spec.Flow.Name, EventReleased, names)
		case admission.FoldRejected:
			// Never entered any closure; the requester already has the
			// verdict, nobody's headroom changed.
		}
	}
}

// shadowIndex finds the resident flow by spec identity — Release folds
// the exact pointer that was admitted, so the match is unambiguous
// even under duplicate names.
func (s *Server) shadowIndex(fs *network.FlowSpec) int {
	for i := 0; i < s.shadow.NumFlows(); i++ {
		if s.shadow.Flow(i) == fs {
			return i
		}
	}
	return -1
}

// closureNames returns the distinct names of the resident flows in
// flow idx's interference closure, in member (admission) order — a
// deterministic fan-out order for the event stream.
func (s *Server) closureNames(idx int) []string {
	members := s.shadow.Closures()[s.shadow.ClosureOf(idx)]
	seen := make(map[string]bool, len(members))
	names := make([]string, 0, len(members))
	for _, i := range members {
		n := s.shadow.Flow(i).Flow.Name
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	return names
}

// notifyClosure sends exactly one event per affected subscribed flow
// name: peer was admitted into (or departed) that flow's closure, and
// the flow's closure now holds Residents flows.
func (s *Server) notifyClosure(peer, event string, names []string) {
	for _, name := range names {
		set := s.subs[name]
		if len(set) == 0 {
			continue
		}
		m := Msg{
			Kind:      KindEvent,
			Flow:      name,
			Peer:      peer,
			Event:     event,
			Residents: s.residentsOf(name),
		}
		for c := range set {
			s.push(c, m)
		}
	}
}

// residentsOf returns the closure population of the first resident
// flow with the given name, after the change — 0 when no resident by
// that name remains (the flow itself departed).
func (s *Server) residentsOf(name string) int {
	for i := 0; i < s.shadow.NumFlows(); i++ {
		if s.shadow.Flow(i).Flow.Name == name {
			return len(s.shadow.Closures()[s.shadow.ClosureOf(i)])
		}
	}
	return 0
}

// stats assembles the counters snapshot. Controller accessors take the
// controller's own lock; everything else is dispatcher-owned.
func (s *Server) stats() *Stats {
	st := &Stats{
		Admitted:   s.ctl.Admitted(),
		Rejected:   s.ctl.Rejected(),
		Released:   s.ctl.Released(),
		Resident:   s.ctl.NumResidents(),
		Conns:      len(s.conns),
		TotalConns: s.totalConns,
		Dropped:    s.dropped,
		Ops:        s.ops,
		Verdicts:   s.verdicts,
		Events:     s.events,
	}
	for _, set := range s.subs {
		st.Subs += len(set)
	}
	for _, c := range s.order {
		st.PerConn = append(st.PerConn, ConnStats{
			ID:       c.id,
			Addr:     c.nc.RemoteAddr().String(),
			Ops:      c.ops,
			Verdicts: c.verdicts,
			Events:   c.events,
			Subs:     len(c.subs),
			Queue:    len(c.out),
		})
	}
	sort.Slice(st.PerConn, func(i, j int) bool { return st.PerConn[i].ID < st.PerConn[j].ID })
	return st
}
