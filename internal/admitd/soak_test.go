package admitd_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gmfnet/internal/admitd"
	"gmfnet/internal/admitd/client"
	"gmfnet/internal/network"
	"gmfnet/internal/workload"
)

// TestConcurrentSoak is the daemon's race soak (CI runs this package
// under -race): one stable subscriber watches a long-lived flow per
// switch while concurrent churn clients hammer the daemon with
// admissions, releases, closure-fusing cross-switch requests, batches
// and subscribe/unsubscribe churn on their own disjoint name set. At
// the end the accounting must balance, and every stable flow's
// last-received event population must equal a cold closure recompute
// over the drained daemon's resident set — the subscription stream
// never went stale or out of order.
func TestConcurrentSoak(t *testing.T) {
	const (
		switches = 4
		hostsPer = 3
		clients  = 4
		opsEach  = 200
	)
	topoSpec := workload.TopoSpec{Kind: "campus", Switches: switches, Hosts: hostsPer}
	srv, addr := newTestServer(t, admitd.Config{Topo: topoSpec, Queue: 1024})

	// Stable subscriptions go in before the storm, so every stable flow
	// hears about its own admission and everything after.
	stable := dialTest(t, addr, topoSpec)
	stableNames := make([]string, switches)
	for s := 0; s < switches; s++ {
		stableNames[s] = fmt.Sprintf("stable%d", s)
		if err := stable.Subscribe(stableNames[s]); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < switches; s++ {
		op := voipOp(stableNames[s], fmt.Sprintf("h%d_0", s), fmt.Sprintf("h%d_1", s))
		if ok, err := stable.Add(op); err != nil || !ok {
			t.Fatalf("admit %s: %v %v", stableNames[s], ok, err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs <- churn(addr, topoSpec, id, opsEach)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Everything the churn clients caused has been dispatched; the
	// barrier flushes any events still owed to the stable subscriber.
	st := barrier(t, stable)
	if st.Admitted-st.Released != st.Resident {
		t.Fatalf("accounting does not balance: %+v", st)
	}
	if st.Admitted < switches || st.Rejected == 0 || st.Released == 0 {
		t.Fatalf("soak exercised too little: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("stable subscriber (or a churn client) was dropped: %+v", st)
	}
	if stable.EventCount() < int64(switches) {
		t.Fatalf("stable subscriber saw %d events, want at least %d", stable.EventCount(), switches)
	}

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-stable.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stable subscriber never observed the drain")
	}

	// Cold recompute: rebuild the closure index from the drained
	// daemon's resident set and compare each stable flow's final closure
	// population with the last event the subscriber received for it.
	residents := srv.Residents()
	if len(residents) != st.Resident {
		t.Fatalf("resident snapshot has %d flows, stats said %d", len(residents), st.Resident)
	}
	topo, _, err := topoSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cold := network.New(topo)
	idxOf := make(map[string]int, len(residents))
	for _, fs := range residents {
		idx, err := cold.AddFlow(fs)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := idxOf[fs.Flow.Name]; !dup {
			idxOf[fs.Flow.Name] = idx
		}
	}
	for _, name := range stableNames {
		idx, resident := idxOf[name]
		want := 0
		if resident {
			want = len(cold.Closures()[cold.ClosureOf(idx)])
		}
		ev, ok := stable.LastEvent(name)
		if !ok {
			t.Fatalf("no event ever received for %s", name)
		}
		if ev.Residents != want {
			t.Fatalf("%s: last event reported %d residents, cold recompute says %d",
				name, ev.Residents, want)
		}
	}
}

// churn is one soak client: a seeded deterministic op mix over its own
// disjoint name space — single admissions, wire batches, releases of
// its own live flows, and subscribe/unsubscribe churn. Cross-switch
// requests fuse closures with the stable flows; heavy requests force
// rejections.
func churn(addr string, topo workload.TopoSpec, id, n int) error {
	cli, err := client.Dial("tcp", addr, topo)
	if err != nil {
		return fmt.Errorf("client %d: %w", id, err)
	}
	defer cli.Close()
	r := rand.New(rand.NewSource(int64(7 + id)))
	host := func(sw int) string { return fmt.Sprintf("h%d_%d", sw, r.Intn(3)) }
	mkAdd := func(i int) workload.Op {
		name := fmt.Sprintf("c%d_%d", id, i)
		src := r.Intn(4)
		dst := src
		if r.Float64() < 0.3 {
			dst = r.Intn(4) // cross-switch: fuses closures across the chain
		}
		a, b := host(src), host(dst)
		for a == b {
			b = host(dst)
		}
		switch r.Intn(4) {
		case 0:
			return heavyOp(name, a, b) // mostly rejected: exercises FoldRejected
		case 1:
			return mediumOp(name, a, b)
		default:
			return voipOp(name, a, b)
		}
	}
	var live []string
	for i := 0; i < n; i++ {
		switch {
		case r.Float64() < 0.25 && len(live) > 0:
			j := r.Intn(len(live))
			if _, err := cli.Release(live[j]); err != nil {
				return fmt.Errorf("client %d release: %w", id, err)
			}
			live = append(live[:j], live[j+1:]...)
		case r.Float64() < 0.15:
			// Batch admission: three requests ride one wire op.
			ops := []workload.Op{mkAdd(i*10 + 1), mkAdd(i*10 + 2), mkAdd(i*10 + 3)}
			verdicts, err := cli.Batch(ops)
			if err != nil {
				return fmt.Errorf("client %d batch: %w", id, err)
			}
			for k, ok := range verdicts {
				if ok {
					live = append(live, ops[k].Name)
				}
			}
		default:
			op := mkAdd(i * 10)
			ok, err := cli.Add(op)
			if err != nil {
				return fmt.Errorf("client %d add: %w", id, err)
			}
			if ok {
				live = append(live, op.Name)
			}
		}
		// Subscription churn on this client's own names.
		if r.Float64() < 0.2 && len(live) > 0 {
			name := live[r.Intn(len(live))]
			if err := cli.Subscribe(name); err != nil {
				return fmt.Errorf("client %d sub: %w", id, err)
			}
			if r.Float64() < 0.5 {
				if err := cli.Unsubscribe(name); err != nil {
					return fmt.Errorf("client %d unsub: %w", id, err)
				}
			}
		}
		if r.Float64() < 0.05 {
			if _, err := cli.Stats(); err != nil {
				return fmt.Errorf("client %d stats: %w", id, err)
			}
		}
	}
	return nil
}
