package admitd_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"gmfnet/internal/admitd"
	"gmfnet/internal/admitd/client"
	"gmfnet/internal/workload"
)

// campus22 is the default test topology: two chained switches, two
// hosts each — h0_0/h0_1 under sw0, h1_0/h1_1 under sw1, so flows kept
// inside one switch form disjoint interference closures.
var campus22 = workload.TopoSpec{Kind: "campus", Switches: 2, Hosts: 2}

// voipOp is a light request: a G.711 VoIP call admits comfortably on a
// 100 Mbit/s campus edge link.
func voipOp(name, src, dst string) workload.Op {
	return workload.Op{Op: "add", Name: name, Kind: "voip", Src: src, Dst: dst,
		Prio: 1, DeadlinePS: 100_000_000_000, RTP: true}
}

// heavyOp is a ~66 Mbit/s CBR video request: it admits on an otherwise
// idle edge link but is rejected once any other flow shares the link.
func heavyOp(name, src, dst string) workload.Op {
	return workload.Op{Op: "add", Name: name, Kind: "cbr", Src: src, Dst: dst,
		Prio: 1, Bytes: 250_000, PeriodPS: 30_000_000_000, DeadlinePS: 250_000_000_000}
}

// mediumOp is a ~27 Mbit/s CBR video request: it coexists with VoIP on
// an edge link.
func mediumOp(name, src, dst string) workload.Op {
	return workload.Op{Op: "add", Name: name, Kind: "cbr", Src: src, Dst: dst,
		Prio: 1, Bytes: 100_000, PeriodPS: 30_000_000_000, DeadlinePS: 250_000_000_000}
}

// newTestServer boots a daemon on a loopback TCP listener and returns
// its dial address. Drained on cleanup (unless the test drained it
// itself — Drain is idempotent).
func newTestServer(t *testing.T, cfg admitd.Config) (*admitd.Server, string) {
	t.Helper()
	if cfg.Topo == (workload.TopoSpec{}) {
		cfg.Topo = campus22
	}
	srv, err := admitd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Drain() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	return srv, l.Addr().String()
}

func dialTest(t *testing.T, addr string, topo workload.TopoSpec) *client.Client {
	t.Helper()
	cli, err := client.Dial("tcp", addr, topo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// barrier forces a synchronous round trip on the client's connection:
// because the daemon pushes events before the verdict of the op that
// caused them, and each connection delivers in order, any event owed to
// this client from an earlier dispatched op has been processed by the
// time the stats reply arrives.
func barrier(t *testing.T, cli *client.Client) admitd.Stats {
	t.Helper()
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSubscriptionDeltas pins the fan-out semantics: an admission or
// departure notifies exactly one event per affected subscribed flow —
// the flows sharing the changed interference closure — and none for
// flows in unaffected closures; rejected requests notify nobody.
func TestSubscriptionDeltas(t *testing.T) {
	_, addr := newTestServer(t, admitd.Config{})
	op := dialTest(t, addr, campus22)   // operator: submits all requests
	subA := dialTest(t, addr, campus22) // watches "a" (sw0 closure)
	subB := dialTest(t, addr, campus22) // watches "b" (sw1 closure)
	if err := subA.Subscribe("a"); err != nil {
		t.Fatal(err)
	}
	if err := subB.Subscribe("b"); err != nil {
		t.Fatal(err)
	}

	check := func(step string, cli *client.Client, wantCount int64, flow string, wantPeer, wantEvent string, wantResidents int) {
		t.Helper()
		barrier(t, cli)
		if got := cli.EventCount(); got != wantCount {
			t.Fatalf("%s: event count = %d, want %d", step, got, wantCount)
		}
		if wantPeer == "" {
			return
		}
		ev, ok := cli.LastEvent(flow)
		if !ok {
			t.Fatalf("%s: no event recorded for %q", step, flow)
		}
		if ev.Peer != wantPeer || ev.Event != wantEvent || ev.Residents != wantResidents {
			t.Fatalf("%s: event = peer %q %s residents %d, want peer %q %s residents %d",
				step, ev.Peer, ev.Event, ev.Residents, wantPeer, wantEvent, wantResidents)
		}
	}

	// a's own admission notifies its subscriber; b's watcher hears nothing.
	if ok, err := op.Add(voipOp("a", "h0_0", "h0_1")); err != nil || !ok {
		t.Fatalf("admit a: %v %v", ok, err)
	}
	check("admit a/subA", subA, 1, "a", "a", admitd.EventAdmitted, 1)
	check("admit a/subB", subB, 0, "", "", "", 0)

	// b lives in sw1's closure: only its watcher hears.
	if ok, err := op.Add(voipOp("b", "h1_0", "h1_1")); err != nil || !ok {
		t.Fatalf("admit b: %v %v", ok, err)
	}
	check("admit b/subB", subB, 1, "b", "b", admitd.EventAdmitted, 1)
	check("admit b/subA", subA, 1, "a", "a", admitd.EventAdmitted, 1)

	// c joins a's closure: one event to a's watcher, population 2.
	if ok, err := op.Add(voipOp("c", "h0_0", "h0_1")); err != nil || !ok {
		t.Fatalf("admit c: %v %v", ok, err)
	}
	check("admit c/subA", subA, 2, "a", "c", admitd.EventAdmitted, 2)
	check("admit c/subB", subB, 1, "b", "b", admitd.EventAdmitted, 1)

	// A rejected request enters no closure: nobody hears. r1 (medium
	// CBR) still fits beside the VoIP pair; r2 (heavy CBR) does not.
	if ok, err := op.Add(mediumOp("r1", "h0_0", "h0_1")); err != nil || !ok {
		t.Fatalf("admit r1: %v %v", ok, err)
	}
	if ok, err := op.Add(heavyOp("r2", "h0_0", "h0_1")); err != nil || ok {
		t.Fatalf("r2 should be rejected: %v %v", ok, err)
	}
	check("reject r2/subA", subA, 3, "a", "r1", admitd.EventAdmitted, 3)

	// c departs a's closure: one released event, population back to 2.
	if ok, err := op.Release("c"); err != nil || !ok {
		t.Fatalf("release c: %v %v", ok, err)
	}
	check("release c/subA", subA, 4, "a", "c", admitd.EventReleased, 2)
	check("release c/subB", subB, 1, "b", "b", admitd.EventAdmitted, 1)

	// a itself departs: residents drops to 0 for its watcher.
	if ok, err := op.Release("a"); err != nil || !ok {
		t.Fatalf("release a: %v %v", ok, err)
	}
	check("release a/subA", subA, 5, "a", "a", admitd.EventReleased, 0)

	// Unsubscribed watchers hear nothing further.
	if err := subB.Unsubscribe("b"); err != nil {
		t.Fatal(err)
	}
	if ok, err := op.Release("b"); err != nil || !ok {
		t.Fatalf("release b: %v %v", ok, err)
	}
	check("release b after unsub/subB", subB, 1, "b", "b", admitd.EventAdmitted, 1)
}

// TestEventBeforeVerdict pins the per-connection ordering guarantee: a
// client subscribed to the flow it submits has already received the
// admission event when its own verdict returns.
func TestEventBeforeVerdict(t *testing.T) {
	_, addr := newTestServer(t, admitd.Config{})
	cli := dialTest(t, addr, campus22)
	if err := cli.Subscribe("a"); err != nil {
		t.Fatal(err)
	}
	if ok, err := cli.Add(voipOp("a", "h0_0", "h0_1")); err != nil || !ok {
		t.Fatalf("admit: %v %v", ok, err)
	}
	if got := cli.EventCount(); got != 1 {
		t.Fatalf("event count after own verdict = %d, want 1 (event must precede verdict)", got)
	}
}

// TestSlowSubscriberDropped pins the bounded-queue contract: a
// subscriber that stops reading overflows its outbound queue and is
// disconnected, while the dispatcher keeps deciding other clients'
// requests synchronously throughout.
func TestSlowSubscriberDropped(t *testing.T) {
	_, addr := newTestServer(t, admitd.Config{Queue: 2, WriteTimeout: 50 * time.Millisecond})
	op := dialTest(t, addr, campus22)

	// Populate one closure with 50 VoIP flows; subscribing to all of
	// them multiplies every later change into ~50 events, so the kernel
	// socket buffers in front of the non-reading subscriber fill fast.
	const fanout = 50
	for i := 0; i < fanout; i++ {
		name := fmt.Sprintf("a%d", i)
		if ok, err := op.Add(voipOp(name, "h0_0", "h0_1")); err != nil || !ok {
			t.Fatalf("admit %s: %v %v", name, ok, err)
		}
	}

	// The slow subscriber is a raw connection that handshakes,
	// subscribes, and then never reads again; a tiny receive buffer
	// makes the kernel stop absorbing events quickly.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(256)
	}
	enc := json.NewEncoder(nc)
	dec := json.NewDecoder(bufio.NewReader(nc))
	if err := enc.Encode(admitd.Hello{V: admitd.ProtocolVersion, Topo: campus22}); err != nil {
		t.Fatal(err)
	}
	var ack admitd.Msg
	if err := dec.Decode(&ack); err != nil || ack.Kind != admitd.KindHello {
		t.Fatalf("handshake: %v %+v", err, ack)
	}
	for i := 0; i < fanout; i++ {
		if err := enc.Encode(workload.Op{Op: "sub", Name: fmt.Sprintf("a%d", i), ID: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		var sub admitd.Msg
		if err := dec.Decode(&sub); err != nil || sub.Verdict != admitd.VerdictSub {
			t.Fatalf("subscribe %d: %v %+v", i, err, sub)
		}
	}
	// From here on the subscriber never reads another byte.

	dropped := false
	for i := 0; i < 2000 && !dropped; i++ {
		if ok, err := op.Add(voipOp("peer", "h0_0", "h0_1")); err != nil || !ok {
			t.Fatalf("toggle admit %d: %v %v", i, ok, err)
		}
		if ok, err := op.Release("peer"); err != nil || !ok {
			t.Fatalf("toggle release %d: %v %v", i, ok, err)
		}
		if i%10 == 9 {
			st := barrier(t, op)
			if st.Dropped > 0 {
				dropped = true
				if st.Conns != 1 {
					t.Fatalf("live conns after drop = %d, want 1 (the operator)", st.Conns)
				}
				if st.Subs != 0 {
					t.Fatalf("subscriptions after drop = %d, want 0", st.Subs)
				}
			}
		}
	}
	if !dropped {
		t.Fatal("slow subscriber was never dropped")
	}
}

// TestDrain pins graceful shutdown: connected clients receive the drain
// message, their subsequent calls fail with ErrDraining, and the
// post-drain resident snapshot matches what was admitted.
func TestDrain(t *testing.T) {
	srv, addr := newTestServer(t, admitd.Config{})
	cli := dialTest(t, addr, campus22)
	for _, name := range []string{"a", "b"} {
		if ok, err := cli.Add(voipOp(name, "h0_0", "h0_1")); err != nil || !ok {
			t.Fatalf("admit %s: %v %v", name, ok, err)
		}
	}
	if ok, err := cli.Release("b"); err != nil || !ok {
		t.Fatalf("release b: %v %v", ok, err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-cli.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client never observed the drain")
	}
	if _, err := cli.Add(voipOp("late", "h0_0", "h0_1")); err == nil {
		t.Fatal("add after drain succeeded, want ErrDraining")
	}
	res := srv.Residents()
	if len(res) != 1 || res[0].Flow.Name != "a" {
		names := make([]string, len(res))
		for i, fs := range res {
			names[i] = fs.Flow.Name
		}
		t.Fatalf("residents after drain = %v, want [a]", names)
	}
	// Idempotent.
	if err := srv.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	// A listener handed to a drained server is closed immediately.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	if _, err := l.Accept(); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestHelloValidation pins the handshake gate: version skew and
// topology mismatch are refused with an error message; the zero-spec
// observer hello is accepted and learns the daemon's topology; an
// empty Kind is the recorded-campus spelling of "campus".
func TestHelloValidation(t *testing.T) {
	_, addr := newTestServer(t, admitd.Config{})

	if _, err := client.Dial("tcp", addr, workload.TopoSpec{Kind: "backbone", Switches: 2, Hosts: 2, Fanout: 2}); err == nil {
		t.Fatal("mismatched topology hello accepted")
	}

	// Version skew, raw: the client package always speaks the current
	// version, so fake an old one.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := json.NewEncoder(nc).Encode(admitd.Hello{V: admitd.ProtocolVersion + 1, Topo: campus22}); err != nil {
		t.Fatal(err)
	}
	var m admitd.Msg
	if err := json.NewDecoder(bufio.NewReader(nc)).Decode(&m); err != nil || m.Kind != admitd.KindError {
		t.Fatalf("version-skew reply = %+v (%v), want error", m, err)
	}

	// Observer hello: accepted, returns the served spec.
	obs := dialTest(t, addr, workload.TopoSpec{})
	if got := obs.ServerTopo(); got != campus22 {
		t.Fatalf("observer learned topo %+v, want %+v", got, campus22)
	}

	// Empty Kind means campus.
	legacy := dialTest(t, addr, workload.TopoSpec{Switches: 2, Hosts: 2})
	if _, err := legacy.Stats(); err != nil {
		t.Fatalf("legacy campus hello: %v", err)
	}
}

// TestWireErrors pins the op-level error replies: unknown ops, batches
// with non-add members and nameless subscribes answer with an error
// carrying the op's correlation ID, and the connection stays usable.
func TestWireErrors(t *testing.T) {
	_, addr := newTestServer(t, admitd.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	enc := json.NewEncoder(nc)
	dec := json.NewDecoder(bufio.NewReader(nc))
	if err := enc.Encode(admitd.Hello{V: admitd.ProtocolVersion, Topo: campus22}); err != nil {
		t.Fatal(err)
	}
	var ack admitd.Msg
	if err := dec.Decode(&ack); err != nil || ack.Kind != admitd.KindHello {
		t.Fatalf("handshake: %v %+v", err, ack)
	}
	expectErr := func(op workload.Op) {
		t.Helper()
		if err := enc.Encode(op); err != nil {
			t.Fatal(err)
		}
		var m admitd.Msg
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		if m.Kind != admitd.KindError || m.ID != op.ID {
			t.Fatalf("op %+v: reply = %+v, want error with id %d", op, m, op.ID)
		}
	}
	expectErr(workload.Op{Op: "warp", ID: 1})
	expectErr(workload.Op{Op: "batch", ID: 2, Flows: []workload.Op{{Op: "del", Name: "x"}}})
	expectErr(workload.Op{Op: "sub", ID: 3})
	expectErr(workload.Op{Op: "add", ID: 4, Name: "x", Kind: "voip", Src: "h0_0", Dst: "nowhere"})

	// Still usable after every error.
	if err := enc.Encode(workload.Op{Op: "stats", ID: 5}); err != nil {
		t.Fatal(err)
	}
	var st admitd.Msg
	if err := dec.Decode(&st); err != nil || st.Kind != admitd.KindStats || st.ID != 5 {
		t.Fatalf("stats after errors: %v %+v", err, st)
	}
}

// TestStatsAccounting pins the counters: controller accounting balances
// (admitted - released = resident) and the daemon's op/verdict/conn
// counters track what actually happened on the wire.
func TestStatsAccounting(t *testing.T) {
	_, addr := newTestServer(t, admitd.Config{})
	cli := dialTest(t, addr, campus22)
	verdicts, err := cli.Batch([]workload.Op{
		voipOp("a", "h0_0", "h0_1"),
		voipOp("b", "h1_0", "h1_1"),
		mediumOp("m1", "h0_0", "h0_1"),
		heavyOp("h2", "h0_0", "h0_1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false}
	for i, v := range verdicts {
		if v != want[i] {
			t.Fatalf("batch verdicts = %v, want %v", verdicts, want)
		}
	}
	if ok, err := cli.Release("m1"); err != nil || !ok {
		t.Fatalf("release: %v %v", ok, err)
	}
	if ok, err := cli.Release("ghost"); err != nil || ok {
		t.Fatalf("release miss: %v %v", ok, err)
	}
	st := barrier(t, cli)
	if st.Admitted != 3 || st.Rejected != 1 || st.Released != 1 || st.Resident != 2 {
		t.Fatalf("accounting = %+v, want admitted 3 rejected 1 released 1 resident 2", st)
	}
	if st.Admitted-st.Released != st.Resident {
		t.Fatalf("accounting does not balance: %+v", st)
	}
	if st.Conns != 1 || st.TotalConns != 1 {
		t.Fatalf("conns = %d/%d, want 1/1", st.Conns, st.TotalConns)
	}
	// ops: batch + 2 dels + this stats op; verdicts: 4 batch + 2 del
	// (the stats reply is pushed after the snapshot is taken).
	if st.Ops != 4 || st.Verdicts != 6 {
		t.Fatalf("ops/verdicts = %d/%d, want 4/6", st.Ops, st.Verdicts)
	}
	if len(st.PerConn) != 1 || st.PerConn[0].Ops != st.Ops {
		t.Fatalf("per-conn stats = %+v", st.PerConn)
	}
}
