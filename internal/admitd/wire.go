package admitd

import "gmfnet/internal/workload"

// The wire protocol is JSON lines over a byte stream (TCP or unix
// socket), one object per line in each direction.
//
// The client speaks first: a versioned Hello carrying the TopoSpec it
// believes the daemon serves. A zero TopoSpec is an observer hello —
// accepted unconditionally (the ack returns the daemon's spec), the
// handshake -status tooling uses. A non-zero spec must equal the
// daemon's exactly; a mismatch or version skew gets a "error" message
// and the connection is closed.
//
// After the ack the client sends workload.Op values — the same schema
// request traces are recorded in, extended with a correlation ID and
// the wire-only op kinds:
//
//	op       semantics                          reply
//	add      admit one flow                     1 verdict: admit|reject
//	batch    admit Flows as one RequestBatch    len(Flows) verdicts, in order
//	del      release the named flow             1 verdict: ok|miss
//	sub      subscribe to the named flow        1 verdict: sub
//	unsub    drop the subscription              1 verdict: unsub
//	stats    counters snapshot                  1 stats message
//
// Every server line is a Msg. Verdicts carry the triggering op's ID;
// events are unsolicited and carry none. For one connection the server
// enqueues the events an op caused *before* the op's verdict, so a
// client that reads in order sees cause before acknowledgement.

// ProtocolVersion is the wire protocol version spoken by this package;
// Hello.V must match exactly.
const ProtocolVersion = 1

// Hello is the first line a client sends.
type Hello struct {
	V    int               `json:"v"`
	Topo workload.TopoSpec `json:"topo"`
}

// Msg kinds.
const (
	KindHello   = "hello"   // handshake ack; V and Topo are set
	KindVerdict = "verdict" // reply to add/batch/del/sub/unsub
	KindEvent   = "event"   // push: a subscribed flow's closure changed
	KindStats   = "stats"   // reply to stats; Stats is set
	KindError   = "error"   // op or protocol failure
	KindDrain   = "drain"   // the daemon is draining; no more verdicts follow
)

// Verdict values.
const (
	VerdictAdmit  = "admit"
	VerdictReject = "reject"
	VerdictOK     = "ok"   // del: a resident flow was released
	VerdictMiss   = "miss" // del: no resident flow had that name
	VerdictSub    = "sub"
	VerdictUnsub  = "unsub"
)

// Event values.
const (
	EventAdmitted = "admitted" // Peer was admitted into Flow's closure
	EventReleased = "released" // Peer departed Flow's closure
)

// Msg is one server-to-client line.
type Msg struct {
	Kind string `json:"kind"`
	// V and Topo are set on the hello ack: the protocol version and the
	// daemon's authoritative TopoSpec.
	V    int                `json:"v,omitempty"`
	Topo *workload.TopoSpec `json:"topo,omitempty"`
	// ID echoes the triggering op's correlation ID on verdicts, stats
	// and op errors; events and protocol errors carry none.
	ID int64 `json:"id,omitempty"`
	// Flow names the decided flow (verdicts) or the subscribed flow
	// whose closure changed (events).
	Flow    string `json:"flow,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	// Event fields: Peer is the flow whose admission or departure
	// changed Flow's interference closure; Residents is the closure's
	// resident population after the change (0 when Flow itself departed
	// and no resident by that name remains).
	Event     string `json:"event,omitempty"`
	Peer      string `json:"peer,omitempty"`
	Residents int    `json:"residents,omitempty"`
	Err       string `json:"err,omitempty"`
	Stats     *Stats `json:"stats,omitempty"`
}

// Stats is the counters snapshot served by the "stats" op and the
// -status endpoint: the controller's admission accounting plus the
// daemon's connection/subscription bookkeeping.
type Stats struct {
	// Controller accounting (identical semantics to the in-process
	// ParallelController counters).
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Released int `json:"released"`
	Resident int `json:"resident"`

	// Daemon aggregates.
	Conns      int   `json:"conns"`       // live connections
	TotalConns int64 `json:"total_conns"` // connections ever accepted
	Subs       int   `json:"subs"`        // live (flow, connection) subscriptions
	Dropped    int   `json:"dropped"`     // connections dropped on outbound-queue overflow
	Ops        int64 `json:"ops"`         // operations dispatched
	Verdicts   int64 `json:"verdicts"`    // verdict/stats/error replies sent
	Events     int64 `json:"events"`      // subscription events sent

	// PerConn lists the live connections in accept order.
	PerConn []ConnStats `json:"per_conn,omitempty"`
}

// ConnStats is one live connection's counters.
type ConnStats struct {
	ID       int64  `json:"id"`
	Addr     string `json:"addr"`
	Ops      int64  `json:"ops"`
	Verdicts int64  `json:"verdicts"`
	Events   int64  `json:"events"`
	Subs     int    `json:"subs"`
	Queue    int    `json:"queue"` // outbound messages currently queued
}
