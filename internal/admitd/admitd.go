// Package admitd turns the multi-core admission controller into a
// long-running network service: gmfnet-admitd serves concurrent
// admission streams over TCP or a unix socket behind a JSON-lines wire
// protocol (the workload.Op trace schema plus a versioned hello), and
// *pushes* verdict deltas to subscribers — a flow admitted into your
// interference closure changes your headroom, and tenants hear about
// it without polling.
//
// The shape is run-loop-owns-state with per-peer outbound queues:
//
//   - every connection gets a reader goroutine (decodes ops, forwards
//     them to the dispatcher) and a writer goroutine draining a
//     *bounded* outbound queue — a subscriber that stops reading
//     overflows its queue and is disconnected, never blocking the
//     dispatcher or the fold;
//   - a single dispatcher goroutine owns all connection, subscription
//     and closure-shadow state and serializes submissions into the
//     ParallelController in arrival order, so daemon decisions are
//     byte-identical to an in-process replay of the same op sequence
//     (the golden daemon tests pin this over the wire);
//   - the controller's post-fold notification hook
//     (admission.SetNotify) feeds the subscription manager, which
//     mirrors resident flows into a shadow network.Network, diffs each
//     fold's interference closure, and fans exactly one event out to
//     the subscribers of every affected resident flow.
//
// Drain (SIGTERM in the daemon, Server.Drain here) is graceful: stop
// accepting, finish every submission already queued, notify all
// connections with a "drain" message, flush and close their queues,
// then flush and close the controller.
package admitd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gmfnet/internal/admission"
	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/workload"
)

// Config parameterises a Server.
type Config struct {
	// Topo names the served topology. Every client hello carrying a
	// non-zero TopoSpec must match it exactly; the zero spec is an
	// observer hello (status tooling) and is always accepted.
	Topo workload.TopoSpec
	// Queue bounds each connection's outbound message queue; a
	// connection whose queue overflows — a subscriber not draining its
	// events — is disconnected rather than ever blocking the
	// dispatcher. Default 128.
	Queue int
	// WriteTimeout bounds each wire write, so a stalled peer cannot
	// pin a writer goroutine past it. Default 5s.
	WriteTimeout time.Duration
	// Core configures the controller's engine (workers, acceleration).
	Core core.Config
}

// Server is one admission daemon: a ParallelController, its shadow
// closure index, and the dispatcher that serializes wire submissions
// into it.
type Server struct {
	cfg  Config
	topo *network.Topology
	ctl  *admission.ParallelController

	// ch carries register/op/unregister messages from connection
	// readers to the dispatcher; its FIFO order *is* the submission
	// order the controller sees.
	ch   chan dmsg
	stop chan struct{}
	once sync.Once
	done chan struct{}

	// notifMu guards the fold-event queue filled by the controller's
	// SetNotify hook (which runs under the controller's lock, possibly
	// on a shard goroutine) and drained by the dispatcher.
	notifMu sync.Mutex
	notifQ  []admission.FoldEvent

	readers sync.WaitGroup
	connID  atomic.Int64

	lmu       sync.Mutex
	listeners []net.Listener
	closed    bool

	// Dispatcher-owned state: touched only on the dispatcher goroutine.
	shadow     *network.Network
	conns      map[*conn]bool
	order      []*conn // live conns in accept order, for stable stats
	subs       map[string]map[*conn]bool
	totalConns int64
	dropped    int
	ops        int64
	verdicts   int64
	events     int64

	// Set by the dispatcher as it exits; read after Done.
	drainErr  error
	residents []*network.FlowSpec
}

// conn is one accepted connection. The counters and subscription set
// are dispatcher-owned; out is closed exactly once, by the dispatcher,
// when the connection is unregistered.
type conn struct {
	id   int64
	nc   net.Conn
	out  chan Msg
	subs map[string]bool

	ops, verdicts, events int64
}

// dmsg is one message on the dispatcher channel.
type dmsg struct {
	c     *conn
	op    *workload.Op
	reg   bool
	unreg bool
}

// New builds the served topology, the parallel controller (in
// counters-only retention — a daemon never re-reads its decision log,
// so memory stays flat at any request volume) and starts the
// dispatcher. Call Serve with one or more listeners, then Drain.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 128
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	topo, _, err := cfg.Topo.Build()
	if err != nil {
		return nil, err
	}
	ctl, err := admission.NewParallelController(network.New(topo), cfg.Core)
	if err != nil {
		return nil, err
	}
	ctl.SetRetention(admission.RetainCounters)
	s := &Server{
		cfg:    cfg,
		topo:   topo,
		ctl:    ctl,
		ch:     make(chan dmsg, 256),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		shadow: network.New(topo),
		conns:  make(map[*conn]bool),
		subs:   make(map[string]map[*conn]bool),
	}
	ctl.SetNotify(s.enqueueFold)
	go s.dispatch()
	return s, nil
}

// Topo returns the served topology spec (what hellos must match).
func (s *Server) Topo() workload.TopoSpec { return s.cfg.Topo }

// enqueueFold is the controller's post-fold hook: it runs under the
// controller's lock, so it only appends to the queue the dispatcher
// drains after each submission returns.
func (s *Server) enqueueFold(ev admission.FoldEvent) {
	s.notifMu.Lock()
	s.notifQ = append(s.notifQ, ev)
	s.notifMu.Unlock()
}

// takeFolds hands the queued fold events to the dispatcher.
func (s *Server) takeFolds() []admission.FoldEvent {
	s.notifMu.Lock()
	evs := s.notifQ
	s.notifQ = nil
	s.notifMu.Unlock()
	return evs
}

// Serve starts accepting connections on l. It may be called more than
// once (the daemon listens on TCP and a unix socket at the same time);
// all listeners are closed by Drain. A listener handed to a draining
// server is closed immediately.
func (s *Server) Serve(l net.Listener) {
	s.lmu.Lock()
	if s.closed {
		s.lmu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lmu.Unlock()
	go s.acceptLoop(l)
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		nc, err := l.Accept()
		if err != nil {
			return // listener closed by Drain
		}
		s.readers.Add(1)
		go s.serveConn(nc)
	}
}

// helloTimeout bounds the handshake, so an idle port scan cannot pin a
// goroutine.
const helloTimeout = 10 * time.Second

// canonTopo normalises a TopoSpec for the hello equality check: an
// empty Kind means campus (the pre-generator trace header form), and
// campus ignores Fanout.
func canonTopo(t workload.TopoSpec) workload.TopoSpec {
	if t.Kind == "" {
		t.Kind = "campus"
	}
	if t.Kind == "campus" {
		t.Fanout = 0
	}
	return t
}

// serveConn is the connection's reader goroutine: handshake, then ops
// forwarded to the dispatcher until the peer hangs up (or the writer
// closes the socket underneath us, which is how drops and drain
// terminate a read loop).
func (s *Server) serveConn(nc net.Conn) {
	defer s.readers.Done()
	dec := json.NewDecoder(bufio.NewReader(nc))
	bw := bufio.NewWriter(nc)
	enc := json.NewEncoder(bw)
	reject := func(err error) {
		// Best effort on a dying connection; the close is the message.
		enc.Encode(Msg{Kind: KindError, Err: err.Error()})
		bw.Flush()
		nc.Close()
	}
	nc.SetReadDeadline(time.Now().Add(helloTimeout))
	var h Hello
	if err := dec.Decode(&h); err != nil {
		nc.Close()
		return
	}
	if h.V != ProtocolVersion {
		reject(fmt.Errorf("admitd: protocol version %d, want %d", h.V, ProtocolVersion))
		return
	}
	if h.Topo != (workload.TopoSpec{}) && canonTopo(h.Topo) != canonTopo(s.cfg.Topo) {
		reject(fmt.Errorf("admitd: topology mismatch: daemon serves %+v", s.cfg.Topo))
		return
	}
	nc.SetReadDeadline(time.Time{})
	topo := s.cfg.Topo
	if err := enc.Encode(Msg{Kind: KindHello, V: ProtocolVersion, Topo: &topo}); err != nil {
		nc.Close()
		return
	}
	if err := bw.Flush(); err != nil {
		nc.Close()
		return
	}
	c := &conn{
		id:   s.connID.Add(1),
		nc:   nc,
		out:  make(chan Msg, s.cfg.Queue),
		subs: make(map[string]bool),
	}
	go c.writeLoop(bw, s.cfg.WriteTimeout)
	s.ch <- dmsg{c: c, reg: true}
	for {
		var op workload.Op
		if err := dec.Decode(&op); err != nil {
			break
		}
		s.ch <- dmsg{c: c, op: &op}
	}
	s.ch <- dmsg{c: c, unreg: true}
}

// writeLoop drains the bounded outbound queue onto the socket. Every
// write rides a deadline, so a stalled peer costs at most one timeout;
// after the first failure remaining messages are discarded (the
// dispatcher has already given up on the connection by then, or will
// as soon as the queue overflows). The writer owns closing the socket:
// that is what unblocks the reader of a dropped or drained connection.
func (c *conn) writeLoop(bw *bufio.Writer, timeout time.Duration) {
	enc := json.NewEncoder(bw)
	broken := false
	for m := range c.out {
		if broken {
			continue
		}
		c.nc.SetWriteDeadline(time.Now().Add(timeout))
		if enc.Encode(m) != nil {
			broken = true
			continue
		}
		// Flush when the queue is momentarily empty: consecutive
		// messages batch into one write, the last never lingers.
		if len(c.out) == 0 && bw.Flush() != nil {
			broken = true
		}
	}
	if !broken {
		c.nc.SetWriteDeadline(time.Now().Add(timeout))
		bw.Flush() // the conn is closing either way
	}
	c.nc.Close()
}

// Drain stops the server gracefully: close the listeners, let the
// dispatcher finish every submission already queued, notify every
// connection with a "drain" message, flush and close the outbound
// queues, then flush and close the controller. It blocks until the
// dispatcher has exited and returns the controller's close error, if
// any. Safe to call more than once.
func (s *Server) Drain() error {
	s.lmu.Lock()
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	s.lmu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
	return s.drainErr
}

// Done is closed when the dispatcher has exited (after Drain).
func (s *Server) Done() <-chan struct{} { return s.done }

// Residents returns the resident flow specs in admission order. Only
// valid after Drain has returned (the dispatcher owns this state while
// running).
func (s *Server) Residents() []*network.FlowSpec {
	<-s.done
	return s.residents
}
