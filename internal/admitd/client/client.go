// Package client is the Go client of the gmfnet-admitd wire protocol:
// it dials the daemon over TCP or a unix socket, performs the
// versioned hello, and exposes the admission ops (add, batch, release,
// subscribe, stats) as synchronous calls while recording the
// unsolicited subscription events the daemon pushes. The golden daemon
// tests and gmfnet-admit's -connect mode replay request traces through
// it and compare the decision log byte for byte with an in-process
// run.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"gmfnet/internal/admitd"
	"gmfnet/internal/workload"
)

// ErrDraining is returned by calls cut short because the daemon
// announced a drain: no more verdicts will arrive on this connection.
var ErrDraining = errors.New("admitd: daemon draining")

// Client is one connection to a gmfnet-admitd daemon. It is safe for
// concurrent use; calls are correlated by ID, so several can be in
// flight at once.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes wire writes
	bw  *bufio.Writer
	enc *json.Encoder

	mu      sync.Mutex
	nextID  int64
	pending map[int64]chan admitd.Msg
	err     error // terminal: set once, fails all further calls
	last    map[string]admitd.Msg
	nevents int64
	eventFn func(admitd.Msg)
	topo    workload.TopoSpec

	done     chan struct{}
	doneOnce sync.Once
}

// Network guesses the dial network for an address: anything containing
// a path separator is a unix socket, everything else host:port TCP.
func Network(addr string) string {
	if strings.ContainsRune(addr, '/') {
		return "unix"
	}
	return "tcp"
}

// Dial connects, performs the hello handshake and starts the reader.
// A zero topo is the observer hello (always accepted — used by status
// tooling); a non-zero topo must match the daemon's spec exactly or
// the daemon refuses the connection.
func Dial(netw, addr string, topo workload.TopoSpec) (*Client, error) {
	nc, err := net.Dial(netw, addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(nc)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(admitd.Hello{V: admitd.ProtocolVersion, Topo: topo}); err == nil {
		err = bw.Flush()
	} else {
		nc.Close()
		return nil, err
	}
	dec := json.NewDecoder(bufio.NewReader(nc))
	var ack admitd.Msg
	if err := dec.Decode(&ack); err != nil {
		nc.Close()
		return nil, fmt.Errorf("admitd: handshake: %w", err)
	}
	if ack.Kind == admitd.KindError {
		nc.Close()
		return nil, fmt.Errorf("admitd: rejected: %s", ack.Err)
	}
	if ack.Kind != admitd.KindHello || ack.V != admitd.ProtocolVersion {
		nc.Close()
		return nil, fmt.Errorf("admitd: unexpected handshake reply %q (v%d)", ack.Kind, ack.V)
	}
	c := &Client{
		nc:      nc,
		bw:      bw,
		enc:     enc,
		pending: make(map[int64]chan admitd.Msg),
		last:    make(map[string]admitd.Msg),
		done:    make(chan struct{}),
	}
	if ack.Topo != nil {
		c.topo = *ack.Topo
	}
	go c.readLoop(dec)
	return c, nil
}

// ServerTopo returns the daemon's TopoSpec from the hello ack.
func (c *Client) ServerTopo() workload.TopoSpec { return c.topo }

// Done is closed when the connection is no longer usable: read error,
// daemon drain, or Close.
func (c *Client) Done() <-chan struct{} { return c.done }

// SetEventFunc installs a callback invoked (on the reader goroutine)
// for every subscription event, in arrival order. Set it before
// subscribing; events are recorded for LastEvent either way.
func (c *Client) SetEventFunc(fn func(admitd.Msg)) {
	c.mu.Lock()
	c.eventFn = fn
	c.mu.Unlock()
}

// EventCount returns the number of subscription events received.
func (c *Client) EventCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nevents
}

// LastEvent returns the most recent event for the subscribed flow.
func (c *Client) LastEvent(flow string) (admitd.Msg, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.last[flow]
	return m, ok
}

// fail marks the connection dead with err (the first error wins),
// failing every pending and future call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[int64]chan admitd.Msg)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	c.doneOnce.Do(func() { close(c.done) })
}

func (c *Client) readLoop(dec *json.Decoder) {
	for {
		var m admitd.Msg
		if err := dec.Decode(&m); err != nil {
			c.fail(fmt.Errorf("admitd: connection lost: %w", err))
			return
		}
		switch m.Kind {
		case admitd.KindEvent:
			c.mu.Lock()
			c.nevents++
			c.last[m.Flow] = m
			fn := c.eventFn
			c.mu.Unlock()
			if fn != nil {
				fn(m)
			}
		case admitd.KindDrain:
			c.fail(ErrDraining)
			// Keep reading: the socket closes when the daemon is done.
		default:
			c.mu.Lock()
			ch := c.pending[m.ID]
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			} else if m.Kind == admitd.KindError && m.ID == 0 {
				c.fail(fmt.Errorf("admitd: %s", m.Err))
				return
			}
		}
	}
}

// call sends one op and collects want replies (or one error reply).
func (c *Client) call(op workload.Op, want int) ([]admitd.Msg, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	op.ID = c.nextID
	// Buffer every reply the daemon can send for this ID, so the
	// reader never blocks on a caller that already gave up.
	ch := make(chan admitd.Msg, want+1)
	c.pending[op.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.enc.Encode(&op)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		return nil, err
	}

	out := make([]admitd.Msg, 0, want)
	for len(out) < want {
		m, ok := <-ch
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		if m.Kind == admitd.KindError {
			c.finish(op.ID)
			return nil, fmt.Errorf("admitd: %s", m.Err)
		}
		out = append(out, m)
	}
	c.finish(op.ID)
	return out, nil
}

func (c *Client) finish(id int64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Add requests admission of one flow (op.Op is forced to "add") and
// reports the verdict.
func (c *Client) Add(op workload.Op) (bool, error) {
	op.Op = "add"
	ms, err := c.call(op, 1)
	if err != nil {
		return false, err
	}
	return ms[0].Verdict == admitd.VerdictAdmit, nil
}

// Batch requests admission of the flows as one controller batch and
// returns the verdicts in request order.
func (c *Client) Batch(ops []workload.Op) ([]bool, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	flows := make([]workload.Op, len(ops))
	for i, op := range ops {
		op.Op = "add"
		op.ID = 0
		flows[i] = op
	}
	ms, err := c.call(workload.Op{Op: "batch", Flows: flows}, len(ops))
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(ms))
	for i, m := range ms {
		out[i] = m.Verdict == admitd.VerdictAdmit
	}
	return out, nil
}

// Release asks the daemon to release the named flow; it reports
// whether a resident flow was claimed.
func (c *Client) Release(name string) (bool, error) {
	ms, err := c.call(workload.Op{Op: "del", Name: name}, 1)
	if err != nil {
		return false, err
	}
	return ms[0].Verdict == admitd.VerdictOK, nil
}

// Subscribe registers for closure-change events about the named flow.
func (c *Client) Subscribe(name string) error {
	_, err := c.call(workload.Op{Op: "sub", Name: name}, 1)
	return err
}

// Unsubscribe drops the subscription.
func (c *Client) Unsubscribe(name string) error {
	_, err := c.call(workload.Op{Op: "unsub", Name: name}, 1)
	return err
}

// Stats fetches the daemon's counters snapshot.
func (c *Client) Stats() (admitd.Stats, error) {
	ms, err := c.call(workload.Op{Op: "stats"}, 1)
	if err != nil {
		return admitd.Stats{}, err
	}
	if ms[0].Stats == nil {
		return admitd.Stats{}, fmt.Errorf("admitd: stats reply without payload")
	}
	return *ms[0].Stats, nil
}

// Close tears the connection down; pending calls fail.
func (c *Client) Close() error {
	c.fail(errors.New("admitd: client closed"))
	return c.nc.Close()
}
