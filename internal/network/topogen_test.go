package network

import (
	"fmt"
	"testing"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

func TestRingShape(t *testing.T) {
	topo, hosts, err := Ring(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 18 {
		t.Fatalf("hosts = %d, want 18", len(hosts))
	}
	// Every switch has two ring neighbours and three hosts.
	for s := 0; s < 6; s++ {
		id := NodeID(fmt.Sprintf("sw%d", s))
		if n := topo.Interfaces(id); n != 5 {
			t.Fatalf("switch %s interfaces = %d, want 5", id, n)
		}
	}
	// The ring offers a route both ways; BFS picks the short arc.
	route, err := topo.Route("h0_0", "h3_0")
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 6 { // h, sw0, sw1/sw5, sw2/sw4, sw3, h
		t.Fatalf("route = %v, want 4 switch hops", route)
	}
	// Degenerate sizes still build.
	for _, n := range []int{1, 2} {
		if _, _, err := Ring(n, 1); err != nil {
			t.Fatalf("Ring(%d, 1): %v", n, err)
		}
	}
	if _, _, err := Ring(0, 1); err == nil {
		t.Fatal("Ring(0, 1) succeeded")
	}
}

func TestFatTreeShape(t *testing.T) {
	k := 4
	topo, hosts, err := FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	if want := k * k * k / 4; len(hosts) != want {
		t.Fatalf("hosts = %d, want %d", len(hosts), want)
	}
	// Core switches connect one aggregation switch per pod.
	for c := 0; c < k*k/4; c++ {
		id := NodeID(fmt.Sprintf("core%d", c))
		if n := topo.Interfaces(id); n != k {
			t.Fatalf("core %s interfaces = %d, want %d", id, n, k)
		}
	}
	// Any two hosts are routable through switches only.
	route, err := topo.Route(hosts[0], hosts[len(hosts)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.ValidateRoute(route); err != nil {
		t.Fatal(err)
	}
	// Cross-pod routes climb edge -> agg -> core -> agg -> edge.
	if len(route) != 7 {
		t.Fatalf("cross-pod route %v, want 5 switch hops", route)
	}
	// Same-edge hosts route through their shared edge switch.
	local, err := topo.Route(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 3 {
		t.Fatalf("local route %v, want 1 switch hop", local)
	}
	if _, _, err := FatTree(3); err == nil {
		t.Fatal("odd arity accepted")
	}
	if _, _, err := FatTree(0); err == nil {
		t.Fatal("zero arity accepted")
	}
}

// TestGeneratedTopologiesCarryFlows sanity-checks that generated shapes
// admit analysable flows end to end (resource interning included).
func TestGeneratedTopologiesCarryFlows(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*Topology, []NodeID, error)
	}{
		{"ring", func() (*Topology, []NodeID, error) { return Ring(4, 2) }},
		{"fattree", func() (*Topology, []NodeID, error) { return FatTree(4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo, hosts, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			nw := New(topo)
			route, err := topo.Route(hosts[0], hosts[len(hosts)-1])
			if err != nil {
				t.Fatal(err)
			}
			fs := &FlowSpec{
				Flow: &gmf.Flow{
					Name: "v",
					Frames: []gmf.Frame{
						{MinSep: 20 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 160 * 8},
					},
				},
				Route: route,
			}
			i, err := nw.AddFlow(fs)
			if err != nil {
				t.Fatal(err)
			}
			rids := nw.FlowResources(i)
			if want := 1 + 2*(len(route)-2); len(rids) != want {
				t.Fatalf("pipeline has %d resources, want %d", len(rids), want)
			}
			if nw.NumResources() != len(rids) {
				t.Fatalf("interned %d resources for one flow with %d stages", nw.NumResources(), len(rids))
			}
		})
	}
}
