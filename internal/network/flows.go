package network

import (
	"fmt"
	"sort"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// Priority is an IEEE 802.1p-style output-queue priority. Larger values
// are more important. Commodity switches support 2-8 levels, but the model
// accepts any non-negative value.
type Priority int

// FlowSpec binds a GMF flow to the network: its route, priority and
// framing.
type FlowSpec struct {
	// Flow holds the GMF traffic parameters.
	Flow *gmf.Flow
	// Route is the node sequence from source to destination. Endpoints
	// are hosts or routers; intermediates are switches.
	Route []NodeID
	// Priority is the 802.1p priority of the flow's Ethernet frames in
	// switch output queues.
	Priority Priority
	// RTP selects RTP framing (adds the paper's 16-byte header).
	RTP bool
}

// Source returns the first node of the route.
func (fs *FlowSpec) Source() NodeID { return fs.Route[0] }

// Destination returns the last node of the route.
func (fs *FlowSpec) Destination() NodeID { return fs.Route[len(fs.Route)-1] }

// Succ returns succ(τ,N): the node after N on the flow's route.
func (fs *FlowSpec) Succ(n NodeID) (NodeID, bool) {
	for i := 0; i < len(fs.Route)-1; i++ {
		if fs.Route[i] == n {
			return fs.Route[i+1], true
		}
	}
	return "", false
}

// Prec returns prec(τ,N): the node before N on the flow's route.
func (fs *FlowSpec) Prec(n NodeID) (NodeID, bool) {
	for i := 1; i < len(fs.Route); i++ {
		if fs.Route[i] == n {
			return fs.Route[i-1], true
		}
	}
	return "", false
}

// Uses reports whether the flow's route contains the directed link
// from->to.
func (fs *FlowSpec) Uses(from, to NodeID) bool {
	for i := 0; i < len(fs.Route)-1; i++ {
		if fs.Route[i] == from && fs.Route[i+1] == to {
			return true
		}
	}
	return false
}

// Network is a topology together with the set of admitted flows. It is the
// input to the schedulability analysis and to the simulator.
type Network struct {
	Topo  *Topology
	flows []*FlowSpec

	// onLink is the reverse interference index: for every directed link
	// (from, to) the ascending indices of the flows whose route uses it.
	// AddFlow and RemoveFlow maintain it, so FlowsOn and Interferers are
	// lookups rather than scans — the analysis inner loops and the
	// incremental engine's affected-set computation depend on that.
	onLink map[[2]NodeID][]int

	// resIDs/resKeys intern every pipeline resource a flow has ever used
	// into a dense ResourceID (see resources.go); flowRes holds each
	// flow's pipeline ids in route order, aligned with flows.
	resIDs  map[resourceKey]ResourceID
	resKeys []resourceKey
	flowRes [][]ResourceID

	// closures tracks the interference-closure partition of the flow set
	// (see closures.go): a union-find over resource ids, merged
	// incrementally on insertion and lazily rebuilt after removals.
	closures closureIndex
}

// New returns a Network over the given topology.
func New(topo *Topology) *Network {
	return &Network{
		Topo:   topo,
		onLink: make(map[[2]NodeID][]int),
		resIDs: make(map[resourceKey]ResourceID),
	}
}

// ValidateSpec checks a flow spec against the topology exactly as
// AddFlow would, without registering it: the spec and its GMF flow must
// be well-formed, the priority non-negative and the route valid. The
// sharded admission controller uses it to pre-validate whole batches
// before any shard is touched.
func (nw *Network) ValidateSpec(fs *FlowSpec) error {
	if fs == nil || fs.Flow == nil {
		return fmt.Errorf("network: nil flow spec")
	}
	if err := fs.Flow.Validate(); err != nil {
		return err
	}
	if fs.Priority < 0 {
		return fmt.Errorf("network: flow %q: negative priority", fs.Flow.Name)
	}
	if err := nw.Topo.ValidateRoute(fs.Route); err != nil {
		return fmt.Errorf("network: flow %q: %w", fs.Flow.Name, err)
	}
	return nil
}

// AddFlow validates the flow spec against the topology and registers it.
// The returned index identifies the flow in analysis results.
func (nw *Network) AddFlow(fs *FlowSpec) (int, error) {
	if err := nw.ValidateSpec(fs); err != nil {
		return 0, err
	}
	nw.flows = append(nw.flows, fs)
	i := len(nw.flows) - 1
	for h := 0; h < len(fs.Route)-1; h++ {
		key := [2]NodeID{fs.Route[h], fs.Route[h+1]}
		nw.onLink[key] = append(nw.onLink[key], i)
	}
	rids := nw.internFlowResources(fs)
	nw.flowRes = append(nw.flowRes, rids)
	nw.closureAddPipeline(rids)
	return i, nil
}

// RemoveFlow removes the i-th flow. Flows after it shift down by one
// index, preserving admission order; the link index is updated in place.
// Removing an out-of-range index is a no-op so that rollback paths can
// call it unconditionally. Removing the last flow — the admission
// rollback case — costs O(route length); removing a middle flow
// additionally walks the index once to shift the higher indices down.
func (nw *Network) RemoveFlow(i int) {
	if i < 0 || i >= len(nw.flows) {
		return
	}
	nw.closureRemove()
	fs := nw.flows[i]
	nw.flows = append(nw.flows[:i], nw.flows[i+1:]...)
	nw.flowRes = append(nw.flowRes[:i], nw.flowRes[i+1:]...)
	for h := 0; h < len(fs.Route)-1; h++ {
		key := [2]NodeID{fs.Route[h], fs.Route[h+1]}
		s := nw.onLink[key]
		for k, j := range s {
			if j == i {
				s = append(s[:k], s[k+1:]...)
				break
			}
		}
		if len(s) == 0 {
			delete(nw.onLink, key)
		} else {
			nw.onLink[key] = s
		}
	}
	if i == len(nw.flows) {
		return // tail removal: no indices shift
	}
	for _, s := range nw.onLink {
		for k, j := range s {
			if j > i {
				s[k] = j - 1
			}
		}
	}
}

// RemoveLastFlow removes the most recently added flow. The admission
// controller uses it to roll back a rejected tentative admission.
func (nw *Network) RemoveLastFlow() {
	nw.RemoveFlow(len(nw.flows) - 1)
}

// InsertFlowAt is the exact inverse of RemoveFlow(i): it re-registers the
// flow at index i, shifting the flows at i and above up by one and
// restoring the link index. The analysis engine's Restore uses it to
// resurrect departures recorded in its removal log, so a snapshot can
// roll the network back across RemoveFlow calls. The spec is validated
// like in AddFlow; i == NumFlows() appends.
func (nw *Network) InsertFlowAt(i int, fs *FlowSpec) error {
	if i < 0 || i > len(nw.flows) {
		return fmt.Errorf("network: insert index %d out of range [0,%d]", i, len(nw.flows))
	}
	if err := nw.ValidateSpec(fs); err != nil {
		return err
	}
	// Shift existing indices at i and above up before inserting i itself,
	// mirroring (in reverse) the shift RemoveFlow applies after deletion.
	for _, s := range nw.onLink {
		for k, j := range s {
			if j >= i {
				s[k] = j + 1
			}
		}
	}
	nw.flows = append(nw.flows, nil)
	copy(nw.flows[i+1:], nw.flows[i:])
	nw.flows[i] = fs
	nw.flowRes = append(nw.flowRes, nil)
	copy(nw.flowRes[i+1:], nw.flowRes[i:])
	nw.flowRes[i] = nw.internFlowResources(fs)
	nw.closureAddPipeline(nw.flowRes[i])
	for h := 0; h < len(fs.Route)-1; h++ {
		key := [2]NodeID{fs.Route[h], fs.Route[h+1]}
		s := nw.onLink[key]
		at := sort.SearchInts(s, i)
		s = append(s, 0)
		copy(s[at+1:], s[at:])
		s[at] = i
		nw.onLink[key] = s
	}
	return nil
}

// Flows returns the registered flow specs in admission order. The slice is
// shared; callers must not mutate it.
func (nw *Network) Flows() []*FlowSpec { return nw.flows }

// NumFlows returns the number of registered flows.
func (nw *Network) NumFlows() int { return len(nw.flows) }

// Flow returns the i-th flow spec.
func (nw *Network) Flow(i int) *FlowSpec { return nw.flows[i] }

// FlowsOn returns flows(N1,N2): the indices of flows whose route uses the
// directed link from->to, sorted ascending. The returned slice is backed
// by the network's link index; callers must not mutate it.
func (nw *Network) FlowsOn(from, to NodeID) []int {
	return nw.onLink[[2]NodeID{from, to}]
}

// HEP returns hep(τi,N1,N2) per eq. (2): the indices of flows j != i on
// the link from->to with priority >= the priority of flow i.
func (nw *Network) HEP(i int, from, to NodeID) []int {
	return nw.AppendHEP(nil, i, from, to)
}

// AppendHEP appends hep(τi,N1,N2) to dst and returns the extended
// slice: the allocation-free form of HEP for hot paths that reuse a
// scratch buffer across stages (the per-request analysis computes one
// hep set per egress stage per fixpoint pass — materializing each into
// a fresh slice was the single largest allocation source of the
// admission hot path).
func (nw *Network) AppendHEP(dst []int, i int, from, to NodeID) []int {
	pi := nw.flows[i].Priority
	for _, j := range nw.FlowsOn(from, to) {
		if j != i && nw.flows[j].Priority >= pi {
			dst = append(dst, j)
		}
	}
	return dst
}

// LP returns lp(τi,N1,N2) per eq. (3): the indices of flows j != i on the
// link from->to with priority strictly below flow i's.
func (nw *Network) LP(i int, from, to NodeID) []int {
	pi := nw.flows[i].Priority
	var out []int
	for _, j := range nw.FlowsOn(from, to) {
		if j != i && nw.flows[j].Priority < pi {
			out = append(out, j)
		}
	}
	return out
}

// Interferers returns the indices of the flows j != i that share at least
// one directed link with flow i, sorted ascending. Two flows can influence
// each other's response-time bounds exactly when they (transitively)
// interfere through such shared resources: the first hop and the egress
// stages interfere per directed link, and the ingress stage in(N) of a
// switch is shared by precisely the flows entering N over the same
// directed link. The incremental engine's affected-set closure walks this
// relation.
func (nw *Network) Interferers(i int) []int {
	if i < 0 || i >= len(nw.flows) {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	nw.VisitInterferers(i, func(j int) {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	})
	sort.Ints(out)
	return out
}

// VisitInterferers calls fn for every flow j != i sharing a directed
// link with flow i, in link-walk order. Flows sharing several links
// are visited once per shared link: the allocation-free form for
// callers folding into a set (the incremental engine's worklist seeds
// and propagation fronts), where deduplicating here would just build a
// throwaway map. Interferers is the deduplicated, sorted wrapper.
func (nw *Network) VisitInterferers(i int, fn func(j int)) {
	if i < 0 || i >= len(nw.flows) {
		return
	}
	fs := nw.flows[i]
	for h := 0; h < len(fs.Route)-1; h++ {
		for _, j := range nw.FlowsOn(fs.Route[h], fs.Route[h+1]) {
			if j != i {
				fn(j)
			}
		}
	}
}

// Validate checks the whole network: topology links used by flows exist
// (already ensured per flow) and every switch on a route has positive CIRC.
func (nw *Network) Validate() error {
	for i, fs := range nw.flows {
		if err := nw.Topo.ValidateRoute(fs.Route); err != nil {
			return fmt.Errorf("network: flow %d (%q): %w", i, fs.Flow.Name, err)
		}
		for _, id := range fs.Route[1 : len(fs.Route)-1] {
			if _, err := nw.Topo.CIRC(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// AssignPrioritiesDM assigns deadline-monotonic priorities: flows with a
// smaller minimum deadline get a higher priority. Flows with equal minimum
// deadlines share a priority level (they interfere with each other per the
// >= in eq. (2)). Existing priorities are overwritten.
func (nw *Network) AssignPrioritiesDM() {
	type fd struct {
		idx int
		dl  units.Time
	}
	fds := make([]fd, len(nw.flows))
	for i, fs := range nw.flows {
		fds[i] = fd{i, fs.Flow.MinDeadline()}
	}
	sort.Slice(fds, func(a, b int) bool { return fds[a].dl > fds[b].dl })
	prio := Priority(0)
	for i, f := range fds {
		if i > 0 && f.dl != fds[i-1].dl {
			prio++
		}
		nw.flows[f.idx].Priority = prio
	}
}
