package network

import (
	"fmt"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// VideoProfile is one encoder rate profile of the bursty video-mix
// workload: the GMF cycle is the classic IBBPBBPBB transmission order,
// so a flow alternates one large I frame, medium P frames and small B
// frames — exactly the frame-size burstiness the generalized multiframe
// model captures and the sporadic collapse wastes capacity on.
type VideoProfile struct {
	// Name labels the profile ("hd", "sd", "ld").
	Name string
	// IBytes, PBytes and BBytes are the UDP payloads of the three frame
	// types.
	IBytes, PBytes, BBytes int64
	// FramePeriod is the spacing between transmitted frames (the GMF
	// minimum separation of every frame).
	FramePeriod units.Time
	// Deadline is the relative end-to-end deadline of every frame.
	Deadline units.Time
	// Priority is the 802.1p priority the profile's streams request.
	Priority Priority
}

// VideoProfiles returns the three stock rate profiles of the video mix,
// highest rate first: "hd" (~5.5 Mbit/s), "sd" (~2.7 Mbit/s) and "ld"
// (~1.2 Mbit/s). Lower-rate streams carry higher priorities, mirroring
// how interactive tiers are usually provisioned above bulk video.
func VideoProfiles() []VideoProfile {
	return []VideoProfile{
		{Name: "hd", IBytes: 90000, PBytes: 30000, BBytes: 9000,
			FramePeriod: 33 * units.Millisecond, Deadline: 300 * units.Millisecond, Priority: 1},
		{Name: "sd", IBytes: 45000, PBytes: 15000, BBytes: 4500,
			FramePeriod: 33 * units.Millisecond, Deadline: 250 * units.Millisecond, Priority: 2},
		{Name: "ld", IBytes: 20000, PBytes: 7000, BBytes: 2100,
			FramePeriod: 33 * units.Millisecond, Deadline: 200 * units.Millisecond, Priority: 3},
	}
}

// GOP builds the profile's nine-frame IBBPBBPBB GMF cycle as a flow.
func (p VideoProfile) GOP(name string) *gmf.Flow {
	sizes := []int64{
		p.IBytes,
		p.BBytes, p.BBytes,
		p.PBytes,
		p.BBytes, p.BBytes,
		p.PBytes,
		p.BBytes, p.BBytes,
	}
	f := &gmf.Flow{Name: name}
	for _, bytes := range sizes {
		f.Frames = append(f.Frames, gmf.Frame{
			MinSep:      p.FramePeriod,
			Deadline:    p.Deadline,
			PayloadBits: bytes * 8,
		})
	}
	return f
}

// VideoMix builds the bursty GMF video-mix workload: a Ring(switches,
// hostsPer) industrial topology plus `streams` video flows cycling
// deterministically through the three VideoProfiles. Stream i starts at
// host (i mod hostsPer groups) of switch (i mod switches); three out of
// four streams stay edge-local (host → switch → host), every fourth
// crosses the ring backbone to the next switch — enough cross traffic
// that ring links matter without collapsing every closure into one.
// Stream i is named "vm<i>-<profile>".
//
// The returned specs are not yet registered anywhere: feed them to a
// Network, an admission controller or a benchmark as needed. The
// generator is fully deterministic, so differential tests can hand the
// identical workload to several controllers.
func VideoMix(switches, hostsPer, streams int) (*Topology, []*FlowSpec, error) {
	if hostsPer < 2 {
		return nil, nil, fmt.Errorf("network: video mix needs at least 2 hosts per switch")
	}
	topo, hosts, err := Ring(switches, hostsPer)
	if err != nil {
		return nil, nil, err
	}
	profiles := VideoProfiles()
	specs := make([]*FlowSpec, 0, streams)
	for i := 0; i < streams; i++ {
		p := profiles[i%len(profiles)]
		s := i % switches
		a := (i / switches) % hostsPer
		src := hosts[s*hostsPer+a]
		var dst NodeID
		if i%4 == 3 {
			// Cross the backbone: same host slot under the next switch.
			dst = hosts[((s+1)%switches)*hostsPer+a]
		} else {
			dst = hosts[s*hostsPer+(a+1)%hostsPer]
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			return nil, nil, fmt.Errorf("network: video mix stream %d: %w", i, err)
		}
		specs = append(specs, &FlowSpec{
			Flow:     p.GOP(fmt.Sprintf("vm%d-%s", i, p.Name)),
			Route:    route,
			Priority: p.Priority,
		})
	}
	return topo, specs, nil
}
