package network

import (
	"testing"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

func videoFlow(name string) *gmf.Flow {
	return &gmf.Flow{
		Name: name,
		Frames: []gmf.Frame{
			{MinSep: 30 * ms, Deadline: 100 * ms, Jitter: ms, PayloadBits: 144000},
			{MinSep: 30 * ms, Deadline: 100 * ms, Jitter: ms, PayloadBits: 12000},
			{MinSep: 30 * ms, Deadline: 100 * ms, Jitter: ms, PayloadBits: 48000},
		},
	}
}

func testNetwork(t *testing.T) *Network {
	t.Helper()
	topo := MustFigure1(Figure1Options{})
	nw := New(topo)
	// Flow 0: 0 -> 3 via 4,6 at priority 2.
	if _, err := nw.AddFlow(&FlowSpec{
		Flow: videoFlow("v0"), Route: []NodeID{"0", "4", "6", "3"}, Priority: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// Flow 1: 1 -> 3 via 4,6 at priority 1.
	if _, err := nw.AddFlow(&FlowSpec{
		Flow: videoFlow("v1"), Route: []NodeID{"1", "4", "6", "3"}, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Flow 2: 2 -> 7 via 5,6 at priority 2.
	if _, err := nw.AddFlow(&FlowSpec{
		Flow: videoFlow("v2"), Route: []NodeID{"2", "5", "6", "7"}, Priority: 2,
	}); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestFlowSpecNavigation(t *testing.T) {
	nw := testNetwork(t)
	fs := nw.Flow(0)
	if fs.Source() != "0" || fs.Destination() != "3" {
		t.Fatalf("endpoints: %s -> %s", fs.Source(), fs.Destination())
	}
	if s, ok := fs.Succ("4"); !ok || s != "6" {
		t.Fatalf("Succ(4) = %v,%v", s, ok)
	}
	if s, ok := fs.Succ("3"); ok {
		t.Fatalf("Succ(dest) = %v, want none", s)
	}
	if p, ok := fs.Prec("4"); !ok || p != "0" {
		t.Fatalf("Prec(4) = %v,%v", p, ok)
	}
	if _, ok := fs.Prec("0"); ok {
		t.Fatal("Prec(source) should not exist")
	}
	if !fs.Uses("4", "6") || fs.Uses("6", "4") || fs.Uses("2", "5") {
		t.Fatal("Uses wrong")
	}
}

func TestAddFlowErrors(t *testing.T) {
	nw := New(MustFigure1(Figure1Options{}))
	if _, err := nw.AddFlow(nil); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := nw.AddFlow(&FlowSpec{Flow: &gmf.Flow{Name: "e"}, Route: []NodeID{"0", "4", "3"}}); err == nil {
		t.Error("invalid flow accepted")
	}
	if _, err := nw.AddFlow(&FlowSpec{Flow: videoFlow("v"), Route: []NodeID{"0", "5", "3"}}); err == nil {
		t.Error("invalid route accepted")
	}
	if _, err := nw.AddFlow(&FlowSpec{Flow: videoFlow("v"), Route: []NodeID{"0", "4", "6", "3"}, Priority: -1}); err == nil {
		t.Error("negative priority accepted")
	}
}

func TestFlowsOn(t *testing.T) {
	nw := testNetwork(t)
	if got := nw.FlowsOn("4", "6"); !equalInts(got, []int{0, 1}) {
		t.Fatalf("FlowsOn(4,6) = %v", got)
	}
	if got := nw.FlowsOn("6", "3"); !equalInts(got, []int{0, 1}) {
		t.Fatalf("FlowsOn(6,3) = %v", got)
	}
	if got := nw.FlowsOn("6", "7"); !equalInts(got, []int{2}) {
		t.Fatalf("FlowsOn(6,7) = %v", got)
	}
	if got := nw.FlowsOn("6", "4"); got != nil {
		t.Fatalf("FlowsOn(6,4) = %v, want empty", got)
	}
}

func TestHEPAndLP(t *testing.T) {
	nw := testNetwork(t)
	// On link 4->6: flow 0 (prio 2) and flow 1 (prio 1).
	if got := nw.HEP(1, "4", "6"); !equalInts(got, []int{0}) {
		t.Fatalf("HEP(1) = %v, want [0]", got)
	}
	if got := nw.HEP(0, "4", "6"); got != nil {
		t.Fatalf("HEP(0) = %v, want empty", got)
	}
	if got := nw.LP(0, "4", "6"); !equalInts(got, []int{1}) {
		t.Fatalf("LP(0) = %v, want [1]", got)
	}
	if got := nw.LP(1, "4", "6"); got != nil {
		t.Fatalf("LP(1) = %v, want empty", got)
	}
}

func TestHEPEqualPriorityCountsBothWays(t *testing.T) {
	nw := testNetwork(t)
	// Add a second priority-2 flow on 0's link.
	if _, err := nw.AddFlow(&FlowSpec{
		Flow: videoFlow("v3"), Route: []NodeID{"1", "4", "6", "3"}, Priority: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if got := nw.HEP(0, "4", "6"); !equalInts(got, []int{3}) {
		t.Fatalf("HEP(0) = %v, want [3]", got)
	}
	if got := nw.HEP(3, "4", "6"); !equalInts(got, []int{0}) {
		t.Fatalf("HEP(3) = %v, want [0]", got)
	}
}

func TestRemoveFlowShiftsIndicesAndIndex(t *testing.T) {
	nw := testNetwork(t)
	// Remove the middle flow: v2 shifts from index 2 to 1.
	nw.RemoveFlow(1)
	if nw.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d, want 2", nw.NumFlows())
	}
	if nw.Flow(0).Flow.Name != "v0" || nw.Flow(1).Flow.Name != "v2" {
		t.Fatalf("order after removal: %q, %q", nw.Flow(0).Flow.Name, nw.Flow(1).Flow.Name)
	}
	if got := nw.FlowsOn("4", "6"); !equalInts(got, []int{0}) {
		t.Fatalf("FlowsOn(4,6) = %v, want [0]", got)
	}
	if got := nw.FlowsOn("6", "7"); !equalInts(got, []int{1}) {
		t.Fatalf("FlowsOn(6,7) = %v, want [1]", got)
	}
	// Out-of-range removals are no-ops.
	nw.RemoveFlow(-1)
	nw.RemoveFlow(7)
	if nw.NumFlows() != 2 {
		t.Fatalf("no-op removal changed NumFlows to %d", nw.NumFlows())
	}
}

// TestInsertFlowAtInvertsRemoveFlow checks the rollback primitive behind
// restore-across-removal: removing a middle flow and re-inserting its
// spec at the same index must restore the flow list, the link index and
// the interned pipelines exactly.
func TestInsertFlowAtInvertsRemoveFlow(t *testing.T) {
	nw := testNetwork(t)
	removed := nw.Flow(1)
	wantOn46 := append([]int(nil), nw.FlowsOn("4", "6")...)
	wantRes := append([]ResourceID(nil), nw.FlowResources(1)...)
	nw.RemoveFlow(1)
	if err := nw.InsertFlowAt(1, removed); err != nil {
		t.Fatal(err)
	}
	if nw.NumFlows() != 3 {
		t.Fatalf("NumFlows = %d, want 3", nw.NumFlows())
	}
	for i, name := range []string{"v0", "v1", "v2"} {
		if nw.Flow(i).Flow.Name != name {
			t.Fatalf("flow %d is %q, want %q", i, nw.Flow(i).Flow.Name, name)
		}
	}
	if got := nw.FlowsOn("4", "6"); !equalInts(got, wantOn46) {
		t.Fatalf("FlowsOn(4,6) = %v, want %v", got, wantOn46)
	}
	got := nw.FlowResources(1)
	if len(got) != len(wantRes) {
		t.Fatalf("pipeline length %d, want %d", len(got), len(wantRes))
	}
	for i := range wantRes {
		if got[i] != wantRes[i] {
			t.Fatalf("pipeline id %d = %v, want %v", i, got[i], wantRes[i])
		}
	}
	// Appending at the end and bad inputs.
	last := nw.Flow(2)
	nw.RemoveFlow(2)
	if err := nw.InsertFlowAt(nw.NumFlows(), last); err != nil {
		t.Fatal(err)
	}
	if nw.Flow(2).Flow.Name != "v2" {
		t.Fatalf("tail insert landed on %q", nw.Flow(2).Flow.Name)
	}
	if err := nw.InsertFlowAt(-1, last); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := nw.InsertFlowAt(99, last); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := nw.InsertFlowAt(0, nil); err == nil {
		t.Fatal("nil spec accepted")
	}
}

func TestInterferers(t *testing.T) {
	nw := testNetwork(t)
	// v0 (0->4->6->3) and v1 (1->4->6->3) share links 4->6 and 6->3;
	// v2 (2->5->6->7) shares nothing with either.
	if got := nw.Interferers(0); !equalInts(got, []int{1}) {
		t.Fatalf("Interferers(0) = %v, want [1]", got)
	}
	if got := nw.Interferers(1); !equalInts(got, []int{0}) {
		t.Fatalf("Interferers(1) = %v, want [0]", got)
	}
	if got := nw.Interferers(2); got != nil {
		t.Fatalf("Interferers(2) = %v, want empty", got)
	}
	if got := nw.Interferers(9); got != nil {
		t.Fatalf("Interferers(9) = %v, want empty", got)
	}
}

func TestFlowsOnMatchesScan(t *testing.T) {
	// The index-backed FlowsOn must agree with a direct route scan for
	// every link after a mix of additions and removals.
	nw := testNetwork(t)
	nw.RemoveFlow(0)
	if _, err := nw.AddFlow(&FlowSpec{
		Flow: videoFlow("v3"), Route: []NodeID{"0", "4", "6", "3"}, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	for _, l := range nw.Topo.Links() {
		var want []int
		for i, fs := range nw.Flows() {
			if fs.Uses(l.From, l.To) {
				want = append(want, i)
			}
		}
		if got := nw.FlowsOn(l.From, l.To); !equalInts(got, want) {
			t.Errorf("FlowsOn(%s,%s) = %v, want %v", l.From, l.To, got, want)
		}
	}
}

func TestRemoveLastFlow(t *testing.T) {
	nw := testNetwork(t)
	n := nw.NumFlows()
	nw.RemoveLastFlow()
	if nw.NumFlows() != n-1 {
		t.Fatalf("NumFlows = %d, want %d", nw.NumFlows(), n-1)
	}
	empty := New(MustFigure1(Figure1Options{}))
	empty.RemoveLastFlow() // must not panic
}

func TestNetworkValidate(t *testing.T) {
	nw := testNetwork(t)
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAssignPrioritiesDM(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	nw := New(topo)
	mk := func(name string, dl units.Time) *FlowSpec {
		return &FlowSpec{
			Flow: &gmf.Flow{Name: name, Frames: []gmf.Frame{
				{MinSep: 30 * ms, Deadline: dl, PayloadBits: 8000},
			}},
			Route: []NodeID{"0", "4", "6", "3"},
		}
	}
	for _, fs := range []*FlowSpec{mk("a", 100*ms), mk("b", 10*ms), mk("c", 50*ms), mk("d", 10*ms)} {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	nw.AssignPrioritiesDM()
	pa, pb, pc, pd := nw.Flow(0).Priority, nw.Flow(1).Priority, nw.Flow(2).Priority, nw.Flow(3).Priority
	if !(pb > pc && pc > pa) {
		t.Fatalf("priorities not deadline monotonic: a=%d b=%d c=%d", pa, pb, pc)
	}
	if pb != pd {
		t.Fatalf("equal deadlines got different priorities: b=%d d=%d", pb, pd)
	}
}

func TestCampus(t *testing.T) {
	topo, hosts, err := Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 6 {
		t.Fatalf("hosts = %d, want 6", len(hosts))
	}
	// Hosts are switch-major: hosts[2],[3] hang off sw1.
	route, err := topo.Route(hosts[2], hosts[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 || route[1] != "sw1" {
		t.Fatalf("local route = %v", route)
	}
	// Cross-campus route traverses the backbone chain.
	route, err = topo.Route(hosts[0], hosts[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 5 {
		t.Fatalf("cross route = %v", route)
	}
	if _, _, err := Campus(0, 2); err == nil {
		t.Fatal("Campus(0,2) succeeded")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
