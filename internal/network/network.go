// Package network models the multihop topology of the paper's Figure 1:
// IP-endhosts and IP-routers at the edge, software-implemented Ethernet
// switches in the middle, and directed links characterised by a bit rate
// and a propagation delay.
//
// The package also provides the notational helpers of Section 3:
// flows(N1,N2), hep(τi,N1,N2), lp(τi,N), succ(τj,N), prec(τj,N), the
// interface count NINTERFACES(N) and the stride-scheduling service period
// CIRC(N), including the multiprocessor generalisation from the paper's
// Conclusions.
//
// Beyond the paper's notation, Network maintains the indexes the
// analysis layer builds on: the reverse link-interference index
// (FlowsOn, Interferers), dense interned pipeline ResourceIDs
// (FlowResources), and the interference-closure partition (Closures,
// ClosureOf) — a union-find over resources that tells the sharded
// admission controller which flows can never exchange jitter. All are
// maintained incrementally under AddFlow, RemoveFlow and InsertFlowAt.
// See docs/ARCHITECTURE.md for how the layers fit together.
package network

import (
	"fmt"
	"sort"

	"gmfnet/internal/units"
)

// NodeID names a node in the topology.
type NodeID string

// NodeKind distinguishes the three node roles of the paper.
type NodeKind int

// Node kinds.
const (
	// EndHost is an IP-endhost, e.g. a PC running a conferencing
	// application. Flows start or end here; its queuing discipline is any
	// work-conserving one (the operator cannot control it).
	EndHost NodeKind = iota
	// Switch is a software-implemented Ethernet switch (Click-style) with
	// prioritised output queues and a stride-scheduled CPU.
	Switch
	// Router is an IP-router at the boundary of the analysed network. Like
	// an end host it can only be the source or destination of a flow; the
	// analysed route never traverses a router.
	Router
)

// String returns the lower-case kind name.
func (k NodeKind) String() string {
	switch k {
	case EndHost:
		return "endhost"
	case Switch:
		return "switch"
	case Router:
		return "router"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// SwitchParams holds the software-switch implementation characteristics
// measured in the paper.
type SwitchParams struct {
	// CRoute is CROUTE(N): the uninterrupted execution time to dequeue an
	// Ethernet frame from an input card, classify it and enqueue it in the
	// right priority queue (the paper measured 2.7 µs with Click).
	CRoute units.Time
	// CSend is CSEND(N): the time to move an Ethernet frame from a
	// priority queue into the output card's FIFO (the paper measured 1.0 µs).
	CSend units.Time
	// Processors is the number of CPUs in the switch. With m processors
	// and NINTERFACES(N) interfaces, each CPU serves ceil(NINTERFACES/m)
	// interfaces (Conclusions section); the default 0 means 1.
	Processors int
}

// DefaultSwitchParams returns the Click measurements from the paper:
// CROUTE = 2.7 µs, CSEND = 1.0 µs, one processor.
func DefaultSwitchParams() SwitchParams {
	return SwitchParams{
		CRoute:     2700 * units.Nanosecond,
		CSend:      1000 * units.Nanosecond,
		Processors: 1,
	}
}

// Node is a vertex of the topology.
type Node struct {
	ID     NodeID
	Kind   NodeKind
	Switch SwitchParams // meaningful only when Kind == Switch
}

// Link is a directed edge of the topology.
type Link struct {
	From, To NodeID
	// Rate is linkspeed(From,To) in bits per second.
	Rate units.BitRate
	// Prop is prop(From,To): the propagation delay.
	Prop units.Time
}

// Topology is the set of nodes and directed links.
type Topology struct {
	nodes map[NodeID]*Node
	links map[[2]NodeID]*Link
	adj   map[NodeID][]NodeID // outgoing neighbours, sorted

	// ifCount memoizes Interfaces per node. AddLink updates it eagerly
	// for both endpoints, so reads never write — the analysis queries
	// CIRC (and through it Interfaces) from concurrent workers.
	ifCount map[NodeID]int
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		nodes:   make(map[NodeID]*Node),
		links:   make(map[[2]NodeID]*Link),
		adj:     make(map[NodeID][]NodeID),
		ifCount: make(map[NodeID]int),
	}
}

// AddHost adds an IP-endhost node.
func (t *Topology) AddHost(id NodeID) error { return t.addNode(&Node{ID: id, Kind: EndHost}) }

// AddRouter adds an IP-router node.
func (t *Topology) AddRouter(id NodeID) error { return t.addNode(&Node{ID: id, Kind: Router}) }

// AddSwitch adds a software Ethernet switch with the given implementation
// parameters.
func (t *Topology) AddSwitch(id NodeID, p SwitchParams) error {
	if p.CRoute <= 0 || p.CSend <= 0 {
		return fmt.Errorf("network: switch %q: CRoute and CSend must be positive", id)
	}
	if p.Processors < 0 {
		return fmt.Errorf("network: switch %q: negative processor count", id)
	}
	if p.Processors == 0 {
		p.Processors = 1
	}
	return t.addNode(&Node{ID: id, Kind: Switch, Switch: p})
}

func (t *Topology) addNode(n *Node) error {
	if n.ID == "" {
		return fmt.Errorf("network: empty node id")
	}
	if _, dup := t.nodes[n.ID]; dup {
		return fmt.Errorf("network: duplicate node %q", n.ID)
	}
	t.nodes[n.ID] = n
	return nil
}

// AddLink adds a directed link.
func (t *Topology) AddLink(from, to NodeID, rate units.BitRate, prop units.Time) error {
	if _, ok := t.nodes[from]; !ok {
		return fmt.Errorf("network: link source %q unknown", from)
	}
	if _, ok := t.nodes[to]; !ok {
		return fmt.Errorf("network: link target %q unknown", to)
	}
	if from == to {
		return fmt.Errorf("network: self-link on %q", from)
	}
	if rate <= 0 {
		return fmt.Errorf("network: link %q->%q: non-positive rate", from, to)
	}
	if prop < 0 {
		return fmt.Errorf("network: link %q->%q: negative propagation delay", from, to)
	}
	key := [2]NodeID{from, to}
	if _, dup := t.links[key]; dup {
		return fmt.Errorf("network: duplicate link %q->%q", from, to)
	}
	// A new neighbour pair occupies one interface on each endpoint; the
	// reverse direction of an existing link reuses the same interfaces.
	if _, back := t.links[[2]NodeID{to, from}]; !back {
		t.ifCount[from]++
		t.ifCount[to]++
	}
	t.links[key] = &Link{From: from, To: to, Rate: rate, Prop: prop}
	t.adj[from] = insertSorted(t.adj[from], to)
	return nil
}

// AddDuplexLink adds both directions of a full-duplex link with identical
// rate and propagation delay (switched Ethernet is full duplex).
func (t *Topology) AddDuplexLink(a, b NodeID, rate units.BitRate, prop units.Time) error {
	if err := t.AddLink(a, b, rate, prop); err != nil {
		return err
	}
	return t.AddLink(b, a, rate, prop)
}

func insertSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// Node returns the node with the given id, or nil.
func (t *Topology) Node(id NodeID) *Node { return t.nodes[id] }

// Link returns the directed link, or nil.
func (t *Topology) Link(from, to NodeID) *Link { return t.links[[2]NodeID{from, to}] }

// Nodes returns all nodes sorted by id.
func (t *Topology) Nodes() []*Node {
	out := make([]*Node, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns all links sorted by (from, to).
func (t *Topology) Links() []*Link {
	out := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Neighbors returns the outgoing neighbours of a node, sorted.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.adj[id] }

// Interfaces returns NINTERFACES(N): the number of network interfaces on
// the node. A full-duplex neighbour relation counts as one interface; a
// neighbour connected in only one direction also occupies an interface.
// The count is maintained incrementally under AddLink, so the analysis
// hot path (every CIRC query) reads a single map entry instead of
// scanning all links.
func (t *Topology) Interfaces(id NodeID) int {
	return t.ifCount[id]
}

// CIRC returns eq. "CIRC(N)": the worst-case time between two consecutive
// services of the same software task on switch N. With round-robin stride
// scheduling over one route task and one send task per interface, a task
// waits for NINTERFACES(N)×(CROUTE+CSEND) when one processor is used; with
// m processors each CPU serves ceil(NINTERFACES/m) interfaces (Conclusions).
func (t *Topology) CIRC(id NodeID) (units.Time, error) {
	n := t.nodes[id]
	if n == nil {
		return 0, fmt.Errorf("network: unknown node %q", id)
	}
	if n.Kind != Switch {
		return 0, fmt.Errorf("network: CIRC of non-switch node %q", id)
	}
	nif := t.Interfaces(id)
	if nif == 0 {
		return 0, fmt.Errorf("network: switch %q has no interfaces", id)
	}
	perCPU := units.CeilDiv(int64(nif), int64(n.Switch.Processors))
	return units.Time(perCPU) * (n.Switch.CRoute + n.Switch.CSend), nil
}

// Route computes a shortest path from src to dst whose intermediate nodes
// are all switches (the paper's routes never traverse IP-routers or hosts).
// Ties are broken deterministically by node id.
func (t *Topology) Route(src, dst NodeID) ([]NodeID, error) {
	if t.Node(src) == nil {
		return nil, fmt.Errorf("network: unknown source %q", src)
	}
	if t.Node(dst) == nil {
		return nil, fmt.Errorf("network: unknown destination %q", dst)
	}
	if src == dst {
		return nil, fmt.Errorf("network: source equals destination %q", src)
	}
	// BFS where only switches may be expanded as intermediate hops.
	prev := map[NodeID]NodeID{src: src}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur != src && t.Node(cur).Kind != Switch {
			continue // hosts/routers terminate a path
		}
		for _, nb := range t.adj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == dst {
				var path []NodeID
				for at := dst; ; at = prev[at] {
					path = append(path, at)
					if at == src {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("network: no switch-only route from %q to %q", src, dst)
}

// ValidateRoute checks that a route is usable by a flow: it starts and
// ends at an endhost or router, every consecutive pair is a link, all
// intermediate nodes are switches, and no node repeats.
func (t *Topology) ValidateRoute(route []NodeID) error {
	if len(route) < 2 {
		return fmt.Errorf("network: route needs at least two nodes, got %d", len(route))
	}
	seen := make(map[NodeID]bool, len(route))
	for i, id := range route {
		n := t.Node(id)
		if n == nil {
			return fmt.Errorf("network: route node %q unknown", id)
		}
		if seen[id] {
			return fmt.Errorf("network: route visits %q twice", id)
		}
		seen[id] = true
		switch {
		case i == 0 || i == len(route)-1:
			if n.Kind == Switch {
				return fmt.Errorf("network: route endpoint %q is a switch", id)
			}
		default:
			if n.Kind != Switch {
				return fmt.Errorf("network: route intermediate %q is not a switch", id)
			}
		}
		if i > 0 && t.Link(route[i-1], id) == nil {
			return fmt.Errorf("network: route misses link %q->%q", route[i-1], id)
		}
	}
	return nil
}
