package network

import (
	"strings"
	"testing"

	"gmfnet/internal/units"
)

func TestWriteDOTFigure1(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	var b strings.Builder
	if err := topo.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "graph topology {") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a DOT document:\n%s", out)
	}
	// Node shapes per kind.
	for _, want := range []string{
		`"0" [shape=box]`, `"4" [shape=circle]`, `"7" [shape=diamond]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Duplex links render once: 7 physical links, 7 edges.
	if got := strings.Count(out, " -- "); got != 7 {
		t.Fatalf("edges = %d, want 7", got)
	}
	if !strings.Contains(out, "10Mbit/s") {
		t.Error("rate label missing")
	}
	if strings.Contains(out, "dir=forward") {
		t.Error("duplex topology rendered directed edges")
	}
}

func TestWriteDOTDirectedLink(t *testing.T) {
	topo := NewTopology()
	mustOK(t, topo.AddHost("a"))
	mustOK(t, topo.AddHost("b"))
	mustOK(t, topo.AddLink("a", "b", units.Mbps, 0)) // one direction only
	var b strings.Builder
	if err := topo.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dir=forward") {
		t.Fatalf("one-way link not rendered directed:\n%s", b.String())
	}
}

func TestWriteDOTAsymmetricRates(t *testing.T) {
	topo := NewTopology()
	mustOK(t, topo.AddHost("a"))
	mustOK(t, topo.AddHost("b"))
	mustOK(t, topo.AddLink("a", "b", units.Mbps, 0))
	mustOK(t, topo.AddLink("b", "a", 2*units.Mbps, 0))
	var b strings.Builder
	if err := topo.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	// Different rates per direction: both directions rendered.
	if got := strings.Count(b.String(), "dir=forward"); got != 2 {
		t.Fatalf("directed edges = %d, want 2:\n%s", got, b.String())
	}
}
