package network

import (
	"fmt"

	"gmfnet/internal/units"
)

// Campus builds the standard multi-switch workload topology used by the
// admission benchmarks and gmfnet-admit's stream mode: `switches`
// software switches (default Click parameters) chained over a 1 Gbit/s
// backbone, each serving `hostsPer` hosts on 100 Mbit/s edge links.
// Switch s is named "sw<s>" and its hosts "h<s>_<h>"; the returned host
// list is in switch-major order, so hosts[s*hostsPer:(s+1)*hostsPer] are
// the hosts under switch s.
func Campus(switches, hostsPer int) (*Topology, []NodeID, error) {
	if switches < 1 || hostsPer < 1 {
		return nil, nil, fmt.Errorf("network: campus needs at least 1 switch and 1 host per switch")
	}
	topo := NewTopology()
	for s := 0; s < switches; s++ {
		id := NodeID(fmt.Sprintf("sw%d", s))
		if err := topo.AddSwitch(id, DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
		if s > 0 {
			prev := NodeID(fmt.Sprintf("sw%d", s-1))
			if err := topo.AddDuplexLink(prev, id, units.Gbps, 5*units.Microsecond); err != nil {
				return nil, nil, err
			}
		}
	}
	hosts := make([]NodeID, 0, switches*hostsPer)
	for s := 0; s < switches; s++ {
		sw := NodeID(fmt.Sprintf("sw%d", s))
		for h := 0; h < hostsPer; h++ {
			id := NodeID(fmt.Sprintf("h%d_%d", s, h))
			if err := topo.AddHost(id); err != nil {
				return nil, nil, err
			}
			if err := topo.AddDuplexLink(id, sw, 100*units.Mbps, units.Microsecond); err != nil {
				return nil, nil, err
			}
			hosts = append(hosts, id)
		}
	}
	return topo, hosts, nil
}
