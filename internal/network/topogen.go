package network

import (
	"fmt"

	"gmfnet/internal/units"
)

// Ring builds an industrial-ring topology: `switches` software switches
// (default Click parameters) connected in a ring over 1 Gbit/s links, each
// serving `hostsPer` hosts on 100 Mbit/s edge links. Rings are the
// standard shape of factory-floor and substation networks, where the
// second backbone path exists for redundancy; here it also halves the
// worst-case hop count the analysis has to traverse. Switch s is named
// "sw<s>" and its hosts "h<s>_<h>"; the returned host list is in
// switch-major order, matching Campus.
//
// With fewer than three switches the ring degenerates: two switches get a
// single backbone link, one switch gets none.
func Ring(switches, hostsPer int) (*Topology, []NodeID, error) {
	if switches < 1 || hostsPer < 1 {
		return nil, nil, fmt.Errorf("network: ring needs at least 1 switch and 1 host per switch")
	}
	topo := NewTopology()
	for s := 0; s < switches; s++ {
		if err := topo.AddSwitch(NodeID(fmt.Sprintf("sw%d", s)), DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
	}
	for s := 0; s < switches; s++ {
		next := (s + 1) % switches
		if next == s || (switches == 2 && s == 1) {
			continue // no self-link; don't duplicate the 2-switch link
		}
		a := NodeID(fmt.Sprintf("sw%d", s))
		b := NodeID(fmt.Sprintf("sw%d", next))
		if err := topo.AddDuplexLink(a, b, units.Gbps, 5*units.Microsecond); err != nil {
			return nil, nil, err
		}
	}
	hosts := make([]NodeID, 0, switches*hostsPer)
	for s := 0; s < switches; s++ {
		sw := NodeID(fmt.Sprintf("sw%d", s))
		for h := 0; h < hostsPer; h++ {
			id := NodeID(fmt.Sprintf("h%d_%d", s, h))
			if err := topo.AddHost(id); err != nil {
				return nil, nil, err
			}
			if err := topo.AddDuplexLink(id, sw, 100*units.Mbps, units.Microsecond); err != nil {
				return nil, nil, err
			}
			hosts = append(hosts, id)
		}
	}
	return topo, hosts, nil
}

// FatTree builds a k-ary fat tree (k even, k >= 2): k pods of k/2 edge and
// k/2 aggregation switches, (k/2)^2 core switches, and k/2 hosts per edge
// switch — k^3/4 hosts total. Every switch uses the default Click
// parameters; host links run at 100 Mbit/s, switch-to-switch links at
// 1 Gbit/s. Core switch c is named "core<c>", aggregation switch a of pod
// p "agg<p>_<a>", edge switch e of pod p "edge<p>_<e>" and its hosts
// "h<p>_<e>_<i>". The returned host list is edge-major: hosts under one
// edge switch are contiguous.
func FatTree(k int) (*Topology, []NodeID, error) {
	if k < 2 || k%2 != 0 {
		return nil, nil, fmt.Errorf("network: fat tree arity %d must be even and >= 2", k)
	}
	topo := NewTopology()
	half := k / 2
	for c := 0; c < half*half; c++ {
		if err := topo.AddSwitch(NodeID(fmt.Sprintf("core%d", c)), DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			agg := NodeID(fmt.Sprintf("agg%d_%d", p, a))
			if err := topo.AddSwitch(agg, DefaultSwitchParams()); err != nil {
				return nil, nil, err
			}
			// Aggregation switch a uplinks to the a-th group of core
			// switches, one per group member.
			for c := 0; c < half; c++ {
				core := NodeID(fmt.Sprintf("core%d", a*half+c))
				if err := topo.AddDuplexLink(agg, core, units.Gbps, 5*units.Microsecond); err != nil {
					return nil, nil, err
				}
			}
		}
		for e := 0; e < half; e++ {
			edge := NodeID(fmt.Sprintf("edge%d_%d", p, e))
			if err := topo.AddSwitch(edge, DefaultSwitchParams()); err != nil {
				return nil, nil, err
			}
			for a := 0; a < half; a++ {
				agg := NodeID(fmt.Sprintf("agg%d_%d", p, a))
				if err := topo.AddDuplexLink(edge, agg, units.Gbps, 5*units.Microsecond); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	hosts := make([]NodeID, 0, k*half*half)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			edge := NodeID(fmt.Sprintf("edge%d_%d", p, e))
			for i := 0; i < half; i++ {
				id := NodeID(fmt.Sprintf("h%d_%d_%d", p, e, i))
				if err := topo.AddHost(id); err != nil {
					return nil, nil, err
				}
				if err := topo.AddDuplexLink(id, edge, 100*units.Mbps, units.Microsecond); err != nil {
					return nil, nil, err
				}
				hosts = append(hosts, id)
			}
		}
	}
	return topo, hosts, nil
}
