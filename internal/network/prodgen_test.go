package network

import (
	"fmt"
	"testing"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

func TestBackboneShape(t *testing.T) {
	const pops, aggPer, hostsPer = 4, 3, 2
	topo, hosts, err := Backbone(pops, aggPer, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	if want := pops * aggPer * hostsPer; len(hosts) != want {
		t.Fatalf("hosts = %d, want %d", len(hosts), want)
	}
	// Every PoP has two ring neighbours plus its aggregation switches.
	for p := 0; p < pops; p++ {
		id := NodeID(fmt.Sprintf("pop%d", p))
		if n := topo.Interfaces(id); n != 2+aggPer {
			t.Fatalf("PoP %s interfaces = %d, want %d", id, n, 2+aggPer)
		}
	}
	// Host list is aggregation-major: group g sits under agg g.
	for g := 0; g < pops*aggPer; g++ {
		p, a := g/aggPer, g%aggPer
		for i := 0; i < hostsPer; i++ {
			want := NodeID(fmt.Sprintf("h%d_%d_%d", p, a, i))
			if got := hosts[g*hostsPer+i]; got != want {
				t.Fatalf("hosts[%d] = %s, want %s", g*hostsPer+i, got, want)
			}
		}
	}
	// Access-local routes stay under the aggregation switch; cross-PoP
	// routes climb agg -> pop -> ... -> pop -> agg.
	local, err := topo.Route(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 3 {
		t.Fatalf("local route %v, want 1 switch hop", local)
	}
	cross, err := topo.Route("h0_0_0", "h2_0_0")
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.ValidateRoute(cross); err != nil {
		t.Fatal(err)
	}
	if len(cross) != 2+2+3 { // 2 hosts, 2 aggs, pop0..pop2 short arc
		t.Fatalf("cross-PoP route %v, want 5 switch hops", cross)
	}
	// Degenerate PoP counts still build (Ring's 1- and 2-switch cases).
	for _, n := range []int{1, 2} {
		if _, _, err := Backbone(n, 1, 1); err != nil {
			t.Fatalf("Backbone(%d, 1, 1): %v", n, err)
		}
	}
	if _, _, err := Backbone(0, 1, 1); err == nil {
		t.Fatal("Backbone(0, 1, 1) succeeded")
	}
	if _, _, err := Backbone(1, 0, 1); err == nil {
		t.Fatal("Backbone(1, 0, 1) succeeded")
	}
}

func TestFronthaulShape(t *testing.T) {
	const hubs, cellsPer, ruPer = 3, 2, 4
	topo, hosts, err := Fronthaul(hubs, cellsPer, ruPer)
	if err != nil {
		t.Fatal(err)
	}
	if want := hubs * cellsPer * ruPer; len(hosts) != want {
		t.Fatalf("hosts = %d, want %d", len(hosts), want)
	}
	// Interior CU switches link to both chain neighbours and their cells.
	if n := topo.Interfaces("cu1"); n != 2+cellsPer {
		t.Fatalf("cu1 interfaces = %d, want %d", n, 2+cellsPer)
	}
	// Host list is cell-major.
	for g := 0; g < hubs*cellsPer; g++ {
		h, c := g/cellsPer, g%cellsPer
		for r := 0; r < ruPer; r++ {
			want := NodeID(fmt.Sprintf("ru%d_%d_%d", h, c, r))
			if got := hosts[g*ruPer+r]; got != want {
				t.Fatalf("hosts[%d] = %s, want %s", g*ruPer+r, got, want)
			}
		}
	}
	local, err := topo.Route(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 3 {
		t.Fatalf("cell-local route %v, want 1 switch hop", local)
	}
	// Cross-hub routes traverse the backhaul chain.
	cross, err := topo.Route("ru0_0_0", "ru2_1_0")
	if err != nil {
		t.Fatal(err)
	}
	if len(cross) != 2+2+3 { // 2 RUs, 2 DUs, cu0 cu1 cu2
		t.Fatalf("cross-hub route %v, want 5 switch hops", cross)
	}
	if _, _, err := Fronthaul(0, 1, 1); err == nil {
		t.Fatal("Fronthaul(0, 1, 1) succeeded")
	}
	if _, _, err := Fronthaul(1, 1, 0); err == nil {
		t.Fatal("Fronthaul(1, 1, 0) succeeded")
	}
}

func TestClosTenantShape(t *testing.T) {
	const spines, leaves, hostsPer = 2, 4, 3
	topo, hosts, err := ClosTenant(spines, leaves, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	if want := leaves * hostsPer; len(hosts) != want {
		t.Fatalf("hosts = %d, want %d", len(hosts), want)
	}
	// Full bipartite fabric: every spine sees every leaf and vice versa.
	for s := 0; s < spines; s++ {
		id := NodeID(fmt.Sprintf("spine%d", s))
		if n := topo.Interfaces(id); n != leaves {
			t.Fatalf("spine %s interfaces = %d, want %d", id, n, leaves)
		}
	}
	for l := 0; l < leaves; l++ {
		id := NodeID(fmt.Sprintf("leaf%d", l))
		if n := topo.Interfaces(id); n != spines+hostsPer {
			t.Fatalf("leaf %s interfaces = %d, want %d", id, n, spines+hostsPer)
		}
	}
	// Host list is leaf-major.
	for l := 0; l < leaves; l++ {
		for i := 0; i < hostsPer; i++ {
			want := NodeID(fmt.Sprintf("h%d_%d", l, i))
			if got := hosts[l*hostsPer+i]; got != want {
				t.Fatalf("hosts[%d] = %s, want %s", l*hostsPer+i, got, want)
			}
		}
	}
	local, err := topo.Route(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 3 {
		t.Fatalf("rack-local route %v, want 1 switch hop", local)
	}
	// Leaf-to-leaf routes cross exactly one spine.
	cross, err := topo.Route("h0_0", "h3_0")
	if err != nil {
		t.Fatal(err)
	}
	if len(cross) != 5 {
		t.Fatalf("cross-leaf route %v, want leaf-spine-leaf", cross)
	}
	if _, _, err := ClosTenant(0, 1, 1); err == nil {
		t.Fatal("ClosTenant(0, 1, 1) succeeded")
	}
	if _, _, err := ClosTenant(1, 0, 1); err == nil {
		t.Fatal("ClosTenant(1, 0, 1) succeeded")
	}
}

// TestProductionGeneratorsShardFinely pins the closure story the load
// harness depends on: locality-group-local flows across distinct host
// pairs share no pipeline resource, so a production topology carries one
// closure per active host pair — thousands at scale — rather than one
// per switch.
func TestProductionGeneratorsShardFinely(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*Topology, []NodeID, error)
		group int
	}{
		{"backbone", func() (*Topology, []NodeID, error) { return Backbone(3, 4, 4) }, 4},
		{"fronthaul", func() (*Topology, []NodeID, error) { return Fronthaul(3, 4, 4) }, 4},
		{"clos", func() (*Topology, []NodeID, error) { return ClosTenant(2, 12, 4) }, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo, hosts, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			nw := New(topo)
			flows := 0
			for g := 0; g*tc.group+1 < len(hosts); g++ {
				// Two disjoint local pairs per group: 0->1 and 2->3.
				for _, pair := range [][2]int{{0, 1}, {2, 3}} {
					src := hosts[g*tc.group+pair[0]]
					dst := hosts[g*tc.group+pair[1]]
					route, err := topo.Route(src, dst)
					if err != nil {
						t.Fatal(err)
					}
					fs := &FlowSpec{
						Flow: &gmf.Flow{Name: fmt.Sprintf("f%d_%d", g, pair[0]), Frames: []gmf.Frame{
							{MinSep: 20 * units.Millisecond, Deadline: 100 * units.Millisecond, PayloadBits: 160 * 8},
						}},
						Route: route,
					}
					if _, err := nw.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
					flows++
				}
			}
			if nc := nw.NumClosures(); nc != flows {
				t.Fatalf("%d disjoint local flows form %d closures, want one each", flows, nc)
			}
		})
	}
}
