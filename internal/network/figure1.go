package network

import "gmfnet/internal/units"

// Figure1Options configures the example network of the paper's Figure 1.
type Figure1Options struct {
	// Rate is the speed of every link; the paper's worked example uses
	// 10 Mbit/s on link(0,4). Zero selects 10 Mbit/s.
	Rate units.BitRate
	// Prop is the propagation delay of every link; zero means zero delay
	// (LAN scale).
	Prop units.Time
	// Switch holds the software-switch parameters; the zero value selects
	// the paper's Click measurements.
	Switch SwitchParams
}

// Figure1 builds the example network of the paper's Figure 1: IP-endhosts
// 0-3, software Ethernet switches 4-6 and IP-router 7, wired as
//
//	0 ── 4 ── 6 ── 3
//	1 ── 4    6 ── 7 (router)
//	2 ── 5 ── 6
//
// All links are full duplex. The worked example's flow runs 0 → 4 → 6 → 3
// (Figure 2).
func Figure1(opt Figure1Options) (*Topology, error) {
	if opt.Rate == 0 {
		opt.Rate = 10 * units.Mbps
	}
	if opt.Switch == (SwitchParams{}) {
		opt.Switch = DefaultSwitchParams()
	}
	t := NewTopology()
	for _, h := range []NodeID{"0", "1", "2", "3"} {
		if err := t.AddHost(h); err != nil {
			return nil, err
		}
	}
	for _, s := range []NodeID{"4", "5", "6"} {
		if err := t.AddSwitch(s, opt.Switch); err != nil {
			return nil, err
		}
	}
	if err := t.AddRouter("7"); err != nil {
		return nil, err
	}
	pairs := [][2]NodeID{
		{"0", "4"}, {"1", "4"}, {"2", "5"},
		{"4", "6"}, {"5", "6"},
		{"6", "3"}, {"6", "7"},
	}
	for _, p := range pairs {
		if err := t.AddDuplexLink(p[0], p[1], opt.Rate, opt.Prop); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustFigure1 is Figure1 for tests and examples; it panics on error, which
// cannot happen for a well-formed option set.
func MustFigure1(opt Figure1Options) *Topology {
	t, err := Figure1(opt)
	if err != nil {
		panic(err)
	}
	return t
}
