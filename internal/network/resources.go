package network

// ResourceID is a dense integer identifier for one pipeline resource: a
// directed link (first-hop or egress queue plus wire) or an ingress stage
// in(N) reached over one input interface. The network interns a resource
// the first time a flow's pipeline crosses it and the id stays stable for
// the lifetime of the network — flows come and go, resource ids do not.
// The analysis engine indexes its flat jitter arenas and demand tables by
// these ids instead of hashing (kind, node, node) structs in its innermost
// loops.
type ResourceID int32

// resourceKey identifies a resource for interning: Ingress distinguishes
// the in(N) stage (Node = switch, To = predecessor, i.e. the input
// interface) from a directed link (Node = transmitter, To = receiver).
type resourceKey struct {
	Ingress  bool
	Node, To NodeID
}

// internResource returns the id of the resource, interning it on first
// use. The table only grows: the number of distinct resources is bounded
// by the topology (at most two per directed link), not by the flow churn.
func (nw *Network) internResource(key resourceKey) ResourceID {
	if id, ok := nw.resIDs[key]; ok {
		return id
	}
	id := ResourceID(len(nw.resKeys))
	nw.resIDs[key] = id
	nw.resKeys = append(nw.resKeys, key)
	return id
}

// internFlowResources interns the pipeline of a flow in route order —
// first-hop link, then (ingress, egress link) per intermediate switch —
// and returns the ids. The order matches the stage decomposition of the
// analysis (Figure 6): stage 0 is the first hop, stage 2h-1 the ingress of
// the h-th route node, stage 2h its egress.
func (nw *Network) internFlowResources(fs *FlowSpec) []ResourceID {
	route := fs.Route
	out := make([]ResourceID, 0, 1+2*(len(route)-2))
	out = append(out, nw.internResource(resourceKey{false, route[0], route[1]}))
	for h := 1; h < len(route)-1; h++ {
		out = append(out,
			nw.internResource(resourceKey{true, route[h], route[h-1]}),
			nw.internResource(resourceKey{false, route[h], route[h+1]}),
		)
	}
	return out
}

// NumResources returns the number of interned pipeline resources. Ids are
// dense: every id in [0, NumResources) identifies a resource some flow has
// used at least once.
func (nw *Network) NumResources() int { return len(nw.resKeys) }

// FlowResources returns the interned pipeline of the i-th flow in route
// order (see internFlowResources for the stage layout). The slice is owned
// by the network; callers must not mutate it.
func (nw *Network) FlowResources(i int) []ResourceID { return nw.flowRes[i] }

// LinkResourceID returns the id of the directed link from->to, if any flow
// has used it.
func (nw *Network) LinkResourceID(from, to NodeID) (ResourceID, bool) {
	id, ok := nw.resIDs[resourceKey{false, from, to}]
	return id, ok
}

// IngressResourceID returns the id of switch node's ingress stage fed from
// pred, if any flow has used it.
func (nw *Network) IngressResourceID(node, pred NodeID) (ResourceID, bool) {
	id, ok := nw.resIDs[resourceKey{true, node, pred}]
	return id, ok
}
