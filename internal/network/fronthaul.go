package network

import (
	"fmt"

	"gmfnet/internal/units"
)

// Fronthaul builds a 5G-fronthaul topology: `hubs` central-unit
// switches ("cu<h>") chained over a 10 Gbit/s backhaul, each serving
// `cellsPer` distributed-unit switches ("du<h>_<c>") on 1 Gbit/s
// midhaul links, each cell terminating `ruPer` radio-unit hosts
// ("ru<h>_<c>_<r>") on 100 Mbit/s fronthaul drops. The returned host
// list is cell-major: hosts[g*ruPer:(g+1)*ruPer] are the radio units
// of cell g = h*cellsPer+c, the locality-group layout the workload
// synthesizer keys on.
//
// Closure behaviour mirrors Backbone one level down: cell-local
// traffic (RU to RU under one DU) forms many fine closures per cell,
// while flows that climb to the CU or cross hubs chain closures along
// the midhaul and backhaul — churn-heavy traces fuse and re-split
// closures constantly, which is exactly the stress the shard scheduler
// needs.
func Fronthaul(hubs, cellsPer, ruPer int) (*Topology, []NodeID, error) {
	if hubs < 1 || cellsPer < 1 || ruPer < 1 {
		return nil, nil, fmt.Errorf("network: fronthaul needs at least 1 hub, 1 cell per hub and 1 radio unit per cell")
	}
	topo := NewTopology()
	for h := 0; h < hubs; h++ {
		id := NodeID(fmt.Sprintf("cu%d", h))
		if err := topo.AddSwitch(id, DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
		if h > 0 {
			prev := NodeID(fmt.Sprintf("cu%d", h-1))
			if err := topo.AddDuplexLink(prev, id, 10*units.Gbps, 5*units.Microsecond); err != nil {
				return nil, nil, err
			}
		}
	}
	hosts := make([]NodeID, 0, hubs*cellsPer*ruPer)
	for h := 0; h < hubs; h++ {
		cu := NodeID(fmt.Sprintf("cu%d", h))
		for c := 0; c < cellsPer; c++ {
			du := NodeID(fmt.Sprintf("du%d_%d", h, c))
			if err := topo.AddSwitch(du, DefaultSwitchParams()); err != nil {
				return nil, nil, err
			}
			if err := topo.AddDuplexLink(du, cu, units.Gbps, 5*units.Microsecond); err != nil {
				return nil, nil, err
			}
			for r := 0; r < ruPer; r++ {
				id := NodeID(fmt.Sprintf("ru%d_%d_%d", h, c, r))
				if err := topo.AddHost(id); err != nil {
					return nil, nil, err
				}
				if err := topo.AddDuplexLink(id, du, 100*units.Mbps, units.Microsecond); err != nil {
					return nil, nil, err
				}
				hosts = append(hosts, id)
			}
		}
	}
	return topo, hosts, nil
}
