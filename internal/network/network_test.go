package network

import (
	"strings"
	"testing"

	"gmfnet/internal/units"
)

const (
	ms = units.Millisecond
	us = units.Microsecond
)

func TestAddNodesAndLinks(t *testing.T) {
	topo := NewTopology()
	if err := topo.AddHost("h1"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSwitch("s1", DefaultSwitchParams()); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddRouter("r1"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("h1", "s1", 10*units.Mbps, 0); err != nil {
		t.Fatal(err)
	}
	if topo.Node("h1").Kind != EndHost || topo.Node("s1").Kind != Switch || topo.Node("r1").Kind != Router {
		t.Fatal("node kinds wrong")
	}
	l := topo.Link("h1", "s1")
	if l == nil || l.Rate != 10*units.Mbps {
		t.Fatalf("link lookup: %+v", l)
	}
	if topo.Link("s1", "h1") != nil {
		t.Fatal("reverse link should not exist")
	}
}

func TestAddErrors(t *testing.T) {
	topo := NewTopology()
	if err := topo.AddHost(""); err == nil {
		t.Error("empty id accepted")
	}
	mustOK(t, topo.AddHost("a"))
	if err := topo.AddHost("a"); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := topo.AddSwitch("s", SwitchParams{CRoute: 0, CSend: 1}); err == nil {
		t.Error("zero CRoute accepted")
	}
	if err := topo.AddSwitch("s", SwitchParams{CRoute: 1, CSend: 1, Processors: -1}); err == nil {
		t.Error("negative processors accepted")
	}
	mustOK(t, topo.AddHost("b"))
	if err := topo.AddLink("a", "zz", units.Mbps, 0); err == nil {
		t.Error("unknown target accepted")
	}
	if err := topo.AddLink("zz", "a", units.Mbps, 0); err == nil {
		t.Error("unknown source accepted")
	}
	if err := topo.AddLink("a", "a", units.Mbps, 0); err == nil {
		t.Error("self link accepted")
	}
	if err := topo.AddLink("a", "b", 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if err := topo.AddLink("a", "b", units.Mbps, -1); err == nil {
		t.Error("negative prop accepted")
	}
	mustOK(t, topo.AddLink("a", "b", units.Mbps, 0))
	if err := topo.AddLink("a", "b", units.Mbps, 0); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestNodeKindString(t *testing.T) {
	if EndHost.String() != "endhost" || Switch.String() != "switch" || Router.String() != "router" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(NodeKind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}

func TestNodesLinksSorted(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	nodes := topo.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatal("Nodes not sorted")
		}
	}
	links := topo.Links()
	if len(links) != 14 {
		t.Fatalf("Figure1 has %d directed links, want 14", len(links))
	}
	for i := 1; i < len(links); i++ {
		a, b := links[i-1], links[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatal("Links not sorted")
		}
	}
}

func TestInterfacesAndCIRC(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	// Switch 6 connects to 4, 5, 3, 7: four interfaces, like the paper's
	// Figure 5 example.
	if got := topo.Interfaces("6"); got != 4 {
		t.Fatalf("Interfaces(6) = %d, want 4", got)
	}
	circ, err := topo.CIRC("6")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: CIRC = 4 × (2.7 + 1.0) µs = 14.8 µs.
	if circ != 14800*units.Nanosecond {
		t.Fatalf("CIRC(6) = %v, want 14.8µs", circ)
	}
	if got := topo.Interfaces("4"); got != 3 {
		t.Fatalf("Interfaces(4) = %d, want 3", got)
	}
	if _, err := topo.CIRC("0"); err == nil {
		t.Error("CIRC of a host should fail")
	}
	if _, err := topo.CIRC("nope"); err == nil {
		t.Error("CIRC of unknown node should fail")
	}
}

func TestCIRCMultiprocessor(t *testing.T) {
	// Conclusions: 48 interfaces, 16 processors, Click costs -> each CPU
	// serves 3 interfaces: CIRC = 3 × 3.7 µs = 11.1 µs.
	p := DefaultSwitchParams()
	p.Processors = 16
	topo := NewTopology()
	mustOK(t, topo.AddSwitch("big", p))
	for i := 0; i < 48; i++ {
		id := NodeID("h" + string(rune('A'+i/26)) + string(rune('a'+i%26)))
		mustOK(t, topo.AddHost(id))
		mustOK(t, topo.AddDuplexLink("big", id, units.Gbps, 0))
	}
	if got := topo.Interfaces("big"); got != 48 {
		t.Fatalf("Interfaces = %d, want 48", got)
	}
	circ, err := topo.CIRC("big")
	if err != nil {
		t.Fatal(err)
	}
	if circ != 11100*units.Nanosecond {
		t.Fatalf("CIRC = %v, want 11.1µs", circ)
	}
	// Non-divisible processor count rounds the per-CPU share up.
	topo.Node("big").Switch.Processors = 5 // ceil(48/5)=10
	circ, err = topo.CIRC("big")
	if err != nil {
		t.Fatal(err)
	}
	if circ != 37000*units.Nanosecond {
		t.Fatalf("CIRC = %v, want 37µs", circ)
	}
}

func TestCIRCNoInterfaces(t *testing.T) {
	topo := NewTopology()
	mustOK(t, topo.AddSwitch("lonely", DefaultSwitchParams()))
	if _, err := topo.CIRC("lonely"); err == nil {
		t.Fatal("CIRC with no interfaces should fail")
	}
}

func TestRouteFigure1(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	r, err := topo.Route("0", "3")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{"0", "4", "6", "3"}
	if !equalRoute(r, want) {
		t.Fatalf("Route(0,3) = %v, want %v", r, want)
	}
	r, err = topo.Route("2", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !equalRoute(r, []NodeID{"2", "5", "6", "7"}) {
		t.Fatalf("Route(2,7) = %v", r)
	}
}

func TestRouteDoesNotTraverseHosts(t *testing.T) {
	// h1 - s1 - h2 - s2 - h3: no route h1 -> h3 exists because h2 may not
	// relay.
	topo := NewTopology()
	for _, h := range []NodeID{"h1", "h2", "h3"} {
		mustOK(t, topo.AddHost(h))
	}
	for _, s := range []NodeID{"s1", "s2"} {
		mustOK(t, topo.AddSwitch(s, DefaultSwitchParams()))
	}
	mustOK(t, topo.AddDuplexLink("h1", "s1", units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("s1", "h2", units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("h2", "s2", units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("s2", "h3", units.Mbps, 0))
	if _, err := topo.Route("h1", "h3"); err == nil {
		t.Fatal("route through a host was found")
	}
	if _, err := topo.Route("h1", "h2"); err != nil {
		t.Fatalf("route h1->h2: %v", err)
	}
}

func TestRouteErrors(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	if _, err := topo.Route("zz", "3"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := topo.Route("0", "zz"); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := topo.Route("0", "0"); err == nil {
		t.Error("self route accepted")
	}
}

func TestValidateRoute(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	good := []NodeID{"0", "4", "6", "3"}
	if err := topo.ValidateRoute(good); err != nil {
		t.Fatalf("good route rejected: %v", err)
	}
	cases := []struct {
		name  string
		route []NodeID
	}{
		{"too short", []NodeID{"0"}},
		{"unknown node", []NodeID{"0", "9", "3"}},
		{"switch endpoint", []NodeID{"4", "6", "3"}},
		{"missing link", []NodeID{"0", "5", "3"}},
		{"repeat", []NodeID{"0", "4", "6", "4", "3"}},
	}
	for _, c := range cases {
		if err := topo.ValidateRoute(c.route); err == nil {
			t.Errorf("%s: route %v accepted", c.name, c.route)
		}
	}
	// Host-switch-host is a legal route.
	if err := topo.ValidateRoute([]NodeID{"1", "4", "0"}); err != nil {
		t.Errorf("1-4-0 rejected: %v", err)
	}
}

func TestValidateRouteHostIntermediate(t *testing.T) {
	// A host strictly inside a route must be rejected: hosts do not relay.
	topo := NewTopology()
	for _, h := range []NodeID{"h1", "h2", "h3"} {
		mustOK(t, topo.AddHost(h))
	}
	for _, s := range []NodeID{"s1", "s2"} {
		mustOK(t, topo.AddSwitch(s, DefaultSwitchParams()))
	}
	mustOK(t, topo.AddDuplexLink("h1", "s1", units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("s1", "h2", units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("h2", "s2", units.Mbps, 0))
	mustOK(t, topo.AddDuplexLink("s2", "h3", units.Mbps, 0))
	if err := topo.ValidateRoute([]NodeID{"h1", "s1", "h2", "s2", "h3"}); err == nil {
		t.Fatal("route with host intermediate accepted")
	}
}

func TestFigure1RouterReachable(t *testing.T) {
	topo := MustFigure1(Figure1Options{})
	if err := topo.ValidateRoute([]NodeID{"7", "6", "3"}); err != nil {
		t.Fatalf("router-sourced route rejected: %v", err)
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func equalRoute(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
