package network

// Interference-closure tracking.
//
// Two flows interfere — directly or transitively — exactly when their
// pipelines share an interned resource (a directed link, or an ingress
// stage, which implies sharing the directed link feeding it). The
// transitive closure of that relation partitions the flow set into
// *interference closures*: disjoint groups that never exchange jitter,
// so the holistic fixpoint decomposes exactly over them. The sharded
// admission controller (core.ShardedEngine) keeps one analysis arena per
// closure and admits into closures concurrently.
//
// The partition is maintained as a union-find over ResourceIDs:
//
//   - AddFlow and InsertFlowAt union the flow's pipeline resources —
//     closures only ever merge under insertion, so the update is a few
//     near-O(1) unions;
//   - RemoveFlow can *split* a closure, which plain union-find cannot
//     express, so a departure marks the structure stale and the next
//     query rebuilds it from the surviving flows in O(Σ route length);
//   - the flow→closure assignment and member lists are derived lazily
//     and memoized under a generation counter, so repeated queries
//     between flow-set changes are free.
//
// Closure ids are dense and deterministic: closures are numbered by
// their smallest member flow index, so closure 0 always contains flow 0.

// closureIndex holds the union-find and its memoized flow partition; it
// lives inside Network and is maintained by AddFlow/RemoveFlow/
// InsertFlowAt.
type closureIndex struct {
	// parent is the DSU forest over ResourceIDs, grown as resources are
	// interned. It is exact while stale is false.
	parent []int32
	// stale records that a removal may have split a closure; the next
	// query re-unions the surviving flows' pipelines.
	stale bool

	// gen increments on every flow-set change; builtGen is the
	// generation flowClosure/members were computed at.
	gen      uint64
	builtGen uint64
	built    bool

	flowClosure []int
	members     [][]int
}

// bump invalidates the memoized partition after any flow-set change.
func (ci *closureIndex) bump() { ci.gen++ }

// find returns the DSU root of resource r with path halving.
func (ci *closureIndex) find(r ResourceID) ResourceID {
	for ci.parent[r] != int32(r) {
		ci.parent[r] = ci.parent[ci.parent[r]]
		r = ResourceID(ci.parent[r])
	}
	return r
}

// union links the closures of a and b.
func (ci *closureIndex) union(a, b ResourceID) {
	ra, rb := ci.find(a), ci.find(b)
	if ra != rb {
		ci.parent[rb] = int32(ra)
	}
}

// grow extends the forest to cover n interned resources.
func (ci *closureIndex) grow(n int) {
	for len(ci.parent) < n {
		ci.parent = append(ci.parent, int32(len(ci.parent)))
	}
}

// addPipeline unions a newly registered flow's pipeline resources.
// Insertion only merges closures, so the incremental update stays exact
// even while stale rebuilds are pending.
func (nw *Network) closureAddPipeline(rids []ResourceID) {
	ci := &nw.closures
	ci.bump()
	ci.grow(len(nw.resKeys))
	for i := 1; i < len(rids); i++ {
		ci.union(rids[0], rids[i])
	}
}

// closureRemove records a departure: union-find cannot split, so the
// forest is rebuilt from the surviving flows on the next query.
func (nw *Network) closureRemove() {
	nw.closures.bump()
	nw.closures.stale = true
}

// rebuildClosures recomputes the memoized flow partition (and, after a
// removal, the union-find itself) at the current generation.
func (nw *Network) rebuildClosures() {
	ci := &nw.closures
	if ci.built && ci.builtGen == ci.gen {
		return
	}
	ci.grow(len(nw.resKeys))
	if ci.stale {
		for i := range ci.parent {
			ci.parent[i] = int32(i)
		}
		for _, rids := range nw.flowRes {
			for i := 1; i < len(rids); i++ {
				ci.union(rids[0], rids[i])
			}
		}
		ci.stale = false
	}
	ci.flowClosure = ci.flowClosure[:0]
	ci.members = ci.members[:0]
	rootID := make(map[ResourceID]int, len(nw.flows))
	for i, rids := range nw.flowRes {
		root := ci.find(rids[0])
		id, ok := rootID[root]
		if !ok {
			id = len(ci.members)
			rootID[root] = id
			ci.members = append(ci.members, nil)
		}
		ci.flowClosure = append(ci.flowClosure, id)
		ci.members[id] = append(ci.members[id], i)
	}
	ci.built = true
	ci.builtGen = ci.gen
}

// NumClosures returns the number of interference closures the current
// flow set partitions into: disjoint groups of flows whose pipelines
// (transitively) share no resource. Flows in different closures never
// exchange jitter, so the holistic analysis decomposes exactly over
// closures.
func (nw *Network) NumClosures() int {
	nw.rebuildClosures()
	return len(nw.closures.members)
}

// ClosureOf returns the closure id of flow i. Ids are dense in
// [0, NumClosures()) and deterministic — closures are numbered by their
// smallest member flow index — but they are not stable across flow-set
// changes: any AddFlow, RemoveFlow or InsertFlowAt may renumber.
func (nw *Network) ClosureOf(i int) int {
	nw.rebuildClosures()
	return nw.closures.flowClosure[i]
}

// Closures returns the flow indices of every interference closure,
// each ascending, ordered by smallest member (so Closures()[c] are the
// members of closure id c). The returned slices are owned by the
// network and valid until the next flow-set change; callers must not
// mutate them.
func (nw *Network) Closures() [][]int {
	nw.rebuildClosures()
	return nw.closures.members
}
