package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gmfnet/internal/gmf"
	"gmfnet/internal/units"
)

// closureFlow builds a minimal single-frame flow for closure tests.
func closureFlow(name string) *gmf.Flow {
	return &gmf.Flow{
		Name: name,
		Frames: []gmf.Frame{{
			PayloadBits: 8000,
			MinSep:      10 * units.Millisecond,
			Deadline:    100 * units.Millisecond,
		}},
	}
}

// bruteClosures recomputes the interference partition from first
// principles: flows are connected iff their routes share a directed
// link, and closures are the connected components of that relation,
// listed ascending and ordered by smallest member — the exact contract
// of Network.Closures.
func bruteClosures(nw *Network) [][]int {
	n := nw.NumFlows()
	shares := func(a, b *FlowSpec) bool {
		for h := 0; h < len(a.Route)-1; h++ {
			if b.Uses(a.Route[h], a.Route[h+1]) {
				return true
			}
		}
		return false
	}
	visited := make([]bool, n)
	var out [][]int
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		comp := []int{s}
		visited[s] = true
		for at := 0; at < len(comp); at++ {
			for j := 0; j < n; j++ {
				if !visited[j] && shares(nw.Flow(comp[at]), nw.Flow(j)) {
					visited[j] = true
					comp = append(comp, j)
				}
			}
		}
		// BFS discovery order is not ascending; normalise.
		for i := 1; i < len(comp); i++ {
			for k := i; k > 0 && comp[k] < comp[k-1]; k-- {
				comp[k], comp[k-1] = comp[k-1], comp[k]
			}
		}
		out = append(out, comp)
	}
	// Components were seeded in ascending order of smallest member, so
	// the outer order already matches Closures().
	return out
}

// checkClosures asserts the union-find partition equals the brute-force
// one, and that ClosureOf/NumClosures agree with Closures.
func checkClosures(t *testing.T, nw *Network, ctx string) {
	t.Helper()
	got := nw.Closures()
	want := bruteClosures(nw)
	if len(got) != len(want) {
		t.Fatalf("%s: %d closures, want %d (got %v want %v)", ctx, len(got), len(want), got, want)
	}
	for c := range want {
		if !reflect.DeepEqual(got[c], want[c]) {
			t.Fatalf("%s: closure %d = %v, want %v", ctx, c, got[c], want[c])
		}
	}
	if nw.NumClosures() != len(want) {
		t.Fatalf("%s: NumClosures=%d, want %d", ctx, nw.NumClosures(), len(want))
	}
	for c, members := range want {
		for _, i := range members {
			if nw.ClosureOf(i) != c {
				t.Fatalf("%s: ClosureOf(%d)=%d, want %d", ctx, i, nw.ClosureOf(i), c)
			}
		}
	}
}

// TestClosuresDifferentialRandom drives random add/remove churn over
// random topologies and asserts after every mutation that the
// incrementally maintained union-find partition equals a brute-force
// reachability computation over shared directed links.
func TestClosuresDifferentialRandom(t *testing.T) {
	build := []func() (*Topology, []NodeID, error){
		func() (*Topology, []NodeID, error) { return Campus(6, 3) },
		func() (*Topology, []NodeID, error) { return Ring(8, 2) },
		func() (*Topology, []NodeID, error) { return FatTree(4) },
	}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			topo, hosts, err := build[int(seed)%len(build)]()
			if err != nil {
				t.Fatal(err)
			}
			nw := New(topo)
			for step := 0; step < 120; step++ {
				if nw.NumFlows() > 0 && r.Float64() < 0.35 {
					nw.RemoveFlow(r.Intn(nw.NumFlows()))
				} else {
					src := hosts[r.Intn(len(hosts))]
					dst := hosts[r.Intn(len(hosts))]
					if src == dst {
						continue
					}
					route, err := topo.Route(src, dst)
					if err != nil {
						continue
					}
					fs := &FlowSpec{
						Flow:     closureFlow(fmt.Sprintf("f%d", step)),
						Route:    route,
						Priority: Priority(r.Intn(3)),
					}
					if _, err := nw.AddFlow(fs); err != nil {
						t.Fatal(err)
					}
				}
				if step%3 == 0 { // also exercise queries between mutations
					checkClosures(t, nw, fmt.Sprintf("step %d", step))
				}
			}
			checkClosures(t, nw, "final")
		})
	}
}

// TestClosuresFusionAndSplit pins the closure lifecycle on a fixed
// topology: two pod-local flows form two closures, a bridging flow
// fuses them into one, and the bridge's departure — via RemoveFlow or
// via InsertFlowAt-based rollback — re-splits them.
func TestClosuresFusionAndSplit(t *testing.T) {
	topo, _, err := Campus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw := New(topo)
	add := func(name string, route ...NodeID) int {
		t.Helper()
		i, err := nw.AddFlow(&FlowSpec{Flow: closureFlow(name), Route: route, Priority: 1})
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	add("a", "h0_0", "sw0", "h0_1")
	add("b", "h2_0", "sw2", "h2_1")
	if n := nw.NumClosures(); n != 2 {
		t.Fatalf("disjoint flows: %d closures, want 2", n)
	}
	// Interference is directional: to fuse with both, the bridge must
	// share a directed link with each — h0_0->sw0 with "a" and
	// sw2->h2_1 with "b".
	bridge := add("bridge", "h0_0", "sw0", "sw1", "sw2", "h2_1")
	if n := nw.NumClosures(); n != 1 {
		t.Fatalf("after bridge: %d closures, want 1", n)
	}
	if nw.ClosureOf(0) != 0 || nw.ClosureOf(1) != 0 {
		t.Fatalf("bridge did not fuse: closures %d/%d", nw.ClosureOf(0), nw.ClosureOf(1))
	}
	nw.RemoveFlow(bridge)
	if n := nw.NumClosures(); n != 2 {
		t.Fatalf("after bridge departure: %d closures, want 2", n)
	}
	checkClosures(t, nw, "post-split")

	// Rollback shape: a departure followed by InsertFlowAt (what
	// Engine.Restore replays) must re-fuse, and popping the re-inserted
	// bridge must re-split.
	spec := &FlowSpec{Flow: closureFlow("bridge2"), Route: []NodeID{"h0_0", "sw0", "sw1", "sw2", "h2_1"}, Priority: 1}
	if err := nw.InsertFlowAt(1, spec); err != nil {
		t.Fatal(err)
	}
	if n := nw.NumClosures(); n != 1 {
		t.Fatalf("after InsertFlowAt bridge: %d closures, want 1", n)
	}
	checkClosures(t, nw, "post-insert")
	nw.RemoveFlow(1)
	if n := nw.NumClosures(); n != 2 {
		t.Fatalf("after popping inserted bridge: %d closures, want 2", n)
	}
	checkClosures(t, nw, "post-pop")
}
