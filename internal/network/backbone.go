package network

import (
	"fmt"

	"gmfnet/internal/units"
)

// Backbone builds an ISP-backbone topology: `pops` point-of-presence
// core switches ("pop<p>") joined in a ring over 10 Gbit/s long-haul
// links, each PoP terminating `aggPer` aggregation switches
// ("agg<p>_<a>") on 1 Gbit/s metro links, each aggregation switch
// serving `hostsPer` subscriber hosts ("h<p>_<a>_<i>") on 100 Mbit/s
// access links. The returned host list is aggregation-major:
// hosts[g*hostsPer:(g+1)*hostsPer] hang under aggregation switch
// g = p*aggPer+a, which is the locality-group layout the workload
// synthesizer keys on.
//
// Closure behaviour: access-local calls share only their own host
// links, so one aggregation switch carries many small closures; flows
// that climb into the metro or cross PoPs chain closures along their
// path, so a backbone instance holds thousands of closures at scale
// without collapsing into one.
//
// With fewer than three PoPs the ring degenerates exactly like Ring:
// two PoPs get a single long-haul link, one PoP gets none.
func Backbone(pops, aggPer, hostsPer int) (*Topology, []NodeID, error) {
	if pops < 1 || aggPer < 1 || hostsPer < 1 {
		return nil, nil, fmt.Errorf("network: backbone needs at least 1 PoP, 1 aggregation switch per PoP and 1 host per aggregation")
	}
	topo := NewTopology()
	for p := 0; p < pops; p++ {
		if err := topo.AddSwitch(NodeID(fmt.Sprintf("pop%d", p)), DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
	}
	for p := 0; p < pops; p++ {
		next := (p + 1) % pops
		if next == p || (pops == 2 && p == 1) {
			continue // no self-link; don't duplicate the 2-PoP link
		}
		a := NodeID(fmt.Sprintf("pop%d", p))
		b := NodeID(fmt.Sprintf("pop%d", next))
		if err := topo.AddDuplexLink(a, b, 10*units.Gbps, 50*units.Microsecond); err != nil {
			return nil, nil, err
		}
	}
	hosts := make([]NodeID, 0, pops*aggPer*hostsPer)
	for p := 0; p < pops; p++ {
		pop := NodeID(fmt.Sprintf("pop%d", p))
		for a := 0; a < aggPer; a++ {
			agg := NodeID(fmt.Sprintf("agg%d_%d", p, a))
			if err := topo.AddSwitch(agg, DefaultSwitchParams()); err != nil {
				return nil, nil, err
			}
			if err := topo.AddDuplexLink(agg, pop, units.Gbps, 5*units.Microsecond); err != nil {
				return nil, nil, err
			}
			for i := 0; i < hostsPer; i++ {
				id := NodeID(fmt.Sprintf("h%d_%d_%d", p, a, i))
				if err := topo.AddHost(id); err != nil {
					return nil, nil, err
				}
				if err := topo.AddDuplexLink(id, agg, 100*units.Mbps, units.Microsecond); err != nil {
					return nil, nil, err
				}
				hosts = append(hosts, id)
			}
		}
	}
	return topo, hosts, nil
}
