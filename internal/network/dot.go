package network

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the topology as a Graphviz document: hosts as boxes,
// routers as diamonds, switches as circles, full-duplex neighbour pairs as
// one undirected edge labelled with the rate (one-directional links render
// as directed edges).
func (t *Topology) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("graph topology {\n")
	b.WriteString("  node [fontname=\"sans-serif\"];\n")
	for _, n := range t.Nodes() {
		shape := "circle"
		switch n.Kind {
		case EndHost:
			shape = "box"
		case Router:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", string(n.ID), shape)
	}
	duplexDone := make(map[[2]NodeID]bool)
	for _, l := range t.Links() {
		if duplexDone[[2]NodeID{l.To, l.From}] {
			continue // already rendered as the duplex edge
		}
		if back := t.Link(l.To, l.From); back != nil && back.Rate == l.Rate {
			duplexDone[[2]NodeID{l.From, l.To}] = true
			fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", string(l.From), string(l.To), l.Rate.String())
		} else {
			fmt.Fprintf(&b, "  %q -- %q [dir=forward, label=%q];\n", string(l.From), string(l.To), l.Rate.String())
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
