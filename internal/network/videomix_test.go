package network

import (
	"strings"
	"testing"

	"gmfnet/internal/units"
)

// TestVideoMixShape pins the generator's deterministic structure: stream
// count, the nine-frame IBBPBBPBB GMF cycle, frame-size burstiness
// (I > P > B), the three-profile rotation, and the local/crossing route
// mix.
func TestVideoMixShape(t *testing.T) {
	const switches, hostsPer, streams = 4, 3, 24
	topo, specs, err := VideoMix(switches, hostsPer, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != streams {
		t.Fatalf("streams = %d, want %d", len(specs), streams)
	}
	profiles := VideoProfiles()
	crossing := 0
	for i, fs := range specs {
		p := profiles[i%len(profiles)]
		if !strings.HasSuffix(fs.Flow.Name, "-"+p.Name) {
			t.Fatalf("stream %d named %q, want profile %q", i, fs.Flow.Name, p.Name)
		}
		if n := fs.Flow.N(); n != 9 {
			t.Fatalf("stream %d has %d frames, want 9", i, n)
		}
		iBits, pBits, bBits := fs.Flow.Frames[0].PayloadBits, fs.Flow.Frames[3].PayloadBits, fs.Flow.Frames[1].PayloadBits
		if !(iBits > pBits && pBits > bBits) {
			t.Fatalf("stream %d not bursty: I=%d P=%d B=%d bits", i, iBits, pBits, bBits)
		}
		if iBits != p.IBytes*8 || pBits != p.PBytes*8 || bBits != p.BBytes*8 {
			t.Fatalf("stream %d payloads do not match profile %q", i, p.Name)
		}
		if fs.Priority != p.Priority {
			t.Fatalf("stream %d priority %d, want %d", i, fs.Priority, p.Priority)
		}
		if len(fs.Route) > 3 {
			crossing++
		}
	}
	if want := streams / 4; crossing != want {
		t.Fatalf("%d streams cross the backbone, want %d", crossing, want)
	}
	// The workload must register and validate on its own topology.
	nw := New(topo)
	for _, fs := range specs {
		if _, err := nw.AddFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Determinism: a second generation is structurally identical.
	_, again, err := VideoMix(switches, hostsPer, streams)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if specs[i].Flow.Name != again[i].Flow.Name || len(specs[i].Route) != len(again[i].Route) {
			t.Fatalf("stream %d differs between generations", i)
		}
		for h := range specs[i].Route {
			if specs[i].Route[h] != again[i].Route[h] {
				t.Fatalf("stream %d route differs between generations", i)
			}
		}
	}
}

// TestVideoMixErrors pins the argument validation.
func TestVideoMixErrors(t *testing.T) {
	if _, _, err := VideoMix(4, 1, 8); err == nil {
		t.Fatal("hostsPer=1 accepted")
	}
	if _, _, err := VideoMix(0, 4, 8); err == nil {
		t.Fatal("switches=0 accepted")
	}
}

// TestVideoMixRates sanity-checks the profiles against the topology's
// edge links: every profile's long-run rate must fit a 100 Mbit/s edge
// link many times over, so admission decisions hinge on response-time
// bounds, not trivial overload.
func TestVideoMixRates(t *testing.T) {
	for _, p := range VideoProfiles() {
		var bits int64
		f := p.GOP("x")
		for _, fr := range f.Frames {
			bits += fr.PayloadBits
		}
		cycle := 9 * p.FramePeriod
		rate := float64(bits) / (float64(cycle) / float64(units.Second))
		if rate <= 0 || rate > 10e6 {
			t.Fatalf("profile %q long-run rate %.1f bit/s out of the expected band", p.Name, rate)
		}
	}
}
