package network

import (
	"fmt"

	"gmfnet/internal/units"
)

// ClosTenant builds a multi-tenant leaf-spine Clos fabric: `spines`
// spine switches ("spine<s>") fully meshed to `leaves` leaf switches
// ("leaf<l>") over 1 Gbit/s fabric links, each leaf serving `hostsPer`
// tenant hosts ("h<l>_<i>") on 100 Mbit/s server links. The returned
// host list is leaf-major: hosts[l*hostsPer:(l+1)*hostsPer] sit under
// leaf l, the locality-group layout the workload synthesizer keys on
// (tenancy is a workload property — the synthesizer carves the leaf
// groups into tenants, the fabric is shared).
//
// Closure behaviour: rack-local flows share only their own server
// links, so every leaf carries many independent closures; any
// leaf-to-leaf flow crosses one spine (deterministic shortest-route
// tie-break) and chains the closures it touches. A few hundred leaves
// put thousands of closures on the fabric — the scale the
// million-request load harness replays against.
func ClosTenant(spines, leaves, hostsPer int) (*Topology, []NodeID, error) {
	if spines < 1 || leaves < 1 || hostsPer < 1 {
		return nil, nil, fmt.Errorf("network: clos needs at least 1 spine, 1 leaf and 1 host per leaf")
	}
	topo := NewTopology()
	for s := 0; s < spines; s++ {
		if err := topo.AddSwitch(NodeID(fmt.Sprintf("spine%d", s)), DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
	}
	hosts := make([]NodeID, 0, leaves*hostsPer)
	for l := 0; l < leaves; l++ {
		leaf := NodeID(fmt.Sprintf("leaf%d", l))
		if err := topo.AddSwitch(leaf, DefaultSwitchParams()); err != nil {
			return nil, nil, err
		}
		for s := 0; s < spines; s++ {
			spine := NodeID(fmt.Sprintf("spine%d", s))
			if err := topo.AddDuplexLink(leaf, spine, units.Gbps, 5*units.Microsecond); err != nil {
				return nil, nil, err
			}
		}
		for i := 0; i < hostsPer; i++ {
			id := NodeID(fmt.Sprintf("h%d_%d", l, i))
			if err := topo.AddHost(id); err != nil {
				return nil, nil, err
			}
			if err := topo.AddDuplexLink(id, leaf, 100*units.Mbps, units.Microsecond); err != nil {
				return nil, nil, err
			}
			hosts = append(hosts, id)
		}
	}
	return topo, hosts, nil
}
