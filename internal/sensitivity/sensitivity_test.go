package sensitivity

import (
	"testing"

	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

const ms = units.Millisecond

func testNet(t *testing.T, rate units.BitRate) *network.Network {
	t.Helper()
	topo := network.MustFigure1(network.Figure1Options{Rate: rate})
	nw := network.New(topo)
	specs := []*network.FlowSpec{
		{
			Flow:     trace.MPEGIBBPBBPBB("mpeg", trace.MPEGOptions{Deadline: 300 * ms}),
			Route:    []network.NodeID{"0", "4", "6", "3"},
			Priority: 2,
		},
		{
			Flow:     trace.VoIP("voip", trace.VoIPOptions{Deadline: 100 * ms}),
			Route:    []network.NodeID{"2", "5", "6", "3"},
			Priority: 3,
		},
	}
	for _, s := range specs {
		if _, err := nw.AddFlow(s); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestErrors(t *testing.T) {
	if _, err := FindBreakdown(nil, Options{}); err == nil {
		t.Error("nil network accepted")
	}
	empty := network.New(network.MustFigure1(network.Figure1Options{}))
	if _, err := FindBreakdown(empty, Options{}); err == nil {
		t.Error("empty network accepted")
	}
}

func TestBreakdownOnFeasibleScenario(t *testing.T) {
	nw := testNet(t, 10*units.Mbps)
	bd, err := FindBreakdown(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Scale <= 1 {
		t.Fatalf("scale = %v, want > 1 (scenario has headroom)", bd.Scale)
	}
	if bd.AtMaxScale {
		t.Fatalf("10 Mbit/s links cannot carry 64x the MPEG load")
	}
	if bd.Result == nil || !bd.Result.Schedulable() {
		t.Fatal("result at breakdown scale must be schedulable")
	}
	// The point just above the breakdown must be infeasible.
	above, err := analyzeScaled(nw, bd.Scale*1.1, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if above.Schedulable() {
		t.Fatalf("scale %.3f still schedulable; breakdown too small", bd.Scale*1.1)
	}
}

func TestBreakdownInfeasibleBase(t *testing.T) {
	// Saturate the first hop so even scale 1 fails.
	nw := testNet(t, 10*units.Mbps)
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:     trace.CBRVideo("hog", 150000, 100*ms, 100*ms), // 12 Mbit/s
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	bd, err := FindBreakdown(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Scale != 0 {
		t.Fatalf("scale = %v, want 0 for infeasible base", bd.Scale)
	}
	if bd.Result.Schedulable() {
		t.Fatal("result should be unschedulable")
	}
}

func TestBreakdownHitsCap(t *testing.T) {
	// A tiny flow on gigabit links: the cap binds.
	topo := network.MustFigure1(network.Figure1Options{Rate: units.Gbps})
	nw := network.New(topo)
	if _, err := nw.AddFlow(&network.FlowSpec{
		Flow:     trace.VoIP("v", trace.VoIPOptions{Deadline: 100 * ms}),
		Route:    []network.NodeID{"0", "4", "6", "3"},
		Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	bd, err := FindBreakdown(nw, Options{MaxScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.AtMaxScale || bd.Scale != 4 {
		t.Fatalf("scale = %v atMax = %v, want 4/true", bd.Scale, bd.AtMaxScale)
	}
}

func TestScaledNetworkRounding(t *testing.T) {
	nw := testNet(t, 10*units.Mbps)
	scaled, err := scaledNetwork(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, fs := range scaled.Flows() {
		for k, fr := range fs.Flow.Frames {
			orig := nw.Flow(i).Flow.Frames[k].PayloadBits
			want := int64(float64(orig)*1.5 + 0.999999)
			if fr.PayloadBits != want {
				t.Fatalf("flow %d frame %d: payload %d, want %d", i, k, fr.PayloadBits, want)
			}
			// Timing parameters must be untouched.
			if fr.MinSep != nw.Flow(i).Flow.Frames[k].MinSep {
				t.Fatal("separation changed by scaling")
			}
		}
	}
}

func TestToleranceControlsPrecision(t *testing.T) {
	nw := testNet(t, 10*units.Mbps)
	coarse, err := FindBreakdown(nw, Options{Tolerance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := FindBreakdown(nw, Options{Tolerance: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	// Both are lower bounds on the true breakdown; the fine search must
	// be at least as large as the coarse one minus its tolerance.
	if fine.Scale < coarse.Scale*(1-0.2) {
		t.Fatalf("fine %.4f vs coarse %.4f inconsistent", fine.Scale, coarse.Scale)
	}
}
