// Package sensitivity performs breakdown analysis on top of the holistic
// schedulability analysis: how far can a workload be scaled before the
// network stops being schedulable, and which resource saturates first.
//
// This is the classical "critical scaling factor" study applied to the
// paper's setting; the paper itself only gives the yes/no admission test,
// so operators get no headroom estimate. Scaling multiplies every frame's
// payload (and therefore its transmission time and fragment count); the
// search is a bisection over the verdict of core.Analyzer.
package sensitivity

import (
	"fmt"

	"gmfnet/internal/core"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
)

// Options tunes the breakdown search.
type Options struct {
	// Analysis configures the underlying analyzer.
	Analysis core.Config
	// MaxScale bounds the search from above. Zero selects 64.
	MaxScale float64
	// Tolerance is the relative precision of the returned scale. Zero
	// selects 0.01 (1 %).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxScale == 0 {
		o.MaxScale = 64
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.01
	}
	return o
}

// Breakdown is the result of a breakdown search.
type Breakdown struct {
	// Scale is the largest payload multiplier (within tolerance) at
	// which the network remains schedulable. Zero means the workload is
	// infeasible as given.
	Scale float64
	// AtMaxScale reports that even Options.MaxScale was schedulable; the
	// true breakdown point is higher than the search bound.
	AtMaxScale bool
	// Result is the analysis at the reported scale.
	Result *core.Result
}

// scaledNetwork builds a copy of the network with every payload multiplied
// by scale (rounded up to keep the workload pessimistic).
func scaledNetwork(nw *network.Network, scale float64) (*network.Network, error) {
	out := network.New(nw.Topo)
	for _, fs := range nw.Flows() {
		flow := &gmf.Flow{Name: fs.Flow.Name}
		for _, fr := range fs.Flow.Frames {
			scaled := int64(float64(fr.PayloadBits)*scale + 0.999999)
			if scaled < 1 {
				scaled = 1
			}
			flow.Frames = append(flow.Frames, gmf.Frame{
				MinSep:      fr.MinSep,
				Deadline:    fr.Deadline,
				Jitter:      fr.Jitter,
				PayloadBits: scaled,
			})
		}
		if _, err := out.AddFlow(&network.FlowSpec{
			Flow:     flow,
			Route:    fs.Route,
			Priority: fs.Priority,
			RTP:      fs.RTP,
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// analyzeScaled reports whether the workload scaled by the multiplier is
// schedulable.
func analyzeScaled(nw *network.Network, scale float64, cfg core.Config) (*core.Result, error) {
	scaled, err := scaledNetwork(nw, scale)
	if err != nil {
		return nil, err
	}
	an, err := core.NewAnalyzer(scaled, cfg)
	if err != nil {
		return nil, err
	}
	return an.Analyze()
}

// FindBreakdown bisects for the largest payload scale that keeps the
// network schedulable.
func FindBreakdown(nw *network.Network, opt Options) (*Breakdown, error) {
	if nw == nil {
		return nil, fmt.Errorf("sensitivity: nil network")
	}
	if nw.NumFlows() == 0 {
		return nil, fmt.Errorf("sensitivity: network has no flows")
	}
	opt = opt.withDefaults()

	base, err := analyzeScaled(nw, 1, opt.Analysis)
	if err != nil {
		return nil, err
	}
	if !base.Schedulable() {
		return &Breakdown{Scale: 0, Result: base}, nil
	}

	// Grow until infeasible or the cap is hit.
	lo, hi := 1.0, 1.0
	loRes := base
	for hi < opt.MaxScale {
		hi *= 2
		if hi > opt.MaxScale {
			hi = opt.MaxScale
		}
		res, err := analyzeScaled(nw, hi, opt.Analysis)
		if err != nil {
			return nil, err
		}
		if res.Schedulable() {
			lo, loRes = hi, res
			if hi == opt.MaxScale {
				return &Breakdown{Scale: lo, AtMaxScale: true, Result: loRes}, nil
			}
			continue
		}
		break
	}
	if lo == hi {
		// Never found an infeasible point below the cap.
		return &Breakdown{Scale: lo, AtMaxScale: true, Result: loRes}, nil
	}

	// Bisect (lo schedulable, hi not).
	for hi-lo > opt.Tolerance*lo {
		mid := (lo + hi) / 2
		res, err := analyzeScaled(nw, mid, opt.Analysis)
		if err != nil {
			return nil, err
		}
		if res.Schedulable() {
			lo, loRes = mid, res
		} else {
			hi = mid
		}
	}
	return &Breakdown{Scale: lo, Result: loRes}, nil
}
