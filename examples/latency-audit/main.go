// Latency audit: the operator's diagnostic workflow on one scenario.
// It combines the toolkit's observability features: the utilisation
// bottleneck report, per-stage worst-case decomposition, simulated
// latency percentiles against the bound, buffer high-water marks, and a
// fragment-level trace of the slowest frame class.
package main

import (
	"fmt"
	"log"
	"os"

	"gmfnet"
	"gmfnet/internal/sim"
)

func main() {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps}))
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.MPEGIBBPBBPBB("video", gmfnet.MPEGOptions{Deadline: 300 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	})
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.VoIP("audio", gmfnet.VoIPOptions{Deadline: 60 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"2", "5", "6", "3"},
		Priority: 3,
	})

	// 1. Where is the capacity going?
	loads, err := sys.UtilizationReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("utilisation (top 3):")
	for i, l := range loads {
		if i == 3 {
			break
		}
		fmt.Printf("  %-11v %.4f (%d flows)\n", l.Resource, l.Utilization, len(l.Flows))
	}

	// 2. Worst-case budget per pipeline stage.
	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedulable: %v; video I+P stage budget:\n", res.Schedulable())
	for _, st := range res.Flow(0).Frames[0].Stages {
		fmt.Printf("  %-11v %v\n", st.Resource, st.Response)
	}

	// 3. How does observed latency compare? (sampled percentiles)
	obs, err := sys.Simulate(gmfnet.SimConfig{
		Duration:    3 * gmfnet.Second,
		KeepSamples: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nobserved vs bound (frame 0 of each flow):")
	for i := range obs.Flows {
		st := &obs.Flows[i].PerFrame[0]
		fmt.Printf("  %-6s p50 %-12v p99 %-12v max %-12v bound %v\n",
			obs.Flows[i].Name, st.Percentile(0.5), st.Percentile(0.99),
			st.MaxResponse, res.Flow(i).Frames[0].Response)
	}

	// 4. Buffer provisioning: how deep did queues get?
	fmt.Println("\nqueue high-water marks (top 4):")
	for i, bl := range obs.Backlogs {
		if i == 4 {
			break
		}
		fmt.Printf("  %-10v %s->%s: %d frames\n", bl.Queue.Kind, bl.Queue.Node, bl.Queue.Peer, bl.MaxFrames)
	}

	// 5. Fragment-level trace of the first video frame.
	tr := &sim.CollectTracer{}
	if _, err := sys.Simulate(gmfnet.SimConfig{
		Duration: 50 * gmfnet.Millisecond,
		Tracer:   tr,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace of video cycle 0, frame 0 (first 12 events):")
	w := sim.WriterTracer{W: os.Stdout}
	printed := 0
	for _, e := range tr.Events {
		if e.Flow == "video" && e.Cycle == 0 && e.FrameIdx == 0 {
			w.Event(e)
			printed++
			if printed == 12 {
				break
			}
		}
	}
}
