// Videoconference: the workload the paper's introduction motivates. Two
// conference sites exchange video (MPEG) and audio (VoIP) flows across the
// Figure 1 network; the example assigns deadline-monotonic priorities,
// prints the per-stage decomposition of every bound, and shows how the
// holistic jitter grows along each route.
package main

import (
	"fmt"
	"log"

	"gmfnet"
)

func main() {
	topo := gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 100 * gmfnet.Mbps})
	sys := gmfnet.NewSystem(topo)

	// Site A (host 0) <-> site B (host 3): video and audio each way.
	// Audio gets a 60 ms budget, video 150 ms.
	addConference := func(a, b gmfnet.NodeID, tag string) {
		for _, dir := range []struct {
			src, dst gmfnet.NodeID
			suffix   string
		}{{a, b, "AtoB"}, {b, a, "BtoA"}} {
			route, err := topo.Route(dir.src, dir.dst)
			if err != nil {
				log.Fatal(err)
			}
			sys.MustAddFlow(&gmfnet.FlowSpec{
				Flow: gmfnet.MPEGIBBPBBPBB(tag+"-video-"+dir.suffix, gmfnet.MPEGOptions{
					Deadline: 150 * gmfnet.Millisecond,
				}),
				Route: route,
			})
			sys.MustAddFlow(&gmfnet.FlowSpec{
				Flow: gmfnet.VoIP(tag+"-audio-"+dir.suffix, gmfnet.VoIPOptions{
					Deadline: 60 * gmfnet.Millisecond,
					Jitter:   500 * gmfnet.Microsecond,
				}),
				Route: route,
				RTP:   true,
			})
		}
	}
	addConference("0", "3", "conf1")
	addConference("1", "2", "conf2")

	// Audio has the tighter deadline, so deadline-monotonic assignment
	// puts it above video — exactly what 802.1p voice priorities do.
	sys.AssignPrioritiesDM()

	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flows: %d   schedulable: %v   iterations: %d\n\n",
		sys.Network().NumFlows(), res.Schedulable(), res.Iterations)

	for i := range res.Flows {
		fr := res.Flow(i)
		worst := fr.MaxResponse()
		fmt.Printf("%-18s prio=%d  worst bound %-11v deadline %v\n",
			fr.Name,
			sys.Network().Flow(i).Priority,
			worst,
			fr.Frames[0].Deadline)
	}

	// Per-stage decomposition of the first video flow's big I+P frame:
	// where does the latency budget go?
	fmt.Println("\nstage decomposition of conf1-video-AtoB frame 0 (I+P):")
	for _, st := range res.Flow(0).Frames[0].Stages {
		fmt.Printf("  %-12v entry jitter %-10v bound %v\n", st.Resource, st.EntryJitter, st.Response)
	}
}
