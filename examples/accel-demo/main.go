// Command accel-demo drives the accelerated convergence layer through
// the public facade: build a 12-switch ring of near-critical video
// flows whose jitter ripple takes dozens of sweeps to settle, analyse
// it plain and with Anderson acceleration (AnalysisConfig.Accel),
// print both engines' convergence telemetry, and confirm every bound
// is bit-identical — the safeguard's contract.
package main

import (
	"fmt"
	"os"

	"gmfnet"
)

const switches = 12

// ringSystem builds the deep ring the accelerated-fixpoint work is
// calibrated on (the scenario of TestAcceleratedDeepChainIterations
// and BenchmarkAdmissionDeepRing{Plain,Accel}): switches sw0..sw11 in
// a cycle, two hosts per switch, 100 Mbit/s links, and one video flow
// per switch three hops round the ring — neighbours overlap, so the
// flows close a directed interference cycle as long as the ring and
// the jitter ripple circulates in laps.
func ringSystem() *gmfnet.System {
	topo := gmfnet.NewTopology()
	sw := func(i int) gmfnet.NodeID { return gmfnet.NodeID(fmt.Sprintf("sw%d", i%switches)) }
	for i := 0; i < switches; i++ {
		if err := topo.AddSwitch(sw(i), gmfnet.DefaultSwitchParams()); err != nil {
			panic(err)
		}
	}
	link := func(a, b gmfnet.NodeID) {
		if err := topo.AddDuplexLink(a, b, 100*gmfnet.Mbps, gmfnet.Microsecond); err != nil {
			panic(err)
		}
	}
	for i := 0; i < switches; i++ {
		link(sw(i), sw(i+1))
	}
	for i := 0; i < switches; i++ {
		for h := 0; h < 2; h++ {
			host := gmfnet.NodeID(fmt.Sprintf("h%d_%d", i, h))
			if err := topo.AddHost(host); err != nil {
				panic(err)
			}
			link(host, sw(i))
		}
	}
	sys := gmfnet.NewSystem(topo)
	for s := 0; s < switches; s++ {
		src := gmfnet.NodeID(fmt.Sprintf("h%d_0", s))
		dst := gmfnet.NodeID(fmt.Sprintf("h%d_1", (s+switches-3)%switches))
		route, err := topo.Route(src, dst)
		if err != nil {
			panic(err)
		}
		sys.MustAddFlow(&gmfnet.FlowSpec{
			Flow:     gmfnet.CBRVideo(fmt.Sprintf("video%d", s), 65000, 30*gmfnet.Millisecond, 2*gmfnet.Second),
			Route:    route,
			Priority: 1,
		})
	}
	return sys
}

func analyze(sys *gmfnet.System, cfg gmfnet.AnalysisConfig) (*gmfnet.AnalysisResult, gmfnet.ConvergenceStats) {
	eng, err := sys.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	view, err := eng.AnalyzeView()
	if err != nil {
		panic(err)
	}
	defer view.Close()
	return view.Materialize(), view.Stats()
}

func main() {
	sys := ringSystem()
	plain, pstats := analyze(sys, gmfnet.AnalysisConfig{})
	accel, astats := analyze(sys, gmfnet.AnalysisConfig{Accel: true})

	fmt.Printf("plain:  %3d accepted sweeps, %3d worklist rounds\n",
		pstats.Iterations, pstats.WorklistRounds)
	fmt.Printf("accel:  %3d accepted sweeps, %3d worklist rounds, %d jumps, %d fallbacks\n",
		astats.Iterations, astats.WorklistRounds, astats.AccelSteps, astats.Fallbacks)

	bounds := 0
	for i := range plain.Flows {
		for k := range plain.Flows[i].Frames {
			p := plain.Flows[i].Frames[k].Response
			a := accel.Flows[i].Frames[k].Response
			if p != a {
				fmt.Printf("BOUND MISMATCH flow %d frame %d: plain %v accel %v\n", i, k, p, a)
				os.Exit(1)
			}
			bounds++
		}
	}
	fmt.Printf("all %d bounds bit-identical; schedulable=%v\n", bounds, accel.Schedulable())
	fmt.Println("worst video bound:", plain.Flow(0).Frames[0].Response,
		"(deadline", plain.Flow(0).Frames[0].Deadline, ")")
}
