// Quickstart: build the paper's Figure 1 network, add one MPEG video flow
// on the Figure 2 route, compute its end-to-end response-time bounds, and
// cross-check them against the discrete-event simulator.
package main

import (
	"fmt"
	"log"

	"gmfnet"
)

func main() {
	// The paper's example network: hosts 0-3, switches 4-6, router 7,
	// 10 Mbit/s links, Click switch costs (2.7 µs route, 1.0 µs send).
	topo := gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps})
	sys := gmfnet.NewSystem(topo)

	// The Figure 3 MPEG stream: GOP IBBPBBPBB, one UDP packet per 30 ms,
	// generalized jitter 1 ms, routed 0 → 4 → 6 → 3 (Figure 2).
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.MPEGIBBPBBPBB("video", gmfnet.MPEGOptions{Deadline: 300 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	})

	// Analysis: the paper's holistic response-time bounds.
	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedulable: %v (holistic iterations: %d)\n\n", res.Schedulable(), res.Iterations)
	fmt.Println("frame  bound        deadline")
	for k, fr := range res.Flow(0).Frames {
		fmt.Printf("%5d  %-11v  %v\n", k, fr.Response, fr.Deadline)
	}

	// Simulation: adversarial release pattern; observed responses must
	// stay below the analytic bounds.
	obs, err := sys.Simulate(gmfnet.SimConfig{Duration: 2 * gmfnet.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nframe  observed max  bound        ok")
	for k := range obs.Flows[0].PerFrame {
		o := obs.Flows[0].PerFrame[k].MaxResponse
		b := res.Flow(0).Frames[k].Response
		fmt.Printf("%5d  %-12v  %-11v  %v\n", k, o, b, o <= b)
	}
}
