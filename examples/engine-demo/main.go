// Command engine-demo drives the public Engine API: admit a batch, watch
// a departure re-converge, and confirm bounds match a cold analysis.
package main

import (
	"fmt"

	"gmfnet"
)

func main() {
	topo := gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 100 * gmfnet.Mbps})
	sys := gmfnet.NewSystem(topo)
	ctl, err := sys.NewAdmissionController(gmfnet.AnalysisConfig{})
	if err != nil {
		panic(err)
	}
	var specs []*gmfnet.FlowSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, &gmfnet.FlowSpec{
			Flow:     gmfnet.VoIP(fmt.Sprintf("call%d", i), gmfnet.VoIPOptions{Deadline: 100 * gmfnet.Millisecond}),
			Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
			Priority: 2,
		})
	}
	ds, err := ctl.RequestAll(specs)
	if err != nil {
		panic(err)
	}
	for _, d := range ds {
		fmt.Printf("%s admitted=%v\n", d.FlowName, d.Admitted)
	}
	if ok, err := ctl.Release("call1"); err != nil || !ok {
		panic(fmt.Sprintf("release: ok=%v err=%v", ok, err))
	}
	res, err := ctl.Engine().Analyze()
	if err != nil {
		panic(err)
	}
	cold, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("after departure: %d flows, schedulable=%v, bound[0]=%v (cold %v)\n",
		len(res.Flows), res.Schedulable(), res.Flow(0).MaxResponse(), cold.Flow(0).MaxResponse())
}
