// Switch sizing: the paper's Conclusions experiment. CIRC(N) — the time
// until a Click task is serviced again — dominates switch-internal delay,
// so a large software switch needs multiple processors. The example sweeps
// the processor count of a 48-port switch, reports CIRC against the
// 1 Gbit/s maximum frame transmission time, and verifies one configuration
// end to end with the analysis.
package main

import (
	"fmt"
	"log"

	"gmfnet"
	"gmfnet/internal/ether"
	"gmfnet/internal/network"
	"gmfnet/internal/units"
)

func main() {
	mft := ether.MFT(gmfnet.Gbps)
	fmt.Printf("MFT at 1 Gbit/s: %v (12304 bits on the wire)\n\n", mft)
	fmt.Println("processors  interfaces/CPU  CIRC      keeps up with 1 Gbit/s")

	for _, m := range []int{1, 2, 4, 8, 16} {
		topo, err := bigSwitch(48, m)
		if err != nil {
			log.Fatal(err)
		}
		circ, err := topo.CIRC("big")
		if err != nil {
			log.Fatal(err)
		}
		perCPU := units.CeilDiv(48, int64(m))
		fmt.Printf("%10d  %14d  %-8v  %v\n", m, perCPU, circ, circ <= mft)
	}

	// End-to-end check of the paper's 16-processor configuration: a video
	// flow through the big switch at 1 Gbit/s.
	topo, err := bigSwitch(48, 16)
	if err != nil {
		log.Fatal(err)
	}
	sys := gmfnet.NewSystem(topo)
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.MPEGIBBPBBPBB("video", gmfnet.MPEGOptions{Deadline: 50 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"h00", "big", "h01"},
		Priority: 2,
	})
	// Saturating cross traffic on other ports does not touch the video
	// flow's links, but shares the switch CPU model.
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.CBRVideo("cross", 60000, 5*gmfnet.Millisecond, 50*gmfnet.Millisecond),
		Route:    []gmfnet.NodeID{"h02", "big", "h03"},
		Priority: 1,
	})
	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n48-port/16-CPU switch at 1 Gbit/s: schedulable=%v, video worst bound=%v\n",
		res.Schedulable(), res.Flow(0).MaxResponse())
}

// bigSwitch builds a star: one switch with the given port count, a host on
// every port, 1 Gbit/s links, Click task costs.
func bigSwitch(ports, processors int) (*gmfnet.Topology, error) {
	p := network.DefaultSwitchParams()
	p.Processors = processors
	topo := gmfnet.NewTopology()
	if err := topo.AddSwitch("big", p); err != nil {
		return nil, err
	}
	for i := 0; i < ports; i++ {
		id := gmfnet.NodeID(fmt.Sprintf("h%02d", i))
		if err := topo.AddHost(id); err != nil {
			return nil, err
		}
		if err := topo.AddDuplexLink("big", id, gmfnet.Gbps, 0); err != nil {
			return nil, err
		}
	}
	return topo, nil
}
