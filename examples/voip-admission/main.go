// VoIP admission: the network-operator scenario from the paper's problem
// statement. Telephony flows request admission one by one; the controller
// runs the holistic analysis per request and rejects the first call that
// would endanger any existing guarantee. The same request sequence is then
// replayed under the sporadic collapse of a VBR video mix, showing why the
// generalized multiframe model admits more traffic.
package main

import (
	"fmt"
	"log"

	"gmfnet"
)

func main() {
	// VoIP calls on a 10 Mbit/s edge.
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps}))
	ctl, err := sys.NewAdmissionController(gmfnet.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}

	routes := [][]gmfnet.NodeID{
		{"0", "4", "6", "3"},
		{"1", "4", "6", "3"},
		{"2", "5", "6", "3"},
	}
	fmt.Println("requesting VoIP calls (G.711, 20 ms period, 60 ms deadline) until rejection:")
	for i := 0; ; i++ {
		d, err := ctl.Request(&gmfnet.FlowSpec{
			Flow: gmfnet.VoIP(fmt.Sprintf("call%02d", i), gmfnet.VoIPOptions{
				Deadline: 60 * gmfnet.Millisecond,
			}),
			Route:    routes[i%len(routes)],
			Priority: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !d.Admitted {
			fmt.Printf("  call%02d REJECTED — first infeasible request\n", i)
			break
		}
		if i > 200 {
			fmt.Println("  (stopping: the link never saturated)")
			break
		}
	}
	fmt.Printf("admitted calls: %d\n\n", ctl.Admitted())

	// VBR video under both traffic models: one large key frame followed
	// by small deltas. The sporadic collapse must assume the key frame at
	// the minimum separation and gives up much earlier.
	mkVBR := func(name string) *gmfnet.Flow {
		return gmfnet.MPEGIBBPBBPBB(name, gmfnet.MPEGOptions{
			IPBytes: 24000, PBytes: 3000, BBytes: 800,
			Deadline: 250 * gmfnet.Millisecond,
		})
	}
	for _, model := range []string{"GMF", "sporadic"} {
		sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 100 * gmfnet.Mbps}))
		ctl, err := sys.NewAdmissionController(gmfnet.AnalysisConfig{})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 48; i++ {
			flow := mkVBR(fmt.Sprintf("vbr%02d", i))
			if model == "sporadic" {
				flow = flow.Sporadic()
			}
			d, err := ctl.Request(&gmfnet.FlowSpec{
				Flow:     flow,
				Route:    routes[i%len(routes)],
				Priority: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !d.Admitted {
				break
			}
		}
		fmt.Printf("VBR video admitted under %-8s model: %d flows\n", model, ctl.Admitted())
	}
}
