module gmfnet

go 1.24
