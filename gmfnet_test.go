package gmfnet_test

import (
	"testing"

	"gmfnet"
)

func TestQuickstartFlow(t *testing.T) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 100 * gmfnet.Mbps}))
	idx := sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.MPEGIBBPBBPBB("video", gmfnet.MPEGOptions{Deadline: 300 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	})
	if idx != 0 {
		t.Fatalf("index = %d", idx)
	}
	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable() {
		t.Fatal("single video flow on 100 Mbit/s should be schedulable")
	}
	obs, err := sys.Simulate(gmfnet.SimConfig{Duration: gmfnet.Second})
	if err != nil {
		t.Fatal(err)
	}
	for k := range obs.Flows[0].PerFrame {
		if obs.Flows[0].PerFrame[k].MaxResponse > res.Flow(0).Frames[k].Response {
			t.Fatalf("frame %d: simulation exceeded bound", k)
		}
	}
}

func TestSystemAdmissionAndComparison(t *testing.T) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps}))
	ctl, err := sys.NewAdmissionController(gmfnet.AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctl.Request(&gmfnet.FlowSpec{
		Flow:     gmfnet.VoIP("call", gmfnet.VoIPOptions{Deadline: 100 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatal("voip call rejected on an idle network")
	}
	cmp, err := sys.CompareModels(gmfnet.AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.GMF.Schedulable() {
		t.Fatal("GMF verdict should hold after admission")
	}
}

func TestAssignPrioritiesDMThroughFacade(t *testing.T) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{}))
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:  gmfnet.VoIP("tight", gmfnet.VoIPOptions{Deadline: 10 * gmfnet.Millisecond}),
		Route: []gmfnet.NodeID{"0", "4", "6", "3"},
	})
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:  gmfnet.CBRVideo("loose", 1000, 50*gmfnet.Millisecond, 500*gmfnet.Millisecond),
		Route: []gmfnet.NodeID{"1", "4", "6", "3"},
	})
	sys.AssignPrioritiesDM()
	if sys.Network().Flow(0).Priority <= sys.Network().Flow(1).Priority {
		t.Fatal("deadline-monotonic priorities not assigned")
	}
}

func TestAnalyzeParallelThroughFacade(t *testing.T) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 100 * gmfnet.Mbps}))
	for i, src := range []gmfnet.NodeID{"0", "1", "2"} {
		sys.MustAddFlow(&gmfnet.FlowSpec{
			Flow:     gmfnet.MPEGIBBPBBPBB(string(src), gmfnet.MPEGOptions{Deadline: 300 * gmfnet.Millisecond}),
			Route:    mustRoute(t, sys, src, "3"),
			Priority: gmfnet.Priority(i),
		})
	}
	seq, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sys.AnalyzeParallel(gmfnet.AnalysisConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Schedulable() != par.Schedulable() {
		t.Fatal("parallel and sequential verdicts differ")
	}
	for i := range seq.Flows {
		if seq.Flows[i].MaxResponse() != par.Flows[i].MaxResponse() {
			t.Fatalf("flow %d: bounds differ", i)
		}
	}
}

func mustRoute(t *testing.T, sys *gmfnet.System, src, dst gmfnet.NodeID) []gmfnet.NodeID {
	t.Helper()
	r, err := sys.Network().Topo.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMustAddFlowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid flow did not panic")
		}
	}()
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{}))
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:  gmfnet.VoIP("bad", gmfnet.VoIPOptions{}),
		Route: []gmfnet.NodeID{"0", "5", "3"},
	})
}
