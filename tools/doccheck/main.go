// Command doccheck fails when any Go package in the tree lacks a
// package doc comment. CI runs it in the docs job so the godoc layer —
// the architecture contract of the repo — cannot silently rot: a new
// package must say what it is before it merges.
//
// Usage:
//
//	go run ./tools/doccheck [root ...]
//
// With no arguments the current directory is scanned. Vendored code,
// testdata and hidden directories are skipped; _test.go files do not
// count as documentation carriers.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var missing []string
	for _, root := range roots {
		m, err := scan(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: package in %s has no package comment\n", dir)
		}
		os.Exit(1)
	}
}

// scan walks root and returns the directories whose package carries no
// doc comment on any of its non-test files.
func scan(root string) ([]string, error) {
	// dirs maps a directory to whether any of its non-test files carries
	// a package doc comment (absent key: no Go files seen).
	dirs := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if perr != nil {
			return perr
		}
		dirs[dir] = dirs[dir] || f.Doc != nil
		return nil
	})
	if err != nil {
		return nil, err
	}
	var missing []string
	for dir, ok := range dirs {
		if !ok {
			missing = append(missing, dir)
		}
	}
	return missing, nil
}
