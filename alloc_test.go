package gmfnet_test

import (
	"testing"

	"gmfnet"
	"gmfnet/internal/admission"
	"gmfnet/internal/units"
)

// Allocation-regression tests for the admission hot path. The budgets
// are deliberately loose multiples of the measured steady state (see
// BENCH_admission.json and README "Performance") so they catch a
// reintroduced per-stage or per-frame allocation — the class of
// regression that multiplies the figure — without flaking on compiler
// or runtime noise.

// requestCycleAllocBudget caps the allocations of one steady-state
// Request+Release cycle on the serial controller. The issue-10 work
// brought the cycle from ~445 allocs/op down via scratch-buffer reuse
// (AppendHEP/VisitInterferers, the flowPass stage arena, the epoch-
// stamped worklist front); the acceptance bar is <= 111 (a 4x cut),
// and the measured value sits well below it.
const requestCycleAllocBudget = 111

func steadyProbeSpec() *gmfnet.FlowSpec {
	return &gmfnet.FlowSpec{
		Flow:     gmfnet.VoIP("steady-probe", gmfnet.VoIPOptions{Deadline: 500 * units.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 3,
	}
}

// TestSteadyStateRequestAllocs pins the allocation count of the
// admit-then-depart cycle that dominates a long-running daemon: one
// Request (tentative add + warm delta analysis + commit) followed by
// the matching Release. Regressions here multiply directly into the
// sustained-load throughput floor.
func TestSteadyStateRequestAllocs(t *testing.T) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: units.Gbps}))
	ctl, err := sys.NewAdmissionController(gmfnet.AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		d, err := ctl.Request(steadyProbeSpec())
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			t.Fatal("steady-state probe rejected")
		}
		d.View.Close()
		if ok, err := ctl.Release("steady-probe"); err != nil || !ok {
			t.Fatalf("release: ok=%v err=%v", ok, err)
		}
	}
	// Warm the engine caches (demand tables, scratch buffers, journal
	// arenas) so the measurement sees only the steady state.
	for i := 0; i < 8; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(100, cycle)
	t.Logf("steady-state Request+Release cycle: %.1f allocs/op", allocs)
	if allocs > requestCycleAllocBudget {
		t.Fatalf("steady-state Request+Release cycle allocates %.1f/op, budget %d",
			allocs, requestCycleAllocBudget)
	}
}

// countersCycleAllocBudget caps one steady-state submit+wait+release
// cycle through the parallel controller under RetainCounters, where
// the fold keeps no per-decision state: the ticket folds into four
// atomic counters and the resident name set. The budget is dominated
// by the dispatch (spec copy, resource keys, mailbox task) — the fold
// itself must stay O(1) allocations.
const countersCycleAllocBudget = 160

// TestCountersRetentionFoldAllocs pins the allocation count of the
// counters-retention fold path on the parallel controller — the
// configuration the million-request soak runs in, where any per-fold
// allocation would show up millions of times.
func TestCountersRetentionFoldAllocs(t *testing.T) {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: units.Gbps}))
	ctl, err := sys.NewParallelAdmissionController(gmfnet.AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ctl.SetRetention(admission.RetainCounters)
	cycle := func() {
		b, err := ctl.SubmitBatch([]*gmfnet.FlowSpec{steadyProbeSpec()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Wait(); err != nil {
			t.Fatal(err)
		}
		if ok, err := ctl.Release("steady-probe"); err != nil || !ok {
			t.Fatalf("release: ok=%v err=%v", ok, err)
		}
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(100, cycle)
	t.Logf("counters-retention submit+wait+release cycle: %.1f allocs/op", allocs)
	if allocs > countersCycleAllocBudget {
		t.Fatalf("counters-retention cycle allocates %.1f/op, budget %d",
			allocs, countersCycleAllocBudget)
	}
	if got := ctl.Admitted(); got < 108 {
		t.Fatalf("fold lost decisions: admitted=%d", got)
	}
}
