// Command gmfnet-experiments regenerates the experiment tables E1-E9
// indexed in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	gmfnet-experiments           # run all experiments
//	gmfnet-experiments -run E5   # run one experiment
//	gmfnet-experiments -csv      # emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"

	"gmfnet/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gmfnet-experiments", flag.ContinueOnError)
	only := fs.String("run", "", "run a single experiment by id (E1..E9)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	experiments := exp.All()
	if *only != "" {
		e, err := exp.ByID(*only)
		if err != nil {
			return err
		}
		experiments = []exp.Experiment{e}
	}

	for _, e := range experiments {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		tables, err := e.Run()
		for _, t := range tables {
			if *csv {
				if err := t.RenderCSV(os.Stdout); err != nil {
					return err
				}
			} else if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
