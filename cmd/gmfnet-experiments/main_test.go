package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	// E1/E2 are fast and deterministic.
	for _, id := range []string{"E1", "E2", "E8"} {
		if err := run([]string{"-run", id}); err != nil {
			t.Fatalf("%s failed: %v", id, err)
		}
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-run", "E2", "-csv"}); err != nil {
		t.Fatalf("-csv failed: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
