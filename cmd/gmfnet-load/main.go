// Command gmfnet-load is the latency-SLO replay harness: it synthesizes
// (or loads) an open-loop request trace over a production-scale
// generated topology — ISP backbone, 5G fronthaul or multi-tenant Clos
// — and replays it through the multi-core ParallelController, reporting
// end-to-end admission throughput and p50/p99/p999 decision latency
// from a fixed-footprint HDR-style histogram. Millions of requests run
// in constant memory: the controller folds decisions into counters
// (admission.RetainCounters) instead of a log, and the histogram never
// allocates on the measurement path.
//
// Usage:
//
//	gmfnet-load -requests N [-topo backbone|fronthaul|clos|campus]
//	            [-switches K] [-fanout F] [-hosts H]
//	            [-seed S] [-hold T] [-local P] [-heavy P]
//	            [-diurnal A] [-flash F] [-tenants T] [-tenant-churn P]
//	            [-batch B] [-depth D] [-workers W] [-accel]
//	            [-record FILE] [-json] [-name LABEL]
//	gmfnet-load -trace FILE [-batch B] [-depth D] [-workers W] [-accel] [-json]
//
// Both modes accept -cpuprofile, -memprofile, -mutexprofile and
// -blockprofile FILE to write pprof profiles of the replay. The mutex
// and block profiles are the contention instruments: under -workers > 1
// they attribute lock wait time and scheduler blocking to stacks, which
// is how dispatch-path serialization is located (README "Finding the
// contention").
//
// Replay pipelines -batch-sized submissions -depth deep: later batches'
// independent closures are decided while earlier batches are still in
// flight, and a request's latency is measured from its batch's
// submission until the batch's decisions fold (submission order), so
// the percentiles include real queueing delay under load.
//
// The run is gated on the controller's own accounting: admitted +
// rejected must equal the requests submitted, and the resident
// population must equal admissions minus successful releases. A
// violation fails the run with a non-zero exit — this is the soak
// harness's correctness check, not just a load generator.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"gmfnet/internal/admission"
	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/profiling"
	"gmfnet/internal/report"
	"gmfnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-load:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gmfnet-load", flag.ContinueOnError)
	topoKind := fs.String("topo", "clos", "topology generator: backbone, fronthaul, clos or campus")
	switches := fs.Int("switches", 64, "PoPs (backbone), CU hubs (fronthaul), leaves (clos) or chain switches (campus)")
	fanout := fs.Int("fanout", 4, "aggs per PoP, cells per hub or spines; unused by campus")
	hosts := fs.Int("hosts", 8, "hosts per locality group")
	requests := fs.Int("requests", 100000, "admission requests to synthesize")
	seed := fs.Int64("seed", 1, "synthesizer RNG seed")
	hold := fs.Int("hold", 0, "mean flow lifetime in requests (0: synthesizer default)")
	local := fs.Float64("local", 0, "fraction of group-local requests (0: default 0.8)")
	heavy := fs.Float64("heavy", 0, "fraction of heavy video requests (0: default 0.1)")
	diurnal := fs.Float64("diurnal", 0, "diurnal load-swing amplitude in [0,1]")
	flash := fs.Int("flash", 0, "number of flash-crowd episodes")
	tenants := fs.Int("tenants", 0, "carve locality groups into this many tenants")
	tenantChurn := fs.Float64("tenant-churn", 0, "per-request probability of a whole-tenant departure")
	batch := fs.Int("batch", 64, "requests per SubmitBatch submission")
	depth := fs.Int("depth", 4, "pipelined submissions in flight")
	flushEvery := fs.Int("flush", 4096, "re-split shards every this many requests (0: only at end)")
	workers := fs.Int("workers", 0, "shard worker-pool size (0: GOMAXPROCS)")
	accel := fs.Bool("accel", false, "Anderson-accelerate the holistic fixpoint")
	record := fs.String("record", "", "write the synthesized trace to this file before replaying")
	traceFile := fs.String("trace", "", "replay a recorded trace instead of synthesizing")
	jsonOut := fs.Bool("json", false, "emit one JSON metrics object instead of the table")
	name := fs.String("name", "", "label for the JSON metrics entry")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the replay to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	mutexprofile := fs.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
	blockprofile := fs.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 || *depth < 1 {
		return fmt.Errorf("-batch and -depth must be at least 1")
	}

	var (
		h   workload.Header
		ops []workload.Op
		err error
	)
	if *traceFile != "" {
		h, ops, err = workload.LoadTrace(*traceFile)
	} else {
		spec := workload.TopoSpec{Kind: *topoKind, Switches: *switches, Fanout: *fanout, Hosts: *hosts}
		h, ops, err = workload.Synthesize(spec, workload.Config{
			Seed: *seed, Requests: *requests, Hold: *hold, Local: *local,
			Heavy: *heavy, Diurnal: *diurnal, Flash: *flash,
			Tenants: *tenants, TenantChurn: *tenantChurn,
		})
	}
	if err != nil {
		return err
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		err = workload.WriteTrace(f, h, ops)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("recording trace: %w", err)
		}
	}

	prof, err := profiling.Start(*cpuprofile, *memprofile, *mutexprofile, *blockprofile)
	if err != nil {
		return err
	}
	m, err := replay(h, ops, *batch, *depth, *flushEvery, core.Config{Workers: *workers, Accel: *accel})
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	m.Name = *name

	// The SLO gate: every submitted request decided exactly once, and
	// the resident population consistent with the decision counters.
	if m.Admitted+m.Rejected != m.Requests {
		return fmt.Errorf("accounting: admitted %d + rejected %d != %d requests submitted",
			m.Admitted, m.Rejected, m.Requests)
	}
	if m.Resident != m.Admitted-m.Released {
		return fmt.Errorf("accounting: %d residents != admitted %d - released %d",
			m.Resident, m.Admitted, m.Released)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		return enc.Encode(m)
	}
	return m.render(stdout, h)
}

// metrics is the replay outcome; the JSON field names are the contract
// with the CI bench archive (BENCH_admission.json).
type metrics struct {
	Name          string  `json:"name,omitempty"`
	CPU           int     `json:"cpu"`
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	P999NS        int64   `json:"p999_ns"`
	MaxNS         int64   `json:"max_ns"`
	MeanNS        int64   `json:"mean_ns"`
	Admitted      int     `json:"admitted"`
	Rejected      int     `json:"rejected"`
	Released      int     `json:"released"`
	Resident      int     `json:"resident"`
	Closures      int     `json:"closures"`
	ElapsedMS     int64   `json:"elapsed_ms"`
}

func (m *metrics) render(w io.Writer, h workload.Header) error {
	kind := h.Topo.Kind
	if kind == "" {
		kind = "campus"
	}
	t := report.NewTable("Load replay (parallel controller)", "metric", "value")
	t.AddRowf("topology", fmt.Sprintf("%s %dx%dx%d", kind, h.Topo.Switches, h.Topo.Fanout, h.Topo.Hosts))
	t.AddRowf("cpus", m.CPU)
	t.AddRowf("requests", m.Requests)
	t.AddRowf("admitted", m.Admitted)
	t.AddRowf("rejected", m.Rejected)
	t.AddRowf("departures", m.Released)
	t.AddRowf("resident flows", m.Resident)
	t.AddRowf("closures", m.Closures)
	t.AddRowf("elapsed", (time.Duration(m.ElapsedMS) * time.Millisecond).String())
	t.AddRowf("requests/s", fmt.Sprintf("%.0f", m.ThroughputRPS))
	t.AddRowf("p50 latency", time.Duration(m.P50NS).String())
	t.AddRowf("p99 latency", time.Duration(m.P99NS).String())
	t.AddRowf("p999 latency", time.Duration(m.P999NS).String())
	t.AddRowf("max latency", time.Duration(m.MaxNS).String())
	return t.Render(w)
}

// inflight is one pipelined submission awaiting its fold.
type inflight struct {
	t     *admission.PendingBatch
	start time.Time
	n     int
}

// replay drives the operation stream through a ParallelController with
// counters-only retention: adds are submitted in pipelined batches,
// departures release by name (a departure of a rejected flow is a
// deterministic miss). A single consumer goroutine waits on the
// submissions in order and records each batch's submit-to-fold latency
// once per request, so the histogram sees queueing delay under load,
// not just shard compute time.
//
// Every flushEvery requests the controller flushes, re-splitting shards
// whose flows no longer form one interference closure. Without that
// maintenance a long replay only ever fuses: transient cross-traffic
// welds closures together permanently and per-decision cost creeps up
// with shard size.
func replay(h workload.Header, ops []workload.Op, batchSize, depth, flushEvery int, cfg core.Config) (*metrics, error) {
	topo, _, err := h.Topo.Build()
	if err != nil {
		return nil, err
	}
	ctl, err := admission.NewParallelController(network.New(topo), cfg)
	if err != nil {
		return nil, err
	}
	ctl.SetRetention(admission.RetainCounters)

	var hist workload.Histogram
	ch := make(chan inflight, depth)
	waitErr := make(chan error, 1)
	go func() {
		var firstErr error
		for f := range ch {
			if _, err := f.t.Wait(); err != nil && firstErr == nil {
				firstErr = err
			}
			lat := time.Since(f.start)
			for i := 0; i < f.n; i++ {
				hist.Record(lat)
			}
		}
		waitErr <- firstErr
	}()

	// The archive keys scaling rows by the cores the replay actually had
	// (-cpu N test variants and CI runners differ).
	m := &metrics{CPU: runtime.GOMAXPROCS(0)}
	start := time.Now()
	var pending []*network.FlowSpec
	submit := func() error {
		if len(pending) == 0 {
			return nil
		}
		s := time.Now()
		t, err := ctl.SubmitBatch(pending)
		if err != nil {
			return err
		}
		ch <- inflight{t: t, start: s, n: len(pending)}
		// SubmitBatch holds the slice until its Wait; a fresh one per
		// batch keeps the pipeline sound.
		pending = make([]*network.FlowSpec, 0, batchSize)
		return nil
	}
	fail := func(err error) (*metrics, error) {
		close(ch)
		<-waitErr
		ctl.Close()
		return nil, err
	}
	for i := range ops {
		op := &ops[i]
		switch op.Op {
		case "add":
			fs, err := op.Spec(topo)
			if err != nil {
				return fail(err)
			}
			m.Requests++
			pending = append(pending, fs)
			if len(pending) >= batchSize {
				if err := submit(); err != nil {
					return fail(err)
				}
			}
			if flushEvery > 0 && m.Requests%flushEvery == 0 {
				if err := ctl.Flush(); err != nil {
					return fail(err)
				}
			}
		case "del":
			// Submit the partial batch so the departing flow's admission
			// is in flight; Release itself waits for every submission to
			// fold before claiming the resident.
			if err := submit(); err != nil {
				return fail(err)
			}
			ok, err := ctl.Release(op.Name)
			if err != nil {
				return fail(err)
			}
			if ok {
				m.Released++
			}
		}
	}
	if err := submit(); err != nil {
		return fail(err)
	}
	close(ch)
	if err := <-waitErr; err != nil {
		ctl.Close()
		return nil, err
	}
	// Close retires the mailboxes inside the timed region: draining the
	// pipeline is part of the replay's work.
	if err := ctl.Close(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	m.ThroughputRPS = float64(m.Requests) / elapsed.Seconds()
	m.ElapsedMS = elapsed.Milliseconds()
	m.P50NS = int64(hist.Quantile(0.50))
	m.P99NS = int64(hist.Quantile(0.99))
	m.P999NS = int64(hist.Quantile(0.999))
	m.MaxNS = int64(hist.Max())
	m.MeanNS = int64(hist.Mean())
	m.Admitted = ctl.Admitted()
	m.Rejected = ctl.Rejected()
	m.Resident = ctl.NumResidents()
	m.Closures = ctl.NumShards()
	return m, nil
}
