package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// loadJSON runs gmfnet-load with -json and parses the metrics line.
func loadJSON(t *testing.T, args ...string) metrics {
	t.Helper()
	var out bytes.Buffer
	if err := run(append(args, "-json"), &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	var m metrics
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("bad metrics JSON %q: %v", out.String(), err)
	}
	return m
}

// decisions is the decision signature of a run: everything that must be
// identical across repeats and replay paths, with timing stripped.
func decisions(m metrics) [5]int {
	return [5]int{m.Requests, m.Admitted, m.Rejected, m.Released, m.Resident}
}

func TestLoadReplayAccounting(t *testing.T) {
	m := loadJSON(t, "-topo", "clos", "-switches", "8", "-fanout", "2", "-hosts", "4",
		"-requests", "2000", "-hold", "64", "-heavy", "0.2", "-tenants", "2",
		"-tenant-churn", "0.005", "-flash", "1", "-name", "ci-smoke")
	if m.Name != "ci-smoke" || m.Requests != 2000 {
		t.Fatalf("metrics header: %+v", m)
	}
	// run() itself gates admitted+rejected==requests and
	// resident==admitted-released; re-check here so a gate regression
	// cannot hide behind a silently-passing run.
	if m.Admitted+m.Rejected != m.Requests {
		t.Fatalf("decided %d+%d of %d", m.Admitted, m.Rejected, m.Requests)
	}
	if m.Resident != m.Admitted-m.Released {
		t.Fatalf("resident %d != %d-%d", m.Resident, m.Admitted, m.Released)
	}
	if m.Rejected == 0 || m.Released == 0 {
		t.Fatalf("degenerate workload: rejected=%d released=%d", m.Rejected, m.Released)
	}
	if m.Closures < 2 {
		t.Fatalf("closures = %d, sharding never engaged", m.Closures)
	}
	if !(m.P50NS <= m.P99NS && m.P99NS <= m.P999NS && m.P999NS <= m.MaxNS) {
		t.Fatalf("percentiles out of order: %+v", m)
	}
	if m.P50NS <= 0 || m.ThroughputRPS <= 0 {
		t.Fatalf("no latency signal: %+v", m)
	}
	if m.CPU != runtime.GOMAXPROCS(0) {
		t.Fatalf("cpu key = %d, want GOMAXPROCS %d", m.CPU, runtime.GOMAXPROCS(0))
	}
}

// TestLoadProfiles smokes the pprof hooks: all four profile files must
// be created and non-empty after a short replay.
func TestLoadProfiles(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "cpu.prof"),
		filepath.Join(dir, "mem.prof"),
		filepath.Join(dir, "mutex.prof"),
		filepath.Join(dir, "block.prof"),
	}
	var out bytes.Buffer
	err := run([]string{"-topo", "campus", "-switches", "2", "-hosts", "2",
		"-requests", "200", "-json",
		"-cpuprofile", paths[0], "-memprofile", paths[1],
		"-mutexprofile", paths[2], "-blockprofile", paths[3]}, &out)
	if err != nil {
		t.Fatalf("profiled replay failed: %v", err)
	}
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestLoadDeterministicDecisions pins that the decision outcome of a
// seeded run is reproducible: only timing may differ between repeats.
func TestLoadDeterministicDecisions(t *testing.T) {
	args := []string{"-topo", "backbone", "-switches", "3", "-fanout", "3", "-hosts", "2",
		"-requests", "1500", "-hold", "48", "-heavy", "0.15", "-seed", "7"}
	a := loadJSON(t, args...)
	b := loadJSON(t, args...)
	if decisions(a) != decisions(b) {
		t.Fatalf("repeat diverged: %v vs %v", decisions(a), decisions(b))
	}
	c := loadJSON(t, append(args[:len(args)-1], "8")...)
	if decisions(a) == decisions(c) {
		t.Fatal("different seed, identical decisions — seed ignored?")
	}
}

// TestLoadRecordReplay round-trips -record: replaying the recorded
// trace (with different batching) reproduces the synthesized run's
// decisions exactly.
func TestLoadRecordReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "load.trace")
	live := loadJSON(t, "-topo", "fronthaul", "-switches", "2", "-fanout", "3", "-hosts", "2",
		"-requests", "1200", "-hold", "40", "-heavy", "0.15", "-record", trace)
	replayed := loadJSON(t, "-trace", trace, "-batch", "7", "-depth", "2")
	if decisions(live) != decisions(replayed) {
		t.Fatalf("replay diverged: live %v, trace %v", decisions(live), decisions(replayed))
	}
}

func TestLoadFlushKeepsShardsFine(t *testing.T) {
	// With maintenance flushes a mostly-local workload must end with
	// hundreds of closures, not a handful of fused ones.
	m := loadJSON(t, "-topo", "clos", "-switches", "32", "-fanout", "2", "-hosts", "2",
		"-requests", "3000", "-hold", "512", "-local", "1", "-heavy", "0.05")
	if m.Closures < 32 {
		t.Fatalf("only %d closures on a 64-group all-local run", m.Closures)
	}
}

func TestLoadErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "torus", "-requests", "10"},
		{"-requests", "0"},
		{"-requests", "10", "-heavy", "2"},
		{"-requests", "10", "-batch", "0"},
		{"-requests", "10", "-depth", "0"},
		{"-trace", "/nonexistent.trace"},
		{"-requests", "10", "-tenants", "-1"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
