package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// lineWriter hands each Write to a channel, so the test can read the
// daemon's "listening on ..." lines while run is still blocked on the
// stop channel.
type lineWriter struct{ ch chan string }

func (w lineWriter) Write(p []byte) (int, error) {
	w.ch <- string(p)
	return len(p), nil
}

// TestRunLifecycle boots the daemon on an ephemeral TCP port plus a
// unix socket, exercises -status against both, then delivers SIGTERM
// and expects a clean drain: run returns nil and the socket file is
// gone.
func TestRunLifecycle(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "admitd.sock")
	stop := make(chan os.Signal, 1)
	out := lineWriter{ch: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-unix", sock,
			"-switches", "2", "-hosts", "2"}, out, stop)
	}()

	readLine := func(prefix string) string {
		t.Helper()
		for {
			select {
			case line := <-out.ch:
				if strings.HasPrefix(line, prefix) {
					return strings.TrimSpace(strings.TrimPrefix(line, prefix))
				}
			case err := <-done:
				t.Fatalf("daemon exited early: %v", err)
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out waiting for %q line", prefix)
			}
		}
	}
	addr := readLine("listening on tcp ")
	readLine("listening on unix ")

	for _, target := range []string{addr, sock} {
		var st bytes.Buffer
		if err := run([]string{"-status", target}, &st, nil); err != nil {
			t.Fatalf("-status %s: %v", target, err)
		}
		if !strings.Contains(st.String(), "resident flows") {
			t.Fatalf("-status %s output missing counters:\n%s", target, st.String())
		}
	}

	stop <- syscall.SIGTERM
	readLine("drained:")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	if _, err := os.Stat(sock); !os.IsNotExist(err) {
		t.Fatalf("socket file still present after drain: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-listen", "", "-topo", "campus"}, // nothing to listen on
		{"-topo", "torus"},                 // unknown topology kind
		{"-topo", "backbone", "-fanout", "0"},
		{"-switches", "0"},
		{"stray-arg"},
		{"-status", "127.0.0.1:1"}, // nothing listening there
	} {
		var out bytes.Buffer
		if err := run(args, &out, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
