// Command gmfnet-admitd serves the multi-core admission controller as
// a long-running daemon: clients connect over TCP or a unix socket,
// speak the JSON-lines wire protocol of internal/admitd (the
// workload.Op trace schema behind a versioned hello), and receive
// admission verdicts plus — for flows they subscribe to — pushed
// closure-change events whenever an admitted or departing peer alters
// their interference closure.
//
// Usage:
//
//	gmfnet-admitd [-listen ADDR] [-unix PATH] [-topo KIND] [-switches K] [-fanout F] [-hosts H] [-queue N] [-workers W] [-accel]
//	gmfnet-admitd -status ADDR
//
// The daemon serves exactly one topology, fixed at startup; client
// hellos carrying a different TopoSpec are refused. SIGTERM or SIGINT
// drains gracefully: stop accepting, decide every request already
// queued, tell every connection with a "drain" message, then flush and
// close the controller.
//
// -status dials a running daemon as an observer (zero-TopoSpec hello),
// fetches its counters snapshot and prints them — aggregate admission
// accounting plus one row per live connection.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"gmfnet/internal/admitd"
	"gmfnet/internal/admitd/client"
	"gmfnet/internal/core"
	"gmfnet/internal/report"
	"gmfnet/internal/workload"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-admitd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("gmfnet-admitd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "TCP listen address (empty to disable)")
	unixPath := fs.String("unix", "", "unix socket path to listen on as well")
	topoKind := fs.String("topo", "campus", "served topology kind: campus, backbone, fronthaul or clos")
	switches := fs.Int("switches", 8, "topology switches (campus/backbone PoPs/fronthaul hubs/clos leaves)")
	fanout := fs.Int("fanout", 2, "topology fanout (unused by campus)")
	hosts := fs.Int("hosts", 4, "hosts per topology group")
	queue := fs.Int("queue", 128, "per-connection outbound queue bound; overflow disconnects the peer")
	workers := fs.Int("workers", 0, "controller worker-pool size (0 = GOMAXPROCS)")
	accel := fs.Bool("accel", false, "Anderson-accelerate the holistic fixpoint (identical decisions)")
	status := fs.String("status", "", "print a running daemon's counters (address or unix socket path) and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q (see -h)", fs.Arg(0))
	}
	if *status != "" {
		return runStatus(w, *status)
	}
	if *listen == "" && *unixPath == "" {
		return fmt.Errorf("nothing to listen on: set -listen and/or -unix")
	}

	spec := workload.TopoSpec{Kind: *topoKind, Switches: *switches, Hosts: *hosts, Fanout: *fanout}
	if spec.Kind == "campus" {
		spec.Fanout = 0
	}
	srv, err := admitd.New(admitd.Config{
		Topo:  spec,
		Queue: *queue,
		Core:  core.Config{Workers: *workers, Accel: *accel},
	})
	if err != nil {
		return err
	}

	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "listening on tcp %s\n", l.Addr())
		srv.Serve(l)
	}
	if *unixPath != "" {
		// A stale socket file from an unclean exit blocks the bind.
		if err := os.Remove(*unixPath); err != nil && !os.IsNotExist(err) {
			return err
		}
		l, err := net.Listen("unix", *unixPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "listening on unix %s\n", *unixPath)
		srv.Serve(l)
	}

	sig := <-stop
	fmt.Fprintf(w, "draining on %v\n", sig)
	err = srv.Drain()
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	fmt.Fprintf(w, "drained: resident=%d\n", len(srv.Residents()))
	return err
}

// runStatus implements -status: observer hello, one stats op, two
// tables.
func runStatus(w io.Writer, addr string) error {
	cli, err := client.Dial(client.Network(addr), addr, workload.TopoSpec{})
	if err != nil {
		return err
	}
	defer cli.Close()
	st, err := cli.Stats()
	if err != nil {
		return err
	}
	topo := cli.ServerTopo()
	kind := topo.Kind
	if kind == "" {
		kind = "campus"
	}
	t := report.NewTable(fmt.Sprintf("gmfnet-admitd %s (%s %dx%dx%d)", addr, kind, topo.Switches, topo.Fanout, topo.Hosts), "metric", "value")
	t.AddRowf("admitted", st.Admitted)
	t.AddRowf("rejected", st.Rejected)
	t.AddRowf("released", st.Released)
	t.AddRowf("resident flows", st.Resident)
	t.AddRowf("connections", st.Conns)
	t.AddRowf("connections ever", st.TotalConns)
	t.AddRowf("subscriptions", st.Subs)
	t.AddRowf("dropped (slow)", st.Dropped)
	t.AddRowf("ops", st.Ops)
	t.AddRowf("verdicts", st.Verdicts)
	t.AddRowf("events", st.Events)
	if err := t.Render(w); err != nil {
		return err
	}
	if len(st.PerConn) == 0 {
		return nil
	}
	pc := report.NewTable("Connections", "id", "addr", "ops", "verdicts", "events", "subs", "queued")
	for _, c := range st.PerConn {
		// Unix-socket peers have empty (or "@"-anonymous) addresses.
		addr := c.Addr
		if addr == "" || addr == "@" {
			addr = "unix"
		}
		pc.AddRowf(c.ID, addr, c.Ops, c.Verdicts, c.Events, c.Subs, c.Queue)
	}
	return pc.Render(w)
}
