package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example"}); err != nil {
		t.Fatalf("-example failed: %v", err)
	}
}

func TestRunSporadic(t *testing.T) {
	if err := run([]string{"-example", "-sporadic"}); err != nil {
		t.Fatalf("-sporadic failed: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "campus.json")
	if err := run([]string{path}); err != nil {
		t.Fatalf("scenario replay failed: %v", err)
	}
}

func TestRunStream(t *testing.T) {
	if err := run([]string{"-stream", "40", "-seed", "3", "-switches", "4", "-hosts", "3"}); err != nil {
		t.Fatalf("stream mode failed: %v", err)
	}
}

func TestRunStreamCold(t *testing.T) {
	if err := run([]string{"-stream", "10", "-seed", "3", "-switches", "2", "-hosts", "2", "-cold"}); err != nil {
		t.Fatalf("cold stream mode failed: %v", err)
	}
}

func TestRunStreamBatch(t *testing.T) {
	if err := run([]string{"-stream", "40", "-seed", "3", "-switches", "4", "-hosts", "3", "-batch", "8"}); err != nil {
		t.Fatalf("batched stream mode failed: %v", err)
	}
}

func TestRunStreamSharded(t *testing.T) {
	if err := run([]string{"-stream", "40", "-seed", "3", "-switches", "4", "-hosts", "3", "-shards"}); err != nil {
		t.Fatalf("sharded stream mode failed: %v", err)
	}
}

func TestRunStreamShardedBatch(t *testing.T) {
	if err := run([]string{"-stream", "40", "-seed", "3", "-switches", "4", "-hosts", "3", "-shards", "-batch", "8"}); err != nil {
		t.Fatalf("sharded batched stream mode failed: %v", err)
	}
}

func TestRunStreamParallel(t *testing.T) {
	if err := run([]string{"-stream", "40", "-seed", "3", "-switches", "4", "-hosts", "3", "-parallel", "-batch", "8"}); err != nil {
		t.Fatalf("parallel batched stream mode failed: %v", err)
	}
}

// TestRunProfiles smokes the pprof hooks: all four profile files must
// be created and non-empty after a short parallel stream.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	mtx := filepath.Join(dir, "mutex.prof")
	blk := filepath.Join(dir, "block.prof")
	if err := run([]string{"-stream", "10", "-seed", "3", "-switches", "2", "-hosts", "2",
		"-parallel", "-cpuprofile", cpu, "-memprofile", mem,
		"-mutexprofile", mtx, "-blockprofile", blk}); err != nil {
		t.Fatalf("profiled stream failed: %v", err)
	}
	for _, p := range []string{cpu, mem, mtx, blk} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestTraceGoldenOutput is the determinism pin for stream mode: the
// recorded request trace in testdata must produce byte-identical
// admit/reject decision logs through the sequential controller, the
// parallel delta worklist, batched admission (two batch sizes, one that
// forces mid-batch eviction) and the cold baseline — all equal to the
// checked-in golden file. The trace ends in a burst of ~53 Mbit/s video
// flows that saturate an edge link, so the batched runs exercise the
// eviction path, and a departure between them exercises release.
func TestTraceGoldenOutput(t *testing.T) {
	tracePath := filepath.Join("testdata", "stream.trace")
	golden, err := os.ReadFile(filepath.Join("testdata", "stream.golden"))
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opts runOpts
	}{
		{name: "sequential"},
		{name: "workers2", opts: runOpts{workers: 2}},
		{name: "batch16", opts: runOpts{batch: 16}},
		{name: "batch3", opts: runOpts{batch: 3}},
		{name: "sharded", opts: runOpts{shards: true}},
		{name: "sharded-batch16", opts: runOpts{shards: true, batch: 16}},
		{name: "sharded-batch3", opts: runOpts{shards: true, batch: 3}},
		{name: "parallel", opts: runOpts{parallel: true}},
		{name: "parallel-batch16", opts: runOpts{parallel: true, batch: 16}},
		{name: "parallel-batch3", opts: runOpts{parallel: true, batch: 3}},
		{name: "parallel-workers2", opts: runOpts{parallel: true, workers: 2}},
		{name: "cold", opts: runOpts{cold: true}},
		// The accelerated legs pin the tentpole guarantee end to end:
		// Anderson extrapolation with the monotone safeguard changes
		// sweep counts, never decisions — the logs stay byte-identical.
		{name: "accel", opts: runOpts{accel: true}},
		{name: "accel-batch16", opts: runOpts{accel: true, batch: 16}},
		{name: "accel-sharded", opts: runOpts{accel: true, shards: true}},
		{name: "accel-parallel", opts: runOpts{accel: true, parallel: true}},
		{name: "accel-cold", opts: runOpts{accel: true, cold: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := runTrace(&out, tracePath, v.opts); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), golden) {
				t.Fatalf("decision log differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
					out.Bytes(), golden)
			}
		})
	}
}

// TestGeneratorTraceGolden extends the determinism pin to the
// production topology generators: a down-scaled synthesized trace per
// generator (recorded by gmfnet-load -record, heavy flows forcing
// rejects and tenant churn forcing releases) must replay to the
// byte-identical checked-in decision log through every controller
// variant. This is what licenses the load harness's counters as "what
// the serial controller would have decided" at million-request scale.
func TestGeneratorTraceGolden(t *testing.T) {
	variants := []struct {
		name string
		opts runOpts
	}{
		{name: "sequential"},
		{name: "batch3", opts: runOpts{batch: 3}},
		{name: "sharded", opts: runOpts{shards: true}},
		{name: "sharded-batch3", opts: runOpts{shards: true, batch: 3}},
		{name: "parallel", opts: runOpts{parallel: true}},
		{name: "parallel-batch3", opts: runOpts{parallel: true, batch: 3}},
		{name: "cold", opts: runOpts{cold: true}},
		{name: "accel", opts: runOpts{accel: true}},
	}
	for _, gen := range []string{"backbone", "fronthaul", "clos"} {
		gen := gen
		t.Run(gen, func(t *testing.T) {
			tracePath := filepath.Join("testdata", gen+".trace")
			golden, err := os.ReadFile(filepath.Join("testdata", gen+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			// The trace must actually exercise both hard paths.
			if !bytes.Contains(golden, []byte("reject ")) {
				t.Fatalf("%s golden has no rejections", gen)
			}
			if !bytes.Contains(golden, []byte("release ")) {
				t.Fatalf("%s golden has no departures", gen)
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					var out bytes.Buffer
					if err := runTrace(&out, tracePath, v.opts); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(out.Bytes(), golden) {
						t.Fatalf("decision log differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
							out.Bytes(), golden)
					}
				})
			}
		})
	}
}

// TestTraceStatsLine checks the -stats reporting: the replay's decision
// log is unchanged (the stats line is appended after the pinned
// summary), and the sweep/round counters are live.
func TestTraceStatsLine(t *testing.T) {
	tracePath := filepath.Join("testdata", "stream.trace")
	var plain, stats bytes.Buffer
	if err := runTrace(&plain, tracePath, runOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := runTrace(&stats, tracePath, runOpts{accel: true, stats: true}); err != nil {
		t.Fatal(err)
	}
	out := stats.String()
	if !strings.HasPrefix(out, plain.String()[:len(plain.String())-1]) {
		// Everything up to the trailing newline must match the plain run.
		t.Fatalf("-stats altered the decision log:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "stats sweeps=") {
		t.Fatalf("missing stats trailer, got %q", last)
	}
	var sweeps, rounds, accel, fallbacks int
	if _, err := fmt.Sscanf(last, "stats sweeps=%d rounds=%d accel=%d fallbacks=%d",
		&sweeps, &rounds, &accel, &fallbacks); err != nil {
		t.Fatalf("unparseable stats trailer %q: %v", last, err)
	}
	if sweeps <= 0 || rounds < sweeps {
		t.Fatalf("implausible convergence counters: %s", last)
	}
}

// TestTraceRecordReplay round-trips stream mode through -record: the
// recorded trace must replay without error and end with the same
// resident count the live stream reported.
func TestTraceRecordReplay(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "rec.trace")
	if err := run([]string{"-stream", "30", "-seed", "5", "-switches", "3", "-hosts", "2",
		"-batch", "4", "-record", traceFile}); err != nil {
		t.Fatalf("recording stream failed: %v", err)
	}
	var seq, bat, shd, par bytes.Buffer
	if err := runTrace(&seq, traceFile, runOpts{}); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if err := runTrace(&bat, traceFile, runOpts{batch: 4}); err != nil {
		t.Fatalf("batched replay failed: %v", err)
	}
	if err := runTrace(&shd, traceFile, runOpts{shards: true, batch: 4}); err != nil {
		t.Fatalf("sharded replay failed: %v", err)
	}
	if err := runTrace(&par, traceFile, runOpts{parallel: true, batch: 4}); err != nil {
		t.Fatalf("parallel replay failed: %v", err)
	}
	if !bytes.Equal(seq.Bytes(), bat.Bytes()) {
		t.Fatalf("sequential and batched replays differ:\n%s\nvs\n%s", seq.Bytes(), bat.Bytes())
	}
	if !bytes.Equal(seq.Bytes(), shd.Bytes()) {
		t.Fatalf("sequential and sharded replays differ:\n%s\nvs\n%s", seq.Bytes(), shd.Bytes())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("sequential and parallel replays differ:\n%s\nvs\n%s", seq.Bytes(), par.Bytes())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"/nonexistent.json"},
		{"-stream", "5", "-switches", "0"},
		{"-stream", "5", "-hosts", "1"},
		{"-stream", "5", "-batch", "4", "-cold"},
		{"-stream", "5", "-shards", "-cold"},
		{"-stream", "5", "-parallel", "-cold"},
		{"-stream", "5", "-parallel", "-shards"},
		{"-trace", "/nonexistent.trace"},
		{"-example", "-cpuprofile", "/nonexistent-dir/cpu.prof"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
