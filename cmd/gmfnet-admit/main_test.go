package main

import (
	"path/filepath"
	"testing"
)

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example"}); err != nil {
		t.Fatalf("-example failed: %v", err)
	}
}

func TestRunSporadic(t *testing.T) {
	if err := run([]string{"-example", "-sporadic"}); err != nil {
		t.Fatalf("-sporadic failed: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "campus.json")
	if err := run([]string{path}); err != nil {
		t.Fatalf("scenario replay failed: %v", err)
	}
}

func TestRunStream(t *testing.T) {
	if err := run([]string{"-stream", "40", "-seed", "3", "-switches", "4", "-hosts", "3"}); err != nil {
		t.Fatalf("stream mode failed: %v", err)
	}
}

func TestRunStreamCold(t *testing.T) {
	if err := run([]string{"-stream", "10", "-seed", "3", "-switches", "2", "-hosts", "2", "-cold"}); err != nil {
		t.Fatalf("cold stream mode failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"/nonexistent.json"},
		{"-stream", "5", "-switches", "0"},
		{"-stream", "5", "-hosts", "1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
