package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gmfnet/internal/network"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// The request-trace format is one JSON object per line: a header naming
// the campus topology, then add/del operations in stream order. A
// recorded trace replays deterministically — admit/reject decisions
// depend only on the operations, not on timing or RNG state — so the
// same trace through the sequential, parallel-worklist and batched
// controllers must produce byte-identical decision logs (the golden test
// in main_test.go pins that).

// traceHeader is the first line of a trace file.
type traceHeader struct {
	Topo topoSpec `json:"topo"`
}

// topoSpec names the network.Campus parameters the trace was recorded on.
type topoSpec struct {
	Switches int `json:"switches"`
	Hosts    int `json:"hosts"`
}

// traceOp is one recorded operation.
type traceOp struct {
	Op   string `json:"op"` // "add" or "del"
	Name string `json:"name"`

	// Request parameters, set for "add". Times are picoseconds
	// (units.Time), so recording is lossless.
	Kind       string `json:"kind,omitempty"` // "voip" or "cbr"
	Src        string `json:"src,omitempty"`
	Dst        string `json:"dst,omitempty"`
	Prio       int    `json:"prio,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`       // cbr frame payload
	PeriodPS   int64  `json:"period_ps,omitempty"`   // cbr period
	DeadlinePS int64  `json:"deadline_ps,omitempty"` // end-to-end deadline
	RTP        bool   `json:"rtp,omitempty"`
}

// spec rebuilds the flow spec of an "add" operation on the given
// topology.
func (op *traceOp) spec(topo *network.Topology) (*network.FlowSpec, error) {
	route, err := topo.Route(network.NodeID(op.Src), network.NodeID(op.Dst))
	if err != nil {
		return nil, fmt.Errorf("trace op %q: %w", op.Name, err)
	}
	fs := &network.FlowSpec{Route: route, Priority: network.Priority(op.Prio)}
	switch op.Kind {
	case "voip":
		fs.Flow = trace.VoIP(op.Name, trace.VoIPOptions{Deadline: units.Time(op.DeadlinePS)})
		fs.RTP = op.RTP
	case "cbr":
		fs.Flow = trace.CBRVideo(op.Name, op.Bytes,
			units.Time(op.PeriodPS), units.Time(op.DeadlinePS))
		fs.RTP = op.RTP
	default:
		return nil, fmt.Errorf("trace op %q: unknown kind %q", op.Name, op.Kind)
	}
	return fs, nil
}

// addOp captures a generated request as a trace operation. streamSpec
// draws single-frame VoIP (RTP) or CBR video flows; VoIP is recognised
// by its G.711 payload and recorded by kind, everything else by its
// exact CBR parameters.
func addOp(fs *network.FlowSpec) traceOp {
	op := traceOp{
		Op:   "add",
		Name: fs.Flow.Name,
		Src:  string(fs.Route[0]),
		Dst:  string(fs.Route[len(fs.Route)-1]),
		Prio: int(fs.Priority),
		RTP:  fs.RTP,
	}
	fr := fs.Flow.Frames[0]
	if fs.RTP && fr.PayloadBits == 160*8 {
		op.Kind = "voip"
		op.DeadlinePS = int64(fr.Deadline)
		return op
	}
	op.Kind = "cbr"
	op.Bytes = fr.PayloadBits / 8
	op.PeriodPS = int64(fr.MinSep)
	op.DeadlinePS = int64(fr.Deadline)
	return op
}

// traceRecorder streams a header plus operations to a file.
type traceRecorder struct {
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
}

func newTraceRecorder(path string, switches, hosts int) (*traceRecorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	r := &traceRecorder{f: f, w: w, enc: json.NewEncoder(w)}
	if err := r.enc.Encode(traceHeader{Topo: topoSpec{Switches: switches, Hosts: hosts}}); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *traceRecorder) record(op traceOp) error {
	if r == nil {
		return nil
	}
	return r.enc.Encode(op)
}

// close flushes and closes the trace file. It is idempotent so that the
// success path can surface the flush error while a deferred call still
// cleans up on early returns.
func (r *traceRecorder) close() error {
	if r == nil || r.f == nil {
		return nil
	}
	ferr := r.w.Flush()
	cerr := r.f.Close()
	r.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// loadTrace parses a trace file into its header and operation list.
func loadTrace(path string) (traceHeader, []traceOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return traceHeader{}, nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return traceHeader{}, nil, fmt.Errorf("trace %s: bad header: %w", path, err)
	}
	if h.Topo.Switches < 1 || h.Topo.Hosts < 2 {
		return traceHeader{}, nil, fmt.Errorf("trace %s: header needs at least 1 switch and 2 hosts per switch", path)
	}
	var ops []traceOp
	for {
		var op traceOp
		if err := dec.Decode(&op); err == io.EOF {
			break
		} else if err != nil {
			return traceHeader{}, nil, fmt.Errorf("trace %s: op %d: %w", path, len(ops), err)
		}
		if op.Op != "add" && op.Op != "del" {
			return traceHeader{}, nil, fmt.Errorf("trace %s: op %d: unknown op %q", path, len(ops), op.Op)
		}
		ops = append(ops, op)
	}
	return h, ops, nil
}
