// Command gmfnet-admit replays the flows of a JSON scenario as a sequence
// of admission requests (Section 3.5's admission controller): each flow is
// tentatively added, the holistic analysis re-runs, and the flow is kept
// only if every admitted flow stays schedulable.
//
// Usage:
//
//	gmfnet-admit [-sporadic] [-example] [scenario.json]
//
// With -sporadic every request is first collapsed to the sporadic model,
// reproducing the capacity loss the paper's GMF model avoids.
package main

import (
	"flag"
	"fmt"
	"os"

	"gmfnet/internal/admission"
	"gmfnet/internal/config"
	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-admit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gmfnet-admit", flag.ContinueOnError)
	sporadic := fs.Bool("sporadic", false, "collapse each request to the sporadic model before admitting")
	example := fs.Bool("example", false, "replay the built-in Figure 1 scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scenario *config.Scenario
	switch {
	case *example:
		scenario = config.Figure1Scenario()
	case fs.NArg() == 1:
		var err error
		scenario, err = config.Load(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need a scenario file or -example (see -h)")
	}

	full, err := scenario.Build()
	if err != nil {
		return err
	}
	// Rebuild an empty network on the same topology and replay the flows
	// as requests.
	empty := network.New(full.Topo)
	ctl, err := admission.NewController(empty, core.Config{})
	if err != nil {
		return err
	}

	t := report.NewTable("Admission decisions (in request order)", "flow", "frames", "admitted")
	for _, fspec := range full.Flows() {
		req := fspec
		if *sporadic {
			req = &network.FlowSpec{
				Flow:     fspec.Flow.Sporadic(),
				Route:    fspec.Route,
				Priority: fspec.Priority,
				RTP:      fspec.RTP,
			}
		}
		d, err := ctl.Request(req)
		if err != nil {
			return err
		}
		t.AddRowf(d.FlowName, req.Flow.N(), d.Admitted)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nadmitted %d of %d requests\n", ctl.Admitted(), len(ctl.Decisions()))
	return nil
}
