// Command gmfnet-admit replays the flows of a JSON scenario as a sequence
// of admission requests (Section 3.5's admission controller): each flow is
// tentatively added, the holistic analysis re-runs, and the flow is kept
// only if every admitted flow stays schedulable.
//
// Usage:
//
//	gmfnet-admit [-sporadic] [-example] [scenario.json]
//	gmfnet-admit -stream N [-seed S] [-depart P] [-switches K] [-hosts H] [-cold] [-shards] [-parallel] [-workers W] [-batch B] [-record FILE]
//	gmfnet-admit -trace FILE [-cold] [-shards] [-parallel] [-workers W] [-batch B]
//
// Every mode accepts -cpuprofile, -memprofile, -mutexprofile and
// -blockprofile FILE to write pprof profiles of the run (`go tool
// pprof` reads them) — the way to see where admission time goes. CPU
// and heap cover the fixpoint work; the mutex and block profiles are
// the contention instruments for -parallel runs, attributing lock wait
// time and scheduler blocking to stacks (README "Finding the
// contention" walks through a session).
//
// With -sporadic every request is first collapsed to the sporadic model,
// reproducing the capacity loss the paper's GMF model avoids.
//
// With -stream the command switches to request-stream mode: it builds a
// multi-switch campus topology, then drives N randomized admission
// requests (VoIP and CBR video between random hosts) through the
// incremental engine-backed controller, mixing in departures with
// probability -depart after each request. It reports the decision mix and
// the end-to-end admission throughput; -cold runs the same stream through
// the from-scratch baseline controller for comparison, -workers lets the
// incremental engine run large delta worklists as parallel Jacobi
// rounds, and -batch B admits requests in batches of B through
// Controller.RequestBatch (one converged worklist per batch, departures
// flush the pending batch first). -shards runs the closure-sharded
// controller instead: requests are decided inside their interference
// closure's private shard engine, batch groups spanning disjoint
// closures run concurrently, and decisions are provably identical to
// the monolithic controller. -parallel runs the multi-core scheduled
// form of the sharded controller: one serial mailbox goroutine per
// closure shard, distinct closures decided concurrently on a worker
// pool (sized by -workers, GOMAXPROCS when 0), same decisions again.
// -record FILE writes the generated operation stream as a replayable
// JSON-lines trace.
//
// With -trace the command replays such a recorded trace
// deterministically and prints one decision line per operation —
// timing-free output, so the sequential, -workers and -batch runs of the
// same trace are byte-identical (RequestBatch decisions equal one-by-one
// decisions by construction). The trace format (internal/workload) is
// shared with gmfnet-load; a header may name any generated topology —
// campus, backbone, fronthaul or clos — not just the campus streams this
// command records.
//
// With -connect ADDR the trace is replayed against a running
// gmfnet-admitd daemon instead of an in-process controller: each
// operation travels the JSON-lines wire protocol and the decision log
// printed here is byte-identical to the local replay — the daemon
// integration gate in CI diffs exactly that. The controller variant is
// the daemon's to choose, so -connect rejects the local engine flags;
// -batch still applies (batches ride the wire as one "batch" op).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"gmfnet/internal/admission"
	"gmfnet/internal/admitd/client"
	"gmfnet/internal/config"
	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/profiling"
	"gmfnet/internal/report"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
	"gmfnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-admit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gmfnet-admit", flag.ContinueOnError)
	sporadic := fs.Bool("sporadic", false, "collapse each request to the sporadic model before admitting")
	example := fs.Bool("example", false, "replay the built-in Figure 1 scenario")
	stream := fs.Int("stream", 0, "request-stream mode: number of randomized admission requests")
	seed := fs.Int64("seed", 1, "stream mode: RNG seed")
	depart := fs.Float64("depart", 0.2, "stream mode: departure probability after each request")
	switches := fs.Int("switches", 8, "stream mode: number of edge switches")
	hosts := fs.Int("hosts", 4, "stream mode: hosts per switch")
	cold := fs.Bool("cold", false, "stream/trace mode: use the from-scratch baseline controller")
	shards := fs.Bool("shards", false, "stream/trace mode: use the closure-sharded controller")
	parallel := fs.Bool("parallel", false, "stream/trace mode: use the multi-core scheduled sharded controller")
	workers := fs.Int("workers", 0, "stream/trace mode: parallel delta worklist workers (0/1 sequential, -1 GOMAXPROCS); with -parallel, the shard worker-pool size (0 GOMAXPROCS)")
	batch := fs.Int("batch", 0, "stream/trace mode: admit requests in batches of this size through RequestBatch")
	record := fs.String("record", "", "stream mode: record the operation stream as a replayable trace file")
	accel := fs.Bool("accel", false, "stream/trace mode: Anderson-accelerate the holistic fixpoint (identical decisions, fewer sweeps)")
	stats := fs.Bool("stats", false, "stream/trace mode: report aggregated convergence statistics")
	traceFile := fs.String("trace", "", "replay a recorded request trace deterministically")
	connect := fs.String("connect", "", "replay the trace against a running gmfnet-admitd (host:port or unix socket path)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	mutexprofile := fs.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
	blockprofile := fs.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch > 0 && *cold {
		return fmt.Errorf("-batch needs the incremental controller (drop -cold)")
	}
	if *shards && *cold {
		return fmt.Errorf("-shards and -cold are mutually exclusive")
	}
	if *parallel && *cold {
		return fmt.Errorf("-parallel and -cold are mutually exclusive")
	}
	if *parallel && *shards {
		return fmt.Errorf("-parallel and -shards are mutually exclusive (-parallel is the scheduled form of -shards)")
	}
	if *connect != "" {
		if *traceFile == "" {
			return fmt.Errorf("-connect needs -trace")
		}
		if *cold || *shards || *parallel || *accel || *stats || *workers != 0 {
			return fmt.Errorf("-connect replays through the daemon's controller; drop the local engine flags")
		}
		if *stream > 0 || *record != "" {
			return fmt.Errorf("-connect is a trace-replay mode; it cannot stream or record")
		}
	}

	prof, err := profiling.Start(*cpuprofile, *memprofile, *mutexprofile, *blockprofile)
	if err != nil {
		return err
	}
	err = func() error {
		opts := runOpts{cold: *cold, shards: *shards, parallel: *parallel,
			workers: *workers, batch: *batch, accel: *accel, stats: *stats}
		if *traceFile != "" {
			if *connect != "" {
				return runTraceConnect(os.Stdout, *traceFile, *connect, *batch)
			}
			return runTrace(os.Stdout, *traceFile, opts)
		}
		if *stream > 0 {
			return runStream(*stream, *seed, *depart, *switches, *hosts, opts, *record)
		}

		var scenario *config.Scenario
		switch {
		case *example:
			scenario = config.Figure1Scenario()
		case fs.NArg() == 1:
			var err error
			scenario, err = config.Load(fs.Arg(0))
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("need a scenario file, -example or -stream (see -h)")
		}

		full, err := scenario.Build()
		if err != nil {
			return err
		}
		// Rebuild an empty network on the same topology and replay the
		// flows as requests.
		empty := network.New(full.Topo)
		ctl, err := admission.NewController(empty, core.Config{})
		if err != nil {
			return err
		}

		t := report.NewTable("Admission decisions (in request order)", "flow", "frames", "admitted")
		for _, fspec := range full.Flows() {
			req := fspec
			if *sporadic {
				req = &network.FlowSpec{
					Flow:     fspec.Flow.Sporadic(),
					Route:    fspec.Route,
					Priority: fspec.Priority,
					RTP:      fspec.RTP,
				}
			}
			d, err := ctl.Request(req)
			if err != nil {
				return err
			}
			t.AddRowf(d.FlowName, req.Flow.N(), d.Admitted)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("\nadmitted %d of %d requests\n", ctl.Admitted(), len(ctl.Decisions()))
		return nil
	}()
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	return err
}

// requester is what stream mode needs from a controller; the
// incremental Controller, the sharded ShardedController and the
// from-scratch ColdController all satisfy it.
type requester interface {
	Request(fs *network.FlowSpec) (admission.Decision, error)
	Release(name string) (bool, error)
	NumFlows() int
}

// batchRequester is the batched admission entry point shared by the
// monolithic and the sharded controller.
type batchRequester interface {
	RequestBatch(specs []*network.FlowSpec) ([]admission.Decision, error)
}

// admitter funnels admission requests into a controller either one by
// one or — when size > 0 — in batches through RequestBatch, invoking
// report for every decision in request order. Callers must flush before
// a departure (so victims are always decided flows) and once more at
// end of stream. Live streaming and trace replay share this path, which
// is what keeps their decision orders — and therefore the golden replay
// output — identical across batch sizes.
type admitter struct {
	ctl      requester
	batchCtl batchRequester // used when size > 0
	size     int
	pending  []*network.FlowSpec
	report   func(admission.Decision)
}

func (a *admitter) request(fs *network.FlowSpec) error {
	if a.size <= 0 {
		d, err := a.ctl.Request(fs)
		if err != nil {
			return err
		}
		a.report(d)
		a.release(d)
		return nil
	}
	a.pending = append(a.pending, fs)
	if len(a.pending) >= a.size {
		return a.flush()
	}
	return nil
}

func (a *admitter) flush() error {
	if len(a.pending) == 0 {
		return nil
	}
	ds, err := a.batchCtl.RequestBatch(a.pending)
	if err != nil {
		return err
	}
	for _, d := range ds {
		a.report(d)
		a.release(d)
	}
	a.pending = a.pending[:0]
	return nil
}

// release closes the decision's analysis view once it has been
// reported: stream and trace mode only ever read the verdict, and a
// long stream would otherwise keep every per-decision view pinned on
// the engine. Close is idempotent, so the shared view of an admitted
// batch is fine to release once per decision.
func (a *admitter) release(d admission.Decision) {
	if d.View != nil {
		d.View.Close()
	}
}

// runStream drives a randomized online request/departure stream through
// an admission controller and reports throughput. workers > 1 (or -1 for
// GOMAXPROCS) lets the incremental engine run large delta worklists as
// parallel Jacobi rounds; batch > 0 admits requests in batches of that
// size through RequestBatch, flushing the pending batch before every
// departure so victims are always decided flows. record, when set, logs
// the executed operations as a replayable trace.
func runStream(n int, seed int64, depart float64, switches, hostsPer int, o runOpts, record string) error {
	if switches < 1 || hostsPer < 2 {
		return fmt.Errorf("stream mode needs at least 1 switch and 2 hosts per switch")
	}
	topo, hostIDs, err := network.Campus(switches, hostsPer)
	if err != nil {
		return err
	}
	ctl, batchCtl, shardCtl, parCtl, err := buildController(topo, o)
	if err != nil {
		return err
	}
	var rec *workload.Recorder
	if record != "" {
		// An empty Kind means campus, so recorded streams keep the exact
		// header bytes of the pre-generator trace format.
		h := workload.Header{Topo: workload.TopoSpec{Switches: switches, Hosts: hostsPer}}
		rec, err = workload.NewRecorder(record, h)
		if err != nil {
			return err
		}
		defer rec.Close() // error-path cleanup; the success path closes below
	}

	r := rand.New(rand.NewSource(seed))
	var admitted, rejected, released int
	var conv core.ConvergenceStats
	var liveNames []string
	adm := &admitter{ctl: ctl, batchCtl: batchCtl, size: o.batch, report: func(d admission.Decision) {
		conv.Add(decisionStats(d))
		if d.Admitted {
			admitted++
			liveNames = append(liveNames, d.FlowName)
		} else {
			rejected++
		}
	}}
	start := time.Now()
	for i := 0; i < n; i++ {
		spec, err := streamSpec(r, topo, hostIDs, hostsPer, fmt.Sprintf("req%d", i))
		if err != nil {
			return err
		}
		if err := rec.Record(workload.CaptureAdd(spec)); err != nil {
			return err
		}
		if err := adm.request(spec); err != nil {
			return err
		}
		if r.Float64() < depart {
			if err := adm.flush(); err != nil {
				return err
			}
			if len(liveNames) == 0 {
				continue
			}
			j := r.Intn(len(liveNames))
			if err := rec.Record(workload.Op{Op: "del", Name: liveNames[j]}); err != nil {
				return err
			}
			ok, err := ctl.Release(liveNames[j])
			if err != nil {
				return err
			}
			if ok {
				released++
				liveNames = append(liveNames[:j], liveNames[j+1:]...)
			}
		}
	}
	if err := adm.flush(); err != nil {
		return err
	}
	if parCtl != nil {
		// Retire the mailboxes inside the timed region: pending
		// departures are part of the stream's work.
		if err := parCtl.Close(); err != nil {
			return err
		}
	}
	if err := rec.Close(); err != nil {
		return fmt.Errorf("recording trace: %w", err)
	}
	elapsed := time.Since(start)

	mode := "incremental"
	if o.cold {
		mode = "cold"
	}
	if o.shards {
		mode = "sharded"
	}
	if o.parallel {
		mode = "parallel"
	}
	if o.accel {
		mode += ", accel"
	}
	if o.batch > 0 {
		mode = fmt.Sprintf("%s, batch=%d", mode, o.batch)
	}
	t := report.NewTable(fmt.Sprintf("Request stream (%s controller)", mode), "metric", "value")
	t.AddRowf("requests", n)
	t.AddRowf("admitted", admitted)
	t.AddRowf("rejected", rejected)
	t.AddRowf("departures", released)
	t.AddRowf("resident flows", ctl.NumFlows())
	if shardCtl != nil {
		t.AddRowf("shards", shardCtl.NumShards())
	}
	if parCtl != nil {
		t.AddRowf("shards", parCtl.NumShards())
	}
	t.AddRowf("switches x hosts", fmt.Sprintf("%d x %d", switches, hostsPer))
	t.AddRowf("elapsed", elapsed.Round(time.Millisecond).String())
	t.AddRowf("requests/s", fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()))
	if o.stats {
		t.AddRowf("fixpoint sweeps", conv.Iterations)
		t.AddRowf("worklist rounds", conv.WorklistRounds)
		t.AddRowf("accel steps", conv.AccelSteps)
		t.AddRowf("accel fallbacks", conv.Fallbacks)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return nil
}

// runTrace replays a recorded request trace deterministically: one
// decision line per operation, no timing, so runs of the same trace
// through the sequential, parallel-worklist and batched controllers can
// be compared byte for byte. A departure flushes the pending batch
// first, exactly like the recording side, so decision order is the
// request order regardless of batching.
func runTrace(w io.Writer, path string, o runOpts) error {
	h, ops, err := workload.LoadTrace(path)
	if err != nil {
		return err
	}
	topo, _, err := h.Topo.Build()
	if err != nil {
		return err
	}
	ctl, batchCtl, _, parCtl, err := buildController(topo, o)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(w)
	var admitted, rejected, released int
	var conv core.ConvergenceStats
	adm := &admitter{ctl: ctl, batchCtl: batchCtl, size: o.batch, report: func(d admission.Decision) {
		conv.Add(decisionStats(d))
		if d.Admitted {
			admitted++
			fmt.Fprintf(out, "admit %s\n", d.FlowName)
		} else {
			rejected++
			fmt.Fprintf(out, "reject %s\n", d.FlowName)
		}
	}}
	for _, op := range ops {
		switch op.Op {
		case "add":
			spec, err := op.Spec(topo)
			if err != nil {
				return err
			}
			if err := adm.request(spec); err != nil {
				return err
			}
		case "del":
			if err := adm.flush(); err != nil {
				return err
			}
			ok, err := ctl.Release(op.Name)
			if err != nil {
				return err
			}
			verdict := "miss"
			if ok {
				released++
				verdict = "ok"
			}
			fmt.Fprintf(out, "release %s %s\n", op.Name, verdict)
		}
	}
	if err := adm.flush(); err != nil {
		return err
	}
	if parCtl != nil {
		if err := parCtl.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "admitted=%d rejected=%d released=%d resident=%d\n",
		admitted, rejected, released, ctl.NumFlows())
	if o.stats {
		// Off the golden path: the decision log above is pinned byte for
		// byte across controller variants, the stats line is diagnostic.
		fmt.Fprintf(out, "stats sweeps=%d rounds=%d accel=%d fallbacks=%d\n",
			conv.Iterations, conv.WorklistRounds, conv.AccelSteps, conv.Fallbacks)
	}
	return out.Flush()
}

// wireAdmitter mirrors admitter over the gmfnet-admitd wire protocol:
// requests go out one by one or — when size > 0 — as one "batch" op,
// and the verdicts come back in request order. Callers flush before a
// departure and at end of stream, exactly like the in-process path, so
// the decision log stays byte-identical.
type wireAdmitter struct {
	cli     *client.Client
	size    int
	pending []workload.Op
	report  func(name string, admitted bool)
}

func (a *wireAdmitter) request(op workload.Op) error {
	if a.size <= 0 {
		ok, err := a.cli.Add(op)
		if err != nil {
			return err
		}
		a.report(op.Name, ok)
		return nil
	}
	a.pending = append(a.pending, op)
	if len(a.pending) >= a.size {
		return a.flush()
	}
	return nil
}

func (a *wireAdmitter) flush() error {
	if len(a.pending) == 0 {
		return nil
	}
	verdicts, err := a.cli.Batch(a.pending)
	if err != nil {
		return err
	}
	for i, ok := range verdicts {
		a.report(a.pending[i].Name, ok)
	}
	a.pending = a.pending[:0]
	return nil
}

// runTraceConnect replays a recorded trace against a running
// gmfnet-admitd daemon, printing the same decision lines as runTrace —
// the daemon serializes submissions in arrival order, so a fresh daemon
// replaying the trace produces the byte-identical golden log over the
// wire. The trace header's TopoSpec rides the hello, so connecting to a
// daemon serving a different topology fails fast.
func runTraceConnect(w io.Writer, path, addr string, batch int) error {
	h, ops, err := workload.LoadTrace(path)
	if err != nil {
		return err
	}
	cli, err := client.Dial(client.Network(addr), addr, h.Topo)
	if err != nil {
		return err
	}
	defer cli.Close()
	out := bufio.NewWriter(w)
	var admitted, rejected int
	released := 0
	adm := &wireAdmitter{cli: cli, size: batch, report: func(name string, ok bool) {
		if ok {
			admitted++
			fmt.Fprintf(out, "admit %s\n", name)
		} else {
			rejected++
			fmt.Fprintf(out, "reject %s\n", name)
		}
	}}
	for _, op := range ops {
		switch op.Op {
		case "add":
			if err := adm.request(op); err != nil {
				return err
			}
		case "del":
			if err := adm.flush(); err != nil {
				return err
			}
			ok, err := cli.Release(op.Name)
			if err != nil {
				return err
			}
			verdict := "miss"
			if ok {
				released++
				verdict = "ok"
			}
			fmt.Fprintf(out, "release %s %s\n", op.Name, verdict)
		}
	}
	if err := adm.flush(); err != nil {
		return err
	}
	st, err := cli.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "admitted=%d rejected=%d released=%d resident=%d\n",
		admitted, rejected, released, st.Resident)
	return out.Flush()
}

// buildController assembles the stream/trace controller variant: the
// from-scratch baseline, the closure-sharded controller, its
// scheduler-backed parallel form, or the monolithic incremental one.
// The batchRequester is non-nil for the engine-backed variants;
// shardCtl is non-nil only with -shards, parCtl only with -parallel
// (the caller must Close it).
func buildController(topo *network.Topology, o runOpts) (requester, batchRequester, *admission.ShardedController, *admission.ParallelController, error) {
	cfg := core.Config{Workers: o.workers, Accel: o.accel}
	switch {
	case o.cold:
		ctl, err := admission.NewColdController(network.New(topo), core.Config{Accel: o.accel})
		return ctl, nil, nil, nil, err
	case o.parallel:
		ctl, err := admission.NewParallelController(network.New(topo), cfg)
		return ctl, ctl, nil, ctl, err
	case o.shards:
		ctl, err := admission.NewShardedController(network.New(topo), cfg)
		return ctl, ctl, ctl, nil, err
	default:
		ctl, err := admission.NewController(network.New(topo), cfg)
		return ctl, ctl, nil, nil, err
	}
}

// runOpts selects the stream/trace controller variant and its reporting.
type runOpts struct {
	cold, shards, parallel bool
	workers, batch         int
	// accel turns on the safeguarded Anderson acceleration of the
	// holistic fixpoint; decisions are identical by construction, only
	// the sweep counts change.
	accel bool
	// stats reports aggregated ConvergenceStats over the whole run.
	stats bool
}

// decisionStats extracts the convergence breakdown of one decision's
// analysis, wherever the controller variant put it: engine-backed
// controllers publish a view, the cold baseline a detached result.
func decisionStats(d admission.Decision) core.ConvergenceStats {
	if d.View != nil {
		return d.View.Stats()
	}
	if d.Result != nil {
		return d.Result.Stats
	}
	return core.ConvergenceStats{}
}

// streamSpec draws one request: mostly VoIP calls, some CBR video, and —
// like real edge traffic — mostly between hosts on the same switch, so
// the incremental controller's affected set stays local; one in five
// requests crosses the backbone.
func streamSpec(r *rand.Rand, topo *network.Topology, hosts []network.NodeID, hostsPer int, name string) (*network.FlowSpec, error) {
	for {
		var src, dst network.NodeID
		if r.Float64() < 0.8 {
			// Local call: both endpoints under the same switch.
			s := r.Intn(len(hosts) / hostsPer)
			src = hosts[s*hostsPer+r.Intn(hostsPer)]
			dst = hosts[s*hostsPer+r.Intn(hostsPer)]
		} else {
			src = hosts[r.Intn(len(hosts))]
			dst = hosts[r.Intn(len(hosts))]
		}
		if src == dst {
			continue
		}
		route, err := topo.Route(src, dst)
		if err != nil {
			continue
		}
		spec := &network.FlowSpec{Route: route, Priority: network.Priority(1 + r.Intn(3))}
		if r.Intn(4) < 3 {
			spec.Flow = trace.VoIP(name, trace.VoIPOptions{Deadline: 100 * units.Millisecond})
			spec.RTP = true
		} else {
			spec.Flow = trace.CBRVideo(name, 4000+r.Int63n(12000),
				33*units.Millisecond, 200*units.Millisecond)
		}
		return spec, nil
	}
}
