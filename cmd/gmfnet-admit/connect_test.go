package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"

	"gmfnet/internal/admitd"
	"gmfnet/internal/workload"
)

// startDaemon boots a fresh in-process gmfnet-admitd serving the trace
// header's topology on a loopback listener ("tcp" or "unix") and
// returns its dial address. The daemon is drained on test cleanup.
func startDaemon(t *testing.T, tracePath, netw string) string {
	t.Helper()
	h, _, err := workload.LoadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := admitd.New(admitd.Config{Topo: h.Topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	var l net.Listener
	var addr string
	if netw == "unix" {
		addr = filepath.Join(t.TempDir(), "admitd.sock")
		l, err = net.Listen("unix", addr)
	} else {
		l, err = net.Listen("tcp", "127.0.0.1:0")
		if err == nil {
			addr = l.Addr().String()
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	return addr
}

// TestDaemonTraceGolden extends the determinism pin over the wire: a
// fresh gmfnet-admitd per variant replays each generator trace through
// the JSON-lines protocol, and the decision log printed by -connect
// must equal the checked-in golden file byte for byte — the same gate
// the in-process controller variants pass. A fresh daemon per replay
// matters: daemon state persists across connections by design.
func TestDaemonTraceGolden(t *testing.T) {
	variants := []struct {
		name  string
		netw  string
		batch int
	}{
		{name: "tcp", netw: "tcp"},
		{name: "tcp-batch3", netw: "tcp", batch: 3},
		{name: "unix", netw: "unix"},
	}
	for _, gen := range []string{"backbone", "fronthaul", "clos"} {
		gen := gen
		t.Run(gen, func(t *testing.T) {
			tracePath := filepath.Join("testdata", gen+".trace")
			golden, err := os.ReadFile(filepath.Join("testdata", gen+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					addr := startDaemon(t, tracePath, v.netw)
					var out bytes.Buffer
					if err := runTraceConnect(&out, tracePath, addr, v.batch); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(out.Bytes(), golden) {
						t.Fatalf("wire decision log differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
							out.Bytes(), golden)
					}
				})
			}
		})
	}
}

// TestConnectFlagErrors pins the -connect flag guards: the wire replay
// delegates the controller variant to the daemon, so local engine flags
// (and stream/record modes) are rejected up front.
func TestConnectFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-connect", "127.0.0.1:1"},
		{"-connect", "127.0.0.1:1", "-trace", "x.trace", "-cold"},
		{"-connect", "127.0.0.1:1", "-trace", "x.trace", "-parallel"},
		{"-connect", "127.0.0.1:1", "-trace", "x.trace", "-shards"},
		{"-connect", "127.0.0.1:1", "-trace", "x.trace", "-accel"},
		{"-connect", "127.0.0.1:1", "-trace", "x.trace", "-workers", "2"},
		{"-connect", "127.0.0.1:1", "-trace", "x.trace", "-stats"},
		{"-connect", "127.0.0.1:1", "-stream", "5"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// And a live guard: connecting to a daemon serving a different
	// topology must fail at the hello, not mid-replay.
	addr := startDaemon(t, filepath.Join("testdata", "backbone.trace"), "tcp")
	var out bytes.Buffer
	if err := runTraceConnect(&out, filepath.Join("testdata", "clos.trace"), addr, 0); err == nil {
		t.Fatal("replaying a clos trace against a backbone daemon succeeded, want hello rejection")
	}
}
