// Command gmfnet-analyze runs the paper's holistic schedulability analysis
// on a JSON scenario file and prints per-flow response-time bounds.
//
// Usage:
//
//	gmfnet-analyze [-mode sound|paper] [-stages] [-example] [scenario.json]
//
// With -example the built-in Figure 1 scenario is analysed (and can be
// dumped with -dump to serve as a template).
package main

import (
	"flag"
	"fmt"
	"os"

	"gmfnet/internal/config"
	"gmfnet/internal/core"
	"gmfnet/internal/network"
	"gmfnet/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gmfnet-analyze", flag.ContinueOnError)
	mode := fs.String("mode", "sound", "analysis mode: sound or paper (DESIGN.md F3-F5)")
	stages := fs.Bool("stages", false, "print the per-stage decomposition of every frame")
	util := fs.Bool("util", false, "print the per-resource utilisation (bottleneck) report")
	parallel := fs.Int("parallel", 1, "holistic analysis workers (>1 enables the Jacobi parallel iteration)")
	example := fs.Bool("example", false, "analyse the built-in Figure 1 scenario")
	dump := fs.Bool("dump", false, "print the built-in Figure 1 scenario as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dump {
		return config.Figure1Scenario().Write(os.Stdout)
	}

	var scenario *config.Scenario
	switch {
	case *example:
		scenario = config.Figure1Scenario()
	case fs.NArg() == 1:
		var err error
		scenario, err = config.Load(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need a scenario file or -example (see -h)")
	}

	nw, err := scenario.Build()
	if err != nil {
		return err
	}
	cfg := core.Config{}
	switch *mode {
	case "sound":
		cfg.Mode = core.ModeSound
	case "paper":
		cfg.Mode = core.ModePaper
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *util {
		loads, err := core.UtilizationReport(nw)
		if err != nil {
			return err
		}
		t := report.NewTable("Per-resource utilisation (descending)", "resource", "utilisation", "flows")
		for _, l := range loads {
			t.AddRowf(l.Resource, fmt.Sprintf("%.4f", l.Utilization), len(l.Flows))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	an, err := core.NewAnalyzer(nw, cfg)
	if err != nil {
		return err
	}
	var res *core.Result
	if *parallel > 1 {
		res, err = an.AnalyzeParallel(*parallel)
	} else {
		res, err = an.Analyze()
	}
	if err != nil {
		return err
	}

	summary := report.NewTable(
		fmt.Sprintf("Holistic analysis (%s mode): schedulable=%v, iterations=%d, converged=%v",
			cfg.Mode, res.Schedulable(), res.Iterations, res.Converged),
		"flow", "frame", "bound", "deadline", "meets")
	for i := range res.Flows {
		fr := res.Flow(i)
		if fr.Err != nil {
			summary.AddRowf(fr.Name, "-", "error: "+fr.Err.Error(), "-", false)
			continue
		}
		for k := range fr.Frames {
			summary.AddRowf(fr.Name, k, fr.Frames[k].Response, fr.Frames[k].Deadline, fr.Frames[k].Meets())
		}
	}
	if err := summary.Render(os.Stdout); err != nil {
		return err
	}

	if *stages {
		for i := range res.Flows {
			fr := res.Flow(i)
			if fr.Err != nil {
				continue
			}
			for k := range fr.Frames {
				t := report.NewTable(
					fmt.Sprintf("\nStages of flow %q frame %d (route %v)", fr.Name, k, routeOf(nw, i)),
					"stage", "entry jitter", "bound")
				for _, st := range fr.Frames[k].Stages {
					t.AddRowf(st.Resource, st.EntryJitter, st.Response)
				}
				if err := t.Render(os.Stdout); err != nil {
					return err
				}
			}
		}
	}
	if !res.Schedulable() {
		return fmt.Errorf("scenario is NOT schedulable")
	}
	return nil
}

func routeOf(nw *network.Network, i int) []network.NodeID {
	return nw.Flow(i).Route
}
