package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example"}); err != nil {
		t.Fatalf("-example failed: %v", err)
	}
}

func TestRunExampleWithAllFlags(t *testing.T) {
	if err := run([]string{"-example", "-stages", "-util", "-mode", "paper", "-parallel", "4"}); err != nil {
		t.Fatalf("full flags failed: %v", err)
	}
}

func TestRunDump(t *testing.T) {
	if err := run([]string{"-dump"}); err != nil {
		t.Fatalf("-dump failed: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	for _, name := range []string{"figure1.json", "campus.json", "voip-edge.json"} {
		path := filepath.Join("..", "..", "scenarios", name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("missing shipped scenario: %v", err)
		}
		if err := run([]string{path}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no input
		{"-mode", "psychic", "-example"}, // bad mode
		{"/nonexistent.json"},            // missing file
		{"a.json", "b.json"},             // too many args
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestUnschedulableScenarioReturnsError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	doc := `{
	  "hosts": ["a", "b"],
	  "switches": [],
	  "links": [{"a": "a", "b": "b", "rate": "10Mbit/s"}],
	  "flows": [{
	    "name": "hog", "route": ["a", "b"], "priority": 1,
	    "frames": [{"minSep": "10ms", "deadline": "10ms", "payloadBytes": 140000}]
	  }]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{path})
	if err == nil || !strings.Contains(err.Error(), "NOT schedulable") {
		t.Fatalf("err = %v, want NOT schedulable", err)
	}
}
